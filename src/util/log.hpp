// Lightweight leveled logging and an in-memory trace recorder.
//
// The protocol implementations emit structured trace lines ("H3 fusion(S,
// r1,r3) -> H1") that unit tests assert on and examples print. Logging is a
// process-wide singleton with a swappable sink so tests can capture output
// without touching stderr.
//
// Thread safety: the parallel experiment engine (harness::TrialPool) runs
// one simulation per worker thread, and every simulation shares this
// singleton. The level is atomic (so the enabled() fast path stays a
// single relaxed load), the sink is swapped and invoked under a mutex with
// one buffered write per line (no interleaved fragments), and the virtual
// time source is thread-local — each worker's simulator stamps only its
// own thread's lines.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace hbh {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Process-wide logger; safe to use from concurrent trial workers.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;
  using TimeSource = std::function<double()>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }

  /// Replaces the sink; pass nullptr to restore the default stderr sink.
  void set_sink(Sink sink);

  /// While a time source is set (a simulator is active on this thread),
  /// every line the thread logs is prefixed with the current virtual time:
  /// "[t=12.5] ...". Pass nullptr to clear. Returns the previous source so
  /// scopes can nest. Per-thread: parallel trials don't see each other's
  /// clocks.
  TimeSource set_time_source(TimeSource source);

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= this->level();
  }

  void write(LogLevel level, std::string_view message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex sink_mu_;  ///< guards sink_ swap and every sink invocation
  Sink sink_;
  static thread_local TimeSource time_source_;
};

/// RAII: exposes a virtual clock to the logger while in scope (installed
/// by sim::Simulator::run so traces carry "[t=...]" prefixes that line up
/// with sampler timestamps). Thread-local, like the time source itself.
class ScopedLogTime {
 public:
  explicit ScopedLogTime(Logger::TimeSource source)
      : previous_(Logger::instance().set_time_source(std::move(source))) {}
  ~ScopedLogTime() { Logger::instance().set_time_source(std::move(previous_)); }
  ScopedLogTime(const ScopedLogTime&) = delete;
  ScopedLogTime& operator=(const ScopedLogTime&) = delete;

 private:
  Logger::TimeSource previous_;
};

/// Parses "trace" / "debug" / "info" / "warn" / "error" (case-sensitive,
/// the metric-name spelling used everywhere else); nullopt otherwise.
[[nodiscard]] std::optional<LogLevel> log_level_from_string(
    std::string_view name);

/// Applies the HBH_LOG_LEVEL environment variable if set and valid — how
/// the unattended bench binaries raise verbosity without a rebuild.
void init_log_level_from_env();

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& out, const T& first, const Rest&... rest) {
  out << first;
  append_all(out, rest...);
}
}  // namespace detail

/// Logs `parts...` stream-concatenated at `level` if enabled.
template <typename... Parts>
void log(LogLevel level, const Parts&... parts) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream out;
  detail::append_all(out, parts...);
  logger.write(level, out.str());
}

/// RAII capture of all log lines at or above `level`; restores the previous
/// sink and level on destruction. Used by tests asserting on traces.
class LogCapture {
 public:
  explicit LogCapture(LogLevel level = LogLevel::kTrace);
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  [[nodiscard]] const std::vector<std::string>& lines() const noexcept {
    return lines_;
  }
  /// True if any captured line contains `needle`.
  [[nodiscard]] bool contains(std::string_view needle) const;
  /// Number of captured lines containing `needle`.
  [[nodiscard]] std::size_t count(std::string_view needle) const;

 private:
  std::vector<std::string> lines_;
  LogLevel previous_level_;
};

}  // namespace hbh
