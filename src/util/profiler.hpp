// Phase profiler: RAII nested scopes attributing wall + thread-CPU time
// (and, opt-in, heap allocations) to named phases of a run.
//
// The profiler lives in util so every layer — routing (SPF), sim, mcast
// (tree rounds, refresh, data fan-out), harness — can drop an HBH_PHASE
// scope without a dependency cycle; serialization to the run report lives
// in src/metrics/profiler.hpp (which re-exports these types as
// metrics::PhaseProfiler et al.).
//
// Design constraints, in order:
//  1. Determinism. Phase *counts* are a function of the simulation only,
//     so aggregating per-protocol across TrialPool workers must yield
//     byte-identical counts at any HBH_JOBS. All stats are unsigned
//     integers (enter count, nanoseconds, allocations) merged by addition,
//     which commutes — merge order across workers cannot change a sum.
//     Timings naturally differ run to run and are excluded from the
//     repo's byte-identity checks (docs/OBSERVABILITY.md).
//  2. Zero cost when idle. A scope first checks the calling thread's
//     installed profiler; with none installed the constructor is a single
//     thread-local load and branch. Under -DHBH_NO_TELEMETRY=ON the macro
//     expands to nothing and the classes compile to empty shells.
//  3. No locks on the hot path. A PhaseProfiler is thread-confined (one
//     per trial, like Session); only PhaseAggregator::merge — once per
//     trial — takes a mutex.
//
// Phases nest: a scope entered while another is open records under the
// path "outer/inner", so e.g. SPF work triggered during trial setup
// aggregates separately ("trial_setup/spf") from SPF work during the
// measurement window ("measure/.../spf").
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hbh::prof {

/// True when the profiler is compiled in (mirrors metrics::kTelemetryCompiled;
/// duplicated here to keep util dependency-free).
#ifdef HBH_NO_TELEMETRY
inline constexpr bool kProfilerCompiled = false;
#else
inline constexpr bool kProfilerCompiled = true;
#endif

/// True when global operator new/delete are instrumented (-DHBH_PROF_ALLOC=ON):
/// phase stats then carry per-phase allocation/byte deltas.
#ifdef HBH_PROF_ALLOC
inline constexpr bool kAllocCountingCompiled = true;
#else
inline constexpr bool kAllocCountingCompiled = false;
#endif

/// Everything recorded about one phase path. All fields are integers and
/// merge by addition, keeping aggregated values order-independent.
struct PhaseStats {
  std::uint64_t count = 0;        ///< scope enters
  std::uint64_t wall_ns = 0;      ///< wall-clock time inside the scope
  std::uint64_t cpu_ns = 0;       ///< thread CPU time inside the scope
  std::uint64_t allocs = 0;       ///< heap allocations (HBH_PROF_ALLOC only)
  std::uint64_t alloc_bytes = 0;  ///< bytes requested (HBH_PROF_ALLOC only)

  void merge(const PhaseStats& o) noexcept {
    count += o.count;
    wall_ns += o.wall_ns;
    cpu_ns += o.cpu_ns;
    allocs += o.allocs;
    alloc_bytes += o.alloc_bytes;
  }
};

/// Phase path ("trial_setup/spf") -> stats. std::map so iteration — and
/// therefore serialization — is deterministic.
using PhaseMap = std::map<std::string, PhaseStats>;

/// Per-thread (per-trial) phase recorder. Install with ScopedProfiler and
/// open scopes with HBH_PHASE; query or merge the result when done.
class PhaseProfiler {
 public:
  PhaseProfiler() = default;
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Opens a nested phase; pair with exit(). Prefer HBH_PHASE.
  void enter(std::string_view name);
  void exit();

  /// Merges pre-accumulated stats under `path` — for subsystems that batch
  /// many tiny spans internally (e.g. the compiled data-plane fast path)
  /// instead of paying an enter/exit pair per occurrence.
  void record(std::string_view path, const PhaseStats& stats);

  [[nodiscard]] const PhaseMap& phases() const noexcept { return phases_; }
  [[nodiscard]] bool idle() const noexcept { return stack_.empty(); }

  /// Forgets everything recorded (open scopes must be closed first).
  void clear();

 private:
  struct Frame {
    std::size_t parent_path_len;  ///< path_ length before this frame
    std::uint64_t wall0;
    std::uint64_t cpu0;
    std::uint64_t allocs0;
    std::uint64_t alloc_bytes0;
  };

  PhaseMap phases_;
  std::vector<Frame> stack_;
  std::string path_;  ///< current phase path, "/"-joined
};

/// The calling thread's installed profiler; nullptr when none.
[[nodiscard]] PhaseProfiler* current_profiler() noexcept;

/// Installs `p` as the calling thread's profiler for this scope's lifetime
/// (restoring the previous one on destruction, so installs nest — e.g. a
/// per-protocol deep-dive inside a profiled report render).
class ScopedProfiler {
 public:
  explicit ScopedProfiler(PhaseProfiler& p) noexcept;
  ~ScopedProfiler();
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  PhaseProfiler* prev_;
};

/// RAII phase scope: records under the installed profiler, no-op without
/// one. The profiler pointer is captured at construction, so a nested
/// ScopedProfiler swap cannot unbalance enter/exit pairs.
class PhaseScope {
 public:
  explicit PhaseScope(const char* name) noexcept
      : prof_(kProfilerCompiled ? current_profiler() : nullptr) {
    if (prof_ != nullptr) prof_->enter(name);
  }
  ~PhaseScope() {
    if (prof_ != nullptr) prof_->exit();
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseProfiler* prof_;
};

/// Thread-safe label -> PhaseMap accumulator. The harness keeps one per
/// process (process_profile()) keyed by protocol name; every trial merges
/// its profiler on completion, from whichever TrialPool worker ran it.
class PhaseAggregator {
 public:
  void merge(std::string_view label, const PhaseProfiler& p) {
    merge(label, p.phases());
  }
  void merge(std::string_view label, const PhaseMap& phases);

  /// Copies of the aggregated maps (all labels / one label).
  [[nodiscard]] std::map<std::string, PhaseMap> snapshot() const;
  [[nodiscard]] PhaseMap snapshot(std::string_view label) const;

  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, PhaseMap> by_label_;
};

/// The process-wide aggregate the harness and benches report from.
[[nodiscard]] PhaseAggregator& process_profile();

/// Peak resident set size of the process so far, in bytes (0 if the
/// platform offers no getrusage).
[[nodiscard]] std::uint64_t peak_rss_bytes() noexcept;

/// The calling thread's running allocation totals (monotonic; all zero
/// unless built with -DHBH_PROF_ALLOC=ON).
struct AllocCounters {
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
};
[[nodiscard]] AllocCounters thread_alloc_counters() noexcept;

#ifdef HBH_NO_TELEMETRY
#define HBH_PHASE(name) ((void)0)
#else
#define HBH_PROF_CAT2(a, b) a##b
#define HBH_PROF_CAT(a, b) HBH_PROF_CAT2(a, b)
/// Opens a phase scope for the rest of the enclosing block.
#define HBH_PHASE(name) \
  ::hbh::prof::PhaseScope HBH_PROF_CAT(hbh_phase_scope_, __LINE__) { name }
#endif

}  // namespace hbh::prof
