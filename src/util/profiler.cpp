#include "util/profiler.hpp"

#include <cassert>
#include <chrono>
#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#ifdef HBH_PROF_ALLOC
#include <cstdlib>
#include <new>
#endif

namespace hbh::prof {
namespace {

thread_local PhaseProfiler* tl_profiler = nullptr;

std::uint64_t wall_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t cpu_now_ns() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

}  // namespace

void PhaseProfiler::enter(std::string_view name) {
  Frame f;
  f.parent_path_len = path_.size();
  if (!path_.empty()) path_.push_back('/');
  path_.append(name);
  // Clocks are read last on enter and first on exit so the profiler's own
  // bookkeeping (path append, map insert) stays outside the measured span.
  const AllocCounters a = thread_alloc_counters();
  f.allocs0 = a.allocs;
  f.alloc_bytes0 = a.bytes;
  f.cpu0 = cpu_now_ns();
  f.wall0 = wall_now_ns();
  stack_.push_back(f);
}

void PhaseProfiler::exit() {
  assert(!stack_.empty() && "PhaseProfiler::exit without matching enter");
  const std::uint64_t wall1 = wall_now_ns();
  const std::uint64_t cpu1 = cpu_now_ns();
  const AllocCounters a = thread_alloc_counters();
  const Frame f = stack_.back();
  stack_.pop_back();
  PhaseStats& s = phases_[path_];
  s.count += 1;
  s.wall_ns += wall1 - f.wall0;
  s.cpu_ns += cpu1 >= f.cpu0 ? cpu1 - f.cpu0 : 0;
  s.allocs += a.allocs - f.allocs0;
  s.alloc_bytes += a.bytes - f.alloc_bytes0;
  path_.resize(f.parent_path_len);
}

void PhaseProfiler::record(std::string_view path, const PhaseStats& stats) {
  if (stats.count == 0) return;
  phases_[std::string(path)].merge(stats);
}

void PhaseProfiler::clear() {
  assert(stack_.empty() && "PhaseProfiler::clear with open scopes");
  phases_.clear();
  path_.clear();
}

PhaseProfiler* current_profiler() noexcept { return tl_profiler; }

ScopedProfiler::ScopedProfiler(PhaseProfiler& p) noexcept
    : prev_(tl_profiler) {
  tl_profiler = &p;
}

ScopedProfiler::~ScopedProfiler() { tl_profiler = prev_; }

void PhaseAggregator::merge(std::string_view label, const PhaseMap& phases) {
  if (phases.empty()) return;  // keep snapshot() empty under HBH_NO_TELEMETRY
  const std::lock_guard<std::mutex> lock(mu_);
  PhaseMap& dst = by_label_[std::string(label)];
  for (const auto& [path, stats] : phases) dst[path].merge(stats);
}

std::map<std::string, PhaseMap> PhaseAggregator::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return by_label_;
}

PhaseMap PhaseAggregator::snapshot(std::string_view label) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_label_.find(std::string(label));
  return it == by_label_.end() ? PhaseMap{} : it->second;
}

void PhaseAggregator::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  by_label_.clear();
}

PhaseAggregator& process_profile() {
  static PhaseAggregator aggregator;
  return aggregator;
}

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

#ifndef HBH_PROF_ALLOC

AllocCounters thread_alloc_counters() noexcept { return {}; }

#else

namespace {
thread_local AllocCounters tl_alloc;
}

AllocCounters thread_alloc_counters() noexcept { return tl_alloc; }

namespace detail {
inline void note_alloc(std::size_t bytes) noexcept {
  tl_alloc.allocs += 1;
  tl_alloc.bytes += static_cast<std::uint64_t>(bytes);
}
}  // namespace detail

#endif  // HBH_PROF_ALLOC

}  // namespace hbh::prof

#ifdef HBH_PROF_ALLOC

// Global allocation instrumentation (-DHBH_PROF_ALLOC=ON): every heap
// allocation bumps the calling thread's counters, which PhaseProfiler
// snapshots at scope enter/exit to attribute allocations per phase.
// Exactly one definition per binary — this translation unit sits in
// hbh_util, which every executable links.
//
// Every replaced operator new below allocates with malloc/posix_memalign,
// so free() in the deletes is the matching deallocator; GCC can't see
// that pairing and would flag the free() calls.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  hbh::prof::detail::note_alloc(size);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  hbh::prof::detail::note_alloc(size);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
  hbh::prof::detail::note_alloc(size);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size != 0 ? size : 1) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  hbh::prof::detail::note_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  hbh::prof::detail::note_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

#endif  // HBH_PROF_ALLOC
