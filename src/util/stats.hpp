// Streaming statistics used by the experiment harness.
//
// Each figure in the paper plots the mean over 500 randomized trials; we
// additionally keep the standard deviation and a normal-approximation 95%
// confidence interval so EXPERIMENTS.md can report uncertainty.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hbh {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel-combine, Chan et al.).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;

  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95_half_width() const noexcept;

  /// "mean ± ci95" rendered with the given precision.
  [[nodiscard]] std::string to_string(int precision = 2) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile (nearest-rank) over a sample vector; the vector is
/// copied so the caller's ordering is preserved.
[[nodiscard]] double percentile(std::vector<double> samples, double p);

}  // namespace hbh
