// Deterministic pseudo-random number generation.
//
// Every experiment in the reproduction is seeded, so runs are exactly
// repeatable across machines. We use xoshiro256** (public domain, Blackman &
// Vigna) seeded through SplitMix64, which is both fast and statistically
// strong — std::mt19937 would also work but its state is needlessly large
// and its seeding from a single integer is poor.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace hbh {

/// SplitMix64 step; used for seed expansion and as a tiny standalone PRNG.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles accept Rng.
  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) noexcept { return uniform01() < p; }

  /// Exponentially distributed value with the given mean (rate 1/mean);
  /// the dwell-time distribution of the churn on/off processes. Requires
  /// mean > 0. Inverse-CDF on 1-uniform01() ∈ (0,1] so log() never sees 0.
  [[nodiscard]] double exponential(double mean) noexcept {
    return -mean * std::log(1.0 - uniform01());
  }

  /// Fisher–Yates shuffle (deterministic given the engine state).
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks k distinct elements from `pool` (order randomized).
  template <typename T>
  [[nodiscard]] std::vector<T> sample(std::vector<T> pool, std::size_t k) {
    shuffle(pool);
    if (k < pool.size()) pool.resize(k);
    return pool;
  }

  /// Derives an independent child generator; useful to give each trial its
  /// own stream so adding trials never perturbs earlier ones.
  [[nodiscard]] Rng fork() noexcept { return Rng{next()}; }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace hbh
