// Strong identifier types shared across the simulator.
//
// NodeId identifies a vertex of the simulated topology (router or host).
// LinkId identifies a *directed* edge. Both are thin wrappers around an
// integer index so they stay trivially copyable and hashable, while the
// distinct types prevent accidentally mixing a node index with a link index
// (C++ Core Guidelines I.4: make interfaces precisely and strongly typed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace hbh {

/// Simulated time, in abstract "time units" (the paper's delay unit).
using Time = double;

/// Identifier of a topology vertex (router or end host).
struct NodeId {
  std::uint32_t v = std::numeric_limits<std::uint32_t>::max();

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t value) : v(value) {}

  [[nodiscard]] constexpr bool valid() const noexcept {
    return v != std::numeric_limits<std::uint32_t>::max();
  }
  [[nodiscard]] constexpr std::uint32_t index() const noexcept { return v; }

  friend constexpr bool operator==(NodeId, NodeId) = default;
  friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

/// Sentinel meaning "no node".
inline constexpr NodeId kNoNode{};

/// Identifier of a directed edge in the topology.
struct LinkId {
  std::uint32_t v = std::numeric_limits<std::uint32_t>::max();

  constexpr LinkId() = default;
  constexpr explicit LinkId(std::uint32_t value) : v(value) {}

  [[nodiscard]] constexpr bool valid() const noexcept {
    return v != std::numeric_limits<std::uint32_t>::max();
  }
  [[nodiscard]] constexpr std::uint32_t index() const noexcept { return v; }

  friend constexpr bool operator==(LinkId, LinkId) = default;
  friend constexpr auto operator<=>(LinkId, LinkId) = default;
};

inline constexpr LinkId kNoLink{};

// append() instead of `literal + std::string`: GCC 12's -Wrestrict
// misfires on the operator+ chain under -O3 (GCC PR105329), -Werror.
[[nodiscard]] inline std::string to_string(NodeId n) {
  if (!n.valid()) return "n<invalid>";
  std::string out{"n"};
  out.append(std::to_string(n.v));
  return out;
}
[[nodiscard]] inline std::string to_string(LinkId l) {
  if (!l.valid()) return "l<invalid>";
  std::string out{"l"};
  out.append(std::to_string(l.v));
  return out;
}

}  // namespace hbh

template <>
struct std::hash<hbh::NodeId> {
  std::size_t operator()(hbh::NodeId n) const noexcept {
    return std::hash<std::uint32_t>{}(n.v);
  }
};

template <>
struct std::hash<hbh::LinkId> {
  std::size_t operator()(hbh::LinkId l) const noexcept {
    return std::hash<std::uint32_t>{}(l.v);
  }
};
