#include "util/rng.hpp"

#include <cassert>

namespace hbh {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>(next());
  }
  // Lemire's unbiased bounded generation (rejection on the low word).
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

}  // namespace hbh
