#include "util/log.hpp"

#include <cstdio>

#include "util/env.hpp"

namespace hbh {

thread_local Logger::TimeSource Logger::time_source_;

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger::Logger() { set_sink(nullptr); }

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  if (!sink) {
    // Compose the full line first and emit it with a single buffered
    // write: concurrent trial workers never interleave fragments.
    sink = [](LogLevel level, std::string_view message) {
      std::string line;
      line.reserve(message.size() + 10);
      line += '[';
      line += to_string(level);
      line += "] ";
      line += message;
      line += '\n';
      std::fwrite(line.data(), 1, line.size(), stderr);
    };
  }
  std::scoped_lock lock(sink_mu_);
  sink_ = std::move(sink);
}

Logger::TimeSource Logger::set_time_source(TimeSource source) {
  TimeSource previous = std::move(time_source_);
  time_source_ = std::move(source);
  return previous;
}

void Logger::write(LogLevel level, std::string_view message) {
  std::string stamped;
  if (time_source_) {
    std::ostringstream out;
    out << "[t=" << time_source_() << "] " << message;
    stamped = out.str();
    message = stamped;
  }
  std::scoped_lock lock(sink_mu_);
  sink_(level, message);
}

std::optional<LogLevel> log_level_from_string(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

void init_log_level_from_env() {
  const std::string raw = env_log_level();
  if (raw.empty()) return;
  if (const auto level = log_level_from_string(raw)) {
    Logger::instance().set_level(*level);
  }
}

LogCapture::LogCapture(LogLevel level)
    : previous_level_(Logger::instance().level()) {
  Logger::instance().set_level(level);
  Logger::instance().set_sink([this](LogLevel, std::string_view message) {
    lines_.emplace_back(message);
  });
}

LogCapture::~LogCapture() {
  Logger::instance().set_sink(nullptr);
  Logger::instance().set_level(previous_level_);
}

bool LogCapture::contains(std::string_view needle) const {
  return count(needle) > 0;
}

std::size_t LogCapture::count(std::string_view needle) const {
  std::size_t hits = 0;
  for (const auto& line : lines_) {
    if (line.find(needle) != std::string::npos) ++hits;
  }
  return hits;
}

}  // namespace hbh
