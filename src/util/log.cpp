#include "util/log.hpp"

#include <iostream>

namespace hbh {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger::Logger() { set_sink(nullptr); }

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, std::string_view message) {
      std::cerr << '[' << to_string(level) << "] " << message << '\n';
    };
  }
}

void Logger::write(LogLevel level, std::string_view message) {
  sink_(level, message);
}

LogCapture::LogCapture(LogLevel level)
    : previous_level_(Logger::instance().level()) {
  Logger::instance().set_level(level);
  Logger::instance().set_sink([this](LogLevel, std::string_view message) {
    lines_.emplace_back(message);
  });
}

LogCapture::~LogCapture() {
  Logger::instance().set_sink(nullptr);
  Logger::instance().set_level(previous_level_);
}

bool LogCapture::contains(std::string_view needle) const {
  return count(needle) > 0;
}

std::size_t LogCapture::count(std::string_view needle) const {
  std::size_t hits = 0;
  for (const auto& line : lines_) {
    if (line.find(needle) != std::string::npos) ++hits;
  }
  return hits;
}

}  // namespace hbh
