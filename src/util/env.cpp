#include "util/env.hpp"

#include <charconv>
#include <cstdlib>

namespace hbh {

std::optional<std::int64_t> env_int(std::string_view name) {
  const std::string key{name};
  const char* raw = std::getenv(key.c_str());
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  std::int64_t value = 0;
  const char* end = raw;
  while (*end != '\0') ++end;
  auto [next, ec] = std::from_chars(raw, end, value);
  if (ec != std::errc{} || next != end) return std::nullopt;
  return value;
}

std::int64_t env_int_or(std::string_view name, std::int64_t fallback) {
  return env_int(name).value_or(fallback);
}

double env_double_or(std::string_view name, double fallback) {
  const std::string key{name};
  const char* raw = std::getenv(key.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  return (end == raw || *end != '\0') ? fallback : value;
}

std::string env_str_or(std::string_view name, std::string_view fallback) {
  const std::string key{name};
  const char* raw = std::getenv(key.c_str());
  return (raw == nullptr || *raw == '\0') ? std::string{fallback}
                                          : std::string{raw};
}

std::size_t env_trials(std::size_t fallback) {
  const std::int64_t v =
      env_int_or("HBH_TRIALS", static_cast<std::int64_t>(fallback));
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

std::uint64_t env_seed(std::uint64_t fallback) {
  return static_cast<std::uint64_t>(
      env_int_or("HBH_SEED", static_cast<std::int64_t>(fallback)));
}

std::size_t env_jobs() {
  const std::int64_t v = env_int_or("HBH_JOBS", 0);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

bool env_csv() { return env_int_or("HBH_CSV", 0) != 0; }

std::string env_report_path() { return env_str_or("HBH_REPORT", ""); }

std::string env_trace_out() { return env_str_or("HBH_TRACE_OUT", ""); }

std::string env_perf_out(std::string_view fallback) {
  return env_str_or("HBH_PERF_OUT", fallback);
}

std::string env_prof_out() { return env_str_or("HBH_PROF_OUT", ""); }

double env_perf_tolerance(double fallback) {
  const double v = env_double_or("HBH_PERF_TOLERANCE", fallback);
  return v > 0 ? v : fallback;
}

std::size_t env_dp_rounds(std::size_t fallback) {
  const std::int64_t v =
      env_int_or("HBH_DP_ROUNDS", static_cast<std::int64_t>(fallback));
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

std::size_t env_dp_warmup(std::size_t fallback) {
  const std::int64_t v =
      env_int_or("HBH_DP_WARMUP", static_cast<std::int64_t>(fallback));
  return v >= 0 ? static_cast<std::size_t>(v) : fallback;
}

std::size_t env_dp_burst(std::size_t fallback) {
  const std::int64_t v =
      env_int_or("HBH_DP_BURST", static_cast<std::int64_t>(fallback));
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

bool env_fastpath() { return env_int_or("HBH_FASTPATH", 1) != 0; }

std::string env_log_level() { return env_str_or("HBH_LOG_LEVEL", ""); }

std::size_t env_channels(std::size_t fallback) {
  const std::int64_t v =
      env_int_or("HBH_CHANNELS", static_cast<std::int64_t>(fallback));
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

double env_churn_on(double fallback) {
  return env_double_or("HBH_CHURN_ON", fallback);
}

double env_churn_off(double fallback) {
  return env_double_or("HBH_CHURN_OFF", fallback);
}

double env_rate(double fallback) {
  const double v = env_double_or("HBH_RATE", fallback);
  return v >= 0 ? v : fallback;
}

std::size_t env_payload(std::size_t fallback) {
  const std::int64_t v =
      env_int_or("HBH_PAYLOAD", static_cast<std::int64_t>(fallback));
  return v >= 0 ? static_cast<std::size_t>(v) : fallback;
}

std::size_t env_queue_limit(std::size_t fallback) {
  const std::int64_t v =
      env_int_or("HBH_QUEUE_LIMIT", static_cast<std::int64_t>(fallback));
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

std::string env_aqm(std::string_view fallback) {
  return env_str_or("HBH_AQM", fallback);
}

std::string env_audit() {
  std::string v = env_str_or("HBH_AUDIT", "");
  if (v == "0" || v == "off") return "";
  return v;
}

std::string env_audit_out() { return env_str_or("HBH_AUDIT_OUT", ""); }

}  // namespace hbh
