#include "util/env.hpp"

#include <charconv>
#include <cstdlib>

namespace hbh {

std::optional<std::int64_t> env_int(std::string_view name) {
  const std::string key{name};
  const char* raw = std::getenv(key.c_str());
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  std::int64_t value = 0;
  const char* end = raw;
  while (*end != '\0') ++end;
  auto [next, ec] = std::from_chars(raw, end, value);
  if (ec != std::errc{} || next != end) return std::nullopt;
  return value;
}

std::int64_t env_int_or(std::string_view name, std::int64_t fallback) {
  return env_int(name).value_or(fallback);
}

std::string env_str_or(std::string_view name, std::string_view fallback) {
  const std::string key{name};
  const char* raw = std::getenv(key.c_str());
  return (raw == nullptr || *raw == '\0') ? std::string{fallback}
                                          : std::string{raw};
}

}  // namespace hbh
