// Minimal IPv4 address model.
//
// HBH identifies a channel by <S, G> where S is a unicast IPv4 address and G
// a class-D (multicast) group address. The simulator assigns every node a
// unicast address and allocates SSM-range (232/8) group addresses, so the
// protocol code manipulates real addresses rather than bare node indexes.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace hbh {

/// An IPv4 address in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : bits_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t bits() const noexcept { return bits_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(bits_ >> (8 * (3 - i)));
  }

  /// True for 0.0.0.0, used as the "unspecified" sentinel.
  [[nodiscard]] constexpr bool unspecified() const noexcept {
    return bits_ == 0;
  }

  /// True if this is a class-D (224.0.0.0/4) multicast address.
  [[nodiscard]] constexpr bool is_multicast() const noexcept {
    return (bits_ & 0xF0000000u) == 0xE0000000u;
  }

  /// True if this lies in the SSM range 232.0.0.0/8 used for channels.
  [[nodiscard]] constexpr bool is_ssm() const noexcept {
    return (bits_ & 0xFF000000u) == 0xE8000000u;
  }

  [[nodiscard]] std::string to_string() const;

  /// Parses dotted-quad notation; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Addr> parse(std::string_view text);

  friend constexpr bool operator==(Ipv4Addr, Ipv4Addr) = default;
  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// Sentinel "no address".
inline constexpr Ipv4Addr kNoAddr{};

/// A class-D group address (type-distinct from unicast addresses).
class GroupAddr {
 public:
  constexpr GroupAddr() = default;
  constexpr explicit GroupAddr(Ipv4Addr a) : addr_(a) {}

  [[nodiscard]] constexpr Ipv4Addr addr() const noexcept { return addr_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return addr_.is_multicast();
  }
  [[nodiscard]] std::string to_string() const { return addr_.to_string(); }

  /// Allocates the i-th SSM-range group address (232.0.x.y).
  [[nodiscard]] static constexpr GroupAddr ssm(std::uint16_t i) noexcept {
    return GroupAddr{Ipv4Addr{0xE8000000u | i}};
  }

  friend constexpr bool operator==(GroupAddr, GroupAddr) = default;
  friend constexpr auto operator<=>(GroupAddr, GroupAddr) = default;

 private:
  Ipv4Addr addr_{};
};

}  // namespace hbh

template <>
struct std::hash<hbh::Ipv4Addr> {
  std::size_t operator()(hbh::Ipv4Addr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};

template <>
struct std::hash<hbh::GroupAddr> {
  std::size_t operator()(hbh::GroupAddr g) const noexcept {
    return std::hash<hbh::Ipv4Addr>{}(g.addr());
  }
};
