// Environment-variable configuration helpers.
//
// Benches and the harness run unattended (`for b in build/bench/*; do $b;
// done`), so their knobs — trial counts, seeds, worker counts — come from
// the environment rather than argv: e.g. HBH_TRIALS=500 reruns a figure at
// the paper's full trial count.
//
// Every HBH_* knob the repository reads goes through one of the named
// accessors below, so this header doubles as the authoritative knob list
// (mirrored in README "Environment knobs"). Adding a knob means adding an
// accessor here, not sprinkling another getenv call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hbh {

/// Reads an integer environment variable; nullopt if unset or malformed.
[[nodiscard]] std::optional<std::int64_t> env_int(std::string_view name);

/// Reads an integer environment variable with a default.
[[nodiscard]] std::int64_t env_int_or(std::string_view name,
                                      std::int64_t fallback);

/// Reads a floating-point environment variable with a default.
[[nodiscard]] double env_double_or(std::string_view name, double fallback);

/// Reads a string environment variable with a default.
[[nodiscard]] std::string env_str_or(std::string_view name,
                                     std::string_view fallback);

// --- The knob table (README "Environment knobs") -------------------------

/// HBH_TRIALS — trials per sweep point (each bench picks its own default).
[[nodiscard]] std::size_t env_trials(std::size_t fallback);

/// HBH_SEED — base seed for paired trials (default: the SIGCOMM'01 date).
[[nodiscard]] std::uint64_t env_seed(std::uint64_t fallback = 20010827);

/// HBH_JOBS — trial-pool worker count; 0/unset = all hardware cores,
/// 1 = the serial path (docs/PERFORMANCE.md).
[[nodiscard]] std::size_t env_jobs();

/// HBH_CSV — nonzero: benches also print machine-readable CSV.
[[nodiscard]] bool env_csv();

/// HBH_REPORT — path for the hbh.run_report/v1 JSON; empty = no report.
[[nodiscard]] std::string env_report_path();

/// HBH_TRACE_OUT — path for a Perfetto/Chrome trace-event JSON of one
/// instrumented serial re-run (schema hbh.trace/v1); empty = no trace.
[[nodiscard]] std::string env_trace_out();

/// HBH_PERF_OUT — path for a perf bench's JSON artifact. Each bench passes
/// its own default (perf_smoke: BENCH_perf_smoke.json, perf_dataplane:
/// BENCH_perf_dataplane.json), so running several perf benches without the
/// knob set never overwrites one artifact with another.
[[nodiscard]] std::string env_perf_out(std::string_view fallback);

/// HBH_PROF_OUT — path for a standalone hbh.perf_profile/v1 phase-profile
/// JSON of the whole process (docs/OBSERVABILITY.md "Phase profiling");
/// empty = no profile file.
[[nodiscard]] std::string env_prof_out();

/// HBH_PERF_TOLERANCE — global multiplier applied to every per-metric
/// noise threshold in tools/perf_compare (>1 loosens the regression gate
/// on noisy machines; default 1).
[[nodiscard]] double env_perf_tolerance(double fallback = 1.0);

/// HBH_DP_ROUNDS / HBH_DP_WARMUP — measured and warmup data rounds of
/// bench/perf_dataplane. Counts in BENCH_perf_dataplane.json depend on
/// HBH_DP_ROUNDS, so baseline comparisons must use the recorded value.
[[nodiscard]] std::size_t env_dp_rounds(std::size_t fallback);
[[nodiscard]] std::size_t env_dp_warmup(std::size_t fallback);

/// HBH_DP_BURST — data emissions per perf_dataplane round (burst size).
/// Packet counts in BENCH_perf_dataplane.json scale with it, so baseline
/// comparisons must use the recorded value.
[[nodiscard]] std::size_t env_dp_burst(std::size_t fallback);

/// HBH_FASTPATH — nonzero (the default): Session installs the compiled
/// data-plane fast path (src/mcast/fastpath); 0 = interpreted per-hop
/// dispatch. Simulation outputs are byte-identical either way
/// (docs/PERFORMANCE.md "The compiled data-plane fast path").
[[nodiscard]] bool env_fastpath();

/// HBH_LOG_LEVEL — trace|debug|info|warn|error; empty = keep default.
[[nodiscard]] std::string env_log_level();

/// HBH_CHANNELS — largest channel count in ablation_state_scaling's sweep.
[[nodiscard]] std::size_t env_channels(std::size_t fallback);

/// HBH_CHURN_ON / HBH_CHURN_OFF — mean subscribed / unsubscribed dwell
/// times (time units) of the churn workload's exponential on/off process.
[[nodiscard]] double env_churn_on(double fallback);
[[nodiscard]] double env_churn_off(double fallback);

/// HBH_RATE — autonomous data emissions per time unit per channel in the
/// congestion workloads (TrafficSpec::rate; 0 keeps the bench default).
[[nodiscard]] double env_rate(double fallback);

/// HBH_PAYLOAD — application payload bytes padded onto every data packet
/// in the congestion workloads (TrafficSpec::payload_bytes).
[[nodiscard]] std::size_t env_payload(std::size_t fallback);

/// HBH_QUEUE_LIMIT — egress queue capacity (packets) applied to
/// capacitated links (LinkSpec::queue_limit).
[[nodiscard]] std::size_t env_queue_limit(std::size_t fallback);

/// HBH_AQM — queue discipline for capacitated links: "droptail" | "red"
/// (net::aqm_from_string); malformed values keep the fallback.
[[nodiscard]] std::string env_aqm(std::string_view fallback = "droptail");

/// HBH_AUDIT — forwarding-plane invariant auditor mode: unset/"0"/"off" =
/// disabled, "strict" = anomalies abort the run, anything else (e.g. "1",
/// "record") = anomalies are recorded only (docs/OBSERVABILITY.md
/// "Forwarding-plane invariant auditor").
[[nodiscard]] std::string env_audit();

/// HBH_AUDIT_OUT — path for a deterministic NDJSON anomaly-event stream
/// (schema hbh.audit/v1) from one instrumented serial re-run per protocol;
/// empty = no audit file.
[[nodiscard]] std::string env_audit_out();

}  // namespace hbh
