// Environment-variable configuration helpers for the bench binaries.
//
// Benches run unattended (`for b in build/bench/*; do $b; done`), so their
// knobs — trial count, seeds — come from the environment rather than argv:
// e.g. HBH_TRIALS=500 reruns a figure at the paper's full trial count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hbh {

/// Reads an integer environment variable; nullopt if unset or malformed.
[[nodiscard]] std::optional<std::int64_t> env_int(std::string_view name);

/// Reads an integer environment variable with a default.
[[nodiscard]] std::int64_t env_int_or(std::string_view name,
                                      std::int64_t fallback);

/// Reads a string environment variable with a default.
[[nodiscard]] std::string env_str_or(std::string_view name,
                                     std::string_view fallback);

}  // namespace hbh
