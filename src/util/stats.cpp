#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace hbh {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return n_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_half_width() const noexcept { return 1.96 * sem(); }

std::string RunningStats::to_string(int precision) const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << mean() << " ± " << ci95_half_width();
  return out.str();
}

double percentile(std::vector<double> samples, double p) {
  assert(!samples.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

}  // namespace hbh
