#include "routing/dijkstra.hpp"

#include <cassert>
#include <queue>

namespace hbh::routing {

MetricFn cost_metric() {
  return [](const net::Topology::Edge& e) { return e.attrs.cost; };
}

MetricFn delay_metric() {
  return [](const net::Topology::Edge& e) { return e.attrs.delay; };
}

SpfResult dijkstra(const net::Topology& topo, NodeId root,
                   const MetricFn& metric) {
  assert(topo.contains(root));
  const std::size_t n = topo.node_count();

  SpfResult out;
  out.root = root;
  out.dist.assign(n, kUnreachable);
  out.parent.assign(n, kNoNode);
  out.first_hop.assign(n, kNoNode);
  out.delay.assign(n, std::numeric_limits<Time>::infinity());

  struct QEntry {
    double dist;
    std::uint64_t order;  // settle-order tie-break for determinism
    std::uint32_t node;
  };
  struct Later {
    bool operator()(const QEntry& a, const QEntry& b) const noexcept {
      if (a.dist != b.dist) return a.dist > b.dist;
      return a.order > b.order;
    }
  };

  std::priority_queue<QEntry, std::vector<QEntry>, Later> frontier;
  std::vector<bool> settled(n, false);
  std::uint64_t order = 0;

  out.dist[root.index()] = 0;
  out.delay[root.index()] = 0;
  frontier.push(QEntry{0.0, order++, root.index()});

  while (!frontier.empty()) {
    const QEntry top = frontier.top();
    frontier.pop();
    if (settled[top.node]) continue;
    settled[top.node] = true;
    const NodeId u{top.node};

    for (const LinkId l : topo.out_links(u)) {
      const auto& e = topo.edge(l);
      if (!e.up) continue;  // down links carry no routes
      const double w = metric(e);
      assert(w > 0);
      const std::size_t v = e.to.index();
      const double candidate = out.dist[top.node] + w;
      if (candidate < out.dist[v]) {
        out.dist[v] = candidate;
        out.parent[v] = u;
        out.delay[v] = out.delay[top.node] + e.attrs.delay;
        out.first_hop[v] = (u == root) ? e.to : out.first_hop[top.node];
        frontier.push(QEntry{candidate, order++, static_cast<std::uint32_t>(v)});
      }
    }
  }
  return out;
}

}  // namespace hbh::routing
