#include "routing/dijkstra.hpp"

#include <algorithm>
#include <cassert>

namespace hbh::routing {

MetricFn cost_metric() {
  return [](const net::Topology::Edge& e) { return e.attrs.cost; };
}

MetricFn delay_metric() {
  return [](const net::Topology::Edge& e) { return e.attrs.delay; };
}

void dijkstra_into(const net::Topology& topo, NodeId root,
                   const MetricFn& metric, SpfResult& out,
                   DijkstraScratch& scratch) {
  assert(topo.contains(root));
  const std::size_t n = topo.node_count();

  // assign() reuses existing capacity: after the first call on a given
  // SpfResult/scratch pair, a recompute performs no allocations.
  out.root = root;
  out.dist.assign(n, kUnreachable);
  out.parent.assign(n, kNoNode);
  out.first_hop.assign(n, kNoNode);
  out.delay.assign(n, std::numeric_limits<Time>::infinity());
  scratch.settled.assign(n, 0);

  using QEntry = DijkstraScratch::QEntry;
  const auto later = [](const QEntry& a, const QEntry& b) noexcept {
    if (a.dist != b.dist) return a.dist > b.dist;
    return a.order > b.order;
  };
  auto& frontier = scratch.frontier;
  frontier.clear();
  std::uint64_t order = 0;

  out.dist[root.index()] = 0;
  out.delay[root.index()] = 0;
  frontier.push_back(QEntry{0.0, order++, root.index()});

  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), later);
    const QEntry top = frontier.back();
    frontier.pop_back();
    if (scratch.settled[top.node] != 0) continue;
    scratch.settled[top.node] = 1;
    const NodeId u{top.node};

    for (const LinkId l : topo.out_links(u)) {
      const auto& e = topo.edge(l);
      if (!e.up) continue;  // down links carry no routes
      const double w = metric(e);
      assert(w > 0);
      const std::size_t v = e.to.index();
      const double candidate = out.dist[top.node] + w;
      if (candidate < out.dist[v]) {
        out.dist[v] = candidate;
        out.parent[v] = u;
        out.delay[v] = out.delay[top.node] + e.attrs.delay;
        out.first_hop[v] = (u == root) ? e.to : out.first_hop[top.node];
        frontier.push_back(
            QEntry{candidate, order++, static_cast<std::uint32_t>(v)});
        std::push_heap(frontier.begin(), frontier.end(), later);
      }
    }
  }
}

SpfResult dijkstra(const net::Topology& topo, NodeId root,
                   const MetricFn& metric) {
  SpfResult out;
  DijkstraScratch scratch;
  dijkstra_into(topo, root, metric, out, scratch);
  return out;
}

}  // namespace hbh::routing
