// Single-source shortest paths over the directed topology.
//
// Unicast routes in the simulation are shortest paths under the
// per-direction link costs; because the two directions of a link have
// independent costs, route(a,b) and route(b,a) generally differ — the
// asymmetry at the heart of the paper. The metric is pluggable (QoS hook,
// paper §5 future work); by default it is the link cost.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "net/topology.hpp"
#include "util/ids.hpp"

namespace hbh::routing {

/// Maps an edge to its routing metric. Must be positive for every edge.
using MetricFn = std::function<double(const net::Topology::Edge&)>;

/// The default metric: the link's configured cost.
[[nodiscard]] MetricFn cost_metric();

/// The delay metric, for delay-based (QoS) routing experiments.
[[nodiscard]] MetricFn delay_metric();

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Shortest-path tree rooted at `root`, following *outgoing* edges (so the
/// result describes routes root -> v, matching data-plane direction).
struct SpfResult {
  NodeId root;
  std::vector<double> dist;      ///< metric distance root->v; kUnreachable if none
  std::vector<NodeId> parent;    ///< predecessor of v on the root->v path
  std::vector<NodeId> first_hop; ///< first node after root on the root->v path
  std::vector<Time> delay;       ///< propagation delay root->v along the path

  [[nodiscard]] bool reachable(NodeId v) const {
    return dist[v.index()] < kUnreachable;
  }
};

/// Reusable working memory for dijkstra_into(): the frontier heap storage
/// and the settled flags. Keeping one scratch (and one SpfResult) alive
/// across calls makes a recompute allocation-free once the buffers are
/// warm — the fault path (Session::recompute_routes) re-runs SPFs on every
/// link-down/up/crash event.
struct DijkstraScratch {
  struct QEntry {
    double dist;
    std::uint64_t order;  ///< settle-order tie-break for determinism
    std::uint32_t node;
  };
  std::vector<QEntry> frontier;
  std::vector<std::uint8_t> settled;
};

/// Runs Dijkstra from `root` into `out`, reusing the capacity of `out`'s
/// vectors and `scratch`'s buffers. Results are identical to dijkstra().
void dijkstra_into(const net::Topology& topo, NodeId root,
                   const MetricFn& metric, SpfResult& out,
                   DijkstraScratch& scratch);

/// Runs Dijkstra from `root`. Deterministic: ties are broken by preferring
/// the path found first under ascending (distance, settle-order) expansion,
/// with neighbor scan order fixed by edge insertion order.
[[nodiscard]] SpfResult dijkstra(const net::Topology& topo, NodeId root,
                                 const MetricFn& metric = cost_metric());

}  // namespace hbh::routing
