#include "routing/unicast.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hbh::routing {

UnicastRouting::UnicastRouting(const net::Topology& topo, MetricFn metric)
    : topo_(topo) {
  per_root_.reserve(topo.node_count());
  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    per_root_.push_back(dijkstra(topo, NodeId{i}, metric));
  }
}

NodeId UnicastRouting::next_hop(NodeId from, NodeId to) const {
  assert(topo_.contains(from) && topo_.contains(to));
  return per_root_[from.index()].first_hop[to.index()];
}

double UnicastRouting::distance(NodeId from, NodeId to) const {
  assert(topo_.contains(from) && topo_.contains(to));
  return per_root_[from.index()].dist[to.index()];
}

Time UnicastRouting::path_delay(NodeId from, NodeId to) const {
  assert(topo_.contains(from) && topo_.contains(to));
  return per_root_[from.index()].delay[to.index()];
}

std::vector<NodeId> UnicastRouting::path(NodeId from, NodeId to) const {
  assert(topo_.contains(from) && topo_.contains(to));
  std::vector<NodeId> nodes;
  if (from == to) {
    nodes.push_back(from);
    return nodes;
  }
  if (!reachable(from, to)) return nodes;  // empty: no route
  // Walk the parent chain of the SPF rooted at `from` back from `to`.
  const SpfResult& tree = per_root_[from.index()];
  for (NodeId at = to; at.valid(); at = tree.parent[at.index()]) {
    nodes.push_back(at);
  }
  std::reverse(nodes.begin(), nodes.end());
  assert(nodes.front() == from && nodes.back() == to);
  return nodes;
}

const SpfResult& UnicastRouting::spf(NodeId root) const {
  assert(topo_.contains(root));
  return per_root_[root.index()];
}

AsymmetryReport measure_asymmetry(const UnicastRouting& routes) {
  AsymmetryReport report;
  const std::size_t n = routes.topology().node_count();
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const NodeId na{a};
      const NodeId nb{b};
      if (!routes.reachable(na, nb) || !routes.reachable(nb, na)) continue;
      ++report.ordered_pairs;
      auto forward = routes.path(na, nb);
      auto backward = routes.path(nb, na);
      std::reverse(backward.begin(), backward.end());
      if (forward != backward) ++report.asymmetric_pairs;
      report.max_cost_skew =
          std::max(report.max_cost_skew,
                   std::abs(routes.distance(na, nb) - routes.distance(nb, na)));
    }
  }
  return report;
}

}  // namespace hbh::routing
