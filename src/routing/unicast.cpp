#include "routing/unicast.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "util/profiler.hpp"

namespace hbh::routing {

UnicastRouting::UnicastRouting(const net::Topology& topo, MetricFn metric)
    : topo_(topo),
      metric_(std::move(metric)),
      per_root_(topo.node_count()),
      computed_epoch_(topo.node_count(), 0) {}

const SpfResult& UnicastRouting::ensure(NodeId root) const {
  assert(topo_.contains(root));
  std::uint64_t& stamp = computed_epoch_[root.index()];
  if (stamp != epoch_) {
    HBH_PHASE("spf");
    dijkstra_into(topo_, root, metric_, per_root_[root.index()], scratch_);
    stamp = epoch_;
    ++spf_runs_;
  }
  return per_root_[root.index()];
}

NodeId UnicastRouting::next_hop(NodeId from, NodeId to) const {
  assert(topo_.contains(from) && topo_.contains(to));
  return ensure(from).first_hop[to.index()];
}

double UnicastRouting::distance(NodeId from, NodeId to) const {
  assert(topo_.contains(from) && topo_.contains(to));
  return ensure(from).dist[to.index()];
}

Time UnicastRouting::path_delay(NodeId from, NodeId to) const {
  assert(topo_.contains(from) && topo_.contains(to));
  return ensure(from).delay[to.index()];
}

std::vector<NodeId> UnicastRouting::path(NodeId from, NodeId to) const {
  assert(topo_.contains(from) && topo_.contains(to));
  std::vector<NodeId> nodes;
  if (from == to) {
    nodes.push_back(from);
    return nodes;
  }
  if (!reachable(from, to)) return nodes;  // empty: no route
  // Walk the parent chain of the SPF rooted at `from` back from `to`.
  const SpfResult& tree = ensure(from);
  for (NodeId at = to; at.valid(); at = tree.parent[at.index()]) {
    nodes.push_back(at);
  }
  std::reverse(nodes.begin(), nodes.end());
  assert(nodes.front() == from && nodes.back() == to);
  return nodes;
}

const SpfResult& UnicastRouting::spf(NodeId root) const {
  assert(topo_.contains(root));
  return ensure(root);
}

AsymmetryReport measure_asymmetry(const UnicastRouting& routes) {
  AsymmetryReport report;
  const std::size_t n = routes.topology().node_count();
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const NodeId na{a};
      const NodeId nb{b};
      if (!routes.reachable(na, nb) || !routes.reachable(nb, na)) continue;
      ++report.ordered_pairs;
      // path(a,b) equals reverse(path(b,a)) iff the two parent chains
      // mirror each other: walking b -> a through a's tree, every hop
      // u -> p (p = parent_a(u)) must satisfy parent_b(p) == u. The chain
      // of matches forces b's tree to thread the exact reversed sequence,
      // so no path vectors need materializing (the old implementation
      // allocated two per ordered pair — O(n²·pathlen) allocations).
      const SpfResult& tree_a = routes.spf(na);
      const SpfResult& tree_b = routes.spf(nb);
      bool symmetric = true;
      for (NodeId u = nb; u != na;) {
        const NodeId p = tree_a.parent[u.index()];
        if (tree_b.parent[p.index()] != u) {
          symmetric = false;
          break;
        }
        u = p;
      }
      if (!symmetric) ++report.asymmetric_pairs;
      report.max_cost_skew =
          std::max(report.max_cost_skew,
                   std::abs(routes.distance(na, nb) - routes.distance(nb, na)));
    }
  }
  return report;
}

}  // namespace hbh::routing
