// All-pairs unicast routing: the forwarding substrate every protocol uses.
//
// In the real Internet each router's FIB comes from its IGP; here we compute
// the equivalent — for every node, the next hop toward every destination —
// by running Dijkstra from each node over its outgoing edges. Routes are
// destination-based and hop-by-hop consistent (the next hop's route to the
// destination is the suffix of ours), so recursive-unicast forwarding
// behaves exactly as it would on real routers.
//
// SPFs are computed lazily per root: construction is O(1), and a root's
// tree is built on its first query (then cached). A topology change —
// link cost, link up/down — is signalled with invalidate(), which bumps
// the topology epoch; each root recomputes, into reused buffers, on its
// first query after the bump. Fault-heavy runs thus pay one Dijkstra per
// *queried* root per epoch instead of N up-front, and trials that touch
// only part of the topology never compute the rest.
//
// Like the rest of the simulation substrate, an instance is confined to
// one thread (the parallel experiment engine gives each trial its own
// Session and therefore its own UnicastRouting); the lazy cache mutates
// under const accessors and is not synchronized.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "routing/dijkstra.hpp"
#include "util/ids.hpp"

namespace hbh::routing {

class UnicastRouting {
 public:
  /// Prepares routing for the whole topology under `metric`. SPFs are
  /// computed on first use per root.
  explicit UnicastRouting(const net::Topology& topo,
                          MetricFn metric = cost_metric());

  /// Next hop on the shortest path from->to; kNoNode if to is unreachable
  /// or from == to.
  [[nodiscard]] NodeId next_hop(NodeId from, NodeId to) const;

  /// Metric distance of the route from->to (kUnreachable if none).
  [[nodiscard]] double distance(NodeId from, NodeId to) const;

  /// Propagation delay accumulated along the route from->to.
  [[nodiscard]] Time path_delay(NodeId from, NodeId to) const;

  [[nodiscard]] bool reachable(NodeId from, NodeId to) const {
    return distance(from, to) < kUnreachable;
  }

  /// Full node sequence of the route, inclusive of both endpoints.
  [[nodiscard]] std::vector<NodeId> path(NodeId from, NodeId to) const;

  [[nodiscard]] const net::Topology& topology() const noexcept {
    return topo_;
  }

  /// The shortest-path tree rooted at `root` (routes root -> *). The
  /// reference is invalidated by invalidate() followed by a query.
  [[nodiscard]] const SpfResult& spf(NodeId root) const;

  /// Marks every cached SPF stale after a topology change (cost edit,
  /// link up/down). Roots recompute lazily on their next query — the
  /// instantaneous-IGP-reconvergence model of Session::recompute_routes
  /// without the O(N·Dijkstra) up-front cost per fault event.
  void invalidate() noexcept { ++epoch_; }

  /// Bumped by every invalidate(); diagnostic for tests and telemetry.
  [[nodiscard]] std::uint64_t topology_epoch() const noexcept {
    return epoch_;
  }

  /// Total Dijkstra runs so far — observability into the lazy cache.
  [[nodiscard]] std::uint64_t spf_computations() const noexcept {
    return spf_runs_;
  }

 private:
  /// Returns the up-to-date SPF for `root`, recomputing if stale.
  const SpfResult& ensure(NodeId root) const;

  const net::Topology& topo_;
  MetricFn metric_;
  std::uint64_t epoch_ = 1;
  // Lazy per-root cache; mutable because queries are logically const.
  mutable std::vector<SpfResult> per_root_;
  mutable std::vector<std::uint64_t> computed_epoch_;  ///< 0 = never built
  mutable DijkstraScratch scratch_;
  mutable std::uint64_t spf_runs_ = 0;
};

/// Summary of how asymmetric a topology's routing is.
struct AsymmetryReport {
  std::size_t ordered_pairs = 0;      ///< pairs (a,b), a != b, both reachable
  std::size_t asymmetric_pairs = 0;   ///< path(a,b) != reverse(path(b,a))
  double max_cost_skew = 0.0;         ///< max |dist(a,b) - dist(b,a)|

  [[nodiscard]] double asymmetric_fraction() const {
    return ordered_pairs == 0
               ? 0.0
               : static_cast<double>(asymmetric_pairs) /
                     static_cast<double>(ordered_pairs);
  }
};

/// Measures routing asymmetry over all ordered node pairs (the statistic
/// the paper cites from Paxson's measurements, §2.3).
[[nodiscard]] AsymmetryReport measure_asymmetry(const UnicastRouting& routes);

}  // namespace hbh::routing
