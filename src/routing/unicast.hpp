// All-pairs unicast routing: the forwarding substrate every protocol uses.
//
// In the real Internet each router's FIB comes from its IGP; here we compute
// the equivalent — for every node, the next hop toward every destination —
// by running Dijkstra from each node over its outgoing edges. Routes are
// destination-based and hop-by-hop consistent (the next hop's route to the
// destination is the suffix of ours), so recursive-unicast forwarding
// behaves exactly as it would on real routers.
#pragma once

#include <vector>

#include "net/topology.hpp"
#include "routing/dijkstra.hpp"
#include "util/ids.hpp"

namespace hbh::routing {

class UnicastRouting {
 public:
  /// Computes routes for the whole topology under `metric`.
  explicit UnicastRouting(const net::Topology& topo,
                          MetricFn metric = cost_metric());

  /// Next hop on the shortest path from->to; kNoNode if to is unreachable
  /// or from == to.
  [[nodiscard]] NodeId next_hop(NodeId from, NodeId to) const;

  /// Metric distance of the route from->to (kUnreachable if none).
  [[nodiscard]] double distance(NodeId from, NodeId to) const;

  /// Propagation delay accumulated along the route from->to.
  [[nodiscard]] Time path_delay(NodeId from, NodeId to) const;

  [[nodiscard]] bool reachable(NodeId from, NodeId to) const {
    return distance(from, to) < kUnreachable;
  }

  /// Full node sequence of the route, inclusive of both endpoints.
  [[nodiscard]] std::vector<NodeId> path(NodeId from, NodeId to) const;

  [[nodiscard]] const net::Topology& topology() const noexcept {
    return topo_;
  }

  /// The shortest-path tree rooted at `root` (routes root -> *).
  [[nodiscard]] const SpfResult& spf(NodeId root) const;

 private:
  const net::Topology& topo_;
  std::vector<SpfResult> per_root_;
};

/// Summary of how asymmetric a topology's routing is.
struct AsymmetryReport {
  std::size_t ordered_pairs = 0;      ///< pairs (a,b), a != b, both reachable
  std::size_t asymmetric_pairs = 0;   ///< path(a,b) != reverse(path(b,a))
  double max_cost_skew = 0.0;         ///< max |dist(a,b) - dist(b,a)|

  [[nodiscard]] double asymmetric_fraction() const {
    return ordered_pairs == 0
               ? 0.0
               : static_cast<double>(asymmetric_pairs) /
                     static_cast<double>(ordered_pairs);
  }
};

/// Measures routing asymmetry over all ordered node pairs (the statistic
/// the paper cites from Paxson's measurements, §2.3).
[[nodiscard]] AsymmetryReport measure_asymmetry(const UnicastRouting& routes);

}  // namespace hbh::routing
