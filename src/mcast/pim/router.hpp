// PIM-style baseline routers (the paper's §4.2 "PIM-SM" and "PIM-SS").
//
// Both protocols build *reverse* shortest-path trees by propagating joins
// hop-by-hop toward a root (the source for PIM-SS ≡ PIM-SSM's tree shape;
// the rendez-vous point for PIM-SM's shared tree). Every router on a join
// path records the neighbor the join arrived from as an outgoing
// interface (oif) for the group, then forwards the join toward the root.
// Data flows down the installed oifs via true multicast replication —
// RPF guarantees at most one copy of a packet per link.
//
// PIM-SM data path: the source unicast-encapsulates data to the RP
// (register tunnel); the RP router decapsulates and injects it into the
// shared tree. Receiver delay is therefore delay(S->RP shortest path) +
// delay down the reverse path RP->r — the two-part path of §4.2.2.
#pragma once

#include <map>
#include <unordered_map>

#include "mcast/common/soft_state.hpp"
#include "net/network.hpp"
#include "routing/unicast.hpp"

namespace hbh::mcast::pim {

class PimRouter : public net::ProtocolAgent {
 public:
  explicit PimRouter(McastConfig config) : config_(config) {}

  void handle(net::Packet&& packet, NodeId from) override;

  /// Outgoing interfaces currently installed for a channel (tests).
  [[nodiscard]] std::vector<NodeId> oifs(const net::Channel& ch) const;

  /// Raw oif map for a channel, with soft-state entries (nullptr when the
  /// router holds no group state). The compiled fast path reads neighbors
  /// and expiry horizons from it.
  [[nodiscard]] const std::map<NodeId, SoftEntry>* oif_entries(
      const net::Channel& ch) const {
    const auto it = groups_.find(ch);
    return it == groups_.end() ? nullptr : &it->second.oifs;
  }

  /// Mutable state exposition for the invariant auditor's fault-seeding
  /// tests; production code never mutates through this.
  [[nodiscard]] std::map<NodeId, SoftEntry>* mutable_oif_entries(
      const net::Channel& ch) {
    const auto it = groups_.find(ch);
    return it == groups_.end() ? nullptr : &it->second.oifs;
  }

 private:
  struct GroupState {
    Ipv4Addr root;
    std::map<NodeId, SoftEntry> oifs;  ///< downstream neighbor -> liveness
  };

  void on_join(net::Packet&& packet, NodeId from);
  void on_prune(net::Packet&& packet, NodeId from);
  void on_data(net::Packet&& packet, NodeId from);
  /// Lazily drops dead oifs; each one becomes an "evict" instant under
  /// `ctx` (the span of the packet whose arrival triggered the purge).
  void purge(const net::Channel& ch, const net::TraceContext& ctx = {});

  /// Replicates `packet` to every live oif except `skip`.
  void replicate(const net::Channel& ch, const net::Packet& packet,
                 NodeId skip);

  [[nodiscard]] Time now() const { return simulator().now(); }

  McastConfig config_;
  std::unordered_map<net::Channel, GroupState> groups_;
};

/// Picks the rendez-vous point for PIM-SM: the router minimizing the total
/// shortest-path cost toward all other routers (an outbound medoid — the
/// paper does not specify RP placement; see DESIGN.md §5).
[[nodiscard]] NodeId choose_rp(const routing::UnicastRouting& routes,
                               const std::vector<NodeId>& routers);

/// Delay-aware RP placement: minimizes the expected PIM-SM receiver delay
/// — the register leg dist(source -> rp) plus the mean data-direction
/// delay down the shared tree (the reverse of each router's rp-bound
/// shortest path). This is how an operator would place the RP for one
/// dominant source, and it is what makes the paper's Fig. 8(a)
/// "shared tree beats source tree" effect visible.
[[nodiscard]] NodeId choose_rp_delay_aware(
    const routing::UnicastRouting& routes, const std::vector<NodeId>& routers,
    NodeId source);

}  // namespace hbh::mcast::pim
