#include "mcast/pim/router.hpp"

#include <cassert>

#include "util/log.hpp"

namespace hbh::mcast::pim {

using net::Packet;
using net::PacketType;

std::vector<NodeId> PimRouter::oifs(const net::Channel& ch) const {
  std::vector<NodeId> out;
  const auto it = groups_.find(ch);
  if (it == groups_.end()) return out;
  for (const auto& [neighbor, entry] : it->second.oifs) {
    if (!entry.dead(simulator().now())) out.push_back(neighbor);
  }
  return out;
}

void PimRouter::purge(const net::Channel& ch, const net::TraceContext& ctx) {
  const auto it = groups_.find(ch);
  if (it == groups_.end()) return;
  const bool tracing = ctx.active() && net().trace_hook() != nullptr;
  auto& oifs = it->second.oifs;
  bool changed = false;
  for (auto e = oifs.begin(); e != oifs.end();) {
    if (e->second.dead(now())) {
      if (tracing) trace_instant(ctx, "evict", ch);
      e = oifs.erase(e);
      changed = true;
    } else {
      e = std::next(e);
    }
  }
  if (oifs.empty()) groups_.erase(it);
  if (changed) note_table_mutation();
}

void PimRouter::handle(Packet&& packet, NodeId from) {
  switch (packet.type) {
    case PacketType::kPimJoin:
      on_join(std::move(packet), from);
      return;
    case PacketType::kPimPrune:
      on_prune(std::move(packet), from);
      return;
    case PacketType::kData:
      on_data(std::move(packet), from);
      return;
    case PacketType::kJoin:
    case PacketType::kTree:
    case PacketType::kFusion:
      net::ProtocolAgent::handle(std::move(packet), from);
      return;
  }
}

void PimRouter::on_prune(Packet&& packet, NodeId from) {
  const net::Channel ch = packet.channel;
  purge(ch, packet.trace);
  const auto it = groups_.find(ch);
  if (it == groups_.end()) {
    // No local state (already expired): let the prune keep travelling so
    // upstream state still tears down.
    if (packet.dst != self_addr()) forward(std::move(packet));
    return;
  }
  if (!from.valid()) return;
  // Explicit fast leave: tear down the oif the prune arrived on. If other
  // receivers share that oif, their next periodic join (<= one period)
  // re-installs it — the standard PIM prune-override compromise.
  if (it->second.oifs.erase(from) != 0) {
    trace_instant(packet.trace, "oif-prune", ch, packet.pim_join().receiver);
    note_table_mutation();
  }
  if (it->second.oifs.empty()) {
    groups_.erase(it);
    // The branch below us is gone entirely: keep pruning upstream unless
    // we are the tree root (the prune's addressee).
    if (packet.dst != self_addr()) forward(std::move(packet));
  }
  log(LogLevel::kTrace, to_string(self()), " PIM pruned oif ",
      to_string(from), " for ", ch.to_string());
}

void PimRouter::on_join(Packet&& packet, NodeId from) {
  const net::Channel ch = packet.channel;
  purge(ch, packet.trace);
  if (!from.valid()) {
    // Self-originated (shouldn't happen for routers); just forward.
    forward(std::move(packet));
    return;
  }
  GroupState& st = groups_[ch];
  st.root = packet.pim_join().root;
  auto [it, inserted] = st.oifs.try_emplace(from, config_, now());
  if (!inserted) it->second.refresh(config_, now());
  if (inserted) {
    trace_instant(packet.trace, "oif-install", ch, packet.pim_join().receiver);
    note_table_mutation();
    log(LogLevel::kTrace, to_string(self()), " PIM oif += ", to_string(from),
        " for ", ch.to_string());
  }
  if (packet.dst == self_addr()) return;  // we are the root (RP) — stop
  forward(std::move(packet));             // keep travelling toward the root
}

void PimRouter::replicate(const net::Channel& ch, const Packet& packet,
                          NodeId skip) {
  const auto it = groups_.find(ch);
  if (it == groups_.end()) return;
  for (const auto& [neighbor, entry] : it->second.oifs) {
    if (neighbor == skip || entry.dead(now())) continue;
    net().send_direct(self(), neighbor, packet);
  }
}

void PimRouter::on_data(Packet&& packet, NodeId from) {
  const net::Channel ch = packet.channel;
  purge(ch, packet.trace);
  if (packet.data().encapsulated && packet.dst == self_addr()) {
    // We are the RP: decapsulate the register-tunnelled packet and inject
    // it into the shared tree (group-addressed from here on).
    Packet decap = packet;
    decap.data().encapsulated = false;
    decap.dst = ch.group.addr();
    replicate(ch, decap, kNoNode);
    return;
  }
  if (packet.dst == ch.group.addr()) {
    // Group-addressed data travelling down the tree: RPF replication to
    // all oifs except the one it arrived on.
    replicate(ch, packet, from);
    return;
  }
  // Unicast transit (e.g. register tunnel S->RP passing through).
  net::ProtocolAgent::handle(std::move(packet), from);
}

NodeId choose_rp_delay_aware(const routing::UnicastRouting& routes,
                             const std::vector<NodeId>& routers,
                             NodeId source) {
  assert(!routers.empty());
  const auto& topo = routes.topology();
  NodeId best = kNoNode;
  double best_score = routing::kUnreachable;
  for (const NodeId candidate : routers) {
    double score = routes.path_delay(source, candidate);  // register leg
    double down = 0;
    std::size_t n = 0;
    for (const NodeId other : routers) {
      if (other == candidate) continue;
      // Shared-tree data path to `other`: the reverse of other->rp,
      // traversed in the data direction.
      const auto up = routes.path(other, candidate);
      Time delay = 0;
      for (std::size_t i = 0; i + 1 < up.size(); ++i) {
        const auto link = topo.find_link(up[i + 1], up[i]);
        assert(link.has_value());
        delay += topo.edge(*link).attrs.delay;
      }
      down += delay;
      ++n;
    }
    if (n != 0) score += down / static_cast<double>(n);
    if (score < best_score) {
      best_score = score;
      best = candidate;
    }
  }
  return best;
}

NodeId choose_rp(const routing::UnicastRouting& routes,
                 const std::vector<NodeId>& routers) {
  assert(!routers.empty());
  NodeId best = kNoNode;
  double best_total = routing::kUnreachable;
  for (const NodeId candidate : routers) {
    double total = 0;
    for (const NodeId other : routers) {
      if (other == candidate) continue;
      total += routes.distance(candidate, other);
    }
    if (total < best_total) {
      best_total = total;
      best = candidate;
    }
  }
  return best;
}

}  // namespace hbh::mcast::pim
