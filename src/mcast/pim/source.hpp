// The data source for the PIM baselines.
//
// PIM-SS: data is handed group-addressed to the access router, which
// forwards it down the (S,G) reverse SPT rooted at the source.
// PIM-SM: data is unicast-encapsulated toward the RP (register tunnel);
// the RP injects it into the (*,G) shared tree.
#pragma once

#include "mcast/common/soft_state.hpp"
#include "net/network.hpp"

namespace hbh::mcast::pim {

enum class PimMode {
  kSourceTree,  ///< PIM-SS: reverse SPT rooted at the source
  kSharedTree,  ///< PIM-SM: shared tree rooted at the RP, register tunnel
};

class PimSource : public net::ProtocolAgent {
 public:
  /// For kSharedTree, `rp` must be the RP router's unicast address.
  PimSource(net::Channel channel, PimMode mode, Ipv4Addr rp = kNoAddr)
      : channel_(channel), mode_(mode), rp_(rp) {}

  void handle(net::Packet&& packet, NodeId from) override;

  /// Emits one data packet (`pad` extra payload bytes for capacity
  /// accounting). Returns the number of copies sent (always 1; replication
  /// happens inside the network).
  std::size_t send_data(std::uint64_t probe, std::uint32_t seq,
                        std::uint32_t pad = 0);

  [[nodiscard]] const net::Channel& channel() const noexcept {
    return channel_;
  }
  [[nodiscard]] PimMode mode() const noexcept { return mode_; }

 private:
  net::Channel channel_;
  PimMode mode_;
  Ipv4Addr rp_;
};

}  // namespace hbh::mcast::pim
