#include "mcast/pim/source.hpp"

#include <cassert>

#include "util/profiler.hpp"

namespace hbh::mcast::pim {

using net::Packet;
using net::PacketType;

void PimSource::handle(Packet&& packet, NodeId from) {
  if (packet.dst == self_addr()) {
    // Periodic (S,G) joins terminate at the source host; the access router
    // already recorded its oif while forwarding them.
    return;
  }
  net::ProtocolAgent::handle(std::move(packet), from);
}

std::size_t PimSource::send_data(std::uint64_t probe, std::uint32_t seq,
                                 std::uint32_t pad) {
  HBH_PHASE("data_fanout");
  Packet data;
  data.src = self_addr();
  data.channel = channel_;
  data.type = PacketType::kData;
  // One emission = one root span; RP decapsulation and oif replication
  // downstream inherit it via the packet context.
  data.trace = trace_root("data", channel_, self_addr());

  if (mode_ == PimMode::kSharedTree) {
    assert(!rp_.unspecified());
    data.dst = rp_;
    data.payload = net::DataPayload{probe, seq, simulator().now(),
                                    /*encapsulated=*/true, pad};
    forward(std::move(data));
    return 1;
  }

  // PIM-SS: group-addressed over the access link; the first-hop router
  // replicates down the reverse SPT.
  data.dst = channel_.group.addr();
  data.payload = net::DataPayload{probe, seq, simulator().now(), false, pad};
  const auto links = net().topology().out_links(self());
  assert(!links.empty());  // hosts are degree-1 stubs
  const NodeId access_router = net().topology().edge(links[0]).to;
  net().send_direct(self(), access_router, std::move(data));
  return 1;
}

}  // namespace hbh::mcast::pim
