#include "mcast/hbh/tables.hpp"

namespace hbh::mcast::hbh {

SoftEntry* Mft::find(Ipv4Addr target) {
  const auto it = entries_.find(target);
  return it == entries_.end() ? nullptr : &it->second;
}

const SoftEntry* Mft::find(Ipv4Addr target) const {
  const auto it = entries_.find(target);
  return it == entries_.end() ? nullptr : &it->second;
}

SoftEntry& Mft::upsert(Ipv4Addr target, const McastConfig& cfg, Time now) {
  auto [it, inserted] = entries_.try_emplace(target, cfg, now);
  if (!inserted) it->second.refresh(cfg, now);
  return it->second;
}

std::size_t Mft::purge(Time now, std::vector<Ipv4Addr>* evicted) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.dead(now)) {
      if (evicted != nullptr) evicted->push_back(it->first);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<Ipv4Addr> Mft::data_targets(Time now) const {
  std::vector<Ipv4Addr> out;
  for (const auto& [target, entry] : entries_) {
    if (!entry.dead(now) && !entry.marked(now)) out.push_back(target);
  }
  return out;
}

std::vector<Ipv4Addr> Mft::tree_targets(Time now) const {
  std::vector<Ipv4Addr> out;
  for (const auto& [target, entry] : entries_) {
    if (!entry.dead(now) && !entry.stale(now)) out.push_back(target);
  }
  return out;
}

std::vector<Ipv4Addr> Mft::live_targets(Time now) const {
  std::vector<Ipv4Addr> out;
  for (const auto& [target, entry] : entries_) {
    if (!entry.dead(now)) out.push_back(target);
  }
  return out;
}

std::string Mft::to_string(Time now) const {
  std::string out = "{";
  bool comma = false;
  for (const auto& [target, entry] : entries_) {
    if (comma) out += ", ";
    out += target.to_string() + ":" + entry.state_string(now);
    comma = true;
  }
  return out + "}";
}

}  // namespace hbh::mcast::hbh
