// The HBH router agent: Appendix A's message processing rules.
//
// Join rules (Fig. 9a):
//   J1 router has no MFT<S>            -> forward join unchanged
//   J2 R not in MFT<S>                 -> forward join unchanged
//   J3 R in MFT<S>                     -> intercept: refresh R, emit join(S,B)
//   (plus §3.1: "the first join issued by a receiver is never intercepted")
//
// Tree rules (Fig. 9c), B receiving tree(S, R):
//   T1 branching, addressed to B       -> discard; re-emit tree(S,Ri) for
//                                         every non-stale MFT entry
//   T2 branching, R new                -> insert R; fusion upstream; forward
//   T3 branching, R in MFT             -> refresh R; fusion upstream; forward
//   T4 not on tree                     -> create MCT{R}; forward
//   T6 MCT contains R                  -> refresh MCT; forward
//   T7 MCT stale                       -> replace MCT entry with R; forward
//   T8 MCT fresh, R different          -> become branching: MFT{old, R},
//                                         destroy MCT, fusion upstream,
//                                         forward with last_branch = B
//
// Fusion rules (Fig. 9b), B receiving fusion(S, R1..Rn) from Bp:
//   F1 not addressed to B              -> forward upstream
//   F2 addressed to B                  -> mark listed entries present in MFT
//   F3 Bp absent from MFT              -> insert Bp with t1 expired (stale)
//   F4 Bp present                      -> refresh t2 only; t1 stays as-is
//
// Data plane: a data packet addressed to B (branching) is consumed and one
// modified copy is sent to every non-marked live MFT entry.
#pragma once

#include <unordered_map>

#include "mcast/common/pacing.hpp"
#include "mcast/common/soft_state.hpp"
#include "mcast/hbh/tables.hpp"
#include "net/network.hpp"

namespace hbh::mcast::hbh {

/// Applies fusion rules F2–F4 to an MFT (shared by router and source).
void apply_fusion(Mft& mft, const net::FusionPayload& fusion,
                  const McastConfig& cfg, Time now);

class HbhRouter : public net::ProtocolAgent {
 public:
  explicit HbhRouter(McastConfig config) : config_(config) {}

  void handle(net::Packet&& packet, NodeId from) override;

  /// Introspection for tests and the tree-dump tooling. Null if this
  /// router has no state for the channel.
  [[nodiscard]] const ChannelState* state(const net::Channel& ch) const;

  /// Mutable state exposition for the invariant auditor's fault-seeding
  /// tests (e.g. forcing a stale entry to prove leak detection fires).
  /// Production code never mutates through this.
  [[nodiscard]] ChannelState* mutable_state(const net::Channel& ch) {
    return const_cast<ChannelState*>(
        static_cast<const HbhRouter*>(this)->state(ch));
  }

  /// Number of structural table changes (entry create/destroy, MCT<->MFT
  /// conversions) — the "tree stability" metric of Figure 4.
  [[nodiscard]] std::uint64_t structural_changes() const noexcept {
    return structural_changes_;
  }

  /// The same counter restricted to one channel (multi-channel sessions
  /// report per-handle stability; the totals above stay the cross-channel
  /// sum).
  [[nodiscard]] std::uint64_t structural_changes(
      const net::Channel& ch) const {
    const auto it = structural_by_channel_.find(ch);
    return it == structural_by_channel_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::unordered_map<net::Channel, std::uint64_t>&
  structural_by_channel() const noexcept {
    return structural_by_channel_;
  }

  /// Joins intercepted under rule J3 (HBH's signature mechanism: refresh
  /// locally, join upstream as ourselves) — a telemetry gauge input.
  [[nodiscard]] std::uint64_t joins_intercepted() const noexcept {
    return joins_intercepted_;
  }

  /// The duplicate-suppression guard consulted before every data fan-out.
  /// The compiled fast path calls the live guard for its replayed hops so
  /// the ring evolves exactly as under interpreted dispatch.
  [[nodiscard]] ReplicationGuard& replication_guard(const net::Channel& ch) {
    return guards_[ch];
  }

 private:
  void on_join(net::Packet&& packet);
  void on_tree(net::Packet&& packet);
  void on_fusion(net::Packet&& packet);
  void on_data(net::Packet&& packet);

  /// Sends join(S, B) toward the source (a branching router joining the
  /// channel itself at the next upstream branching router). `ctx` is the
  /// causal parent — the span of the join that triggered the interception.
  void send_self_join(const net::Channel& ch, const net::TraceContext& ctx);

  /// Sends fusion(S, <all live MFT targets>) addressed to `upstream`,
  /// causally parented on the tree message that triggered it.
  void send_fusion(const net::Channel& ch, Mft& mft, Ipv4Addr upstream,
                   const net::TraceContext& ctx);

  /// Lazily purges dead state for the channel; drops empty tables. Evicted
  /// targets are traced as "evict" instants under `ctx` (the span of the
  /// packet whose arrival triggered the purge).
  void purge(const net::Channel& ch, const net::TraceContext& ctx = {});

  /// Records `n` structural changes against `ch` (and the global total),
  /// and flags the mutation to the fabric for fast-path invalidation.
  void note_structural(const net::Channel& ch, std::uint64_t n) {
    if (n == 0) return;
    structural_changes_ += n;
    structural_by_channel_[ch] += n;
    note_table_mutation();
  }

  [[nodiscard]] Time now() const { return simulator().now(); }

  McastConfig config_;
  std::unordered_map<net::Channel, ChannelState> channels_;
  std::unordered_map<net::Channel, TreePacer> pacers_;
  std::unordered_map<net::Channel, ReplicationGuard> guards_;
  std::unordered_map<net::Channel, std::uint32_t> last_wave_;
  /// Highest refresh wave observed per channel; trees from older waves are
  /// forwarded but never mutate state (stale-straggler rejection under
  /// reordering — see docs/RESILIENCE.md).
  std::unordered_map<net::Channel, std::uint32_t> seen_wave_;
  std::uint64_t structural_changes_ = 0;
  std::unordered_map<net::Channel, std::uint64_t> structural_by_channel_;
  std::uint64_t joins_intercepted_ = 0;
};

}  // namespace hbh::mcast::hbh
