// HBH's two routing tables (§3): the Multicast Control Table kept by
// non-branching on-tree routers and the Multicast Forwarding Table kept by
// branching routers (and by the source, which is the tree root).
//
// Key difference from REUNITE (§3): an HBH MFT entry stores the address of
// the *next branching node* (or of a receiver, for the branching router
// nearest that receiver) — never a remote receiver used as a forwarding
// destination — and there is no dst field. Data arriving at a branching
// router is addressed to the router itself.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mcast/common/soft_state.hpp"
#include "util/ipv4.hpp"

namespace hbh::mcast::hbh {

/// The single-entry control table of a non-branching on-tree router.
struct Mct {
  Ipv4Addr target;   ///< the receiver whose tree messages flow through here
  SoftEntry state;
};

/// Forwarding table of a branching router: target -> soft state.
///
/// Entry semantics (Appendix A):
///  * fresh           — receives data copies and downstream tree messages
///  * stale           — receives data copies only (no tree messages)
///  * marked (+fresh) — receives tree messages only (no data copies)
/// Dead entries (t2 expired) are purged lazily by purge().
class Mft {
 public:
  using Map = std::map<Ipv4Addr, SoftEntry>;  // ordered => deterministic

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  [[nodiscard]] bool contains(Ipv4Addr target) const {
    return entries_.contains(target);
  }
  [[nodiscard]] SoftEntry* find(Ipv4Addr target);
  [[nodiscard]] const SoftEntry* find(Ipv4Addr target) const;

  /// Inserts a fresh entry (or fully refreshes an existing one).
  SoftEntry& upsert(Ipv4Addr target, const McastConfig& cfg, Time now);

  /// Removes entries whose t2 expired. Returns number removed; when
  /// `evicted` is non-null (tracing) the removed targets are appended.
  std::size_t purge(Time now, std::vector<Ipv4Addr>* evicted = nullptr);

  void erase(Ipv4Addr target) { entries_.erase(target); }

  /// Targets eligible for data copies: not marked, not dead (stale is OK).
  [[nodiscard]] std::vector<Ipv4Addr> data_targets(Time now) const;

  /// Targets eligible for downstream tree messages: not stale, not dead
  /// (marked entries *do* receive tree messages).
  [[nodiscard]] std::vector<Ipv4Addr> tree_targets(Time now) const;

  /// All live (non-dead) targets — the node list a fusion message carries.
  [[nodiscard]] std::vector<Ipv4Addr> live_targets(Time now) const;

  [[nodiscard]] const Map& raw() const noexcept { return entries_; }
  Map& raw() noexcept { return entries_; }

  [[nodiscard]] std::string to_string(Time now) const;

 private:
  Map entries_;
};

/// Per-channel HBH router state: exactly one of MCT / MFT is active for an
/// on-tree router (Appendix A: "Each HBH router in S's distribution tree
/// has either a MCT<S> or a MFT<S>").
struct ChannelState {
  std::optional<Mct> mct;
  std::optional<Mft> mft;

  [[nodiscard]] bool branching() const noexcept { return mft.has_value(); }
};

}  // namespace hbh::mcast::hbh
