// The HBH channel source.
//
// The source S owns the channel <S, G>: it accepts join messages (which
// always reach it at least once per receiver thanks to the "first join is
// never intercepted" rule), keeps the root MFT, periodically multicasts
// tree(S, R) messages for every non-stale entry, and addresses each data
// packet to its data-eligible entries (receivers or downstream branching
// nodes).
#pragma once

#include "mcast/hbh/tables.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

#include <memory>

namespace hbh::mcast::hbh {

class HbhSource : public net::ProtocolAgent {
 public:
  HbhSource(net::Channel channel, McastConfig config)
      : channel_(channel), config_(config) {}

  void start() override;

  void handle(net::Packet&& packet, NodeId from) override;

  /// Emits one data packet (stamped with the current time) toward every
  /// data-eligible MFT entry; `pad` extra payload bytes ride along for
  /// capacity accounting. Returns the number of copies sent.
  std::size_t send_data(std::uint64_t probe, std::uint32_t seq,
                        std::uint32_t pad = 0);

  [[nodiscard]] const net::Channel& channel() const noexcept {
    return channel_;
  }
  [[nodiscard]] const Mft& mft() const noexcept { return mft_; }

  /// True once at least one receiver/branch is attached.
  [[nodiscard]] bool has_members() const noexcept { return !mft_.empty(); }

 private:
  void emit_tree_round();

  net::Channel channel_;
  McastConfig config_;
  Mft mft_;
  std::uint32_t wave_ = 0;  ///< refresh round stamped into tree messages
  std::unique_ptr<sim::PeriodicTimer> tree_timer_;
};

}  // namespace hbh::mcast::hbh
