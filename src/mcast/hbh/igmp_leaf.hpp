// The HBH <-> IP Multicast boundary (paper §3: "HBH can support IP
// Multicast clouds as leaves of the distribution tree"; formalizing this
// interface is the paper's §5 future work).
//
// An IgmpLeafRouter is a border router fronting a classic IP-Multicast
// leaf network. Locally attached hosts signal membership with IGMP-style
// reports (modelled as pim-join/prune messages addressed to the router);
// the router then joins the HBH channel *itself* — one membership, one
// tree leaf, regardless of how many local members exist — and replicates
// arriving channel data onto the member-facing links. This is what makes
// the paper's §4.1 note true by construction: local receivers do not
// influence the cost of the backbone tree.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "mcast/hbh/router.hpp"
#include "sim/simulator.hpp"

namespace hbh::mcast::hbh {

class IgmpLeafRouter : public HbhRouter {
 public:
  explicit IgmpLeafRouter(McastConfig config)
      : HbhRouter(config), config_(config) {}

  void handle(net::Packet&& packet, NodeId from) override;

  /// Local (IGMP) members currently subscribed to `ch`.
  [[nodiscard]] std::vector<NodeId> local_members(const net::Channel& ch) const;

  /// True while this router maintains an upstream HBH membership for `ch`.
  [[nodiscard]] bool upstream_member(const net::Channel& ch) const {
    return groups_.contains(ch);
  }

 private:
  struct LeafGroup {
    std::map<NodeId, SoftEntry> members;  ///< host neighbor -> liveness
    std::unique_ptr<sim::PeriodicTimer> join_timer;
    bool first_join_sent = false;
  };

  void on_igmp_report(const net::Channel& ch, NodeId host);
  void on_igmp_leave(const net::Channel& ch, NodeId host);
  void send_upstream_join(const net::Channel& ch);
  void purge_members(const net::Channel& ch);

  McastConfig config_;
  std::unordered_map<net::Channel, LeafGroup> groups_;
};

}  // namespace hbh::mcast::hbh
