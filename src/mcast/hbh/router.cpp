#include "mcast/hbh/router.hpp"

#include <cassert>

#include "util/log.hpp"

namespace hbh::mcast::hbh {

using net::Packet;
using net::PacketType;

void apply_fusion(Mft& mft, const net::FusionPayload& fusion,
                  const McastConfig& cfg, Time now) {
  // F2: mark every listed receiver we keep an entry for. Marked entries
  // keep receiving tree messages but no data — the fusion origin Bp takes
  // over data duplication for them. The mark decays (t1) unless the next
  // fusion re-asserts it, so a crashed Bp cannot starve its receivers.
  for (const Ipv4Addr r : fusion.receivers) {
    if (SoftEntry* entry = mft.find(r); entry != nullptr) {
      entry->mark(cfg, now);
    }
  }
  // F3/F4: ensure Bp is present. A fusion-created entry is born stale
  // (data flows to Bp, but no tree messages — those only start once Bp's
  // own joins arrive and fully refresh the entry).
  if (SoftEntry* bp = mft.find(fusion.origin); bp != nullptr) {
    bp->refresh_keepalive(cfg, now);  // F4: t2 only; t1 untouched
  } else {
    SoftEntry& fresh = mft.upsert(fusion.origin, cfg, now);
    fresh.expire_t1(now);  // F3: born stale
  }
}

const ChannelState* HbhRouter::state(const net::Channel& ch) const {
  const auto it = channels_.find(ch);
  return it == channels_.end() ? nullptr : &it->second;
}

void HbhRouter::handle(Packet&& packet, NodeId from) {
  (void)from;
  switch (packet.type) {
    case PacketType::kJoin:
      on_join(std::move(packet));
      return;
    case PacketType::kTree:
      on_tree(std::move(packet));
      return;
    case PacketType::kFusion:
      on_fusion(std::move(packet));
      return;
    case PacketType::kData:
      on_data(std::move(packet));
      return;
    case PacketType::kPimJoin:
    case PacketType::kPimPrune:
      // Not HBH messages; behave as a plain unicast router.
      net::ProtocolAgent::handle(std::move(packet), from);
      return;
  }
}

void HbhRouter::purge(const net::Channel& ch, const net::TraceContext& ctx) {
  const auto it = channels_.find(ch);
  if (it == channels_.end()) return;
  ChannelState& st = it->second;
  const bool tracing = ctx.active() && net().trace_hook() != nullptr;
  if (st.mct && st.mct->state.dead(now())) {
    if (tracing) trace_instant(ctx, "evict", ch, st.mct->target);
    st.mct.reset();
    note_structural(ch, 1);
  }
  if (st.mft) {
    std::vector<Ipv4Addr> evicted;
    note_structural(ch, st.mft->purge(now(), tracing ? &evicted : nullptr));
    for (const Ipv4Addr target : evicted) {
      trace_instant(ctx, "evict", ch, target);
    }
    if (st.mft->empty()) {
      st.mft.reset();
      note_structural(ch, 1);
    }
  }
  if (!st.mct && !st.mft) channels_.erase(it);
}

void HbhRouter::send_self_join(const net::Channel& ch,
                               const net::TraceContext& ctx) {
  Packet join;
  join.src = self_addr();
  join.dst = ch.source;
  join.channel = ch;
  join.type = PacketType::kJoin;
  join.trace = ctx;
  join.payload = net::JoinPayload{self_addr(), /*first=*/false};
  forward(std::move(join));
}

void HbhRouter::send_fusion(const net::Channel& ch, Mft& mft,
                            Ipv4Addr upstream, const net::TraceContext& ctx) {
  if (upstream.unspecified()) upstream = ch.source;
  Packet fusion;
  fusion.src = self_addr();
  fusion.dst = upstream;
  fusion.channel = ch;
  fusion.type = PacketType::kFusion;
  fusion.trace = ctx;
  fusion.payload = net::FusionPayload{mft.live_targets(now()), self_addr()};
  log(LogLevel::kDebug, to_string(self()), " fusion -> ", upstream.to_string(),
      " ", mft.to_string(now()));
  forward(std::move(fusion));
}

void HbhRouter::on_join(Packet&& packet) {
  const net::Channel ch = packet.channel;
  const net::JoinPayload join = packet.join();
  if (packet.dst == self_addr()) return;  // joins are addressed to sources
  purge(ch, packet.trace);

  // §3.1: the first join must reach the source so it can start emitting
  // tree(S, R) messages along the shortest path S -> R.
  if (!join.first) {
    const auto it = channels_.find(ch);
    if (it != channels_.end() && it->second.mft) {
      Mft& mft = *it->second.mft;
      if (SoftEntry* entry = mft.find(join.receiver); entry != nullptr) {
        // J3: intercept. Full refresh (marked entries stay marked: the
        // refresh keeps t1/t2 alive so tree messages keep flowing to R).
        entry->refresh(config_, now());
        ++joins_intercepted_;
        trace_instant(packet.trace, "join-intercept", ch, join.receiver);
        log(LogLevel::kTrace, to_string(self()), " intercepts join(",
            join.receiver.to_string(), ")");
        send_self_join(ch, packet.trace);
        return;
      }
    }
  }
  // J1/J2: forward unchanged toward the source.
  forward(std::move(packet));
}

void HbhRouter::on_tree(Packet&& packet) {
  const net::Channel ch = packet.channel;
  const net::TreePayload tree = packet.tree();
  purge(ch, packet.trace);

  // Stale-straggler rejection: a reordered tree from an earlier refresh
  // wave must not refresh, install, or re-anchor state that a newer wave
  // has since rewritten (e.g. rule T7 flipping the MCT back to a receiver
  // that already left). Stragglers still travel — dropping them would
  // starve downstream routers of an in-transit refresh they may not have
  // seen — but they are inert here.
  auto [seen_it, first_seen] = seen_wave_.try_emplace(ch, tree.wave);
  if (!first_seen) {
    if (tree.wave < seen_it->second) {
      if (packet.dst != self_addr()) forward(std::move(packet));
      return;
    }
    seen_it->second = tree.wave;
  }

  auto it = channels_.find(ch);

  // T1: a tree message addressed to this branching node is consumed and
  // re-expanded: one tree(S, Ri) per non-stale MFT entry, with ourselves
  // recorded as the last branching node.
  if (packet.dst == self_addr()) {
    if (it != channels_.end() && it->second.mft) {
      // Re-emit at most once per source refresh wave: replicas inherit the
      // wave id, so a token circling back through a transient MFT cycle
      // cannot re-trigger emission — every refresh chain stays rooted at
      // the source.
      auto [wave_it, first] = last_wave_.try_emplace(ch, tree.wave);
      if (!first) {
        if (tree.wave <= wave_it->second) return;
        wave_it->second = tree.wave;
      }
      TreePacer& pacer = pacers_[ch];
      pacer.expire(now(), 10 * config_.tree_period);
      for (const Ipv4Addr target : it->second.mft->tree_targets(now())) {
        if (!pacer.allow(target, now(), 0.5 * config_.tree_period)) continue;
        Packet out;
        out.src = ch.source;
        out.dst = target;
        out.channel = ch;
        out.type = PacketType::kTree;
        out.trace = packet.trace;  // re-emissions fan out of the same chain
        out.payload = net::TreePayload{target, false, self_addr(), tree.wave};
        forward(std::move(out));
      }
    }
    return;  // discard the original (rule T1), or drop if MFT vanished
  }

  const Ipv4Addr r = tree.target;
  if (it != channels_.end() && it->second.mft) {
    Mft& mft = *it->second.mft;
    if (SoftEntry* entry = mft.find(r); entry != nullptr) {
      // T3: B no longer gets join(S,R) directly — keep the entry alive via
      // the passing tree message and remind upstream we duplicate for R.
      entry->refresh(config_, now());
      send_fusion(ch, mft, tree.last_branch, packet.trace);
    } else {
      // T2: a new receiver whose path crosses this branching node.
      mft.upsert(r, config_, now());
      note_structural(ch, 1);
      trace_instant(packet.trace, "mft-insert", ch, r);
      send_fusion(ch, mft, tree.last_branch, packet.trace);
    }
    packet.tree().last_branch = self_addr();
    forward(std::move(packet));
    return;
  }

  // Non-branching cases.
  if (it == channels_.end() || !it->second.mct) {
    // T4: joining the distribution tree as a transit router.
    ChannelState& st = channels_[ch];
    st.mct = Mct{r, SoftEntry{config_, now()}};
    note_structural(ch, 1);
    trace_instant(packet.trace, "mct-install", ch, r);
    forward(std::move(packet));
    return;
  }

  Mct& mct = *it->second.mct;
  if (mct.target == r) {
    // T6: steady state refresh.
    mct.state.refresh(config_, now());
    forward(std::move(packet));
    return;
  }
  if (mct.state.stale(now())) {
    // T7: the previous branch through here expired; adopt the new one.
    mct.target = r;
    mct.state.refresh(config_, now());
    note_structural(ch, 1);
    trace_instant(packet.trace, "mct-adopt", ch, r);
    forward(std::move(packet));
    return;
  }

  // T8: two live receivers downstream -> become a branching node.
  const Ipv4Addr previous = mct.target;
  ChannelState& st = it->second;
  st.mct.reset();
  st.mft.emplace();
  st.mft->upsert(previous, config_, now());
  st.mft->upsert(r, config_, now());
  note_structural(ch, 2);
  trace_instant(packet.trace, "branching", ch, r);
  log(LogLevel::kDebug, to_string(self()), " becomes branching for ",
      ch.to_string(), " ", st.mft->to_string(now()));
  send_fusion(ch, *st.mft, tree.last_branch, packet.trace);
  packet.tree().last_branch = self_addr();
  forward(std::move(packet));
}

void HbhRouter::on_fusion(Packet&& packet) {
  const net::Channel ch = packet.channel;
  if (packet.dst != self_addr()) {
    // F1: not for us; keep travelling upstream.
    forward(std::move(packet));
    return;
  }
  purge(ch, packet.trace);
  const auto it = channels_.find(ch);
  if (it == channels_.end() || !it->second.mft) {
    // Fusion addressed to a node that lost its MFT (raced with expiry);
    // nothing to mark — drop. The emitter will retry on the next tree.
    return;
  }
  apply_fusion(*it->second.mft, packet.fusion(), config_, now());
  // Marks (F2) and fusion-born entries (F3) change the data-eligible
  // target set without going through note_structural — always flag.
  note_table_mutation();
}

void HbhRouter::on_data(Packet&& packet) {
  const net::Channel ch = packet.channel;
  if (packet.dst != self_addr()) {
    forward(std::move(packet));  // transit data: plain unicast
    return;
  }
  purge(ch, packet.trace);
  const auto it = channels_.find(ch);
  if (it == channels_.end() || !it->second.mft) {
    log(LogLevel::kDebug, to_string(self()),
        " data addressed to non-branching node, dropped");
    return;
  }
  if (!guards_[ch].first_time(packet.data().probe, packet.data().seq)) {
    // A copy of this packet already passed through (transient routing
    // cycle); replicating again would amplify it.
    return;
  }
  // Recursive unicast: consume the incoming packet and emit one modified
  // copy per data-eligible entry (marked entries excluded — their data
  // flows through the downstream branching node that fused them).
  for (const Ipv4Addr target : it->second.mft->data_targets(now())) {
    Packet copy = packet;
    copy.dst = target;
    forward(std::move(copy));
  }
}

}  // namespace hbh::mcast::hbh
