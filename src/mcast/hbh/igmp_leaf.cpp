#include "mcast/hbh/igmp_leaf.hpp"

#include "util/log.hpp"

namespace hbh::mcast::hbh {

using net::Packet;
using net::PacketType;

void IgmpLeafRouter::handle(Packet&& packet, NodeId from) {
  // IGMP-style membership signalling from directly attached hosts:
  // reports and leaves are addressed to this router.
  if (packet.dst == self_addr()) {
    if (packet.type == PacketType::kPimJoin) {
      on_igmp_report(packet.channel, from);
      return;
    }
    if (packet.type == PacketType::kPimPrune) {
      on_igmp_leave(packet.channel, from);
      return;
    }
    if (packet.type == PacketType::kData) {
      // Channel data delivered to our upstream membership: replicate onto
      // every live member-facing link, then let the HBH data plane fan
      // out downstream if we also happen to be a branching node.
      purge_members(packet.channel);
      const auto it = groups_.find(packet.channel);
      if (it != groups_.end()) {
        for (const auto& [host, entry] : it->second.members) {
          if (entry.dead(simulator().now())) continue;
          Packet copy = packet;
          copy.dst = net().address_of(host);
          net().send_direct(self(), host, std::move(copy));
        }
      }
      HbhRouter::handle(std::move(packet), from);
      return;
    }
  }
  HbhRouter::handle(std::move(packet), from);
}

std::vector<NodeId> IgmpLeafRouter::local_members(
    const net::Channel& ch) const {
  std::vector<NodeId> out;
  const auto it = groups_.find(ch);
  if (it == groups_.end()) return out;
  for (const auto& [host, entry] : it->second.members) {
    if (!entry.dead(simulator().now())) out.push_back(host);
  }
  return out;
}

void IgmpLeafRouter::on_igmp_report(const net::Channel& ch, NodeId host) {
  if (!host.valid()) return;
  auto [it, created] = groups_.try_emplace(ch);
  LeafGroup& group = it->second;
  auto [entry, inserted] =
      group.members.try_emplace(host, config_, simulator().now());
  if (!inserted) entry->second.refresh(config_, simulator().now());

  if (created) {
    // First local member: become the channel's receiver upstream.
    group.join_timer = std::make_unique<sim::PeriodicTimer>(
        simulator(), config_.join_period,
        [this, ch] { send_upstream_join(ch); });
    group.join_timer->start();
    send_upstream_join(ch);
    log(LogLevel::kDebug, to_string(self()), " IGMP leaf joins ",
        ch.to_string(), " upstream for ", to_string(host));
  }
}

void IgmpLeafRouter::on_igmp_leave(const net::Channel& ch, NodeId host) {
  const auto it = groups_.find(ch);
  if (it == groups_.end() || !host.valid()) return;
  it->second.members.erase(host);
  if (it->second.members.empty()) {
    // Last local member gone: stop refreshing; upstream soft state ages
    // out exactly as for a departing plain receiver.
    groups_.erase(it);
    log(LogLevel::kDebug, to_string(self()), " IGMP leaf leaves ",
        ch.to_string());
  }
}

void IgmpLeafRouter::purge_members(const net::Channel& ch) {
  const auto it = groups_.find(ch);
  if (it == groups_.end()) return;
  auto& members = it->second.members;
  for (auto m = members.begin(); m != members.end();) {
    m = m->second.dead(simulator().now()) ? members.erase(m) : std::next(m);
  }
  if (members.empty()) groups_.erase(it);
}

void IgmpLeafRouter::send_upstream_join(const net::Channel& ch) {
  purge_members(ch);
  const auto it = groups_.find(ch);
  if (it == groups_.end()) return;
  Packet join;
  join.src = self_addr();
  join.dst = ch.source;
  join.channel = ch;
  join.type = PacketType::kJoin;
  join.payload =
      net::JoinPayload{self_addr(), /*first=*/!it->second.first_join_sent};
  it->second.first_join_sent = true;
  forward(std::move(join));
}

}  // namespace hbh::mcast::hbh
