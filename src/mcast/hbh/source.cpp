#include "mcast/hbh/source.hpp"

#include "mcast/hbh/router.hpp"
#include "util/log.hpp"
#include "util/profiler.hpp"

namespace hbh::mcast::hbh {

using net::Packet;
using net::PacketType;

void HbhSource::start() {
  tree_timer_ = std::make_unique<sim::PeriodicTimer>(
      simulator(), config_.tree_period, [this] { emit_tree_round(); });
  tree_timer_->start();
}

void HbhSource::emit_tree_round() {
  HBH_PHASE("tree_round");
  count_timer_fire();
  const Time now = simulator().now();
  // Each refresh wave is one source-emission root: every tree message it
  // sends, every re-emission/fusion downstream, and every eviction the
  // round's purge performs are causal descendants of this span.
  const net::TraceContext ctx =
      trace_root("tree-round", channel_, self_addr());
  std::vector<Ipv4Addr> evicted;
  mft_.purge(now, ctx.active() ? &evicted : nullptr);
  for (const Ipv4Addr target : evicted) {
    trace_instant(ctx, "evict", channel_, target);
  }
  ++wave_;
  for (const Ipv4Addr target : mft_.tree_targets(now)) {
    Packet tree;
    tree.src = self_addr();
    tree.dst = target;
    tree.channel = channel_;
    tree.type = PacketType::kTree;
    tree.trace = ctx;
    tree.payload = net::TreePayload{target, false, self_addr(), wave_};
    forward(std::move(tree));
  }
}

void HbhSource::handle(Packet&& packet, NodeId from) {
  (void)from;
  const Time now = simulator().now();
  if (packet.channel != channel_ || packet.dst != self_addr()) {
    net::ProtocolAgent::handle(std::move(packet), from);
    return;
  }
  switch (packet.type) {
    case PacketType::kJoin: {
      // Full refresh; a new receiver gets a fresh entry and will receive
      // tree(S, R) from the next round onward.
      if (!mft_.contains(packet.join().receiver)) {
        trace_instant(packet.trace, "mft-insert", channel_,
                      packet.join().receiver);
      }
      SoftEntry& entry = mft_.upsert(packet.join().receiver, config_, now);
      (void)entry;  // marked flag (if any) survives the refresh
      log(LogLevel::kTrace, "source accepts join(",
          packet.join().receiver.to_string(), ")");
      return;
    }
    case PacketType::kFusion: {
      std::vector<Ipv4Addr> evicted;
      mft_.purge(now, packet.trace.active() ? &evicted : nullptr);
      for (const Ipv4Addr target : evicted) {
        trace_instant(packet.trace, "evict", channel_, target);
      }
      apply_fusion(mft_, packet.fusion(), config_, now);
      log(LogLevel::kDebug, "source MFT after fusion: ", mft_.to_string(now));
      return;
    }
    case PacketType::kTree:
    case PacketType::kData:
    case PacketType::kPimJoin:
    case PacketType::kPimPrune:
      return;  // not meaningful at the source; drop
  }
}

std::size_t HbhSource::send_data(std::uint64_t probe, std::uint32_t seq,
                                 std::uint32_t pad) {
  HBH_PHASE("data_fanout");
  const Time now = simulator().now();
  // One emission = one root span; the replication fan-out downstream and
  // the final deliveries all trace back here.
  const net::TraceContext ctx = trace_root("data", channel_, self_addr());
  std::vector<Ipv4Addr> evicted;
  mft_.purge(now, ctx.active() ? &evicted : nullptr);
  for (const Ipv4Addr target : evicted) {
    trace_instant(ctx, "evict", channel_, target);
  }
  const auto targets = mft_.data_targets(now);
  for (const Ipv4Addr target : targets) {
    Packet data;
    data.src = self_addr();
    data.dst = target;
    data.channel = channel_;
    data.type = PacketType::kData;
    data.trace = ctx;
    data.payload = net::DataPayload{probe, seq, now, false, pad};
    forward(std::move(data));
  }
  return targets.size();
}

}  // namespace hbh::mcast::hbh
