// Soft-state machinery shared by HBH and REUNITE table entries.
//
// Both protocols associate two timers with each control/forwarding entry
// (§3.1): when t1 expires the entry becomes *stale*, when t2 expires the
// entry is destroyed. HBH additionally distinguishes *marked* entries:
//
//   fresh   — used for data forwarding AND downstream tree messages
//   stale   — still used for data forwarding, produces no tree messages
//   marked  — used for tree-message forwarding but NOT data forwarding
//
// Timers are expressed as absolute expiry instants refreshed against the
// simulator clock; expiry is evaluated lazily (no per-entry events), which
// keeps soft-state churn off the event queue entirely.
#pragma once

#include <string>

#include "util/ids.hpp"

namespace hbh::mcast {

/// Protocol timing knobs. Defaults follow DESIGN.md §5: refresh period
/// T = 10 time units, t1 = 3.5 T, t2 = 7 T.
struct McastConfig {
  Time join_period = 10.0;  ///< receiver join refresh period
  Time tree_period = 10.0;  ///< source tree emission period
  Time t1 = 35.0;           ///< entry becomes stale after t1 without refresh
  Time t2 = 70.0;           ///< entry destroyed after t2 without refresh
};

/// One soft-state entry's timers and flags.
class SoftEntry {
 public:
  SoftEntry() = default;
  SoftEntry(const McastConfig& cfg, Time now) { refresh(cfg, now); }

  /// Full refresh: restarts both timers and clears staleness.
  void refresh(const McastConfig& cfg, Time now) {
    t1_expiry_ = now + cfg.t1;
    t2_expiry_ = now + cfg.t2;
  }

  /// Refreshes only t2 (keeps the entry alive); t1 is left untouched — a
  /// fusion keeps Bp's entry alive but neither freshens a stale entry nor
  /// re-expires one freshened by Bp's own joins (Appendix A, rule 4).
  void refresh_keepalive(const McastConfig& cfg, Time now) {
    t2_expiry_ = now + cfg.t2;
  }

  /// Forces t1 expiry immediately (Appendix A, rule 3: "Bp's t1 timer is
  /// expired — Bp becomes stale").
  void expire_t1(Time now) { t1_expiry_ = now; }

  [[nodiscard]] bool stale(Time now) const { return now >= t1_expiry_; }
  [[nodiscard]] bool dead(Time now) const { return now >= t2_expiry_; }

  /// Marks are soft state too: a mark set by mark() decays t1 units after
  /// its last refresh. The mark is asserted by the downstream branching
  /// node Bp's periodic fusions; if Bp crashes (wiping its MFT) the fusions
  /// stop, the mark decays, and data resumes flowing directly to the
  /// receiver — without decay a dead Bp would starve it forever.
  void mark(const McastConfig& cfg, Time now) {
    marked_ = true;
    mark_expiry_ = now + cfg.t1;
  }
  [[nodiscard]] bool marked(Time now) const noexcept {
    return marked_ && now < mark_expiry_;
  }

  /// Raw flag accessors (no decay), for tests and the non-decaying case.
  [[nodiscard]] bool marked() const noexcept { return marked_; }
  void set_marked(bool m) noexcept {
    marked_ = m;
    mark_expiry_ = kNeverExpires;
  }

  /// Absolute expiry instants. The compiled fast path derives a validity
  /// horizon from them: a compiled forwarding block can be replayed up to
  /// (but not at) the earliest instant any consulted entry changes state,
  /// matching the >= comparisons in stale()/dead()/marked() exactly.
  [[nodiscard]] Time t1_expiry() const noexcept { return t1_expiry_; }
  [[nodiscard]] Time t2_expiry() const noexcept { return t2_expiry_; }
  [[nodiscard]] Time mark_expiry() const noexcept { return mark_expiry_; }

  /// Debug string: "fresh" / "stale" / "dead", with "+marked" suffix.
  [[nodiscard]] std::string state_string(Time now) const;

 private:
  static constexpr Time kNeverExpires = 1e300;

  Time t1_expiry_ = 0;
  Time t2_expiry_ = 0;
  Time mark_expiry_ = kNeverExpires;
  bool marked_ = false;
};

}  // namespace hbh::mcast
