#include "mcast/common/membership.hpp"

#include <cassert>

#include "util/log.hpp"
#include "util/profiler.hpp"

namespace hbh::mcast {

using net::Packet;
using net::PacketType;

void ReceiverHost::subscribe(const net::Channel& channel, Ipv4Addr root) {
  assert(channel.valid());
  if (subs_.contains(channel)) return;
  if (style_ == JoinStyle::kPimJoin && root.unspecified()) {
    root = channel.source;  // PIM-SS default: join toward the source
  }
  Subscription sub;
  sub.root = root;
  // Every membership episode — including each churn re-join — is one trace:
  // the first join, all periodic refreshes, and everything they trigger
  // downstream hang off this root span.
  sub.ctx = trace_root("subscribe", channel, self_addr());
  sub.timer = std::make_unique<sim::PeriodicTimer>(
      simulator(), config_.join_period, [this, channel] {
        count_timer_fire();
        send_refresh(channel);
      });
  sub.timer->start();  // periodic refreshes; the first join goes out now
  subs_.emplace(channel, std::move(sub));
  send_refresh(channel);
  log(LogLevel::kDebug, to_string(self()), " subscribe ", channel.to_string());
}

void ReceiverHost::unsubscribe(const net::Channel& channel) {
  const auto it = subs_.find(channel);
  if (it == subs_.end()) return;
  const net::TraceContext leave_ctx =
      trace_root("unsubscribe", channel, self_addr());
  if (style_ == JoinStyle::kPimJoin) {
    // Explicit fast leave: a prune toward the tree root tears down oifs
    // along the way immediately instead of waiting for t2 expiry.
    Packet prune;
    prune.src = self_addr();
    prune.dst = it->second.root;
    prune.channel = channel;
    prune.type = PacketType::kPimPrune;
    prune.trace = leave_ctx;
    prune.payload = net::PimJoinPayload{it->second.root, self_addr()};
    forward(std::move(prune));
  }
  // HBH/REUNITE leave is purely soft-state: simply stop sending joins
  // (§2.1 "The receiver simply stops sending join messages").
  subs_.erase(it);
  log(LogLevel::kDebug, to_string(self()), " unsubscribe ",
      channel.to_string());
}

void ReceiverHost::send_refresh(const net::Channel& channel) {
  HBH_PHASE("soft_state_refresh");
  auto it = subs_.find(channel);
  if (it == subs_.end()) return;
  Subscription& sub = it->second;

  Packet p;
  p.src = self_addr();
  p.channel = channel;
  // Each soft-state refresh round is a child span of the subscribe root, so
  // retransmissions triggered by timer rearming stay causally attached.
  p.trace = sub.first_sent
                ? trace_child(sub.ctx, "join-refresh", channel, self_addr())
                : sub.ctx;
  if (style_ == JoinStyle::kSourceJoin) {
    p.type = PacketType::kJoin;
    p.dst = channel.source;
    p.payload = net::JoinPayload{self_addr(), /*first=*/!sub.first_sent,
                                 /*fresh=*/!connected(channel)};
  } else {
    p.type = PacketType::kPimJoin;
    p.dst = sub.root;
    p.payload = net::PimJoinPayload{sub.root, self_addr()};
  }
  sub.first_sent = true;
  forward(std::move(p));
}

bool ReceiverHost::connected(const net::Channel& channel) const {
  const auto it = subs_.find(channel);
  if (it == subs_.end() || it->second.last_tree_at < 0) return false;
  return simulator().now() - it->second.last_tree_at <
         2.5 * config_.tree_period;
}

bool ReceiverHost::accept_data(const Packet& packet) {
  // Unicast-addressed data (HBH/REUNITE) arrives with dst == us; PIM
  // data arrives group-addressed over the access link. Either way it
  // terminates here. Only *subscribed* arrivals count as deliveries —
  // a stale REUNITE flow may keep addressing a departed receiver.
  if (packet.dst != self_addr() && !subscribed(packet.channel)) return false;
  if (subscribed(packet.channel)) {
    const auto& d = packet.data();
    trace_instant(packet.trace, "deliver", packet.channel, self_addr());
    deliveries_.push_back(Delivery{packet.channel, d.probe, d.seq, d.sent_at,
                                   simulator().now()});
    if (sink_ != nullptr) {
      sink_->on_data(self(), packet, simulator().now());
    }
    log(LogLevel::kTrace, to_string(self()), " got data seq=", d.seq,
        " delay=", simulator().now() - d.sent_at);
  }
  return true;
}

void ReceiverHost::handle(Packet&& packet, NodeId from) {
  (void)from;
  if (packet.type == PacketType::kData) {
    if (accept_data(packet)) return;
  }
  if (packet.dst == self_addr()) {
    // Control addressed to this receiver ends here. An *unmarked*
    // tree(S, r) is the connectivity beacon: some node upstream keeps
    // forwarding state for us. A marked tree announces the flow is about
    // to stop (REUNITE reconfiguration), so it must not refresh
    // connectivity — going "fresh" promptly is what re-anchors us.
    if (packet.type == PacketType::kTree && !packet.tree().marked) {
      const auto it = subs_.find(packet.channel);
      // A reordered straggler from an older refresh wave is not evidence
      // that upstream state still exists *now*; accepting it would delay
      // the fresh-join re-anchor after a failure.
      if (it != subs_.end() && packet.tree().wave >= it->second.last_wave) {
        it->second.last_tree_at = simulator().now();
        it->second.last_wave = packet.tree().wave;
      }
    }
    return;
  }
  // Hosts are stub nodes; transit traffic should not appear here, but a
  // misdelivered packet is forwarded rather than black-holed.
  forward(std::move(packet));
}

}  // namespace hbh::mcast
