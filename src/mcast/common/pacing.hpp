// Control-plane pacing guards.
//
// Both REUNITE and HBH replicate tree messages *on reception*: a branching
// node that receives a tree message re-emits one per table entry. During
// convergence under asymmetric routing, transient cyclic dst/entry
// relationships between two branching nodes can then amplify tree tokens
// exponentially (B1's replica triggers B2, whose replica re-triggers B1,
// while the source keeps injecting fresh tokens every period). Real
// routers do not emit faster than their soft-state refresh clock, so we
// bound local *origination* — never forwarding — with two guards:
//
//  * TreePacer      — at most one locally-originated tree message per
//                     (channel, target) per minimum interval;
//  * ReplicationGuard — a branching node replicates each distinct data
//                     packet (probe, seq) at most once.
//
// Neither guard changes converged-state behaviour (steady state emits
// exactly once per period anyway); they only clamp transient storms.
// See DESIGN.md §5.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/ids.hpp"
#include "util/ipv4.hpp"

namespace hbh::mcast {

/// Allows one emission per target per min_gap interval.
class TreePacer {
 public:
  /// Returns true (and records the emission) if a tree message for
  /// `target` may be originated at `now`; false if it was originated less
  /// than `min_gap` ago.
  bool allow(Ipv4Addr target, Time now, Time min_gap) {
    auto [it, inserted] = last_.try_emplace(target, now);
    if (inserted) return true;
    if (now - it->second < min_gap) return false;
    it->second = now;
    return true;
  }

  /// Drops memory older than `horizon` to bound growth.
  void expire(Time now, Time horizon) {
    for (auto it = last_.begin(); it != last_.end();) {
      it = (now - it->second > horizon) ? last_.erase(it) : std::next(it);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return last_.size(); }

 private:
  std::unordered_map<Ipv4Addr, Time> last_;
};

/// Remembers the most recent data packets replicated (by probe/seq pair),
/// in a small ring — O(1) memory, enough to catch looped-back copies.
class ReplicationGuard {
 public:
  /// Returns true if this (probe, seq) has not been replicated before
  /// (and records it); false if it has.
  bool first_time(std::uint64_t probe, std::uint32_t seq) {
    const std::uint64_t key = probe * 1000003u + seq;
    for (std::size_t i = 0; i < filled_; ++i) {
      if (ring_[i] == key) return false;
    }
    ring_[next_] = key;
    next_ = (next_ + 1) % kSize;
    if (filled_ < kSize) ++filled_;
    return true;
  }

 private:
  static constexpr std::size_t kSize = 64;
  std::uint64_t ring_[kSize] = {};
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
};

}  // namespace hbh::mcast
