// Receiver-side group membership: the host agents that subscribe to
// channels, emit periodic control refreshes, and record data deliveries.
//
// This plays the role IGMP plays at the network edge (the paper assumes
// "one or many receivers attached to a border router through IGMP" — we
// model one receiver host per router and note that local aggregation does
// not change tree cost, §4.1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mcast/common/soft_state.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace hbh::mcast {

/// Observer of data arriving at receiver hosts. The metrics module installs
/// one to measure per-receiver delay and exactly-once delivery.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;
  virtual void on_data(NodeId host, const net::Packet& packet, Time now) = 0;
};

/// A record of one data delivery kept by the host itself (tests use this
/// directly; experiments prefer a DeliverySink).
struct Delivery {
  net::Channel channel;
  std::uint64_t probe = 0;
  std::uint32_t seq = 0;
  Time sent_at = 0;
  Time received_at = 0;
};

/// How a receiver host signals membership upstream.
enum class JoinStyle {
  kSourceJoin,  ///< HBH / REUNITE: periodic join(S, r) unicast toward S
  kPimJoin,     ///< PIM: hop-by-hop (S/RP, G) join toward a configured root
};

/// Receiver host agent, common to all four protocols.
///
/// subscribe() sends the first join immediately (flagged `first` for HBH's
/// "never intercepted" rule) and re-sends every join_period. unsubscribe()
/// silently stops refreshing — exactly how the paper's receivers leave.
class ReceiverHost : public net::ProtocolAgent {
 public:
  ReceiverHost(JoinStyle style, McastConfig config)
      : style_(style), config_(config) {}

  /// Starts membership in `channel`. For kPimJoin, `root` is the tree root
  /// the join propagates toward (source for PIM-SS, RP for PIM-SM);
  /// ignored for kSourceJoin.
  void subscribe(const net::Channel& channel, Ipv4Addr root = kNoAddr);

  /// Stops refreshing membership (soft-state leave).
  void unsubscribe(const net::Channel& channel);

  [[nodiscard]] bool subscribed(const net::Channel& channel) const {
    return subs_.contains(channel);
  }

  /// Number of channels this host is currently subscribed to.
  [[nodiscard]] std::size_t subscription_count() const noexcept {
    return subs_.size();
  }

  /// All data deliveries observed so far.
  [[nodiscard]] const std::vector<Delivery>& deliveries() const noexcept {
    return deliveries_;
  }
  void clear_deliveries() { deliveries_.clear(); }

  void set_sink(DeliverySink* sink) noexcept { sink_ = sink; }

  void handle(net::Packet&& packet, NodeId from) override;

  /// The data-termination decision, shared verbatim by handle() and the
  /// compiled fast path: records the delivery (trace instant, Delivery,
  /// sink, log) when subscribed and returns true when the packet ends here
  /// (also for unsubscribed self-addressed data); false means the packet
  /// is not ours and should be forwarded.
  bool accept_data(const net::Packet& packet);

  /// True while the receiver considers itself connected to the channel's
  /// tree: a tree(S, r) addressed to it arrived within ~2.5 refresh
  /// periods. Drives the REUNITE `fresh` join bit (re-anchoring signal).
  [[nodiscard]] bool connected(const net::Channel& channel) const;

 private:
  struct Subscription {
    Ipv4Addr root;
    std::unique_ptr<sim::PeriodicTimer> timer;
    net::TraceContext ctx;  ///< root span of this membership episode
    bool first_sent = false;
    Time last_tree_at = -1;  ///< arrival time of the last tree(S, r); -1 = never
    std::uint32_t last_wave = 0;  ///< highest refresh wave seen; stale
                                  ///< stragglers must not fake connectivity
  };

  void send_refresh(const net::Channel& channel);

  JoinStyle style_;
  McastConfig config_;
  std::unordered_map<net::Channel, Subscription> subs_;
  std::vector<Delivery> deliveries_;
  DeliverySink* sink_ = nullptr;
};

}  // namespace hbh::mcast
