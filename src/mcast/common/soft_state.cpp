#include "mcast/common/soft_state.hpp"

namespace hbh::mcast {

std::string SoftEntry::state_string(Time now) const {
  std::string s = dead(now) ? "dead" : (stale(now) ? "stale" : "fresh");
  if (marked(now)) s += "+marked";
  return s;
}

}  // namespace hbh::mcast
