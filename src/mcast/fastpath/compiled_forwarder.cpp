#include "mcast/fastpath/compiled_forwarder.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <typeinfo>
#include <utility>

#include "mcast/common/membership.hpp"
#include "mcast/hbh/router.hpp"
#include "mcast/pim/router.hpp"
#include "mcast/reunite/router.hpp"
#include "util/log.hpp"

namespace hbh::fastpath {

namespace {

constexpr Time kNeverInvalid = std::numeric_limits<Time>::infinity();

[[nodiscard]] std::uint64_t mono_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

CompiledForwarder::CompiledForwarder(net::Network& net) : net_(&net) {
  blocks_.resize(net.topology().node_count());
  net_->set_fastpath(this);
  net_->set_mutation_listener(this);
}

CompiledForwarder::~CompiledForwarder() {
  if (net_->fastpath() == this) net_->set_fastpath(nullptr);
  if (net_->mutation_listener() == this) net_->set_mutation_listener(nullptr);
}

void CompiledForwarder::on_table_mutation(NodeId node) {
  blocks_[node.index()].dirty = true;
  ++stats_.invalidations;
}

void CompiledForwarder::invalidate_all() noexcept {
  ++epoch_;
  ++stats_.invalidations;
}

std::uint16_t CompiledForwarder::channel_slot(const net::Channel& ch) {
  return slots_.try_emplace(ch, static_cast<std::uint16_t>(slots_.size()))
      .first->second;
}

bool CompiledForwarder::on_deliver(NodeId to, NodeId from,
                                   net::Packet& packet) {
  const bool timing =
      prof::kProfilerCompiled && prof::current_profiler() != nullptr;
  const std::uint64_t t0 = timing ? mono_ns() : 0;
  pending_compile_ns_ = 0;
  Block& b = block(to);
  if (b.dirty || b.epoch != epoch_) compile_block(b, to);
  const bool handled = dispatch(b, to, from, packet);
  if (handled) {
    ++stats_.hits;
    ++forward_stats_.count;
    if (timing) {
      // Compile work that happened inside this hop is attributed to
      // "fastpath/compile", not double-counted under "fastpath/forward".
      forward_stats_.wall_ns += mono_ns() - t0 - pending_compile_ns_;
    }
  }
  return handled;
}

bool CompiledForwarder::dispatch(Block& b, NodeId to, NodeId from,
                                 net::Packet& packet) {
  switch (b.kind) {
    case Kind::kUnicast: {
      if (packet.dst == b.addr) {
        // ProtocolAgent::deliver_local, replayed.
        ++net_->counters().local_sink;
        if (Logger::instance().enabled(LogLevel::kTrace)) {
          log(LogLevel::kTrace, to_string(to), " sink ", packet.describe());
        }
        return true;
      }
      net_->send(to, std::move(packet), this);
      return true;
    }
    case Kind::kHbh:
      return dispatch_hbh(b, to, packet);
    case Kind::kReunite:
      return dispatch_reunite(b, to, packet);
    case Kind::kPim:
      return dispatch_pim(b, to, from, packet);
    case Kind::kReceiver: {
      auto* host = static_cast<mcast::ReceiverHost*>(b.agent);
      // Membership is consulted live — subscriptions never get compiled,
      // so churn needs no invalidation to stay exact.
      if (host->accept_data(packet)) return true;
      net_->send(to, std::move(packet), this);
      return true;
    }
    case Kind::kInterpreted:
      return false;
  }
  return false;
}

bool CompiledForwarder::dispatch_hbh(Block& b, NodeId to, net::Packet& packet) {
  if (packet.dst != b.addr) {
    // Transit data: plain unicast, no table (and no purge) on this path.
    net_->send(to, std::move(packet), this);
    return true;
  }
  ChannelEntry& e = entry(b, channel_slot(packet.channel));
  if (!e.compiled) compile_entry(b, e, packet.channel);
  if (net_->simulator().now() >= e.horizon) {
    // The interpreted purge is due (t2 death or mark decay): fall back for
    // its side effects — evict traces, structural-change counting, table
    // erasure. The mutations it performs re-dirty this block anyway.
    b.dirty = true;
    return false;
  }
  if (!e.has_table) {
    if (Logger::instance().enabled(LogLevel::kDebug)) {
      log(LogLevel::kDebug, to_string(to),
          " data addressed to non-branching node, dropped");
    }
    return true;
  }
  const net::DataPayload& d = packet.data();
  if (!e.guard->first_time(d.probe, d.seq)) {
    return true;  // looped-back copy: consumed without re-replication
  }
  ++stats_.fanout_batches;
  stats_.fanout_copies += e.targets.size();
  for (const Ipv4Addr target : e.targets) {
    net::Packet copy = packet;
    copy.dst = target;
    net_->send(to, std::move(copy), this);
  }
  return true;
}

bool CompiledForwarder::dispatch_reunite(Block& b, NodeId to,
                                         net::Packet& packet) {
  if (packet.dst == b.addr) {
    // REUNITE never addresses interior routers; defensively sunk.
    ++net_->counters().local_sink;
    return true;
  }
  ChannelEntry& e = entry(b, channel_slot(packet.channel));
  if (!e.compiled) compile_entry(b, e, packet.channel);
  if (e.has_table && packet.dst == e.dst) {
    if (net_->simulator().now() >= e.horizon) {
      // A replicated-to entry's t2 passed; on_data never purges, so no
      // side effects are owed — recompile with a fresh horizon next hop.
      b.dirty = true;
      return false;
    }
    const net::DataPayload& d = packet.data();
    if (e.guard->first_time(d.probe, d.seq)) {
      ++stats_.fanout_batches;
      stats_.fanout_copies += e.targets.size();
      for (const Ipv4Addr target : e.targets) {
        net::Packet copy = packet;
        copy.dst = target;
        net_->send(to, std::move(copy), this);
      }
    }
  }
  net_->send(to, std::move(packet), this);  // original continues toward dst
  return true;
}

bool CompiledForwarder::dispatch_pim(Block& b, NodeId to, NodeId from,
                                     net::Packet& packet) {
  ChannelEntry& e = entry(b, channel_slot(packet.channel));
  if (!e.compiled) compile_entry(b, e, packet.channel);
  if (e.has_table && net_->simulator().now() >= e.horizon) {
    // PimRouter purges on every data packet for the channel; once any oif
    // can be dead the purge stops being a no-op — fall back for it.
    b.dirty = true;
    return false;
  }
  if (packet.data().encapsulated && packet.dst == b.addr) {
    // RP decapsulation: inject the register-tunnelled packet into the
    // shared tree (every oif; the register leg has no RPF "arrived-on").
    if (e.has_table) {
      ++stats_.fanout_batches;
      stats_.fanout_copies += e.oifs.size();
      for (const NodeId neighbor : e.oifs) {
        net::Packet copy = packet;
        copy.data().encapsulated = false;
        copy.dst = e.group;
        net_->send_direct(to, neighbor, std::move(copy), this);
      }
    }
    return true;
  }
  if (packet.dst == e.group) {
    // Group-addressed data down the tree: RPF replication, skip the
    // arrival interface.
    if (e.has_table) {
      ++stats_.fanout_batches;
      for (const NodeId neighbor : e.oifs) {
        if (neighbor == from) continue;
        ++stats_.fanout_copies;
        net::Packet copy = packet;
        net_->send_direct(to, neighbor, std::move(copy), this);
      }
    }
    return true;
  }
  // Unicast transit (e.g. a register tunnel passing through) — the base
  // ProtocolAgent behavior.
  if (packet.dst == b.addr) {
    ++net_->counters().local_sink;
    if (Logger::instance().enabled(LogLevel::kTrace)) {
      log(LogLevel::kTrace, to_string(to), " sink ", packet.describe());
    }
    return true;
  }
  net_->send(to, std::move(packet), this);
  return true;
}

void CompiledForwarder::compile_block(Block& b, NodeId n) {
  const bool timing =
      prof::kProfilerCompiled && prof::current_profiler() != nullptr;
  const std::uint64_t t0 = timing ? mono_ns() : 0;
  net::ProtocolAgent& agent = net_->agent(n);
  b.addr = net::node_address(n);
  b.agent = nullptr;
  if (auto* hbh = dynamic_cast<mcast::hbh::HbhRouter*>(&agent);
      hbh != nullptr) {
    b.kind = Kind::kHbh;
    b.agent = hbh;
  } else if (auto* reunite = dynamic_cast<mcast::reunite::ReuniteRouter*>(&agent);
             reunite != nullptr) {
    b.kind = Kind::kReunite;
    b.agent = reunite;
  } else if (auto* pim = dynamic_cast<mcast::pim::PimRouter*>(&agent);
             pim != nullptr) {
    b.kind = Kind::kPim;
    b.agent = pim;
  } else if (auto* host = dynamic_cast<mcast::ReceiverHost*>(&agent);
             host != nullptr) {
    b.kind = Kind::kReceiver;
    b.agent = host;
  } else if (typeid(agent) == typeid(net::ProtocolAgent)) {
    b.kind = Kind::kUnicast;
  } else {
    // Composite source hosts and anything unknown stay interpreted.
    b.kind = Kind::kInterpreted;
  }
  for (ChannelEntry& e : b.channels) e.compiled = false;
  b.dirty = false;
  b.epoch = epoch_;
  ++compile_stats_.count;
  ++stats_.recompiles;
  if (timing) {
    const std::uint64_t dt = mono_ns() - t0;
    compile_stats_.wall_ns += dt;
    pending_compile_ns_ += dt;
  }
}

void CompiledForwarder::compile_entry(Block& b, ChannelEntry& e,
                                      const net::Channel& ch) {
  const bool timing =
      prof::kProfilerCompiled && prof::current_profiler() != nullptr;
  const std::uint64_t t0 = timing ? mono_ns() : 0;
  const Time now = net_->simulator().now();
  e.has_table = false;
  e.horizon = kNeverInvalid;
  e.guard = nullptr;
  e.targets.clear();
  e.oifs.clear();
  switch (b.kind) {
    case Kind::kHbh: {
      // Horizon: the earliest instant the interpreted purge stops being a
      // no-op (any t2 death, MCT included) or a mark decays back into the
      // data-eligible set. State already dead at compile time leaves the
      // horizon in the past — every hop falls back until the purge runs.
      auto* router = static_cast<mcast::hbh::HbhRouter*>(b.agent);
      const auto* st = router->state(ch);
      if (st == nullptr) break;
      if (st->mct) {
        e.horizon = std::min(e.horizon, st->mct->state.t2_expiry());
      }
      if (st->mft) {
        e.has_table = true;
        e.guard = &router->replication_guard(ch);
        for (const auto& [target, entry] : st->mft->raw()) {
          e.horizon = std::min(e.horizon, entry.t2_expiry());
          if (entry.marked(now)) {
            // No data copies while marked; eligibility flips at decay.
            e.horizon = std::min(e.horizon, entry.mark_expiry());
          } else {
            e.targets.push_back(target);
          }
        }
      }
      break;
    }
    case Kind::kReunite: {
      // on_data never purges, so dead entries are inert (and can only be
      // resurrected through a purge+insert, both of which notify): the
      // horizon needs to cover live replicated-to entries only.
      auto* router = static_cast<mcast::reunite::ReuniteRouter*>(b.agent);
      const auto* st = router->state(ch);
      if (st == nullptr || !st->mft) break;
      e.has_table = true;
      e.guard = &router->replication_guard(ch);
      e.dst = st->mft->dst;
      for (const auto& [target, entry] : st->mft->entries) {
        if (entry.dead(now)) continue;
        e.horizon = std::min(e.horizon, entry.t2_expiry());
        e.targets.push_back(target);
      }
      break;
    }
    case Kind::kPim: {
      e.group = ch.group.addr();
      const auto* oifs =
          static_cast<mcast::pim::PimRouter*>(b.agent)->oif_entries(ch);
      if (oifs == nullptr) break;
      e.has_table = true;
      for (const auto& [neighbor, entry] : *oifs) {
        e.horizon = std::min(e.horizon, entry.t2_expiry());
        e.oifs.push_back(neighbor);
      }
      break;
    }
    case Kind::kUnicast:
    case Kind::kReceiver:
    case Kind::kInterpreted:
      break;
  }
  e.compiled = true;
  ++compile_stats_.count;
  ++stats_.recompiles;
  if (timing) {
    const std::uint64_t dt = mono_ns() - t0;
    compile_stats_.wall_ns += dt;
    pending_compile_ns_ += dt;
  }
}

void CompiledForwarder::on_arrival(NodeId to, NodeId from,
                                   net::Packet&& packet, Time delay) {
  assert(packet.type == net::PacketType::kData);
  std::uint32_t idx;
  if (free_.empty()) {
    idx = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  } else {
    idx = free_.back();
    free_.pop_back();
  }
  PendingHop& h = pool_[idx];
  h.node = to;
  h.from = from;
  h.packet = std::move(packet);
  // The slim event: one queue push at the exact causal point the
  // interpreted path would push its delivery — identical (time, seq)
  // order — but the {this, idx} capture fits std::function's small
  // buffer, so the per-hop heap allocation is gone.
  net_->simulator().schedule(delay, [this, idx] { fire(idx); });
}

void CompiledForwarder::fire(std::uint32_t idx) {
  net::Packet p = std::move(pool_[idx].packet);
  const NodeId node = pool_[idx].node;
  const NodeId from = pool_[idx].from;
  free_.push_back(idx);  // recycled before delivery may park new hops
  // Central delivery: receive counting and re-interception included, so a
  // replayed hop is indistinguishable from a scheduled one downstream.
  net_->deliver(node, from, std::move(p));
}

void CompiledForwarder::flush_profile() {
  if (prof::PhaseProfiler* p = prof::current_profiler(); p != nullptr) {
    p->record("fastpath/compile", compile_stats_);
    p->record("fastpath/forward", forward_stats_);
  }
  compile_stats_ = {};
  forward_stats_ = {};
}

}  // namespace hbh::fastpath
