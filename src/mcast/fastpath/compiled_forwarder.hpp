// The compiled data-plane fast path (docs/PERFORMANCE.md).
//
// Interpreted data forwarding pays, per hop: a virtual ProtocolAgent::handle
// dispatch, one or two unordered_map channel-state lookups, a lazy purge
// walk over the soft-state table, an eligibility re-scan building a fresh
// std::vector of targets, and — dominating everything — one heap-allocated
// std::function per scheduled delivery (the moved-in Packet capture blows
// past the small-buffer optimization). None of that work changes between
// control-plane events: a router's forwarding decision is a pure function
// of its tables, which mutate orders of magnitude less often than data
// flows through them.
//
// CompiledForwarder exploits that. Each router's converged forwarding
// decision is compiled once into a flat per-node block — the agent's
// concrete kind plus, per channel, the precomputed fan-out target list and
// a validity *horizon* — and replayed for every subsequent data hop:
//
//  * Replay reuses the fabric's own private transmit machinery via the
//    ArrivalSink seam, so link-delay accounting, TTL, impairments (and
//    their RNG draw order), drop reasons, taps, TraceHook transmit spans,
//    and every NetworkCounters increment are shared code with the
//    interpreted path — not a reimplementation that could drift.
//  * Each hop still pushes exactly one event on the main queue at the
//    exact causal point the interpreted path would (so the global
//    (time, seq) event order is identical), but the callback captures only
//    the forwarder pointer plus a 32-bit slot index — it fits
//    std::function's small buffer, so the per-hop heap allocation
//    disappears. The packet itself parks in a recycled slot pool until its
//    event fires; no side ordering structure is needed because each event
//    names its own slot.
//  * Soft-state expiry needs no per-hop table scan: at compile time the
//    block records the earliest instant any consulted entry changes state
//    (t2 deaths, mark decay) as its horizon. While now < horizon the
//    interpreted purge would be a no-op and the eligible target set cannot
//    change, so the compiled list is exact by construction; at or past the
//    horizon the hop falls back to the interpreted agent (which purges,
//    mutates, and thereby triggers recompilation).
//
// Invalidation is event-driven: every structural table mutation site calls
// ProtocolAgent::note_table_mutation(), which reaches on_table_mutation()
// here and dirties that node's block; topology/route changes bump a global
// epoch via invalidate_all(). Dirty blocks recompile lazily on the next
// data hop. Mutable per-packet state (HBH/REUNITE replication guards,
// receiver membership) is consulted *live* on the shared agent objects, so
// it evolves exactly as under interpreted dispatch.
//
// The result is byte-identical simulation output with HBH_FASTPATH=0/1 at
// any HBH_JOBS — identical event counts, queue pushes, counters, traces,
// logs, and reports (timing fields aside) — enforced by tests/fastpath_test
// and the CI equivalence tripwire.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "util/profiler.hpp"

namespace hbh::mcast {
class ReceiverHost;
class ReplicationGuard;
namespace hbh {
class HbhRouter;
}
namespace reunite {
class ReuniteRouter;
}
namespace pim {
class PimRouter;
}
}  // namespace hbh::mcast

namespace hbh::fastpath {

/// Always-on fast-path telemetry (docs/OBSERVABILITY.md "fastpath.*").
struct FastpathStats {
  std::uint64_t hits = 0;           ///< data hops replayed from compiled blocks
  std::uint64_t recompiles = 0;     ///< block/channel compile operations
  std::uint64_t invalidations = 0;  ///< mutation notifications + epoch bumps
  std::uint64_t fanout_batches = 0; ///< compiled replication fan-outs
  std::uint64_t fanout_copies = 0;  ///< copies emitted by those fan-outs
};

/// One network's compiled data plane. Installs itself as the network's
/// DataFastpath and TableMutationListener on construction and detaches on
/// destruction; the Session owns one when HBH_FASTPATH is on.
class CompiledForwarder final : public net::DataFastpath,
                                public net::TableMutationListener,
                                public net::ArrivalSink {
 public:
  explicit CompiledForwarder(net::Network& net);
  ~CompiledForwarder() override;
  CompiledForwarder(const CompiledForwarder&) = delete;
  CompiledForwarder& operator=(const CompiledForwarder&) = delete;

  // DataFastpath: offered every arriving data packet; true = hop replayed.
  bool on_deliver(NodeId to, NodeId from, net::Packet& packet) override;

  // TableMutationListener: a node's forwarding state changed shape.
  void on_table_mutation(NodeId node) override;

  // ArrivalSink (internal): one wire copy the fabric produced on our
  // behalf; parks it in a pool slot and schedules its slim delivery event.
  void on_arrival(NodeId to, NodeId from, net::Packet&& packet,
                  Time delay) override;

  /// Invalidates every compiled block (topology epoch bump — link state or
  /// cost changes). Blocks recompile lazily.
  void invalidate_all() noexcept;

  [[nodiscard]] const FastpathStats& stats() const noexcept { return stats_; }

  /// Records the internally batched "fastpath/compile" / "fastpath/forward"
  /// phase stats into the calling thread's installed PhaseProfiler (no-op
  /// without one) and zeroes the accumulators. Counts are simulation-
  /// deterministic; wall time is only sampled while a profiler is
  /// installed, so unprofiled runs never read a clock per hop.
  void flush_profile();

 private:
  /// Concrete agent kind a block was compiled against. kInterpreted covers
  /// composite source hosts and unknown agent types — those hops always
  /// take the interpreted path.
  enum class Kind : std::uint8_t {
    kUnicast,      ///< exactly net::ProtocolAgent (plain unicast router)
    kHbh,          ///< mcast::hbh::HbhRouter
    kReunite,      ///< mcast::reunite::ReuniteRouter
    kPim,          ///< mcast::pim::PimRouter
    kReceiver,     ///< mcast::ReceiverHost
    kInterpreted,  ///< anything else (e.g. MultiSourceHost)
  };

  /// Per-(node, channel) compiled forwarding decision. `horizon` is the
  /// first instant the decision may stop matching the interpreted path
  /// (earliest consulted t2 death or mark decay); a hop at now >= horizon
  /// falls back and dirties the block.
  struct ChannelEntry {
    bool compiled = false;
    bool has_table = false;  ///< live MFT (HBH/REUNITE) / group state (PIM)
    Time horizon = 0;
    Ipv4Addr dst;                    ///< REUNITE: MFT.dst the fan-out keys on
    Ipv4Addr group;                  ///< PIM: group address (decap target)
    /// HBH/REUNITE replication guard, resolved once at compile time (the
    /// router's guards_ map never erases, so the address is stable). The
    /// guard *state* stays live — first_time() mutates the shared ring.
    mcast::ReplicationGuard* guard = nullptr;
    std::vector<Ipv4Addr> targets;   ///< HBH/REUNITE data-copy destinations
    std::vector<NodeId> oifs;        ///< PIM outgoing interfaces (map order)
  };

  /// Per-node compiled block. Dirty blocks (or stale-epoch ones) re-detect
  /// the agent kind and drop every channel entry on the next data hop.
  struct Block {
    Kind kind = Kind::kInterpreted;
    bool dirty = true;
    std::uint64_t epoch = 0;
    Ipv4Addr addr;          ///< the node's unicast address
    void* agent = nullptr;  ///< typed by `kind`; live object owned by the net
    std::vector<ChannelEntry> channels;  ///< indexed by channel slot
  };

  /// One in-flight replayed wire copy, parked until its event fires. The
  /// slim event callback captures {this, slot index} — no ordering
  /// structure is needed because each event names its own slot, and the
  /// free list recycles slots so steady state allocates nothing.
  struct PendingHop {
    NodeId node;  ///< arrival node
    NodeId from;  ///< upstream neighbor (kNoNode for self-delivery)
    net::Packet packet;
  };

  [[nodiscard]] Block& block(NodeId n) { return blocks_[n.index()]; }
  [[nodiscard]] ChannelEntry& entry(Block& b, std::uint16_t slot) {
    if (b.channels.size() <= slot) b.channels.resize(slot + std::size_t{1});
    return b.channels[slot];
  }
  [[nodiscard]] std::uint16_t channel_slot(const net::Channel& ch);

  /// Replays the hop against the (valid) compiled block; false = fall back.
  bool dispatch(Block& b, NodeId to, NodeId from, net::Packet& packet);
  bool dispatch_hbh(Block& b, NodeId to, net::Packet& packet);
  bool dispatch_reunite(Block& b, NodeId to, net::Packet& packet);
  bool dispatch_pim(Block& b, NodeId to, NodeId from, net::Packet& packet);

  /// Re-detects the node's agent kind and clears its channel entries.
  void compile_block(Block& b, NodeId n);
  void compile_entry(Block& b, ChannelEntry& e, const net::Channel& ch);

  /// Releases pool slot `idx` and hands its packet to Network::deliver
  /// (receive counting + re-interception included).
  void fire(std::uint32_t idx);

  net::Network* net_;
  std::vector<Block> blocks_;
  std::uint64_t epoch_ = 0;

  // Channel slot registry: Block::channels is indexed by a dense slot id.
  std::unordered_map<net::Channel, std::uint16_t> slots_;

  std::vector<PendingHop> pool_;      ///< in-flight replayed wire copies
  std::vector<std::uint32_t> free_;   ///< recycled pool slots

  FastpathStats stats_;
  prof::PhaseStats compile_stats_;
  prof::PhaseStats forward_stats_;
  std::uint64_t pending_compile_ns_ = 0;
};

}  // namespace hbh::fastpath
