#include "mcast/reunite/source.hpp"

#include "util/log.hpp"
#include "util/profiler.hpp"

namespace hbh::mcast::reunite {

using net::Packet;
using net::PacketType;

void ReuniteSource::start() {
  tree_timer_ = std::make_unique<sim::PeriodicTimer>(
      simulator(), config_.tree_period, [this] { emit_tree_round(); });
  tree_timer_->start();
}

void ReuniteSource::purge(const net::TraceContext& ctx) {
  if (!mft_) return;
  const bool tracing = ctx.active() && net().trace_hook() != nullptr;
  std::vector<Ipv4Addr> evicted;
  if (mft_->purge(simulator().now(), tracing ? &evicted : nullptr)) {
    mft_.reset();
  }
  for (const Ipv4Addr target : evicted) {
    trace_instant(ctx, "evict", channel_, target);
  }
}

void ReuniteSource::emit_tree_round() {
  HBH_PHASE("tree_round");
  count_timer_fire();
  const Time now = simulator().now();
  // One refresh wave = one source-emission root span; replicas downstream
  // and any evictions this round performs are its causal descendants.
  const net::TraceContext ctx =
      trace_root("tree-round", channel_, self_addr());
  purge(ctx);
  if (!mft_) return;
  ++wave_;
  // tree(S, dst), marked once dst went stale (announces the dying flow).
  const auto emit = [&](Ipv4Addr target, bool marked) {
    Packet tree;
    tree.src = self_addr();
    tree.dst = target;
    tree.channel = channel_;
    tree.type = PacketType::kTree;
    tree.trace = ctx;
    tree.payload = net::TreePayload{target, marked, self_addr(), wave_};
    forward(std::move(tree));
  };
  emit(mft_->dst, mft_->dst_state.stale(now));
  for (const auto& [target, entry] : mft_->entries) {
    if (!entry.dead(now)) emit(target, entry.stale(now));
  }
}

void ReuniteSource::handle(Packet&& packet, NodeId from) {
  (void)from;
  const Time now = simulator().now();
  if (packet.channel != channel_ || packet.dst != self_addr()) {
    net::ProtocolAgent::handle(std::move(packet), from);
    return;
  }
  if (packet.type != PacketType::kJoin) return;  // only joins reach S
  purge(packet.trace);
  const Ipv4Addr r = packet.join().receiver;
  if (mft_) {
    if (r == mft_->dst) {
      mft_->dst_state.refresh(config_, now);
      return;
    }
    if (auto it = mft_->entries.find(r); it != mft_->entries.end()) {
      it->second.refresh(config_, now);
      return;
    }
  }
  if (!packet.join().fresh) {
    // A refresh join for a receiver we don't know: it is anchored at some
    // branching node whose state briefly let the join through. Anchoring
    // it here too would double-serve it; once truly disconnected it will
    // send fresh joins.
    return;
  }
  if (!mft_) {
    // The very first receiver becomes MFT<S>.dst: data will be addressed
    // to it and replicated downstream.
    mft_.emplace();
    mft_->dst = r;
    mft_->dst_state = SoftEntry{config_, now};
    trace_instant(packet.trace, "mft-insert", channel_, r);
    log(LogLevel::kDebug, "REUNITE source dst=", r.to_string());
    return;
  }
  mft_->entries.emplace(r, SoftEntry{config_, now});
  trace_instant(packet.trace, "mft-insert", channel_, r);
  log(LogLevel::kDebug, "REUNITE source adds ", r.to_string(), " ",
      mft_->to_string(now));
}

std::size_t ReuniteSource::send_data(std::uint64_t probe, std::uint32_t seq,
                                     std::uint32_t pad) {
  HBH_PHASE("data_fanout");
  const Time now = simulator().now();
  // One emission = one root span; replication fan-out and deliveries all
  // trace back here.
  const net::TraceContext ctx = trace_root("data", channel_, self_addr());
  purge(ctx);
  if (!mft_) return 0;
  std::size_t copies = 0;
  const auto emit = [&](Ipv4Addr target) {
    Packet data;
    data.src = self_addr();
    data.dst = target;
    data.channel = channel_;
    data.type = PacketType::kData;
    data.trace = ctx;
    data.payload = net::DataPayload{probe, seq, now, false, pad};
    forward(std::move(data));
    ++copies;
  };
  emit(mft_->dst);  // stale dst keeps receiving data until t2 (§2.3)
  for (const Ipv4Addr target : mft_->data_copy_targets(now)) emit(target);
  return copies;
}

}  // namespace hbh::mcast::reunite
