#include "mcast/reunite/router.hpp"

#include "util/log.hpp"

namespace hbh::mcast::reunite {

using net::Packet;
using net::PacketType;

const ChannelState* ReuniteRouter::state(const net::Channel& ch) const {
  const auto it = channels_.find(ch);
  return it == channels_.end() ? nullptr : &it->second;
}

void ReuniteRouter::handle(Packet&& packet, NodeId from) {
  (void)from;
  if (packet.dst == self_addr()) {
    // REUNITE never addresses packets to interior routers; a self-addressed
    // packet would loop through forward(), so sink it defensively.
    ++net().counters().local_sink;
    return;
  }
  switch (packet.type) {
    case PacketType::kJoin:
      on_join(std::move(packet));
      return;
    case PacketType::kTree:
      on_tree(std::move(packet));
      return;
    case PacketType::kData:
      on_data(std::move(packet));
      return;
    case PacketType::kFusion:
    case PacketType::kPimJoin:
    case PacketType::kPimPrune:
      net::ProtocolAgent::handle(std::move(packet), from);
      return;
  }
}

void ReuniteRouter::purge(const net::Channel& ch,
                          const net::TraceContext& ctx) {
  const auto it = channels_.find(ch);
  if (it == channels_.end()) return;
  ChannelState& st = it->second;
  const bool tracing = ctx.active() && net().trace_hook() != nullptr;
  if (st.mct && st.mct->state.dead(now())) {
    if (tracing) trace_instant(ctx, "evict", ch, st.mct->target);
    st.mct.reset();
    note_structural(ch, 1);
  }
  if (st.mft) {
    const std::size_t before = st.mft->entries.size();
    const Ipv4Addr dst_before = st.mft->dst;
    std::vector<Ipv4Addr> evicted;
    if (st.mft->purge(now(), tracing ? &evicted : nullptr)) {
      st.mft.reset();
      note_structural(ch, 1);
    } else {
      note_structural(ch, before - st.mft->entries.size());
      if (st.mft->dst != dst_before) note_structural(ch, 1);
    }
    for (const Ipv4Addr target : evicted) {
      trace_instant(ctx, "evict", ch, target);
    }
  }
  if (!st.mct && !st.mft) channels_.erase(it);
}

void ReuniteRouter::on_join(Packet&& packet) {
  const net::Channel ch = packet.channel;
  const Ipv4Addr r = packet.join().receiver;
  // The anchoring signal: only a receiver that is NOT currently connected
  // to the tree (no recent tree(S, r) reaching it) may create new state.
  // A connected receiver's refresh joins travel unchanged to its existing
  // anchor (ultimately the source's dst/entry for it), which is what keeps
  // the root's soft state alive.
  const bool fresh = packet.join().fresh;
  purge(ch, packet.trace);
  const auto it = channels_.find(ch);

  if (it != channels_.end() && it->second.mft) {
    Mft& mft = *it->second.mft;
    if (mft.dst_state.stale(now())) {
      // Fig. 2c: a stale MFT no longer intercepts joins; they reach S and
      // re-anchor the receiver higher in the tree.
      forward(std::move(packet));
      return;
    }
    if (r == mft.dst) {
      // dst is refreshed by tree messages only: the dst receiver's joins
      // must keep travelling to wherever it originally joined (ultimately
      // the source), or the upstream entry would starve and flap.
      forward(std::move(packet));
      return;
    }
    if (auto entry = mft.entries.find(r); entry != mft.entries.end()) {
      entry->second.refresh(config_, now());
      trace_instant(packet.trace, "join-intercept", ch, r);
      return;  // intercepted: r joined here
    }
    if (!fresh) {
      forward(std::move(packet));  // connected receiver: refresh in transit
      return;
    }
    mft.entries.emplace(r, SoftEntry{config_, now()});
    note_structural(ch, 1);
    trace_instant(packet.trace, "mft-insert", ch, r);
    log(LogLevel::kDebug, to_string(self()), " REUNITE: ", r.to_string(),
        " joins here ", mft.to_string(now()));
    return;
  }

  if (fresh && it != channels_.end() && it->second.mct) {
    Mct& mct = *it->second.mct;
    if (!mct.state.stale(now()) && mct.target != r) {
      // Become a branching node: the passing flow's receiver becomes dst,
      // the joining receiver becomes the first replicated entry.
      ChannelState& st = it->second;
      Mft mft;
      mft.dst = mct.target;
      mft.dst_state = mct.state;
      mft.entries.emplace(r, SoftEntry{config_, now()});
      st.mct.reset();
      st.mft = std::move(mft);
      note_structural(ch, 2);
      trace_instant(packet.trace, "branching", ch, r);
      log(LogLevel::kDebug, to_string(self()), " REUNITE becomes branching ",
          st.mft->to_string(now()));
      return;  // join is dropped
    }
  }
  forward(std::move(packet));
}

void ReuniteRouter::on_tree(Packet&& packet) {
  const net::Channel ch = packet.channel;
  const net::TreePayload tree = packet.tree();
  const Ipv4Addr r = tree.target;
  purge(ch, packet.trace);

  // Stale-straggler rejection (mirrors HbhRouter::on_tree): a reordered
  // tree from an earlier wave must not refresh a dst another wave already
  // marked dying, re-create a torn-down MCT, or flip a stale MCT back to
  // a departed receiver. It still travels toward its target unchanged.
  auto [seen_it, first_seen] = seen_wave_.try_emplace(ch, tree.wave);
  if (!first_seen) {
    if (tree.wave < seen_it->second) {
      forward(std::move(packet));
      return;
    }
    seen_it->second = tree.wave;
  }

  auto it = channels_.find(ch);

  if (it != channels_.end() && it->second.mft) {
    Mft& mft = *it->second.mft;
    if (r != mft.dst) {
      forward(std::move(packet));  // another branch's tree in transit
      return;
    }
    if (tree.marked) {
      // The upstream dst flow is dying: our MFT becomes stale too and
      // stops intercepting joins; downstream learns via the same marking.
      mft.dst_state.expire_t1(now());
    } else {
      mft.dst_state.refresh(config_, now());
    }
    // Replicate at most once per source refresh wave (replicas inherit the
    // wave id): a token circling back through a transient dst/entry cycle
    // cannot re-trigger replication, so every refresh chain stays rooted
    // at the source.
    bool replicate = true;
    auto [wave_it, first] = last_wave_.try_emplace(ch, tree.wave);
    if (!first) {
      if (tree.wave <= wave_it->second) {
        replicate = false;
      } else {
        wave_it->second = tree.wave;
      }
    }
    if (replicate) {
      TreePacer& pacer = pacers_[ch];
      pacer.expire(now(), 10 * config_.tree_period);
      for (const auto& [target, entry] : mft.entries) {
        if (entry.dead(now())) continue;
        if (!pacer.allow(target, now(), 0.5 * config_.tree_period)) continue;
        Packet out;
        out.src = ch.source;
        out.dst = target;
        out.channel = ch;
        out.type = PacketType::kTree;
        out.trace = packet.trace;  // replicas fan out of the same chain
        out.payload =
            net::TreePayload{target, entry.stale(now()), self_addr(), tree.wave};
        forward(std::move(out));
      }
    }
    forward(std::move(packet));  // original continues toward dst
    return;
  }

  // Non-branching router.
  if (tree.marked) {
    if (it != channels_.end() && it->second.mct &&
        it->second.mct->target == r) {
      trace_instant(packet.trace, "evict", ch, r);
      it->second.mct.reset();
      note_structural(ch, 1);
      if (!it->second.mft) channels_.erase(it);
    }
    forward(std::move(packet));
    return;
  }
  if (it == channels_.end() || !it->second.mct) {
    channels_[ch].mct = Mct{r, SoftEntry{config_, now()}};
    note_structural(ch, 1);
    trace_instant(packet.trace, "mct-install", ch, r);
  } else if (it->second.mct->target == r) {
    it->second.mct->state.refresh(config_, now());
  } else if (it->second.mct->state.stale(now())) {
    it->second.mct->target = r;
    it->second.mct->state.refresh(config_, now());
    note_structural(ch, 1);
    trace_instant(packet.trace, "mct-adopt", ch, r);
  }
  // else: a second flow through a non-branching router is NOT recorded —
  // REUNITE only branches on join interception (Fig. 3's pathology).
  forward(std::move(packet));
}

void ReuniteRouter::on_data(Packet&& packet) {
  const net::Channel ch = packet.channel;
  const auto it = channels_.find(ch);
  if (it != channels_.end() && it->second.mft &&
      packet.dst == it->second.mft->dst) {
    Mft& mft = *it->second.mft;
    // Replicate each distinct packet once; a looped-back copy (transient
    // asymmetric-routing cycle) is forwarded but not re-replicated.
    if (guards_[ch].first_time(packet.data().probe, packet.data().seq)) {
      for (const Ipv4Addr target : mft.data_copy_targets(now())) {
        Packet copy = packet;
        copy.dst = target;
        forward(std::move(copy));
      }
    }
    forward(std::move(packet));  // original keeps flowing toward dst
    return;
  }
  forward(std::move(packet));
}

}  // namespace hbh::mcast::reunite
