#include "mcast/reunite/tables.hpp"

namespace hbh::mcast::reunite {

bool Mft::purge(Time now, std::vector<Ipv4Addr>* evicted) {
  for (auto it = entries.begin(); it != entries.end();) {
    if (it->second.dead(now)) {
      if (evicted != nullptr) evicted->push_back(it->first);
      it = entries.erase(it);
    } else {
      it = std::next(it);
    }
  }
  if (dst_state.dead(now)) {
    if (evicted != nullptr) evicted->push_back(dst);
    if (entries.empty()) return true;  // nothing left below: destroy MFT
    // Promote the first live entry: data will now be addressed to it.
    dst = entries.begin()->first;
    dst_state = entries.begin()->second;
    entries.erase(entries.begin());
  }
  return false;
}

std::vector<Ipv4Addr> Mft::data_copy_targets(Time now) const {
  std::vector<Ipv4Addr> out;
  out.reserve(entries.size());
  for (const auto& [r, entry] : entries) {
    if (!entry.dead(now)) out.push_back(r);
  }
  return out;
}

std::string Mft::to_string(Time now) const {
  std::string out = "{dst=" + dst.to_string() + ":" +
                    dst_state.state_string(now);
  for (const auto& [r, entry] : entries) {
    out += ", " + r.to_string() + ":" + entry.state_string(now);
  }
  return out + "}";
}

}  // namespace hbh::mcast::reunite
