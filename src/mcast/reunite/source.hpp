// The REUNITE channel source: root MFT with the dst = first receiver that
// joined the group; periodic tree emission (marked when an entry went
// stale); data addressed to dst plus one copy per entry.
#pragma once

#include <memory>

#include "mcast/reunite/tables.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace hbh::mcast::reunite {

class ReuniteSource : public net::ProtocolAgent {
 public:
  ReuniteSource(net::Channel channel, McastConfig config)
      : channel_(channel), config_(config) {}

  void start() override;

  void handle(net::Packet&& packet, NodeId from) override;

  /// Emits one data packet round (`pad` extra payload bytes for capacity
  /// accounting). Returns number of copies sent.
  std::size_t send_data(std::uint64_t probe, std::uint32_t seq,
                        std::uint32_t pad = 0);

  [[nodiscard]] const net::Channel& channel() const noexcept {
    return channel_;
  }
  [[nodiscard]] bool has_members() const noexcept { return mft_.has_value(); }
  [[nodiscard]] const Mft* mft() const noexcept {
    return mft_ ? &*mft_ : nullptr;
  }

 private:
  void emit_tree_round();

  /// Purges the root MFT; evicted receivers become "evict" instants under
  /// `ctx` (the tree-round/data/join span that triggered the purge).
  void purge(const net::TraceContext& ctx = {});

  net::Channel channel_;
  McastConfig config_;
  std::optional<Mft> mft_;
  std::uint32_t wave_ = 0;  ///< refresh round stamped into tree messages
  std::unique_ptr<sim::PeriodicTimer> tree_timer_;
};

}  // namespace hbh::mcast::reunite
