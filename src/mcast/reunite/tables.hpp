// REUNITE's tables, implemented from Stoica et al. [21] as summarized in
// the paper's §2.1–2.3.
//
// Differences from HBH (deliberate — these cause the pathologies HBH
// fixes): the MFT has a special `dst` field holding the *first receiver*
// that joined below this node; data packets stay addressed to dst and are
// replicated toward the other entries; entries store receiver addresses
// (never branching-router addresses); there are no marked entries, but
// tree messages can be marked to announce a dying dst flow.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mcast/common/soft_state.hpp"
#include "util/ipv4.hpp"

namespace hbh::mcast::reunite {

/// Control entry of a non-branching on-tree router: the receiver whose
/// tree messages flow through here.
struct Mct {
  Ipv4Addr target;
  SoftEntry state;
};

/// Forwarding table of a branching router (or the source).
struct Mft {
  Ipv4Addr dst;                          ///< MFT<S>.dst — first receiver
  SoftEntry dst_state;
  std::map<Ipv4Addr, SoftEntry> entries; ///< receivers joined at this node

  /// Removes dead entries; if dst died, promotes the first live entry to
  /// dst (this is the REUNITE route change on departure the paper
  /// criticizes). Returns true if the whole MFT should be destroyed. When
  /// `evicted` is non-null (tracing) the removed receivers are appended —
  /// including a dead dst, whether promoted over or destroyed.
  bool purge(Time now, std::vector<Ipv4Addr>* evicted = nullptr);

  /// Receivers receiving replicated data copies (all non-dead entries;
  /// stale entries keep receiving data until t2 — §2.3).
  [[nodiscard]] std::vector<Ipv4Addr> data_copy_targets(Time now) const;

  [[nodiscard]] std::string to_string(Time now) const;
};

struct ChannelState {
  std::optional<Mct> mct;
  std::optional<Mft> mft;

  [[nodiscard]] bool branching() const noexcept { return mft.has_value(); }
};

}  // namespace hbh::mcast::reunite
