// The REUNITE router agent (baseline), following §2.1–2.3 and [21].
//
// Join processing, router B receiving join(S, r) travelling toward S
// (joins carry a `fresh` bit: set while the receiver is NOT connected to
// the tree; only fresh joins may anchor new state):
//   * B branching and dst-entry live:
//       r in entries             -> refresh, drop (r stays joined at B)
//       r == dst                 -> forward (dst joins refresh the root)
//       r unknown, join fresh    -> add r to entries, drop ("joins at B")
//       r unknown, refresh join  -> forward toward r's existing anchor
//   * B branching but dst stale  -> forward (no interception; Fig. 2c)
//   * B has fresh MCT{x}, x != r, join fresh -> become branching:
//                                   MFT.dst = x, entries = {r}, drop
//   * otherwise                  -> forward unchanged
//
// Tree processing, B receiving tree(S, r) (possibly marked):
//   * branching, r == dst:
//       marked  -> dst becomes stale (no t2 refresh); replicate + forward
//       fresh   -> refresh dst; replicate one tree(S, rj) per live entry
//                  (marked iff rj is stale) and forward the original
//   * branching, r != dst        -> forward unchanged (foreign branch)
//   * non-branching:
//       marked  -> destroy matching MCT entry; forward
//       no MCT  -> create MCT{r}; forward
//       r match -> refresh; forward
//       stale   -> replace entry with r; forward
//       else    -> forward (REUNITE never branches on tree messages —
//                  exactly why Fig. 3 duplicates packets on R1-R6)
//
// Data: a packet addressed to MFT.dst is forwarded onward *and* one copy
// is sent to every live entry. Everything else is plain unicast.
#pragma once

#include <unordered_map>

#include "mcast/common/pacing.hpp"
#include "mcast/common/soft_state.hpp"
#include "mcast/reunite/tables.hpp"
#include "net/network.hpp"

namespace hbh::mcast::reunite {

class ReuniteRouter : public net::ProtocolAgent {
 public:
  explicit ReuniteRouter(McastConfig config) : config_(config) {}

  void handle(net::Packet&& packet, NodeId from) override;

  [[nodiscard]] const ChannelState* state(const net::Channel& ch) const;

  /// Mutable state exposition for the invariant auditor's fault-seeding
  /// tests; production code never mutates through this.
  [[nodiscard]] ChannelState* mutable_state(const net::Channel& ch) {
    return const_cast<ChannelState*>(
        static_cast<const ReuniteRouter*>(this)->state(ch));
  }

  /// Structural table change counter (Figure 4 stability comparison).
  [[nodiscard]] std::uint64_t structural_changes() const noexcept {
    return structural_changes_;
  }

  /// The same counter restricted to one channel (multi-channel sessions
  /// report per-handle stability; the total stays the cross-channel sum).
  [[nodiscard]] std::uint64_t structural_changes(
      const net::Channel& ch) const {
    const auto it = structural_by_channel_.find(ch);
    return it == structural_by_channel_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::unordered_map<net::Channel, std::uint64_t>&
  structural_by_channel() const noexcept {
    return structural_by_channel_;
  }

  /// The duplicate-suppression guard consulted before every data fan-out.
  /// The compiled fast path calls the live guard for its replayed hops so
  /// the ring evolves exactly as under interpreted dispatch.
  [[nodiscard]] ReplicationGuard& replication_guard(const net::Channel& ch) {
    return guards_[ch];
  }

 private:
  void on_join(net::Packet&& packet);
  void on_tree(net::Packet&& packet);
  void on_data(net::Packet&& packet);

  /// Lazily purges dead state for the channel; drops empty tables. Evicted
  /// receivers (including a promoted-over dst) are traced as "evict"
  /// instants under `ctx` (the span of the triggering packet).
  void purge(const net::Channel& ch, const net::TraceContext& ctx = {});

  /// Records `n` structural changes against `ch` (and the global total),
  /// and flags the mutation to the fabric for fast-path invalidation.
  void note_structural(const net::Channel& ch, std::uint64_t n) {
    if (n == 0) return;
    structural_changes_ += n;
    structural_by_channel_[ch] += n;
    note_table_mutation();
  }

  [[nodiscard]] Time now() const { return simulator().now(); }

  McastConfig config_;
  std::unordered_map<net::Channel, ChannelState> channels_;
  std::unordered_map<net::Channel, TreePacer> pacers_;
  std::unordered_map<net::Channel, ReplicationGuard> guards_;
  std::unordered_map<net::Channel, std::uint32_t> last_wave_;
  /// Highest refresh wave observed per channel; older trees are forwarded
  /// but never mutate state (stale-straggler rejection under reordering).
  std::unordered_map<net::Channel, std::uint32_t> seen_wave_;
  std::uint64_t structural_changes_ = 0;
  std::unordered_map<net::Channel, std::uint64_t> structural_by_channel_;
};

}  // namespace hbh::mcast::reunite
