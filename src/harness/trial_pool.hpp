// Fixed-size worker pool for the parallel experiment engine.
//
// Trials are seed-paired and fully independent — every (protocol, group
// size, trial) cell owns its Session/Simulator/Network — so the sweep grid
// is embarrassingly parallel. The pool fans task indices out across a
// fixed set of worker threads via an atomic cursor; callers write each
// result into a pre-sized slot indexed by the task, then aggregate in
// index order, which makes every table, CSV, and run report bit-identical
// regardless of completion order or job count (docs/PERFORMANCE.md).
//
// The job count comes from the constructor, the HBH_JOBS environment
// variable, or std::thread::hardware_concurrency(), in that order.
// HBH_JOBS=1 runs every task inline on the calling thread — exactly the
// historical serial path, with no threads created at all.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hbh::harness {

class TrialPool {
 public:
  using Task = std::function<void(std::size_t)>;

  /// `jobs` = 0 resolves via resolve_jobs(). A pool of J jobs owns J-1
  /// worker threads; the calling thread works too during run().
  explicit TrialPool(std::size_t jobs = 0);
  ~TrialPool();
  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// Executes task(i) for every i in [0, count) across the pool and
  /// returns when all have finished. Indices are claimed dynamically, so
  /// uneven task costs balance out. If any task throws, the first
  /// exception is rethrown here after the batch drains (remaining tasks
  /// still run). Not reentrant: one run() at a time per pool.
  void run(std::size_t count, const Task& task);

  /// Resolves the effective job count: `jobs` if nonzero, else HBH_JOBS
  /// if set and positive, else hardware_concurrency (min 1).
  [[nodiscard]] static std::size_t resolve_jobs(std::size_t jobs = 0);

 private:
  /// One batch of tasks. Workers hold a shared_ptr to the batch they woke
  /// for, so a worker that wakes late can never claim indices — or touch
  /// state — of a newer batch: its own batch's cursor is already spent.
  struct Batch {
    const Task* task = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};  ///< index dispenser
    std::size_t completed = 0;         ///< guarded by the pool mutex
    std::exception_ptr error;          ///< first failure (pool mutex)
  };

  void worker_loop();
  /// Claims and runs task indices until the batch's cursor is exhausted.
  void drain(Batch& batch);

  const std::size_t jobs_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< signals a new batch (or shutdown)
  std::condition_variable done_cv_;  ///< signals batch completion
  std::shared_ptr<Batch> batch_;     ///< current batch (pool mutex)
  std::uint64_t batch_seq_ = 0;      ///< bumped per run(); workers wait on it
  bool shutdown_ = false;
};

}  // namespace hbh::harness
