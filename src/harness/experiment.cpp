#include "harness/experiment.hpp"

#include <array>
#include <cassert>
#include <chrono>
#include <exception>
#include <fstream>
#include <iomanip>
#include <memory>
#include <optional>
#include <sstream>
#include <tuple>

#include "harness/trial_pool.hpp"
#include "metrics/auditor.hpp"
#include "metrics/profiler.hpp"
#include "metrics/report.hpp"
#include "topo/isp.hpp"
#include "topo/random.hpp"
#include "util/env.hpp"
#include "util/profiler.hpp"
#include "util/rng.hpp"

namespace hbh::harness {

std::string_view to_string(TopoKind k) {
  switch (k) {
    case TopoKind::kIsp:
      return "ISP";
    case TopoKind::kRandom50:
      return "random-50";
  }
  return "?";
}

std::vector<std::size_t> isp_group_sizes() {
  return {2, 4, 6, 8, 10, 12, 14, 16};
}

std::vector<std::size_t> random50_group_sizes() {
  return {5, 10, 15, 20, 25, 30, 35, 40, 45};
}

namespace {

/// Seed for a (spec, size, trial) cell — protocol-independent so every
/// protocol sees the same costs and receiver set (paired trials).
std::uint64_t cell_seed(const ExperimentSpec& spec, std::size_t group_size,
                        std::size_t trial_index) {
  std::uint64_t s = spec.base_seed;
  s ^= 0x1000003u * (group_size + 1);
  s ^= 0x100000001B3ull * (trial_index + 1);
  std::uint64_t mix = s;
  return splitmix64(mix);
}

topo::Scenario build_scenario(const ExperimentSpec& spec, Rng& rng) {
  switch (spec.topology) {
    case TopoKind::kIsp:
      return topo::make_isp();
    case TopoKind::kRandom50: {
      // One fixed random graph per base seed (the paper evaluates a single
      // generated topology); costs are re-randomized per trial by caller.
      Rng topo_rng{spec.base_seed};
      return topo::make_random50(topo_rng);
    }
  }
  (void)rng;
  assert(false);
  return topo::make_isp();
}

/// The paired-trial session for one cell, with joins scheduled but nothing
/// run yet — shared by run_trial and the instrumented report runs.
struct TrialSetup {
  std::unique_ptr<Session> session;
  Time last_join = 0;  ///< time the last join fires
};

TrialSetup prepare_trial(const ExperimentSpec& spec, Protocol protocol,
                         std::size_t group_size, std::size_t trial_index) {
  HBH_PHASE("trial_setup");
  Rng rng{cell_seed(spec, group_size, trial_index)};
  topo::Scenario scenario = build_scenario(spec, rng);
  topo::randomize_costs(scenario.topo, rng);
  if (spec.symmetric_costs) topo::symmetrize_costs(scenario.topo);

  auto candidates = scenario.candidate_receivers();
  assert(group_size <= candidates.size());
  const std::vector<NodeId> receivers = rng.sample(candidates, group_size);

  TrialSetup setup;
  setup.session =
      std::make_unique<Session>(std::move(scenario), protocol, spec.session);
  // Staggered joins in randomized order (the sample above is already
  // shuffled), spaced just over a tree period apart: each join meets the
  // state the previous receivers built, as in an ongoing session. The
  // warmup clock starts after the last join.
  Time delay = 0.1;
  for (const NodeId r : receivers) {
    setup.session->subscribe(r, delay);
    delay += 1.2 * spec.session.timers.tree_period;
  }
  setup.last_join = delay;
  return setup;
}

}  // namespace

TrialResult run_trial(const ExperimentSpec& spec, Protocol protocol,
                      std::size_t group_size, std::size_t trial_index) {
  // Per-trial profiler, merged into the process-wide per-protocol
  // aggregate on completion. Stats are integers summed under a mutex, so
  // the aggregated phase *counts* are identical no matter which TrialPool
  // worker ran which trial (the HBH_JOBS determinism contract); only
  // timings vary.
  prof::PhaseProfiler profiler;
  TrialResult result;
  {
    const prof::ScopedProfiler install{profiler};
    TrialSetup setup = prepare_trial(spec, protocol, group_size, trial_index);
    Session& session = *setup.session;
    {
      HBH_PHASE("warmup");
      session.run_for(setup.last_join + spec.warmup);
    }
    HBH_PHASE("measure");
    const Measurement m = session.measure(spec.drain);
    result.tree_cost = static_cast<double>(m.tree_cost);
    result.mean_delay = m.mean_delay;
    result.delivered = m.delivered_exactly_once();
    // Batched fastpath/compile + fastpath/forward stats land in this
    // trial's profiler before it merges into the per-protocol aggregate.
    session.flush_fastpath_profile();
  }
  prof::process_profile().merge(to_string(protocol), profiler);
  return result;
}

Time run_to_quiescence(Session& session, Time quiet, Time horizon) {
  const Time start = session.simulator().now();
  const Time step = 10;  // one refresh period
  Time last_change = start;
  auto fingerprint = [&] {
    const auto census = session.state_census();
    return std::tuple{census.control_entries, census.forwarding_entries,
                      census.routers_with_state,
                      session.total_structural_changes()};
  };
  auto previous = fingerprint();
  while (session.simulator().now() - start < horizon) {
    session.run_for(step);
    const auto current = fingerprint();
    if (current != previous) {
      previous = current;
      last_change = session.simulator().now();
    } else if (session.simulator().now() - last_change >= quiet) {
      return last_change - start;
    }
  }
  return horizon;
}

namespace {

/// Folds one protocol's [size][trial] grid slice into per-size cells.
/// Always iterates in grid order, so the floating-point accumulation —
/// and therefore every table, CSV, and run report derived from it — is
/// bit-identical no matter which thread produced which trial, or when.
SweepResult aggregate_sweep(const ExperimentSpec& spec, Protocol protocol,
                            const TrialResult* grid) {
  SweepResult out;
  out.protocol = protocol;
  out.cells.reserve(spec.group_sizes.size());
  for (std::size_t s = 0; s < spec.group_sizes.size(); ++s) {
    SweepCell cell;
    cell.group_size = spec.group_sizes[s];
    for (std::size_t trial = 0; trial < spec.trials; ++trial) {
      const TrialResult& r = grid[s * spec.trials + trial];
      cell.tree_cost.add(r.tree_cost);
      cell.mean_delay.add(r.mean_delay);
      if (!r.delivered) ++cell.delivery_failures;
    }
    out.cells.push_back(cell);
  }
  return out;
}

}  // namespace

SweepResult run_sweep(const ExperimentSpec& spec, Protocol protocol,
                      std::size_t jobs) {
  const std::size_t trials = spec.trials;
  std::vector<TrialResult> grid(spec.group_sizes.size() * trials);
  TrialPool pool{jobs};
  pool.run(grid.size(), [&](std::size_t i) {
    grid[i] =
        run_trial(spec, protocol, spec.group_sizes[i / trials], i % trials);
  });
  return aggregate_sweep(spec, protocol, grid.data());
}

std::vector<SweepResult> run_all(const ExperimentSpec& spec,
                                 std::size_t jobs) {
  // One flat (protocol, group size, trial) grid behind a single pool:
  // workers drain cells across protocol boundaries, so a slow protocol's
  // tail overlaps the next protocol's trials instead of serializing.
  const auto& protocols = all_protocols();
  const std::size_t trials = spec.trials;
  const std::size_t per_protocol = spec.group_sizes.size() * trials;
  std::vector<TrialResult> grid(protocols.size() * per_protocol);
  TrialPool pool{jobs};
  pool.run(grid.size(), [&](std::size_t i) {
    const Protocol protocol = protocols[i / per_protocol];
    const std::size_t cell = i % per_protocol;
    grid[i] = run_trial(spec, protocol, spec.group_sizes[cell / trials],
                        cell % trials);
  });
  std::vector<SweepResult> out;
  out.reserve(protocols.size());
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    out.push_back(
        aggregate_sweep(spec, protocols[p], grid.data() + p * per_protocol));
  }
  return out;
}

std::string format_table(const std::vector<SweepResult>& results,
                         std::string_view metric, bool with_ci) {
  assert(!results.empty());
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out << std::setw(10) << "receivers";
  for (const auto& sweep : results) {
    out << std::setw(with_ci ? 22 : 12) << to_string(sweep.protocol);
  }
  out << '\n';
  const std::size_t rows = results.front().cells.size();
  for (std::size_t row = 0; row < rows; ++row) {
    out << std::setw(10) << results.front().cells[row].group_size;
    for (const auto& sweep : results) {
      assert(sweep.cells[row].group_size ==
             results.front().cells[row].group_size);
      const RunningStats& stats = metric == "cost"
                                      ? sweep.cells[row].tree_cost
                                      : sweep.cells[row].mean_delay;
      if (with_ci) {
        out << std::setw(22) << stats.to_string(2);
      } else {
        out << std::setw(12) << std::setprecision(2) << stats.mean();
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string format_csv(const std::vector<SweepResult>& results) {
  std::ostringstream out;
  out << "group_size,protocol,metric,mean,ci95,trials\n";
  out.setf(std::ios::fixed);
  out << std::setprecision(4);
  for (const auto& sweep : results) {
    for (const auto& cell : sweep.cells) {
      out << cell.group_size << ',' << to_string(sweep.protocol) << ",cost,"
          << cell.tree_cost.mean() << ',' << cell.tree_cost.ci95_half_width()
          << ',' << cell.tree_cost.count() << '\n';
      out << cell.group_size << ',' << to_string(sweep.protocol) << ",delay,"
          << cell.mean_delay.mean() << ',' << cell.mean_delay.ci95_half_width()
          << ',' << cell.mean_delay.count() << '\n';
    }
  }
  return out.str();
}

bool write_run_report(const ExperimentSpec& spec,
                      const std::vector<SweepResult>& results,
                      std::string_view figure, const std::string& path,
                      const SessionHook& customize,
                      const ReportSectionHook& extra) {
  std::ofstream out(path);
  if (!out) return false;
  const auto wall_start = std::chrono::steady_clock::now();

  // Rendering is itself a profiled phase (aggregated under the "report"
  // label, visible in the HBH_PROF_OUT artifact). The per-protocol
  // deep-dives below install their own profilers, so their phases land
  // under the protocol labels, not here.
  prof::PhaseProfiler render_profiler;
  const prof::ScopedProfiler render_install{render_profiler};
  std::optional<prof::PhaseScope> render_scope{std::in_place,
                                              "report_render"};

  metrics::JsonWriter w(out);
  w.begin_object();
  w.member("schema", metrics::kRunReportSchema);
  w.member("figure", figure);

  w.key("spec");
  w.begin_object();
  w.member("topology", to_string(spec.topology));
  w.member("trials", static_cast<std::uint64_t>(spec.trials));
  w.member("base_seed", static_cast<std::uint64_t>(spec.base_seed));
  w.member("symmetric_costs", spec.symmetric_costs);
  w.member("warmup", spec.warmup);
  w.member("drain", spec.drain);
  w.key("group_sizes");
  w.begin_array();
  for (const std::size_t s : spec.group_sizes) {
    w.value(static_cast<std::uint64_t>(s));
  }
  w.end_array();
  w.end_object();

  // The sweep summary (same numbers as format_csv).
  w.key("sweep");
  w.begin_array();
  for (const auto& sweep : results) {
    w.begin_object();
    w.member("protocol", to_string(sweep.protocol));
    w.key("cells");
    w.begin_array();
    for (const auto& cell : sweep.cells) {
      w.begin_object();
      w.member("group_size", static_cast<std::uint64_t>(cell.group_size));
      w.member("tree_cost_mean", cell.tree_cost.mean());
      w.member("tree_cost_ci95", cell.tree_cost.ci95_half_width());
      w.member("mean_delay_mean", cell.mean_delay.mean());
      w.member("mean_delay_ci95", cell.mean_delay.ci95_half_width());
      w.member("trials", static_cast<std::uint64_t>(cell.tree_cost.count()));
      w.member("delivery_failures",
               static_cast<std::uint64_t>(cell.delivery_failures));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  // One instrumented deep-dive per protocol: the largest swept group size,
  // trial 0 — a cell the sweep already covered, re-run with telemetry on so
  // the report carries registry metrics, state time series, and per-type
  // message/byte counts without slowing the sweep itself.
  const std::size_t size =
      spec.group_sizes.empty() ? 2 : spec.group_sizes.back();

  // Per-protocol invariant-audit results, captured during the deep-dives
  // and rendered as the top-level "anomalies" section after "runs".
  struct AuditSnapshot {
    Protocol protocol = Protocol::kHbh;
    bool strict = false;
    std::array<std::uint64_t, metrics::kAnomalyKindCount> counts{};
    std::vector<metrics::AnomalyEvent> events;
  };
  std::vector<AuditSnapshot> audits;
  double audit_wall_seconds = 0.0;

  w.key("runs");
  w.begin_object();
  for (const auto& sweep : results) {
    // The deep-dive gets its own profiler so its phases aggregate under
    // the protocol label alongside the sweep's trials; the merge happens
    // before the snapshot below, so this run is included in the section.
    prof::PhaseProfiler dive_profiler;
    std::optional<prof::ScopedProfiler> dive_install{std::in_place,
                                                    dive_profiler};
    TrialSetup setup = prepare_trial(spec, sweep.protocol, size, 0);
    Session& session = *setup.session;
    session.enable_telemetry(spec.session.timers.tree_period);
    session.enable_tracing();
    // Deep-dives are always audited (record mode; strict only when the
    // session already picked it up from HBH_AUDIT=strict) so the report's
    // "anomalies" section is present — with zeros — on every clean run.
    metrics::Auditor& auditor = session.enable_audit();
    if (customize) customize(session);
    {
      HBH_PHASE("warmup");
      session.run_for(setup.last_join + spec.warmup);
    }
    Measurement m;
    {
      HBH_PHASE("measure");
      m = session.measure(spec.drain);
    }
    {
      const auto audit_start = std::chrono::steady_clock::now();
      session.audit_sweep();
      AuditSnapshot snap;
      snap.protocol = sweep.protocol;
      snap.strict = auditor.config().strict;
      for (std::size_t k = 0; k < metrics::kAnomalyKindCount; ++k) {
        snap.counts[k] = auditor.count(static_cast<metrics::AnomalyKind>(k));
      }
      snap.events = auditor.events();
      audits.push_back(std::move(snap));
      audit_wall_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        audit_start)
              .count();
    }
    session.flush_fastpath_profile();
    dive_install.reset();
    prof::process_profile().merge(to_string(sweep.protocol), dive_profiler);
    const prof::PhaseMap profile =
        prof::process_profile().snapshot(to_string(sweep.protocol));
    const metrics::ConvergenceSummary convergence =
        metrics::analyze_convergence(session.tracer()->spans());

    metrics::RunReport report;
    report.profile = &profile;
    report.registry = session.registry();
    report.sampler = session.sampler();
    report.trace = session.trace();
    report.tracer = session.tracer();
    report.convergence = &convergence;
    report.info["protocol"] = std::string(to_string(sweep.protocol));
    report.info["topology"] = std::string(to_string(spec.topology));
    report.numbers["group_size"] = static_cast<double>(size);
    report.numbers["probe.tree_cost"] = static_cast<double>(m.tree_cost);
    report.numbers["probe.mean_delay"] = m.mean_delay;
    report.numbers["probe.delivered"] = m.delivered_exactly_once() ? 1 : 0;
    report.numbers["sim.end_time"] = session.simulator().now();

    w.key(to_string(sweep.protocol));
    w.begin_object();
    report.write_body(w);
    w.end_object();
  }
  w.end_object();

  // Forwarding-plane invariant audit of the deep-dive runs. A clean run
  // reports all-zero counters; counters and events are deterministic at
  // any HBH_JOBS (the deep-dives are serial), only audit_wall_seconds
  // varies (report_scrub strips it).
  {
    std::uint64_t grand_total = 0;
    bool strict = false;
    for (const AuditSnapshot& snap : audits) {
      for (const std::uint64_t n : snap.counts) grand_total += n;
      strict = strict || snap.strict;
    }
    w.key("anomalies");
    w.begin_object();
    w.member("schema", "hbh.anomalies/v1");
    w.member("strict", strict);
    w.member("audit_wall_seconds", audit_wall_seconds);
    w.member("total", grand_total);
    w.key("by_protocol");
    w.begin_object();
    for (const AuditSnapshot& snap : audits) {
      w.key(to_string(snap.protocol));
      w.begin_object();
      std::uint64_t total = 0;
      for (const std::uint64_t n : snap.counts) total += n;
      w.member("total", total);
      for (std::size_t k = 0; k < metrics::kAnomalyKindCount; ++k) {
        w.member(to_string(static_cast<metrics::AnomalyKind>(k)),
                 snap.counts[k]);
      }
      w.key("events");
      w.begin_array();
      for (const metrics::AnomalyEvent& ev : snap.events) {
        w.begin_object();
        w.member("kind", to_string(ev.kind));
        w.member("t", ev.at);
        w.member("node", to_string(ev.node));
        w.member("channel", ev.channel.to_string());
        w.member("seq", static_cast<std::uint64_t>(ev.seq));
        w.member("trace", ev.trace_id);
        w.member("detail", ev.detail);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }

  if (extra) extra(w);

  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  w.member("wall_seconds", wall.count());
  w.end_object();
  out << '\n';

  render_scope.reset();
  prof::process_profile().merge("report", render_profiler);
  return out.good();
}

bool maybe_write_report_from_env(const ExperimentSpec& spec,
                                 const std::vector<SweepResult>& results,
                                 std::string_view figure) {
  const std::string path = env_report_path();
  if (path.empty()) return false;
  return write_run_report(spec, results, figure, path);
}

bool write_trace_file(const ExperimentSpec& spec, std::string_view figure,
                      const std::string& path, const SessionHook& customize) {
  // One serial instrumented HBH re-run (largest group size, trial 0): the
  // same cell the report deep-dives. Serial by construction, so the file
  // is byte-identical at any HBH_JOBS setting.
  const std::size_t size =
      spec.group_sizes.empty() ? 2 : spec.group_sizes.back();
  TrialSetup setup = prepare_trial(spec, Protocol::kHbh, size, 0);
  Session& session = *setup.session;
  session.enable_tracing();
  if (customize) customize(session);
  session.run_for(setup.last_join + spec.warmup);
  (void)session.measure(spec.drain);

  std::map<std::string, std::string> info;
  info["figure"] = std::string(figure);
  info["protocol"] = std::string(to_string(Protocol::kHbh));
  info["topology"] = std::string(to_string(spec.topology));
  info["group_size"] = std::to_string(size);
  return metrics::write_perfetto_trace(*session.tracer(), info, path);
}

bool maybe_write_trace_from_env(const ExperimentSpec& spec,
                                std::string_view figure,
                                const SessionHook& customize) {
  const std::string path = env_trace_out();
  if (path.empty()) return false;
  return write_trace_file(spec, figure, path, customize);
}

bool write_audit_file(const ExperimentSpec& spec, std::string_view figure,
                      const std::string& path, const SessionHook& customize) {
  (void)figure;
  // One serial audited re-run per protocol (largest group size, trial 0 —
  // the cells the report deep-dives). Serial by construction, so the NDJSON
  // stream is byte-identical at any HBH_JOBS setting. Record mode even
  // under HBH_AUDIT=strict: the stream is the diagnosis artifact, so it
  // must survive the anomaly the strict gate would abort on.
  const std::size_t size =
      spec.group_sizes.empty() ? 2 : spec.group_sizes.back();
  std::string out;
  for (const Protocol protocol : all_protocols()) {
    TrialSetup setup = prepare_trial(spec, protocol, size, 0);
    Session& session = *setup.session;
    metrics::Auditor& auditor = session.enable_audit();
    if (customize) customize(session);
    try {
      session.run_for(setup.last_join + spec.warmup);
      (void)session.measure(spec.drain);
      session.audit_sweep();
    } catch (const std::exception&) {
      // HBH_AUDIT=strict aborts the run on the first anomaly, but the
      // event was recorded before the throw — the stream still carries it.
    }
    auditor.append_ndjson(out, to_string(protocol));
  }
  std::ofstream file(path);
  if (!file) return false;
  file << out;
  return file.good();
}

bool maybe_write_audit_from_env(const ExperimentSpec& spec,
                                std::string_view figure,
                                const SessionHook& customize) {
  const std::string path = env_audit_out();
  if (path.empty()) return false;
  return write_audit_file(spec, figure, path, customize);
}

bool write_profile_file(std::string_view figure, const std::string& path) {
  std::map<std::string, std::string> info;
  info["figure"] = std::string(figure);
  return metrics::write_profile_file(prof::process_profile().snapshot(),
                                     info, path);
}

bool maybe_write_profile_from_env(std::string_view figure) {
  const std::string path = env_prof_out();
  if (path.empty()) return false;
  return write_profile_file(figure, path);
}

}  // namespace hbh::harness
