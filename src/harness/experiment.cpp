#include "harness/experiment.hpp"

#include <cassert>
#include <iomanip>
#include <sstream>
#include <tuple>

#include "topo/isp.hpp"
#include "topo/random.hpp"
#include "util/rng.hpp"

namespace hbh::harness {

std::string_view to_string(TopoKind k) {
  switch (k) {
    case TopoKind::kIsp:
      return "ISP";
    case TopoKind::kRandom50:
      return "random-50";
  }
  return "?";
}

std::vector<std::size_t> isp_group_sizes() {
  return {2, 4, 6, 8, 10, 12, 14, 16};
}

std::vector<std::size_t> random50_group_sizes() {
  return {5, 10, 15, 20, 25, 30, 35, 40, 45};
}

namespace {

/// Seed for a (spec, size, trial) cell — protocol-independent so every
/// protocol sees the same costs and receiver set (paired trials).
std::uint64_t cell_seed(const ExperimentSpec& spec, std::size_t group_size,
                        std::size_t trial_index) {
  std::uint64_t s = spec.base_seed;
  s ^= 0x1000003u * (group_size + 1);
  s ^= 0x100000001B3ull * (trial_index + 1);
  std::uint64_t mix = s;
  return splitmix64(mix);
}

topo::Scenario build_scenario(const ExperimentSpec& spec, Rng& rng) {
  switch (spec.topology) {
    case TopoKind::kIsp:
      return topo::make_isp();
    case TopoKind::kRandom50: {
      // One fixed random graph per base seed (the paper evaluates a single
      // generated topology); costs are re-randomized per trial by caller.
      Rng topo_rng{spec.base_seed};
      return topo::make_random50(topo_rng);
    }
  }
  (void)rng;
  assert(false);
  return topo::make_isp();
}

}  // namespace

TrialResult run_trial(const ExperimentSpec& spec, Protocol protocol,
                      std::size_t group_size, std::size_t trial_index) {
  Rng rng{cell_seed(spec, group_size, trial_index)};
  topo::Scenario scenario = build_scenario(spec, rng);
  topo::randomize_costs(scenario.topo, rng);
  if (spec.symmetric_costs) topo::symmetrize_costs(scenario.topo);

  auto candidates = scenario.candidate_receivers();
  assert(group_size <= candidates.size());
  const std::vector<NodeId> receivers = rng.sample(candidates, group_size);

  SessionConfig config;
  config.timers = spec.timers;
  Session session{std::move(scenario), protocol, config};
  // Staggered joins in randomized order (the sample above is already
  // shuffled), spaced just over a tree period apart: each join meets the
  // state the previous receivers built, as in an ongoing session. The
  // warmup clock starts after the last join.
  Time delay = 0.1;
  for (const NodeId r : receivers) {
    session.subscribe(r, delay);
    delay += 1.2 * spec.timers.tree_period;
  }
  session.run_for(delay + spec.warmup);

  const Measurement m = session.measure(spec.drain);
  TrialResult result;
  result.tree_cost = static_cast<double>(m.tree_cost);
  result.mean_delay = m.mean_delay;
  result.delivered = m.delivered_exactly_once();
  return result;
}

Time run_to_quiescence(Session& session, Time quiet, Time horizon) {
  const Time start = session.simulator().now();
  const Time step = 10;  // one refresh period
  Time last_change = start;
  auto fingerprint = [&] {
    const auto census = session.state_census();
    return std::tuple{census.control_entries, census.forwarding_entries,
                      census.routers_with_state,
                      session.total_structural_changes()};
  };
  auto previous = fingerprint();
  while (session.simulator().now() - start < horizon) {
    session.run_for(step);
    const auto current = fingerprint();
    if (current != previous) {
      previous = current;
      last_change = session.simulator().now();
    } else if (session.simulator().now() - last_change >= quiet) {
      return last_change - start;
    }
  }
  return horizon;
}

SweepResult run_sweep(const ExperimentSpec& spec, Protocol protocol) {
  SweepResult out;
  out.protocol = protocol;
  for (const std::size_t size : spec.group_sizes) {
    SweepCell cell;
    cell.group_size = size;
    for (std::size_t trial = 0; trial < spec.trials; ++trial) {
      const TrialResult r = run_trial(spec, protocol, size, trial);
      cell.tree_cost.add(r.tree_cost);
      cell.mean_delay.add(r.mean_delay);
      if (!r.delivered) ++cell.delivery_failures;
    }
    out.cells.push_back(cell);
  }
  return out;
}

std::vector<SweepResult> run_all(const ExperimentSpec& spec) {
  std::vector<SweepResult> out;
  out.reserve(all_protocols().size());
  for (const Protocol p : all_protocols()) {
    out.push_back(run_sweep(spec, p));
  }
  return out;
}

std::string format_table(const std::vector<SweepResult>& results,
                         std::string_view metric, bool with_ci) {
  assert(!results.empty());
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out << std::setw(10) << "receivers";
  for (const auto& sweep : results) {
    out << std::setw(with_ci ? 22 : 12) << to_string(sweep.protocol);
  }
  out << '\n';
  const std::size_t rows = results.front().cells.size();
  for (std::size_t row = 0; row < rows; ++row) {
    out << std::setw(10) << results.front().cells[row].group_size;
    for (const auto& sweep : results) {
      assert(sweep.cells[row].group_size ==
             results.front().cells[row].group_size);
      const RunningStats& stats = metric == "cost"
                                      ? sweep.cells[row].tree_cost
                                      : sweep.cells[row].mean_delay;
      if (with_ci) {
        out << std::setw(22) << stats.to_string(2);
      } else {
        out << std::setw(12) << std::setprecision(2) << stats.mean();
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string format_csv(const std::vector<SweepResult>& results) {
  std::ostringstream out;
  out << "group_size,protocol,metric,mean,ci95,trials\n";
  out.setf(std::ios::fixed);
  out << std::setprecision(4);
  for (const auto& sweep : results) {
    for (const auto& cell : sweep.cells) {
      out << cell.group_size << ',' << to_string(sweep.protocol) << ",cost,"
          << cell.tree_cost.mean() << ',' << cell.tree_cost.ci95_half_width()
          << ',' << cell.tree_cost.count() << '\n';
      out << cell.group_size << ',' << to_string(sweep.protocol) << ",delay,"
          << cell.mean_delay.mean() << ',' << cell.mean_delay.ci95_half_width()
          << ',' << cell.mean_delay.count() << '\n';
    }
  }
  return out.str();
}

}  // namespace hbh::harness
