// The experiment driver reproducing the paper's §4 evaluation.
//
// One *trial* = one cost randomization + one random receiver set + one
// protocol, simulated to convergence, then probed. Trials are paired:
// the (figure, group size, trial index) triple fully determines topology
// costs and the receiver set, so every protocol sees identical conditions
// — the same pairing the paper gets by simulating all protocols on each
// sampled configuration.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/session.hpp"
#include "metrics/json.hpp"
#include "topo/builders.hpp"
#include "util/stats.hpp"

namespace hbh::harness {

/// Which evaluation topology (§4.1).
enum class TopoKind {
  kIsp,       ///< Figure 6: 18 routers + 18 hosts, source = node 18
  kRandom50,  ///< 50-router random topology, average degree 8.6
};

[[nodiscard]] std::string_view to_string(TopoKind k);

struct ExperimentSpec {
  TopoKind topology = TopoKind::kIsp;
  std::vector<std::size_t> group_sizes{};  ///< receivers per sweep point
  std::size_t trials = 100;                ///< paper uses 500
  std::uint64_t base_seed = 20010827;      ///< SIGCOMM'01 conference date
  bool symmetric_costs = false;            ///< ablation: symmetrize links
  Time warmup = 240;                       ///< control-plane convergence time
  Time drain = 160;                        ///< data-plane settling per probe
  /// Per-session wiring (soft-state timers, unicast-only clouds) handed
  /// verbatim to every trial's Session — the one source of truth for
  /// protocol timer configuration.
  SessionConfig session{};
};

/// Default sweeps matching the figures' x-axes.
[[nodiscard]] std::vector<std::size_t> isp_group_sizes();       // 2..16 step 2
[[nodiscard]] std::vector<std::size_t> random50_group_sizes();  // 5..45 step 5

struct TrialResult {
  double tree_cost = 0;
  double mean_delay = 0;
  bool delivered = false;  ///< every member exactly once
};

/// Runs a single (topology variant, protocol, group size, trial) cell.
[[nodiscard]] TrialResult run_trial(const ExperimentSpec& spec,
                                    Protocol protocol, std::size_t group_size,
                                    std::size_t trial_index);

/// Runs `session` until its control plane is quiescent: no router state
/// change (structural-change counters and the state census fingerprint)
/// for `quiet` consecutive time units, up to `horizon`. Returns the time
/// of the last observed change — the control-plane convergence time.
/// Returns `horizon` if the session never settled.
[[nodiscard]] Time run_to_quiescence(Session& session, Time quiet = 100,
                                     Time horizon = 3000);

struct SweepCell {
  std::size_t group_size = 0;
  RunningStats tree_cost;
  RunningStats mean_delay;
  std::size_t delivery_failures = 0;
};

struct SweepResult {
  Protocol protocol{};
  std::vector<SweepCell> cells;
};

/// Runs the full sweep for one protocol. `jobs` sizes the worker pool
/// fanning the (group size, trial) grid out across threads: 0 resolves
/// HBH_JOBS / hardware_concurrency (harness::TrialPool), 1 is the serial
/// path. Results are bit-identical for every job count: each trial writes
/// a pre-sized grid slot and aggregation runs in grid order.
[[nodiscard]] SweepResult run_sweep(const ExperimentSpec& spec,
                                    Protocol protocol, std::size_t jobs = 0);

/// Runs all four protocols, fanning the whole (protocol, group size,
/// trial) cell grid across one worker pool (same determinism contract and
/// `jobs` semantics as run_sweep).
[[nodiscard]] std::vector<SweepResult> run_all(const ExperimentSpec& spec,
                                               std::size_t jobs = 0);

/// Renders the figure-style table: one row per group size, one column per
/// protocol. `metric` selects tree cost ("cost") or delay ("delay").
[[nodiscard]] std::string format_table(const std::vector<SweepResult>& results,
                                       std::string_view metric,
                                       bool with_ci = false);

/// Machine-readable CSV (group_size,protocol,metric,mean,ci95,trials).
[[nodiscard]] std::string format_csv(const std::vector<SweepResult>& results);

/// Writes a machine-readable JSON run report (schema hbh.run_report/v1) to
/// `path`: the sweep summary in `results`, plus one fully instrumented
/// re-run per protocol (largest group size, trial 0, telemetry enabled) with
/// registry metrics, sampled protocol-state time series, and per-type
/// message/byte counts. `customize`, when set, runs on each instrumented
/// session before the warmup — benches use it to re-apply their scenario
/// conditions (e.g. fault injection) so the report reflects them.
/// Returns false if the file could not be created. `extra`, when set, is
/// called with the writer positioned inside the report's root object
/// (after "runs", before "wall_seconds") — benches use it to append their
/// own top-level sections (e.g. ablation_congestion's "congestion"); the
/// hook must emit complete members (w.key(...) + balanced begin/end).
using SessionHook = std::function<void(Session&)>;
using ReportSectionHook = std::function<void(metrics::JsonWriter&)>;
bool write_run_report(const ExperimentSpec& spec,
                      const std::vector<SweepResult>& results,
                      std::string_view figure, const std::string& path,
                      const SessionHook& customize = {},
                      const ReportSectionHook& extra = {});

/// Honors HBH_REPORT=path.json (docs/OBSERVABILITY.md): writes the report
/// there and returns true, or does nothing when the variable is unset.
bool maybe_write_report_from_env(const ExperimentSpec& spec,
                                 const std::vector<SweepResult>& results,
                                 std::string_view figure);

/// Writes a Perfetto/Chrome trace-event JSON (schema hbh.trace/v1) of one
/// serial instrumented HBH re-run — the largest swept group size, trial 0,
/// causal tracing enabled. Serial by construction, so the file is
/// byte-identical at any HBH_JOBS setting. Returns false if the file could
/// not be created.
bool write_trace_file(const ExperimentSpec& spec, std::string_view figure,
                      const std::string& path,
                      const SessionHook& customize = {});

/// Honors HBH_TRACE_OUT=path.json: writes the trace there and returns
/// true, or does nothing when the variable is unset.
bool maybe_write_trace_from_env(const ExperimentSpec& spec,
                                std::string_view figure,
                                const SessionHook& customize = {});

/// Writes the forwarding-plane invariant audit as NDJSON (one hbh.audit/v1
/// object per anomaly; an empty file means a clean run): one serial audited
/// re-run per protocol — the largest swept group size, trial 0, the same
/// cell the report deep-dives. Serial by construction, so the file is
/// byte-identical at any HBH_JOBS setting. Returns false if the file could
/// not be created.
bool write_audit_file(const ExperimentSpec& spec, std::string_view figure,
                      const std::string& path,
                      const SessionHook& customize = {});

/// Honors HBH_AUDIT_OUT=path.ndjson: writes the audit stream there and
/// returns true, or does nothing when the variable is unset.
bool maybe_write_audit_from_env(const ExperimentSpec& spec,
                                std::string_view figure,
                                const SessionHook& customize = {});

/// Writes the process-wide phase profile accumulated so far (every trial
/// run_trial executed, the report deep-dives, report rendering) as a
/// standalone hbh.perf_profile/v1 document keyed by protocol label.
/// Timings vary run to run; phase counts are deterministic at any
/// HBH_JOBS. Returns false if the file could not be created.
bool write_profile_file(std::string_view figure, const std::string& path);

/// Honors HBH_PROF_OUT=path.json: writes the profile there and returns
/// true, or does nothing when the variable is unset.
bool maybe_write_profile_from_env(std::string_view figure);

}  // namespace hbh::harness
