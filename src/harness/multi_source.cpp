#include "harness/multi_source.hpp"

#include <cassert>
#include <utility>

namespace hbh::harness {

net::ProtocolAgent& MultiSourceHost::add_source(
    const net::Channel& channel, std::unique_ptr<net::ProtocolAgent> source) {
  assert(source != nullptr);
  assert(self().valid());  // attach the composite before adding sources
  net().adopt(self(), *source);
  subs_.push_back(Sub{channel, std::move(source)});
  net::ProtocolAgent& agent = *subs_.back().agent;
  if (started_) agent.start();
  return agent;
}

void MultiSourceHost::start() {
  started_ = true;
  for (Sub& sub : subs_) sub.agent->start();
}

void MultiSourceHost::handle(net::Packet&& packet, NodeId from) {
  for (Sub& sub : subs_) {
    if (packet.channel == sub.channel) {
      sub.agent->handle(std::move(packet), from);
      return;
    }
  }
  // Not one of ours: transit traffic through the host node.
  net::ProtocolAgent::handle(std::move(packet), from);
}

net::ProtocolAgent* MultiSourceHost::agent_for(const net::Channel& channel) {
  for (Sub& sub : subs_) {
    if (sub.channel == channel) return sub.agent.get();
  }
  return nullptr;
}

const net::ProtocolAgent* MultiSourceHost::agent_for(
    const net::Channel& channel) const {
  for (const Sub& sub : subs_) {
    if (sub.channel == channel) return sub.agent.get();
  }
  return nullptr;
}

net::AgentStats MultiSourceHost::sub_stats() const {
  net::AgentStats total;
  for (const Sub& sub : subs_) {
    const net::AgentStats& s = sub.agent->stats();
    for (std::size_t i = 0; i < net::kPacketTypeCount; ++i) {
      total.rx_by_type[i] += s.rx_by_type[i];
    }
    total.timer_fires += s.timer_fires;
  }
  return total;
}

}  // namespace hbh::harness
