#include "harness/multi_source.hpp"

#include <cassert>
#include <utility>

namespace hbh::harness {

net::ProtocolAgent& MultiSourceHost::add_source(
    const net::Channel& channel, std::unique_ptr<net::ProtocolAgent> source) {
  assert(source != nullptr);
  assert(self().valid());  // attach the composite before adding sources
  net().adopt(self(), *source);
  subs_.push_back(Sub{channel, std::move(source)});
  net::ProtocolAgent& agent = *subs_.back().agent;
  if (started_) agent.start();
  return agent;
}

void MultiSourceHost::start() {
  started_ = true;
  for (Sub& sub : subs_) sub.agent->start();
  for (const auto& t : traffic_) arm_traffic(*t);
}

void MultiSourceHost::set_traffic(const net::Channel& channel,
                                  const TrafficSpec& spec,
                                  std::function<void()> emit) {
  Traffic* slot = nullptr;
  for (const auto& t : traffic_) {
    if (t->channel == channel) {
      slot = t.get();
      break;
    }
  }
  if (slot == nullptr) {
    traffic_.push_back(std::make_unique<Traffic>());
    slot = traffic_.back().get();
    slot->channel = channel;
  }
  slot->timer.reset();  // any previous cadence is gone
  slot->spec = spec;
  slot->emit = std::move(emit);
  if (started_) arm_traffic(*slot);
}

const TrafficSpec& MultiSourceHost::traffic(const net::Channel& channel) const {
  static const TrafficSpec kDefault{};
  for (const auto& t : traffic_) {
    if (t->channel == channel) return t->spec;
  }
  return kDefault;
}

void MultiSourceHost::arm_traffic(Traffic& t) {
  if (!t.spec.active()) return;
  const Time now = simulator().now();
  if (t.spec.stop >= 0 && now > t.spec.stop) return;
  t.timer = std::make_unique<sim::PeriodicTimer>(
      simulator(), t.spec.interval(), [this, &t] { fire_traffic(t); });
  // First emission lands exactly at spec.start (or immediately when that
  // is already past), then every interval.
  const Time first = t.spec.start > now ? t.spec.start - now : 0;
  t.timer->start(first);
}

void MultiSourceHost::fire_traffic(Traffic& t) {
  if (t.spec.stop >= 0 && simulator().now() > t.spec.stop) {
    t.timer->stop();
    return;
  }
  count_timer_fire();
  t.emit();
}

void MultiSourceHost::handle(net::Packet&& packet, NodeId from) {
  for (Sub& sub : subs_) {
    if (packet.channel == sub.channel) {
      sub.agent->handle(std::move(packet), from);
      return;
    }
  }
  // Not one of ours: transit traffic through the host node.
  net::ProtocolAgent::handle(std::move(packet), from);
}

net::ProtocolAgent* MultiSourceHost::agent_for(const net::Channel& channel) {
  for (Sub& sub : subs_) {
    if (sub.channel == channel) return sub.agent.get();
  }
  return nullptr;
}

const net::ProtocolAgent* MultiSourceHost::agent_for(
    const net::Channel& channel) const {
  for (const Sub& sub : subs_) {
    if (sub.channel == channel) return sub.agent.get();
  }
  return nullptr;
}

net::AgentStats MultiSourceHost::sub_stats() const {
  net::AgentStats total;
  for (const Sub& sub : subs_) {
    const net::AgentStats& s = sub.agent->stats();
    for (std::size_t i = 0; i < net::kPacketTypeCount; ++i) {
      total.rx_by_type[i] += s.rx_by_type[i];
    }
    total.timer_fires += s.timer_fires;
  }
  return total;
}

}  // namespace hbh::harness
