// A Session wires one protocol onto one topology and drives a simulation.
//
// One Session = one network hosting N ⟨S,G⟩ channels (the EXPRESS channel
// model, §2.1). The constructor creates a default channel rooted at the
// scenario's source host; Session::create_channel() adds more, each
// returning a ChannelHandle that carries the per-channel surface:
// subscribe/unsubscribe receivers, run the control plane to convergence,
// then inject probe packets and measure tree cost and receiver delay.
// The original single-channel methods remain as thin forwards to the
// default channel, so single-channel code reads exactly as before
// (docs/CHANNELS.md).
//
// This is the public entry point a downstream user of the library touches
// first (see examples/quickstart.cpp).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "harness/fault_plan.hpp"
#include "mcast/common/membership.hpp"
#include "metrics/auditor.hpp"
#include "metrics/net_stats.hpp"
#include "metrics/probe.hpp"
#include "metrics/registry.hpp"
#include "metrics/sampler.hpp"
#include "metrics/trace.hpp"
#include "metrics/tracer.hpp"
#include "net/network.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"

namespace hbh::fastpath {
class CompiledForwarder;
}

namespace hbh::harness {

class ChurnPlan;
class MultiSourceHost;
class Session;

/// The four protocols the paper evaluates (§4.2).
enum class Protocol { kHbh, kReunite, kPimSm, kPimSs };

[[nodiscard]] std::string_view to_string(Protocol p);

/// All protocols, in the paper's plotting order.
[[nodiscard]] const std::vector<Protocol>& all_protocols();

struct SessionConfig {
  mcast::McastConfig timers{};
  /// Multicast-incapable routers (unicast clouds): these get the default
  /// forwarding agent instead of a protocol agent.
  std::vector<NodeId> unicast_only{};
  /// Compiled data-plane fast path (src/mcast/fastpath). Unset defers to
  /// the HBH_FASTPATH environment knob (default on); simulation outputs
  /// are byte-identical either way — only the wall clock changes.
  std::optional<bool> fastpath{};
};

/// Result of one measurement round (one probe packet).
struct Measurement {
  std::size_t tree_cost = 0;        ///< data-packet copies over all links
  double mean_delay = 0;            ///< mean first-delivery delay
  std::size_t max_link_copies = 0;  ///< >1 reveals duplicate copies (Fig. 3)
  std::vector<NodeId> missing;      ///< subscribed receivers that got nothing
  std::vector<NodeId> duplicated;   ///< receivers that got multiple copies
  /// Copies of the probe packet per directed link (the measured tree).
  std::map<std::pair<NodeId, NodeId>, std::size_t> per_link;

  [[nodiscard]] bool delivered_exactly_once() const {
    return missing.empty() && duplicated.empty();
  }
};

/// Router-state census — the paper's §2.1 motivation: REUNITE/HBH keep
/// *forwarding* state (MFT entries / PIM oifs) only where packets are
/// replicated, and cheap *control* state (MCT) elsewhere.
struct StateCensus {
  std::size_t control_entries = 0;     ///< MCT entries
  std::size_t forwarding_entries = 0;  ///< MFT entries / PIM oifs
  std::size_t routers_with_state = 0;
};

/// State held by one router class (§3's state-placement argument).
/// `routers` counts (router, channel) incidences: a router that is a
/// branching node for three channels contributes three — the unit the
/// aggregate-state scaling claim is about.
struct ClassCensus {
  std::size_t routers = 0;
  std::size_t control_entries = 0;
  std::size_t forwarding_entries = 0;
};

/// Cross-channel census, split by router class. For HBH/REUNITE a router
/// is *branching* on a channel when it holds a live MFT there (it is an
/// addressed replication point) and *non-branching* when it holds only an
/// MCT — so non_branching.forwarding_entries is zero by construction, the
/// paper's claim. For PIM, ≥2 oifs is branching and exactly 1 oif is
/// non-branching — which still costs forwarding state, the contrast the
/// paper draws. The PIM-SM RP is its own class for every channel it
/// serves, whatever its fan-out.
struct AggregateCensus {
  StateCensus totals;  ///< routers_with_state counts distinct routers
  ClassCensus branching;
  ClassCensus non_branching;
  ClassCensus rp;
};

/// Identifies one channel within its Session (0 = the default channel).
using ChannelId = std::uint32_t;

/// Explicit description of a channel's data traffic (docs/CHANNELS.md).
/// The default spec (rate 0) emits nothing on its own — exactly the legacy
/// behavior where data flows only when measure()/inject_data() is called —
/// so existing callers are byte-identical. `payload_bytes` applies to
/// *every* data packet the channel emits (autonomous, injected, probes):
/// that many zero pad bytes ride on the wire for capacity accounting.
struct TrafficSpec {
  double rate = 0.0;  ///< autonomous emissions per time unit (0 = none)
  std::uint32_t payload_bytes = 0;  ///< extra payload bytes per data packet
  Time start = 0.0;   ///< absolute sim time the emission timer begins
  Time stop = -1.0;   ///< absolute sim time emission ceases (< 0 = never)

  [[nodiscard]] bool active() const noexcept { return rate > 0; }
  [[nodiscard]] Time interval() const noexcept { return 1.0 / rate; }
};

/// Classification of one router with respect to one channel — the unit the
/// per-class congestion-loss breakdown attributes drops to. Matches
/// aggregate_census's rules (see AggregateCensus).
enum class RouterClass : std::uint8_t {
  kNone,          ///< no live state for the channel
  kNonBranching,  ///< MCT only (HBH/REUNITE) or exactly 1 oif (PIM)
  kBranching,     ///< live MFT (HBH/REUNITE) or ≥2 oifs (PIM)
  kRp,            ///< the PIM-SM rendez-vous point for this channel
};

/// A lightweight per-channel view onto a Session. Copyable; valid for the
/// Session's lifetime. Obtained from Session::create_channel() /
/// default_channel() / channel_handle().
class ChannelHandle {
 public:
  ChannelHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return session_ != nullptr; }
  [[nodiscard]] ChannelId id() const noexcept { return id_; }
  [[nodiscard]] const net::Channel& channel() const;
  [[nodiscard]] NodeId source_host() const;
  /// The RP router serving this channel (PIM-SM only; kNoNode otherwise).
  [[nodiscard]] NodeId rp() const;

  /// Subscribes the receiver host immediately (or at now+delay).
  void subscribe(NodeId host, Time delay = 0);
  void unsubscribe(NodeId host, Time delay = 0);

  /// Currently subscribed receiver hosts, in stable scenario order.
  [[nodiscard]] std::vector<NodeId> members() const;

  /// Sends one probe data packet from this channel's source and runs the
  /// simulation for `drain` time units, then reports what happened. Probes
  /// carry unique ids, so measuring one channel never pollutes another's
  /// measurement.
  Measurement measure(Time drain = 150);

  /// Emits one unmeasured data packet from this channel's source (a plain
  /// traffic round: no probe tap, no drain). Returns the number of copies
  /// the source sent. With tracing enabled the emission opens a "data"
  /// root span whose replication fan-out and deliveries are descendants.
  std::size_t inject_data();

  /// (Re)configures this channel's autonomous traffic: an emission timer
  /// on the source host fires every 1/rate from `spec.start` to
  /// `spec.stop`, each firing a plain inject_data carrying
  /// `spec.payload_bytes` of padding. A rate-0 spec stops emission.
  void set_traffic(const TrafficSpec& spec);
  [[nodiscard]] const TrafficSpec& traffic() const;

  /// Structural table changes attributed to this channel (HBH/REUNITE).
  [[nodiscard]] std::uint64_t total_structural_changes() const;

  /// Live router state for this channel alone.
  [[nodiscard]] StateCensus state_census() const;

  /// Schedules every membership event of `plan` on the simulator,
  /// relative to now (the churn workload of docs/CHANNELS.md).
  void schedule_churn(const ChurnPlan& plan);

 private:
  friend class Session;
  ChannelHandle(Session* session, ChannelId id) : session_(session), id_(id) {}

  Session* session_ = nullptr;
  ChannelId id_ = 0;
};

class Session {
 public:
  /// The scenario is copied (costs may be randomized per trial by the
  /// caller *before* constructing the session; routing is computed here).
  /// A default channel (id 0) is created at the scenario's source host.
  Session(topo::Scenario scenario, Protocol protocol,
          SessionConfig config = {});
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] Protocol protocol() const noexcept { return protocol_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return *net_; }
  [[nodiscard]] const topo::Scenario& scenario() const noexcept {
    return scenario_;
  }
  [[nodiscard]] const routing::UnicastRouting& routes() const noexcept {
    return *routes_;
  }

  // --- Channels ----------------------------------------------------------

  /// Creates a new ⟨S,G⟩ channel sourced at `source_host` (any host; one
  /// host can source many channels). The host must not currently be a
  /// subscribed receiver; it stops being subscribable. `timers` overrides
  /// the session-wide soft-state timers for this channel's source agent.
  ChannelHandle create_channel(
      NodeId source_host,
      std::optional<mcast::McastConfig> timers = std::nullopt,
      const TrafficSpec& traffic = {});

  [[nodiscard]] std::size_t channel_count() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] ChannelHandle channel_handle(ChannelId id);
  [[nodiscard]] ChannelHandle default_channel() { return channel_handle(0); }

  /// Cross-channel router-state census split by router class — the
  /// aggregate-state scaling measurement (docs/CHANNELS.md).
  [[nodiscard]] AggregateCensus aggregate_census() const;

  /// Classifies `router` for channel `id` right now (live soft state).
  [[nodiscard]] RouterClass router_class(NodeId router, ChannelId id) const;

  /// Applies `capacity` (bytes/time-unit) with the given queue
  /// configuration to every backbone (router-router) directed edge; host
  /// access links stay uncapacitated. Costs, delays, and routing are
  /// untouched, so an uncapacitated run with the same seed sees identical
  /// control-plane behavior.
  void apply_backbone_capacity(double capacity,
                               std::size_t queue_limit = net::kDefaultQueueLimit,
                               net::AqmPolicy aqm = net::AqmPolicy::kDropTail);

  // --- Default-channel forwards (the original single-channel API) --------

  [[nodiscard]] const net::Channel& channel() const noexcept {
    return channels_.front().channel;
  }
  /// The RP router chosen for PIM-SM's default channel (kNoNode otherwise).
  [[nodiscard]] NodeId rp() const noexcept { return channels_.front().rp; }

  /// Subscribes the receiver host to the default channel (at now+delay).
  void subscribe(NodeId host, Time delay = 0) { subscribe_on(0, host, delay); }
  void unsubscribe(NodeId host, Time delay = 0) {
    unsubscribe_on(0, host, delay);
  }

  /// Currently subscribed receiver hosts of the default channel.
  [[nodiscard]] std::vector<NodeId> members() const { return members_of(0); }

  /// Advances the simulation by `duration` time units.
  void run_for(Time duration) { sim_.run_for(duration); }

  /// Probes the default channel (see ChannelHandle::measure).
  Measurement measure(Time drain = 150) { return measure_on(0, drain); }

  /// Sum of structural table changes across all protocol routers and all
  /// channels (HBH / REUNITE only; 0 for PIM) — the Figure 4 stability
  /// metric.
  [[nodiscard]] std::uint64_t total_structural_changes() const;

  /// Sets both directions of the duplex link a-b to `cost` (delay = cost)
  /// and recomputes unicast routing — modelling an instantaneous IGP
  /// reconvergence after a metric change. Soft state then re-anchors the
  /// multicast tree onto the new routes over the following periods.
  void set_link_cost(NodeId a, NodeId b, double cost);

  /// Takes the duplex link a-b administratively down: both directed edges
  /// are excluded from route computation AND drop any in-flight
  /// transmission attempt ("link-down"), then routing reconverges
  /// instantly. The residual graph must stay connected between nodes that
  /// still exchange traffic. Contrast with Impairment::down_windows, which
  /// blackholes a link *without* the IGP noticing.
  void set_link_down(NodeId a, NodeId b);

  /// Repairs a link downed by set_link_down and reconverges routing.
  void set_link_up(NodeId a, NodeId b);

  /// Hard-fails the link (removed from routing; traffic routes around it).
  void fail_link(NodeId a, NodeId b) { set_link_down(a, b); }

  /// Crashes the protocol process on `router`: its agent — MFT/MCT/PIM
  /// state, pacers, wave trackers, everything — is destroyed and replaced
  /// by the default unicast forwarder. The data plane keeps routing
  /// packets through the node (a control-plane crash, not a node
  /// partition; combine with set_link_down for the latter). Structural
  /// change and join-interception totals survive into the session-level
  /// counters (globally and per channel). No-op if already crashed.
  /// Routers only — not hosts.
  void crash_router(NodeId router);

  /// Reinstalls a fresh protocol agent on a crashed router and start()s
  /// it. The router rebuilds its tables from the periodic control traffic
  /// that flows through it — there is no state transfer. No-op unless
  /// crashed.
  void restart_router(NodeId router);

  [[nodiscard]] bool crashed(NodeId router) const;

  /// Applies a deterministic impairment (loss / duplication / reorder /
  /// blackhole windows) to both directions of link a-b. See
  /// net::ImpairmentPlane for the per-link RNG determinism contract.
  void impair_link(NodeId a, NodeId b, const net::Impairment& impairment);

  /// Lifts every impairment; the fabric is clean again.
  void clear_impairments() { net_->clear_impairments(); }

  /// Reseeds the impairment RNG streams (already-configured links get
  /// their stream re-derived from the start). Two sessions given the same
  /// seed, impairments, and workload replay identical fault sequences.
  void seed_impairments(std::uint64_t seed) {
    net_->impairments().reseed(seed);
  }

  /// Schedules every event of `plan` on the simulator, relative to now.
  /// The same plan + the same impairment seed reproduces a run exactly.
  void schedule_faults(const FaultPlan& plan);

  /// Live router state summed over every channel (equals the per-channel
  /// census for single-channel sessions).
  [[nodiscard]] StateCensus state_census() const;

  /// Live router state for one channel.
  [[nodiscard]] StateCensus state_census(ChannelId id) const;

  /// The receiver host agent (for tests needing raw deliveries).
  [[nodiscard]] mcast::ReceiverHost& receiver(NodeId host) const;

  /// The protocol source agent serving `id`'s channel (HbhSource /
  /// ReuniteSource / PimSource — cast by protocol). The node-level agent
  /// at the source host is the multi-channel composite; tests inspecting
  /// source tables must come through here.
  [[nodiscard]] net::ProtocolAgent& source_agent(ChannelId id = 0) const;

  /// Switches run-wide telemetry on: installs a fabric stats tap and a
  /// message trace on the network, binds protocol-state gauges (MFT/MCT
  /// entry counts — total and per router class — event-queue depth,
  /// membership, channel count, per-agent message and timer counters),
  /// and arms a StateSampler that snapshots every gauge every
  /// `sample_period` time units. Idempotent; telemetry stays off — and
  /// costs nothing on the packet path — unless this is called.
  metrics::Registry& enable_telemetry(Time sample_period = 10.0);

  /// Switches causal tracing on: installs a metrics::Tracer as the
  /// network's trace hook. Every subscribe/unsubscribe, tree round, data
  /// emission, and fault event then opens a root span; the context rides
  /// in packets hop by hop, so retransmissions, table mutations, drops,
  /// and deliveries become causally-parented child spans. Span ids are
  /// allocated in simulation-event order, so two identical runs produce
  /// identical traces. Idempotent; free on the packet path unless called
  /// (and fully compiled out under HBH_NO_TELEMETRY).
  metrics::Tracer& enable_tracing(std::size_t capacity = 1u << 20);

  /// Null until enable_tracing() is called.
  [[nodiscard]] metrics::Tracer* tracer() noexcept { return tracer_.get(); }
  [[nodiscard]] const metrics::Tracer* tracer() const noexcept {
    return tracer_.get();
  }

  /// Switches the forwarding-plane invariant auditor on: installs a
  /// metrics::Auditor as a persistent packet tap (observing every wire
  /// copy, drop, and delivery — compiled fast path included) and feeds it
  /// membership/emission/table notifications from the harness. Detection
  /// thresholds derive from this session's soft-state timers. `strict`
  /// makes the first violation throw. Idempotent; also auto-enabled by
  /// the HBH_AUDIT environment knob (docs/OBSERVABILITY.md). Free on the
  /// packet path unless called, and compiled out under HBH_NO_TELEMETRY.
  metrics::Auditor& enable_audit(bool strict = false);

  /// Null until enable_audit() is called (or HBH_AUDIT is set).
  [[nodiscard]] metrics::Auditor* auditor() noexcept { return auditor_.get(); }
  [[nodiscard]] const metrics::Auditor* auditor() const noexcept {
    return auditor_.get();
  }

  /// Sweeps every protocol router's soft-state tables through the auditor:
  /// per-entry t2 deadlines (leak detection), per-channel table shape
  /// (MCT/MFT exclusivity), and black-hole finalization at the current
  /// virtual time. Pure observation — schedules no events and mutates
  /// nothing, so event streams are identical whether or not it runs.
  /// No-op until enable_audit(). Call after a run settles (the report
  /// writer does) or at any instant a test wants the invariants checked.
  void audit_sweep();

  /// Null until enable_telemetry() is called.
  [[nodiscard]] metrics::Registry* registry() noexcept {
    return registry_.get();
  }
  [[nodiscard]] const metrics::StateSampler* sampler() const noexcept {
    return sampler_.get();
  }
  [[nodiscard]] const metrics::MessageTrace* trace() const noexcept {
    return trace_.get();
  }

  /// Sum of all agents' receive/timer counters (always available),
  /// including per-channel source sub-agents.
  [[nodiscard]] net::AgentStats aggregate_agent_stats() const;

  /// The compiled data-plane fast path; null when disabled (HBH_FASTPATH=0
  /// or SessionConfig::fastpath = false).
  [[nodiscard]] fastpath::CompiledForwarder* fastpath() noexcept {
    return fastpath_.get();
  }

  /// Flushes the fast path's batched "fastpath/compile" / "fastpath/forward"
  /// phase stats into the calling thread's installed PhaseProfiler. The
  /// harness calls this at the end of each profiled trial; a no-op when the
  /// fast path is off or no profiler is installed.
  void flush_fastpath_profile();

 private:
  friend class ChannelHandle;

  /// Data injector bound to a channel's source agent: (probe, seq, pad).
  using SendDataFn =
      std::function<std::size_t(std::uint64_t, std::uint32_t, std::uint32_t)>;

  /// State the session keeps per channel.
  struct ChannelState {
    net::Channel channel;
    NodeId source_host = kNoNode;
    NodeId rp = kNoNode;  ///< PIM-SM: the RP serving this channel
    SendDataFn send_data;
    std::uint32_t next_seq = 0;
    TrafficSpec traffic{};
  };

  /// A protocol source agent plus its bound data injector.
  struct SourceAgent {
    std::unique_ptr<net::ProtocolAgent> agent;
    SendDataFn send_data;
  };

  void install_agents(const SessionConfig& config);
  [[nodiscard]] bool is_unicast_only(NodeId n) const;
  /// A freshly constructed protocol router agent for this session's
  /// protocol (shared by install_agents and restart_router).
  [[nodiscard]] std::unique_ptr<net::ProtocolAgent> make_router_agent() const;
  /// A freshly constructed protocol source agent for `channel` (shared by
  /// the constructor's default channel and create_channel).
  [[nodiscard]] SourceAgent make_source_agent(
      const net::Channel& channel, NodeId rp,
      const mcast::McastConfig& timers) const;

  // Per-channel operations behind the ChannelHandle surface.
  void subscribe_on(ChannelId id, NodeId host, Time delay);
  void unsubscribe_on(ChannelId id, NodeId host, Time delay);
  [[nodiscard]] std::vector<NodeId> members_of(ChannelId id) const;
  Measurement measure_on(ChannelId id, Time drain);
  std::size_t inject_data_on(ChannelId id);
  void set_traffic_on(ChannelId id, const TrafficSpec& spec);
  [[nodiscard]] std::uint64_t structural_changes_of(ChannelId id) const;
  void schedule_churn(ChannelId id, const ChurnPlan& plan);

  /// Live (control, forwarding) entries `router` holds for `channel`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> router_channel_state(
      NodeId router, const net::Channel& channel) const;

  void set_link_state(NodeId a, NodeId b, bool up);
  void recompute_routes();

  topo::Scenario scenario_;
  Protocol protocol_;
  mcast::McastConfig timers_;
  std::vector<NodeId> unicast_only_;
  std::vector<NodeId> crashed_;
  /// Counters carried over from crashed agents so session-level totals
  /// (Figure 4 stability, telemetry gauges) stay monotone across crashes.
  std::uint64_t retired_structural_changes_ = 0;
  std::uint64_t retired_joins_intercepted_ = 0;
  std::unordered_map<net::Channel, std::uint64_t> retired_structural_by_channel_;
  sim::Simulator sim_;
  std::unique_ptr<routing::UnicastRouting> routes_;
  std::unique_ptr<net::Network> net_;
  /// Declared after net_ so it detaches from the network before the
  /// network dies (destruction is reverse declaration order).
  std::unique_ptr<fastpath::CompiledForwarder> fastpath_;
  /// Channels in creation order; id 0 is the default channel. A deque so
  /// channel() references stay stable across create_channel().
  std::deque<ChannelState> channels_;
  std::uint16_t next_group_ = 1;
  bool started_ = false;  ///< net_->start() has run (constructor end)
  /// The composite source agent per source host (owned by net_).
  std::unordered_map<NodeId, MultiSourceHost*> source_hosts_;
  std::unordered_map<NodeId, mcast::ReceiverHost*> receivers_;
  std::uint64_t next_probe_ = 1;
  std::unique_ptr<metrics::DataProbe> active_probe_;
  // Telemetry (all null while disabled). Declared after net_ so the taps
  // are destroyed first; ~Session detaches them from the network anyway.
  std::unique_ptr<metrics::Registry> registry_;
  std::unique_ptr<metrics::NetworkStatsTap> stats_tap_;
  std::unique_ptr<metrics::MessageTrace> trace_;
  std::unique_ptr<metrics::StateSampler> sampler_;
  std::unique_ptr<metrics::Tracer> tracer_;
  std::unique_ptr<metrics::Auditor> auditor_;

  /// Oracle SPT edge count for the drift check: the union of forward
  /// unicast shortest paths from `id`'s source host to each member.
  /// 0 when some member is unreachable (drift check skipped).
  [[nodiscard]] std::uint64_t oracle_tree_edges(
      ChannelId id, const std::vector<NodeId>& members) const;
};

}  // namespace hbh::harness
