#include "harness/session.hpp"

#include <cassert>
#include <set>

#include "harness/churn_plan.hpp"
#include "harness/multi_source.hpp"
#include "mcast/fastpath/compiled_forwarder.hpp"
#include "mcast/hbh/router.hpp"
#include "mcast/hbh/source.hpp"
#include "mcast/pim/router.hpp"
#include "mcast/pim/source.hpp"
#include "mcast/reunite/router.hpp"
#include "mcast/reunite/source.hpp"
#include "util/env.hpp"
#include "util/profiler.hpp"

namespace hbh::harness {

std::string_view to_string(Protocol p) {
  switch (p) {
    case Protocol::kHbh:
      return "HBH";
    case Protocol::kReunite:
      return "REUNITE";
    case Protocol::kPimSm:
      return "PIM-SM";
    case Protocol::kPimSs:
      return "PIM-SS";
  }
  return "?";
}

const std::vector<Protocol>& all_protocols() {
  static const std::vector<Protocol> kAll{Protocol::kPimSm, Protocol::kPimSs,
                                          Protocol::kReunite, Protocol::kHbh};
  return kAll;
}

// --- ChannelHandle: thin forwards into its Session -------------------------

const net::Channel& ChannelHandle::channel() const {
  return session_->channels_.at(id_).channel;
}

NodeId ChannelHandle::source_host() const {
  return session_->channels_.at(id_).source_host;
}

NodeId ChannelHandle::rp() const { return session_->channels_.at(id_).rp; }

void ChannelHandle::subscribe(NodeId host, Time delay) {
  session_->subscribe_on(id_, host, delay);
}

void ChannelHandle::unsubscribe(NodeId host, Time delay) {
  session_->unsubscribe_on(id_, host, delay);
}

std::vector<NodeId> ChannelHandle::members() const {
  return session_->members_of(id_);
}

Measurement ChannelHandle::measure(Time drain) {
  return session_->measure_on(id_, drain);
}

std::size_t ChannelHandle::inject_data() {
  return session_->inject_data_on(id_);
}

void ChannelHandle::set_traffic(const TrafficSpec& spec) {
  session_->set_traffic_on(id_, spec);
}

const TrafficSpec& ChannelHandle::traffic() const {
  return session_->channels_.at(id_).traffic;
}

std::uint64_t ChannelHandle::total_structural_changes() const {
  return session_->structural_changes_of(id_);
}

StateCensus ChannelHandle::state_census() const {
  return session_->state_census(id_);
}

void ChannelHandle::schedule_churn(const ChurnPlan& plan) {
  session_->schedule_churn(id_, plan);
}

// --- Session ---------------------------------------------------------------

Session::Session(topo::Scenario scenario, Protocol protocol,
                 SessionConfig config)
    : scenario_(std::move(scenario)),
      protocol_(protocol),
      timers_(config.timers),
      unicast_only_(config.unicast_only) {
  assert(scenario_.source_host.valid());
  routes_ = std::make_unique<routing::UnicastRouting>(scenario_.topo);
  net_ = std::make_unique<net::Network>(sim_, scenario_.topo, *routes_);
  install_agents(config);
  create_channel(scenario_.source_host);  // channel 0: the default channel
  net_->start();
  started_ = true;
  if (config.fastpath.value_or(env_fastpath())) {
    fastpath_ = std::make_unique<fastpath::CompiledForwarder>(*net_);
  }
  // HBH_AUDIT turns every session in the process into a self-checking
  // correctness probe (strict: the first violation throws).
  if (const std::string mode = env_audit(); !mode.empty()) {
    enable_audit(mode == "strict");
  }
}

Session::~Session() {
  net_->set_tap(nullptr);  // probe may outlive call frames, not the session
  net_->set_trace_hook(nullptr);
  if (sampler_) sampler_->stop();
  if (stats_tap_) net_->remove_tap(stats_tap_.get());
  if (trace_) net_->remove_tap(trace_.get());
  if (auditor_) net_->remove_tap(auditor_.get());
}

metrics::Auditor& Session::enable_audit(bool strict) {
  if (!auditor_) {
    metrics::AuditorConfig config;
    config.strict = strict;
    config.tree_period = timers_.tree_period;
    config.t1 = timers_.t1;
    config.t2 = timers_.t2;
    // Graft grace: staggered joins settle within a couple of periods; four
    // leaves margin for interception/fusion chains. Starvation threshold:
    // a copy older than t2 cannot still be in flight or queued anywhere.
    config.blackhole_grace = 4 * timers_.tree_period;
    config.blackhole_starvation = timers_.t2;
    config.leak_slack = 2 * timers_.tree_period;
    // REUNITE makes no at-most-once promise: its unicast-driven data plane
    // duplicates packets and re-crosses links during transients (§2.3).
    config.at_most_once = protocol_ != Protocol::kReunite;
    auditor_ = std::make_unique<metrics::Auditor>(config);
    net_->add_tap(auditor_.get());
  }
  return *auditor_;
}

net::AgentStats Session::aggregate_agent_stats() const {
  net::AgentStats total;
  const auto add = [&](const net::AgentStats& s) {
    for (std::size_t i = 0; i < net::kPacketTypeCount; ++i) {
      total.rx_by_type[i] += s.rx_by_type[i];
    }
    total.timer_fires += s.timer_fires;
  };
  for (const NodeId router : scenario_.routers) {
    add(net_->agent(router).stats());
  }
  for (const NodeId host : scenario_.hosts) {
    add(net_->agent(host).stats());
    // Source sub-agents are invisible to the Network's per-node counting;
    // their timer fires (tree rounds) accrue inside the composite.
    const auto it = source_hosts_.find(host);
    if (it != source_hosts_.end()) add(it->second->sub_stats());
  }
  return total;
}

metrics::Tracer& Session::enable_tracing(std::size_t capacity) {
  if (!tracer_) {
    tracer_ = std::make_unique<metrics::Tracer>(sim_, capacity);
    net_->set_trace_hook(tracer_.get());
  }
  return *tracer_;
}

metrics::Registry& Session::enable_telemetry(Time sample_period) {
  if (registry_) return *registry_;
  registry_ = std::make_unique<metrics::Registry>();
  metrics::Registry& reg = *registry_;

  // Fabric: per-type tx/byte counters + drop counts + size histogram, and
  // a bounded structured trace for the report's message summary. Both ride
  // the persistent multi-tap seam, so measure()'s exclusive probe slot
  // stays free.
  stats_tap_ = std::make_unique<metrics::NetworkStatsTap>(reg);
  trace_ = std::make_unique<metrics::MessageTrace>();
  net_->add_tap(stats_tap_.get());
  net_->add_tap(trace_.get());

  // Simulator health.
  reg.bind_gauge("sim.pending",
                 [this] { return static_cast<double>(sim_.pending()); });
  reg.bind_gauge("sim.peak_pending",
                 [this] { return static_cast<double>(sim_.peak_pending()); });
  reg.bind_gauge("sim.executed_events",
                 [this] { return static_cast<double>(sim_.executed()); });

  // Event-queue slot pool: allocated should plateau while pushes grow —
  // steady-state scheduling recycles slots instead of allocating.
  reg.bind_gauge("sim.queue_slots", [this] {
    return static_cast<double>(sim_.queue().slots_allocated());
  });
  reg.bind_gauge("sim.queue_slots_free", [this] {
    return static_cast<double>(sim_.queue().slots_free());
  });
  reg.bind_gauge("sim.queue_pushes", [this] {
    return static_cast<double>(sim_.queue().total_pushes());
  });

  // Compiled data-plane fast path (0 when HBH_FASTPATH=0): replayed hops,
  // lazy block/entry compiles, and invalidation notifications. Counts are
  // simulation-deterministic, so they are scrubbed from byte-identity
  // comparisons alongside the timing fields (docs/OBSERVABILITY.md).
  reg.bind_gauge("fastpath.hits", [this] {
    return static_cast<double>(fastpath_ ? fastpath_->stats().hits : 0);
  });
  reg.bind_gauge("fastpath.recompiles", [this] {
    return static_cast<double>(fastpath_ ? fastpath_->stats().recompiles : 0);
  });
  reg.bind_gauge("fastpath.invalidations", [this] {
    return static_cast<double>(fastpath_ ? fastpath_->stats().invalidations
                                         : 0);
  });

  // Unicast routing: how hard the lazy SPF cache is working (each
  // invalidate() bumps the epoch; each miss runs one Dijkstra).
  reg.bind_gauge("routing.spf_computations", [this] {
    return static_cast<double>(routes_->spf_computations());
  });
  reg.bind_gauge("routing.topology_epoch", [this] {
    return static_cast<double>(routes_->topology_epoch());
  });

  // Protocol state (the paper's §2.1 router-state story, over time).
  // Cross-channel sums: identical to the per-channel numbers for
  // single-channel sessions.
  reg.bind_gauge("state.control_entries", [this] {
    return static_cast<double>(state_census().control_entries);
  });
  reg.bind_gauge("state.forwarding_entries", [this] {
    return static_cast<double>(state_census().forwarding_entries);
  });
  reg.bind_gauge("state.stateful_routers", [this] {
    return static_cast<double>(state_census().routers_with_state);
  });
  reg.bind_gauge("state.structural_changes", [this] {
    return static_cast<double>(total_structural_changes());
  });
  reg.bind_gauge("session.members",
                 [this] { return static_cast<double>(members().size()); });
  reg.bind_gauge("session.channels",
                 [this] { return static_cast<double>(channels_.size()); });

  // Per-router-class aggregates (§3's state-placement claim, over time).
  struct ClassGauge {
    const char* name;
    ClassCensus AggregateCensus::* bucket;
  };
  static constexpr ClassGauge kClasses[] = {
      {"branching", &AggregateCensus::branching},
      {"non_branching", &AggregateCensus::non_branching},
      {"rp", &AggregateCensus::rp},
  };
  for (const auto& cls : kClasses) {
    const std::string prefix = std::string("state.") + cls.name;
    reg.bind_gauge(prefix + ".routers", [this, bucket = cls.bucket] {
      return static_cast<double>((aggregate_census().*bucket).routers);
    });
    reg.bind_gauge(prefix + ".control_entries", [this, bucket = cls.bucket] {
      return static_cast<double>((aggregate_census().*bucket).control_entries);
    });
    reg.bind_gauge(prefix + ".forwarding_entries", [this,
                                                    bucket = cls.bucket] {
      return static_cast<double>(
          (aggregate_census().*bucket).forwarding_entries);
    });
  }

  // Aggregated per-agent receive/timer counters.
  reg.bind_gauge("agents.timer_fires", [this] {
    return static_cast<double>(aggregate_agent_stats().timer_fires);
  });
  for (std::size_t i = 0; i < net::kPacketTypeCount; ++i) {
    const auto type = static_cast<net::PacketType>(i);
    reg.bind_gauge(std::string("agents.rx.") +
                       std::string(net::to_string(type)),
                   [this, i] {
                     return static_cast<double>(
                         aggregate_agent_stats().rx_by_type[i]);
                   });
  }

  if (protocol_ == Protocol::kHbh) {
    reg.bind_gauge("hbh.joins_intercepted", [this] {
      std::uint64_t total = retired_joins_intercepted_;
      for (const NodeId router : scenario_.routers) {
        if (is_unicast_only(router) || crashed(router)) continue;
        total += static_cast<const mcast::hbh::HbhRouter&>(net_->agent(router))
                     .joins_intercepted();
      }
      return static_cast<double>(total);
    });
  }

  sampler_ =
      std::make_unique<metrics::StateSampler>(sim_, reg, sample_period);
  sampler_->start();
  return reg;
}

bool Session::is_unicast_only(NodeId n) const {
  for (const NodeId u : unicast_only_) {
    if (u == n) return true;
  }
  return false;
}

std::unique_ptr<net::ProtocolAgent> Session::make_router_agent() const {
  switch (protocol_) {
    case Protocol::kHbh:
      return std::make_unique<mcast::hbh::HbhRouter>(timers_);
    case Protocol::kReunite:
      return std::make_unique<mcast::reunite::ReuniteRouter>(timers_);
    case Protocol::kPimSm:
    case Protocol::kPimSs:
      return std::make_unique<mcast::pim::PimRouter>(timers_);
  }
  return std::make_unique<net::ProtocolAgent>();
}

Session::SourceAgent Session::make_source_agent(
    const net::Channel& channel, NodeId rp,
    const mcast::McastConfig& timers) const {
  SourceAgent out;
  switch (protocol_) {
    case Protocol::kHbh: {
      auto source = std::make_unique<mcast::hbh::HbhSource>(channel, timers);
      auto* src = source.get();
      out.send_data = [src](std::uint64_t probe, std::uint32_t seq,
                            std::uint32_t pad) {
        return src->send_data(probe, seq, pad);
      };
      out.agent = std::move(source);
      break;
    }
    case Protocol::kReunite: {
      auto source =
          std::make_unique<mcast::reunite::ReuniteSource>(channel, timers);
      auto* src = source.get();
      out.send_data = [src](std::uint64_t probe, std::uint32_t seq,
                            std::uint32_t pad) {
        return src->send_data(probe, seq, pad);
      };
      out.agent = std::move(source);
      break;
    }
    case Protocol::kPimSs:
    case Protocol::kPimSm: {
      auto source = std::make_unique<mcast::pim::PimSource>(
          channel,
          protocol_ == Protocol::kPimSm ? mcast::pim::PimMode::kSharedTree
                                        : mcast::pim::PimMode::kSourceTree,
          rp.valid() ? net_->address_of(rp) : kNoAddr);
      auto* src = source.get();
      out.send_data = [src](std::uint64_t probe, std::uint32_t seq,
                            std::uint32_t pad) {
        return src->send_data(probe, seq, pad);
      };
      out.agent = std::move(source);
      break;
    }
  }
  return out;
}

void Session::install_agents(const SessionConfig& config) {
  const auto& timers = config.timers;

  // Receiver hosts (every host except the default channel's source).
  const mcast::JoinStyle style =
      (protocol_ == Protocol::kHbh || protocol_ == Protocol::kReunite)
          ? mcast::JoinStyle::kSourceJoin
          : mcast::JoinStyle::kPimJoin;
  for (const NodeId host : scenario_.hosts) {
    if (host == scenario_.source_host) continue;
    auto agent = std::make_unique<mcast::ReceiverHost>(style, timers);
    receivers_[host] =
        static_cast<mcast::ReceiverHost*>(&net_->attach(host, std::move(agent)));
  }

  // Routers. Unicast-only routers keep the default forwarding agent —
  // that is the paper's "unicast clouds" deployment story.
  for (const NodeId router : scenario_.routers) {
    if (is_unicast_only(router)) continue;
    net_->attach(router, make_router_agent());
  }
}

ChannelHandle Session::create_channel(NodeId source_host,
                                      std::optional<mcast::McastConfig> timers,
                                      const TrafficSpec& traffic) {
  assert(source_host.valid());
  ChannelState state;
  state.source_host = source_host;
  state.channel = net::Channel{net_->address_of(source_host),
                               GroupAddr::ssm(next_group_++)};
  if (protocol_ == Protocol::kPimSm) {
    state.rp = mcast::pim::choose_rp_delay_aware(*routes_, scenario_.routers,
                                                 source_host);
  }

  MultiSourceHost* composite = nullptr;
  const auto found = source_hosts_.find(source_host);
  if (found != source_hosts_.end()) {
    composite = found->second;
  } else {
    // The host stops being a receiver. It must not hold subscriptions —
    // a subscribed receiver cannot silently become a source.
    if (const auto it = receivers_.find(source_host); it != receivers_.end()) {
      assert(it->second->subscription_count() == 0);
      receivers_.erase(it);
    }
    auto owner = std::make_unique<MultiSourceHost>();
    composite = owner.get();
    net_->attach(source_host, std::move(owner));
    source_hosts_[source_host] = composite;
    if (started_) composite->start();
  }

  SourceAgent src =
      make_source_agent(state.channel, state.rp, timers.value_or(timers_));
  state.send_data = std::move(src.send_data);
  composite->add_source(state.channel, std::move(src.agent));
  channels_.push_back(std::move(state));
  const auto id = static_cast<ChannelId>(channels_.size() - 1);
  // Installed through set_traffic_on so the default (inactive) spec takes
  // the same zero-event path as legacy callers.
  if (traffic.active() || traffic.payload_bytes > 0) {
    set_traffic_on(id, traffic);
  }
  return ChannelHandle{this, id};
}

ChannelHandle Session::channel_handle(ChannelId id) {
  assert(id < channels_.size());
  return ChannelHandle{this, id};
}

void Session::subscribe_on(ChannelId id, NodeId host, Time delay) {
  const ChannelState& ch = channels_.at(id);
  auto* receiver = receivers_.at(host);
  const Ipv4Addr root = protocol_ == Protocol::kPimSm ? net_->address_of(ch.rp)
                                                      : ch.channel.source;
  if (delay <= 0) {
    receiver->subscribe(ch.channel, root);
    if (auditor_) auditor_->note_subscribe(ch.channel, host, sim_.now());
  } else {
    sim_.schedule(delay, [this, receiver, channel = ch.channel, root, host] {
      receiver->subscribe(channel, root);
      if (auditor_) auditor_->note_subscribe(channel, host, sim_.now());
    });
  }
}

void Session::unsubscribe_on(ChannelId id, NodeId host, Time delay) {
  const ChannelState& ch = channels_.at(id);
  auto* receiver = receivers_.at(host);
  if (delay <= 0) {
    receiver->unsubscribe(ch.channel);
    if (auditor_) auditor_->note_unsubscribe(ch.channel, host, sim_.now());
  } else {
    sim_.schedule(delay, [this, receiver, channel = ch.channel, host] {
      receiver->unsubscribe(channel);
      if (auditor_) auditor_->note_unsubscribe(channel, host, sim_.now());
    });
  }
}

std::vector<NodeId> Session::members_of(ChannelId id) const {
  const net::Channel& channel = channels_.at(id).channel;
  std::vector<NodeId> out;
  for (const NodeId host : scenario_.hosts) {  // stable order
    const auto it = receivers_.find(host);
    if (it != receivers_.end() && it->second->subscribed(channel)) {
      out.push_back(host);
    }
  }
  return out;
}

Measurement Session::measure_on(ChannelId id, Time drain) {
  ChannelState& ch = channels_.at(id);
  const std::vector<NodeId> expected = members_of(id);
  active_probe_ = std::make_unique<metrics::DataProbe>(next_probe_++);
  net_->set_tap(active_probe_.get());
  for (auto& [host, receiver] : receivers_) {
    receiver->set_sink(active_probe_.get());
  }

  const std::uint32_t seq = ch.next_seq++;
  if (auditor_) auditor_->note_emission(ch.channel, seq, sim_.now());
  const std::size_t sent = ch.send_data(active_probe_->probe_id(), seq,
                                        ch.traffic.payload_bytes);
  (void)sent;
  sim_.run_for(drain);

  Measurement m;
  m.tree_cost = active_probe_->link_copies();
  m.mean_delay = active_probe_->mean_delay(expected);
  m.max_link_copies = active_probe_->max_copies_on_a_link();
  m.missing = active_probe_->missing(expected);
  m.duplicated = active_probe_->duplicated();
  m.per_link = active_probe_->per_link();

  net_->set_tap(nullptr);
  for (auto& [host, receiver] : receivers_) receiver->set_sink(nullptr);

  // Tree-cost drift vs the oracle SPT (HBH's exact forward-SPT claim;
  // REUNITE/PIM legitimately deviate under asymmetric routing, so no
  // oracle is asserted for them). Only a clean, converged measurement is
  // comparable: every member reached exactly once, one copy per link, no
  // active faults steering copies off the unicast-optimal paths.
  if (auditor_ && protocol_ == Protocol::kHbh && !expected.empty() &&
      m.delivered_exactly_once() && m.max_link_copies == 1 &&
      crashed_.empty() && !net_->impairments().any_active()) {
    auditor_->note_tree_cost(ch.channel, m.tree_cost,
                             oracle_tree_edges(id, expected), true, sim_.now());
  }
  return m;
}

std::uint64_t Session::oracle_tree_edges(
    ChannelId id, const std::vector<NodeId>& members) const {
  const ChannelState& ch = channels_.at(id);
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (const NodeId member : members) {
    NodeId cur = ch.source_host;
    while (cur != member) {
      const NodeId next = routes_->next_hop(cur, member);
      if (!next.valid()) return 0;  // unreachable: no oracle, skip the check
      edges.emplace(cur.index(), next.index());
      cur = next;
    }
  }
  return edges.size();
}

void Session::audit_sweep() {
  if (!auditor_) return;
  const Time now = sim_.now();
  auditor_->begin_sweep(now);
  for (const ChannelState& ch : channels_) {
    for (const NodeId router : scenario_.routers) {
      if (is_unicast_only(router) || crashed(router)) continue;
      const net::ProtocolAgent& agent = net_->agent(router);
      switch (protocol_) {
        case Protocol::kHbh: {
          const auto* st = static_cast<const mcast::hbh::HbhRouter&>(agent)
                               .state(ch.channel);
          if (st == nullptr) break;
          const bool live_mct = st->mct && !st->mct->state.dead(now);
          const bool live_mft = st->mft && !st->mft->live_targets(now).empty();
          auditor_->sweep_tables(router, ch.channel, live_mct, live_mft);
          if (st->mct) {
            auditor_->sweep_entry(router, ch.channel, "mct",
                                  st->mct->state.t2_expiry());
          }
          if (st->mft) {
            for (const auto& [target, entry] : st->mft->raw()) {
              auditor_->sweep_entry(router, ch.channel, "mft",
                                    entry.t2_expiry());
            }
          }
          break;
        }
        case Protocol::kReunite: {
          const auto* st =
              static_cast<const mcast::reunite::ReuniteRouter&>(agent)
                  .state(ch.channel);
          if (st == nullptr) break;
          const bool live_mct = st->mct && !st->mct->state.dead(now);
          bool live_mft = false;
          if (st->mft) {
            live_mft = !st->mft->dst_state.dead(now);
            for (const auto& [target, entry] : st->mft->entries) {
              live_mft = live_mft || !entry.dead(now);
            }
          }
          auditor_->sweep_tables(router, ch.channel, live_mct, live_mft);
          if (st->mct) {
            auditor_->sweep_entry(router, ch.channel, "mct",
                                  st->mct->state.t2_expiry());
          }
          if (st->mft) {
            auditor_->sweep_entry(router, ch.channel, "mft",
                                  st->mft->dst_state.t2_expiry());
            for (const auto& [target, entry] : st->mft->entries) {
              auditor_->sweep_entry(router, ch.channel, "mft",
                                    entry.t2_expiry());
            }
          }
          break;
        }
        case Protocol::kPimSm:
        case Protocol::kPimSs: {
          const auto* oifs = static_cast<const mcast::pim::PimRouter&>(agent)
                                 .oif_entries(ch.channel);
          if (oifs == nullptr) break;
          for (const auto& [neighbor, entry] : *oifs) {
            auditor_->sweep_entry(router, ch.channel, "oif",
                                  entry.t2_expiry());
          }
          break;
        }
      }
    }
  }
  auditor_->end_sweep();
}

std::size_t Session::inject_data_on(ChannelId id) {
  ChannelState& ch = channels_.at(id);
  // probe id 0 = untagged: the packet is ordinary traffic, invisible to
  // any DataProbe a concurrent measure() installs.
  const std::uint32_t seq = ch.next_seq++;
  if (auditor_) auditor_->note_emission(ch.channel, seq, sim_.now());
  return ch.send_data(0, seq, ch.traffic.payload_bytes);
}

void Session::set_traffic_on(ChannelId id, const TrafficSpec& spec) {
  ChannelState& ch = channels_.at(id);
  ch.traffic = spec;
  MultiSourceHost* host = source_hosts_.at(ch.source_host);
  // The emission callback re-reads the ChannelState each firing, so a
  // later set_traffic (payload change) or seq progression is honored.
  host->set_traffic(ch.channel, spec, [this, id] {
    ChannelState& c = channels_.at(id);
    const std::uint32_t seq = c.next_seq++;
    if (auditor_) auditor_->note_emission(c.channel, seq, sim_.now());
    (void)c.send_data(0, seq, c.traffic.payload_bytes);
  });
}

void Session::schedule_churn(ChannelId id, const ChurnPlan& plan) {
  for (const ChurnEvent& ev : plan.events()) {
    if (ev.join) {
      subscribe_on(id, ev.host, ev.at);
    } else {
      unsubscribe_on(id, ev.host, ev.at);
    }
  }
}

void Session::recompute_routes() {
  // Instantaneous IGP reconvergence: bump the routing epoch so every SPF
  // recomputes lazily on its next query. Fault-heavy runs (FaultPlan,
  // ablation_resilience) thus pay per queried root, not O(N·Dijkstra) per
  // link-down/up/crash event. The Network keeps pointing at the same
  // UnicastRouting instance, so no rebind is needed.
  routes_->invalidate();
  // Topology/route epochs invalidate every compiled forwarding block.
  // Compiled blocks hold no route-derived data today (next_hop and link
  // state are consulted live), but the epoch bump keeps the invariant
  // "any control-plane shape change dirties the compiled plane" airtight.
  if (fastpath_) fastpath_->invalidate_all();
}

void Session::flush_fastpath_profile() {
  if (fastpath_) fastpath_->flush_profile();
}

void Session::set_link_cost(NodeId a, NodeId b, double cost) {
  const auto ab = scenario_.topo.find_link(a, b);
  const auto ba = scenario_.topo.find_link(b, a);
  assert(ab.has_value() && ba.has_value());
  // Cost/delay only: a capacitated link keeps its capacity across churn.
  scenario_.topo.set_cost_delay(*ab, cost, cost);
  scenario_.topo.set_cost_delay(*ba, cost, cost);
  recompute_routes();
}

void Session::set_link_state(NodeId a, NodeId b, bool up) {
  const auto ab = scenario_.topo.find_link(a, b);
  const auto ba = scenario_.topo.find_link(b, a);
  assert(ab.has_value() && ba.has_value());
  scenario_.topo.set_link_up(*ab, up);
  scenario_.topo.set_link_up(*ba, up);
  recompute_routes();
}

void Session::set_link_down(NodeId a, NodeId b) { set_link_state(a, b, false); }

void Session::set_link_up(NodeId a, NodeId b) { set_link_state(a, b, true); }

bool Session::crashed(NodeId router) const {
  for (const NodeId n : crashed_) {
    if (n == router) return true;
  }
  return false;
}

void Session::crash_router(NodeId router) {
  assert(!source_hosts_.contains(router));  // sources are not crashable
  assert(!is_unicast_only(router));         // nothing to crash
  if (crashed(router)) return;
  // Carry the dying agent's contribution into the session-level totals
  // before it is destroyed, so Figure-4-style counters stay monotone.
  const net::ProtocolAgent& agent = net_->agent(router);
  if (protocol_ == Protocol::kHbh) {
    const auto& hbh = static_cast<const mcast::hbh::HbhRouter&>(agent);
    retired_structural_changes_ += hbh.structural_changes();
    for (const auto& [ch, n] : hbh.structural_by_channel()) {
      retired_structural_by_channel_[ch] += n;
    }
    retired_joins_intercepted_ += hbh.joins_intercepted();
  } else if (protocol_ == Protocol::kReunite) {
    const auto& reunite =
        static_cast<const mcast::reunite::ReuniteRouter&>(agent);
    retired_structural_changes_ += reunite.structural_changes();
    for (const auto& [ch, n] : reunite.structural_by_channel()) {
      retired_structural_by_channel_[ch] += n;
    }
  }
  // The default agent keeps unicast forwarding alive: this models a
  // control-plane (protocol process) crash, not a powered-off node.
  net_->attach(router, std::make_unique<net::ProtocolAgent>());
  crashed_.push_back(router);
}

void Session::restart_router(NodeId router) {
  for (auto it = crashed_.begin(); it != crashed_.end(); ++it) {
    if (*it != router) continue;
    crashed_.erase(it);
    net::ProtocolAgent& agent = net_->attach(router, make_router_agent());
    agent.start();  // fresh tables; soft state repopulates them
    return;
  }
}

void Session::impair_link(NodeId a, NodeId b,
                          const net::Impairment& impairment) {
  net_->set_duplex_impairment(a, b, impairment);
}

namespace {

std::string_view fault_span_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kLinkDown: return "fault:link-down";
    case FaultEvent::Kind::kLinkUp: return "fault:link-up";
    case FaultEvent::Kind::kImpair: return "fault:impair";
    case FaultEvent::Kind::kClearImpairments: return "fault:clear-impairments";
    case FaultEvent::Kind::kCrash: return "fault:crash";
    case FaultEvent::Kind::kRestart: return "fault:restart";
  }
  return "fault";
}

}  // namespace

void Session::schedule_faults(const FaultPlan& plan) {
  for (const FaultEvent& ev : plan.events()) {
    sim_.schedule(ev.after, [this, ev] {
      HBH_PHASE("fault");
      // Externally-injected faults are causal roots too: the span itself
      // has no packet to ride, but it anchors the event on the timeline
      // next to the protocol reactions it provokes.
      if (net::TraceHook* hook = net_->trace_hook(); hook != nullptr) {
        hook->root(fault_span_name(ev.kind), ev.a, net::Channel{}, kNoAddr);
      }
      switch (ev.kind) {
        case FaultEvent::Kind::kLinkDown:
          set_link_down(ev.a, ev.b);
          break;
        case FaultEvent::Kind::kLinkUp:
          set_link_up(ev.a, ev.b);
          break;
        case FaultEvent::Kind::kImpair:
          impair_link(ev.a, ev.b, ev.impairment);
          break;
        case FaultEvent::Kind::kClearImpairments:
          clear_impairments();
          break;
        case FaultEvent::Kind::kCrash:
          crash_router(ev.a);
          break;
        case FaultEvent::Kind::kRestart:
          restart_router(ev.a);
          break;
      }
    });
  }
}

std::uint64_t Session::total_structural_changes() const {
  std::uint64_t total = retired_structural_changes_;
  for (const NodeId router : scenario_.routers) {
    if (is_unicast_only(router) || crashed(router)) continue;
    const net::ProtocolAgent& agent = net_->agent(router);
    if (protocol_ == Protocol::kHbh) {
      total += static_cast<const mcast::hbh::HbhRouter&>(agent)
                   .structural_changes();
    } else if (protocol_ == Protocol::kReunite) {
      total += static_cast<const mcast::reunite::ReuniteRouter&>(agent)
                   .structural_changes();
    }
  }
  return total;
}

std::uint64_t Session::structural_changes_of(ChannelId id) const {
  const net::Channel& channel = channels_.at(id).channel;
  std::uint64_t total = 0;
  if (const auto it = retired_structural_by_channel_.find(channel);
      it != retired_structural_by_channel_.end()) {
    total = it->second;
  }
  for (const NodeId router : scenario_.routers) {
    if (is_unicast_only(router) || crashed(router)) continue;
    const net::ProtocolAgent& agent = net_->agent(router);
    if (protocol_ == Protocol::kHbh) {
      total += static_cast<const mcast::hbh::HbhRouter&>(agent)
                   .structural_changes(channel);
    } else if (protocol_ == Protocol::kReunite) {
      total += static_cast<const mcast::reunite::ReuniteRouter&>(agent)
                   .structural_changes(channel);
    }
  }
  return total;
}

mcast::ReceiverHost& Session::receiver(NodeId host) const {
  return *receivers_.at(host);
}

net::ProtocolAgent& Session::source_agent(ChannelId id) const {
  const ChannelState& ch = channels_.at(id);
  net::ProtocolAgent* agent =
      source_hosts_.at(ch.source_host)->agent_for(ch.channel);
  assert(agent != nullptr);
  return *agent;
}

std::pair<std::size_t, std::size_t> Session::router_channel_state(
    NodeId router, const net::Channel& channel) const {
  // Time-aware: routers purge lazily (on the next message for the
  // channel), so a census that counted raw table rows would report state
  // that is already dead by its own timestamps — forever, once traffic
  // stops. Count only entries that are still alive at `now`.
  const Time now = sim_.now();
  const net::ProtocolAgent& agent = net_->agent(router);
  std::size_t control = 0;
  std::size_t forwarding = 0;
  switch (protocol_) {
    case Protocol::kHbh: {
      const auto* st =
          static_cast<const mcast::hbh::HbhRouter&>(agent).state(channel);
      if (st != nullptr) {
        if (st->mct && !st->mct->state.dead(now)) control = 1;
        if (st->mft) forwarding = st->mft->live_targets(now).size();
      }
      break;
    }
    case Protocol::kReunite: {
      const auto* st = static_cast<const mcast::reunite::ReuniteRouter&>(agent)
                           .state(channel);
      if (st != nullptr) {
        if (st->mct && !st->mct->state.dead(now)) control = 1;
        if (st->mft) {
          if (!st->mft->dst_state.dead(now)) forwarding += 1;
          for (const auto& [target, entry] : st->mft->entries) {
            if (!entry.dead(now)) ++forwarding;
          }
        }
      }
      break;
    }
    case Protocol::kPimSm:
    case Protocol::kPimSs:
      forwarding =
          static_cast<const mcast::pim::PimRouter&>(agent).oifs(channel).size();
      break;
  }
  return {control, forwarding};
}

StateCensus Session::state_census(ChannelId id) const {
  const net::Channel& channel = channels_.at(id).channel;
  StateCensus census;
  for (const NodeId router : scenario_.routers) {
    if (is_unicast_only(router) || crashed(router)) continue;
    const auto [control, forwarding] = router_channel_state(router, channel);
    census.control_entries += control;
    census.forwarding_entries += forwarding;
    if (control + forwarding > 0) ++census.routers_with_state;
  }
  return census;
}

StateCensus Session::state_census() const {
  StateCensus census;
  for (const NodeId router : scenario_.routers) {
    if (is_unicast_only(router) || crashed(router)) continue;
    std::size_t control = 0;
    std::size_t forwarding = 0;
    for (const ChannelState& ch : channels_) {
      const auto [c, f] = router_channel_state(router, ch.channel);
      control += c;
      forwarding += f;
    }
    census.control_entries += control;
    census.forwarding_entries += forwarding;
    if (control + forwarding > 0) ++census.routers_with_state;
  }
  return census;
}

RouterClass Session::router_class(NodeId router, ChannelId id) const {
  if (is_unicast_only(router) || crashed(router)) return RouterClass::kNone;
  const ChannelState& ch = channels_.at(id);
  const auto [control, forwarding] = router_channel_state(router, ch.channel);
  if (control + forwarding == 0) return RouterClass::kNone;
  // Same classification rules as aggregate_census (kept in sync).
  if (protocol_ == Protocol::kPimSm && router == ch.rp) return RouterClass::kRp;
  if (protocol_ == Protocol::kPimSm || protocol_ == Protocol::kPimSs) {
    return forwarding >= 2 ? RouterClass::kBranching
                           : RouterClass::kNonBranching;
  }
  return forwarding > 0 ? RouterClass::kBranching : RouterClass::kNonBranching;
}

void Session::apply_backbone_capacity(double capacity, std::size_t queue_limit,
                                      net::AqmPolicy aqm) {
  topo::apply_backbone_capacity(scenario_.topo, capacity, queue_limit, aqm);
  // Forwarding decisions do not depend on capacity (transmit reads the
  // edge live) and costs are untouched, so no route recompute is needed;
  // the epoch bump keeps the compiled-plane invariant airtight anyway.
  if (fastpath_) fastpath_->invalidate_all();
}

AggregateCensus Session::aggregate_census() const {
  AggregateCensus out;
  for (const NodeId router : scenario_.routers) {
    if (is_unicast_only(router) || crashed(router)) continue;
    std::size_t router_total = 0;
    for (const ChannelState& ch : channels_) {
      const auto [control, forwarding] =
          router_channel_state(router, ch.channel);
      if (control + forwarding == 0) continue;
      router_total += control + forwarding;
      out.totals.control_entries += control;
      out.totals.forwarding_entries += forwarding;

      // Classify this (router, channel) incidence. For HBH/REUNITE, any
      // live MFT makes the router an addressed replication point for the
      // channel — branching (see docs/CHANNELS.md on HBH's relay MFTs).
      // PIM needs >=2 oifs to replicate; one oif is a plain on-tree
      // transit router, which still pays forwarding state. The PIM-SM RP
      // is its own class regardless of fan-out.
      ClassCensus* bucket = nullptr;
      if (protocol_ == Protocol::kPimSm && router == ch.rp) {
        bucket = &out.rp;
      } else if (protocol_ == Protocol::kPimSm ||
                 protocol_ == Protocol::kPimSs) {
        bucket = forwarding >= 2 ? &out.branching : &out.non_branching;
      } else {
        bucket = forwarding > 0 ? &out.branching : &out.non_branching;
      }
      ++bucket->routers;
      bucket->control_entries += control;
      bucket->forwarding_entries += forwarding;
    }
    if (router_total > 0) ++out.totals.routers_with_state;
  }
  return out;
}

}  // namespace hbh::harness
