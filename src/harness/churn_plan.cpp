#include "harness/churn_plan.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace hbh::harness {

ChurnPlan& ChurnPlan::join(Time at, NodeId host) {
  events_.push_back(ChurnEvent{at, host, true});
  return *this;
}

ChurnPlan& ChurnPlan::leave(Time at, NodeId host) {
  events_.push_back(ChurnEvent{at, host, false});
  return *this;
}

ChurnPlan ChurnPlan::exponential_on_off(const std::vector<NodeId>& receivers,
                                        const ChurnConfig& config,
                                        std::uint64_t seed) {
  assert(config.mean_on > 0 && config.mean_off > 0);
  ChurnPlan plan;
  // Tag each event with its receiver's position so the final ordering is
  // total and independent of NodeId values (stable tie-break at equal t).
  struct Tagged {
    ChurnEvent event;
    std::size_t receiver;
  };
  std::vector<Tagged> tagged;
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    // One independent stream per receiver, derived in the cell_seed mixing
    // idiom: adding or reordering other receivers never perturbs this one.
    std::uint64_t mix = seed ^ (0x100000001B3ull * (i + 1));
    Rng rng{splitmix64(mix)};
    bool joined = rng.chance(config.p_start_joined);
    if (joined) tagged.push_back({ChurnEvent{0, receivers[i], true}, i});
    Time t = 0;
    for (;;) {
      t += rng.exponential(joined ? config.mean_on : config.mean_off);
      if (t >= config.horizon) break;
      joined = !joined;
      tagged.push_back({ChurnEvent{t, receivers[i], joined}, i});
    }
  }
  std::sort(tagged.begin(), tagged.end(), [](const Tagged& a, const Tagged& b) {
    if (a.event.at != b.event.at) return a.event.at < b.event.at;
    return a.receiver < b.receiver;
  });
  plan.events_.reserve(tagged.size());
  for (const Tagged& t : tagged) plan.events_.push_back(t.event);
  return plan;
}

}  // namespace hbh::harness
