// A composite source-host agent: one host node sourcing many ⟨S,G⟩
// channels (the EXPRESS channel model the paper builds on — a source
// address can anchor any number of groups).
//
// The Network allows one ProtocolAgent per node, and each protocol's
// source agent (HbhSource / ReuniteSource / PimSource) is single-channel
// by design. This composite bridges the two: it owns one source sub-agent
// per channel, gives each its node identity via Network::adopt, and
// dispatches arriving packets by the packet's channel field. Packets for
// channels this host does not source fall through to the base agent —
// plain unicast forwarding, exactly what a single source agent does with
// a foreign channel — so a one-channel composite is event-for-event
// identical to attaching that source agent directly.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "harness/session.hpp"
#include "net/channel.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace hbh::harness {

class MultiSourceHost : public net::ProtocolAgent {
 public:
  /// Installs the source sub-agent for `channel` and binds it to this
  /// host's node (the composite must already be attached to the network).
  /// If the simulation already started, the sub-agent is started here.
  net::ProtocolAgent& add_source(const net::Channel& channel,
                                 std::unique_ptr<net::ProtocolAgent> source);

  void start() override;
  void handle(net::Packet&& packet, NodeId from) override;

  [[nodiscard]] std::size_t source_count() const noexcept {
    return subs_.size();
  }

  /// The source sub-agent serving `channel` (nullptr if none).
  [[nodiscard]] net::ProtocolAgent* agent_for(const net::Channel& channel);
  [[nodiscard]] const net::ProtocolAgent* agent_for(
      const net::Channel& channel) const;

  /// Sum of the sub-agents' telemetry counters. Receives are counted on
  /// the composite by the Network; timer fires accrue in the sub-agents.
  [[nodiscard]] net::AgentStats sub_stats() const;

  /// (Re)configures autonomous data emission for `channel`: `emit` fires
  /// every spec.interval() from spec.start until spec.stop (TrafficSpec
  /// semantics). Replaces any previous spec for the channel; a rate-0 spec
  /// just cancels. Armed immediately if the simulation started, else at
  /// start(). Each firing counts as one composite timer fire.
  void set_traffic(const net::Channel& channel, const TrafficSpec& spec,
                   std::function<void()> emit);

  /// The active traffic spec for `channel` (default spec if none).
  [[nodiscard]] const TrafficSpec& traffic(const net::Channel& channel) const;

 private:
  struct Sub {
    net::Channel channel;
    std::unique_ptr<net::ProtocolAgent> agent;
  };
  struct Traffic {
    net::Channel channel;
    TrafficSpec spec;
    std::function<void()> emit;
    std::unique_ptr<sim::PeriodicTimer> timer;
  };

  void arm_traffic(Traffic& t);
  void fire_traffic(Traffic& t);

  std::vector<Sub> subs_;
  std::vector<std::unique_ptr<Traffic>> traffic_;  ///< stable across growth
  bool started_ = false;
};

}  // namespace hbh::harness
