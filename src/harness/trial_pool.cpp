#include "harness/trial_pool.hpp"

#include "util/env.hpp"

namespace hbh::harness {

std::size_t TrialPool::resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const std::size_t env = env_jobs();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

TrialPool::TrialPool(std::size_t jobs) : jobs_(resolve_jobs(jobs)) {
  workers_.reserve(jobs_ - 1);
  for (std::size_t w = 0; w + 1 < jobs_; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TrialPool::~TrialPool() {
  {
    std::scoped_lock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void TrialPool::run(std::size_t count, const Task& task) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // The serial path: no threads, no synchronization — byte-for-byte the
    // behavior of the pre-parallel harness.
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->task = &task;
  batch->count = count;
  {
    std::scoped_lock lock(mu_);
    batch_ = batch;
    ++batch_seq_;
  }
  work_cv_.notify_all();
  drain(*batch);  // the calling thread is the pool's J-th worker
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] { return batch->completed == batch->count; });
  batch_.reset();
  if (batch->error) std::rethrow_exception(batch->error);
}

void TrialPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || batch_seq_ != seen; });
    if (shutdown_) return;
    seen = batch_seq_;
    // Hold a reference to *this* batch: if the batch finishes (and run()
    // returns) before this worker even wakes, its cursor is spent and
    // drain() claims nothing — a newer batch is untouchable from here.
    const std::shared_ptr<Batch> batch = batch_;
    lock.unlock();
    if (batch) drain(*batch);
    lock.lock();
  }
}

void TrialPool::drain(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return;
    try {
      (*batch.task)(i);
    } catch (...) {
      std::scoped_lock lock(mu_);
      if (!batch.error) batch.error = std::current_exception();
    }
    std::scoped_lock lock(mu_);
    if (++batch.completed == batch.count) done_cv_.notify_all();
  }
}

}  // namespace hbh::harness
