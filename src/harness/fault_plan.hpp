// A FaultPlan is a deterministic, time-ordered script of fault events —
// link failures and repairs, impairment windows, router crashes and
// restarts — that a Session schedules onto its simulator in one call.
// Because the simulator is single-threaded and impairment randomness
// comes from per-link seeded streams (net::ImpairmentPlane), replaying
// the same plan against the same seed reproduces the run event-for-event
// (docs/RESILIENCE.md).
#pragma once

#include <vector>

#include "net/impairment.hpp"
#include "util/ids.hpp"

namespace hbh::harness {

/// One scripted fault. `after` is a delay relative to the moment the plan
/// is handed to Session::schedule_faults() — plans compose with an
/// already-running session.
struct FaultEvent {
  enum class Kind {
    kLinkDown,          ///< IGP-visible: routes recompute around a-b
    kLinkUp,            ///< repair + route recomputation
    kImpair,            ///< set duplex impairment on a-b (loss/dup/reorder)
    kClearImpairments,  ///< lift every impairment on the fabric
    kCrash,             ///< wipe router a's protocol state (control-plane crash)
    kRestart,           ///< reinstall a fresh protocol agent on router a
  };

  Time after = 0;
  Kind kind = Kind::kLinkDown;
  NodeId a{};  ///< link endpoint / router
  NodeId b{};  ///< second link endpoint (link events only)
  net::Impairment impairment{};  ///< kImpair only
};

/// Fluent builder for fault scripts:
///
///   FaultPlan plan;
///   plan.impair(10, n2, n5, {.loss = 0.05})
///       .crash(40, n3)
///       .restart(70, n3)
///       .clear_impairments(100);
///   session.schedule_faults(plan);
class FaultPlan {
 public:
  FaultPlan& link_down(Time after, NodeId a, NodeId b);
  FaultPlan& link_up(Time after, NodeId a, NodeId b);
  FaultPlan& impair(Time after, NodeId a, NodeId b,
                    const net::Impairment& impairment);
  FaultPlan& clear_impairments(Time after);
  FaultPlan& crash(Time after, NodeId router);
  FaultPlan& restart(Time after, NodeId router);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace hbh::harness
