// A ChurnPlan is a deterministic, time-ordered script of membership
// events — receiver joins and leaves — that a channel schedules onto its
// session's simulator in one call (the membership analogue of FaultPlan).
//
// The generator models each receiver as an independent exponential on/off
// process: subscribed dwell times ~ Exp(mean_on), unsubscribed dwell
// times ~ Exp(mean_off). All events are pregenerated from the plan seed
// (one derived RNG stream per receiver, in the caller's receiver order),
// so the plan is a pure function of (seed, receivers, config): replaying
// it under any HBH_JOBS worker count reproduces the run event-for-event —
// the same paired-trial determinism contract the experiment driver uses
// (docs/PERFORMANCE.md, docs/CHANNELS.md).
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"

namespace hbh::harness {

/// One scripted membership event. `at` is a delay relative to the moment
/// the plan is handed to ChannelHandle::schedule_churn() — plans compose
/// with an already-running session.
struct ChurnEvent {
  Time at = 0;
  NodeId host{};
  bool join = true;  ///< false: unsubscribe
};

/// Parameters of the exponential on/off membership process.
struct ChurnConfig {
  double mean_on = 120;   ///< mean subscribed dwell time (time units)
  double mean_off = 60;   ///< mean unsubscribed dwell time
  Time horizon = 400;     ///< generate events in [0, horizon)
  double p_start_joined = 0.5;  ///< probability a receiver starts joined
};

/// Fluent builder + seeded generator for membership scripts:
///
///   auto plan = ChurnPlan::exponential_on_off(receivers, {.horizon = 400},
///                                             seed);
///   channel.schedule_churn(plan);          // or build by hand:
///   ChurnPlan manual;
///   manual.join(5, r1).leave(80, r1).join(120, r2);
class ChurnPlan {
 public:
  ChurnPlan& join(Time at, NodeId host);
  ChurnPlan& leave(Time at, NodeId host);

  /// Generates per-receiver on/off processes from `seed`. Events come out
  /// sorted by (time, receiver order); receivers that start joined get a
  /// join at t=0. Deterministic: same (receivers, config, seed) → same
  /// plan, and receiver i's stream never perturbs receiver j's.
  [[nodiscard]] static ChurnPlan exponential_on_off(
      const std::vector<NodeId>& receivers, const ChurnConfig& config,
      std::uint64_t seed);

  [[nodiscard]] const std::vector<ChurnEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

 private:
  std::vector<ChurnEvent> events_;
};

}  // namespace hbh::harness
