#include "harness/fault_plan.hpp"

namespace hbh::harness {

FaultPlan& FaultPlan::link_down(Time after, NodeId a, NodeId b) {
  events_.push_back({after, FaultEvent::Kind::kLinkDown, a, b, {}});
  return *this;
}

FaultPlan& FaultPlan::link_up(Time after, NodeId a, NodeId b) {
  events_.push_back({after, FaultEvent::Kind::kLinkUp, a, b, {}});
  return *this;
}

FaultPlan& FaultPlan::impair(Time after, NodeId a, NodeId b,
                             const net::Impairment& impairment) {
  events_.push_back({after, FaultEvent::Kind::kImpair, a, b, impairment});
  return *this;
}

FaultPlan& FaultPlan::clear_impairments(Time after) {
  events_.push_back(
      {after, FaultEvent::Kind::kClearImpairments, NodeId{}, NodeId{}, {}});
  return *this;
}

FaultPlan& FaultPlan::crash(Time after, NodeId router) {
  events_.push_back({after, FaultEvent::Kind::kCrash, router, NodeId{}, {}});
  return *this;
}

FaultPlan& FaultPlan::restart(Time after, NodeId router) {
  events_.push_back({after, FaultEvent::Kind::kRestart, router, NodeId{}, {}});
  return *this;
}

}  // namespace hbh::harness
