// Directed network topology with independent per-direction link attributes.
//
// The paper's central observation is that unicast routing is *asymmetric*:
// c(n1,n2) and c(n2,n1) are drawn independently (integers in [1,10], §4.1).
// We therefore model every link as a pair of directed edges, each with its
// own cost (used by unicast routing) and propagation delay (used by the
// simulator; the reproduction sets delay = cost, see DESIGN.md §2).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace hbh::net {

enum class NodeKind : std::uint8_t {
  kRouter,  ///< forwards packets; may be multicast-capable
  kHost,    ///< end system: source or receiver, degree-1 in our topologies
};

struct LinkAttrs {
  double cost = 1.0;  ///< unicast routing metric
  Time delay = 1.0;   ///< propagation delay in time units
};

class Topology {
 public:
  struct Edge {
    NodeId from;
    NodeId to;
    LinkAttrs attrs;
    bool up = true;  ///< a down edge forwards nothing and carries no routes
  };

  /// Adds a node of the given kind; returns its id (dense, starting at 0).
  NodeId add_node(NodeKind kind = NodeKind::kRouter);

  /// Adds a directed edge. Requires both endpoints to exist, from != to,
  /// and no existing edge from->to.
  LinkId add_link(NodeId from, NodeId to, LinkAttrs attrs);

  /// Adds the two directed edges of a duplex link, with per-direction
  /// attributes (the common case in this reproduction).
  void add_duplex(NodeId a, NodeId b, LinkAttrs ab, LinkAttrs ba);

  /// Symmetric convenience: same attributes in both directions.
  void add_duplex(NodeId a, NodeId b, LinkAttrs both) {
    add_duplex(a, b, both, both);
  }

  /// Replaces the attributes of an existing edge.
  void set_attrs(LinkId link, LinkAttrs attrs);

  /// Administratively raises/lowers an existing edge. Down edges stay in
  /// the edge list (find_link still returns them) but are skipped by route
  /// computation and refuse transmission — a hard failure, unlike a cost
  /// inflation which Dijkstra can still traverse.
  void set_link_up(LinkId link, bool up);
  [[nodiscard]] bool link_up(LinkId link) const { return edge(link).up; }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return kinds_.size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] NodeKind kind(NodeId n) const;
  [[nodiscard]] const Edge& edge(LinkId l) const;

  /// Outgoing edges of `n`.
  [[nodiscard]] std::span<const LinkId> out_links(NodeId n) const;

  /// The edge from->to, if present.
  [[nodiscard]] std::optional<LinkId> find_link(NodeId from, NodeId to) const;

  /// All node ids of a given kind, ascending.
  [[nodiscard]] std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

  /// Out-degree of `n`.
  [[nodiscard]] std::size_t degree(NodeId n) const {
    return out_links(n).size();
  }

  /// Mean out-degree over routers only (hosts excluded), the statistic the
  /// paper quotes (3.3 for the ISP topology, 8.6 for the random one).
  [[nodiscard]] double average_router_degree(bool count_host_links = false) const;

  /// True if every node can reach every other following directed edges.
  [[nodiscard]] bool strongly_connected() const;

  /// Validity check for ids coming from external input.
  [[nodiscard]] bool contains(NodeId n) const noexcept {
    return n.valid() && n.index() < kinds_.size();
  }

 private:
  std::vector<NodeKind> kinds_;
  std::vector<Edge> edges_;
  std::vector<std::vector<LinkId>> out_;
};

}  // namespace hbh::net
