// Directed network topology with independent per-direction link attributes.
//
// The paper's central observation is that unicast routing is *asymmetric*:
// c(n1,n2) and c(n2,n1) are drawn independently (integers in [1,10], §4.1).
// We therefore model every link as a pair of directed edges, each with its
// own cost (used by unicast routing) and propagation delay (used by the
// simulator; the reproduction sets delay = cost, see DESIGN.md §2).
//
// Links are described by LinkSpec — a named, extensible aggregate covering
// the routing metric, propagation delay, and the congestion model (capacity
// plus a bounded egress queue, DESIGN.md "Link and queue model"). The
// legacy positional LinkAttrs{cost, delay} remains as a thin shim that
// converts to an uncapacitated LinkSpec, byte-identical to the old model.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.hpp"

namespace hbh::net {

enum class NodeKind : std::uint8_t {
  kRouter,  ///< forwards packets; may be multicast-capable
  kHost,    ///< end system: source or receiver, degree-1 in our topologies
};

/// Active queue management policy of a capacitated egress queue.
enum class AqmPolicy : std::uint8_t {
  kDropTail,  ///< drop arrivals once the queue is full (default)
  kRed,       ///< Random Early Detection on the averaged occupancy
};

/// Parses "droptail" / "red" (as accepted by HBH_AQM); nullopt otherwise.
[[nodiscard]] std::optional<AqmPolicy> aqm_from_string(std::string_view s);
[[nodiscard]] std::string_view to_string(AqmPolicy aqm);

/// Egress queue limit (packets) a capacitated link gets unless overridden.
inline constexpr std::size_t kDefaultQueueLimit = 64;

/// Full description of one directed edge. An aggregate: construct with
/// designated initializers (`LinkSpec{.cost = 3, .capacity = 1200}`) or via
/// the fluent with_* copies when starting from an existing spec.
struct LinkSpec {
  double cost = 1.0;   ///< unicast routing metric
  Time delay = 1.0;    ///< propagation delay in time units
  /// Transmission capacity in bytes per time unit. 0 (the default) means
  /// an infinite-bandwidth link: no serialization time, no queue, and the
  /// transmit path takes exactly one extra predicted-false branch — the
  /// byte-identity guarantee for every pre-congestion experiment.
  double capacity = 0.0;
  std::size_t queue_limit = kDefaultQueueLimit;  ///< egress queue, packets
  AqmPolicy aqm = AqmPolicy::kDropTail;

  [[nodiscard]] bool capacitated() const noexcept { return capacity > 0; }

  /// Serialization time of `bytes` on this link (requires capacitated()).
  [[nodiscard]] Time serialization_time(std::size_t bytes) const noexcept {
    return static_cast<Time>(static_cast<double>(bytes) / capacity);
  }

  // Fluent copies, for deriving a spec from an existing one.
  [[nodiscard]] LinkSpec with_cost(double c) const {
    LinkSpec s = *this;
    s.cost = c;
    return s;
  }
  [[nodiscard]] LinkSpec with_delay(Time d) const {
    LinkSpec s = *this;
    s.delay = d;
    return s;
  }
  [[nodiscard]] LinkSpec with_capacity(double bytes_per_tu) const {
    LinkSpec s = *this;
    s.capacity = bytes_per_tu;
    return s;
  }
  [[nodiscard]] LinkSpec with_queue(std::size_t limit, AqmPolicy policy) const {
    LinkSpec s = *this;
    s.queue_limit = limit;
    s.aqm = policy;
    return s;
  }
};

/// Deprecated positional link description, kept as a migration shim: every
/// legacy `LinkAttrs{cost, delay}` call site converts implicitly to an
/// uncapacitated LinkSpec with identical behavior. New code should use
/// LinkSpec directly.
struct LinkAttrs {
  double cost = 1.0;  ///< unicast routing metric
  Time delay = 1.0;   ///< propagation delay in time units

  // NOLINTNEXTLINE(google-explicit-constructor): the shim's whole purpose
  operator LinkSpec() const {
    return LinkSpec{.cost = cost, .delay = delay};
  }
};

class Topology {
 public:
  struct Edge {
    NodeId from;
    NodeId to;
    LinkSpec attrs;  ///< historical name; full LinkSpec since the redesign
    bool up = true;  ///< a down edge forwards nothing and carries no routes
  };

  /// Adds a node of the given kind; returns its id (dense, starting at 0).
  NodeId add_node(NodeKind kind = NodeKind::kRouter);

  /// Adds a directed edge. Requires both endpoints to exist, from != to,
  /// and no existing edge from->to.
  LinkId add_link(NodeId from, NodeId to, LinkSpec spec);

  /// Adds the two directed edges of a duplex link, with per-direction
  /// specs (the common case in this reproduction).
  void add_duplex(NodeId a, NodeId b, LinkSpec ab, LinkSpec ba);

  /// Symmetric convenience: same spec in both directions.
  void add_duplex(NodeId a, NodeId b, LinkSpec both) {
    add_duplex(a, b, both, both);
  }

  /// Replaces the full spec of an existing edge.
  void set_spec(LinkId link, LinkSpec spec);

  /// Deprecated alias for set_spec (legacy name; LinkAttrs arguments
  /// convert and reset the congestion fields to uncapacitated defaults).
  void set_attrs(LinkId link, LinkSpec spec) { set_spec(link, spec); }

  /// Updates only cost and delay, preserving the edge's congestion fields
  /// (capacity, queue limit, AQM). Cost randomization and link-cost churn
  /// use this so a capacitated scenario keeps its capacities.
  void set_cost_delay(LinkId link, double cost, Time delay);

  /// Administratively raises/lowers an existing edge. Down edges stay in
  /// the edge list (find_link still returns them) but are skipped by route
  /// computation and refuse transmission — a hard failure, unlike a cost
  /// inflation which Dijkstra can still traverse.
  void set_link_up(LinkId link, bool up);
  [[nodiscard]] bool link_up(LinkId link) const { return edge(link).up; }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return kinds_.size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] NodeKind kind(NodeId n) const;
  [[nodiscard]] const Edge& edge(LinkId l) const;

  /// Outgoing edges of `n`.
  [[nodiscard]] std::span<const LinkId> out_links(NodeId n) const;

  /// The edge from->to, if present.
  [[nodiscard]] std::optional<LinkId> find_link(NodeId from, NodeId to) const;

  /// All node ids of a given kind, ascending.
  [[nodiscard]] std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

  /// Out-degree of `n`.
  [[nodiscard]] std::size_t degree(NodeId n) const {
    return out_links(n).size();
  }

  /// Mean out-degree over routers only (hosts excluded), the statistic the
  /// paper quotes (3.3 for the ISP topology, 8.6 for the random one).
  [[nodiscard]] double average_router_degree(bool count_host_links = false) const;

  /// True if every node can reach every other following directed edges.
  [[nodiscard]] bool strongly_connected() const;

  /// Validity check for ids coming from external input.
  [[nodiscard]] bool contains(NodeId n) const noexcept {
    return n.valid() && n.index() < kinds_.size();
  }

 private:
  std::vector<NodeKind> kinds_;
  std::vector<Edge> edges_;
  std::vector<std::vector<LinkId>> out_;
};

}  // namespace hbh::net
