#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace hbh::net {

namespace {

constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderSize = 20;

constexpr std::uint8_t kFlagFirst = 1u << 0;
constexpr std::uint8_t kFlagFresh = 1u << 1;
constexpr std::uint8_t kFlagMarked = 1u << 2;
constexpr std::uint8_t kFlagEncap = 1u << 3;
constexpr std::uint8_t kFlagTraced = 1u << 4;
constexpr std::uint8_t kFlagPadded = 1u << 5;

constexpr std::size_t kTraceExtSize = 16;  // trace_id(8) + span_id(8)

class Writer {
 public:
  explicit Writer(std::size_t reserve) { out_.reserve(reserve); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void addr(Ipv4Addr a) { u32(a.bits()); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  std::uint8_t u8() {
    if (remaining() < 1) {
      ok_ = false;
      return 0;
    }
    return data_[pos_++];
  }
  std::uint16_t u16() {
    const auto hi = u8();
    const auto lo = u8();
    return static_cast<std::uint16_t>((hi << 8) | lo);
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    const std::uint32_t lo = u16();
    return (hi << 16) | lo;
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    const std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }
  Ipv4Addr addr() { return Ipv4Addr{u32()}; }
  double f64() { return std::bit_cast<double>(u64()); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::uint8_t flags_of(const Packet& p) {
  std::uint8_t flags = 0;
  switch (p.type) {
    case PacketType::kJoin:
      if (p.join().first) flags |= kFlagFirst;
      if (p.join().fresh) flags |= kFlagFresh;
      break;
    case PacketType::kTree:
      if (p.tree().marked) flags |= kFlagMarked;
      break;
    case PacketType::kData:
      if (p.data().encapsulated) flags |= kFlagEncap;
      if (p.data().pad > 0) flags |= kFlagPadded;
      break;
    case PacketType::kFusion:
    case PacketType::kPimJoin:
    case PacketType::kPimPrune:
      break;
  }
  if (p.trace.active()) flags |= kFlagTraced;
  return flags;
}

}  // namespace

std::size_t encoded_size(const Packet& packet) {
  const std::size_t header =
      kHeaderSize + (packet.trace.active() ? kTraceExtSize : 0);
  switch (packet.type) {
    case PacketType::kJoin:
      return header + 4;
    case PacketType::kTree:
      return header + 12;
    case PacketType::kFusion:
      return header + 6 + 4 * packet.fusion().receivers.size();
    case PacketType::kPimJoin:
    case PacketType::kPimPrune:
      return header + 8;
    case PacketType::kData:
      // pad length prefix (4) + pad bytes, only when PADDED is set.
      return header + 20 +
             (packet.data().pad > 0 ? 4 + std::size_t{packet.data().pad} : 0);
  }
  return header;
}

std::vector<std::uint8_t> encode(const Packet& packet) {
  Writer w{encoded_size(packet)};
  w.u8(static_cast<std::uint8_t>(
      (kVersion << 4) | static_cast<std::uint8_t>(packet.type)));
  w.u8(flags_of(packet));
  w.u8(static_cast<std::uint8_t>(packet.ttl < 0 ? 0 : packet.ttl));
  w.u8(0);  // reserved
  w.addr(packet.src);
  w.addr(packet.dst);
  w.addr(packet.channel.source);
  w.addr(packet.channel.group.addr());
  if (packet.trace.active()) {
    w.u64(packet.trace.trace_id);
    w.u64(packet.trace.span_id);
  }
  switch (packet.type) {
    case PacketType::kJoin:
      w.addr(packet.join().receiver);
      break;
    case PacketType::kTree:
      w.addr(packet.tree().target);
      w.addr(packet.tree().last_branch);
      w.u32(packet.tree().wave);
      break;
    case PacketType::kFusion: {
      const auto& f = packet.fusion();
      w.addr(f.origin);
      w.u16(static_cast<std::uint16_t>(f.receivers.size()));
      for (const Ipv4Addr r : f.receivers) w.addr(r);
      break;
    }
    case PacketType::kPimJoin:
    case PacketType::kPimPrune:
      w.addr(packet.pim_join().root);
      w.addr(packet.pim_join().receiver);
      break;
    case PacketType::kData:
      w.u64(packet.data().probe);
      w.u32(packet.data().seq);
      w.f64(packet.data().sent_at);
      if (packet.data().pad > 0) {
        w.u32(packet.data().pad);
        for (std::uint32_t i = 0; i < packet.data().pad; ++i) w.u8(0);
      }
      break;
  }
  return w.take();
}

std::optional<Packet> decode(std::span<const std::uint8_t> wire) {
  Reader r{wire};
  const std::uint8_t vt = r.u8();
  if ((vt >> 4) != kVersion) return std::nullopt;
  const auto raw_type = static_cast<std::uint8_t>(vt & 0x0F);
  if (raw_type > static_cast<std::uint8_t>(PacketType::kPimPrune)) {
    return std::nullopt;
  }
  Packet p;
  p.type = static_cast<PacketType>(raw_type);
  const std::uint8_t flags = r.u8();
  p.ttl = r.u8();
  if (r.u8() != 0) return std::nullopt;  // reserved must be zero
  p.src = r.addr();
  p.dst = r.addr();
  p.channel.source = r.addr();
  p.channel.group = GroupAddr{r.addr()};
  if ((flags & kFlagTraced) != 0) {
    p.trace.trace_id = r.u64();
    p.trace.span_id = r.u64();
    if (p.trace.trace_id == 0) return std::nullopt;  // flag requires a trace
  }
  if (!r.ok()) return std::nullopt;

  switch (p.type) {
    case PacketType::kJoin:
      p.payload = JoinPayload{r.addr(), (flags & kFlagFirst) != 0,
                              (flags & kFlagFresh) != 0};
      break;
    case PacketType::kTree: {
      TreePayload t;
      t.target = r.addr();
      t.marked = (flags & kFlagMarked) != 0;
      t.last_branch = r.addr();
      t.wave = r.u32();
      p.payload = t;
      break;
    }
    case PacketType::kFusion: {
      FusionPayload f;
      f.origin = r.addr();
      const std::uint16_t count = r.u16();
      if (r.remaining() != std::size_t{count} * 4) return std::nullopt;
      f.receivers.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) f.receivers.push_back(r.addr());
      p.payload = std::move(f);
      break;
    }
    case PacketType::kPimJoin:
    case PacketType::kPimPrune: {
      PimJoinPayload j;
      j.root = r.addr();
      j.receiver = r.addr();
      p.payload = j;
      break;
    }
    case PacketType::kData: {
      DataPayload d;
      d.probe = r.u64();
      d.seq = r.u32();
      d.sent_at = r.f64();
      d.encapsulated = (flags & kFlagEncap) != 0;
      if ((flags & kFlagPadded) != 0) {
        d.pad = r.u32();
        if (d.pad == 0) return std::nullopt;  // flag requires padding
        for (std::uint32_t i = 0; i < d.pad; ++i) {
          if (r.u8() != 0) return std::nullopt;  // pad bytes must be zero
        }
      }
      p.payload = d;
      break;
    }
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return p;
}

}  // namespace hbh::net
