#include "net/topology.hpp"

#include <cassert>
#include <queue>

namespace hbh::net {

std::optional<AqmPolicy> aqm_from_string(std::string_view s) {
  if (s == "droptail") return AqmPolicy::kDropTail;
  if (s == "red") return AqmPolicy::kRed;
  return std::nullopt;
}

std::string_view to_string(AqmPolicy aqm) {
  return aqm == AqmPolicy::kRed ? "red" : "droptail";
}

namespace {

void check_spec(const LinkSpec& spec) {
  assert(spec.cost > 0 && spec.delay >= 0);
  assert(spec.capacity >= 0);
  assert(!spec.capacitated() || spec.queue_limit > 0);
  (void)spec;
}

}  // namespace

NodeId Topology::add_node(NodeKind kind) {
  const NodeId id{static_cast<std::uint32_t>(kinds_.size())};
  kinds_.push_back(kind);
  out_.emplace_back();
  return id;
}

LinkId Topology::add_link(NodeId from, NodeId to, LinkSpec spec) {
  assert(contains(from) && contains(to));
  assert(from != to);
  assert(!find_link(from, to).has_value());
  check_spec(spec);
  const LinkId id{static_cast<std::uint32_t>(edges_.size())};
  edges_.push_back(Edge{from, to, spec});
  out_[from.index()].push_back(id);
  return id;
}

void Topology::add_duplex(NodeId a, NodeId b, LinkSpec ab, LinkSpec ba) {
  add_link(a, b, ab);
  add_link(b, a, ba);
}

void Topology::set_spec(LinkId link, LinkSpec spec) {
  assert(link.valid() && link.index() < edges_.size());
  check_spec(spec);
  edges_[link.index()].attrs = spec;
}

void Topology::set_cost_delay(LinkId link, double cost, Time delay) {
  assert(link.valid() && link.index() < edges_.size());
  assert(cost > 0 && delay >= 0);
  edges_[link.index()].attrs.cost = cost;
  edges_[link.index()].attrs.delay = delay;
}

void Topology::set_link_up(LinkId link, bool up) {
  assert(link.valid() && link.index() < edges_.size());
  edges_[link.index()].up = up;
}

NodeKind Topology::kind(NodeId n) const {
  assert(contains(n));
  return kinds_[n.index()];
}

const Topology::Edge& Topology::edge(LinkId l) const {
  assert(l.valid() && l.index() < edges_.size());
  return edges_[l.index()];
}

std::span<const LinkId> Topology::out_links(NodeId n) const {
  assert(contains(n));
  return out_[n.index()];
}

std::optional<LinkId> Topology::find_link(NodeId from, NodeId to) const {
  assert(contains(from) && contains(to));
  for (const LinkId l : out_[from.index()]) {
    if (edges_[l.index()].to == to) return l;
  }
  return std::nullopt;
}

std::vector<NodeId> Topology::nodes_of_kind(NodeKind target) const {
  std::vector<NodeId> result;
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == target) result.push_back(NodeId{static_cast<std::uint32_t>(i)});
  }
  return result;
}

double Topology::average_router_degree(bool count_host_links) const {
  std::size_t routers = 0;
  std::size_t degree_sum = 0;
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] != NodeKind::kRouter) continue;
    ++routers;
    for (const LinkId l : out_[i]) {
      const Edge& e = edges_[l.index()];
      if (count_host_links || kinds_[e.to.index()] == NodeKind::kRouter) {
        ++degree_sum;
      }
    }
  }
  return routers == 0
             ? 0.0
             : static_cast<double>(degree_sum) / static_cast<double>(routers);
}

bool Topology::strongly_connected() const {
  const std::size_t n = node_count();
  if (n <= 1) return true;

  // BFS over out-edges from node 0, then BFS over in-edges (computed by
  // scanning all edges once into a reverse adjacency).
  const auto reach_count = [n](auto&& neighbors) {
    std::vector<bool> seen(n, false);
    std::queue<std::uint32_t> frontier;
    frontier.push(0);
    seen[0] = true;
    std::size_t count = 1;
    while (!frontier.empty()) {
      const std::uint32_t at = frontier.front();
      frontier.pop();
      for (const std::uint32_t next : neighbors(at)) {
        if (!seen[next]) {
          seen[next] = true;
          ++count;
          frontier.push(next);
        }
      }
    }
    return count;
  };

  std::vector<std::vector<std::uint32_t>> fwd(n);
  std::vector<std::vector<std::uint32_t>> rev(n);
  for (const Edge& e : edges_) {
    if (!e.up) continue;
    fwd[e.from.index()].push_back(e.to.index());
    rev[e.to.index()].push_back(e.from.index());
  }
  return reach_count([&](std::uint32_t a) -> const std::vector<std::uint32_t>& {
           return fwd[a];
         }) == n &&
         reach_count([&](std::uint32_t a) -> const std::vector<std::uint32_t>& {
           return rev[a];
         }) == n;
}

}  // namespace hbh::net
