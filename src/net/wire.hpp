// Wire encoding of HBH/REUNITE/PIM simulation packets.
//
// The paper defines no on-the-wire format, so this is this
// implementation's own (documented in docs/PROTOCOL.md): a 20-byte common
// header followed by a per-type payload, all fields big-endian. In the
// simulator it serves two purposes: the control-overhead benches report
// honest byte counts, and the codec round-trip is fuzz/property tested as
// any production parser should be.
//
//   common header (20 bytes):
//     0      version(hi nibble)=1 | type(lo nibble)
//     1      flags   (bit0 FIRST, bit1 FRESH, bit2 MARKED, bit3 ENCAP,
//                     bit4 TRACED, bit5 PADDED)
//     2      ttl
//     3      reserved (0)
//     4..7   src IPv4
//     8..11  dst IPv4
//     12..15 channel source S
//     16..19 channel group G
//   trace extension (16 bytes, only when TRACED is set):
//     trace_id(8) span_id(8)
//   payload:
//     join:     receiver(4)
//     tree:     target(4) last_branch(4) wave(4)
//     fusion:   origin(4) count(2) receiver(4)*count
//     pim-join: root(4) receiver(4)
//     data:     probe(8) seq(4) sent_at(8, IEEE-754 big-endian)
//               [pad_len(4) + pad_len zero bytes, only when PADDED is set —
//                the application payload modelled for capacity accounting]
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace hbh::net {

/// Serializes a packet. Never fails for well-formed packets.
[[nodiscard]] std::vector<std::uint8_t> encode(const Packet& packet);

/// Parses a packet; nullopt on any malformed input (short buffer, unknown
/// version/type, truncated fusion list, trailing garbage).
[[nodiscard]] std::optional<Packet> decode(std::span<const std::uint8_t> wire);

/// Exact encoded size in bytes (without building the buffer).
[[nodiscard]] std::size_t encoded_size(const Packet& packet);

}  // namespace hbh::net
