// The network fabric: binds topology, unicast routing, and per-node
// protocol agents to the discrete-event simulator.
//
// Packet life cycle: an agent calls send() (routed hop-by-hop toward the
// packet's unicast destination) or send_direct() (across one named link —
// how true multicast forwarding like PIM's RPF trees is modelled). Each
// transmission is delayed by the directed link's propagation delay and
// observed by an optional PacketTap, which the metrics module uses to count
// per-link copies (tree cost) and per-receiver delays.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/impairment.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"
#include "util/ipv4.hpp"
#include "util/rng.hpp"

namespace hbh::fastpath {
class CompiledForwarder;  // src/mcast/fastpath — friend of Network below
}

namespace hbh::net {

class Network;

/// Always-on per-agent telemetry counters: packets received by type plus
/// local timer firings. Receives are counted centrally by the Network at
/// delivery time; timer-driven agents (sources, receiver hosts) bump
/// `timer_fires` themselves. Cheap enough to never gate (one array
/// increment per delivered packet), these feed the harness telemetry's
/// per-protocol message-overhead gauges.
struct AgentStats {
  std::array<std::uint64_t, kPacketTypeCount> rx_by_type{};
  std::uint64_t timer_fires = 0;

  [[nodiscard]] std::uint64_t rx(PacketType t) const noexcept {
    return rx_by_type[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::uint64_t rx_total() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t n : rx_by_type) total += n;
    return total;
  }
};

/// Per-node protocol logic. An agent sees *every* packet arriving at its
/// node — whether addressed to it or transiting — which is exactly what
/// hop-by-hop protocols like HBH require (join interception, tree
/// processing). The base implementation is a plain unicast router.
class ProtocolAgent {
 public:
  virtual ~ProtocolAgent() = default;

  /// Called once when the simulation starts (after all agents attach).
  virtual void start() {}

  /// Called for each packet arriving at this node from neighbor `from`
  /// (kNoNode when the packet was locally originated or self-addressed).
  /// Default: deliver if addressed to self, else forward by unicast.
  virtual void handle(Packet&& packet, NodeId from);

  [[nodiscard]] NodeId self() const noexcept { return node_; }
  [[nodiscard]] Ipv4Addr self_addr() const noexcept { return addr_; }

  [[nodiscard]] const AgentStats& stats() const noexcept { return stats_; }

 protected:
  [[nodiscard]] Network& net() const noexcept { return *net_; }
  [[nodiscard]] sim::Simulator& simulator() const noexcept;

  /// Routes `packet` toward its destination from this node.
  void forward(Packet&& packet);

  /// A packet addressed to this node reached it. Default: drop silently
  /// (counted); protocol agents override handle() instead.
  virtual void deliver_local(Packet&& packet, NodeId from);

  /// Records one firing of an agent-owned periodic timer (tree rounds,
  /// join refreshes) for the telemetry gauges.
  void count_timer_fire() noexcept { ++stats_.timer_fires; }

  /// Tells the fabric this agent's forwarding state changed shape (table
  /// insert/erase/convert, mark). Routers call it from every structural
  /// mutation site so the compiled fast path can invalidate; a no-op when
  /// no TableMutationListener is installed.
  void note_table_mutation() const;

  /// Causal-tracing conveniences; all forward to the network's TraceHook
  /// and degrade to inactive contexts / no-ops when tracing is off.
  [[nodiscard]] TraceContext trace_root(std::string_view name,
                                        const Channel& channel,
                                        Ipv4Addr subject = kNoAddr) const;
  [[nodiscard]] TraceContext trace_child(const TraceContext& parent,
                                         std::string_view name,
                                         const Channel& channel,
                                         Ipv4Addr subject = kNoAddr) const;
  void trace_instant(const TraceContext& parent, std::string_view name,
                     const Channel& channel, Ipv4Addr subject = kNoAddr) const;

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeId node_{};
  Ipv4Addr addr_{};
  AgentStats stats_;
};

/// Causal-tracing seam. The fabric and the agents talk to this interface
/// only (metrics::Tracer implements it — metrics depends on net, not the
/// other way around, exactly like PacketTap). Roots anchor externally
/// triggered actions; on_transmit mints a child span for every wire copy so
/// the context a packet carries always names its causal parent at the next
/// hop. All methods are no-ops / return inactive contexts when tracing is
/// compiled out or no hook is installed.
class TraceHook {
 public:
  virtual ~TraceHook() = default;

  /// Opens a root span (subscribe, unsubscribe, tree round, data emission,
  /// fault). `subject` names the entity the action is about (e.g. the
  /// receiver address); pass kNoAddr when there is none.
  virtual TraceContext root(std::string_view name, NodeId node,
                            const Channel& channel, Ipv4Addr subject) = 0;

  /// Opens a child span under `parent` (e.g. one soft-state refresh round).
  virtual TraceContext child(const TraceContext& parent, std::string_view name,
                             NodeId node, const Channel& channel,
                             Ipv4Addr subject) = 0;

  /// Records a zero-duration event under `parent` (table mutation,
  /// delivery, state eviction).
  virtual void instant(const TraceContext& parent, std::string_view name,
                       NodeId node, const Channel& channel,
                       Ipv4Addr subject) = 0;

  /// Called per wire copy of a traced packet; returns the context the
  /// in-flight copy should carry (a transmit span parented on the context
  /// the packet had when it reached this hop).
  virtual TraceContext on_transmit(const Topology::Edge& edge,
                                   const Packet& packet, Time start,
                                   Time arrival) = 0;

  /// Called when a traced packet is dropped (TTL, loss, link-down, ...).
  virtual void on_drop(NodeId at, const Packet& packet,
                       std::string_view reason, Time now) = 0;
};

/// Data-plane fast-path seam. When installed, the fabric offers every
/// arriving *data* packet to the fast path at delivery time — after the
/// receive is counted, before the agent's virtual handle(). Returning true
/// means the fast path fully handled the hop (replaying a compiled
/// forwarding decision); false falls back to the interpreted agent, which
/// is also how the fast path bails out around soft-state expiry horizons
/// and dirty compiled blocks (src/mcast/fastpath/compiled_forwarder.hpp).
class DataFastpath {
 public:
  virtual ~DataFastpath() = default;
  virtual bool on_deliver(NodeId to, NodeId from, Packet& packet) = 0;
};

/// Control-plane mutation seam: notified whenever a node's forwarding
/// state changes shape — table insert/erase/convert, marks, agent
/// replacement (crash/restart). The compiled fast path listens to
/// invalidate that node's compiled blocks; recompilation is lazy.
class TableMutationListener {
 public:
  virtual ~TableMutationListener() = default;
  virtual void on_table_mutation(NodeId node) = 0;
};

/// Internal fast-path seam: receiver of arrival notifications from the
/// fabric's send/transmit machinery when the caller schedules deliveries
/// itself (the compiled fast path batches them into slim events instead of
/// per-packet move-captured lambdas). Not for general use — the interpreted
/// path always passes nullptr.
class ArrivalSink {
 public:
  virtual ~ArrivalSink() = default;
  /// One wire copy will arrive at `to` after `delay` (0 for a self-addressed
  /// local delivery, `from` = kNoNode then); the sink owns scheduling the
  /// delivery at now + delay, in call order. The packet is handed over by
  /// rvalue — the fabric is done with it, so the sink can move it into its
  /// own storage without a copy.
  virtual void on_arrival(NodeId to, NodeId from, Packet&& packet,
                          Time delay) = 0;
};

/// Observer of fabric activity; used by metrics probes and trace tooling.
class PacketTap {
 public:
  virtual ~PacketTap() = default;
  virtual void on_transmit(const Topology::Edge& edge, const Packet& packet,
                           Time now) {
    (void)edge, (void)packet, (void)now;
  }
  virtual void on_drop(NodeId at, const Packet& packet,
                       std::string_view reason, Time now) {
    (void)at, (void)packet, (void)reason, (void)now;
  }
  /// A data copy was admitted to a capacitated link's egress queue: it
  /// starts serializing after `wait` and arrives at `now + wait +
  /// serialization + propagation`. `depth` is the queue occupancy counting
  /// this copy (the post-admission instantaneous backlog). Never called
  /// for uncapacitated links or for control packets (those ride the
  /// priority lane — see Network::transmit).
  virtual void on_queue(const Topology::Edge& edge, const Packet& packet,
                        Time wait, Time serialization, std::size_t depth,
                        Time now) {
    (void)edge, (void)packet, (void)wait, (void)serialization, (void)depth,
        (void)now;
  }
  /// A wire copy arrived at node `to` and is about to be handed to the
  /// node's agent (or to the compiled fast path — both go through the
  /// same choke point, so fast-path and interpreted runs are observed
  /// identically). `from` is kNoNode for self-addressed local deliveries.
  virtual void on_deliver(NodeId to, NodeId from, const Packet& packet,
                          Time now) {
    (void)to, (void)from, (void)packet, (void)now;
  }
};

/// Aggregate fabric counters (cheap always-on accounting).
struct NetworkCounters {
  std::uint64_t transmissions = 0;
  std::uint64_t data_transmissions = 0;
  std::uint64_t control_transmissions = 0;
  std::uint64_t drops_ttl = 0;
  std::uint64_t drops_no_route = 0;
  std::uint64_t drops_link_down = 0;   ///< down edge or blackhole window
  std::uint64_t drops_loss = 0;        ///< impairment loss
  std::uint64_t duplicates_injected = 0;  ///< impairment duplication
  std::uint64_t reordered = 0;            ///< copies given extra jitter
  std::uint64_t local_sink = 0;  ///< packets consumed by the default agent
  // Congestion accounting (data packets only — control packets bypass the
  // queues). All zero unless some link is capacitated.
  std::uint64_t drops_queue_full = 0;  ///< drop-tail egress overflow
  std::uint64_t drops_red = 0;         ///< RED early drops
  std::uint64_t queued_packets = 0;    ///< copies admitted to an egress queue
};

class Network {
 public:
  /// The topology and routing must outlive the network.
  Network(sim::Simulator& simulator, const Topology& topo,
          const routing::UnicastRouting& routes);

  /// The unicast address assigned to node `n` (10.x.y.1 by node index).
  [[nodiscard]] Ipv4Addr address_of(NodeId n) const;

  /// Reverse lookup; kNoNode for unknown addresses.
  [[nodiscard]] NodeId node_of(Ipv4Addr a) const;

  /// Installs the protocol agent for a node (replacing any previous one).
  /// Returns a reference to the installed agent.
  ProtocolAgent& attach(NodeId n, std::unique_ptr<ProtocolAgent> agent);

  /// Binds `agent` to node `n` (net/self/self_addr) *without* installing it
  /// as the node's agent. This is how composite agents (e.g. the harness's
  /// multi-channel source host) give identity to the sub-agents they own
  /// and dispatch to; the composite itself is attach()ed normally.
  void adopt(NodeId n, ProtocolAgent& agent);

  /// The agent at `n`; every node always has one (default unicast router).
  [[nodiscard]] ProtocolAgent& agent(NodeId n) const;

  /// Calls start() on every agent. Invoke once before running the sim.
  void start();

  /// Sends `packet` from node `from` toward packet.dst along unicast
  /// routing. Decrements TTL; drops on TTL expiry or missing route.
  /// If the destination is `from` itself the packet is delivered locally
  /// after zero delay. `sink`, when non-null, receives the arrival instead
  /// of the fabric scheduling it (fast path only).
  void send(NodeId from, Packet packet, ArrivalSink* sink = nullptr);

  /// Transmits `packet` across the specific link from->neighbor (which must
  /// exist). Used for multicast (RPF) forwarding along installed oifs.
  void send_direct(NodeId from, NodeId neighbor, Packet packet,
                   ArrivalSink* sink = nullptr);

  /// Sets the exclusive *measurement* tap slot (one active probe at a
  /// time; pass nullptr to clear). Persistent observers — telemetry stats,
  /// message traces — use add_tap()/remove_tap() instead and coexist with
  /// whatever probe occupies this slot.
  void set_tap(PacketTap* tap) noexcept { tap_ = tap; }

  /// Registers a persistent observer (no ownership; at most once each).
  void add_tap(PacketTap* tap);
  void remove_tap(PacketTap* tap) noexcept;

  /// Installs the causal-tracing hook (one per network, no ownership; pass
  /// nullptr to detach). While installed, every wire copy of a traced
  /// packet gets a fresh child span stamped into its TraceContext.
  void set_trace_hook(TraceHook* hook) noexcept { trace_hook_ = hook; }
  [[nodiscard]] TraceHook* trace_hook() const noexcept { return trace_hook_; }

  /// Installs the data-plane fast path (one per network, no ownership;
  /// nullptr detaches — the interpreted path, HBH_FASTPATH=0).
  void set_fastpath(DataFastpath* fastpath) noexcept { fastpath_ = fastpath; }
  [[nodiscard]] DataFastpath* fastpath() const noexcept { return fastpath_; }

  /// Installs the table-mutation listener (no ownership; nullptr detaches).
  void set_mutation_listener(TableMutationListener* listener) noexcept {
    mutation_listener_ = listener;
  }
  [[nodiscard]] TableMutationListener* mutation_listener() const noexcept {
    return mutation_listener_;
  }

  /// Forwards a node's structural state change to the installed listener.
  void note_table_mutation(NodeId node) {
    if (mutation_listener_ != nullptr) {
      mutation_listener_->on_table_mutation(node);
    }
  }

  [[nodiscard]] const NetworkCounters& counters() const noexcept {
    return counters_;
  }
  NetworkCounters& counters() noexcept { return counters_; }

  [[nodiscard]] sim::Simulator& simulator() const noexcept { return sim_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const routing::UnicastRouting& routes() const noexcept {
    return *routes_;
  }

  /// Swaps in freshly computed routes (e.g. after a link failure). Models
  /// instantaneous IGP reconvergence; in-flight packets are unaffected.
  void rebind_routes(const routing::UnicastRouting& routes) noexcept {
    routes_ = &routes;
  }

  /// Per-link fault injection (docs/RESILIENCE.md). Impairments apply at
  /// transmission time; unimpaired links pay one branch. The duplex helper
  /// configures both directions (each keeps its own RNG stream).
  void set_impairment(NodeId from, NodeId to, const Impairment& impairment);
  void set_duplex_impairment(NodeId a, NodeId b, const Impairment& impairment);
  void clear_impairments() { impairments_.clear_all(); }

  /// Reseeds the per-link RED RNG streams (mirrors ImpairmentPlane's
  /// contract: each link's stream derives from (seed, link index), so the
  /// decision sequence is independent of which other links exist). Resets
  /// queue state; call before traffic, not mid-run.
  void seed_aqm(std::uint64_t seed);
  static constexpr std::uint64_t kDefaultAqmSeed = 0x0AE0'11FEull;

  /// Packets currently occupying `link`'s egress queue (still serializing
  /// or waiting) at the simulator's current time. 0 for uncapacitated
  /// links. Exposed for tests and the congestion bench.
  [[nodiscard]] std::size_t queue_depth(LinkId link) const;

  /// Highest instantaneous occupancy `link`'s egress queue ever reached
  /// (counting the copy being admitted) and the cumulative number of
  /// copies admitted to it. Both 0 for uncapacitated / never-used links;
  /// reset by seed_aqm(). Surfaced as per-link telemetry gauges.
  [[nodiscard]] std::size_t queue_high_water(LinkId link) const;
  [[nodiscard]] std::uint64_t queue_admitted(LinkId link) const;
  [[nodiscard]] ImpairmentPlane& impairments() noexcept {
    return impairments_;
  }
  [[nodiscard]] const ImpairmentPlane& impairments() const noexcept {
    return impairments_;
  }

 private:
  // The compiled fast path replays forwarding decisions through the same
  // private transmit/deliver/drop machinery (via ArrivalSink), so
  // counters, impairment streams, trace spans, and drop reasons stay
  // byte-identical to the interpreted path.
  friend class hbh::fastpath::CompiledForwarder;

  void transmit(LinkId link, Packet packet, ArrivalSink* sink = nullptr);
  /// Hands an arrived packet to the node's agent (counting the receive).
  void deliver(NodeId to, NodeId from, Packet packet);
  void drop(NodeId at, const Packet& packet, std::string_view reason);

  /// Egress queue of one capacitated directed edge. Occupancy is tracked
  /// event-free: `departures` holds the serialization-completion time of
  /// every admitted copy, and expired entries are popped lazily at the
  /// next admission — no timer events, so uncapacitated runs see an
  /// unchanged event stream and capacitated ones add zero events too.
  struct EgressQueue {
    Time busy_until = 0;          ///< when the link finishes its backlog
    std::deque<Time> departures;  ///< per-copy completion times, FIFO
    double red_avg = 0;           ///< RED's EWMA of instantaneous occupancy
    Rng red_rng;
    bool red_seeded = false;
    std::size_t high_water = 0;   ///< max instantaneous occupancy seen
    std::uint64_t admitted = 0;   ///< cumulative copies admitted
  };

  /// Runs queue admission for one wire copy on a capacitated edge.
  /// Returns false (after counting/reporting the drop) when drop-tail or
  /// RED rejects it; otherwise sets `queue_delay` = wait + serialization.
  bool admit(LinkId link, const Topology::Edge& edge, const Packet& packet,
             Time& queue_delay);
  bool red_rejects(EgressQueue& q, LinkId link, const LinkSpec& spec,
                   std::size_t occupancy);
  [[nodiscard]] EgressQueue& egress(LinkId link);

  sim::Simulator& sim_;
  const Topology& topo_;
  const routing::UnicastRouting* routes_;
  std::vector<std::unique_ptr<ProtocolAgent>> agents_;
  std::unordered_map<Ipv4Addr, NodeId> addr_to_node_;
  PacketTap* tap_ = nullptr;
  std::vector<PacketTap*> taps_;  ///< persistent observers (telemetry)
  TraceHook* trace_hook_ = nullptr;
  DataFastpath* fastpath_ = nullptr;
  TableMutationListener* mutation_listener_ = nullptr;
  NetworkCounters counters_;
  ImpairmentPlane impairments_;
  std::vector<EgressQueue> queues_;  ///< lazily sized; indexed by link
  std::uint64_t aqm_seed_ = kDefaultAqmSeed;
};

/// Computes the 10.x.y.1 address for a node index (stable scheme used by
/// Network; exposed for tests and pretty-printing).
[[nodiscard]] Ipv4Addr node_address(NodeId n);

}  // namespace hbh::net
