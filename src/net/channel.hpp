// The source-specific channel abstraction <S, G> (EXPRESS / HBH §2.1).
//
// A channel is identified by the pair of the source's unicast address S and
// a class-D group address G allocated by the source. Concatenating the two
// makes the identifier globally unique without coordination — the property
// HBH borrows from EXPRESS to stay compatible with IP Multicast addressing.
#pragma once

#include <functional>
#include <string>

#include "util/ipv4.hpp"

namespace hbh::net {

struct Channel {
  Ipv4Addr source;   ///< S: unicast address of the channel source.
  GroupAddr group;   ///< G: class-D group address allocated by S.

  [[nodiscard]] bool valid() const noexcept {
    return !source.unspecified() && group.valid();
  }
  [[nodiscard]] std::string to_string() const {
    // Built with append() rather than operator+ chains: GCC 12's
    // -Wrestrict misfires on `literal + std::string&&` under -O3
    // (GCC PR105329), and the build is -Werror.
    std::string out;
    out.reserve(36);
    out.append("<").append(source.to_string()).append(", ");
    out.append(group.to_string()).append(">");
    return out;
  }

  friend constexpr bool operator==(const Channel&, const Channel&) = default;
  friend constexpr auto operator<=>(const Channel&, const Channel&) = default;
};

}  // namespace hbh::net

template <>
struct std::hash<hbh::net::Channel> {
  std::size_t operator()(const hbh::net::Channel& c) const noexcept {
    const std::size_t h1 = std::hash<hbh::Ipv4Addr>{}(c.source);
    const std::size_t h2 = std::hash<hbh::GroupAddr>{}(c.group);
    return h1 ^ (h2 + 0x9E3779B97F4A7C15ull + (h1 << 6) + (h1 >> 2));
  }
};
