#include "net/impairment.hpp"

#include <cassert>

namespace hbh::net {

Rng ImpairmentPlane::derive_stream(LinkId link) const {
  // SplitMix the (seed, link) pair into an independent stream; the odd
  // multiplier decorrelates adjacent link ids.
  std::uint64_t s = seed_ ^ (0x9E3779B97F4A7C15ull * (link.index() + 1));
  return Rng(splitmix64(s));
}

void ImpairmentPlane::reseed(std::uint64_t seed) {
  seed_ = seed;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].configured) {
      links_[i].rng = derive_stream(LinkId{static_cast<std::uint32_t>(i)});
    }
  }
}

void ImpairmentPlane::set(LinkId link, const Impairment& impairment) {
  assert(link.valid());
  if (link.index() >= links_.size()) links_.resize(link.index() + 1);
  LinkState& st = links_[link.index()];
  if (st.config.active() && !impairment.active()) --active_links_;
  if (!st.config.active() && impairment.active()) ++active_links_;
  st.config = impairment;
  if (!st.configured) {
    st.rng = derive_stream(link);
    st.configured = true;
  }
}

void ImpairmentPlane::clear(LinkId link) {
  if (!link.valid() || link.index() >= links_.size()) return;
  LinkState& st = links_[link.index()];
  if (st.config.active()) --active_links_;
  st = LinkState();
}

void ImpairmentPlane::clear_all() {
  links_.clear();
  active_links_ = 0;
}

const Impairment* ImpairmentPlane::get(LinkId link) const {
  if (!link.valid() || link.index() >= links_.size()) return nullptr;
  const LinkState& st = links_[link.index()];
  return st.config.active() ? &st.config : nullptr;
}

ImpairmentDecision ImpairmentPlane::decide(LinkId link, Time now) {
  ImpairmentDecision d;
  if (link.index() >= links_.size()) return d;
  LinkState& st = links_[link.index()];
  if (!st.config.active()) return d;

  // Fixed consumption: five draws per transmission, used or not, so that
  // changing one probability never shifts the stream under the others.
  const double u_loss = st.rng.uniform01();
  const double u_dup = st.rng.uniform01();
  const double u_reorder = st.rng.uniform01();
  const double u_jitter = st.rng.uniform01();
  const double u_dup_jitter = st.rng.uniform01();

  if (st.config.down_at(now)) {
    d.link_down = true;
    return d;
  }
  if (u_loss < st.config.loss) {
    d.drop = true;
    return d;
  }
  if (u_reorder < st.config.reorder) {
    d.extra_delay = u_jitter * st.config.jitter;
  }
  if (u_dup < st.config.duplicate) {
    d.duplicate = true;
    // The duplicate gets its own jitter draw so the pair can arrive in
    // either order — real duplication is rarely back-to-back.
    d.dup_extra_delay = u_dup_jitter * st.config.jitter;
  }
  return d;
}

}  // namespace hbh::net
