#include "net/packet.hpp"

namespace hbh::net {

std::string to_string(PacketType t) {
  switch (t) {
    case PacketType::kData:
      return "data";
    case PacketType::kJoin:
      return "join";
    case PacketType::kTree:
      return "tree";
    case PacketType::kFusion:
      return "fusion";
    case PacketType::kPimJoin:
      return "pim-join";
    case PacketType::kPimPrune:
      return "pim-prune";
  }
  return "?";
}

std::string Packet::describe() const {
  std::string out = to_string(type) + " " + channel.to_string() + " " +
                    src.to_string() + "->" + dst.to_string();
  switch (type) {
    case PacketType::kJoin:
      out += " R=" + join().receiver.to_string();
      if (join().first) out += " first";
      break;
    case PacketType::kTree:
      out += " R=" + tree().target.to_string();
      if (tree().marked) out += " marked";
      break;
    case PacketType::kFusion: {
      out += " [";
      bool comma = false;
      for (const auto& r : fusion().receivers) {
        if (comma) out += ",";
        out += r.to_string();
        comma = true;
      }
      out += "] from=" + fusion().origin.to_string();
      break;
    }
    case PacketType::kPimJoin:
    case PacketType::kPimPrune:
      out += " root=" + pim_join().root.to_string();
      break;
    case PacketType::kData:
      out += " seq=" + std::to_string(data().seq);
      if (data().encapsulated) out += " encap";
      break;
  }
  return out;
}

}  // namespace hbh::net
