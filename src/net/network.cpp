#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "net/wire.hpp"
#include "util/log.hpp"

namespace hbh::net {

Ipv4Addr node_address(NodeId n) {
  assert(n.valid());
  const std::uint32_t i = n.index();
  assert(i < (1u << 16));
  return Ipv4Addr{static_cast<std::uint8_t>(10),
                  static_cast<std::uint8_t>(i >> 8),
                  static_cast<std::uint8_t>(i & 0xFF),
                  static_cast<std::uint8_t>(1)};
}

void ProtocolAgent::handle(Packet&& packet, NodeId from) {
  if (packet.dst == addr_) {
    deliver_local(std::move(packet), from);
  } else {
    forward(std::move(packet));
  }
}

sim::Simulator& ProtocolAgent::simulator() const noexcept {
  return net_->simulator();
}

void ProtocolAgent::forward(Packet&& packet) {
  net_->send(node_, std::move(packet));
}

void ProtocolAgent::note_table_mutation() const {
  net_->note_table_mutation(node_);
}

TraceContext ProtocolAgent::trace_root(std::string_view name,
                                       const Channel& channel,
                                       Ipv4Addr subject) const {
  TraceHook* hook = net_->trace_hook();
  if (hook == nullptr) return TraceContext{};
  return hook->root(name, node_, channel, subject);
}

TraceContext ProtocolAgent::trace_child(const TraceContext& parent,
                                        std::string_view name,
                                        const Channel& channel,
                                        Ipv4Addr subject) const {
  TraceHook* hook = net_->trace_hook();
  if (hook == nullptr || !parent.active()) return parent;
  return hook->child(parent, name, node_, channel, subject);
}

void ProtocolAgent::trace_instant(const TraceContext& parent,
                                  std::string_view name,
                                  const Channel& channel,
                                  Ipv4Addr subject) const {
  TraceHook* hook = net_->trace_hook();
  if (hook == nullptr || !parent.active()) return;
  hook->instant(parent, name, node_, channel, subject);
}

void ProtocolAgent::deliver_local(Packet&& packet, NodeId from) {
  (void)from;
  ++net_->counters().local_sink;
  log(LogLevel::kTrace, to_string(node_), " sink ", packet.describe());
}

Network::Network(sim::Simulator& simulator, const Topology& topo,
                 const routing::UnicastRouting& routes)
    : sim_(simulator), topo_(topo), routes_(&routes) {
  agents_.resize(topo.node_count());
  addr_to_node_.reserve(topo.node_count());
  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    const NodeId n{i};
    addr_to_node_.emplace(node_address(n), n);
    attach(n, std::make_unique<ProtocolAgent>());
  }
}

Ipv4Addr Network::address_of(NodeId n) const {
  assert(topo_.contains(n));
  return node_address(n);
}

NodeId Network::node_of(Ipv4Addr a) const {
  const auto it = addr_to_node_.find(a);
  return it == addr_to_node_.end() ? kNoNode : it->second;
}

ProtocolAgent& Network::attach(NodeId n, std::unique_ptr<ProtocolAgent> agent) {
  assert(topo_.contains(n));
  assert(agent != nullptr);
  agent->net_ = this;
  agent->node_ = n;
  agent->addr_ = node_address(n);
  agents_[n.index()] = std::move(agent);
  // Replacing an agent (crash/restart) changes what the node forwards —
  // any compiled forwarding block for it is stale.
  note_table_mutation(n);
  return *agents_[n.index()];
}

void Network::adopt(NodeId n, ProtocolAgent& agent) {
  assert(topo_.contains(n));
  agent.net_ = this;
  agent.node_ = n;
  agent.addr_ = node_address(n);
}

ProtocolAgent& Network::agent(NodeId n) const {
  assert(topo_.contains(n));
  return *agents_[n.index()];
}

void Network::start() {
  for (const auto& agent : agents_) agent->start();
}

void Network::add_tap(PacketTap* tap) {
  assert(tap != nullptr);
  if (std::find(taps_.begin(), taps_.end(), tap) == taps_.end()) {
    taps_.push_back(tap);
  }
}

void Network::remove_tap(PacketTap* tap) noexcept {
  taps_.erase(std::remove(taps_.begin(), taps_.end(), tap), taps_.end());
}

void Network::send(NodeId from, Packet packet, ArrivalSink* sink) {
  assert(topo_.contains(from));
  const NodeId dst = node_of(packet.dst);
  if (!dst.valid()) {
    drop(from, packet, "unknown-destination");
    return;
  }
  if (dst == from) {
    // Self-addressed: deliver locally after zero delay (still through the
    // event queue so handling order stays deterministic).
    if (sink != nullptr) {
      sink->on_arrival(from, kNoNode, std::move(packet), 0);
      return;
    }
    sim_.schedule(0, [this, from, p = std::move(packet)]() mutable {
      deliver(from, kNoNode, std::move(p));
    });
    return;
  }
  const NodeId next = routes_->next_hop(from, dst);
  if (!next.valid()) {
    drop(from, packet, "no-route");
    return;
  }
  if (packet.ttl <= 0) {
    drop(from, packet, "ttl-expired");
    return;
  }
  --packet.ttl;
  const auto link = topo_.find_link(from, next);
  assert(link.has_value());  // routing only uses existing edges
  transmit(*link, std::move(packet), sink);
}

void Network::send_direct(NodeId from, NodeId neighbor, Packet packet,
                          ArrivalSink* sink) {
  assert(topo_.contains(from) && topo_.contains(neighbor));
  const auto link = topo_.find_link(from, neighbor);
  assert(link.has_value());
  if (packet.ttl <= 0) {
    drop(from, packet, "ttl-expired");
    return;
  }
  --packet.ttl;
  transmit(*link, std::move(packet), sink);
}

void Network::set_impairment(NodeId from, NodeId to,
                             const Impairment& impairment) {
  const auto link = topo_.find_link(from, to);
  assert(link.has_value());
  impairments_.set(*link, impairment);
}

void Network::set_duplex_impairment(NodeId a, NodeId b,
                                    const Impairment& impairment) {
  set_impairment(a, b, impairment);
  set_impairment(b, a, impairment);
}

Network::EgressQueue& Network::egress(LinkId link) {
  if (queues_.size() <= link.index()) {
    queues_.resize(link.index() + std::size_t{1});
  }
  return queues_[link.index()];
}

void Network::seed_aqm(std::uint64_t seed) {
  aqm_seed_ = seed;
  queues_.clear();
}

std::size_t Network::queue_high_water(LinkId link) const {
  return link.index() < queues_.size() ? queues_[link.index()].high_water : 0;
}

std::uint64_t Network::queue_admitted(LinkId link) const {
  return link.index() < queues_.size() ? queues_[link.index()].admitted : 0;
}

std::size_t Network::queue_depth(LinkId link) const {
  if (link.index() >= queues_.size()) return 0;
  const EgressQueue& q = queues_[link.index()];
  std::size_t depth = 0;
  for (const Time t : q.departures) {
    if (t > sim_.now()) ++depth;
  }
  return depth;
}

bool Network::red_rejects(EgressQueue& q, LinkId link, const LinkSpec& spec,
                          std::size_t occupancy) {
  // Classic RED (Floyd/Jacobson) on an EWMA of the instantaneous
  // occupancy, thresholds fixed at 1/4 and 3/4 of the queue limit.
  constexpr double kWeight = 0.25;
  constexpr double kMaxProb = 0.1;
  q.red_avg += kWeight * (static_cast<double>(occupancy) - q.red_avg);
  const double min_th = 0.25 * static_cast<double>(spec.queue_limit);
  const double max_th = 0.75 * static_cast<double>(spec.queue_limit);
  if (q.red_avg < min_th) return false;
  if (q.red_avg >= max_th) return true;
  if (!q.red_seeded) {
    // Same stream-derivation contract as ImpairmentPlane: the link's
    // decision sequence depends only on (seed, link index).
    std::uint64_t mix = aqm_seed_ ^ (0x9E3779B97F4A7C15ull * (link.index() + 1));
    q.red_rng.reseed(splitmix64(mix));
    q.red_seeded = true;
  }
  const double p = kMaxProb * (q.red_avg - min_th) / (max_th - min_th);
  return q.red_rng.chance(p);
}

bool Network::admit(LinkId link, const Topology::Edge& edge,
                    const Packet& packet, Time& queue_delay) {
  EgressQueue& q = egress(link);
  const Time now = sim_.now();
  while (!q.departures.empty() && q.departures.front() <= now) {
    q.departures.pop_front();
  }
  const std::size_t occupancy = q.departures.size();
  if (occupancy >= edge.attrs.queue_limit) {
    drop(edge.from, packet, "queue-full");
    return false;
  }
  if (edge.attrs.aqm == AqmPolicy::kRed &&
      red_rejects(q, link, edge.attrs, occupancy)) {
    drop(edge.from, packet, "red-early");
    return false;
  }
  const Time serialization = edge.attrs.serialization_time(encoded_size(packet));
  const Time start = q.busy_until > now ? q.busy_until : now;
  const Time wait = start - now;
  q.busy_until = start + serialization;
  q.departures.push_back(q.busy_until);
  const std::size_t depth = q.departures.size();
  if (depth > q.high_water) q.high_water = depth;
  ++q.admitted;
  ++counters_.queued_packets;
  if (tap_ != nullptr) {
    tap_->on_queue(edge, packet, wait, serialization, depth, now);
  }
  for (PacketTap* tap : taps_) {
    tap->on_queue(edge, packet, wait, serialization, depth, now);
  }
  queue_delay = wait + serialization;
  return true;
}

void Network::transmit(LinkId link, Packet packet, ArrivalSink* sink) {
  const Topology::Edge& edge = topo_.edge(link);
  if (!edge.up) {
    drop(edge.from, packet, "link-down");
    return;
  }

  // Capacitated links model store-and-forward for *data*: the copy first
  // clears the bounded egress queue (or is dropped there), then spends
  // wait + serialization before propagation starts. Control packets ride
  // a priority lane — classic CS6 treatment: they are 20-40 bytes against
  // kilobyte-scale data, so the model charges them neither queue slots
  // nor serialization, and soft state survives data-plane congestion.
  // An injected duplicate shares the original's queue slot — duplication
  // happens on the wire, not in the buffer. capacity == 0 (every
  // pre-congestion experiment) takes exactly one predicted-false branch.
  Time queue_delay = 0;
  if (edge.attrs.capacitated() && packet.type == PacketType::kData &&
      !admit(link, edge, packet, queue_delay)) {
    return;
  }

  Time extra_delay = 0;
  bool duplicate = false;
  Time dup_extra_delay = 0;
  if (impairments_.any_active()) {
    const ImpairmentDecision d = impairments_.decide(link, sim_.now());
    if (d.link_down) {
      drop(edge.from, packet, "link-down");
      return;
    }
    if (d.drop) {
      drop(edge.from, packet, "loss");
      return;
    }
    extra_delay = d.extra_delay;
    duplicate = d.duplicate;
    dup_extra_delay = d.dup_extra_delay;
    if (extra_delay > 0 || (duplicate && dup_extra_delay > 0)) {
      ++counters_.reordered;
    }
    if (duplicate) ++counters_.duplicates_injected;
  }

  // Each wire copy — the original and an injected duplicate — counts as a
  // transmission and is observed by the taps, so tree-cost measurements
  // honestly include duplicated traffic.
  const NodeId to = edge.to;
  const NodeId from = edge.from;
  const auto send_copy = [&](Packet copy, Time added) {
    // Arrival = queue wait + serialization + propagation (+ impairment
    // jitter); queue_delay is 0 on uncapacitated links.
    const Time latency = queue_delay + edge.attrs.delay + added;
    ++counters_.transmissions;
    if (copy.type == PacketType::kData) {
      ++counters_.data_transmissions;
    } else {
      ++counters_.control_transmissions;
    }
    if (trace_hook_ != nullptr && copy.trace.active()) {
      // Each wire copy becomes its own transmit span; the in-flight packet
      // carries that span so the next hop's work parents onto this hop.
      copy.trace =
          trace_hook_->on_transmit(edge, copy, sim_.now(), sim_.now() + latency);
    }
    if (tap_ != nullptr) tap_->on_transmit(edge, copy, sim_.now());
    for (PacketTap* tap : taps_) tap->on_transmit(edge, copy, sim_.now());
    // The log arguments (to_string, describe) dominate per-hop cost when
    // evaluated eagerly; log() re-checks enabled(), so guarding here only
    // skips the formatting, never a line that would have been printed.
    if (Logger::instance().enabled(LogLevel::kTrace)) {
      log(LogLevel::kTrace, to_string(edge.from), "->", to_string(edge.to),
          " ", copy.describe());
    }
    if (sink != nullptr) {
      sink->on_arrival(to, from, std::move(copy), latency);
    } else {
      sim_.schedule(latency, [this, to, from, p = std::move(copy)]() mutable {
        deliver(to, from, std::move(p));
      });
    }
  };
  if (duplicate) send_copy(packet, dup_extra_delay);
  send_copy(std::move(packet), extra_delay);
}

void Network::deliver(NodeId to, NodeId from, Packet packet) {
  ProtocolAgent& agent = *agents_[to.index()];
  ++agent.stats_.rx_by_type[static_cast<std::size_t>(packet.type)];
  // Taps observe the arrival before the fast-path offer: compiled and
  // interpreted hops funnel through this one choke point, so auditors see
  // both identically.
  if (tap_ != nullptr) tap_->on_deliver(to, from, packet, sim_.now());
  for (PacketTap* tap : taps_) tap->on_deliver(to, from, packet, sim_.now());
  if (fastpath_ != nullptr && packet.type == PacketType::kData &&
      fastpath_->on_deliver(to, from, packet)) {
    return;
  }
  agent.handle(std::move(packet), from);
}

void Network::drop(NodeId at, const Packet& packet, std::string_view reason) {
  if (reason == "ttl-expired") {
    ++counters_.drops_ttl;
  } else if (reason == "link-down") {
    ++counters_.drops_link_down;
  } else if (reason == "loss") {
    ++counters_.drops_loss;
  } else if (reason == "queue-full") {
    ++counters_.drops_queue_full;
  } else if (reason == "red-early") {
    ++counters_.drops_red;
  } else {
    ++counters_.drops_no_route;
  }
  if (trace_hook_ != nullptr && packet.trace.active()) {
    trace_hook_->on_drop(at, packet, reason, sim_.now());
  }
  if (tap_ != nullptr) tap_->on_drop(at, packet, reason, sim_.now());
  for (PacketTap* tap : taps_) tap->on_drop(at, packet, reason, sim_.now());
  log(LogLevel::kDebug, to_string(at), " drop(", reason, ") ",
      packet.describe());
}

}  // namespace hbh::net
