// Simulated packets.
//
// Every packet — control or data — carries a unicast destination address;
// that is the essence of the recursive-unicast approach: unicast-only
// routers can always forward, and multicast-aware routers additionally
// inspect the channel header. The typed payload variant replaces on-the-wire
// encoding, which the simulation does not need.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/channel.hpp"
#include "util/ids.hpp"
#include "util/ipv4.hpp"

namespace hbh::net {

/// join(S, R): sent periodically by receiver R (or a branching router B as
/// join(S, B)) hop-by-hop toward the source. `first` marks a receiver's very
/// first join, which HBH routers must never intercept (§3.1). `fresh` is
/// REUNITE's (re)anchoring signal: a receiver sets it while it is NOT
/// connected to the tree (no recent tree(S, R) addressed to it); only fresh
/// joins may create new forwarding state — refresh joins travel unchanged
/// to wherever the receiver is already anchored.
struct JoinPayload {
  Ipv4Addr receiver;
  bool first = false;
  bool fresh = false;
};

/// tree(S, R): emitted periodically by the source (and re-emitted by
/// branching routers) toward R, installing/refreshing tree state hop-by-hop.
/// `marked` implements REUNITE's marked tree messages announcing that the
/// data flow addressed to R will stop. `last_branch` is the address of the
/// most recent branching node the message traversed — the node a fusion
/// message generated downstream must be addressed to. `wave` is the
/// source's refresh round: replicas inherit it, and routers replicate a
/// given wave at most once, which roots every refresh chain at the source
/// (transient dst/entry cycles otherwise self-sustain; DESIGN.md §5).
struct TreePayload {
  Ipv4Addr target;
  bool marked = false;
  Ipv4Addr last_branch;
  std::uint32_t wave = 0;
};

/// fusion(S, R1..Rn): sent upstream by a (potential) branching node Bp
/// listing all nodes Bp keeps in its MFT; processed by the upstream
/// branching node it is addressed to (HBH Appendix A).
struct FusionPayload {
  std::vector<Ipv4Addr> receivers;
  Ipv4Addr origin;  ///< Bp, the node that produced the fusion.
};

/// PIM-style (*,G)/(S,G) join travelling hop-by-hop toward `root`
/// (the source for PIM-SS, the rendez-vous point for PIM-SM). The same
/// payload shape serves prunes (explicit fast leave).
struct PimJoinPayload {
  Ipv4Addr root;
  Ipv4Addr receiver;
};

/// Multicast payload data. `probe` tags measurement packets so the metrics
/// taps can attribute link copies and delivery delays to one transmission.
/// `encapsulated` models PIM-SM register tunnelling (source → RP in unicast).
/// `pad` models application payload size: that many zero bytes ride on the
/// wire (TrafficSpec::payload_bytes), so serialization time on capacitated
/// links scales with it. 0 (default) keeps the legacy wire format.
struct DataPayload {
  std::uint64_t probe = 0;
  std::uint32_t seq = 0;
  Time sent_at = 0;
  bool encapsulated = false;
  std::uint32_t pad = 0;
};

/// Causal tracing context carried by every packet. A root span is opened
/// when an external action (subscribe, data emission, fault) originates a
/// packet; each wire transmission re-stamps `span_id` with a child span, so
/// the context a packet arrives with names the causal parent of whatever the
/// receiving agent does next. `trace_id == 0` means "not traced" — the
/// default for every packet when no tracer is attached, which keeps the
/// whole feature zero-cost on untraced runs.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
  [[nodiscard]] bool operator==(const TraceContext&) const noexcept = default;
};

enum class PacketType : std::uint8_t {
  kData,
  kJoin,
  kTree,
  kFusion,
  kPimJoin,
  kPimPrune,  ///< PIM explicit leave: tears down oifs toward the sender
};

[[nodiscard]] std::string to_string(PacketType t);

/// Number of PacketType values (for per-type counter arrays).
inline constexpr std::size_t kPacketTypeCount = 6;

/// Default initial TTL; generous for the ≤50-node topologies simulated here
/// while still bounding any forwarding loop a protocol bug could create.
inline constexpr int kDefaultTtl = 64;

struct Packet {
  Ipv4Addr src;        ///< unicast source address
  Ipv4Addr dst;        ///< unicast destination address (never class-D)
  Channel channel;     ///< the multicast channel this packet belongs to
  PacketType type = PacketType::kData;
  int ttl = kDefaultTtl;
  TraceContext trace;  ///< causal span context; inactive unless traced
  std::variant<DataPayload, JoinPayload, TreePayload, FusionPayload,
               PimJoinPayload>
      payload{};

  [[nodiscard]] DataPayload& data() { return std::get<DataPayload>(payload); }
  [[nodiscard]] const DataPayload& data() const {
    return std::get<DataPayload>(payload);
  }
  [[nodiscard]] JoinPayload& join() { return std::get<JoinPayload>(payload); }
  [[nodiscard]] const JoinPayload& join() const {
    return std::get<JoinPayload>(payload);
  }
  [[nodiscard]] TreePayload& tree() { return std::get<TreePayload>(payload); }
  [[nodiscard]] const TreePayload& tree() const {
    return std::get<TreePayload>(payload);
  }
  [[nodiscard]] FusionPayload& fusion() {
    return std::get<FusionPayload>(payload);
  }
  [[nodiscard]] const FusionPayload& fusion() const {
    return std::get<FusionPayload>(payload);
  }
  [[nodiscard]] PimJoinPayload& pim_join() {
    return std::get<PimJoinPayload>(payload);
  }
  [[nodiscard]] const PimJoinPayload& pim_join() const {
    return std::get<PimJoinPayload>(payload);
  }

  /// One-line human-readable description for traces.
  [[nodiscard]] std::string describe() const;
};

}  // namespace hbh::net
