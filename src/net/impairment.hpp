// Deterministic per-link fault injection.
//
// The protocols' fault-tolerance story is soft state: join/tree/fusion
// refreshes plus the t1/t2 timers are supposed to heal the tree after any
// disruption. To test that claim the fabric can impair each directed link
// independently: drop packets, duplicate them, delay them by a random
// jitter (which reorders them relative to later transmissions), and
// blackhole whole time windows (a flapping link the IGP has not noticed).
//
// Determinism contract (docs/RESILIENCE.md): every impaired link owns its
// own RNG stream, derived from (plane seed, link id), and every decision
// consumes a fixed number of draws. Consequences:
//   * two runs with the same seed and the same impairment config produce
//     byte-identical packet schedules;
//   * impairing link A never perturbs link B's outcomes;
//   * raising a probability (say loss 2% -> 5%) keeps all other decisions
//     on the same link unchanged — paired trials stay paired.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace hbh::net {

/// Per-directed-link impairment configuration. Default-constructed means
/// "transparent link" (and costs nothing on the packet path).
struct Impairment {
  double loss = 0.0;       ///< P(drop) per transmission
  double duplicate = 0.0;  ///< P(second copy) per surviving transmission
  double reorder = 0.0;    ///< P(extra jitter delay) per surviving copy
  Time jitter = 0.0;       ///< max extra delay for a reordered copy

  /// Blackhole windows [down, up): transmissions inside any window are
  /// dropped as link-down. Models link flaps the IGP never reacts to —
  /// a *routing-visible* failure is Session::set_link_down instead.
  std::vector<std::pair<Time, Time>> down_windows;

  [[nodiscard]] bool active() const noexcept {
    return loss > 0 || duplicate > 0 || reorder > 0 || !down_windows.empty();
  }
  [[nodiscard]] bool down_at(Time now) const noexcept {
    for (const auto& [down, up] : down_windows) {
      if (now >= down && now < up) return true;
    }
    return false;
  }
};

/// What the fabric should do with one transmission on an impaired link.
struct ImpairmentDecision {
  bool link_down = false;   ///< inside a blackhole window: drop as link-down
  bool drop = false;        ///< lost: drop as loss
  bool duplicate = false;   ///< schedule a second copy
  Time extra_delay = 0.0;   ///< jitter added to the original copy
  Time dup_extra_delay = 0.0;  ///< jitter added to the duplicate copy
};

/// Holds every link's impairment config and RNG stream. Lives inside the
/// Network; exposed separately so tests can pin the determinism contract
/// without a fabric.
class ImpairmentPlane {
 public:
  explicit ImpairmentPlane(std::uint64_t seed = kDefaultSeed) : seed_(seed) {}

  /// Reseeds the plane. Existing per-link streams are re-derived, so call
  /// this before configuring links (Session does).
  void reseed(std::uint64_t seed);
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Sets (replaces) the impairment of one directed link. The link's RNG
  /// stream is derived on first configuration and survives reconfiguration
  /// — tightening a probability mid-run keeps the stream position.
  void set(LinkId link, const Impairment& impairment);

  /// Resets one link / every link to transparent (streams are discarded).
  void clear(LinkId link);
  void clear_all();

  /// Null when the link is transparent.
  [[nodiscard]] const Impairment* get(LinkId link) const;

  [[nodiscard]] bool any_active() const noexcept { return active_links_ > 0; }

  /// Decides the fate of one transmission at virtual time `now`,
  /// consuming exactly five draws from the link's stream (fixed-count
  /// consumption is what keeps paired trials comparable).
  [[nodiscard]] ImpairmentDecision decide(LinkId link, Time now);

  static constexpr std::uint64_t kDefaultSeed = 0xFA17ED11ull;

 private:
  struct LinkState {
    Impairment config;
    Rng rng;
    bool configured = false;
  };

  [[nodiscard]] Rng derive_stream(LinkId link) const;

  std::uint64_t seed_;
  std::vector<LinkState> links_;  ///< indexed by LinkId; grown lazily
  std::size_t active_links_ = 0;
};

}  // namespace hbh::net
