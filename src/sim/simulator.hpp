// The discrete-event simulator driving every experiment.
//
// This replaces ns-2 for the paper's purposes: schedule callbacks at
// absolute or relative times, run until quiescence or a deadline, and query
// the current virtual time. Single-threaded and deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.hpp"
#include "util/ids.hpp"

namespace hbh::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Current virtual time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` time units from now. Requires delay >= 0.
  EventId schedule(Time delay, Callback fn);

  /// Schedules `fn` at absolute time `when`. Requires when >= now().
  EventId schedule_at(Time when, Callback fn);

  /// Cancels a pending event; false if it already fired or was cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains or `deadline` passes, whichever first.
  /// Returns the number of events executed.
  std::size_t run(Time deadline = std::numeric_limits<Time>::infinity());

  /// Runs events with timestamp <= now()+delta, then fast-forwards the clock
  /// to exactly now()+delta even if the queue drained earlier.
  std::size_t run_for(Time delta);

  /// Requests run() to stop after the current event returns.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// High-water mark of the pending-event queue (telemetry: how bursty the
  /// run was; reset() clears it).
  [[nodiscard]] std::size_t peak_pending() const noexcept {
    return peak_pending_;
  }

  /// Discards all pending events and resets the clock to zero.
  void reset();

  /// Read-only view of the event queue (slot-pool gauges).
  [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }

 private:
  EventId track(EventId id) noexcept {
    if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
    return id;
  }

  EventQueue queue_;
  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  std::size_t peak_pending_ = 0;
};

/// Repeating timer built on the simulator; used for the paper's periodic
/// join and tree messages. The callback runs every `period` until stop().
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& simulator, Time period, Simulator::Callback fn);
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arms the timer: first firing after `initial_delay` (default: period).
  void start(Time initial_delay = -1);

  /// Disarms the timer; no further firings.
  void stop();

  [[nodiscard]] bool running() const noexcept { return pending_.valid(); }
  [[nodiscard]] Time period() const noexcept { return period_; }

 private:
  void fire();

  Simulator& sim_;
  Time period_;
  Simulator::Callback fn_;
  EventId pending_{};
};

}  // namespace hbh::sim
