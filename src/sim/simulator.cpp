#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

#include "util/log.hpp"

namespace hbh::sim {

EventId Simulator::schedule(Time delay, Callback fn) {
  assert(delay >= 0);
  return track(queue_.push(now_ + delay, std::move(fn)));
}

EventId Simulator::schedule_at(Time when, Callback fn) {
  assert(when >= now_);
  return track(queue_.push(when, std::move(fn)));
}

std::size_t Simulator::run(Time deadline) {
  // Stamp log lines with virtual time while events execute, so protocol
  // traces line up with telemetry sampler timestamps.
  ScopedLogTime log_time{[this] { return now_; }};
  stopped_ = false;
  std::size_t count = 0;
  while (!queue_.empty() && !stopped_) {
    if (queue_.next_time() > deadline) break;
    auto [when, fn] = queue_.pop();
    assert(when >= now_);
    now_ = when;
    fn();
    ++count;
    ++executed_;
  }
  return count;
}

std::size_t Simulator::run_for(Time delta) {
  assert(delta >= 0);
  const Time target = now_ + delta;
  const std::size_t count = run(target);
  if (!stopped_ && now_ < target) now_ = target;
  return count;
}

void Simulator::reset() {
  queue_.clear();
  now_ = 0;
  stopped_ = false;
  executed_ = 0;
  peak_pending_ = 0;
}

PeriodicTimer::PeriodicTimer(Simulator& simulator, Time period,
                             Simulator::Callback fn)
    : sim_(simulator), period_(period), fn_(std::move(fn)) {
  assert(period_ > 0);
  assert(fn_ != nullptr);
}

void PeriodicTimer::start(Time initial_delay) {
  stop();
  const Time first = initial_delay < 0 ? period_ : initial_delay;
  pending_ = sim_.schedule(first, [this] { fire(); });
}

void PeriodicTimer::stop() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = EventId{};
  }
}

void PeriodicTimer::fire() {
  pending_ = sim_.schedule(period_, [this] { fire(); });
  fn_();
}

}  // namespace hbh::sim
