#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace hbh::sim {

namespace {

constexpr std::uint64_t encode(std::uint32_t slot, std::uint32_t gen) noexcept {
  return ((static_cast<std::uint64_t>(slot) + 1) << 32) | gen;
}

}  // namespace

EventId EventQueue::push(Time when, Callback fn) {
  assert(fn != nullptr);
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  slots_[slot].fn = std::move(fn);
  const std::uint32_t gen = slots_[slot].gen;
  heap_.push(Entry{when, next_seq_++, slot, gen});
  ++live_;
  return EventId{encode(slot, gen)};
}

bool EventQueue::cancel(EventId id) {
  const std::uint64_t hi = id.v >> 32;
  if (hi == 0 || hi > slots_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(hi - 1);
  const auto gen = static_cast<std::uint32_t>(id.v);
  // A generation match means the event is still pending: firing or
  // cancelling bumps the slot's generation exactly once.
  if (slots_[slot].gen != gen) return false;
  // Release the callback only after the books balance: its captured state
  // may have a destructor that re-enters the queue.
  Callback released = std::move(slots_[slot].fn);
  retire_slot(slot);
  --live_;
  return true;
}

void EventQueue::retire_slot(std::uint32_t slot) {
  ++slots_[slot].gen;
  slots_[slot].fn = nullptr;
  free_slots_.push_back(slot);
}

void EventQueue::skip_dead() {
  while (!heap_.empty() && dead(heap_.top())) {
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);  // skip_dead is logically const
  self->skip_dead();
  assert(!self->heap_.empty());
  return self->heap_.top().when;
}

EventQueue::Fired EventQueue::pop() {
  skip_dead();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  // The callback moves straight out of the slot — the heap holds none, so
  // firing an event never copies a std::function.
  Fired fired{top.when, std::move(slots_[top.slot].fn)};
  retire_slot(top.slot);
  --live_;
  heap_.pop();
  return fired;
}

void EventQueue::clear() {
  heap_ = {};
  // Bump every slot's generation so ids issued before the clear can never
  // alias an event pushed after it.
  free_slots_.clear();
  free_slots_.reserve(slots_.size());
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    ++slots_[slot].gen;
    slots_[slot].fn = nullptr;
    free_slots_.push_back(slot);
  }
  live_ = 0;
}

}  // namespace hbh::sim
