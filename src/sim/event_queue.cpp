#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace hbh::sim {

EventId EventQueue::push(Time when, Callback fn) {
  assert(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(fn)});
  pending_.insert(seq);
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  // An event is cancellable iff it is still pending: erase() distinguishes
  // live events from already-fired or already-cancelled ones.
  return id.valid() && pending_.erase(id.v) == 1;
}

void EventQueue::skip_dead() {
  while (!heap_.empty() && !pending_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);  // skip_dead is logically const
  self->skip_dead();
  assert(!self->heap_.empty());
  return self->heap_.top().when;
}

EventQueue::Fired EventQueue::pop() {
  skip_dead();
  assert(!heap_.empty());
  // priority_queue::top() returns const&; moving the callback out requires
  // a const_cast. The entry is popped immediately after, so this is safe.
  auto& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.when, std::move(top.fn)};
  pending_.erase(top.seq);
  heap_.pop();
  return fired;
}

void EventQueue::clear() {
  heap_ = {};
  pending_.clear();
}

}  // namespace hbh::sim
