// Deterministic discrete-event priority queue.
//
// Events fire in (time, sequence) order: two events scheduled for the same
// instant execute in the order they were scheduled. That FIFO tie-break is
// what makes every simulation in this repo bit-for-bit reproducible.
// Cancellation is O(1) via tombstoning — cancelled events stay in the heap
// and are skipped on pop, which is far cheaper than heap removal for the
// soft-state timer churn the multicast protocols generate.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/ids.hpp"

namespace hbh::sim {

/// Opaque handle identifying a scheduled event (for cancellation).
struct EventId {
  std::uint64_t v = 0;
  [[nodiscard]] constexpr bool valid() const noexcept { return v != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;
};

/// Min-heap of timestamped callbacks with stable same-time ordering.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Enqueues `fn` to fire at absolute time `when`.
  EventId push(Time when, Callback fn);

  /// Cancels a pending event. Returns false if it already fired, was
  /// already cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }

  /// Time of the earliest pending event; undefined when empty().
  [[nodiscard]] Time next_time() const;

  /// Pops and returns the earliest event. Requires !empty().
  struct Fired {
    Time when;
    Callback fn;
  };
  Fired pop();

  /// Drops all pending events.
  void clear();

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Discards cancelled entries at the top of the heap.
  void skip_dead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;  // live (un-fired, un-cancelled)
  std::uint64_t next_seq_ = 1;
};

}  // namespace hbh::sim
