// Deterministic discrete-event priority queue.
//
// Events fire in (time, sequence) order: two events scheduled for the same
// instant execute in the order they were scheduled. That FIFO tie-break is
// what makes every simulation in this repo bit-for-bit reproducible.
// Cancellation is O(1) via generation-stamped handles: an EventId packs a
// liveness slot index and the slot's generation at push time, and firing or
// cancelling bumps the generation, so stale heap entries (and stale ids)
// are recognized by a single array compare. Cancelled events stay in the
// heap and are skipped on pop — far cheaper than heap removal for the
// soft-state timer churn the multicast protocols generate, and unlike the
// hash-set tombstone scheme this replaces, push/cancel never allocate once
// the slot pool is warm. Callbacks live in the slot pool rather than the
// heap, so heap maintenance shuffles small PODs and a cancelled event's
// captured state is released at cancel time, not when the tombstone
// finally surfaces.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/ids.hpp"

namespace hbh::sim {

/// Opaque handle identifying a scheduled event (for cancellation).
/// Packs (slot + 1, generation); 0 is the invalid id.
struct EventId {
  std::uint64_t v = 0;
  [[nodiscard]] constexpr bool valid() const noexcept { return v != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;
};

/// Min-heap of timestamped callbacks with stable same-time ordering.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Enqueues `fn` to fire at absolute time `when`.
  EventId push(Time when, Callback fn);

  /// Cancels a pending event. Returns false if it already fired, was
  /// already cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  // --- Slot-pool observability (telemetry gauges, docs/OBSERVABILITY.md).
  // A healthy steady state allocates a pool once and then recycles it:
  // total_pushes() grows without bound while slots_allocated() plateaus.

  /// Callback slots ever allocated (the warm pool size).
  [[nodiscard]] std::size_t slots_allocated() const noexcept {
    return slots_.size();
  }
  /// Slots currently retired and awaiting reuse.
  [[nodiscard]] std::size_t slots_free() const noexcept {
    return free_slots_.size();
  }
  /// Events ever pushed; pushes beyond slots_allocated() reused a slot.
  [[nodiscard]] std::uint64_t total_pushes() const noexcept {
    return next_seq_ - 1;
  }

  /// Time of the earliest pending event; undefined when empty().
  [[nodiscard]] Time next_time() const;

  /// Pops and returns the earliest event. Requires !empty().
  struct Fired {
    Time when;
    Callback fn;
  };
  Fired pop();

  /// Drops all pending events. Ids issued before the clear are dead: they
  /// can never cancel an event pushed afterwards.
  void clear();

 private:
  /// Heap entries are 24-byte trivially-copyable PODs: the callback lives
  /// in the entry's slot, not the heap, so sift-up/down moves are plain
  /// memcpys instead of std::function move/destroy calls.
  struct Entry {
    Time when;
    std::uint64_t seq;   ///< global schedule order (same-time FIFO)
    std::uint32_t slot;  ///< slot backing this entry (liveness + callback)
    std::uint32_t gen;   ///< slot generation at push time
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    std::uint32_t gen = 0;  ///< bumped on fire/cancel/clear
    Callback fn;
  };

  /// True when the entry was cancelled or already fired (its slot moved on).
  [[nodiscard]] bool dead(const Entry& e) const noexcept {
    return slots_[e.slot].gen != e.gen;
  }

  /// Invalidates every outstanding reference to `slot` and recycles it.
  /// The slot's callback must already be released/moved out.
  void retire_slot(std::uint32_t slot);

  /// Discards cancelled entries at the top of the heap.
  void skip_dead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;  ///< slots available for reuse
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;  ///< pending (un-fired, un-cancelled) events
};

}  // namespace hbh::sim
