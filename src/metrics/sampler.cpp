#include "metrics/sampler.hpp"

namespace hbh::metrics {

StateSampler::StateSampler(sim::Simulator& simulator, Registry& registry,
                           Time period, std::size_t max_samples)
    : sim_(simulator),
      registry_(registry),
      max_samples_(max_samples),
      timer_(simulator, period, [this] { sample_now(); }) {}

void StateSampler::start() {
  sample_now();
  timer_.start();
}

void StateSampler::sample_now() {
  if (samples_ >= max_samples_) {
    truncated_ = true;
    return;
  }
  const Time now = sim_.now();
  for (const auto& [name, gauge] : registry_.gauges()) {
    Series& s = series_[name];
    s.t.push_back(now);
    s.v.push_back(gauge->value());
  }
  ++samples_;
}

}  // namespace hbh::metrics
