// Perf baselines (schema "hbh.perf_baseline/v1") and regression checks.
//
// A baseline file pins expected values for a handful of metrics from one
// bench's JSON artifact (BENCH_perf_smoke.json, BENCH_perf_dataplane.json,
// ...), each with a per-metric noise threshold chosen for how reproducible
// that metric is: simulation-derived counts are deterministic and get a
// tight band, wall-clock throughput varies machine to machine and gets a
// wide one. tools/perf_compare diffs a fresh artifact against the
// committed bench/baselines/*.json and exits nonzero on regression; CI
// runs it as a report-only gate (docs/PERFORMANCE.md "Recording and
// comparing baselines").
//
// Baseline file shape:
//   {
//     "schema": "hbh.perf_baseline/v1",
//     "bench": "perf_dataplane",
//     "metrics": {
//       "protocols.HBH.packets_per_second":
//           {"value": 1.0e6, "noise": 0.90, "direction": "higher"},
//       "protocols.HBH.data_packets":
//           {"value": 4224, "noise": 0.50, "direction": "band"}
//     }
//   }
//
// Metric names address the bench artifact after flattening: object members
// join with ".", array elements use their "name" member when present
// (else the index) — e.g. the perf_smoke micro array entry
// {"name": "event_queue_push_pop", "items_per_second": ...} flattens to
// "micro.event_queue_push_pop.items_per_second".
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/json_parse.hpp"

namespace hbh::metrics {

inline constexpr std::string_view kPerfBaselineSchema = "hbh.perf_baseline/v1";

/// Which deviations from the pinned value count as a regression.
enum class BaselineDirection {
  kHigher,  ///< metric is a throughput: regress when below value*(1-noise)
  kLower,   ///< metric is a cost: regress when above value*(1+noise)
  kBand,    ///< deterministic count: regress when outside value*(1±noise)
};

struct BaselineMetric {
  double value = 0.0;
  double noise = 0.25;  ///< allowed relative deviation (0.25 = ±25%)
  BaselineDirection direction = BaselineDirection::kHigher;
};

struct Baseline {
  std::string bench;
  std::map<std::string, BaselineMetric> metrics;
};

/// Parses an already-loaded baseline document; false + message on schema
/// mismatch or malformed metrics.
[[nodiscard]] bool parse_baseline(const JsonValue& doc, Baseline& out,
                                  std::string* error = nullptr);

/// Flattens every number (and bool, as 0/1) reachable from `v` into
/// dotted-path keys under `prefix` (see the header comment for the rule).
void flatten_numbers(const JsonValue& v, const std::string& prefix,
                     std::map<std::string, double>& out);

enum class MetricStatus { kPass, kRegressed, kMissing };

struct MetricComparison {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double noise = 0.0;  ///< effective allowed deviation (after tolerance)
  BaselineDirection direction = BaselineDirection::kHigher;
  MetricStatus status = MetricStatus::kPass;
};

struct CompareReport {
  std::vector<MetricComparison> metrics;

  [[nodiscard]] std::size_t regressed() const;
  [[nodiscard]] std::size_t missing() const;
  [[nodiscard]] bool ok() const { return regressed() == 0 && missing() == 0; }
};

/// Checks `current` (a parsed bench artifact) against `baseline`.
/// `tolerance_scale` multiplies every noise threshold (HBH_PERF_TOLERANCE;
/// >1 loosens the gate on noisy machines).
[[nodiscard]] CompareReport compare_to_baseline(const Baseline& baseline,
                                                const JsonValue& current,
                                                double tolerance_scale = 1.0);

[[nodiscard]] std::string_view to_string(BaselineDirection d) noexcept;
[[nodiscard]] std::string_view to_string(MetricStatus s) noexcept;

}  // namespace hbh::metrics
