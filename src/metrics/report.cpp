#include "metrics/report.hpp"

#include <fstream>

namespace hbh::metrics {

void RunReport::write_body(JsonWriter& w) const {
  if (!info.empty()) {
    w.key("info");
    w.begin_object();
    for (const auto& [k, v] : info) w.member(k, std::string_view{v});
    w.end_object();
  }
  if (!numbers.empty()) {
    w.key("numbers");
    w.begin_object();
    for (const auto& [k, v] : numbers) w.member(k, v);
    w.end_object();
  }

  if (registry != nullptr) {
    w.key("counters");
    w.begin_object();
    for (const auto& [name, c] : registry->counters()) {
      w.member(name, c->value());
    }
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [name, g] : registry->gauges()) {
      w.member(name, g->value());
    }
    w.end_object();
    if (!registry->histograms().empty()) {
      w.key("histograms");
      w.begin_object();
      for (const auto& [name, h] : registry->histograms()) {
        w.key(name);
        w.begin_object();
        w.key("bounds");
        w.begin_array();
        for (const double b : h->bounds()) w.value(b);
        w.end_array();
        w.key("counts");
        w.begin_array();
        for (const std::uint64_t c : h->counts()) w.value(c);
        w.end_array();
        w.member("sum", h->sum());
        w.member("count", h->count());
        w.member("p50", h->quantile(0.50));
        w.member("p95", h->quantile(0.95));
        w.member("p99", h->quantile(0.99));
        w.end_object();
      }
      w.end_object();
    }
  }

  if (sampler != nullptr) {
    w.key("series");
    w.begin_object();
    for (const auto& [name, s] : sampler->series()) {
      w.key(name);
      w.begin_object();
      w.key("t");
      w.begin_array();
      for (const Time t : s.t) w.value(t);
      w.end_array();
      w.key("v");
      w.begin_array();
      for (const double v : s.v) w.value(v);
      w.end_array();
      w.end_object();
    }
    w.end_object();
    w.member("sample_period", sampler->period());
    w.member("samples_truncated", sampler->truncated());
  }

  if (trace != nullptr) {
    const auto counts = trace->histogram();
    const auto bytes = trace->bytes_histogram();
    w.key("messages");
    w.begin_object();
    for (const auto& [type, count] : counts) {
      w.key(net::to_string(type));
      w.begin_object();
      w.member("count", count);
      const auto it = bytes.find(type);
      w.member("bytes", it == bytes.end() ? std::uint64_t{0}
                                          : std::uint64_t{it->second});
      w.end_object();
    }
    w.end_object();
    w.member("messages_truncated", trace->truncated());
    w.member("messages_dropped", trace->dropped());
  }

  if (tracer != nullptr) {
    w.key("trace");
    w.begin_object();
    w.member("schema", kTraceSchema);
    w.member("spans_recorded",
             static_cast<std::uint64_t>(tracer->spans().size()));
    w.member("spans_dropped", tracer->dropped());
    w.member("truncated", tracer->truncated());
    w.end_object();
  }

  if (profile != nullptr && !profile->empty()) {
    w.key("perf_profile");
    write_perf_profile(w, *profile);
  }

  if (convergence != nullptr) {
    w.key("convergence");
    w.begin_object();
    w.key("grafts");
    w.begin_array();
    for (const GraftTimeline& g : convergence->grafts) {
      w.begin_object();
      w.member("receiver", std::string_view{g.receiver.to_string()});
      w.member("subscribed_at", g.subscribed_at);
      w.member("join_to_first_delivery", g.join_to_first_delivery);
      w.member("control_messages", g.control_messages);
      w.end_object();
    }
    w.end_array();
    w.key("leaves");
    w.begin_array();
    for (const LeaveTimeline& l : convergence->leaves) {
      w.begin_object();
      w.member("receiver", std::string_view{l.receiver.to_string()});
      w.member("unsubscribed_at", l.unsubscribed_at);
      w.member("leave_to_prune", l.leave_to_prune);
      w.end_object();
    }
    w.end_array();
    w.member("mean_join_to_first_delivery",
             convergence->mean_join_to_first_delivery());
    w.member("mean_leave_to_prune", convergence->mean_leave_to_prune());
    w.member("mean_control_per_graft",
             convergence->mean_control_per_graft());
    w.member("undelivered_grafts",
             static_cast<std::uint64_t>(convergence->undelivered_grafts()));
    w.end_object();
  }
}

void RunReport::write(std::ostream& out) const {
  JsonWriter w{out};
  w.begin_object();
  w.member("schema", kRunReportSchema);
  write_body(w);
  w.end_object();
  out << '\n';
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  write(out);
  return out.good();
}

}  // namespace hbh::metrics
