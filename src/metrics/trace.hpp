// Structured message tracing and tree rendering.
//
// MessageTrace is a PacketTap that records every transmission as a typed
// record (queryable by type/channel/time window) — the tooling equivalent
// of ns-2's trace files. render_tree() turns a measured per-link copy map
// into the indented ASCII tree the examples print.
#pragma once

#include <functional>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"

namespace hbh::metrics {

/// One recorded transmission.
struct TraceRecord {
  Time at = 0;
  NodeId from;
  NodeId to;
  net::PacketType type = net::PacketType::kData;
  net::Channel channel;
  Ipv4Addr src;
  Ipv4Addr dst;
  std::string detail;  ///< type-specific summary (target, receiver, ...)
};

class MessageTrace : public net::PacketTap {
 public:
  /// Record at most `capacity` entries (older entries are kept; recording
  /// simply stops — bounded memory for long runs).
  explicit MessageTrace(std::size_t capacity = 100000)
      : capacity_(capacity) {}

  void on_transmit(const net::Topology::Edge& edge, const net::Packet& packet,
                   Time now) override;

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  /// Transmissions that arrived after capacity was reached (not recorded).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  void clear() {
    records_.clear();
    bytes_.clear();  // parallel to records_ — must reset together
    truncated_ = false;
    dropped_ = 0;
  }

  /// Records of one type, optionally restricted to [from, to) time.
  [[nodiscard]] std::vector<TraceRecord> of_type(
      net::PacketType type, Time from = 0,
      Time to = std::numeric_limits<Time>::infinity()) const;

  /// Count per packet type (control overhead breakdown).
  [[nodiscard]] std::map<net::PacketType, std::size_t> histogram() const;

  /// Total encoded bytes per packet type, using the wire codec sizes.
  [[nodiscard]] std::map<net::PacketType, std::size_t> bytes_histogram()
      const;

  /// Multi-line human-readable dump (for examples / debugging).
  [[nodiscard]] std::string to_string(std::size_t max_lines = 50) const;

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> records_;
  std::vector<std::size_t> bytes_;  ///< parallel to records_
  bool truncated_ = false;
  std::uint64_t dropped_ = 0;  ///< records lost to the capacity cap
};

/// Renders a measured distribution tree (Measurement::per_link) as an
/// indented ASCII tree rooted at `root`. Links not reachable from the root
/// (shouldn't happen in a converged tree) are listed separately.
[[nodiscard]] std::string render_tree(
    const std::map<std::pair<NodeId, NodeId>, std::size_t>& per_link,
    NodeId root);

}  // namespace hbh::metrics
