// Machine-readable run reports (schema "hbh.run_report/v1").
//
// A RunReport bundles everything one instrumented run produced — free-form
// metadata, the Registry's counters/gauges/histograms, the StateSampler's
// time series, and a MessageTrace's per-type message/byte summary — and
// serializes it to JSON. Benches opt in with HBH_REPORT=path.json (see
// docs/OBSERVABILITY.md for the schema), giving every future perf PR a
// baseline artifact to diff against.
#pragma once

#include <map>
#include <ostream>
#include <string>

#include "metrics/json.hpp"
#include "metrics/profiler.hpp"
#include "metrics/registry.hpp"
#include "metrics/sampler.hpp"
#include "metrics/trace.hpp"
#include "metrics/tracer.hpp"

namespace hbh::metrics {

inline constexpr std::string_view kRunReportSchema = "hbh.run_report/v1";

struct RunReport {
  /// Free-form string metadata ("protocol", "topology", ...).
  std::map<std::string, std::string> info;
  /// Free-form numeric metadata ("wall_seconds", "probe.tree_cost", ...).
  std::map<std::string, double> numbers;

  /// Optional sections; null pointers are simply omitted from the JSON.
  const Registry* registry = nullptr;
  const StateSampler* sampler = nullptr;
  const MessageTrace* trace = nullptr;
  const Tracer* tracer = nullptr;                 ///< causal span summary
  const ConvergenceSummary* convergence = nullptr;
  /// Aggregated phase profile (schema hbh.perf_profile/v1); omitted when
  /// null or empty. Phase counts are deterministic at any HBH_JOBS;
  /// timings are excluded from byte-identity checks.
  const PhaseMap* profile = nullptr;

  /// Writes the report's keys into an already-open JSON object — lets a
  /// caller embed several runs in one document (harness::write_run_report).
  void write_body(JsonWriter& w) const;

  /// Writes a standalone {schema, ...} document.
  void write(std::ostream& out) const;

  /// Writes to `path`; false if the file could not be created.
  [[nodiscard]] bool write_file(const std::string& path) const;
};

}  // namespace hbh::metrics
