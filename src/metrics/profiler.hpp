// Serialization of phase profiles (schema "hbh.perf_profile/v1").
//
// The profiler core lives in src/util/profiler.hpp so the instrumented
// layers (routing, sim, mcast) can open HBH_PHASE scopes without a
// dependency cycle; this header re-exports the types under hbh::metrics
// and adds the JSON side: the per-protocol "perf_profile" section of the
// run report and the standalone profile document written for
// HBH_PROF_OUT (see docs/OBSERVABILITY.md "Phase profiling").
//
// Timings (wall_ns, cpu_ns) vary run to run and are excluded from the
// repo's byte-identity checks; phase *counts* are deterministic and must
// be byte-identical at any HBH_JOBS.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "metrics/json.hpp"
#include "util/profiler.hpp"

namespace hbh::metrics {

using prof::PhaseAggregator;
using prof::PhaseMap;
using prof::PhaseProfiler;
using prof::PhaseScope;
using prof::PhaseStats;
using prof::ScopedProfiler;

inline constexpr std::string_view kPerfProfileSchema = "hbh.perf_profile/v1";

/// Writes a "phases" object value: {"<path>": {count, wall_ns, cpu_ns,
/// allocs, alloc_bytes}, ...}. Expects the writer positioned for a value.
void write_phase_map(JsonWriter& w, const PhaseMap& phases);

/// Writes a full perf_profile section value: {"schema", "phases",
/// "resources": {peak_rss_bytes, alloc_counting}}.
void write_perf_profile(JsonWriter& w, const PhaseMap& phases);

/// Writes a standalone {schema, info, labels: {<label>: {phases}}, resources}
/// document for every label in `by_label` (the HBH_PROF_OUT artifact);
/// false if the file could not be created.
[[nodiscard]] bool write_profile_file(
    const std::map<std::string, PhaseMap>& by_label,
    const std::map<std::string, std::string>& info, const std::string& path);

}  // namespace hbh::metrics
