#include "metrics/registry.hpp"

namespace hbh::metrics {

namespace {

template <typename T, typename Make>
T& find_or_create(std::map<std::string, std::unique_ptr<T>>& map,
                  std::string_view name, Make make) {
  const auto it = map.find(std::string{name});
  if (it != map.end()) return *it->second;
  auto [inserted, ok] = map.emplace(std::string{name}, make());
  (void)ok;
  return *inserted->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_create(counters_, name, [this] {
    return std::unique_ptr<Counter>{new Counter{&enabled_}};
  });
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create(gauges_, name, [this] {
    return std::unique_ptr<Gauge>{new Gauge{&enabled_}};
  });
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  return find_or_create(histograms_, name, [this, &bounds] {
    return std::unique_ptr<Histogram>{
        new Histogram{&enabled_, std::move(bounds)}};
  });
}

Gauge& Registry::bind_gauge(std::string_view name,
                            std::function<double()> provider) {
  Gauge& g = gauge(name);
  g.bind(std::move(provider));
  return g;
}

}  // namespace hbh::metrics
