#include "metrics/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace hbh::metrics {

namespace {

bool parse_direction(std::string_view text, BaselineDirection& out) {
  if (text == "higher") {
    out = BaselineDirection::kHigher;
  } else if (text == "lower") {
    out = BaselineDirection::kLower;
  } else if (text == "band") {
    out = BaselineDirection::kBand;
  } else {
    return false;
  }
  return true;
}

}  // namespace

bool parse_baseline(const JsonValue& doc, Baseline& out, std::string* error) {
  out = Baseline{};
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kPerfBaselineSchema) {
    if (error != nullptr) {
      *error = std::string("expected schema \"") +
               std::string(kPerfBaselineSchema) + "\"";
    }
    return false;
  }
  if (const JsonValue* bench = doc.find("bench");
      bench != nullptr && bench->is_string()) {
    out.bench = bench->string;
  }
  const JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    if (error != nullptr) *error = "baseline has no \"metrics\" object";
    return false;
  }
  for (const auto& [name, m] : metrics->object) {
    BaselineMetric bm;
    const JsonValue* value = m.find("value");
    if (value == nullptr || !value->is_number()) {
      if (error != nullptr) *error = "metric \"" + name + "\" has no value";
      return false;
    }
    bm.value = value->number;
    if (const JsonValue* noise = m.find("noise");
        noise != nullptr && noise->is_number()) {
      bm.noise = noise->number;
    }
    if (const JsonValue* dir = m.find("direction");
        dir != nullptr && dir->is_string()) {
      if (!parse_direction(dir->string, bm.direction)) {
        if (error != nullptr) {
          *error = "metric \"" + name + "\" has invalid direction \"" +
                   dir->string + "\"";
        }
        return false;
      }
    }
    out.metrics.emplace(name, bm);
  }
  return true;
}

void flatten_numbers(const JsonValue& v, const std::string& prefix,
                     std::map<std::string, double>& out) {
  switch (v.kind) {
    case JsonValue::Kind::kNumber:
      if (!prefix.empty()) out[prefix] = v.number;
      return;
    case JsonValue::Kind::kBool:
      if (!prefix.empty()) out[prefix] = v.boolean ? 1.0 : 0.0;
      return;
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : v.object) {
        flatten_numbers(member, prefix.empty() ? key : prefix + "." + key,
                        out);
      }
      return;
    case JsonValue::Kind::kArray:
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        const JsonValue& elem = v.array[i];
        std::string label = std::to_string(i);
        if (const JsonValue* name = elem.find("name");
            name != nullptr && name->is_string()) {
          label = name->string;
        }
        flatten_numbers(elem, prefix.empty() ? label : prefix + "." + label,
                        out);
      }
      return;
    case JsonValue::Kind::kNull:
    case JsonValue::Kind::kString:
      return;
  }
}

std::size_t CompareReport::regressed() const {
  return static_cast<std::size_t>(
      std::count_if(metrics.begin(), metrics.end(), [](const auto& m) {
        return m.status == MetricStatus::kRegressed;
      }));
}

std::size_t CompareReport::missing() const {
  return static_cast<std::size_t>(
      std::count_if(metrics.begin(), metrics.end(), [](const auto& m) {
        return m.status == MetricStatus::kMissing;
      }));
}

CompareReport compare_to_baseline(const Baseline& baseline,
                                  const JsonValue& current,
                                  double tolerance_scale) {
  std::map<std::string, double> flat;
  flatten_numbers(current, "", flat);

  CompareReport report;
  for (const auto& [name, bm] : baseline.metrics) {
    MetricComparison cmp;
    cmp.name = name;
    cmp.baseline = bm.value;
    cmp.noise = bm.noise * tolerance_scale;
    cmp.direction = bm.direction;
    const auto it = flat.find(name);
    if (it == flat.end()) {
      cmp.status = MetricStatus::kMissing;
      report.metrics.push_back(std::move(cmp));
      continue;
    }
    cmp.current = it->second;
    // Bounds scale with |value| so "band" works for counts of any size;
    // noise >= 1 with direction "higher" makes the bound negative, i.e.
    // the metric only gates on being present.
    const double spread = cmp.noise * std::abs(bm.value);
    const double lo = bm.value - spread;
    const double hi = bm.value + spread;
    const bool too_low = cmp.current < lo;
    const bool too_high = cmp.current > hi;
    bool regressed = false;
    switch (bm.direction) {
      case BaselineDirection::kHigher:
        regressed = too_low;
        break;
      case BaselineDirection::kLower:
        regressed = too_high;
        break;
      case BaselineDirection::kBand:
        regressed = too_low || too_high;
        break;
    }
    cmp.status = regressed ? MetricStatus::kRegressed : MetricStatus::kPass;
    report.metrics.push_back(std::move(cmp));
  }
  return report;
}

std::string_view to_string(BaselineDirection d) noexcept {
  switch (d) {
    case BaselineDirection::kHigher:
      return "higher";
    case BaselineDirection::kLower:
      return "lower";
    case BaselineDirection::kBand:
      return "band";
  }
  return "?";
}

std::string_view to_string(MetricStatus s) noexcept {
  switch (s) {
    case MetricStatus::kPass:
      return "ok";
    case MetricStatus::kRegressed:
      return "REGRESSED";
    case MetricStatus::kMissing:
      return "MISSING";
  }
  return "?";
}

}  // namespace hbh::metrics
