// Minimal recursive-descent JSON parser for the perf tooling.
//
// The simulator only ever *wrote* JSON (JsonWriter); the baseline
// regression checker (tools/perf_compare) must also *read* the bench
// artifacts and the committed bench/baselines/*.json, so this adds the
// smallest DOM that covers them: objects, arrays, strings, numbers,
// booleans, null, UTF-8 passed through verbatim, \uXXXX escapes decoded.
// No third-party dependency, same as the writer.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hbh::metrics {

/// A parsed JSON value. Object members keep document order (the writer
/// emits sorted keys anyway); lookup is linear — documents here are small.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }

  /// Object member by key; nullptr if absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Nested lookup: find("a", "b") == find("a")->find("b").
  template <typename... Rest>
  [[nodiscard]] const JsonValue* find(std::string_view key,
                                      Rest... rest) const {
    const JsonValue* v = find(key);
    return v == nullptr ? nullptr : v->find(rest...);
  }
};

/// Parses `text` into `out`. On failure returns false and, when `error`
/// is non-null, stores a message with the byte offset.
[[nodiscard]] bool parse_json(std::string_view text, JsonValue& out,
                              std::string* error = nullptr);

/// Reads and parses a file; false on I/O or parse failure.
[[nodiscard]] bool parse_json_file(const std::string& path, JsonValue& out,
                                   std::string* error = nullptr);

}  // namespace hbh::metrics
