#include "metrics/trace.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

#include "net/wire.hpp"

namespace hbh::metrics {

void MessageTrace::on_transmit(const net::Topology::Edge& edge,
                               const net::Packet& packet, Time now) {
  if (records_.size() >= capacity_) {
    truncated_ = true;
    ++dropped_;
    return;
  }
  TraceRecord rec;
  rec.at = now;
  rec.from = edge.from;
  rec.to = edge.to;
  rec.type = packet.type;
  rec.channel = packet.channel;
  rec.src = packet.src;
  rec.dst = packet.dst;
  switch (packet.type) {
    case net::PacketType::kJoin:
      rec.detail = "R=" + packet.join().receiver.to_string() +
                   (packet.join().first ? " first" : "") +
                   (packet.join().fresh ? " fresh" : "");
      break;
    case net::PacketType::kTree:
      rec.detail = "R=" + packet.tree().target.to_string() +
                   " wave=" + std::to_string(packet.tree().wave) +
                   (packet.tree().marked ? " marked" : "");
      break;
    case net::PacketType::kFusion:
      rec.detail = "origin=" + packet.fusion().origin.to_string() + " n=" +
                   std::to_string(packet.fusion().receivers.size());
      break;
    case net::PacketType::kPimJoin:
    case net::PacketType::kPimPrune:
      rec.detail = "root=" + packet.pim_join().root.to_string();
      break;
    case net::PacketType::kData:
      rec.detail = "seq=" + std::to_string(packet.data().seq);
      break;
  }
  bytes_.push_back(net::encoded_size(packet));
  records_.push_back(std::move(rec));
}

std::vector<TraceRecord> MessageTrace::of_type(net::PacketType type, Time from,
                                               Time to) const {
  std::vector<TraceRecord> out;
  for (const auto& rec : records_) {
    if (rec.type == type && rec.at >= from && rec.at < to) {
      out.push_back(rec);
    }
  }
  return out;
}

std::map<net::PacketType, std::size_t> MessageTrace::histogram() const {
  std::map<net::PacketType, std::size_t> out;
  for (const auto& rec : records_) ++out[rec.type];
  return out;
}

std::map<net::PacketType, std::size_t> MessageTrace::bytes_histogram() const {
  std::map<net::PacketType, std::size_t> out;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    out[records_[i].type] += bytes_[i];
  }
  return out;
}

std::string MessageTrace::to_string(std::size_t max_lines) const {
  std::ostringstream out;
  std::size_t shown = 0;
  for (const auto& rec : records_) {
    if (shown++ >= max_lines) {
      out << "... (" << records_.size() - max_lines << " more)\n";
      break;
    }
    out << "t=" << rec.at << ' ' << hbh::to_string(rec.from) << "->"
        << hbh::to_string(rec.to) << ' ' << net::to_string(rec.type) << ' '
        << rec.detail << '\n';
  }
  return out.str();
}

std::string render_tree(
    const std::map<std::pair<NodeId, NodeId>, std::size_t>& per_link,
    NodeId root) {
  std::map<NodeId, std::vector<std::pair<NodeId, std::size_t>>> children;
  std::set<std::pair<std::uint32_t, std::uint32_t>> rendered;
  for (const auto& [link, copies] : per_link) {
    children[link.first].emplace_back(link.second, copies);
  }

  std::ostringstream out;
  // Depth-first from the root. A node may appear multiple times if
  // several copies traverse it — render each child edge once.
  const std::function<void(NodeId, int)> walk = [&](NodeId at, int depth) {
    const auto it = children.find(at);
    if (it == children.end()) return;
    for (const auto& [child, copies] : it->second) {
      if (!rendered.insert({at.index(), child.index()}).second) continue;
      for (int i = 0; i < depth; ++i) out << "  ";
      out << "+- " << hbh::to_string(child);
      if (copies > 1) out << " (x" << copies << ")";
      out << '\n';
      walk(child, depth + 1);
    }
  };
  out << hbh::to_string(root) << '\n';
  walk(root, 1);

  // Any unrendered links are disconnected from the root (diagnostic aid).
  bool header = false;
  for (const auto& [link, copies] : per_link) {
    if (rendered.contains({link.first.index(), link.second.index()})) continue;
    if (!header) {
      out << "unrooted links:\n";
      header = true;
    }
    out << "  " << hbh::to_string(link.first) << "->"
        << hbh::to_string(link.second) << " (x" << copies << ")\n";
  }
  return out.str();
}

}  // namespace hbh::metrics
