#include "metrics/json_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hbh::metrics {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after value");
    return true;
  }

 private:
  bool fail(std::string_view message) {
    if (error_ != nullptr) {
      std::ostringstream os;
      os << message << " at byte " << pos_;
      *error_ = os.str();
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  bool expect(char c) {
    if (at_end() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail(std::string("invalid literal, expected \"") +
                  std::string(word) + "\"");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (depth_ > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++depth_;
    if (!expect('{')) return false;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++depth_;
    if (!expect('[')) return false;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    if (at_end() || peek() != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          append_utf8(out, code);
          break;
        }
        default:
          return fail("invalid escape sequence");
      }
    }
    return fail("unterminated string");
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) !=
                             0 ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue{};
  Parser p{text, error};
  return p.parse(out);
}

bool parse_json_file(const std::string& path, JsonValue& out,
                     std::string* error) {
  std::ifstream in{path};
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!parse_json(buf.str(), out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

}  // namespace hbh::metrics
