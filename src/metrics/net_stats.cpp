#include "metrics/net_stats.hpp"

#include "net/wire.hpp"

namespace hbh::metrics {

NetworkStatsTap::NetworkStatsTap(Registry& registry) : registry_(registry) {
  for (std::size_t i = 0; i < net::kPacketTypeCount; ++i) {
    const std::string suffix =
        net::to_string(static_cast<net::PacketType>(i));
    tx_[i] = &registry.counter("net.tx." + suffix);
    tx_bytes_[i] = &registry.counter("net.tx_bytes." + suffix);
  }
  drops_ = &registry.counter("net.drops");
  packet_bytes_ = &registry.histogram(
      "net.packet_bytes", {24, 32, 48, 64, 96, 128, 192, 256});
}

void NetworkStatsTap::on_transmit(const net::Topology::Edge& edge,
                                  const net::Packet& packet, Time now) {
  (void)edge, (void)now;
  const auto i = static_cast<std::size_t>(packet.type);
  const std::size_t bytes = net::encoded_size(packet);
  tx_[i]->inc();
  tx_bytes_[i]->inc(bytes);
  packet_bytes_->observe(static_cast<double>(bytes));
}

void NetworkStatsTap::on_drop(NodeId at, const net::Packet& packet,
                              std::string_view reason, Time now) {
  (void)at, (void)packet, (void)now;
  drops_->inc();
  // Per-reason breakdown: drops are rare (a converged tree drops nothing),
  // so the by-name lookup here is off the hot path.
  registry_.counter("net.drops." + std::string{reason}).inc();
}

std::vector<double> queue_delay_bounds() {
  // Serialization of a ~40-byte packet at the capacities the congestion
  // ablation sweeps is O(0.1..1) time units; a full default queue (64)
  // backs up to O(100). Log-ish spacing covers both ends.
  return {0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
}

void NetworkStatsTap::on_queue(const net::Topology::Edge& edge,
                               const net::Packet& packet, Time wait,
                               Time serialization, std::size_t depth,
                               Time now) {
  (void)packet, (void)now;
  if (queue_delay_ == nullptr) {
    queue_delay_ = &registry_.histogram("net.queue_delay", queue_delay_bounds());
    queue_wait_ = &registry_.histogram("net.queue_wait", queue_delay_bounds());
  }
  queue_delay_->observe(wait + serialization);
  queue_wait_->observe(wait);
  // Per-directed-link occupancy gauges (lazily registered, pointer-cached
  // after the first admission so the steady-state cost is one hash probe).
  const std::uint64_t key =
      (static_cast<std::uint64_t>(edge.from.index()) << 32) |
      edge.to.index();
  QueueGauges& g = queue_gauges_[key];
  if (g.high_water == nullptr) {
    const std::string link =
        to_string(edge.from) + "-" + to_string(edge.to);
    g.high_water = &registry_.gauge("net.queue.hwm." + link);
    g.admitted = &registry_.counter("net.queue.admitted." + link);
  }
  g.admitted->inc();
  if (depth > g.high_water_seen) {
    g.high_water_seen = depth;
    g.high_water->set(static_cast<double>(depth));
  }
}

}  // namespace hbh::metrics
