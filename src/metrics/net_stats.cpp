#include "metrics/net_stats.hpp"

#include "net/wire.hpp"

namespace hbh::metrics {

NetworkStatsTap::NetworkStatsTap(Registry& registry) : registry_(registry) {
  for (std::size_t i = 0; i < net::kPacketTypeCount; ++i) {
    const std::string suffix =
        net::to_string(static_cast<net::PacketType>(i));
    tx_[i] = &registry.counter("net.tx." + suffix);
    tx_bytes_[i] = &registry.counter("net.tx_bytes." + suffix);
  }
  drops_ = &registry.counter("net.drops");
  packet_bytes_ = &registry.histogram(
      "net.packet_bytes", {24, 32, 48, 64, 96, 128, 192, 256});
}

void NetworkStatsTap::on_transmit(const net::Topology::Edge& edge,
                                  const net::Packet& packet, Time now) {
  (void)edge, (void)now;
  const auto i = static_cast<std::size_t>(packet.type);
  const std::size_t bytes = net::encoded_size(packet);
  tx_[i]->inc();
  tx_bytes_[i]->inc(bytes);
  packet_bytes_->observe(static_cast<double>(bytes));
}

void NetworkStatsTap::on_drop(NodeId at, const net::Packet& packet,
                              std::string_view reason, Time now) {
  (void)at, (void)packet, (void)now;
  drops_->inc();
  // Per-reason breakdown: drops are rare (a converged tree drops nothing),
  // so the by-name lookup here is off the hot path.
  registry_.counter("net.drops." + std::string{reason}).inc();
}

}  // namespace hbh::metrics
