// Run-wide telemetry registry: named counters, gauges, and fixed-bucket
// histograms.
//
// Design goals (DESIGN.md + docs/OBSERVABILITY.md):
//  * O(1) hot path — instruments resolve their metric once at wiring time
//    and then update through a stable reference; updates are one branch
//    plus one add.
//  * ~zero cost when disabled — every update checks a single shared
//    `enabled` flag, and defining HBH_NO_TELEMETRY compiles updates out
//    entirely (benches measure the event loop, not the bookkeeping).
//  * Single-threaded by design, like the simulator it observes: one
//    Registry belongs to one run (harness::Session owns one per session).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.hpp"

namespace hbh::metrics {

#ifdef HBH_NO_TELEMETRY
inline constexpr bool kTelemetryCompiled = false;
#else
inline constexpr bool kTelemetryCompiled = true;
#endif

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if constexpr (kTelemetryCompiled) {
      if (*enabled_) value_ += n;
    } else {
      (void)n;
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  friend class Registry;
  explicit Counter(const bool* enabled) noexcept : enabled_(enabled) {}
  const bool* enabled_;
  std::uint64_t value_ = 0;
};

/// Point-in-time value. Either stored (set/add) or *bound* to a provider
/// callback that is evaluated lazily at read time — how protocol state
/// (MFT/MCT entry counts, queue depth) is exposed without per-update cost.
class Gauge {
 public:
  void set(double v) noexcept {
    if constexpr (kTelemetryCompiled) {
      if (*enabled_) value_ = v;
    } else {
      (void)v;
    }
  }
  void add(double delta) noexcept {
    if constexpr (kTelemetryCompiled) {
      if (*enabled_) value_ += delta;
    } else {
      (void)delta;
    }
  }

  /// Binds the gauge to a provider; value() then reflects the callback.
  void bind(std::function<double()> provider) {
    provider_ = std::move(provider);
  }

  [[nodiscard]] double value() const { return provider_ ? provider_() : value_; }

 private:
  friend class Registry;
  explicit Gauge(const bool* enabled) noexcept : enabled_(enabled) {}
  const bool* enabled_;
  double value_ = 0;
  std::function<double()> provider_;
};

/// Fixed-bucket histogram: counts per upper bound, plus an overflow bucket
/// and a running sum. Bounds are set once at registration and never
/// reallocate, so observe() is a short scan over a handful of doubles.
class Histogram {
 public:
  void observe(double v) noexcept {
    if constexpr (kTelemetryCompiled) {
      if (!*enabled_) return;
      std::size_t i = 0;
      while (i < bounds_.size() && v > bounds_[i]) ++i;
      ++counts_[i];
      sum_ += v;
      ++total_;
    } else {
      (void)v;
    }
  }

  /// Bucket upper bounds; counts() has one extra trailing overflow bucket.
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] double mean() const noexcept {
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
  }

  /// Bucket-interpolated quantile estimate, q in [0, 1]. Within a bucket
  /// the mass is assumed uniform between the adjacent bounds (the first
  /// bucket starts at 0); observations in the overflow bucket clamp to the
  /// last bound, since its upper edge is unknown. 0 on an empty histogram.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (total_ == 0 || bounds_.empty()) return 0.0;
    const double rank = q * static_cast<double>(total_);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      const std::uint64_t next = cumulative + counts_[i];
      if (static_cast<double>(next) >= rank) {
        if (i >= bounds_.size()) return bounds_.back();  // overflow bucket
        const double lo = i == 0 ? 0.0 : bounds_[i - 1];
        const double hi = bounds_[i];
        const double within =
            (rank - static_cast<double>(cumulative)) /
            static_cast<double>(counts_[i]);
        return lo + (hi - lo) * std::min(std::max(within, 0.0), 1.0);
      }
      cumulative = next;
    }
    return bounds_.back();
  }

 private:
  friend class Registry;
  Histogram(const bool* enabled, std::vector<double> bounds)
      : enabled_(enabled),
        bounds_(std::move(bounds)),
        counts_(bounds_.size() + 1, 0) {}
  const bool* enabled_;
  std::vector<double> bounds_;  ///< strictly increasing upper bounds
  std::vector<std::uint64_t> counts_;
  double sum_ = 0;
  std::uint64_t total_ = 0;
};

/// One run's metrics, keyed by dotted names ("net.tx.join"). Lookup cost is
/// paid once at registration; references stay valid for the registry's
/// lifetime (metrics are heap-pinned and the registry never moves).
class Registry {
 public:
  explicit Registry(bool enabled = true) : enabled_(enabled) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Finds or creates the named metric. Registering the same name twice
  /// returns the same object (so independent instruments can share it).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// For an existing histogram the original bounds are kept.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Convenience: registers a provider-bound gauge in one call.
  Gauge& bind_gauge(std::string_view name, std::function<double()> provider);

  // Export surface (ordered by name => deterministic reports).
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Counter>>&
  counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Gauge>>& gauges()
      const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Histogram>>&
  histograms() const noexcept {
    return histograms_;
  }

 private:
  bool enabled_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hbh::metrics
