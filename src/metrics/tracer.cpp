#include "metrics/tracer.hpp"

#include <algorithm>
#include <fstream>
#include <unordered_map>

#include "metrics/json.hpp"

namespace hbh::metrics {

namespace {

/// The address a packet is "about" — what its transmit spans are tagged
/// with so a trace can be filtered by receiver/target without decoding
/// payloads.
Ipv4Addr packet_subject(const net::Packet& p) {
  switch (p.type) {
    case net::PacketType::kJoin:
      return p.join().receiver;
    case net::PacketType::kTree:
      return p.tree().target;
    case net::PacketType::kFusion:
      return p.fusion().origin;
    case net::PacketType::kPimJoin:
    case net::PacketType::kPimPrune:
      return p.pim_join().receiver;
    case net::PacketType::kData:
      return p.dst;
  }
  return p.dst;
}

}  // namespace

std::string_view to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRoot:
      return "root";
    case SpanKind::kChild:
      return "child";
    case SpanKind::kTransmit:
      return "tx";
    case SpanKind::kInstant:
      return "instant";
  }
  return "?";
}

Tracer::Tracer(sim::Simulator& sim, std::size_t capacity)
    : sim_(sim), capacity_(capacity) {}

net::TraceContext Tracer::open(std::uint64_t trace_id,
                               std::uint64_t parent_id, SpanKind kind,
                               std::string_view name, NodeId node,
                               const net::Channel& channel, Ipv4Addr subject,
                               net::PacketType type, Time start, Time end) {
  // Ids advance even past capacity so the causal structure (and therefore
  // any trace diff) is independent of the recording limit.
  const std::uint64_t id = next_id_++;
  const std::uint64_t trace = trace_id == 0 ? id : trace_id;
  if (spans_.size() < capacity_) {
    spans_.push_back(SpanRecord{trace, id, parent_id, kind, std::string{name},
                                node, channel, subject, type, start, end});
  } else {
    ++dropped_;
  }
  return net::TraceContext{trace, id};
}

net::TraceContext Tracer::root(std::string_view name, NodeId node,
                               const net::Channel& channel, Ipv4Addr subject) {
  if constexpr (!kTelemetryCompiled) return {};
  if (!enabled_) return {};
  const Time now = sim_.now();
  return open(0, 0, SpanKind::kRoot, name, node, channel, subject,
              net::PacketType::kData, now, now);
}

net::TraceContext Tracer::child(const net::TraceContext& parent,
                                std::string_view name, NodeId node,
                                const net::Channel& channel,
                                Ipv4Addr subject) {
  if constexpr (!kTelemetryCompiled) return {};
  if (!enabled_ || !parent.active()) return parent;
  const Time now = sim_.now();
  return open(parent.trace_id, parent.span_id, SpanKind::kChild, name, node,
              channel, subject, net::PacketType::kData, now, now);
}

void Tracer::instant(const net::TraceContext& parent, std::string_view name,
                     NodeId node, const net::Channel& channel,
                     Ipv4Addr subject) {
  if constexpr (!kTelemetryCompiled) return;
  if (!enabled_ || !parent.active()) return;
  const Time now = sim_.now();
  open(parent.trace_id, parent.span_id, SpanKind::kInstant, name, node,
       channel, subject, net::PacketType::kData, now, now);
}

net::TraceContext Tracer::on_transmit(const net::Topology::Edge& edge,
                                      const net::Packet& packet, Time start,
                                      Time arrival) {
  if constexpr (!kTelemetryCompiled) return packet.trace;
  if (!enabled_ || !packet.trace.active()) return packet.trace;
  std::string name{"tx:"};
  name.append(net::to_string(packet.type));
  return open(packet.trace.trace_id, packet.trace.span_id, SpanKind::kTransmit,
              name, edge.from, packet.channel, packet_subject(packet),
              packet.type, start, arrival);
}

void Tracer::on_drop(NodeId at, const net::Packet& packet,
                     std::string_view reason, Time now) {
  if constexpr (!kTelemetryCompiled) return;
  if (!enabled_ || !packet.trace.active()) return;
  std::string name{"drop:"};
  name.append(reason);
  open(packet.trace.trace_id, packet.trace.span_id, SpanKind::kInstant, name,
       at, packet.channel, packet_subject(packet), packet.type, now, now);
}

void Tracer::clear() {
  spans_.clear();
  next_id_ = 1;
  dropped_ = 0;
}

double ConvergenceSummary::mean_join_to_first_delivery() const {
  double sum = 0;
  std::size_t n = 0;
  for (const GraftTimeline& g : grafts) {
    if (g.join_to_first_delivery >= 0) {
      sum += g.join_to_first_delivery;
      ++n;
    }
  }
  return n == 0 ? -1.0 : sum / static_cast<double>(n);
}

double ConvergenceSummary::mean_leave_to_prune() const {
  double sum = 0;
  std::size_t n = 0;
  for (const LeaveTimeline& l : leaves) {
    if (l.leave_to_prune >= 0) {
      sum += l.leave_to_prune;
      ++n;
    }
  }
  return n == 0 ? -1.0 : sum / static_cast<double>(n);
}

double ConvergenceSummary::mean_control_per_graft() const {
  if (grafts.empty()) return 0;
  double sum = 0;
  for (const GraftTimeline& g : grafts) {
    sum += static_cast<double>(g.control_messages);
  }
  return sum / static_cast<double>(grafts.size());
}

std::size_t ConvergenceSummary::undelivered_grafts() const {
  std::size_t n = 0;
  for (const GraftTimeline& g : grafts) {
    if (g.join_to_first_delivery < 0) ++n;
  }
  return n;
}

ConvergenceSummary analyze_convergence(const std::vector<SpanRecord>& spans) {
  // Per-trace transmit rollup: control-message count and the latest arrival
  // (which is when an explicit prune chain quiesces).
  struct TraceTx {
    std::uint64_t control = 0;
    Time max_end = 0;
  };
  std::unordered_map<std::uint64_t, TraceTx> tx_by_trace;
  std::vector<const SpanRecord*> deliveries;
  std::vector<const SpanRecord*> evictions;
  for (const SpanRecord& s : spans) {
    if (s.kind == SpanKind::kTransmit) {
      TraceTx& t = tx_by_trace[s.trace_id];
      if (s.type != net::PacketType::kData) ++t.control;
      t.max_end = std::max(t.max_end, s.end);
    } else if (s.kind == SpanKind::kInstant) {
      if (s.name == "deliver") deliveries.push_back(&s);
      if (s.name == "evict") evictions.push_back(&s);
    }
  }

  ConvergenceSummary out;
  for (const SpanRecord& s : spans) {
    if (s.kind != SpanKind::kRoot) continue;
    if (s.name == "subscribe") {
      GraftTimeline g;
      g.receiver = s.subject;
      g.channel = s.channel;
      g.subscribed_at = s.start;
      for (const SpanRecord* d : deliveries) {  // time-ordered
        if (d->start >= s.start && d->subject == s.subject &&
            d->channel == s.channel) {
          g.first_delivery_at = d->start;
          g.join_to_first_delivery = d->start - s.start;
          break;
        }
      }
      const auto it = tx_by_trace.find(s.trace_id);
      if (it != tx_by_trace.end()) g.control_messages = it->second.control;
      out.grafts.push_back(g);
    } else if (s.name == "unsubscribe") {
      LeaveTimeline l;
      l.receiver = s.subject;
      l.channel = s.channel;
      l.unsubscribed_at = s.start;
      const auto it = tx_by_trace.find(s.trace_id);
      if (it != tx_by_trace.end() && it->second.control > 0) {
        // Explicit leave (PIM prune): converged when the last prune lands.
        l.leave_to_prune = it->second.max_end - s.start;
      } else {
        // Soft-state leave: converged when the receiver's forwarding state
        // times out somewhere — evictions are rooted in tree rounds, so
        // match by (channel, receiver) across traces.
        for (const SpanRecord* e : evictions) {
          if (e->start >= s.start && e->subject == s.subject &&
              e->channel == s.channel) {
            l.leave_to_prune = e->start - s.start;
            break;
          }
        }
      }
      out.leaves.push_back(l);
    }
  }
  return out;
}

bool write_perfetto_trace(const std::vector<SpanRecord>& spans,
                          const std::map<std::string, std::string>& info,
                          std::uint64_t dropped, const std::string& path) {
  std::ofstream out{path};
  if (!out) return false;

  // A root/child span is opened instantaneously; for rendering, extend it
  // to the latest end among its (transitive) children. Children always
  // follow their parent in the record order, so one reverse pass suffices.
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  index_of.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    index_of.emplace(spans[i].span_id, i);
  }
  std::vector<Time> subtree_end(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) subtree_end[i] = spans[i].end;
  for (std::size_t i = spans.size(); i-- > 0;) {
    const std::uint64_t parent = spans[i].parent_id;
    if (parent == 0) continue;
    const auto it = index_of.find(parent);
    if (it != index_of.end()) {
      subtree_end[it->second] =
          std::max(subtree_end[it->second], subtree_end[i]);
    }
  }

  std::vector<std::uint32_t> nodes;
  for (const SpanRecord& s : spans) {
    if (s.node.valid()) nodes.push_back(s.node.index());
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  JsonWriter w{out, 0};
  w.begin_object();
  w.member("schema", kTraceSchema);
  w.member("displayTimeUnit", "ms");
  if (!info.empty()) {
    w.key("info");
    w.begin_object();
    for (const auto& [k, v] : info) w.member(k, std::string_view{v});
    w.end_object();
  }
  w.member("spans_recorded", static_cast<std::uint64_t>(spans.size()));
  w.member("spans_dropped", dropped);
  w.key("traceEvents");
  w.begin_array();

  w.begin_object();
  w.member("ph", "M");
  w.member("name", "process_name");
  w.member("pid", 1);
  w.key("args");
  w.begin_object();
  w.member("name", "hbh-sim");
  w.end_object();
  w.end_object();
  for (const std::uint32_t n : nodes) {
    w.begin_object();
    w.member("ph", "M");
    w.member("name", "thread_name");
    w.member("pid", 1);
    w.member("tid", n + 1);
    w.key("args");
    w.begin_object();
    w.member("name", std::string_view{to_string(NodeId{n})});
    w.end_object();
    w.end_object();
  }

  // 1 sim time unit = 1 ms; trace-event timestamps are microseconds.
  constexpr double kUsPerTimeUnit = 1000.0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    const bool is_instant = s.kind == SpanKind::kInstant;
    w.begin_object();
    w.member("ph", is_instant ? "i" : "X");
    w.member("name", std::string_view{s.name});
    w.member("cat", to_string(s.kind));
    w.member("pid", 1);
    w.member("tid", s.node.valid() ? s.node.index() + 1 : 0u);
    w.member("ts", s.start * kUsPerTimeUnit);
    if (is_instant) {
      w.member("s", "t");  // thread-scoped instant
    } else {
      const Time end = s.kind == SpanKind::kTransmit ? s.end : subtree_end[i];
      w.member("dur", std::max((end - s.start) * kUsPerTimeUnit, 1.0));
    }
    w.key("args");
    w.begin_object();
    w.member("trace", s.trace_id);
    w.member("span", s.span_id);
    w.member("parent", s.parent_id);
    if (s.channel.valid()) {
      w.member("channel", std::string_view{s.channel.to_string()});
    }
    if (!s.subject.unspecified()) {
      w.member("subject", std::string_view{s.subject.to_string()});
    }
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  out << '\n';
  return out.good();
}

bool write_perfetto_trace(const Tracer& tracer,
                          const std::map<std::string, std::string>& info,
                          const std::string& path) {
  return write_perfetto_trace(tracer.spans(), info, tracer.dropped(), path);
}

}  // namespace hbh::metrics
