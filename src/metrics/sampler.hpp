// Periodic protocol-state sampling over virtual time.
//
// A StateSampler rides the simulator's own PeriodicTimer: every `period`
// time units it reads every gauge registered in a Registry and appends
// (virtual time, value) to that gauge's series. Because gauges are
// provider-bound (MFT/MCT entry counts, event-queue depth, membership),
// sampling is the *only* time their cost is paid — the protocol hot path
// is untouched between ticks.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "metrics/registry.hpp"
#include "sim/simulator.hpp"

namespace hbh::metrics {

/// One sampled time series: parallel vectors of timestamps and values.
struct Series {
  std::vector<Time> t;
  std::vector<double> v;
};

class StateSampler {
 public:
  /// Samples every `period` time units once started. `max_samples` bounds
  /// memory per series for long runs (recording stops, like MessageTrace).
  StateSampler(sim::Simulator& simulator, Registry& registry, Time period,
               std::size_t max_samples = 100000);

  /// Arms the sampler; takes an immediate t=now sample so every series has
  /// a defined start point, then one every period.
  void start();
  void stop() { timer_.stop(); }

  /// Takes one snapshot of all registry gauges right now.
  void sample_now();

  [[nodiscard]] const std::map<std::string, Series>& series() const noexcept {
    return series_;
  }
  [[nodiscard]] std::size_t sample_count() const noexcept { return samples_; }
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  [[nodiscard]] Time period() const noexcept { return timer_.period(); }

 private:
  sim::Simulator& sim_;
  Registry& registry_;
  std::size_t max_samples_;
  sim::PeriodicTimer timer_;
  std::map<std::string, Series> series_;
  std::size_t samples_ = 0;
  bool truncated_ = false;
};

}  // namespace hbh::metrics
