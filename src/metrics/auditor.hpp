// Forwarding-plane invariant auditor.
//
// The paper's headline claims are *invariants* — loop-free trees, exactly
// one delivery per subscribed receiver, forwarding state only where the
// tree branches, soft state that dies within t2 of the last refresh. The
// Auditor rides the fabric's existing observation seams (PacketTap for
// per-hop wire events — including the new on_deliver choke point shared by
// the interpreted path and the compiled fast path — plus harness-driven
// membership/emission/table-sweep notifications) and turns every violation
// into a structured AnomalyEvent: kind, virtual time, node, channel,
// offending sequence number, and the causal trace id when tracing is on.
//
// Anomalies are aggregated into per-kind counters (the run report's
// hbh.anomalies/v1 section), optionally retained as events (bounded by
// AuditorConfig::max_events) for the HBH_AUDIT_OUT NDJSON stream, and
// optionally fatal: strict mode throws on the first violation so CI turns
// every bench into a self-checking correctness probe. Everything here
// observes virtual time only, so output is byte-identical across HBH_JOBS
// and HBH_FASTPATH; like all telemetry it compiles out to no-ops under
// -DHBH_NO_TELEMETRY=ON.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/channel.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/ids.hpp"

namespace hbh::metrics {

enum class AnomalyKind : std::uint8_t {
  kLoop = 0,            ///< a data copy re-crossed a link / exhausted TTL
  kDuplicateDelivery,   ///< a subscribed receiver saw one (channel, seq) twice
  kBlackHole,           ///< subscribed + source active, yet no data arrives
  kStateMisplacement,   ///< MCT and MFT live simultaneously (HBH/REUNITE)
  kSoftStateLeak,       ///< an entry still live past t2 + slack after leave
  kTreeDrift,           ///< converged tree cost deviates from the oracle SPT
};
inline constexpr std::size_t kAnomalyKindCount = 6;

/// Stable kebab-case label ("loop", "duplicate-delivery", ...) used in the
/// report section, the NDJSON stream, and strict-mode error messages.
[[nodiscard]] std::string_view to_string(AnomalyKind kind);

struct AnomalyEvent {
  AnomalyKind kind{};
  Time at = 0;                ///< virtual detection time
  NodeId node = kNoNode;      ///< router/host the violation was observed at
  net::Channel channel{};
  std::uint32_t seq = 0;      ///< offending data sequence number (0 = n/a)
  std::uint64_t trace_id = 0; ///< causal root when tracing was active
  std::string detail;         ///< deterministic human-readable specifics
};

struct AuditorConfig {
  bool strict = false;  ///< throw std::runtime_error on the first violation

  /// Whether the audited protocol guarantees at-most-once delivery and
  /// no-link-recrossing for data copies. True for HBH and PIM (replication
  /// guard / RPF); false for REUNITE, whose unicast-driven forwarding
  /// legitimately duplicates packets and re-crosses links during tree
  /// transients — the paper's §2.3 criticism, not a forwarding bug. When
  /// false the heuristic detectors (duplicate-delivery, TTL-regression
  /// loop) are disabled; the definitive TTL-exhaustion loop detector stays
  /// active for every protocol.
  bool at_most_once = true;

  // Soft-state timers the detection thresholds derive from; the harness
  // passes its McastConfig values so audit windows track the protocol's.
  Time tree_period = 10;
  Time t1 = 35;
  Time t2 = 70;

  /// Leak horizon: after the last member leaves, refreshes stop reaching
  /// routers within one t1 (mark decay), and the last refreshed entry dies
  /// within a further t2 — any entry still *live* leak_slack after that is
  /// being refreshed by nobody legitimate.
  Time leak_slack = 20;

  /// Black-hole windows: emissions only count once the receiver has had
  /// `grace` to graft onto the tree; an uncountered emission older than
  /// `starvation` (with no delivery since) is evidence, and `min_emissions`
  /// pieces of evidence raise the anomaly (single-probe measurements can
  /// never trigger it, so pre-convergence delivery failures stay silent).
  Time blackhole_grace = 40;
  Time blackhole_starvation = 70;
  std::size_t blackhole_min_emissions = 3;

  /// Retained-event cap (counters keep counting past it).
  std::size_t max_events = 256;
};

class Auditor : public net::PacketTap {
 public:
  explicit Auditor(AuditorConfig config = {});

  // --- wire observation (PacketTap; fed by Network) ----------------------
  void on_transmit(const net::Topology::Edge& edge, const net::Packet& packet,
                   Time now) override;
  void on_drop(NodeId at, const net::Packet& packet, std::string_view reason,
               Time now) override;
  void on_deliver(NodeId to, NodeId from, const net::Packet& packet,
                  Time now) override;

  // --- membership / workload notifications (fed by the harness at the
  // virtual times the actions actually execute) ---------------------------
  void note_subscribe(const net::Channel& channel, NodeId host, Time now);
  void note_unsubscribe(const net::Channel& channel, NodeId host, Time now);
  void note_emission(const net::Channel& channel, std::uint32_t seq, Time now);

  /// Post-measurement tree-cost drift check. `oracle` is the edge count of
  /// the oracle tree (0 = no oracle for this protocol — recorded only);
  /// the anomaly fires only when the measurement delivered exactly once to
  /// every member (i.e. the tree had converged) yet cost ≠ oracle.
  void note_tree_cost(const net::Channel& channel, std::uint64_t measured,
                      std::uint64_t oracle, bool exact_delivery, Time now);

  // --- table sweep (the harness enumerates protocol state into these) ----
  void begin_sweep(Time now);
  /// One soft-state entry (`table` ∈ {"mct","mft","oif"}) with its absolute
  /// t2 deadline; raises a leak when the entry is still live long after the
  /// channel's last member left.
  void sweep_entry(NodeId router, const net::Channel& channel,
                   std::string_view table, Time t2_expiry);
  /// Per-(router, channel) table shape; MCT and MFT live at once violates
  /// the HBH/REUNITE "exactly one table per channel" invariant.
  void sweep_tables(NodeId router, const net::Channel& channel, bool live_mct,
                    bool live_mft);
  void end_sweep();  ///< finalizes black-hole checks at the sweep time

  // --- results -----------------------------------------------------------
  [[nodiscard]] std::uint64_t count(AnomalyKind kind) const noexcept {
    return counts_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept;
  [[nodiscard]] const std::vector<AnomalyEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const AuditorConfig& config() const noexcept {
    return config_;
  }

  /// Relaxes (or restores) the at-most-once heuristics mid-run. Workloads
  /// that deliberately break the promise — saturating queues until
  /// soft-state rebuilds duplicate transient deliveries — flip this off
  /// when congestion goes live, exactly like the standing REUNITE
  /// carve-out (AuditorConfig::at_most_once).
  void set_at_most_once(bool v) noexcept { config_.at_most_once = v; }

  /// Appends one NDJSON line per retained event (schema hbh.audit/v1;
  /// virtual-time fields only, so the stream is byte-identical across
  /// HBH_JOBS/HBH_FASTPATH). `protocol` labels each line's origin run.
  void append_ndjson(std::string& out, std::string_view protocol) const;

 private:
  struct MemberState {
    Time subscribed_at = 0;
    Time last_delivery = -1;        ///< -1: nothing delivered yet
    bool blackhole_reported = false;
    std::set<std::uint32_t> seqs_seen;
  };
  struct ChannelAudit {
    std::map<NodeId, MemberState> members;
    Time last_left = -1;  ///< when the last member left (-1: never emptied)
    bool ever_member = false;
    std::deque<Time> emissions;
  };
  /// One data copy's identity on one directed link: the same copy crossing
  /// the same link again can only have a *lower* TTL — the loop signature.
  /// (`dst` disambiguates legitimate same-(channel, seq) copies addressed
  /// to different subtree targets; impairment duplicates share the
  /// original's TTL, so they compare equal, not lower.)
  struct CopyKey {
    net::Channel channel;
    std::uint32_t seq;
    Ipv4Addr dst;
    bool encapsulated;
    std::uint32_t link;  ///< packed (from << 16 | to) directed-edge id
    friend bool operator==(const CopyKey&, const CopyKey&) = default;
  };
  struct CopyKeyHash {
    std::size_t operator()(const CopyKey& k) const noexcept;
  };

  void raise(AnomalyKind kind, Time at, NodeId node,
             const net::Channel& channel, std::uint32_t seq,
             std::uint64_t trace_id, std::string detail);
  void check_blackholes(const net::Channel& channel, ChannelAudit& audit,
                        Time now);

  AuditorConfig config_;
  std::array<std::uint64_t, kAnomalyKindCount> counts_{};
  std::vector<AnomalyEvent> events_;
  std::map<net::Channel, ChannelAudit> channels_;
  std::unordered_map<CopyKey, int, CopyKeyHash> copies_;  ///< first-seen TTLs
  std::set<std::pair<std::uint32_t, net::Channel>> leak_raised_;
  std::set<std::pair<std::uint32_t, net::Channel>> shape_raised_;
  Time sweep_now_ = 0;
};

}  // namespace hbh::metrics
