// Minimal streaming JSON writer for run reports.
//
// The simulator has no third-party JSON dependency, and the reports it
// writes are flat and regular, so a small stack-based writer is all that
// is needed: correct escaping, correct commas, and non-finite doubles
// mapped to null (JSON has no NaN/Infinity).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hbh::metrics {

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 writes compact single-line JSON.
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(out), indent_(indent) {}
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key; must be followed by a value or container.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view{v}); }
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(bool v);
  void null();

  /// key + value in one call.
  template <typename T>
  void member(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// True once every opened container has been closed.
  [[nodiscard]] bool complete() const noexcept {
    return stack_.empty() && wrote_root_;
  }

  /// Escapes `s` as a JSON string literal (with quotes).
  [[nodiscard]] static std::string quote(std::string_view s);

 private:
  struct Frame {
    char kind;        ///< '{' or '['
    bool first = true;
  };

  void separate();  ///< comma/newline/indent before a new element
  void raw(std::string_view text);

  std::ostream& out_;
  int indent_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
  bool wrote_root_ = false;
};

}  // namespace hbh::metrics
