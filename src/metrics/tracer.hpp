// Causal control-plane tracing (docs/OBSERVABILITY.md "Causal tracing").
//
// The Tracer implements net::TraceHook: externally triggered actions
// (subscribe/unsubscribe, source tree rounds and data emissions, injected
// faults) open *root* spans; every wire copy of a traced packet becomes a
// *transmit* span parented on the context the packet carried into that hop,
// so multi-hop chains — HBH's join→tree→fusion cascades, REUNITE
// replication, PIM join/prune propagation, data fan-out — form a single
// causal tree per root. Table mutations, deliveries, and drops are instant
// events hung off the span that caused them.
//
// Span ids are allocated sequentially in simulation-event order, so a
// serial instrumented run produces byte-identical traces at any HBH_JOBS
// setting (the harness only ever traces serial re-runs). Recording is
// capacity-bounded like StateSampler/MessageTrace: ids keep advancing when
// full (structure stays deterministic) while dropped spans are counted.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "metrics/registry.hpp"  // kTelemetryCompiled
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace hbh::metrics {

inline constexpr std::string_view kTraceSchema = "hbh.trace/v1";

enum class SpanKind : std::uint8_t {
  kRoot,      ///< externally triggered action (subscribe, tree round, fault)
  kChild,     ///< agent-local sub-action (one soft-state refresh round)
  kTransmit,  ///< one wire copy crossing one link
  kInstant,   ///< zero-duration event (delivery, table mutation, drop)
};

[[nodiscard]] std::string_view to_string(SpanKind kind);

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 for roots
  SpanKind kind = SpanKind::kInstant;
  std::string name;      ///< "subscribe", "tx:tree", "mft-insert", ...
  NodeId node;           ///< where it happened (transmit: the sending node)
  net::Channel channel;  ///< invalid for channel-less roots (faults)
  Ipv4Addr subject;      ///< who it is about (receiver, tree target, ...)
  net::PacketType type = net::PacketType::kData;  ///< transmit spans only
  Time start = 0;
  Time end = 0;
};

class Tracer final : public net::TraceHook {
 public:
  /// Records at most `capacity` spans; ids keep advancing beyond that so
  /// trace structure is independent of the recording limit.
  explicit Tracer(sim::Simulator& sim, std::size_t capacity = 1u << 20);

  // Registry-style kill switch: while disabled, no spans open and packets
  // stay untraced (contexts come back inactive).
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // net::TraceHook
  net::TraceContext root(std::string_view name, NodeId node,
                         const net::Channel& channel,
                         Ipv4Addr subject) override;
  net::TraceContext child(const net::TraceContext& parent,
                          std::string_view name, NodeId node,
                          const net::Channel& channel,
                          Ipv4Addr subject) override;
  void instant(const net::TraceContext& parent, std::string_view name,
               NodeId node, const net::Channel& channel,
               Ipv4Addr subject) override;
  net::TraceContext on_transmit(const net::Topology::Edge& edge,
                                const net::Packet& packet, Time start,
                                Time arrival) override;
  void on_drop(NodeId at, const net::Packet& packet, std::string_view reason,
               Time now) override;

  [[nodiscard]] const std::vector<SpanRecord>& spans() const noexcept {
    return spans_;
  }
  /// Spans not recorded because the capacity was reached.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] bool truncated() const noexcept { return dropped_ != 0; }

  void clear();

 private:
  net::TraceContext open(std::uint64_t trace_id, std::uint64_t parent_id,
                         SpanKind kind, std::string_view name, NodeId node,
                         const net::Channel& channel, Ipv4Addr subject,
                         net::PacketType type, Time start, Time end);

  sim::Simulator& sim_;
  std::size_t capacity_;
  bool enabled_ = true;
  std::vector<SpanRecord> spans_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
};

/// Per-receiver graft timeline folded out of one trace: when the receiver
/// subscribed, when the first data packet reached it, and how many control
/// messages its join chain cost (transmit spans in the subscribe trace).
struct GraftTimeline {
  Ipv4Addr receiver;
  net::Channel channel;
  Time subscribed_at = 0;
  Time first_delivery_at = -1;         ///< -1: never delivered in the run
  double join_to_first_delivery = -1;  ///< -1: never delivered
  std::uint64_t control_messages = 0;
};

/// Per-receiver leave timeline: explicit-prune protocols (PIM) quiesce when
/// the last prune transmission lands; soft-state protocols (HBH, REUNITE)
/// when the receiver's forwarding state is evicted by timeout.
struct LeaveTimeline {
  Ipv4Addr receiver;
  net::Channel channel;
  Time unsubscribed_at = 0;
  double leave_to_prune = -1;  ///< -1: no prune/eviction observed
};

struct ConvergenceSummary {
  std::vector<GraftTimeline> grafts;
  std::vector<LeaveTimeline> leaves;

  [[nodiscard]] double mean_join_to_first_delivery() const;
  [[nodiscard]] double mean_leave_to_prune() const;
  [[nodiscard]] double mean_control_per_graft() const;
  [[nodiscard]] std::size_t undelivered_grafts() const;
};

/// Folds a span list into per-receiver convergence timelines. Deliveries
/// and evictions are matched by (channel, receiver) across traces — a
/// receiver's first delivery is usually caused by a source emission root,
/// not by its own join chain.
[[nodiscard]] ConvergenceSummary analyze_convergence(
    const std::vector<SpanRecord>& spans);

/// Writes spans as a Chrome trace-event / Perfetto JSON file (schema key
/// "hbh.trace/v1", one track per node, X events for spans, i events for
/// instants). Loadable directly in ui.perfetto.dev / chrome://tracing.
[[nodiscard]] bool write_perfetto_trace(
    const std::vector<SpanRecord>& spans,
    const std::map<std::string, std::string>& info, std::uint64_t dropped,
    const std::string& path);

/// Convenience overload for a whole tracer.
[[nodiscard]] bool write_perfetto_trace(
    const Tracer& tracer, const std::map<std::string, std::string>& info,
    const std::string& path);

}  // namespace hbh::metrics
