#include "metrics/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace hbh::metrics {

std::string JsonWriter::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already wrote the comma and "key":
  }
  assert(!wrote_root_ || !stack_.empty());  // one root value only
  if (stack_.empty()) return;
  Frame& frame = stack_.back();
  if (!frame.first) out_ << ',';
  frame.first = false;
  if (indent_ > 0) {
    out_ << '\n'
         << std::string(static_cast<std::size_t>(indent_) * stack_.size(),
                        ' ');
  }
}

void JsonWriter::raw(std::string_view text) {
  separate();
  out_ << text;
  wrote_root_ = true;
}

void JsonWriter::begin_object() {
  separate();
  out_ << '{';
  stack_.push_back(Frame{'{'});
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back().kind == '{');
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty && indent_ > 0) {
    out_ << '\n'
         << std::string(static_cast<std::size_t>(indent_) * stack_.size(),
                        ' ');
  }
  out_ << '}';
  wrote_root_ = true;
}

void JsonWriter::begin_array() {
  separate();
  out_ << '[';
  stack_.push_back(Frame{'['});
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back().kind == '[');
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty && indent_ > 0) {
    out_ << '\n'
         << std::string(static_cast<std::size_t>(indent_) * stack_.size(),
                        ' ');
  }
  out_ << ']';
  wrote_root_ = true;
}

void JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back().kind == '{');
  assert(!pending_key_);
  separate();
  out_ << quote(k) << (indent_ > 0 ? ": " : ":");
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) { raw(quote(v)); }

void JsonWriter::value(double v) {
  if (!std::isfinite(v)) {
    null();
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  raw(buf);
}

void JsonWriter::value(std::int64_t v) { raw(std::to_string(v)); }

void JsonWriter::value(std::uint64_t v) { raw(std::to_string(v)); }

void JsonWriter::value(bool v) { raw(v ? "true" : "false"); }

void JsonWriter::null() { raw("null"); }

}  // namespace hbh::metrics
