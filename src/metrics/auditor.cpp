#include "metrics/auditor.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "metrics/json.hpp"
#include "metrics/registry.hpp"

namespace hbh::metrics {

namespace {

/// Detection-window caps: wholesale reset when a map outgrows its cap, so
/// unbounded workloads (long traffic runs) keep bounded memory. Resets are
/// driven purely by deterministic state, so determinism is unaffected.
constexpr std::size_t kMaxCopyKeys = 1u << 16;
constexpr std::size_t kMaxSeqsPerMember = 1u << 14;
constexpr std::size_t kMaxEmissions = 1u << 12;

std::string format_time(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", t);
  return buf;
}

}  // namespace

std::string_view to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kLoop:
      return "loop";
    case AnomalyKind::kDuplicateDelivery:
      return "duplicate-delivery";
    case AnomalyKind::kBlackHole:
      return "black-hole";
    case AnomalyKind::kStateMisplacement:
      return "state-misplacement";
    case AnomalyKind::kSoftStateLeak:
      return "soft-state-leak";
    case AnomalyKind::kTreeDrift:
      return "tree-drift";
  }
  return "unknown";
}

std::size_t Auditor::CopyKeyHash::operator()(const CopyKey& k) const noexcept {
  std::size_t h = std::hash<net::Channel>{}(k.channel);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(k.seq);
  mix(std::hash<Ipv4Addr>{}(k.dst));
  mix(k.encapsulated ? 0x5Bu : 0xA4u);
  mix(k.link);
  return h;
}

Auditor::Auditor(AuditorConfig config) : config_(config) {}

std::uint64_t Auditor::total() const noexcept {
  std::uint64_t sum = 0;
  for (const std::uint64_t n : counts_) sum += n;
  return sum;
}

void Auditor::raise(AnomalyKind kind, Time at, NodeId node,
                    const net::Channel& channel, std::uint32_t seq,
                    std::uint64_t trace_id, std::string detail) {
  if constexpr (!kTelemetryCompiled) return;
  ++counts_[static_cast<std::size_t>(kind)];
  if (events_.size() < config_.max_events) {
    events_.push_back(AnomalyEvent{kind, at, node, channel, seq, trace_id,
                                   detail});
  }
  if (config_.strict) {
    std::string msg{"hbh-audit: "};
    msg.append(to_string(kind))
        .append(" at t=")
        .append(format_time(at))
        .append(" node=")
        .append(to_string(node))
        .append(" channel=")
        .append(channel.to_string());
    if (!detail.empty()) msg.append(": ").append(detail);
    throw std::runtime_error(msg);
  }
}

void Auditor::on_transmit(const net::Topology::Edge& edge,
                          const net::Packet& packet, Time now) {
  if constexpr (!kTelemetryCompiled) return;
  if (packet.type != net::PacketType::kData) return;
  if (!config_.at_most_once) return;  // REUNITE: transients re-cross links
  if (copies_.size() >= kMaxCopyKeys) copies_.clear();
  const CopyKey key{packet.channel, packet.data().seq, packet.dst,
                    packet.data().encapsulated,
                    (edge.from.index() << 16) | edge.to.index()};
  const auto [it, inserted] = copies_.try_emplace(key, packet.ttl);
  if (inserted) return;
  // The same copy identity on the same directed link again: an injected
  // duplicate shares the original's TTL (equal — benign); a strictly lower
  // TTL means the packet circled back. Sentinel the entry after raising so
  // a circulating packet is reported once per link, not once per lap.
  if (packet.ttl < it->second && it->second > -128) {
    raise(AnomalyKind::kLoop, now, edge.from, packet.channel,
          packet.data().seq, packet.trace.trace_id,
          std::string{"data copy re-crossed "} + to_string(edge.from) + "->" +
              to_string(edge.to) + " with ttl " +
              std::to_string(packet.ttl) + " < " + std::to_string(it->second));
    it->second = -128;
  }
}

void Auditor::on_drop(NodeId at, const net::Packet& packet,
                      std::string_view reason, Time now) {
  if constexpr (!kTelemetryCompiled) return;
  // A data packet can only exhaust a 64-hop TTL in these (≤ 50 node)
  // topologies by circulating: definitive loop evidence.
  if (reason == "ttl-expired" && packet.type == net::PacketType::kData) {
    raise(AnomalyKind::kLoop, now, at, packet.channel, packet.data().seq,
          packet.trace.trace_id, "data packet exhausted its ttl");
  }
}

void Auditor::on_deliver(NodeId to, NodeId from, const net::Packet& packet,
                         Time now) {
  if constexpr (!kTelemetryCompiled) return;
  (void)from;
  if (packet.type != net::PacketType::kData) return;
  const auto ch = channels_.find(packet.channel);
  if (ch == channels_.end()) return;
  const auto member = ch->second.members.find(to);
  if (member == ch->second.members.end()) return;
  // `to` is a currently subscribed receiver host (hosts are leaves, so any
  // data copy arriving here is a delivery attempt the host will accept).
  MemberState& m = member->second;
  m.last_delivery = now;
  // REUNITE legitimately duplicates deliveries during tree transients, so
  // its auditor only tracks liveness here (for black-hole evidence).
  if (!config_.at_most_once) return;
  if (m.seqs_seen.size() >= kMaxSeqsPerMember) m.seqs_seen.clear();
  const std::uint32_t seq = packet.data().seq;
  if (!m.seqs_seen.insert(seq).second) {
    raise(AnomalyKind::kDuplicateDelivery, now, to, packet.channel, seq,
          packet.trace.trace_id,
          "receiver saw seq " + std::to_string(seq) + " more than once");
  }
}

void Auditor::note_subscribe(const net::Channel& channel, NodeId host,
                             Time now) {
  if constexpr (!kTelemetryCompiled) return;
  ChannelAudit& audit = channels_[channel];
  audit.ever_member = true;
  MemberState& m = audit.members[host];
  m = MemberState{};
  m.subscribed_at = now;
}

void Auditor::note_unsubscribe(const net::Channel& channel, NodeId host,
                               Time now) {
  if constexpr (!kTelemetryCompiled) return;
  const auto ch = channels_.find(channel);
  if (ch == channels_.end()) return;
  ch->second.members.erase(host);
  if (ch->second.members.empty()) ch->second.last_left = now;
}

void Auditor::note_emission(const net::Channel& channel, std::uint32_t seq,
                            Time now) {
  if constexpr (!kTelemetryCompiled) return;
  (void)seq;
  ChannelAudit& audit = channels_[channel];
  if (audit.emissions.size() >= kMaxEmissions) {
    audit.emissions.erase(audit.emissions.begin(),
                          audit.emissions.begin() + kMaxEmissions / 2);
  }
  audit.emissions.push_back(now);
  check_blackholes(channel, audit, now);
}

void Auditor::check_blackholes(const net::Channel& channel,
                               ChannelAudit& audit, Time now) {
  for (auto& [host, m] : audit.members) {
    if (m.blackhole_reported) continue;
    // Evidence: emissions the receiver should have seen by now — sent
    // after its graft grace expired and after its last delivery, yet old
    // enough that the copy cannot still be in flight or queued.
    const Time eligible_after =
        std::max(m.subscribed_at + config_.blackhole_grace, m.last_delivery);
    const Time eligible_before = now - config_.blackhole_starvation;
    std::size_t evidence = 0;
    for (const Time t : audit.emissions) {
      if (t > eligible_after && t <= eligible_before) ++evidence;
    }
    if (evidence >= config_.blackhole_min_emissions) {
      m.blackhole_reported = true;
      raise(AnomalyKind::kBlackHole, now, host, channel, 0, 0,
            std::to_string(evidence) +
                " source emissions starved (subscribed at t=" +
                format_time(m.subscribed_at) + ", last delivery t=" +
                format_time(m.last_delivery) + ")");
    }
  }
}

void Auditor::note_tree_cost(const net::Channel& channel,
                             std::uint64_t measured, std::uint64_t oracle,
                             bool exact_delivery, Time now) {
  if constexpr (!kTelemetryCompiled) return;
  if (!exact_delivery || oracle == 0 || measured == oracle) return;
  raise(AnomalyKind::kTreeDrift, now, kNoNode, channel, 0, 0,
        "converged tree cost " + std::to_string(measured) +
            " != oracle SPT cost " + std::to_string(oracle));
}

void Auditor::begin_sweep(Time now) {
  if constexpr (!kTelemetryCompiled) return;
  sweep_now_ = now;
}

void Auditor::sweep_entry(NodeId router, const net::Channel& channel,
                          std::string_view table, Time t2_expiry) {
  if constexpr (!kTelemetryCompiled) return;
  const auto ch = channels_.find(channel);
  if (ch == channels_.end()) return;
  const ChannelAudit& audit = ch->second;
  // Leak criterion: every member left long enough ago that refreshes have
  // stopped (t1 mark decay) and the last refreshed entry must have died
  // (t2), plus slack — yet this entry is still live. Dead-but-present
  // entries are NOT leaks: purging is lazy by design, and the forwarding
  // plane already treats them as absent.
  if (!audit.ever_member || !audit.members.empty() || audit.last_left < 0) {
    return;
  }
  const Time deadline =
      audit.last_left + config_.t1 + config_.t2 + config_.leak_slack;
  if (sweep_now_ < deadline || t2_expiry <= sweep_now_) return;
  if (!leak_raised_.emplace(router.index(), channel).second) return;
  raise(AnomalyKind::kSoftStateLeak, sweep_now_, router, channel, 0, 0,
        std::string{table} + " entry still live (t2 deadline t=" +
            format_time(t2_expiry) + ") though the last member left at t=" +
            format_time(audit.last_left));
}

void Auditor::sweep_tables(NodeId router, const net::Channel& channel,
                           bool live_mct, bool live_mft) {
  if constexpr (!kTelemetryCompiled) return;
  if (!live_mct || !live_mft) return;
  if (!shape_raised_.emplace(router.index(), channel).second) return;
  raise(AnomalyKind::kStateMisplacement, sweep_now_, router, channel, 0, 0,
        "MCT and MFT live simultaneously (a router keeps exactly one "
        "table per channel)");
}

void Auditor::end_sweep() {
  if constexpr (!kTelemetryCompiled) return;
  for (auto& [channel, audit] : channels_) {
    check_blackholes(channel, audit, sweep_now_);
  }
}

void Auditor::append_ndjson(std::string& out, std::string_view protocol) const {
  if constexpr (!kTelemetryCompiled) return;
  for (const AnomalyEvent& e : events_) {
    out.append("{\"schema\":\"hbh.audit/v1\",\"protocol\":")
        .append(JsonWriter::quote(protocol))
        .append(",\"kind\":")
        .append(JsonWriter::quote(to_string(e.kind)))
        .append(",\"t\":")
        .append(format_time(e.at))
        .append(",\"node\":")
        .append(JsonWriter::quote(to_string(e.node)))
        .append(",\"channel\":")
        .append(JsonWriter::quote(e.channel.to_string()))
        .append(",\"seq\":")
        .append(std::to_string(e.seq))
        .append(",\"trace\":")
        .append(std::to_string(e.trace_id))
        .append(",\"detail\":")
        .append(JsonWriter::quote(e.detail))
        .append("}\n");
  }
}

}  // namespace hbh::metrics
