// Fabric-level telemetry tap.
//
// NetworkStatsTap plugs into the Network's PacketTap seam and feeds a
// Registry with per-packet-type transmission counts, honest wire-encoded
// byte counts, per-reason drop counts, and a packet-size histogram. All
// counters are resolved once at construction, so the per-packet cost is a
// handful of pointer-indirect increments (and exactly one branch each when
// the registry is disabled).
#pragma once

#include <array>

#include "metrics/registry.hpp"
#include "net/network.hpp"

namespace hbh::metrics {

class NetworkStatsTap : public net::PacketTap {
 public:
  explicit NetworkStatsTap(Registry& registry);

  void on_transmit(const net::Topology::Edge& edge, const net::Packet& packet,
                   Time now) override;
  void on_drop(NodeId at, const net::Packet& packet, std::string_view reason,
               Time now) override;

 private:
  Registry& registry_;
  std::array<Counter*, net::kPacketTypeCount> tx_{};
  std::array<Counter*, net::kPacketTypeCount> tx_bytes_{};
  Counter* drops_;
  Histogram* packet_bytes_;
};

}  // namespace hbh::metrics
