// Fabric-level telemetry tap.
//
// NetworkStatsTap plugs into the Network's PacketTap seam and feeds a
// Registry with per-packet-type transmission counts, honest wire-encoded
// byte counts, per-reason drop counts, and a packet-size histogram. All
// counters are resolved once at construction, so the per-packet cost is a
// handful of pointer-indirect increments (and exactly one branch each when
// the registry is disabled).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "metrics/registry.hpp"
#include "net/network.hpp"

namespace hbh::metrics {

/// Bucket bounds (time units) for the `net.queue_delay` histogram. Shared
/// with benches that read the histogram back, so a find-or-create from
/// either side resolves to identical buckets.
[[nodiscard]] std::vector<double> queue_delay_bounds();

class NetworkStatsTap : public net::PacketTap {
 public:
  explicit NetworkStatsTap(Registry& registry);

  void on_transmit(const net::Topology::Edge& edge, const net::Packet& packet,
                   Time now) override;
  void on_drop(NodeId at, const net::Packet& packet, std::string_view reason,
               Time now) override;
  void on_queue(const net::Topology::Edge& edge, const net::Packet& packet,
                Time wait, Time serialization, std::size_t depth,
                Time now) override;

 private:
  /// Per-directed-link occupancy instruments, resolved on first admission.
  struct QueueGauges {
    Gauge* high_water = nullptr;
    Counter* admitted = nullptr;
    std::size_t high_water_seen = 0;
  };

  Registry& registry_;
  std::array<Counter*, net::kPacketTypeCount> tx_{};
  std::array<Counter*, net::kPacketTypeCount> tx_bytes_{};
  Counter* drops_;
  Histogram* packet_bytes_;
  // Created lazily on the first queue admission: an uncapacitated run
  // never registers queue metrics, keeping its report byte-identical.
  Histogram* queue_delay_ = nullptr;
  Histogram* queue_wait_ = nullptr;
  std::unordered_map<std::uint64_t, QueueGauges> queue_gauges_;
};

}  // namespace hbh::metrics
