// Measurement probes for the paper's two metrics (§4):
//
//  * tree cost  — "the number of copies of the same packet that are
//    transmitted in the network links": a PacketTap counting every link
//    transmission of data packets carrying the probe id;
//  * receiver delay — a DeliverySink recording, per receiver host, the
//    arrival time minus the source timestamp.
//
// The probe also audits delivery: every subscribed receiver must get the
// packet exactly once in a converged tree.
#pragma once

#include <map>
#include <vector>

#include "mcast/common/membership.hpp"
#include "net/network.hpp"

namespace hbh::metrics {

class DataProbe : public net::PacketTap, public mcast::DeliverySink {
 public:
  explicit DataProbe(std::uint64_t probe_id) : probe_id_(probe_id) {}

  [[nodiscard]] std::uint64_t probe_id() const noexcept { return probe_id_; }

  // --- PacketTap ---
  void on_transmit(const net::Topology::Edge& edge, const net::Packet& packet,
                   Time now) override;
  void on_drop(NodeId at, const net::Packet& packet, std::string_view reason,
               Time now) override;

  // --- DeliverySink ---
  void on_data(NodeId host, const net::Packet& packet, Time now) override;

  /// Tree cost: total data-packet link transmissions for this probe.
  [[nodiscard]] std::size_t link_copies() const noexcept {
    return link_copies_;
  }

  /// Per-directed-link copy counts — used to detect REUNITE's duplicate
  /// copies on a single link (Figure 3).
  [[nodiscard]] const std::map<std::pair<NodeId, NodeId>, std::size_t>&
  per_link() const noexcept {
    return per_link_;
  }

  /// Max copies observed on any single directed link (1 = RPF-clean).
  [[nodiscard]] std::size_t max_copies_on_a_link() const;

  /// Delivery delays per receiver host (one entry per delivered copy).
  [[nodiscard]] const std::map<NodeId, std::vector<Time>>& deliveries()
      const noexcept {
    return deliveries_;
  }

  /// Mean delay over first deliveries of the given hosts; receivers that
  /// never got the packet are skipped (see missing()).
  [[nodiscard]] double mean_delay(const std::vector<NodeId>& hosts) const;

  /// Hosts from `expected` that received nothing.
  [[nodiscard]] std::vector<NodeId> missing(
      const std::vector<NodeId>& expected) const;

  /// Hosts that received more than one copy.
  [[nodiscard]] std::vector<NodeId> duplicated() const;

  /// True iff every expected host got exactly one copy.
  [[nodiscard]] bool exactly_once(const std::vector<NodeId>& expected) const;

  [[nodiscard]] std::size_t drops() const noexcept { return drops_; }

 private:
  [[nodiscard]] bool matches(const net::Packet& packet) const;

  std::uint64_t probe_id_;
  std::size_t link_copies_ = 0;
  std::size_t drops_ = 0;
  std::map<std::pair<NodeId, NodeId>, std::size_t> per_link_;
  std::map<NodeId, std::vector<Time>> deliveries_;
};

}  // namespace hbh::metrics
