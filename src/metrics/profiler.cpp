#include "metrics/profiler.hpp"

#include <fstream>

namespace hbh::metrics {

void write_phase_map(JsonWriter& w, const PhaseMap& phases) {
  w.begin_object();
  for (const auto& [path, s] : phases) {
    w.key(path);
    w.begin_object();
    w.member("count", s.count);
    w.member("wall_ns", s.wall_ns);
    w.member("cpu_ns", s.cpu_ns);
    w.member("allocs", s.allocs);
    w.member("alloc_bytes", s.alloc_bytes);
    w.end_object();
  }
  w.end_object();
}

namespace {

void write_resources(JsonWriter& w) {
  w.key("resources");
  w.begin_object();
  w.member("peak_rss_bytes", prof::peak_rss_bytes());
  w.member("alloc_counting", prof::kAllocCountingCompiled);
  w.end_object();
}

}  // namespace

void write_perf_profile(JsonWriter& w, const PhaseMap& phases) {
  w.begin_object();
  w.member("schema", kPerfProfileSchema);
  w.key("phases");
  write_phase_map(w, phases);
  write_resources(w);
  w.end_object();
}

bool write_profile_file(const std::map<std::string, PhaseMap>& by_label,
                        const std::map<std::string, std::string>& info,
                        const std::string& path) {
  std::ofstream out{path};
  if (!out) return false;
  JsonWriter w{out};
  w.begin_object();
  w.member("schema", kPerfProfileSchema);
  if (!info.empty()) {
    w.key("info");
    w.begin_object();
    for (const auto& [k, v] : info) w.member(k, std::string_view{v});
    w.end_object();
  }
  w.key("labels");
  w.begin_object();
  for (const auto& [label, phases] : by_label) {
    w.key(label);
    w.begin_object();
    w.key("phases");
    write_phase_map(w, phases);
    w.end_object();
  }
  w.end_object();
  write_resources(w);
  w.end_object();
  out << '\n';
  return out.good();
}

}  // namespace hbh::metrics
