#include "metrics/probe.hpp"

#include <algorithm>

namespace hbh::metrics {

bool DataProbe::matches(const net::Packet& packet) const {
  return packet.type == net::PacketType::kData &&
         packet.data().probe == probe_id_;
}

void DataProbe::on_transmit(const net::Topology::Edge& edge,
                            const net::Packet& packet, Time now) {
  (void)now;
  if (!matches(packet)) return;
  ++link_copies_;
  ++per_link_[{edge.from, edge.to}];
}

void DataProbe::on_drop(NodeId at, const net::Packet& packet,
                        std::string_view reason, Time now) {
  (void)at, (void)reason, (void)now;
  if (matches(packet)) ++drops_;
}

void DataProbe::on_data(NodeId host, const net::Packet& packet, Time now) {
  if (!matches(packet)) return;
  deliveries_[host].push_back(now - packet.data().sent_at);
}

std::size_t DataProbe::max_copies_on_a_link() const {
  std::size_t best = 0;
  for (const auto& [link, count] : per_link_) best = std::max(best, count);
  return best;
}

double DataProbe::mean_delay(const std::vector<NodeId>& hosts) const {
  double total = 0;
  std::size_t n = 0;
  for (const NodeId host : hosts) {
    const auto it = deliveries_.find(host);
    if (it == deliveries_.end() || it->second.empty()) continue;
    total += it->second.front();
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

std::vector<NodeId> DataProbe::missing(
    const std::vector<NodeId>& expected) const {
  std::vector<NodeId> out;
  for (const NodeId host : expected) {
    const auto it = deliveries_.find(host);
    if (it == deliveries_.end() || it->second.empty()) out.push_back(host);
  }
  return out;
}

std::vector<NodeId> DataProbe::duplicated() const {
  std::vector<NodeId> out;
  for (const auto& [host, arrivals] : deliveries_) {
    if (arrivals.size() > 1) out.push_back(host);
  }
  return out;
}

bool DataProbe::exactly_once(const std::vector<NodeId>& expected) const {
  return missing(expected).empty() && duplicated().empty();
}

}  // namespace hbh::metrics
