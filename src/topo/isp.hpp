// The ISP topology of Figure 6.
//
// The paper's first evaluation topology is "typical of a large ISP's
// network [1]" (Apostolopoulos et al., SIGCOMM'98): 18 routers with average
// degree ≈ 3.3, each with one attached potential receiver. Routers are
// nodes 0..17; hosts are nodes 18..35 with host 18 (attached to router 0)
// fixed as the channel source, exactly matching the paper's numbering.
//
// The exact adjacency of Fig. 6 is not machine-readable from the scan, so
// we reconstruct an 18-router backbone with the same size, degree, and
// diameter statistics (documented substitution — DESIGN.md §2). Costs are
// left at 1 and are expected to be randomized per trial.
#pragma once

#include "topo/builders.hpp"

namespace hbh::topo {

/// Number of routers in the ISP topology.
inline constexpr std::size_t kIspRouters = 18;

/// Builds the ISP scenario: routers 0..17, hosts 18..35, source = host 18.
[[nodiscard]] Scenario make_isp();

}  // namespace hbh::topo
