// Seeded random topology generation (the paper's 50-node evaluation graph).
//
// §4.1: "a random-generated topology with 50 nodes and higher connectivity
// (8.6 versus 3.3)". We generate a connected random graph with an exact
// duplex-link budget chosen to hit the requested average router degree:
// a uniform random spanning tree (random attachment order) guarantees
// connectivity, then uniformly chosen extra pairs raise the density.
#pragma once

#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace hbh::topo {

struct RandomTopoParams {
  std::size_t routers = 50;
  double average_degree = 8.6;  ///< router-to-router degree target
};

/// Builds a connected random scenario: `routers` routers with one host
/// each; the source is the host of router 0. Deterministic per seed.
[[nodiscard]] Scenario make_random(const RandomTopoParams& params, Rng& rng);

/// Convenience: the paper's 50-node / degree-8.6 configuration.
[[nodiscard]] Scenario make_random50(Rng& rng);

/// Waxman (1988) geometric random graph: nodes placed uniformly in the
/// unit square; edge (u,v) appears with probability
///     p(u,v) = alpha * exp(-d(u,v) / (beta * L))
/// where d is Euclidean distance and L the maximum distance. The classic
/// Internet-topology generator (used by GT-ITM, which ns-2 studies of this
/// era relied on). Connectivity is guaranteed by patching components with
/// their closest inter-component pair.
struct WaxmanParams {
  std::size_t routers = 50;
  double alpha = 0.25;  ///< overall edge density
  double beta = 0.4;    ///< long-edge affinity (higher => more long links)
};

[[nodiscard]] Scenario make_waxman(const WaxmanParams& params, Rng& rng);

}  // namespace hbh::topo
