// Generic topology builders and cost assignment helpers.
//
// These produce the small regular graphs the unit tests use and implement
// the paper's cost model: every *directed* edge gets an integer cost drawn
// uniformly from [1, 10], with propagation delay equal to the cost (§4.1;
// see DESIGN.md for the delay=cost substitution rationale).
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace hbh::topo {

/// A topology plus the host bookkeeping the experiments need.
struct Scenario {
  net::Topology topo;
  std::vector<NodeId> routers;
  std::vector<NodeId> hosts;          ///< hosts[i] attaches to routers[i]
  NodeId source_host = kNoNode;       ///< the channel source (a host)

  /// All hosts except the source — the candidate receiver set.
  [[nodiscard]] std::vector<NodeId> candidate_receivers() const;
};

/// Line 0-1-...-(n-1), unit symmetric costs.
[[nodiscard]] net::Topology make_line(std::size_t n);

/// Ring of n nodes, unit symmetric costs.
[[nodiscard]] net::Topology make_ring(std::size_t n);

/// Star: node 0 is the hub, spokes 1..n-1, unit symmetric costs.
[[nodiscard]] net::Topology make_star(std::size_t n);

/// w×h grid with 4-neighborhood, unit symmetric costs.
[[nodiscard]] net::Topology make_grid(std::size_t w, std::size_t h);

/// Complete graph on n nodes, unit symmetric costs.
[[nodiscard]] net::Topology make_full_mesh(std::size_t n);

/// Attaches one host to each given router (duplex unit links) and records
/// the mapping in a Scenario.
[[nodiscard]] Scenario attach_hosts(net::Topology topo,
                                    std::vector<NodeId> routers,
                                    std::size_t source_index = 0);

/// Redraws every directed edge's cost uniformly from [lo, hi] (integers)
/// and sets delay = cost. Host access links are included — the paper
/// randomizes every link. Congestion fields (capacity, queue) survive.
void randomize_costs(net::Topology& topo, Rng& rng, int lo = 1, int hi = 10);

/// Copies each duplex link's forward cost onto its reverse direction,
/// producing a fully symmetric network (the ablation configuration).
void symmetrize_costs(net::Topology& topo);

/// Applies `capacity` (bytes/time-unit; see LinkSpec::capacity) with the
/// given queue configuration to every backbone (router-router) directed
/// edge. Host access links stay uncapacitated so end systems never bottleneck
/// themselves — contention happens where replication does, at the routers.
/// Costs and delays are untouched.
void apply_backbone_capacity(
    net::Topology& topo, double capacity,
    std::size_t queue_limit = net::kDefaultQueueLimit,
    net::AqmPolicy aqm = net::AqmPolicy::kDropTail);

}  // namespace hbh::topo
