#include "topo/random.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <utility>

namespace hbh::topo {

using net::LinkSpec;
using net::Topology;

Scenario make_random(const RandomTopoParams& params, Rng& rng) {
  const std::size_t n = params.routers;
  assert(n >= 2);
  const auto target_links = static_cast<std::size_t>(
      std::lround(params.average_degree * static_cast<double>(n) / 2.0));
  [[maybe_unused]] const std::size_t max_links = n * (n - 1) / 2;
  assert(target_links >= n - 1 && target_links <= max_links);

  Topology t;
  std::vector<NodeId> routers;
  routers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) routers.push_back(t.add_node());

  std::set<std::pair<std::uint32_t, std::uint32_t>> used;
  const auto link = [&](std::size_t a, std::size_t b) {
    // NB: std::minmax(x, y) on prvalues returns dangling references;
    // build the ordered pair from values explicitly.
    const std::uint32_t ia = routers[a].index();
    const std::uint32_t ib = routers[b].index();
    const std::pair<std::uint32_t, std::uint32_t> key{std::min(ia, ib),
                                                      std::max(ia, ib)};
    if (!used.insert(key).second) return false;
    t.add_duplex(routers[a], routers[b], LinkSpec{.cost = 1, .delay = 1});
    return true;
  };

  // Spanning tree: attach node i (in shuffled order) to a random earlier
  // node, guaranteeing connectivity with exactly n-1 links.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t parent =
        order[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))];
    [[maybe_unused]] const bool added = link(order[i], parent);
    assert(added);
  }

  // Densify with uniformly random non-duplicate pairs.
  std::size_t links = n - 1;
  while (links < target_links) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (a == b) continue;
    if (link(a, b)) ++links;
  }
  assert(t.strongly_connected());

  return attach_hosts(std::move(t), std::move(routers), /*source_index=*/0);
}

Scenario make_random50(Rng& rng) { return make_random(RandomTopoParams{}, rng); }

Scenario make_waxman(const WaxmanParams& params, Rng& rng) {
  const std::size_t n = params.routers;
  assert(n >= 2);

  struct Point {
    double x, y;
  };
  std::vector<Point> pos(n);
  for (auto& p : pos) p = Point{rng.uniform01(), rng.uniform01()};
  const auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = pos[a].x - pos[b].x;
    const double dy = pos[a].y - pos[b].y;
    return std::sqrt(dx * dx + dy * dy);
  };
  const double l_max = std::sqrt(2.0);

  Topology t;
  std::vector<NodeId> routers;
  routers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) routers.push_back(t.add_node());

  // Probabilistic edges.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double p =
          params.alpha * std::exp(-dist(a, b) / (params.beta * l_max));
      if (rng.chance(p)) {
        t.add_duplex(routers[a], routers[b], LinkSpec{.cost = 1, .delay = 1});
      }
    }
  }

  // Patch connectivity: union components through their closest pair.
  std::vector<std::size_t> component(n);
  const auto recolor = [&] {
    for (std::size_t i = 0; i < n; ++i) component[i] = i;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t e = 0; e < t.link_count(); ++e) {
        const auto& edge = t.edge(LinkId{e});
        const std::size_t ca = component[edge.from.index()];
        const std::size_t cb = component[edge.to.index()];
        if (ca != cb) {
          const std::size_t lo = std::min(ca, cb);
          for (auto& c : component) {
            if (c == ca || c == cb) c = lo;
          }
          changed = true;
        }
      }
    }
  };
  recolor();
  for (;;) {
    std::size_t best_a = 0;
    std::size_t best_b = 0;
    double best_d = -1;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (component[a] == component[b]) continue;
        const double d = dist(a, b);
        if (best_d < 0 || d < best_d) {
          best_d = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_d < 0) break;  // single component
    t.add_duplex(routers[best_a], routers[best_b],
                 LinkSpec{.cost = 1, .delay = 1});
    recolor();
  }
  assert(t.strongly_connected());
  return attach_hosts(std::move(t), std::move(routers), /*source_index=*/0);
}

}  // namespace hbh::topo
