#include "topo/builders.hpp"

#include <cassert>

namespace hbh::topo {

using net::LinkSpec;
using net::NodeKind;
using net::Topology;

std::vector<NodeId> Scenario::candidate_receivers() const {
  std::vector<NodeId> result;
  result.reserve(hosts.size());
  for (const NodeId h : hosts) {
    if (h != source_host) result.push_back(h);
  }
  return result;
}

namespace {
std::vector<NodeId> add_nodes(Topology& t, std::size_t n) {
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(t.add_node());
  return ids;
}
}  // namespace

Topology make_line(std::size_t n) {
  assert(n >= 1);
  Topology t;
  const auto ids = add_nodes(t, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.add_duplex(ids[i], ids[i + 1], LinkSpec{.cost = 1, .delay = 1});
  }
  return t;
}

Topology make_ring(std::size_t n) {
  assert(n >= 3);
  Topology t = make_line(n);
  t.add_duplex(NodeId{static_cast<std::uint32_t>(n - 1)}, NodeId{0},
               LinkSpec{.cost = 1, .delay = 1});
  return t;
}

Topology make_star(std::size_t n) {
  assert(n >= 2);
  Topology t;
  const auto ids = add_nodes(t, n);
  for (std::size_t i = 1; i < n; ++i) {
    t.add_duplex(ids[0], ids[i], LinkSpec{.cost = 1, .delay = 1});
  }
  return t;
}

Topology make_grid(std::size_t w, std::size_t h) {
  assert(w >= 1 && h >= 1);
  Topology t;
  const auto ids = add_nodes(t, w * h);
  const auto at = [&](std::size_t x, std::size_t y) { return ids[y * w + x]; };
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      if (x + 1 < w) t.add_duplex(at(x, y), at(x + 1, y), LinkSpec{.cost = 1, .delay = 1});
      if (y + 1 < h) t.add_duplex(at(x, y), at(x, y + 1), LinkSpec{.cost = 1, .delay = 1});
    }
  }
  return t;
}

Topology make_full_mesh(std::size_t n) {
  assert(n >= 2);
  Topology t;
  const auto ids = add_nodes(t, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      t.add_duplex(ids[i], ids[j], LinkSpec{.cost = 1, .delay = 1});
    }
  }
  return t;
}

Scenario attach_hosts(Topology topo, std::vector<NodeId> routers,
                      std::size_t source_index) {
  assert(!routers.empty());
  assert(source_index < routers.size());
  Scenario s;
  s.routers = std::move(routers);
  s.hosts.reserve(s.routers.size());
  for (const NodeId r : s.routers) {
    const NodeId h = topo.add_node(NodeKind::kHost);
    topo.add_duplex(r, h, LinkSpec{.cost = 1, .delay = 1});
    s.hosts.push_back(h);
  }
  s.source_host = s.hosts[source_index];
  s.topo = std::move(topo);
  return s;
}

void randomize_costs(net::Topology& topo, Rng& rng, int lo, int hi) {
  assert(lo >= 1 && lo <= hi);
  for (std::uint32_t i = 0; i < topo.link_count(); ++i) {
    const auto c = static_cast<double>(rng.uniform_int(lo, hi));
    topo.set_cost_delay(LinkId{i}, c, c);
  }
}

void symmetrize_costs(net::Topology& topo) {
  for (std::uint32_t i = 0; i < topo.link_count(); ++i) {
    const auto& e = topo.edge(LinkId{i});
    const auto rev = topo.find_link(e.to, e.from);
    if (rev.has_value() && rev->index() > i) {
      topo.set_cost_delay(*rev, e.attrs.cost, e.attrs.delay);
    }
  }
}

void apply_backbone_capacity(net::Topology& topo, double capacity,
                             std::size_t queue_limit, net::AqmPolicy aqm) {
  assert(capacity > 0);
  for (std::uint32_t i = 0; i < topo.link_count(); ++i) {
    const auto& e = topo.edge(LinkId{i});
    if (topo.kind(e.from) != NodeKind::kRouter ||
        topo.kind(e.to) != NodeKind::kRouter) {
      continue;
    }
    topo.set_spec(LinkId{i},
                  e.attrs.with_capacity(capacity).with_queue(queue_limit, aqm));
  }
}

}  // namespace hbh::topo
