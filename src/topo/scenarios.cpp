#include "topo/scenarios.hpp"

namespace hbh::topo {

using net::LinkSpec;
using net::NodeKind;
using net::Topology;

namespace {
LinkSpec c(double cost) { return LinkSpec{.cost = cost, .delay = cost}; }
}  // namespace

Fig2Scenario make_fig2() {
  Fig2Scenario f;
  Topology& t = f.topo;
  f.s = t.add_node(NodeKind::kHost);
  f.h1 = t.add_node();
  f.h2 = t.add_node();
  f.h3 = t.add_node();
  f.h4 = t.add_node();
  f.r1 = t.add_node(NodeKind::kHost);
  f.r2 = t.add_node(NodeKind::kHost);
  f.r3 = t.add_node(NodeKind::kHost);

  // Directed costs chosen so that (verified in scenario tests):
  //   r1->S goes via H2 but S->r1 goes via H3 (the Fig. 2 asymmetry),
  //   r2->S goes via H3 but S->r2 goes via H4,
  //   r3's routes are symmetric through H3/H1.
  t.add_duplex(f.s, f.h1, c(1), c(1));
  t.add_duplex(f.s, f.h4, c(1), c(5));    // S->H4 cheap, H4->S expensive
  t.add_duplex(f.h1, f.h2, c(5), c(1));   // H1->H2 expensive, H2->H1 cheap
  t.add_duplex(f.h1, f.h3, c(1), c(1));
  t.add_duplex(f.h2, f.r1, c(1), c(1));
  t.add_duplex(f.h3, f.r1, c(1), c(5));   // H3->r1 cheap, r1->H3 expensive
  t.add_duplex(f.h3, f.r2, c(2), c(1));   // H3->r2 pricier than S->H4->r2,
                                          // but still H3's best route to r2
  t.add_duplex(f.h3, f.r3, c(1), c(1));
  t.add_duplex(f.h4, f.r2, c(1), c(5));   // H4->r2 cheap, r2->H4 expensive
  return f;
}

Fig3Scenario make_fig3() {
  Fig3Scenario f;
  Topology& t = f.topo;
  f.s = t.add_node(NodeKind::kHost);
  f.w1 = t.add_node();
  f.w2 = t.add_node();
  f.w3 = t.add_node();
  f.w4 = t.add_node();
  f.w5 = t.add_node();
  f.w6 = t.add_node();
  f.r1 = t.add_node(NodeKind::kHost);
  f.r2 = t.add_node(NodeKind::kHost);

  // Downstream traffic prefers R1->R6->{R4,R5}; upstream joins prefer
  // {R4,R5}->{R2,R3}->R1 (verified in scenario tests).
  t.add_duplex(f.s, f.w1, c(1), c(1));
  t.add_duplex(f.w1, f.w2, c(5), c(1));
  t.add_duplex(f.w1, f.w3, c(5), c(1));
  t.add_duplex(f.w1, f.w6, c(1), c(5));
  t.add_duplex(f.w2, f.w4, c(1), c(1));
  t.add_duplex(f.w3, f.w5, c(1), c(1));
  t.add_duplex(f.w6, f.w4, c(1), c(5));
  t.add_duplex(f.w6, f.w5, c(1), c(5));
  t.add_duplex(f.w4, f.r1, c(1), c(1));
  t.add_duplex(f.w5, f.r2, c(1), c(1));
  return f;
}

HotPotatoScenario make_hot_potato() {
  HotPotatoScenario h;
  Topology& t = h.topo;
  h.a1 = t.add_node();
  h.a2 = t.add_node();
  h.a3 = t.add_node();
  h.b1 = t.add_node();
  h.b2 = t.add_node();
  h.b3 = t.add_node();
  h.src = t.add_node(NodeKind::kHost);
  h.rx_west = t.add_node(NodeKind::kHost);
  h.rx_east = t.add_node(NodeKind::kHost);

  // Long-haul backbones, priced per direction so that each ISP dumps
  // cross-network traffic at the nearest peering point ("hot potato"):
  // A's eastbound->westbound direction is expensive (A won't haul its
  // customers' traffic across the country), B's westbound->eastbound
  // likewise. The resulting unicast routes between src (east, ISP A) and
  // rx_west (west, ISP B) differ per direction — verified in tests.
  t.add_duplex(h.a1, h.a2, c(9), c(1));  // west-bound on A expensive
  t.add_duplex(h.a2, h.a3, c(9), c(1));
  t.add_duplex(h.b1, h.b2, c(2), c(9));  // east-bound on B expensive
  t.add_duplex(h.b2, h.b3, c(2), c(9));
  // Peering points: cheap crossings at both coasts.
  t.add_duplex(h.a1, h.b1, c(1), c(1));
  t.add_duplex(h.a3, h.b3, c(1), c(1));
  // Access links.
  t.add_duplex(h.a1, h.src, c(1), c(1));
  t.add_duplex(h.b3, h.rx_west, c(1), c(1));
  t.add_duplex(h.b1, h.rx_east, c(1), c(1));
  return h;
}

Fig1Scenario make_fig1() {
  Fig1Scenario f;
  Topology& t = f.topo;
  f.s = t.add_node(NodeKind::kHost);
  f.h1 = t.add_node();
  f.h2 = t.add_node();
  f.h3 = t.add_node();
  f.h4 = t.add_node();
  f.h5 = t.add_node();
  f.h6 = t.add_node();
  f.h7 = t.add_node();
  f.r1 = t.add_node(NodeKind::kHost);
  f.r2 = t.add_node(NodeKind::kHost);
  f.r3 = t.add_node(NodeKind::kHost);
  f.r4 = t.add_node(NodeKind::kHost);
  f.r5 = t.add_node(NodeKind::kHost);
  f.r6 = t.add_node(NodeKind::kHost);
  f.r7 = t.add_node(NodeKind::kHost);
  f.r8 = t.add_node(NodeKind::kHost);

  t.add_duplex(f.s, f.h1, c(1));
  // Left subtree: H2 is a pure transit router, H4 and H6 branch.
  t.add_duplex(f.h1, f.h2, c(1));
  t.add_duplex(f.h2, f.h4, c(1));
  t.add_duplex(f.h4, f.h6, c(1));
  t.add_duplex(f.h4, f.r7, c(1));
  t.add_duplex(f.h6, f.r1, c(1));
  t.add_duplex(f.h6, f.r2, c(1));
  t.add_duplex(f.h6, f.r3, c(1));
  // Right subtree: H3 transit, H5 and H7 branch.
  t.add_duplex(f.h1, f.h3, c(1));
  t.add_duplex(f.h3, f.h5, c(1));
  t.add_duplex(f.h5, f.h7, c(1));
  t.add_duplex(f.h5, f.r8, c(1));
  t.add_duplex(f.h7, f.r4, c(1));
  t.add_duplex(f.h7, f.r5, c(1));
  t.add_duplex(f.h7, f.r6, c(1));
  return f;
}

}  // namespace hbh::topo
