#include "topo/isp.hpp"

#include <array>
#include <cassert>

namespace hbh::topo {

using net::LinkSpec;
using net::Topology;

Scenario make_isp() {
  Topology t;
  std::vector<NodeId> routers;
  routers.reserve(kIspRouters);
  for (std::size_t i = 0; i < kIspRouters; ++i) routers.push_back(t.add_node());

  // 30 duplex backbone links -> average router degree 60/18 = 3.33,
  // matching the paper's quoted 3.3. The layout is a three-tier mesh
  // (two coasts joined by transit rows) in the spirit of the SIGCOMM'98
  // ISP map the paper reuses.
  constexpr std::array<std::pair<int, int>, 30> kLinks{{
      {0, 1},  {0, 2},   {0, 3},   {1, 2},   {1, 4},   {2, 5},
      {3, 4},  {3, 6},   {4, 5},   {4, 7},   {5, 8},   {6, 7},
      {6, 9},  {7, 8},   {7, 10},  {8, 11},  {9, 10},  {9, 12},
      {10, 11}, {10, 13}, {11, 14}, {12, 13}, {12, 15}, {13, 14},
      {13, 16}, {14, 17}, {15, 16}, {16, 17}, {6, 10},  {8, 14},
  }};
  for (const auto& [a, b] : kLinks) {
    t.add_duplex(routers[static_cast<std::size_t>(a)],
                 routers[static_cast<std::size_t>(b)],
                 LinkSpec{.cost = 1, .delay = 1});
  }
  assert(t.strongly_connected());

  // Hosts 18..35, one per router; host 18 (on router 0) is the source.
  return attach_hosts(std::move(t), std::move(routers), /*source_index=*/0);
}

}  // namespace hbh::topo
