// The hand-built scenario topologies of the paper's Figures 1–5.
//
// Each builder returns a topology whose *directed* costs are engineered so
// the unicast routes match the routes the paper states for that figure.
// Tests assert the routes first, then the protocol behaviour on top.
#pragma once

#include "net/topology.hpp"
#include "util/ids.hpp"

namespace hbh::topo {

/// Figure 2 / Figure 5 scenario (identical topology; Fig. 5 adds r3).
///
/// Unicast routes forced by the costs:
///   r1 -> H2 -> H1 -> S        (r1's upstream path)
///   S  -> H1 -> H3 -> r1       (downstream path differs: asymmetry)
///   r2 -> H3 -> H1 -> S
///   S  -> H4 -> r2
///   r3 -> H3 -> H1 -> S  and  S -> H1 -> H3 -> r3  (symmetric)
struct Fig2Scenario {
  net::Topology topo;
  NodeId s;                       ///< source host
  NodeId h1, h2, h3, h4;          ///< routers (R1..R4 in Fig. 2 numbering)
  NodeId r1, r2, r3;              ///< receiver hosts
};
[[nodiscard]] Fig2Scenario make_fig2();

/// Figure 3 scenario: asymmetric routes that make REUNITE duplicate
/// packets on the link R1-R6.
///
/// Routes forced by the costs:
///   r1 -> R4 -> R2 -> R1 -> S      S -> R1 -> R6 -> R4 -> r1
///   r2 -> R5 -> R3 -> R1 -> S      S -> R1 -> R6 -> R5 -> r2
struct Fig3Scenario {
  net::Topology topo;
  NodeId s;
  NodeId w1, w2, w3, w4, w5, w6;  ///< routers R1..R6
  NodeId r1, r2;                  ///< receiver hosts
};
[[nodiscard]] Fig3Scenario make_fig3();

/// §2.3's "hot-potato routing" scenario: two ISPs (A: a1-a2-a3, B:
/// b1-b2-b3) spanning a continent with peering points at both ends
/// (a1-b1 "east", a3-b3 "west"). Each ISP hands cross-network traffic
/// off at the *nearest* peering point to spare its own long-haul links,
/// so the A->B and B->A routes between the same endpoints differ — the
/// economically-induced asymmetry the paper describes.
struct HotPotatoScenario {
  net::Topology topo;
  NodeId a1, a2, a3;  ///< ISP A backbone, east to west
  NodeId b1, b2, b3;  ///< ISP B backbone, east to west
  NodeId src;         ///< content source host on A's east coast (a1)
  NodeId rx_west;     ///< receiver host on B's west coast (b3)
  NodeId rx_east;     ///< receiver host on B's east coast (b1)
};
[[nodiscard]] HotPotatoScenario make_hot_potato();

/// Figure 1 / Figure 4 scenario: the symmetric "twin tree" used to
/// illustrate recursive-unicast distribution and departure stability.
/// All costs are 1 (symmetric); S fans out through H1 into two subtrees:
///   H1 - H2 - H4 {H6{r1,r2,r3}, r7}   and   H1 - H3 - H5 {H7{r4,r5,r6}, r8}
struct Fig1Scenario {
  net::Topology topo;
  NodeId s;
  NodeId h1, h2, h3, h4, h5, h6, h7;
  NodeId r1, r2, r3, r4, r5, r6, r7, r8;

  /// All eight receivers in index order.
  [[nodiscard]] std::vector<NodeId> receivers() const {
    return {r1, r2, r3, r4, r5, r6, r7, r8};
  }
};
[[nodiscard]] Fig1Scenario make_fig1();

}  // namespace hbh::topo
