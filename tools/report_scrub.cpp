// report_scrub — strips machine-dependent fields from a bench/report JSON
// so two runs can be compared byte-for-byte (the CI fast-path equivalence
// tripwire: HBH_FASTPATH=0 and =1 must produce identical simulations).
//
// Dropped members, at any nesting depth:
//   * wall-clock and host-load fields: wall_seconds, wall_ns, cpu_ns,
//     packets_per_second, events_per_second, peak_rss_bytes,
//     audit_wall_seconds
//   * allocator counters (allocs, alloc_bytes): identical for a fixed
//     build, but the fast path legitimately changes allocation shape
//   * any key containing "fastpath": the fast-path telemetry (stats
//     sub-objects, fastpath.* gauges, fastpath/* profile phases) is zero
//     or absent with HBH_FASTPATH=0 by definition
//
// Everything else — packet counts, event counts, queue pushes, drop
// reasons, per-receiver delays, tree metrics — must match exactly.
//
// Usage: report_scrub <in.json> <out.json>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>

#include "metrics/json.hpp"
#include "metrics/json_parse.hpp"

namespace {

using hbh::metrics::JsonValue;
using hbh::metrics::JsonWriter;

bool scrubbed_key(std::string_view key) {
  static constexpr std::string_view kDropped[] = {
      "wall_seconds",       "wall_ns",          "cpu_ns",
      "allocs",             "alloc_bytes",      "packets_per_second",
      "events_per_second",  "peak_rss_bytes",   "audit_wall_seconds",
  };
  for (const std::string_view k : kDropped) {
    if (key == k) return true;
  }
  return key.find("fastpath") != std::string_view::npos;
}

void write_scrubbed(JsonWriter& w, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      w.null();
      break;
    case JsonValue::Kind::kBool:
      w.value(v.boolean);
      break;
    case JsonValue::Kind::kNumber:
      w.value(v.number);
      break;
    case JsonValue::Kind::kString:
      w.value(v.string);
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [key, child] : v.object) {
        if (scrubbed_key(key)) continue;
        w.key(key);
        write_scrubbed(w, child);
      }
      w.end_object();
      break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& child : v.array) write_scrubbed(w, child);
      w.end_array();
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: report_scrub <in.json> <out.json>\n");
    return 2;
  }
  JsonValue doc;
  std::string error;
  if (!hbh::metrics::parse_json_file(argv[1], doc, &error)) {
    std::fprintf(stderr, "report_scrub: %s: %s\n", argv[1], error.c_str());
    return 1;
  }
  std::ofstream out{argv[2]};
  if (!out) {
    std::fprintf(stderr, "report_scrub: cannot write %s\n", argv[2]);
    return 1;
  }
  JsonWriter w{out};
  write_scrubbed(w, doc);
  out << '\n';
  if (!w.complete() || !out) {
    std::fprintf(stderr, "report_scrub: write failed for %s\n", argv[2]);
    return 1;
  }
  return 0;
}
