// perf_compare: diff fresh bench artifacts against committed baselines.
//
//   perf_compare [--report-only] [--tolerance X]
//       <baseline.json> <current.json> [<baseline.json> <current.json> ...]
//
// Each pair checks one bench artifact (BENCH_perf_smoke.json,
// BENCH_perf_dataplane.json, ...) against one hbh.perf_baseline/v1 file
// from bench/baselines/. Per-metric noise thresholds live in the baseline;
// --tolerance (default HBH_PERF_TOLERANCE, then 1.0) scales all of them.
//
// Exit codes:
//   0  every metric within its threshold (or --report-only)
//   1  at least one metric regressed or was missing from the artifact
//   2  usage error, unreadable/missing file, or schema mismatch
//
// CI runs this as a report-only gate on the non-sanitizer job; the strict
// mode backs the perf-labeled ctest gate and local use
// (docs/PERFORMANCE.md "Recording and comparing baselines").
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "metrics/baseline.hpp"
#include "metrics/json_parse.hpp"
#include "util/env.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRegressed = 1;
constexpr int kExitError = 2;

void usage() {
  std::fprintf(
      stderr,
      "usage: perf_compare [--report-only] [--tolerance X]\n"
      "                    <baseline.json> <current.json> [more pairs...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbh;

  bool report_only = false;
  double tolerance = env_perf_tolerance();
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report-only") {
      report_only = true;
    } else if (arg == "--tolerance") {
      if (i + 1 >= argc) {
        usage();
        return kExitError;
      }
      tolerance = std::atof(argv[++i]);
      if (tolerance <= 0) {
        std::fprintf(stderr, "perf_compare: invalid --tolerance\n");
        return kExitError;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return kExitOk;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() || paths.size() % 2 != 0) {
    usage();
    return kExitError;
  }

  std::size_t regressed = 0;
  std::size_t missing = 0;
  for (std::size_t i = 0; i < paths.size(); i += 2) {
    const std::string& baseline_path = paths[i];
    const std::string& current_path = paths[i + 1];

    std::string error;
    metrics::JsonValue baseline_doc;
    if (!metrics::parse_json_file(baseline_path, baseline_doc, &error)) {
      std::fprintf(stderr, "perf_compare: baseline %s\n", error.c_str());
      return kExitError;
    }
    metrics::Baseline baseline;
    if (!metrics::parse_baseline(baseline_doc, baseline, &error)) {
      std::fprintf(stderr, "perf_compare: %s: %s\n", baseline_path.c_str(),
                   error.c_str());
      return kExitError;
    }
    metrics::JsonValue current;
    if (!metrics::parse_json_file(current_path, current, &error)) {
      std::fprintf(stderr, "perf_compare: current %s\n", error.c_str());
      return kExitError;
    }

    const metrics::CompareReport report =
        metrics::compare_to_baseline(baseline, current, tolerance);
    std::printf("%s (%s vs %s, tolerance x%.2f)\n",
                baseline.bench.empty() ? "bench" : baseline.bench.c_str(),
                baseline_path.c_str(), current_path.c_str(), tolerance);
    for (const auto& m : report.metrics) {
      const double rel =
          m.baseline != 0 ? (m.current - m.baseline) / m.baseline : 0.0;
      std::printf("  %-55s %14.4g -> %14.4g  %+7.1f%%  (allow %s %.0f%%)  %s\n",
                  m.name.c_str(), m.baseline, m.current, 100.0 * rel,
                  std::string(metrics::to_string(m.direction)).c_str(),
                  100.0 * m.noise,
                  std::string(metrics::to_string(m.status)).c_str());
    }
    regressed += report.regressed();
    missing += report.missing();
  }

  if (regressed + missing > 0) {
    std::printf("perf_compare: %zu regressed, %zu missing%s\n", regressed,
                missing, report_only ? " (report-only: not failing)" : "");
    return report_only ? kExitOk : kExitRegressed;
  }
  std::printf("perf_compare: all metrics within thresholds\n");
  return kExitOk;
}
