// IP-Multicast clouds as HBH tree leaves (paper §3 / §5 future work).
//
// A campus network with classic IP Multicast hangs off one border router.
// Its hosts signal membership with IGMP-style reports; the border router
// (IgmpLeafRouter) joins the HBH channel once on their behalf. However
// many local members come and go, the wide-area HBH tree sees exactly one
// leaf — the paper's incremental-deployment story at the receiving edge.
#include <cstdio>

#include "mcast/common/membership.hpp"
#include "mcast/hbh/igmp_leaf.hpp"
#include "mcast/hbh/router.hpp"
#include "mcast/hbh/source.hpp"
#include "net/network.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"

using namespace hbh;
using namespace hbh::mcast;
namespace hbhp = ::hbh::mcast::hbh;  // 'hbh' alone is ambiguous under the usings

int main() {
  // Backbone: sh - n0 - n1 - n2(border); campus hosts c1..c4 on n2.
  net::Topology topo = topo::make_line(3);
  const NodeId sh = topo.add_node(net::NodeKind::kHost);
  topo.add_duplex(NodeId{0}, sh, net::LinkAttrs{1, 1});
  std::vector<NodeId> campus;
  for (int i = 0; i < 4; ++i) {
    const NodeId h = topo.add_node(net::NodeKind::kHost);
    topo.add_duplex(NodeId{2}, h, net::LinkAttrs{1, 1});
    campus.push_back(h);
  }

  sim::Simulator sim;
  routing::UnicastRouting routes{topo};
  net::Network net{sim, topo, routes};
  const mcast::McastConfig cfg{};
  const net::Channel ch{net.address_of(sh), GroupAddr::ssm(1)};

  auto* source = static_cast<hbhp::HbhSource*>(
      &net.attach(sh, std::make_unique<hbhp::HbhSource>(ch, cfg)));
  net.attach(NodeId{0}, std::make_unique<hbhp::HbhRouter>(cfg));
  net.attach(NodeId{1}, std::make_unique<hbhp::HbhRouter>(cfg));
  auto* border = static_cast<hbhp::IgmpLeafRouter*>(
      &net.attach(NodeId{2}, std::make_unique<hbhp::IgmpLeafRouter>(cfg)));
  std::vector<ReceiverHost*> hosts;
  for (const NodeId h : campus) {
    hosts.push_back(static_cast<ReceiverHost*>(&net.attach(
        h, std::make_unique<ReceiverHost>(JoinStyle::kPimJoin, cfg))));
  }
  net.start();

  std::printf("IP-Multicast campus behind border router n2 (HBH upstream)\n\n");

  // Members trickle in via IGMP; the border joins upstream exactly once.
  const Ipv4Addr border_addr = net.address_of(NodeId{2});
  hosts[0]->subscribe(ch, border_addr);
  sim.run_for(25);
  hosts[1]->subscribe(ch, border_addr);
  hosts[2]->subscribe(ch, border_addr);
  sim.run_for(25);

  std::printf("after 3 IGMP reports: border has %zu local members, "
              "source sees %zu receiver(s)\n",
              border->local_members(ch).size(),
              source->mft().data_targets(sim.now()).size());

  source->send_data(1, 0);
  sim.run_for(20);
  std::size_t delivered = 0;
  for (const auto* h : hosts) delivered += h->deliveries().size();
  std::printf("one data packet -> %zu campus deliveries (1 backbone copy)\n",
              delivered);

  // The last member leaving tears the leaf down; upstream state ages out.
  hosts[0]->unsubscribe(ch);
  hosts[1]->unsubscribe(ch);
  hosts[2]->unsubscribe(ch);
  sim.run_for(150);
  std::printf("after all IGMP leaves: border upstream member: %s, "
              "source members: %s\n",
              border->upstream_member(ch) ? "yes" : "no",
              source->has_members() ? "yes" : "no");
  return delivered == 3 ? 0 : 1;
}
