// Quickstart: build a topology, run the HBH protocol, watch a channel
// deliver data.
//
// This is the 5-minute tour of the library's public API:
//   1. build a Topology (or use a generator from hbh::topo),
//   2. wrap it in a harness::Session for the protocol you want,
//   3. grab a ChannelHandle, subscribe receivers, let the control plane
//      converge,
//   4. measure(): inject a data packet and inspect cost/delay/delivery.
// One Session is one network; it can host many ⟨S,G⟩ channels at once
// (docs/CHANNELS.md) — the second half adds a channel and takes the
// cross-channel state census.
#include <cstdio>

#include "harness/session.hpp"
#include "topo/builders.hpp"

using namespace hbh;

int main() {
  // A small ISP-ish ring-with-chords backbone: 6 routers, one host each.
  net::Topology backbone = topo::make_ring(6);
  backbone.add_duplex(NodeId{0}, NodeId{3}, net::LinkAttrs{2, 2});
  topo::Scenario scenario = topo::attach_hosts(
      std::move(backbone),
      {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}, NodeId{5}},
      /*source_index=*/0);

  std::printf("HBH quickstart on a 6-router ring (source host n%u)\n",
              scenario.source_host.index());

  // The constructor creates a default channel rooted at the scenario's
  // source host; its handle carries the per-channel API.
  harness::Session session{scenario, harness::Protocol::kHbh};
  harness::ChannelHandle channel = session.default_channel();
  std::printf("channel: %s\n", channel.channel().to_string().c_str());

  // Three receivers join; the control plane (join/tree/fusion messages)
  // builds the recursive-unicast tree over the next few refresh periods.
  channel.subscribe(scenario.hosts[2]);
  channel.subscribe(scenario.hosts[3], /*delay=*/5);
  channel.subscribe(scenario.hosts[5], /*delay=*/9);
  session.run_for(120);

  const harness::Measurement m = channel.measure();
  std::printf("\nafter convergence, one data packet:\n");
  std::printf("  tree cost        : %zu link copies\n", m.tree_cost);
  std::printf("  mean delay       : %.1f time units\n", m.mean_delay);
  std::printf("  delivered 1x each: %s\n",
              m.delivered_exactly_once() ? "yes" : "NO");

  std::printf("\ndistribution tree (copies per directed link):\n");
  for (const auto& [link, copies] : m.per_link) {
    std::printf("  %s -> %-4s x%zu\n", to_string(link.first).c_str(),
                to_string(link.second).c_str(), copies);
  }

  // Group dynamics: one receiver leaves, soft state times out, the tree
  // shrinks — the remaining members keep receiving.
  channel.unsubscribe(scenario.hosts[3]);
  session.run_for(200);
  const harness::Measurement after = channel.measure();
  std::printf("\nafter host n%u left: cost %zu -> %zu, members %zu\n",
              scenario.hosts[3].index(), m.tree_cost, after.tree_cost,
              channel.members().size());

  // Multi-channel: the same network carries a second ⟨S,G⟩ channel,
  // sourced at a different host, with its own member set. Probes carry
  // unique ids, so measuring either channel never sees the other's
  // traffic.
  harness::ChannelHandle second = session.create_channel(scenario.hosts[4]);
  second.subscribe(scenario.hosts[1]);
  second.subscribe(scenario.hosts[3]);
  session.run_for(120);
  const harness::Measurement m2 = second.measure();
  std::printf("\nsecond channel %s: cost %zu, delivered 1x each: %s\n",
              second.channel().to_string().c_str(), m2.tree_cost,
              m2.delivered_exactly_once() ? "yes" : "NO");

  // The cross-channel census shows where the aggregate state lives: HBH
  // routers that do not branch hold control-only MCT state — no
  // forwarding entries (the paper's §2.1 scaling argument; measured at
  // scale by bench/ablation_state_scaling).
  const harness::AggregateCensus census = session.aggregate_census();
  std::printf(
      "state census over %zu channels: branching %zu routers "
      "(%zu MFT entries), non-branching %zu routers (%zu MFT entries)\n",
      session.channel_count(), census.branching.routers,
      census.branching.forwarding_entries, census.non_branching.routers,
      census.non_branching.forwarding_entries);

  const bool ok = after.delivered_exactly_once() &&
                  m2.delivered_exactly_once() &&
                  census.non_branching.forwarding_entries == 0;
  return ok ? 0 : 1;
}
