// Quickstart: build a topology, run the HBH protocol, watch a channel
// deliver data.
//
// This is the 5-minute tour of the library's public API:
//   1. build a Topology (or use a generator from hbh::topo),
//   2. wrap it in a harness::Session for the protocol you want,
//   3. subscribe receivers and let the control plane converge,
//   4. measure(): inject a data packet and inspect cost/delay/delivery.
#include <cstdio>

#include "harness/session.hpp"
#include "topo/builders.hpp"

using namespace hbh;

int main() {
  // A small ISP-ish ring-with-chords backbone: 6 routers, one host each.
  net::Topology backbone = topo::make_ring(6);
  backbone.add_duplex(NodeId{0}, NodeId{3}, net::LinkAttrs{2, 2});
  topo::Scenario scenario = topo::attach_hosts(
      std::move(backbone),
      {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}, NodeId{5}},
      /*source_index=*/0);

  std::printf("HBH quickstart on a 6-router ring (source host n%u)\n",
              scenario.source_host.index());

  harness::Session session{scenario, harness::Protocol::kHbh};
  std::printf("channel: %s\n", session.channel().to_string().c_str());

  // Three receivers join; the control plane (join/tree/fusion messages)
  // builds the recursive-unicast tree over the next few refresh periods.
  session.subscribe(scenario.hosts[2]);
  session.subscribe(scenario.hosts[3], /*delay=*/5);
  session.subscribe(scenario.hosts[5], /*delay=*/9);
  session.run_for(120);

  const harness::Measurement m = session.measure();
  std::printf("\nafter convergence, one data packet:\n");
  std::printf("  tree cost        : %zu link copies\n", m.tree_cost);
  std::printf("  mean delay       : %.1f time units\n", m.mean_delay);
  std::printf("  delivered 1x each: %s\n",
              m.delivered_exactly_once() ? "yes" : "NO");

  std::printf("\ndistribution tree (copies per directed link):\n");
  for (const auto& [link, copies] : m.per_link) {
    std::printf("  %s -> %-4s x%zu\n", to_string(link.first).c_str(),
                to_string(link.second).c_str(), copies);
  }

  // Group dynamics: one receiver leaves, soft state times out, the tree
  // shrinks — the remaining members keep receiving.
  session.unsubscribe(scenario.hosts[3]);
  session.run_for(200);
  const harness::Measurement after = session.measure();
  std::printf("\nafter host n%u left: cost %zu -> %zu, members %zu\n",
              scenario.hosts[3].index(), m.tree_cost, after.tree_cost,
              session.members().size());
  return after.delivered_exactly_once() ? 0 : 1;
}
