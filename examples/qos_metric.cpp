// QoS-aware routing hook (the paper's §5 future work).
//
// HBH builds source-rooted shortest-path trees on top of whatever unicast
// routing provides. Our routing layer takes a pluggable metric, so
// delay-sensitive deployments can route (and therefore build HBH trees)
// by delay, hop count, or any custom edge weight. This example compares
// the receiver delay of HBH trees under three metrics on a topology where
// cost and delay disagree.
#include <cstdio>

#include "routing/unicast.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

using namespace hbh;

int main() {
  // A 4x4 grid where administrative cost and propagation delay are drawn
  // independently: cost-based routes are NOT delay-optimal.
  net::Topology grid = topo::make_grid(4, 4);
  Rng rng{7};
  for (std::uint32_t i = 0; i < grid.link_count(); ++i) {
    grid.set_attrs(LinkId{i},
                   net::LinkAttrs{static_cast<double>(rng.uniform_int(1, 10)),
                                  static_cast<double>(rng.uniform_int(1, 10))});
  }

  struct NamedMetric {
    const char* name;
    routing::MetricFn fn;
  };
  const NamedMetric metrics[] = {
      {"administrative cost", routing::cost_metric()},
      {"propagation delay  ", routing::delay_metric()},
      {"hop count          ", [](const net::Topology::Edge&) { return 1.0; }},
  };

  const NodeId source{0};
  std::printf("Route quality from node 0 under different routing metrics\n");
  std::printf("(HBH trees inherit these paths, so this is the delay a\n");
  std::printf(" receiver at each node would see)\n\n");
  std::printf("%-22s %14s %14s\n", "metric", "avg delay", "worst delay");

  for (const auto& metric : metrics) {
    const routing::UnicastRouting routes{grid, metric.fn};
    double total = 0;
    double worst = 0;
    std::size_t n = 0;
    for (std::uint32_t v = 1; v < grid.node_count(); ++v) {
      const Time d = routes.path_delay(source, NodeId{v});
      total += d;
      worst = std::max(worst, d);
      ++n;
    }
    std::printf("%-22s %14.2f %14.2f\n", metric.name,
                total / static_cast<double>(n), worst);
  }

  std::printf(
      "\nRouting by delay gives the QoS-optimal HBH trees; the pluggable\n"
      "routing::MetricFn is the integration point the paper's future-work\n"
      "section calls for.\n");
  return 0;
}
