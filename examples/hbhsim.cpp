// hbhsim — command-line driver for one-off simulations.
//
// A small CLI over the library so experiments don't require writing C++:
//
//   hbhsim [--topo isp|rand50|waxman] [--proto hbh|reunite|pimsm|pimss]
//          [--receivers N] [--seed S] [--symmetric] [--warmup T]
//          [--fail A B] [--census] [--csv]
//
// Runs one seeded trial, prints tree cost / delay / delivery audit, and
// optionally the per-link tree, a state census, or CSV for scripting.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "harness/session.hpp"
#include "topo/isp.hpp"
#include "topo/random.hpp"
#include "util/rng.hpp"

using namespace hbh;
using harness::Protocol;
using harness::Session;

namespace {

struct Options {
  std::string topo = "isp";
  std::string proto = "hbh";
  std::size_t receivers = 8;
  std::uint64_t seed = 1;
  bool symmetric = false;
  Time warmup = 600;
  std::optional<std::pair<std::uint32_t, std::uint32_t>> fail;
  bool census = false;
  bool csv = false;
};

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--topo") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.topo = v;
    } else if (arg == "--proto") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.proto = v;
    } else if (arg == "--receivers") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.receivers = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--warmup") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.warmup = std::strtod(v, nullptr);
    } else if (arg == "--fail") {
      const char* a = next();
      const char* b = next();
      if (a == nullptr || b == nullptr) return std::nullopt;
      opt.fail = {static_cast<std::uint32_t>(std::strtoul(a, nullptr, 10)),
                  static_cast<std::uint32_t>(std::strtoul(b, nullptr, 10))};
    } else if (arg == "--symmetric") {
      opt.symmetric = true;
    } else if (arg == "--census") {
      opt.census = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  return opt;
}

std::optional<Protocol> proto_of(const std::string& name) {
  if (name == "hbh") return Protocol::kHbh;
  if (name == "reunite") return Protocol::kReunite;
  if (name == "pimsm") return Protocol::kPimSm;
  if (name == "pimss") return Protocol::kPimSs;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = parse(argc, argv);
  if (!opt) {
    std::fprintf(
        stderr,
        "usage: hbhsim [--topo isp|rand50|waxman] "
        "[--proto hbh|reunite|pimsm|pimss] [--receivers N] [--seed S]\n"
        "              [--symmetric] [--warmup T] [--fail A B] [--census] "
        "[--csv]\n");
    return 2;
  }
  const auto proto = proto_of(opt->proto);
  if (!proto) {
    std::fprintf(stderr, "unknown protocol %s\n", opt->proto.c_str());
    return 2;
  }

  Rng rng{opt->seed};
  topo::Scenario scenario;
  if (opt->topo == "isp") {
    scenario = topo::make_isp();
  } else if (opt->topo == "rand50") {
    scenario = topo::make_random50(rng);
  } else if (opt->topo == "waxman") {
    scenario = topo::make_waxman(topo::WaxmanParams{}, rng);
  } else {
    std::fprintf(stderr, "unknown topology %s\n", opt->topo.c_str());
    return 2;
  }
  topo::randomize_costs(scenario.topo, rng);
  if (opt->symmetric) topo::symmetrize_costs(scenario.topo);

  auto candidates = scenario.candidate_receivers();
  const std::size_t k = std::min(opt->receivers, candidates.size());
  const auto receivers = rng.sample(candidates, k);

  Session session{std::move(scenario), *proto};
  Time delay = 0.1;
  for (const NodeId r : receivers) {
    session.subscribe(r, delay);
    delay += 1.0;
  }
  session.run_for(opt->warmup);
  if (opt->fail) {
    session.fail_link(NodeId{opt->fail->first}, NodeId{opt->fail->second});
    session.run_for(opt->warmup / 2);
  }
  const harness::Measurement m = session.measure();

  if (opt->csv) {
    std::printf("topo,proto,receivers,seed,cost,mean_delay,delivered\n");
    std::printf("%s,%s,%zu,%llu,%zu,%.4f,%d\n", opt->topo.c_str(),
                opt->proto.c_str(), k,
                static_cast<unsigned long long>(opt->seed), m.tree_cost,
                m.mean_delay, m.delivered_exactly_once() ? 1 : 0);
    return m.delivered_exactly_once() ? 0 : 1;
  }

  std::printf("hbhsim: %s on %s, %zu receivers, seed %llu%s\n",
              opt->proto.c_str(), opt->topo.c_str(), k,
              static_cast<unsigned long long>(opt->seed),
              opt->symmetric ? " (symmetric costs)" : "");
  if (*proto == Protocol::kPimSm) {
    std::printf("RP: %s\n", to_string(session.rp()).c_str());
  }
  std::printf("tree cost   : %zu link copies\n", m.tree_cost);
  std::printf("mean delay  : %.2f time units\n", m.mean_delay);
  std::printf("max on link : %zu cop%s\n", m.max_link_copies,
              m.max_link_copies == 1 ? "y" : "ies");
  std::printf("delivery    : %s (%zu missing, %zu duplicated)\n",
              m.delivered_exactly_once() ? "exactly-once" : "IMPERFECT",
              m.missing.size(), m.duplicated.size());
  if (opt->census) {
    const auto census = session.state_census();
    std::printf("state census: %zu control entries, %zu forwarding entries, "
                "%zu stateful routers\n",
                census.control_entries, census.forwarding_entries,
                census.routers_with_state);
  }
  return m.delivered_exactly_once() ? 0 : 1;
}
