// Group dynamics: the paper's Figures 4 and 5.
//
// Part 1 (Fig. 5): watches HBH build its tree as receivers join one by
// one on the asymmetric Figure-2 topology — including the fusion exchange
// that moves the branching point to H3 when r3 arrives.
//
// Part 2 (Fig. 4): compares tree stability on member departure — how many
// router-table changes HBH and REUNITE make when a receiver leaves a
// converged 8-receiver tree.
#include <cstdio>

#include "harness/session.hpp"
#include "mcast/hbh/router.hpp"
#include "metrics/trace.hpp"
#include "topo/scenarios.hpp"
#include "util/log.hpp"

using namespace hbh;
using harness::Protocol;
using harness::Session;

namespace {

topo::Scenario wrap_fig2(const topo::Fig2Scenario& f) {
  topo::Scenario s;
  s.topo = f.topo;
  s.routers = {f.h1, f.h2, f.h3, f.h4};
  s.hosts = {f.s, f.r1, f.r2, f.r3};
  s.source_host = f.s;
  return s;
}

topo::Scenario wrap_fig1(const topo::Fig1Scenario& f) {
  topo::Scenario s;
  s.topo = f.topo;
  s.routers = {f.h1, f.h2, f.h3, f.h4, f.h5, f.h6, f.h7};
  s.hosts = {f.s, f.r1, f.r2, f.r3, f.r4, f.r5, f.r6, f.r7, f.r8};
  s.source_host = f.s;
  return s;
}

void dump_hbh_tables(Session& session, const topo::Fig2Scenario& fig) {
  const Time now = session.simulator().now();
  const char* names[] = {"H1", "H2", "H3", "H4"};
  const NodeId routers[] = {fig.h1, fig.h2, fig.h3, fig.h4};
  for (int i = 0; i < 4; ++i) {
    const auto* st = static_cast<const mcast::hbh::HbhRouter&>(
                         session.network().agent(routers[i]))
                         .state(session.channel());
    if (st == nullptr) {
      std::printf("  %s: (no state)\n", names[i]);
    } else if (st->mft) {
      std::printf("  %s: MFT %s\n", names[i], st->mft->to_string(now).c_str());
    } else if (st->mct) {
      std::printf("  %s: MCT {%s:%s}\n", names[i],
                  st->mct->target.to_string().c_str(),
                  st->mct->state.state_string(now).c_str());
    }
  }
}

void figure5() {
  std::printf("=== Figure 5: HBH tree construction, step by step ===\n");
  const topo::Fig2Scenario fig = topo::make_fig2();
  Session session{wrap_fig2(fig), Protocol::kHbh};

  std::printf("\nr1 joins (tree state after a few refresh periods):\n");
  session.subscribe(fig.r1);
  session.run_for(60);
  dump_hbh_tables(session, fig);

  std::printf("\nr2 joins (both receivers served on shortest paths):\n");
  session.subscribe(fig.r2);
  session.run_for(60);
  dump_hbh_tables(session, fig);

  std::printf(
      "\nr3 joins -> H1 and H3 see two tree flows, send fusion messages;\n"
      "H3 becomes the branching node for {r1, r3} (marked entries at H1):\n");
  session.subscribe(fig.r3);
  session.run_for(400);
  dump_hbh_tables(session, fig);

  const harness::Measurement m = session.measure();
  std::printf("\ndata check: cost=%zu, delivered exactly once: %s\n",
              m.tree_cost, m.delivered_exactly_once() ? "yes" : "NO");
  std::printf("measured distribution tree:\n%s\n",
              metrics::render_tree(m.per_link, fig.s).c_str());
}

void figure4() {
  std::printf("=== Figure 4: tree stability on member departure ===\n");
  const topo::Fig1Scenario fig = topo::make_fig1();
  for (const Protocol proto : {Protocol::kReunite, Protocol::kHbh}) {
    Session session{wrap_fig1(fig), proto};
    for (const NodeId r : fig.receivers()) session.subscribe(r);
    session.run_for(400);
    const std::uint64_t before = session.total_structural_changes();

    session.unsubscribe(fig.r1);   // leaf departure (Fig. 4 comparison)
    session.run_for(300);
    const std::uint64_t after = session.total_structural_changes();

    const harness::Measurement m = session.measure();
    std::printf("%-8s r1 departs: %llu router-table changes, remaining 7 "
                "receivers %s\n",
                std::string(to_string(proto)).c_str(),
                static_cast<unsigned long long>(after - before),
                m.delivered_exactly_once() ? "all served" : "DISRUPTED");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  figure5();
  figure4();
  return 0;
}
