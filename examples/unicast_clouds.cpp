// Unicast clouds: HBH's headline deployment story.
//
// The whole point of recursive-unicast multicast is incremental
// deployment: routers that only speak unicast still forward the data,
// because every packet carries a unicast destination address. This example
// turns multicast support OFF on progressively more routers of the ISP
// topology and shows delivery keeps working — only the tree cost grows as
// branching points get pushed onto the remaining multicast-capable nodes.
#include <cstdio>
#include <vector>

#include "harness/session.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"

using namespace hbh;
using harness::Protocol;
using harness::Session;

int main() {
  Rng rng{2001};
  topo::Scenario scenario = topo::make_isp();
  topo::randomize_costs(scenario.topo, rng);
  const auto receivers = rng.sample(scenario.candidate_receivers(), 10);

  std::printf("HBH over unicast clouds (ISP topology, 10 receivers)\n");
  std::printf("%-28s %10s %12s %10s\n", "multicast-incapable routers", "cost",
              "mean delay", "delivered");

  // 0, 3, 6, 9 unicast-only routers (chosen deterministically).
  for (const std::size_t dark : {0u, 3u, 6u, 9u}) {
    Rng pick{42};
    harness::SessionConfig config;
    config.unicast_only = pick.sample(scenario.routers, dark);

    Session session{scenario, Protocol::kHbh, config};
    Time delay = 0.1;
    for (const NodeId r : receivers) {
      session.subscribe(r, delay);
      delay += 1.0;
    }
    session.run_for(400);
    const harness::Measurement m = session.measure();

    std::string names;
    for (const NodeId n : config.unicast_only) {
      names += to_string(n) + " ";
    }
    if (names.empty()) names = "(none)";
    std::printf("%-28s %10zu %12.1f %10s\n", names.c_str(), m.tree_cost,
                m.mean_delay, m.delivered_exactly_once() ? "yes" : "NO");
  }

  std::printf(
      "\nEvery row delivers to all 10 receivers: unicast-only routers are\n"
      "traversed transparently; they just can't host branching points, so\n"
      "more copies share the links around them (higher tree cost).\n");
  return 0;
}
