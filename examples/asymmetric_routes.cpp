// Asymmetric routing pathologies: the paper's Figures 2 and 3, live.
//
// Runs REUNITE and HBH side by side on the two hand-built scenarios whose
// directed costs force the exact asymmetric routes of the paper, and shows
//  (a) REUNITE serving r2 over a non-shortest path until r1 departs
//      (Fig. 2), while HBH keeps every receiver on the SPT, and
//  (b) REUNITE putting two copies of each packet on the shared link
//      R1-R6 (Fig. 3), which HBH's fusion mechanism avoids.
#include <cstdio>

#include "harness/session.hpp"
#include "routing/unicast.hpp"
#include "topo/scenarios.hpp"

using namespace hbh;
using harness::Protocol;
using harness::Session;

namespace {

topo::Scenario wrap_fig2(const topo::Fig2Scenario& f) {
  topo::Scenario s;
  s.topo = f.topo;
  s.routers = {f.h1, f.h2, f.h3, f.h4};
  s.hosts = {f.s, f.r1, f.r2, f.r3};
  s.source_host = f.s;
  return s;
}

topo::Scenario wrap_fig3(const topo::Fig3Scenario& f) {
  topo::Scenario s;
  s.topo = f.topo;
  s.routers = {f.w1, f.w2, f.w3, f.w4, f.w5, f.w6};
  s.hosts = {f.s, f.r1, f.r2};
  s.source_host = f.s;
  return s;
}

double delay_of(Session& session, NodeId host) {
  const auto& d = session.receiver(host).deliveries();
  return d.empty() ? -1.0 : d.back().received_at - d.back().sent_at;
}

void figure2() {
  std::printf("=== Figure 2: reverse-path anchoring in REUNITE ===\n");
  const topo::Fig2Scenario fig = topo::make_fig2();
  const routing::UnicastRouting ref{fig.topo};
  std::printf("shortest-path delays: S->r1 = %.0f, S->r2 = %.0f\n",
              ref.path_delay(fig.s, fig.r1), ref.path_delay(fig.s, fig.r2));

  for (const Protocol proto : {Protocol::kReunite, Protocol::kHbh}) {
    Session session{wrap_fig2(fig), proto};
    session.subscribe(fig.r1);
    session.run_for(50);
    session.subscribe(fig.r2);
    session.run_for(250);
    session.measure();
    std::printf("\n%s with {r1, r2} joined:\n",
                std::string(to_string(proto)).c_str());
    std::printf("  delay r1 = %.0f, delay r2 = %.0f%s\n",
                delay_of(session, fig.r1), delay_of(session, fig.r2),
                delay_of(session, fig.r2) > ref.path_delay(fig.s, fig.r2)
                    ? "   <-- r2 NOT on its shortest path"
                    : "   (both on shortest paths)");

    // r1 departs; REUNITE reconfigures and r2's route *changes*.
    session.unsubscribe(fig.r1);
    session.run_for(400);
    session.measure();
    std::printf("  after r1 leaves: delay r2 = %.0f\n",
                delay_of(session, fig.r2));
  }
  std::printf("\n");
}

void figure3() {
  std::printf("=== Figure 3: duplicate copies on a shared link ===\n");
  const topo::Fig3Scenario fig = topo::make_fig3();
  for (const Protocol proto : {Protocol::kReunite, Protocol::kHbh}) {
    Session session{wrap_fig3(fig), proto};
    session.subscribe(fig.r1);
    session.run_for(50);
    session.subscribe(fig.r2);
    session.run_for(300);
    const harness::Measurement m = session.measure();
    std::printf("\n%s: tree cost %zu, worst link carries %zu cop%s\n",
                std::string(to_string(proto)).c_str(), m.tree_cost,
                m.max_link_copies, m.max_link_copies == 1 ? "y" : "ies");
    for (const auto& [link, copies] : m.per_link) {
      if (copies > 1) {
        std::printf("  duplicated link: %s -> %s x%zu\n",
                    to_string(link.first).c_str(),
                    to_string(link.second).c_str(), copies);
      }
    }
  }
  std::printf("\n");
}

void hot_potato() {
  std::printf("=== §2.3: hot-potato routing between two ISPs ===\n");
  const topo::HotPotatoScenario h = topo::make_hot_potato();
  const routing::UnicastRouting routes{h.topo};
  std::printf(
      "src (ISP A, east) -> rx (ISP B, west) hands off at the EAST peering\n"
      "point; the reverse route hands off WEST — each ISP spares its own\n"
      "long-haul links, so the two directions differ:\n");
  const auto print_path = [&](NodeId a, NodeId b) {
    std::printf("  ");
    bool arrow = false;
    for (const NodeId n : routes.path(a, b)) {
      std::printf("%s%s", arrow ? " -> " : "", to_string(n).c_str());
      arrow = true;
    }
    std::printf("   (delay %.0f)\n", routes.path_delay(a, b));
  };
  print_path(h.src, h.rx_west);
  print_path(h.rx_west, h.src);

  topo::Scenario s;
  s.topo = h.topo;
  s.routers = {h.a1, h.a2, h.a3, h.b1, h.b2, h.b3};
  s.hosts = {h.src, h.rx_west, h.rx_east};
  s.source_host = h.src;
  std::printf("\nreceiver delay for rx_west under each protocol:\n");
  for (const Protocol proto :
       {Protocol::kPimSs, Protocol::kReunite, Protocol::kHbh}) {
    Session session{s, proto};
    session.subscribe(h.rx_west);
    session.subscribe(h.rx_east);
    session.run_for(300);
    session.measure();
    std::printf("  %-8s %.0f  (SPT would be %.0f)\n",
                std::string(to_string(proto)).c_str(),
                delay_of(session, h.rx_west),
                routes.path_delay(h.src, h.rx_west));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  figure2();
  figure3();
  hot_potato();
  return 0;
}
