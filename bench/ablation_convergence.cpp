// Ablation: control-plane convergence time per protocol.
//
// How long after the last member joins does the router state stop
// changing? PIM trees settle in about one join round-trip; HBH needs a
// few tree/fusion rounds to relocate branching points; REUNITE's
// reconfiguration (stale -> marked trees -> re-anchor) is the slowest —
// the dynamic face of the instability Figures 2 and 4 describe.
#include <cstdio>

#include "fig_common.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"

using namespace hbh;
using harness::Protocol;
using harness::Session;

int main() {
  init_log_level_from_env();
  const auto trials =
      env_trials(25);
  std::printf("=== Ablation: control-plane convergence time (ISP) ===\n");
  std::printf("trials=%zu; receivers join 1/time-unit, then we wait for "
              "state quiescence\n\n",
              trials);
  std::printf("%-8s %10s %22s %14s\n", "proto", "receivers",
              "convergence (mean)", "worst");

  for (const Protocol proto : harness::all_protocols()) {
    for (const std::size_t group : {4u, 16u}) {
      RunningStats convergence;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        Rng rng{0x5EED ^ (group * 977 + trial)};
        auto scenario = topo::make_isp();
        topo::randomize_costs(scenario.topo, rng);
        const auto receivers =
            rng.sample(scenario.candidate_receivers(), group);
        Session session{std::move(scenario), proto};
        Time delay = 0.1;
        for (const NodeId r : receivers) {
          session.subscribe(r, delay);
          delay += 1.0;
        }
        convergence.add(harness::run_to_quiescence(session));
      }
      std::printf("%-8s %10zu %22s %14.0f\n",
                  std::string(to_string(proto)).c_str(), group,
                  convergence.to_string(1).c_str(), convergence.max());
    }
  }
  std::printf(
      "\nReading: convergence is measured from t=0 (first join) to the\n"
      "last router-state change; soft-state churn (entry expiry at t2=70)\n"
      "dominates HBH/REUNITE, while PIM settles as fast as joins travel.\n");
  bench::maybe_write_bench_report("ablation_convergence",
                                  harness::TopoKind::kIsp);
  return 0;
}
