// Reproduces Figure 8(a): average delay experienced by the receivers vs
// number of receivers on the ISP topology.
#include "fig_common.hpp"

int main() {
  return hbh::bench::run_figure(
      "Figure 8(a)", "receiver average delay, ISP topology",
      hbh::harness::TopoKind::kIsp, "delay");
}
