// Ablation: delivery under fault injection, per protocol.
//
// The paper's robustness claim is qualitative: soft state plus periodic
// refreshes "adapts to network dynamics" (§2.1). This ablation makes it
// quantitative. Every backbone link of the ISP topology gets a seeded
// impairment (packet loss plus a reordering jitter window); we then ask
// two questions per protocol and loss rate:
//
//   * delivery ratio — what fraction of (probe, receiver) pairs still
//     received data while the fabric was lossy?
//   * reconvergence  — after the impairment lifts, how long until a probe
//     is again delivered exactly once to every member?
//
// Determinism: the impairment plane draws from per-link seeded streams
// (net::ImpairmentPlane), so a trial is a pure function of
// (HBH_SEED, trial index) — rerunning the bench reproduces every loss.
#include <cstdio>
#include <vector>

#include "fig_common.hpp"
#include "net/topology.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace hbh;
using harness::Protocol;
using harness::Session;

namespace {

/// All router-router duplex links (a < b) of the scenario's topology.
std::vector<std::pair<NodeId, NodeId>> backbone_links(
    const topo::Scenario& scenario) {
  std::vector<std::pair<NodeId, NodeId>> out;
  const net::Topology& topo = scenario.topo;
  for (std::size_t i = 0; i < topo.link_count(); ++i) {
    const auto& e = topo.edge(LinkId{static_cast<std::uint32_t>(i)});
    if (e.from.index() < e.to.index() &&
        topo.kind(e.from) == net::NodeKind::kRouter &&
        topo.kind(e.to) == net::NodeKind::kRouter) {
      out.emplace_back(e.from, e.to);
    }
  }
  return out;
}

}  // namespace

int main() {
  init_log_level_from_env();
  const std::size_t trials = env_trials(6);
  const std::uint64_t base_seed = env_seed();
  constexpr std::size_t kGroup = 8;    // receivers
  constexpr std::size_t kProbes = 8;   // probes sent while impaired
  constexpr Time kWarmup = 160;        // > 2*t2: tree fully converged
  constexpr Time kHorizon = 400;       // give up on reconvergence past this
  const std::vector<double> loss_rates{0.0, 0.01, 0.02, 0.05, 0.10};

  std::printf("=== Ablation: resilience under loss + reordering (ISP) ===\n");
  std::printf("trials=%zu seed=%llu group=%zu probes=%zu; every backbone "
              "link impaired\n\n",
              trials, static_cast<unsigned long long>(base_seed), kGroup,
              kProbes);
  std::printf("%-8s %6s %16s %20s %10s\n", "proto", "loss", "delivery ratio",
              "reconvergence (mean)", "worst");

  for (const Protocol proto : harness::all_protocols()) {
    for (const double loss : loss_rates) {
      RunningStats ratio;
      RunningStats reconvergence;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        Rng rng{base_seed ^ (0xAB1E * trial + 7)};
        auto scenario = topo::make_isp();
        topo::randomize_costs(scenario.topo, rng);
        const auto links = backbone_links(scenario);
        const auto receivers =
            rng.sample(scenario.candidate_receivers(), kGroup);
        Session session{std::move(scenario), proto};
        Time delay = 0.1;
        for (const NodeId r : receivers) {
          session.subscribe(r, delay);
          delay += 1.0;
        }
        session.run_for(kWarmup);

        // Impair: per-trial seed, same streams for every protocol and
        // loss rate (paired trials — see the determinism contract).
        session.seed_impairments(base_seed + trial);
        const net::Impairment imp{loss, 0.0, 0.25, 2.0, {}};
        for (const auto& [a, b] : links) session.impair_link(a, b, imp);

        std::size_t delivered = 0;
        std::size_t expected = 0;
        for (std::size_t probe = 0; probe < kProbes; ++probe) {
          const std::size_t members = session.members().size();
          // Randomized costs are delays too: the deepest receiver can sit
          // ~100 time units out, so drain generously before judging.
          const auto m = session.measure(/*drain=*/150);
          delivered += members - m.missing.size();
          expected += members;
        }
        if (expected > 0) {
          ratio.add(static_cast<double>(delivered) /
                    static_cast<double>(expected));
        }

        // Lift the impairment and wait for exactly-once delivery again.
        // Reconvergence is the send-time offset of the first probe that
        // comes back clean — 0 when the first post-repair probe succeeds.
        session.clear_impairments();
        const Time lifted = session.simulator().now();
        Time reconv = kHorizon;
        while (session.simulator().now() - lifted < kHorizon) {
          const Time sent_at = session.simulator().now() - lifted;
          if (session.measure(/*drain=*/150).delivered_exactly_once()) {
            reconv = sent_at;
            break;
          }
          session.run_for(10);  // one tree period, then try again
        }
        reconvergence.add(reconv);
      }
      std::printf("%-8s %5.0f%% %16s %20s %10.0f\n",
                  std::string(to_string(proto)).c_str(), loss * 100,
                  ratio.to_string(3).c_str(), reconvergence.to_string(1).c_str(),
                  reconvergence.max());
    }
  }
  std::printf(
      "\nReading: at 0%% loss every protocol should read 1.000 / ~0 (sanity).\n"
      "Under loss, delivery degrades with tree depth (each extra hop is\n"
      "another chance to lose the unicast copy) and reconvergence is paced\n"
      "by the soft-state timers: a lost refresh costs one period, a decayed\n"
      "entry costs up to t2 before the next join rebuilds it.\n");
  // The instrumented report run re-applies the acceptance impairment
  // (5% loss + reordering on every backbone link), so the JSON carries
  // the fault counters too (net.drops.loss — docs/RESILIENCE.md).
  bench::maybe_write_bench_report(
      "ablation_resilience", harness::TopoKind::kIsp, [&](Session& session) {
        session.seed_impairments(base_seed);
        const net::Impairment imp{0.05, 0.0, 0.25, 2.0, {}};
        for (const auto& [a, b] : backbone_links(session.scenario())) {
          session.impair_link(a, b, imp);
        }
      });
  return 0;
}
