// Ablation: join latency — how quickly a new receiver starts receiving.
//
// The paper argues delay properties of the converged trees; an equally
// practical property of these soft-state protocols is how many refresh
// periods a *new* receiver waits before data reaches it. We converge a
// group, subscribe one extra receiver, then probe every half period until
// the newcomer reports a delivery.
#include <cstdio>

#include "fig_common.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"

using namespace hbh;
using harness::Protocol;
using harness::Session;

namespace {

/// Time from subscribe() until the first probe delivery at `newcomer`.
double measure_join_latency(Session& session, NodeId newcomer) {
  const Time t0 = session.simulator().now();
  session.subscribe(newcomer);
  for (int attempt = 0; attempt < 60; ++attempt) {
    session.measure(/*drain=*/5.0);
    const auto& ds = session.receiver(newcomer).deliveries();
    if (!ds.empty()) return ds.front().received_at - t0;
  }
  return -1;  // never joined within the horizon
}

}  // namespace

int main() {
  init_log_level_from_env();
  const auto trials =
      env_trials(30);
  std::printf("=== Ablation: join latency of a late receiver (ISP) ===\n");
  std::printf("trials=%zu, 8 receivers converged, 9th joins late\n\n",
              trials);
  std::printf("%-8s %18s %18s %10s\n", "proto", "mean latency",
              "worst latency", "timeouts");

  for (const Protocol proto : harness::all_protocols()) {
    RunningStats latency;
    std::size_t timeouts = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      Rng rng{0xBEEF ^ trial};
      auto scenario = topo::make_isp();
      topo::randomize_costs(scenario.topo, rng);
      auto picked = rng.sample(scenario.candidate_receivers(), 9);
      const NodeId newcomer = picked.back();
      picked.pop_back();
      Session session{std::move(scenario), proto};
      Time delay = 0.1;
      for (const NodeId r : picked) {
        session.subscribe(r, delay);
        delay += 1.0;
      }
      session.run_for(400);
      const double l = measure_join_latency(session, newcomer);
      if (l < 0) {
        ++timeouts;
      } else {
        latency.add(l);
      }
    }
    std::printf("%-8s %18s %18.1f %10zu\n",
                std::string(to_string(proto)).c_str(),
                latency.to_string(1).c_str(), latency.max(), timeouts);
  }
  std::printf(
      "\nReading: PIM receivers attach as soon as the join installs oifs\n"
      "(~one path RTT); HBH/REUNITE newcomers wait for the next source\n"
      "tree round to install forwarding state, i.e. up to one tree period\n"
      "plus propagation.\n");
  bench::maybe_write_bench_report("ablation_join_latency",
                                  harness::TopoKind::kIsp);
  return 0;
}
