// Reproduces Figure 7(b): average tree cost (packet copies) vs number of
// receivers on the 50-node random topology (average degree 8.6).
#include "fig_common.hpp"

int main() {
  return hbh::bench::run_figure(
      "Figure 7(b)", "average number of packet copies, 50-node random topology",
      hbh::harness::TopoKind::kRandom50, "cost");
}
