// Reproduces Figure 7(a): average tree cost (packet copies) vs number of
// receivers on the ISP topology, for PIM-SM, PIM-SS, REUNITE, and HBH.
#include "fig_common.hpp"

int main() {
  return hbh::bench::run_figure(
      "Figure 7(a)", "average number of packet copies, ISP topology",
      hbh::harness::TopoKind::kIsp, "cost");
}
