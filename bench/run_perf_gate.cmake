# The perf-labeled regression gate: runs perf_smoke and perf_dataplane,
# then strictly compares their JSON artifacts against the committed
# bench/baselines/*.json. Invoked by the perf_baseline_gate ctest case;
# expects -DPERF_SMOKE, -DPERF_DATAPLANE, -DPERF_COMPARE, -DBASELINE_DIR,
# -DWORK_DIR.
#
# Baselined counts are deterministic (tight bands); timing metrics carry
# wide noise thresholds so the gate only trips on real regressions. On an
# unusually noisy runner, scale all thresholds with HBH_PERF_TOLERANCE
# (docs/PERFORMANCE.md "Recording and comparing baselines").
function(run_bench label)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${label} exited with ${rc}:\n${out}${err}")
  endif()
endfunction()

# HBH_TRIALS=3 keeps perf_smoke's run_all timing loop short; the baselined
# metrics (micro throughputs, outputs_identical) do not depend on it.
run_bench(perf_smoke ${CMAKE_COMMAND} -E env HBH_TRIALS=3
  "HBH_PERF_OUT=${WORK_DIR}/gate_perf_smoke.json" ${PERF_SMOKE})
run_bench(perf_dataplane ${CMAKE_COMMAND} -E env
  "HBH_PERF_OUT=${WORK_DIR}/gate_perf_dataplane.json" ${PERF_DATAPLANE})

execute_process(
  COMMAND ${PERF_COMPARE}
    ${BASELINE_DIR}/perf_smoke.json ${WORK_DIR}/gate_perf_smoke.json
    ${BASELINE_DIR}/perf_dataplane.json ${WORK_DIR}/gate_perf_dataplane.json
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
message(STATUS "\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "perf_compare exited with ${rc}\n${err}")
endif()
message(STATUS "perf baseline gate OK")
