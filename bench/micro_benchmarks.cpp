// Microbenchmarks of the simulation substrate (google-benchmark).
//
// These are M1–M4 in DESIGN.md: event-queue throughput, Dijkstra SPF,
// protocol convergence, and a full measured trial. They characterize the
// simulator itself, not the paper's results.
#include <benchmark/benchmark.h>

#include "harness/experiment.hpp"
#include "harness/session.hpp"
#include "metrics/registry.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"
#include "topo/isp.hpp"
#include "topo/random.hpp"
#include "util/rng.hpp"

namespace {

using namespace hbh;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < batch; ++i) {
      q.push(rng.uniform(0, 1000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().when);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batch) *
                          state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(10000);

// The compiled-vs-interpreted data-plane pair: identical converged HBH
// sessions on the ISP topology, per-iteration burst of emissions drained
// through the simulator; only SessionConfig::fastpath differs. items/s is
// data transmissions per second — the per-hop dispatch cost under the
// microbench harness (bench/perf_dataplane is the report-grade version).
void FanoutBench(benchmark::State& state, bool fastpath) {
  Rng rng{9};
  auto scenario = topo::make_isp();
  topo::randomize_costs(scenario.topo, rng);
  const auto picked = rng.sample(scenario.candidate_receivers(), 16);
  harness::SessionConfig config{};
  config.fastpath = fastpath;
  harness::Session session{std::move(scenario), harness::Protocol::kHbh,
                           config};
  harness::ChannelHandle ch = session.default_channel();
  Time delay = 0.1;
  for (const NodeId r : picked) {
    ch.subscribe(r, delay);
    delay += 1.0;
  }
  session.run_for(delay + 240);
  const std::uint64_t before =
      session.network().counters().data_transmissions;
  for (auto _ : state) {
    for (int burst = 0; burst < 16; ++burst) (void)ch.inject_data();
    session.run_for(30);
  }
  const std::uint64_t after = session.network().counters().data_transmissions;
  state.SetItemsProcessed(static_cast<std::int64_t>(after - before));
}

void BM_InterpretedFanout(benchmark::State& state) {
  FanoutBench(state, /*fastpath=*/false);
}
BENCHMARK(BM_InterpretedFanout);

void BM_FastpathFanout(benchmark::State& state) {
  FanoutBench(state, /*fastpath=*/true);
}
BENCHMARK(BM_FastpathFanout);

// Soft-state workload shape: every protocol timer push is later cancelled
// and re-armed (refresh), so cancel cost is as hot as push/pop cost.
void BM_EventQueuePushCancelChurn(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng{2};
  std::vector<sim::EventId> ids;
  ids.reserve(batch);
  for (auto _ : state) {
    sim::EventQueue q;
    ids.clear();
    for (std::size_t i = 0; i < batch; ++i) {
      ids.push_back(q.push(rng.uniform(0, 1000), [] {}));
    }
    for (std::size_t i = 0; i < batch; i += 2) q.cancel(ids[i]);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().when);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batch) *
                          state.iterations());
}
BENCHMARK(BM_EventQueuePushCancelChurn)->Arg(1000)->Arg(10000);

void BM_SimulatorTimerWheel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    sim::PeriodicTimer timer{sim, 1.0, [&] { ++fired; }};
    timer.start();
    sim.run(10000.0);
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SimulatorTimerWheel);

void BM_DijkstraIsp(benchmark::State& state) {
  auto scenario = topo::make_isp();
  Rng rng{3};
  topo::randomize_costs(scenario.topo, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::dijkstra(scenario.topo, NodeId{0}));
  }
}
BENCHMARK(BM_DijkstraIsp);

// The fault-path shape: repeated SPF recomputes of the same root. The
// scratch + result buffers amortize all per-call allocation away.
void BM_DijkstraIntoIsp(benchmark::State& state) {
  auto scenario = topo::make_isp();
  Rng rng{3};
  topo::randomize_costs(scenario.topo, rng);
  routing::SpfResult out;
  routing::DijkstraScratch scratch;
  const routing::MetricFn metric = routing::cost_metric();
  for (auto _ : state) {
    routing::dijkstra_into(scenario.topo, NodeId{0}, metric, out, scratch);
    benchmark::DoNotOptimize(out.dist.data());
  }
}
BENCHMARK(BM_DijkstraIntoIsp);

void BM_AllPairsRoutingRand50(benchmark::State& state) {
  Rng rng{5};
  auto scenario = topo::make_random50(rng);
  topo::randomize_costs(scenario.topo, rng);
  const std::size_t n = scenario.topo.node_count();
  for (auto _ : state) {
    routing::UnicastRouting routes{scenario.topo};
    // SPFs are computed lazily per root; query every root so this still
    // measures the full all-pairs build.
    double acc = 0;
    for (std::size_t r = 0; r < n; ++r) {
      acc += routes.distance(NodeId{static_cast<std::uint32_t>(r)}, NodeId{49});
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_AllPairsRoutingRand50);

void BM_HbhConvergenceIsp(benchmark::State& state) {
  const auto receivers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng{7};
    auto scenario = topo::make_isp();
    topo::randomize_costs(scenario.topo, rng);
    const auto picked = rng.sample(scenario.candidate_receivers(), receivers);
    harness::Session session{std::move(scenario), harness::Protocol::kHbh};
    state.ResumeTiming();
    Time delay = 0.1;
    for (const NodeId r : picked) {
      session.subscribe(r, delay);
      delay += 1.0;
    }
    session.run_for(400);
    benchmark::DoNotOptimize(session.simulator().executed());
  }
}
BENCHMARK(BM_HbhConvergenceIsp)->Arg(4)->Arg(16);

// Telemetry hot path: one branch + one add when enabled (Arg(1)), one
// branch when disabled (Arg(0)) — the "~zero cost when off" design claim.
void BM_RegistryCounterInc(benchmark::State& state) {
  metrics::Registry reg{state.range(0) != 0};
  metrics::Counter& counter = reg.counter("bench.counter");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryCounterInc)->Arg(0)->Arg(1);

void BM_RegistryHistogramObserve(benchmark::State& state) {
  metrics::Registry reg{state.range(0) != 0};
  metrics::Histogram& h =
      reg.histogram("bench.sizes", {24, 32, 48, 64, 96, 128, 192, 256});
  Rng rng{11};
  for (auto _ : state) {
    h.observe(rng.uniform(0, 300));
  }
  benchmark::DoNotOptimize(h.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryHistogramObserve)->Arg(0)->Arg(1);

// Same workload as BM_HbhConvergenceIsp but with the full telemetry stack
// on (taps, gauges, sampler); the delta over the plain run is the
// instrumentation overhead budget.
void BM_HbhConvergenceTelemetry(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng{7};
    auto scenario = topo::make_isp();
    topo::randomize_costs(scenario.topo, rng);
    const auto picked = rng.sample(scenario.candidate_receivers(), 16);
    harness::Session session{std::move(scenario), harness::Protocol::kHbh};
    session.enable_telemetry(/*sample_period=*/10.0);
    state.ResumeTiming();
    Time delay = 0.1;
    for (const NodeId r : picked) {
      session.subscribe(r, delay);
      delay += 1.0;
    }
    session.run_for(400);
    benchmark::DoNotOptimize(session.simulator().executed());
  }
}
BENCHMARK(BM_HbhConvergenceTelemetry);

void BM_FullTrial(benchmark::State& state) {
  harness::ExperimentSpec spec;
  spec.topology = harness::TopoKind::kIsp;
  std::size_t trial = 0;
  for (auto _ : state) {
    const auto r =
        harness::run_trial(spec, harness::Protocol::kHbh, 8, trial++);
    benchmark::DoNotOptimize(r.tree_cost);
  }
}
BENCHMARK(BM_FullTrial);

}  // namespace

BENCHMARK_MAIN();
