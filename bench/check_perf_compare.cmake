# Asserts tools/perf_compare's exit-code contract (0 pass, 1 regressed or
# missing metric, 2 usage/IO/schema error) against the committed fixtures
# in bench/baselines/selftest/. Invoked by the perf_compare_selftest ctest
# case; expects -DPERF_COMPARE (binary path) and -DFIXTURES (fixture dir).
function(run_case expect_rc)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR
      "expected exit ${expect_rc}, got ${rc} from: ${ARGN}\n${out}${err}")
  endif()
endfunction()

# A within-noise artifact passes.
run_case(0 ${PERF_COMPARE}
  ${FIXTURES}/baseline.json ${FIXTURES}/current_ok.json)

# A regressed artifact (which also drops one baselined metric) fails...
run_case(1 ${PERF_COMPARE}
  ${FIXTURES}/baseline.json ${FIXTURES}/current_regressed.json)

# ...unless --report-only downgrades the gate to informational.
run_case(0 ${PERF_COMPARE} --report-only
  ${FIXTURES}/baseline.json ${FIXTURES}/current_regressed.json)

# Shrinking every threshold via --tolerance turns the ok artifact into a
# regression, so the scale factor demonstrably reaches the comparison.
run_case(1 ${PERF_COMPARE} --tolerance 0.001
  ${FIXTURES}/baseline.json ${FIXTURES}/current_ok.json)

# Missing baseline file and an odd argument count are usage errors, not
# regressions: exit 2 so CI can tell a broken invocation from a slow run.
run_case(2 ${PERF_COMPARE}
  ${FIXTURES}/no_such_baseline.json ${FIXTURES}/current_ok.json)
run_case(2 ${PERF_COMPARE} ${FIXTURES}/baseline.json)

message(STATUS "perf_compare selftest OK")
