// Ablation: router state and control-plane overhead per protocol.
//
// The recursive-unicast motivation (paper §2.1) is state reduction: "the
// minority of routers are branching nodes", so REUNITE/HBH keep forwarding
// state (MFT) only there and one-entry control state (MCT) elsewhere.
// This bench converges each protocol on the ISP topology and reports
//  * MCT (control) entries and MFT/oif (forwarding) entries network-wide,
//  * how many routers hold any state at all,
//  * steady-state control-message transmissions per refresh period.
#include <cstdio>

#include "fig_common.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"

using namespace hbh;
using harness::Protocol;
using harness::Session;

int main() {
  init_log_level_from_env();
  const auto trials =
      env_trials(30);
  std::printf("=== Ablation: router state & control overhead (ISP) ===\n");
  std::printf("trials=%zu, converged at t=400, overhead window 100 tu\n\n",
              trials);
  std::printf("%-8s %10s %12s %12s %14s %16s\n", "proto", "receivers",
              "MCT entries", "MFT entries", "stateful rtrs", "ctl msgs/period");

  for (const Protocol proto : harness::all_protocols()) {
    for (const std::size_t group : {4u, 8u, 16u}) {
      RunningStats mct, mft, stateful, ctl_rate;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        Rng rng{0xC0FFEE ^ (group * 131 + trial)};
        auto scenario = topo::make_isp();
        topo::randomize_costs(scenario.topo, rng);
        const auto receivers =
            rng.sample(scenario.candidate_receivers(), group);
        Session session{std::move(scenario), proto};
        Time delay = 0.1;
        for (const NodeId r : receivers) {
          session.subscribe(r, delay);
          delay += 1.0;
        }
        session.run_for(400);
        const auto census = session.state_census();
        mct.add(static_cast<double>(census.control_entries));
        mft.add(static_cast<double>(census.forwarding_entries));
        stateful.add(static_cast<double>(census.routers_with_state));

        const std::uint64_t before =
            session.network().counters().control_transmissions;
        session.run_for(100);
        const std::uint64_t after =
            session.network().counters().control_transmissions;
        ctl_rate.add(static_cast<double>(after - before) / 10.0);
      }
      std::printf("%-8s %10zu %12.1f %12.1f %14.1f %16.1f\n",
                  std::string(to_string(proto)).c_str(), group, mct.mean(),
                  mft.mean(), stateful.mean(), ctl_rate.mean());
    }
  }
  std::printf(
      "\nReading: HBH/REUNITE concentrate forwarding entries at branching\n"
      "routers and keep single-entry MCTs elsewhere; PIM needs oif state at\n"
      "every on-tree router. Control rate counts every join/tree/fusion\n"
      "link transmission per refresh period.\n");
  bench::maybe_write_bench_report("ablation_state_overhead",
                                  harness::TopoKind::kIsp);
  return 0;
}
