// Ablation: goodput and queue loss under capacity-constrained links.
//
// The paper evaluates the protocols on an uncongested fabric (delay =
// propagation only). This ablation turns on the congestion layer: every
// backbone link of the ISP topology gets a finite capacity and a bounded
// egress queue (net::LinkSpec), four channels emit high-rate traffic
// (TrafficSpec on each source host), and we measure, per protocol and
// offered load:
//
//   * goodput        — fraction of (emission, receiver) pairs delivered;
//   * queue delay    — exact p50/p95/p99 of wait + serialization over
//                      every copy admitted to an egress queue;
//   * loss placement — queue drops attributed to the router class
//                      (branching / non-branching / RP) that the dropping
//                      link's upstream router holds for the packet's
//                      channel (Session::router_class).
//
// The state-placement claim (§2.1) has a data-plane corollary: HBH sends
// fewer copies over the shared backbone than REUNITE (no unicast-star
// segments) and does not funnel everything through an RP like PIM-SM, so
// at equal offered load its branching routers should shed measurably
// fewer packets. This bench makes that number visible.
//
// Determinism: every loop is serial (HBH_JOBS is irrelevant), RED draws
// come from per-link seeded streams (Network::seed_aqm), and trials are a
// pure function of (HBH_SEED, trial index).
//
// Knobs: HBH_RATE (single offered load instead of the sweep),
// HBH_PAYLOAD, HBH_QUEUE_LIMIT, HBH_AQM — see README "Environment knobs".
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "fig_common.hpp"
#include "metrics/auditor.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace hbh;
using harness::ChannelHandle;
using harness::Protocol;
using harness::RouterClass;
using harness::Session;
using harness::TrafficSpec;

namespace {

constexpr std::size_t kChannels = 4;  // sources: hosts 0..3
constexpr std::size_t kGroup = 8;     // receivers per channel
constexpr Time kWarmup = 160;         // > 2*t2: trees fully converged
constexpr Time kDrain = 40;           // let in-flight copies land
constexpr double kCapacity = 500;     // bytes/time-unit per backbone edge
constexpr double kEmitSpan = 60;      // emissions cover ~60 time units

/// Records queue admissions and congestion drops for one trial. Both carry
/// (router, channel) so the trial can classify them after the run.
struct CongestionTap final : net::PacketTap {
  struct Event {
    NodeId at;
    net::Channel channel;
  };
  std::vector<double> delays;  ///< wait + serialization per admitted copy
  std::vector<Event> queued;
  std::vector<Event> drops;

  void on_queue(const net::Topology::Edge& edge, const net::Packet& packet,
                Time wait, Time serialization, std::size_t depth,
                Time now) override {
    (void)depth, (void)now;
    delays.push_back(wait + serialization);
    queued.push_back(Event{edge.from, packet.channel});
  }
  void on_drop(NodeId at, const net::Packet& packet, std::string_view reason,
               Time now) override {
    (void)now;
    if (reason == "queue-full" || reason == "red-early") {
      drops.push_back(Event{at, packet.channel});
    }
  }
};

/// Queue drops by the dropping router's class for the packet's channel.
struct ClassDrops {
  std::uint64_t branching = 0;
  std::uint64_t non_branching = 0;
  std::uint64_t rp = 0;
  std::uint64_t other = 0;  ///< no live state (e.g. transit control hops)

  [[nodiscard]] std::uint64_t total() const {
    return branching + non_branching + rp + other;
  }
};

/// Aggregate over all trials of one (protocol, offered rate) cell.
struct Cell {
  RunningStats goodput;        ///< delivery ratio per trial
  std::vector<double> delays;  ///< pooled queue delays (exact percentiles)
  ClassDrops drops;
  ClassDrops offered;  ///< admitted copies, classified the same way
  std::uint64_t queued = 0;
  std::uint64_t emissions = 0;

  /// Congestion-loss probability at branching-router egress queues:
  /// drops / (drops + admissions) over those queues — the comparable
  /// "branching-router queue loss" number (raw drop counts are not: a
  /// protocol that sheds everything upstream looks spuriously clean).
  [[nodiscard]] double branching_loss() const {
    const double offered_total =
        static_cast<double>(drops.branching + offered.branching);
    return offered_total == 0
               ? 0.0
               : static_cast<double>(drops.branching) / offered_total;
  }

  /// Same loss probability over ALL replication points: branching routers
  /// plus the RP, which is the shared tree's root replication point (PIM-SM
  /// classifies its core as kRp even though packets fan out there). Without
  /// folding the RP in, PIM-SM's funnel damage hides in a class the other
  /// protocols never populate.
  [[nodiscard]] double replication_loss() const {
    const std::uint64_t lost = drops.branching + drops.rp;
    const double offered_total =
        static_cast<double>(lost + offered.branching + offered.rp);
    return offered_total == 0 ? 0.0
                              : static_cast<double>(lost) / offered_total;
  }
};

/// Nearest-rank percentile (q in [0,1]); 0 on an empty sample.
double delay_pct(const std::vector<double>& samples, double q) {
  return samples.empty() ? 0.0 : percentile(samples, q * 100.0);
}

}  // namespace

int main() {
  init_log_level_from_env();
  const std::size_t trials = env_trials(4);
  const std::uint64_t base_seed = env_seed();
  const auto payload = static_cast<std::uint32_t>(env_payload(64));
  const std::size_t queue_limit = env_queue_limit(32);
  const std::string aqm_name = env_aqm();
  const net::AqmPolicy aqm =
      net::aqm_from_string(aqm_name).value_or(net::AqmPolicy::kDropTail);

  std::vector<double> rates{1.0, 2.0, 4.0};
  if (const double r = env_rate(0); r > 0) rates = {r};

  std::printf("=== Ablation: congestion under capacity-constrained links "
              "(ISP) ===\n");
  std::printf("trials=%zu seed=%llu channels=%zu group=%zu capacity=%.0f "
              "queue=%zu aqm=%s payload=%u\n\n",
              trials, static_cast<unsigned long long>(base_seed), kChannels,
              kGroup, kCapacity, queue_limit,
              std::string(net::to_string(aqm)).c_str(), payload);
  std::printf("%-8s %6s %9s %8s %8s %8s %10s %12s %6s %7s %8s\n", "proto",
              "rate", "goodput", "qd.p50", "qd.p95", "qd.p99", "drops",
              "branching", "nonbr", "rp", "br.loss");

  // cells[protocol][rate index], filled serially — byte-identical output
  // at any HBH_JOBS setting.
  std::map<Protocol, std::vector<Cell>> cells;
  for (const Protocol proto : harness::all_protocols()) {
    cells[proto].resize(rates.size());
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
      const double rate = rates[ri];
      Cell& cell = cells[proto][ri];
      for (std::size_t trial = 0; trial < trials; ++trial) {
        Rng rng{base_seed ^ (0xC0B6 * trial + 11)};
        auto scenario = topo::make_isp();
        topo::randomize_costs(scenario.topo, rng);

        // Channel i is sourced at host i; receivers are sampled from the
        // non-source hosts, independently per channel (overlap is fine —
        // one receiver host may subscribe to several channels).
        std::vector<NodeId> non_sources(scenario.hosts.begin() + kChannels,
                                        scenario.hosts.end());
        std::vector<std::vector<NodeId>> receiver_sets;
        receiver_sets.reserve(kChannels);
        for (std::size_t c = 0; c < kChannels; ++c) {
          receiver_sets.push_back(rng.sample(non_sources, kGroup));
        }

        CongestionTap tap;  // outlives the session (declared first)
        Session session{std::move(scenario), proto};
        std::vector<ChannelHandle> handles{session.default_channel()};
        for (std::size_t c = 1; c < kChannels; ++c) {
          handles.push_back(
              session.create_channel(session.scenario().hosts[c]));
        }
        Time delay = 0.1;
        for (std::size_t c = 0; c < kChannels; ++c) {
          for (const NodeId r : receiver_sets[c]) {
            handles[c].subscribe(r, delay);
            delay += 1.0;
          }
        }
        session.run_for(kWarmup);

        // Congestion goes live only after convergence: capacity on every
        // backbone edge, per-trial RED streams, and the recording tap.
        session.apply_backbone_capacity(kCapacity, queue_limit, aqm);
        session.network().seed_aqm(base_seed + trial);
        session.network().add_tap(&tap);
        // Saturated queues drop soft-state refresh traffic, and the
        // resulting tree transients legitimately deliver duplicates (the
        // goodput count below dedupes for exactly that reason) — so if
        // HBH_AUDIT armed an auditor, relax its at-most-once heuristics
        // for the congested window. The definitive detectors (TTL
        // exhaustion, black holes) stay live.
        if (metrics::Auditor* auditor = session.auditor()) {
          auditor->set_at_most_once(false);
        }

        // K emissions per channel at 1/rate spacing. stop lands half an
        // interval past the last emission, so the count never depends on
        // floating-point boundary luck. Starts are staggered across the
        // channels to avoid lockstep bursts.
        const auto k_emit =
            static_cast<std::size_t>(std::max(1.0, kEmitSpan * rate));
        const Time interval = 1.0 / rate;
        const Time now = session.simulator().now();
        for (std::size_t c = 0; c < kChannels; ++c) {
          TrafficSpec spec;
          spec.rate = rate;
          spec.payload_bytes = payload;
          spec.start =
              now + interval * static_cast<double>(c) /
                        static_cast<double>(kChannels);
          spec.stop = spec.start +
                      interval * (static_cast<double>(k_emit) - 0.5);
          handles[c].set_traffic(spec);
        }
        const Time horizon = interval * static_cast<double>(k_emit) + kDrain;
        session.run_for(horizon);

        // Goodput: every emission should reach every subscribed receiver
        // exactly once. Count distinct seqs per (channel, receiver) —
        // congestion-induced tree transients can deliver duplicates, and
        // those must not inflate the ratio past the offered load.
        std::size_t delivered = 0;
        std::size_t expected = 0;
        for (std::size_t c = 0; c < kChannels; ++c) {
          expected += k_emit * receiver_sets[c].size();
          for (const NodeId r : receiver_sets[c]) {
            std::vector<bool> seen(k_emit, false);
            for (const auto& d : session.receiver(r).deliveries()) {
              if (d.channel == handles[c].channel() && d.sent_at >= now &&
                  d.seq < k_emit && !seen[d.seq]) {
                seen[d.seq] = true;
                ++delivered;
              }
            }
          }
        }
        cell.goodput.add(static_cast<double>(delivered) /
                         static_cast<double>(expected));
        cell.emissions += k_emit * kChannels;

        // Attribute each admission and each queue drop to the router's
        // class for the packet's channel (live soft state — receivers are
        // still subscribed, so the converged placement is what we read).
        const auto classify = [&](const CongestionTap::Event& ev,
                                  ClassDrops& into) {
          RouterClass cls = RouterClass::kNone;
          for (const ChannelHandle& h : handles) {
            if (h.channel() == ev.channel) {
              cls = session.router_class(ev.at, h.id());
              break;
            }
          }
          switch (cls) {
            case RouterClass::kBranching: ++into.branching; break;
            case RouterClass::kNonBranching: ++into.non_branching; break;
            case RouterClass::kRp: ++into.rp; break;
            case RouterClass::kNone: ++into.other; break;
          }
        };
        for (const auto& ev : tap.drops) classify(ev, cell.drops);
        for (const auto& ev : tap.queued) classify(ev, cell.offered);
        cell.queued += tap.delays.size();
        cell.delays.insert(cell.delays.end(), tap.delays.begin(),
                           tap.delays.end());
        session.network().remove_tap(&tap);
      }

      std::printf("%-8s %6.1f %9s %8.2f %8.2f %8.2f %10llu %12llu %6llu "
                  "%7llu %7.1f%%\n",
                  std::string(to_string(proto)).c_str(), rate,
                  cell.goodput.to_string(3).c_str(),
                  delay_pct(cell.delays, 0.50), delay_pct(cell.delays, 0.95),
                  delay_pct(cell.delays, 0.99),
                  static_cast<unsigned long long>(cell.drops.total()),
                  static_cast<unsigned long long>(cell.drops.branching),
                  static_cast<unsigned long long>(cell.drops.non_branching),
                  static_cast<unsigned long long>(cell.drops.rp),
                  cell.branching_loss() * 100);
    }
  }

  // The §2.1 corollary, stated on the heaviest swept load: HBH's backbone
  // carries fewer copies (no REUNITE unicast-star overhead, no PIM-SM RP
  // funnel), so the queues at its replication points — branching routers
  // plus the RP for PIM-SM — shed a smaller fraction of what they are
  // offered. PIM-SS builds the same shortest-path source trees HBH
  // approximates (paper fig. 7), so parity with it is the expected floor.
  const std::size_t last = rates.size() - 1;
  std::printf("\nReplication-point queue loss (branching + RP) at rate %.1f: "
              "HBH %.1f%% vs REUNITE %.1f%% vs PIM-SM %.1f%% vs "
              "PIM-SS %.1f%%\n",
              rates[last],
              cells[Protocol::kHbh][last].replication_loss() * 100,
              cells[Protocol::kReunite][last].replication_loss() * 100,
              cells[Protocol::kPimSm][last].replication_loss() * 100,
              cells[Protocol::kPimSs][last].replication_loss() * 100);
  std::printf(
      "Reading: goodput falls and tail queue delay rises with offered load.\n"
      "REUNITE's unicast-star segments put more copies on the same backbone\n"
      "links (its data overhead vs HBH), and PIM-SM concentrates load at the\n"
      "RP — both show up as extra queue loss where trees replicate. HBH\n"
      "tracks the PIM-SS source-tree floor while keeping the highest\n"
      "goodput of the four at every offered rate.\n");

  // The machine-readable cells ride in the run report as a top-level
  // "congestion" section (schema hbh.run_report/v1 passes extra sections
  // through unchanged — bench/check_report.cmake pins the needles).
  bench::maybe_write_bench_report(
      "ablation_congestion", harness::TopoKind::kIsp, {},
      [&](metrics::JsonWriter& w) {
        w.key("congestion");
        w.begin_object();
        w.member("capacity", kCapacity);
        w.member("queue_limit", static_cast<std::uint64_t>(queue_limit));
        w.member("aqm", net::to_string(aqm));
        w.member("payload_bytes", static_cast<std::uint64_t>(payload));
        w.key("protocols");
        w.begin_object();
        for (const Protocol proto : harness::all_protocols()) {
          w.key(to_string(proto));
          w.begin_array();
          for (std::size_t ri = 0; ri < rates.size(); ++ri) {
            const Cell& cell = cells[proto][ri];
            w.begin_object();
            w.member("rate", rates[ri]);
            w.member("goodput_ratio", cell.goodput.mean());
            w.member("emissions", cell.emissions);
            w.member("queued", cell.queued);
            w.key("queue_delay");
            w.begin_object();
            w.member("p50", delay_pct(cell.delays, 0.50));
            w.member("p95", delay_pct(cell.delays, 0.95));
            w.member("p99", delay_pct(cell.delays, 0.99));
            w.end_object();
            w.key("drops");
            w.begin_object();
            w.member("total", cell.drops.total());
            w.member("branching", cell.drops.branching);
            w.member("non_branching", cell.drops.non_branching);
            w.member("rp", cell.drops.rp);
            w.member("other", cell.drops.other);
            w.end_object();
            w.key("offered");
            w.begin_object();
            w.member("branching", cell.offered.branching);
            w.member("non_branching", cell.offered.non_branching);
            w.member("rp", cell.offered.rp);
            w.member("other", cell.offered.other);
            w.end_object();
            w.member("branching_loss", cell.branching_loss());
            w.member("replication_loss", cell.replication_loss());
            w.end_object();
          }
          w.end_array();
        }
        w.end_object();
        w.end_object();
      });
  return 0;
}
