// Ablation: symmetric link costs (DESIGN.md §5).
//
// Every pathology the paper attributes to asymmetric unicast routing must
// vanish when c(a,b) == c(b,a): REUNITE stops duplicating packets, reverse
// SPTs coincide with SPTs, and HBH / PIM-SS / REUNITE converge to the same
// tree cost. This bench reruns the Figure 7(a)/8(a) sweep with symmetrized
// costs to demonstrate it.
#include <cstdio>

#include "fig_common.hpp"

int main() {
  using namespace hbh;
  init_log_level_from_env();
  harness::ExperimentSpec spec =
      bench::spec_from_env(harness::TopoKind::kIsp);
  spec.symmetric_costs = true;
  std::printf("=== Ablation: symmetric link costs, ISP topology ===\n");
  std::printf("trials=%zu — asymmetry-driven gaps should collapse\n\n",
              spec.trials);
  const auto results = harness::run_all(spec);
  std::printf("TREE COST\n%s\n",
              harness::format_table(results, "cost").c_str());
  std::printf("DELAY\n%s\n", harness::format_table(results, "delay").c_str());

  // Quantify the collapse: max relative gap between HBH and PIM-SS.
  const harness::SweepResult* hbh_sweep = nullptr;
  const harness::SweepResult* ss_sweep = nullptr;
  for (const auto& sweep : results) {
    if (sweep.protocol == harness::Protocol::kHbh) hbh_sweep = &sweep;
    if (sweep.protocol == harness::Protocol::kPimSs) ss_sweep = &sweep;
  }
  double max_gap = 0;
  for (std::size_t i = 0; i < hbh_sweep->cells.size(); ++i) {
    const double a = hbh_sweep->cells[i].tree_cost.mean();
    const double b = ss_sweep->cells[i].tree_cost.mean();
    max_gap = std::max(max_gap, std::abs(a - b) / b);
  }
  std::printf("max |HBH - PIM-SS| relative tree-cost gap: %.2f%% "
              "(identical trees up to equal-cost tie-breaks)\n",
              100.0 * max_gap);
  if (harness::maybe_write_report_from_env(spec, results,
                                           "ablation_symmetric")) {
    std::printf("report: %s\n", env_report_path().c_str());
  }
  return 0;
}
