// Ablation: traced convergence timelines per protocol.
//
// The causal tracer turns one instrumented run into per-receiver numbers
// the aggregate benches cannot see: how long after *this* receiver's
// subscribe did the first data packet reach it, how many control-message
// transmissions its join chain cost, and how long after unsubscribe its
// forwarding state actually disappeared. PIM grafts in about one join
// round-trip and prunes explicitly; HBH/REUNITE graft at the next tree
// round and leave by soft-state timeout (t2) — the timelines put numbers
// on that asymmetry, per receiver rather than per sweep cell.
//
// All four protocols replay the identical workload (same costs, same
// receiver sample, same event times), so rows are directly comparable.
#include <cstdio>

#include "fig_common.hpp"
#include "metrics/tracer.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"

using namespace hbh;
using harness::Protocol;
using harness::Session;

int main() {
  init_log_level_from_env();
  constexpr std::size_t kGroup = 8;
  constexpr Time kDataPeriod = 2.0;  // steady data plane, 1 packet / 2 units
  constexpr Time kJoinSpacing = 12.0;
  constexpr Time kSettle = 240.0;    // after last join / after leaves
  const std::uint64_t seed = env_seed(0x7ACEDu);

  std::printf("=== Ablation: traced convergence timelines (ISP) ===\n");
  std::printf("receivers=%zu, data every %.0f units; half the group leaves "
              "after convergence\n\n",
              kGroup, kDataPeriod);
  std::printf("%-8s %7s %12s %12s %11s %7s %12s\n", "proto", "grafts",
              "join->data", "undelivered", "ctrl/graft", "leaves",
              "leave->gone");

  for (const Protocol proto : harness::all_protocols()) {
    // Identical conditions per protocol: one seed drives costs and the
    // receiver sample before the protocol is even chosen.
    Rng rng{seed};
    auto scenario = topo::make_isp();
    topo::randomize_costs(scenario.topo, rng);
    const auto receivers = rng.sample(scenario.candidate_receivers(), kGroup);

    Session session{std::move(scenario), proto};
    session.enable_tracing();
    auto channel = session.default_channel();

    Time delay = 0.1;
    for (const NodeId r : receivers) {
      channel.subscribe(r, delay);
      delay += kJoinSpacing;
    }
    const Time last_join = delay;
    // A steady data plane: every emission is its own root span, so each
    // receiver's first delivery lands within kDataPeriod of its graft
    // completing.
    const Time horizon = last_join + 2 * kSettle;
    for (Time t = 0.5; t < horizon; t += kDataPeriod) {
      session.simulator().schedule(t, [channel]() mutable {
        (void)channel.inject_data();
      });
    }
    session.run_for(last_join + kSettle);
    for (std::size_t i = 0; i < kGroup / 2; ++i) {
      channel.unsubscribe(receivers[i]);
    }
    session.run_for(kSettle);

    const metrics::ConvergenceSummary summary =
        metrics::analyze_convergence(session.tracer()->spans());
    std::printf("%-8s %7zu %12.2f %12zu %11.1f %7zu %12.2f\n",
                std::string(to_string(proto)).c_str(), summary.grafts.size(),
                summary.mean_join_to_first_delivery(),
                summary.undelivered_grafts(), summary.mean_control_per_graft(),
                summary.leaves.size(), summary.mean_leave_to_prune());
  }

  std::printf(
      "\nReading: join->data is the receiver-perceived graft latency (first\n"
      "delivery after subscribe); ctrl/graft counts control-message\n"
      "transmissions causally descended from each subscribe; leave->gone is\n"
      "explicit-prune latency for PIM and soft-state eviction (t2) for\n"
      "HBH/REUNITE.\n");
  bench::maybe_write_bench_report("ablation_trace_convergence",
                                  harness::TopoKind::kIsp);
  return 0;
}
