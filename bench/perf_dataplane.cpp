// Data-plane packets/sec microbench — the baseline ROADMAP item 1 (the
// compiled data-plane fast path) will be judged against.
//
// For each protocol: build the ISP session, converge the control plane,
// then time a loop of source emissions draining through the simulator.
// Built with -DHBH_PROF_ALLOC=ON the artifact also carries the exact
// heap allocation count and bytes of the measured loop (the EventQueue
// recycles its slot pool and SPF results are cached, so what remains is
// per-packet payload/handler cost) — allocation regressions on the data
// path show up as a counted number instead of a timing blur.
//
// Throughput (packets_per_second) varies with the machine; the packet
// *counts* are pure simulation outputs and are deterministic for a fixed
// seed and round count — bench/baselines/perf_dataplane.json gates them
// with a tight band and the timings with a wide one.
//
// Knobs: HBH_SEED, HBH_DP_ROUNDS (measured emission rounds, default 64),
// HBH_DP_WARMUP (unmeasured warmup rounds, default 8), HBH_DP_BURST
// (emissions per round, default 16 — a burst shares one drain, so the
// wall clock measures fan-out work, not round bookkeeping), HBH_FASTPATH
// (compiled fast path on/off; counts are byte-identical either way),
// HBH_PERF_OUT (JSON path, default BENCH_perf_dataplane.json; empty
// string disables the file), HBH_PROF_OUT (standalone phase profile).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/session.hpp"
#include "mcast/fastpath/compiled_forwarder.hpp"
#include "metrics/json.hpp"
#include "topo/builders.hpp"
#include "topo/isp.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/profiler.hpp"
#include "util/rng.hpp"

using namespace hbh;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReceivers = 16;
constexpr Time kConvergeTime = 240;   // control-plane warmup, as in figures
constexpr Time kRoundDrain = 30;      // sim time per emission round
constexpr Time kTailDrain = 60;       // final drain inside the timed window

// Queued mode: the same loop with capacitated backbone links, so the hot
// path includes EgressQueue admission (serialization + wait arithmetic,
// drop-tail bookkeeping). Capacity is sized so bursts fill queues without
// starving the loop — the mode measures queue-machinery overhead, and its
// drop/admission counts are deterministic gate inputs.
constexpr double kQueuedCapacity = 500;  // bytes per time unit
constexpr std::size_t kQueuedLimit = 32;

struct ProtocolResult {
  harness::Protocol protocol;
  std::uint64_t data_packets = 0;     ///< data transmissions, measured loop
  std::uint64_t control_packets = 0;  ///< control riding along (soft state)
  std::uint64_t sim_events = 0;
  double wall_seconds = 0;
  std::uint64_t allocs = 0;           ///< 0 unless -DHBH_PROF_ALLOC=ON
  std::uint64_t alloc_bytes = 0;
  std::uint64_t queue_slots = 0;      ///< slot pool size after the loop
  std::uint64_t queue_pushes = 0;     ///< total pushes (reuse = pushes/slots)
  std::uint64_t queued_packets = 0;   ///< egress-queue admissions (queued mode)
  std::uint64_t drops_queue_full = 0;  ///< drop-tail losses (queued mode)
  std::uint64_t drops_red = 0;         ///< RED early drops (queued mode)
  fastpath::FastpathStats fastpath{};  ///< all zero with HBH_FASTPATH=0

  /// Mean replication fan-out of the compiled batches (0 when off).
  [[nodiscard]] double fanout_mean_batch() const {
    return fastpath.fanout_batches > 0
               ? static_cast<double>(fastpath.fanout_copies) /
                     static_cast<double>(fastpath.fanout_batches)
               : 0;
  }

  [[nodiscard]] double packets_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(data_packets) / wall_seconds
                            : 0;
  }
  [[nodiscard]] double events_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(sim_events) / wall_seconds
                            : 0;
  }
};

ProtocolResult run_protocol(harness::Protocol protocol, std::uint64_t seed,
                            std::size_t rounds, std::size_t warmup_rounds,
                            std::size_t burst, bool queued) {
  // Phase attribution (and the fast path's per-hop wall sampling) reads
  // the clock inside the measured loop, so the profiler is installed only
  // when a profile artifact was actually requested via HBH_PROF_OUT.
  prof::PhaseProfiler profiler;
  std::optional<prof::ScopedProfiler> install;
  if (!env_prof_out().empty()) install.emplace(profiler);

  // Same paired-trial construction as the figure sweeps: every protocol
  // sees identical costs and the same receiver set.
  Rng rng{seed};
  topo::Scenario scenario = topo::make_isp();
  topo::randomize_costs(scenario.topo, rng);
  if (queued) {
    topo::apply_backbone_capacity(scenario.topo, kQueuedCapacity, kQueuedLimit);
  }
  auto candidates = scenario.candidate_receivers();
  const std::vector<NodeId> receivers = rng.sample(candidates, kReceivers);

  const harness::SessionConfig config{};
  harness::Session session{std::move(scenario), protocol, config};
  harness::ChannelHandle ch = session.default_channel();
  ProtocolResult result{.protocol = protocol};
  {
    HBH_PHASE("converge");
    Time delay = 0.1;
    for (const NodeId r : receivers) {
      session.subscribe(r, delay);
      delay += 1.2 * config.timers.tree_period;
    }
    session.run_for(delay + kConvergeTime);
    for (std::size_t i = 0; i < warmup_rounds; ++i) {
      for (std::size_t b = 0; b < burst; ++b) (void)ch.inject_data();
      session.run_for(kRoundDrain);
    }
  }

  {
    HBH_PHASE("measure_loop");
    const net::NetworkCounters before = session.network().counters();
    const std::uint64_t events_before = session.simulator().executed();
    const prof::AllocCounters alloc_before = prof::thread_alloc_counters();
    const auto start = Clock::now();
    for (std::size_t i = 0; i < rounds; ++i) {
      for (std::size_t b = 0; b < burst; ++b) (void)ch.inject_data();
      session.run_for(kRoundDrain);
    }
    session.run_for(kTailDrain);
    result.wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    const prof::AllocCounters alloc_after = prof::thread_alloc_counters();
    const net::NetworkCounters& after = session.network().counters();
    result.data_packets = after.data_transmissions - before.data_transmissions;
    result.control_packets =
        after.control_transmissions - before.control_transmissions;
    result.sim_events = session.simulator().executed() - events_before;
    result.queued_packets = after.queued_packets - before.queued_packets;
    result.drops_queue_full = after.drops_queue_full - before.drops_queue_full;
    result.drops_red = after.drops_red - before.drops_red;
    result.allocs = alloc_after.allocs - alloc_before.allocs;
    result.alloc_bytes = alloc_after.bytes - alloc_before.bytes;
    result.queue_slots = session.simulator().queue().slots_allocated();
    result.queue_pushes = session.simulator().queue().total_pushes();
  }

  if (const fastpath::CompiledForwarder* fp = session.fastpath();
      fp != nullptr) {
    result.fastpath = fp->stats();
  }
  session.flush_fastpath_profile();  // fastpath/compile + fastpath/forward
  prof::process_profile().merge(to_string(protocol), profiler);
  return result;
}

}  // namespace

int main() {
  init_log_level_from_env();
  const std::uint64_t seed = env_seed();
  const std::size_t rounds = env_dp_rounds(64);
  const std::size_t warmup_rounds = env_dp_warmup(8);
  const std::size_t burst = env_dp_burst(16);

  std::printf("=== perf_dataplane — data fan-out packets/sec ===\n");
  std::printf(
      "topology=ISP receivers=%zu rounds=%zu warmup=%zu burst=%zu "
      "seed=%llu fastpath=%d\n\n",
      kReceivers, rounds, warmup_rounds, burst,
      static_cast<unsigned long long>(seed), env_fastpath() ? 1 : 0);

  std::vector<ProtocolResult> results;
  std::vector<ProtocolResult> queued_results;
  for (const harness::Protocol p : harness::all_protocols()) {
    results.push_back(
        run_protocol(p, seed, rounds, warmup_rounds, burst, false));
    queued_results.push_back(
        run_protocol(p, seed, rounds, warmup_rounds, burst, true));
  }

  std::printf("%-10s %12s %12s %14s %14s %10s %9s %9s\n", "protocol",
              "data_pkts", "ctrl_pkts", "packets/s", "events/s", "allocs",
              "fp_hits", "fp_batch");
  for (const ProtocolResult& r : results) {
    std::printf("%-10s %12llu %12llu %14.0f %14.0f %10llu %9llu %9.2f\n",
                std::string(to_string(r.protocol)).c_str(),
                static_cast<unsigned long long>(r.data_packets),
                static_cast<unsigned long long>(r.control_packets),
                r.packets_per_second(), r.events_per_second(),
                static_cast<unsigned long long>(r.allocs),
                static_cast<unsigned long long>(r.fastpath.hits),
                r.fanout_mean_batch());
  }

  std::printf("\nqueued mode (backbone capacity=%.0f B/tu, queue=%zu, "
              "drop-tail):\n",
              kQueuedCapacity, kQueuedLimit);
  std::printf("%-10s %12s %12s %12s %14s\n", "protocol", "data_pkts",
              "queued", "drops", "packets/s");
  for (const ProtocolResult& r : queued_results) {
    std::printf("%-10s %12llu %12llu %12llu %14.0f\n",
                std::string(to_string(r.protocol)).c_str(),
                static_cast<unsigned long long>(r.data_packets),
                static_cast<unsigned long long>(r.queued_packets),
                static_cast<unsigned long long>(r.drops_queue_full +
                                                r.drops_red),
                r.packets_per_second());
  }

  const std::string out_path = env_perf_out("BENCH_perf_dataplane.json");
  if (!out_path.empty()) {
    std::ofstream out{out_path};
    if (!out) {
      std::fprintf(stderr, "error: cannot write HBH_PERF_OUT=%s\n",
                   out_path.c_str());
      return 1;
    }
    metrics::JsonWriter w{out};
    w.begin_object();
    w.member("schema", "hbh.perf_dataplane/v1");
    w.key("config");
    w.begin_object();
    w.member("topology", "ISP");
    w.member("receivers", static_cast<std::uint64_t>(kReceivers));
    w.member("rounds", static_cast<std::uint64_t>(rounds));
    w.member("warmup_rounds", static_cast<std::uint64_t>(warmup_rounds));
    w.member("burst", static_cast<std::uint64_t>(burst));
    w.member("seed", seed);
    w.member("alloc_counting", prof::kAllocCountingCompiled);
    w.end_object();
    w.key("protocols");
    w.begin_object();
    for (const ProtocolResult& r : results) {
      w.key(to_string(r.protocol));
      w.begin_object();
      w.member("data_packets", r.data_packets);
      w.member("control_packets", r.control_packets);
      w.member("sim_events", r.sim_events);
      w.member("wall_seconds", r.wall_seconds);
      w.member("packets_per_second", r.packets_per_second());
      w.member("events_per_second", r.events_per_second());
      w.member("allocs", r.allocs);
      w.member("alloc_bytes", r.alloc_bytes);
      w.member("queue_slots", r.queue_slots);
      w.member("queue_pushes", r.queue_pushes);
      // Scrubbed (with the timings) from mode-equivalence comparisons:
      // zero by definition when HBH_FASTPATH=0.
      w.key("fastpath");
      w.begin_object();
      w.member("hits", r.fastpath.hits);
      w.member("recompiles", r.fastpath.recompiles);
      w.member("invalidations", r.fastpath.invalidations);
      w.member("fanout_batches", r.fastpath.fanout_batches);
      w.member("fanout_copies", r.fastpath.fanout_copies);
      w.member("fanout_mean_batch", r.fanout_mean_batch());
      w.end_object();
      w.end_object();
    }
    w.end_object();
    // Same loop with capacitated backbone links: the hot path now runs
    // EgressQueue admission per data copy. Counts are deterministic; the
    // baseline pins a throughput floor so queue arithmetic regressions on
    // the data path trip the perf gate (docs/PERFORMANCE.md).
    w.key("queued");
    w.begin_object();
    w.member("capacity", kQueuedCapacity);
    w.member("queue_limit", static_cast<std::uint64_t>(kQueuedLimit));
    w.key("protocols");
    w.begin_object();
    for (const ProtocolResult& r : queued_results) {
      w.key(to_string(r.protocol));
      w.begin_object();
      w.member("data_packets", r.data_packets);
      w.member("queued_packets", r.queued_packets);
      w.member("drops_queue_full", r.drops_queue_full);
      w.member("drops_red", r.drops_red);
      w.member("wall_seconds", r.wall_seconds);
      w.member("packets_per_second", r.packets_per_second());
      w.end_object();
    }
    w.end_object();
    w.end_object();
    w.member("peak_rss_bytes", prof::peak_rss_bytes());
    w.end_object();
    out << '\n';
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  if (harness::maybe_write_profile_from_env("perf_dataplane")) {
    std::printf("profile: %s\n", env_prof_out().c_str());
  }
  return 0;
}
