// Reproduces Figure 8(b): average delay experienced by the receivers vs
// number of receivers on the 50-node random topology.
#include "fig_common.hpp"

int main() {
  return hbh::bench::run_figure(
      "Figure 8(b)", "receiver average delay, 50-node random topology",
      hbh::harness::TopoKind::kRandom50, "delay");
}
