// Perf smoke bench: one binary that times the experiment engine end to end
// (run_all, serial vs. HBH_JOBS-parallel) plus the simulator's hottest
// micro loops, and emits a machine-readable JSON summary. It is the tool
// for recording the perf baselines described in docs/PERFORMANCE.md.
//
// It also *checks* the determinism-under-parallelism contract: the serial
// and parallel runs must render byte-identical tables and CSV, and the
// binary exits nonzero if they do not.
//
// Knobs: HBH_TRIALS (default 20), HBH_SEED, HBH_JOBS (parallel job count,
// default all cores), HBH_PERF_OUT (JSON path, default
// BENCH_perf_smoke.json; empty string disables the file).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/trial_pool.hpp"
#include "metrics/json.hpp"
#include "routing/dijkstra.hpp"
#include "sim/event_queue.hpp"
#include "topo/isp.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

using namespace hbh;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct MicroResult {
  const char* name;
  std::uint64_t items = 0;
  double seconds = 0;
};

// The event-queue throughput loop from BM_EventQueuePushPop, sized to run
// for a measurable wall time without google-benchmark's harness.
MicroResult micro_event_queue(std::size_t batch, std::size_t rounds) {
  Rng rng{1};
  const auto start = Clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < batch; ++i) q.push(rng.uniform(0, 1000), [] {});
    while (!q.empty()) (void)q.pop();
  }
  return {"event_queue_push_pop", static_cast<std::uint64_t>(batch * rounds),
          seconds_since(start)};
}

// Soft-state churn: every other event is cancelled before draining.
MicroResult micro_event_queue_cancel(std::size_t batch, std::size_t rounds) {
  Rng rng{2};
  std::vector<sim::EventId> ids;
  ids.reserve(batch);
  const auto start = Clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    sim::EventQueue q;
    ids.clear();
    for (std::size_t i = 0; i < batch; ++i) {
      ids.push_back(q.push(rng.uniform(0, 1000), [] {}));
    }
    for (std::size_t i = 0; i < batch; i += 2) q.cancel(ids[i]);
    while (!q.empty()) (void)q.pop();
  }
  return {"event_queue_push_cancel_pop",
          static_cast<std::uint64_t>(batch * rounds), seconds_since(start)};
}

// The fault-path SPF recompute loop with warm scratch buffers.
MicroResult micro_dijkstra(std::size_t iters) {
  auto scenario = topo::make_isp();
  Rng rng{3};
  topo::randomize_costs(scenario.topo, rng);
  routing::SpfResult out;
  routing::DijkstraScratch scratch;
  const routing::MetricFn metric = routing::cost_metric();
  const auto start = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    routing::dijkstra_into(scenario.topo, NodeId{0}, metric, out, scratch);
  }
  return {"dijkstra_into_isp", static_cast<std::uint64_t>(iters),
          seconds_since(start)};
}

}  // namespace

int main() {
  init_log_level_from_env();
  harness::ExperimentSpec spec;
  spec.topology = harness::TopoKind::kIsp;
  spec.group_sizes = harness::isp_group_sizes();
  spec.trials = env_trials(20);
  spec.base_seed = env_seed();
  const std::size_t jobs = harness::TrialPool::resolve_jobs();

  std::printf("=== perf_smoke — experiment engine + hot loops ===\n");
  std::printf("trials=%zu seed=%llu parallel_jobs=%zu\n\n", spec.trials,
              static_cast<unsigned long long>(spec.base_seed), jobs);

  const auto serial_start = Clock::now();
  const auto serial = harness::run_all(spec, 1);
  const double serial_s = seconds_since(serial_start);

  const auto parallel_start = Clock::now();
  const auto parallel = harness::run_all(spec, jobs);
  const double parallel_s = seconds_since(parallel_start);

  // The determinism contract, checked on the rendered artifacts: tables
  // (both metrics, with CI columns) and the CSV must match byte for byte.
  const bool identical =
      harness::format_table(serial, "cost", true) ==
          harness::format_table(parallel, "cost", true) &&
      harness::format_table(serial, "delay", true) ==
          harness::format_table(parallel, "delay", true) &&
      harness::format_csv(serial) == harness::format_csv(parallel);

  std::printf("run_all serial   : %8.3f s (jobs=1)\n", serial_s);
  std::printf("run_all parallel : %8.3f s (jobs=%zu)\n", parallel_s, jobs);
  std::printf("speedup          : %8.2fx\n", serial_s / parallel_s);
  std::printf("outputs identical: %s\n\n", identical ? "yes" : "NO");

  std::vector<MicroResult> micro;
  micro.push_back(micro_event_queue(10000, 200));
  micro.push_back(micro_event_queue_cancel(10000, 200));
  micro.push_back(micro_dijkstra(20000));
  for (const MicroResult& m : micro) {
    std::printf("%-28s %9.3f s  %12.0f items/s\n", m.name, m.seconds,
                static_cast<double>(m.items) / m.seconds);
  }

  const std::string out_path =
      env_perf_out("BENCH_perf_smoke.json");
  if (!out_path.empty()) {
    std::ofstream out{out_path};
    if (!out) {
      std::fprintf(stderr, "error: cannot write HBH_PERF_OUT=%s\n",
                   out_path.c_str());
      return 1;
    }
    metrics::JsonWriter w{out};
    w.begin_object();
    w.member("schema", "hbh.perf_smoke/v1");
    w.key("config");
    w.begin_object();
    w.member("topology", to_string(spec.topology));
    w.member("trials", static_cast<std::uint64_t>(spec.trials));
    w.member("seed", spec.base_seed);
    w.member("parallel_jobs", static_cast<std::uint64_t>(jobs));
    w.end_object();
    w.key("run_all");
    w.begin_object();
    w.member("serial_seconds", serial_s);
    w.member("parallel_seconds", parallel_s);
    w.member("speedup", serial_s / parallel_s);
    w.member("outputs_identical", identical);
    w.end_object();
    w.key("micro");
    w.begin_array();
    for (const MicroResult& m : micro) {
      w.begin_object();
      w.member("name", m.name);
      w.member("items", m.items);
      w.member("seconds", m.seconds);
      w.member("items_per_second", static_cast<double>(m.items) / m.seconds);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    out << '\n';
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  if (!identical) {
    std::fprintf(stderr,
                 "error: serial and parallel outputs differ — the "
                 "determinism contract is broken\n");
    return 1;
  }
  return 0;
}
