# Runs a figure bench with HBH_REPORT set and asserts the JSON artifact
# carries the report's load-bearing sections. Invoked by the
# bench_report_e2e ctest case (see bench/CMakeLists.txt); expects -DBENCH
# (binary path) and -DOUT (report path).
# Optional -DEXTRA_ENV=VAR=value adds one more environment setting (the
# state-scaling check caps its channel sweep this way).
# Optional -DTRACE_OUT=path also sets HBH_TRACE_OUT and schema-checks the
# resulting Perfetto trace (hbh.trace/v1).
set(trace_env "")
if(TRACE_OUT)
  set(trace_env "HBH_TRACE_OUT=${TRACE_OUT}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env HBH_TRIALS=2 "HBH_REPORT=${OUT}"
    ${trace_env} ${EXTRA_ENV} ${BENCH}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE bench_stdout
  ERROR_VARIABLE bench_stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench exited with ${rc}:\n${bench_stdout}\n${bench_stderr}")
endif()

if(NOT EXISTS "${OUT}")
  message(FATAL_ERROR "HBH_REPORT=${OUT} was not written")
endif()
file(READ "${OUT}" doc)

foreach(needle
    "\"schema\"" "hbh.run_report/v1" "\"sweep\"" "\"runs\"" "\"HBH\""
    "\"counters\"" "\"net.tx.tree\"" "\"gauges\"" "\"series\""
    "\"state.forwarding_entries\"" "\"messages\"" "\"messages_dropped\""
    "\"p50\"" "\"p95\"" "\"p99\"" "\"trace\"" "hbh.trace/v1"
    "\"convergence\"" "\"grafts\"" "\"mean_join_to_first_delivery\""
    "\"perf_profile\"" "hbh.perf_profile/v1" "\"phases\"" "\"trial_setup\""
    "\"wall_ns\"" "\"cpu_ns\"" "\"peak_rss_bytes\""
    "\"wall_seconds\"")
  string(FIND "${doc}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "report ${OUT} is missing ${needle}")
  endif()
endforeach()

# Reports produced by harness::write_run_report always carry the
# forwarding-plane auditor's verdict — zeros included, so "no anomalies"
# is an assertion, not an absence. -DNO_ANOMALIES=1 opts out for benches
# with a bespoke report writer (the state-scaling ablation).
if(NOT NO_ANOMALIES)
  foreach(needle
      "\"anomalies\"" "hbh.anomalies/v1" "\"by_protocol\"" "\"strict\""
      "\"loop\"" "\"duplicate-delivery\"" "\"black-hole\""
      "\"state-misplacement\"" "\"soft-state-leak\"" "\"tree-drift\"")
    string(FIND "${doc}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "report ${OUT} is missing anomaly needle ${needle}")
    endif()
  endforeach()
endif()

if(CONGESTION)
  foreach(needle
      "\"congestion\"" "\"goodput_ratio\"" "\"queue_delay\""
      "\"queue_limit\"" "\"aqm\"" "\"branching\"" "\"non_branching\""
      "\"rp\"" "\"queued\"")
    string(FIND "${doc}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "report ${OUT} is missing congestion needle ${needle}")
    endif()
  endforeach()
endif()

message(STATUS "report OK: ${OUT}")

if(TRACE_OUT)
  if(NOT EXISTS "${TRACE_OUT}")
    message(FATAL_ERROR "HBH_TRACE_OUT=${TRACE_OUT} was not written")
  endif()
  file(READ "${TRACE_OUT}" trace_doc)
  foreach(needle
      "hbh.trace/v1" "\"traceEvents\"" "\"displayTimeUnit\""
      "\"thread_name\"" "\"process_name\"" "\"spans_recorded\""
      "\"ph\":\"X\"" "\"subscribe\"" "tx:tree")
    string(FIND "${trace_doc}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "trace ${TRACE_OUT} is missing ${needle}")
    endif()
  endforeach()
  message(STATUS "trace OK: ${TRACE_OUT}")
endif()
