# Runs a figure bench with HBH_REPORT set and asserts the JSON artifact
# carries the report's load-bearing sections. Invoked by the
# bench_report_e2e ctest case (see bench/CMakeLists.txt); expects -DBENCH
# (binary path) and -DOUT (report path).
# Optional -DEXTRA_ENV=VAR=value adds one more environment setting (the
# state-scaling check caps its channel sweep this way).
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env HBH_TRIALS=2 "HBH_REPORT=${OUT}" ${EXTRA_ENV}
    ${BENCH}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE bench_stdout
  ERROR_VARIABLE bench_stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench exited with ${rc}:\n${bench_stdout}\n${bench_stderr}")
endif()

if(NOT EXISTS "${OUT}")
  message(FATAL_ERROR "HBH_REPORT=${OUT} was not written")
endif()
file(READ "${OUT}" doc)

foreach(needle
    "\"schema\"" "hbh.run_report/v1" "\"sweep\"" "\"runs\"" "\"HBH\""
    "\"counters\"" "\"net.tx.tree\"" "\"gauges\"" "\"series\""
    "\"state.forwarding_entries\"" "\"messages\"" "\"wall_seconds\"")
  string(FIND "${doc}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "report ${OUT} is missing ${needle}")
  endif()
endforeach()

message(STATUS "report OK: ${OUT}")
