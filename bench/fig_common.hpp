// Shared driver for the figure-reproduction benches.
//
// Each fig*_ binary reproduces one figure of the paper's §4.2: it runs the
// four protocols over the figure's group-size sweep and prints the series
// the paper plots. Tuned via the HBH_* environment knobs — accessors in
// util/env.hpp, authoritative table in README "Environment knobs"
// (HBH_TRIALS defaults to 60 here; the paper uses 500).
#pragma once

#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace hbh::bench {

inline harness::ExperimentSpec spec_from_env(harness::TopoKind topology) {
  harness::ExperimentSpec spec;
  spec.topology = topology;
  spec.group_sizes = topology == harness::TopoKind::kIsp
                         ? harness::isp_group_sizes()
                         : harness::random50_group_sizes();
  // Default trial counts keep the whole bench suite to minutes on one
  // core; the paper's full 500-trial runs are one env var away.
  const std::size_t default_trials =
      topology == harness::TopoKind::kIsp ? 60 : 25;
  spec.trials = env_trials(default_trials);
  spec.base_seed = env_seed();
  return spec;
}

inline int run_figure(const char* figure, const char* paper_caption,
                      harness::TopoKind topology, const char* metric) {
  init_log_level_from_env();
  const harness::ExperimentSpec spec = spec_from_env(topology);
  std::printf("=== %s — %s ===\n", figure, paper_caption);
  // Deliberately no jobs= in the banner: stdout must be byte-identical
  // across HBH_JOBS settings so CI can diff serial vs parallel runs.
  std::printf("topology=%s trials=%zu seed=%llu (paper: 500 trials)\n\n",
              std::string(to_string(topology)).c_str(), spec.trials,
              static_cast<unsigned long long>(spec.base_seed));
  const auto results = harness::run_all(spec);
  std::printf("%s\n", harness::format_table(results, metric).c_str());

  std::size_t failures = 0;
  for (const auto& sweep : results) {
    for (const auto& cell : sweep.cells) failures += cell.delivery_failures;
  }
  if (failures != 0) {
    std::printf("note: %zu/%zu trials were measured before full soft-state "
                "convergence\n",
                failures, spec.trials * spec.group_sizes.size() * 4);
  }
  if (env_csv()) {
    std::printf("\n%s", harness::format_csv(results).c_str());
  }
  const std::string report = env_report_path();
  if (!report.empty()) {
    if (harness::write_run_report(spec, results, figure, report)) {
      std::printf("report: %s\n", report.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write HBH_REPORT=%s\n",
                   report.c_str());
      return 1;
    }
  }
  const std::string trace_out = env_trace_out();
  if (!trace_out.empty()) {
    if (harness::write_trace_file(spec, figure, trace_out)) {
      std::printf("trace: %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write HBH_TRACE_OUT=%s\n",
                   trace_out.c_str());
      return 1;
    }
  }
  const std::string audit_out = env_audit_out();
  if (!audit_out.empty()) {
    if (harness::write_audit_file(spec, figure, audit_out)) {
      std::printf("audit: %s\n", audit_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write HBH_AUDIT_OUT=%s\n",
                   audit_out.c_str());
      return 1;
    }
  }
  const std::string prof_out = env_prof_out();
  if (!prof_out.empty()) {
    if (harness::write_profile_file(figure, prof_out)) {
      std::printf("profile: %s\n", prof_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write HBH_PROF_OUT=%s\n",
                   prof_out.c_str());
      return 1;
    }
  }
  return 0;
}

/// HBH_REPORT support for benches that don't run a figure sweep: writes a
/// report whose "runs" section still carries one instrumented trial per
/// protocol (registry metrics, state time series, message counts).
/// `extra` appends bench-specific top-level report sections
/// (harness::ReportSectionHook semantics).
inline void maybe_write_bench_report(
    const char* name, harness::TopoKind topology,
    const harness::SessionHook& customize = {},
    const harness::ReportSectionHook& extra = {}) {
  const harness::ExperimentSpec spec = spec_from_env(topology);
  const std::string path = env_report_path();
  if (!path.empty()) {
    std::vector<harness::SweepResult> results;
    for (const harness::Protocol p : harness::all_protocols()) {
      results.push_back(harness::SweepResult{p, {}});
    }
    if (harness::write_run_report(spec, results, name, path, customize,
                                  extra)) {
      std::printf("report: %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write HBH_REPORT=%s\n",
                   path.c_str());
    }
  }
  if (harness::maybe_write_trace_from_env(spec, name, customize)) {
    std::printf("trace: %s\n", env_trace_out().c_str());
  }
  if (harness::maybe_write_audit_from_env(spec, name, customize)) {
    std::printf("audit: %s\n", env_audit_out().c_str());
  }
  if (harness::maybe_write_profile_from_env(name)) {
    std::printf("profile: %s\n", env_prof_out().c_str());
  }
}

}  // namespace hbh::bench
