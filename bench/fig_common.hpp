// Shared driver for the figure-reproduction benches.
//
// Each fig*_ binary reproduces one figure of the paper's §4.2: it runs the
// four protocols over the figure's group-size sweep and prints the series
// the paper plots. Environment knobs:
//   HBH_TRIALS  — trials per sweep point (default 60; the paper uses 500)
//   HBH_SEED    — base seed (default 20010827)
//   HBH_CSV     — set to 1 to also print machine-readable CSV
#pragma once

#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "util/env.hpp"

namespace hbh::bench {

inline harness::ExperimentSpec spec_from_env(harness::TopoKind topology) {
  harness::ExperimentSpec spec;
  spec.topology = topology;
  spec.group_sizes = topology == harness::TopoKind::kIsp
                         ? harness::isp_group_sizes()
                         : harness::random50_group_sizes();
  // Default trial counts keep the whole bench suite to minutes on one
  // core; the paper's full 500-trial runs are one env var away.
  const std::int64_t default_trials =
      topology == harness::TopoKind::kIsp ? 60 : 25;
  spec.trials =
      static_cast<std::size_t>(env_int_or("HBH_TRIALS", default_trials));
  spec.base_seed = static_cast<std::uint64_t>(env_int_or("HBH_SEED", 20010827));
  return spec;
}

inline int run_figure(const char* figure, const char* paper_caption,
                      harness::TopoKind topology, const char* metric) {
  const harness::ExperimentSpec spec = spec_from_env(topology);
  std::printf("=== %s — %s ===\n", figure, paper_caption);
  std::printf("topology=%s trials=%zu seed=%llu (paper: 500 trials)\n\n",
              std::string(to_string(topology)).c_str(), spec.trials,
              static_cast<unsigned long long>(spec.base_seed));
  const auto results = harness::run_all(spec);
  std::printf("%s\n", harness::format_table(results, metric).c_str());

  std::size_t failures = 0;
  for (const auto& sweep : results) {
    for (const auto& cell : sweep.cells) failures += cell.delivery_failures;
  }
  if (failures != 0) {
    std::printf("note: %zu/%zu trials were measured before full soft-state "
                "convergence\n",
                failures, spec.trials * spec.group_sizes.size() * 4);
  }
  if (env_int_or("HBH_CSV", 0) != 0) {
    std::printf("\n%s", harness::format_csv(results).c_str());
  }
  return 0;
}

}  // namespace hbh::bench
