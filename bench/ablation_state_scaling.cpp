// Ablation: aggregate router state as the channel count grows.
//
// The paper's §2.1/§3 state argument is per ⟨S,G⟩ channel: HBH and
// REUNITE place forwarding state (MFT) only at branching routers and a
// one-entry control block (MCT) everywhere else, while PIM pays oif
// state at every on-tree router. What an operator cares about is the
// *aggregate* — N channels' worth of per-channel state — so this bench
// sweeps the number of concurrently hosted channels (1..64, capped by
// HBH_CHANNELS) on the random-50 topology, runs every channel under a
// seeded exponential on/off membership churn workload (HBH_CHURN_ON /
// HBH_CHURN_OFF mean dwell times; docs/CHANNELS.md), and reports, per
// router class (branching / non-branching / RP):
//  * (router, channel) incidences holding any state,
//  * aggregate MCT (control) and MFT/oif (forwarding) entries,
//  * steady-state control-message transmissions per refresh period.
//
// Determinism: trials are paired — the (channel count, trial) pair fully
// determines topology costs, per-channel receiver sets, and churn
// scripts, so all four protocols see identical workloads — and the
// (protocol, channel count, trial) grid fans out across a TrialPool with
// pre-sized slots and grid-order aggregation, so output is byte-identical
// for every HBH_JOBS setting.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "harness/churn_plan.hpp"
#include "harness/experiment.hpp"
#include "harness/trial_pool.hpp"
#include "metrics/json.hpp"
#include "metrics/report.hpp"
#include "metrics/tracer.hpp"
#include "topo/random.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/profiler.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace hbh;
using harness::AggregateCensus;
using harness::ChannelHandle;
using harness::ChurnConfig;
using harness::ChurnPlan;
using harness::Protocol;
using harness::Session;

namespace {

constexpr std::size_t kGroup = 8;   // receivers sampled per channel
constexpr Time kHorizon = 400;      // churn runs the whole horizon
constexpr Time kCtlWindow = 100;    // control-overhead sampling window

/// Seed for a (channel count, trial) cell — protocol-independent, so all
/// four protocols replay the same costs, receiver sets, and churn.
std::uint64_t cell_seed(std::uint64_t base_seed, std::size_t channels,
                        std::size_t trial) {
  std::uint64_t s = base_seed;
  s ^= 0x9E3779B9u * (channels + 1);
  s ^= 0x100000001B3ull * (trial + 1);
  std::uint64_t mix = s;
  return splitmix64(mix);
}

struct CellResult {
  AggregateCensus census;
  double ctl_rate = 0;  ///< control transmissions per refresh period
};

struct Workload {
  std::uint64_t base_seed = 20010827;
  ChurnConfig churn{};
};

/// Builds the paired-trial session: one network, `channels` channels all
/// sourced at the scenario's source host, each with its own receiver set
/// and churn script.
std::unique_ptr<Session> make_session(Protocol proto, std::size_t channels,
                                      std::size_t trial, const Workload& w) {
  HBH_PHASE("trial_setup");
  Rng rng{cell_seed(w.base_seed, channels, trial)};
  // One fixed random graph per base seed (as the experiment driver does);
  // per-trial costs are randomized on top.
  Rng topo_rng{w.base_seed};
  topo::Scenario scenario = topo::make_random50(topo_rng);
  topo::randomize_costs(scenario.topo, rng);
  const std::vector<NodeId> candidates = scenario.candidate_receivers();
  const NodeId source_host = scenario.source_host;

  auto session = std::make_unique<Session>(std::move(scenario), proto);
  std::vector<ChannelHandle> handles;
  handles.push_back(session->default_channel());
  for (std::size_t c = 1; c < channels; ++c) {
    handles.push_back(session->create_channel(source_host));
  }
  for (ChannelHandle& handle : handles) {
    const std::vector<NodeId> receivers = rng.sample(candidates, kGroup);
    const std::uint64_t churn_seed = rng.next();
    handle.schedule_churn(
        ChurnPlan::exponential_on_off(receivers, w.churn, churn_seed));
  }
  return session;
}

CellResult run_cell(Protocol proto, std::size_t channels, std::size_t trial,
                    const Workload& w) {
  // Per-trial profiler merged under the protocol label: phase *counts* are
  // pure simulation outputs, so the aggregate is byte-identical for every
  // HBH_JOBS setting (merge order commutes; only timings vary).
  prof::PhaseProfiler profiler;
  CellResult out;
  {
    const prof::ScopedProfiler install{profiler};
    auto session = make_session(proto, channels, trial, w);
    {
      HBH_PHASE("churn");
      session->run_for(kHorizon);
    }
    out.census = session->aggregate_census();
    const std::uint64_t before =
        session->network().counters().control_transmissions;
    {
      HBH_PHASE("measure");
      session->run_for(kCtlWindow);
    }
    const std::uint64_t after =
        session->network().counters().control_transmissions;
    out.ctl_rate = static_cast<double>(after - before) / (kCtlWindow / 10.0);
  }
  prof::process_profile().merge(to_string(proto), profiler);
  return out;
}

/// Grid-order aggregate of one (protocol, channel count) cell.
struct CellStats {
  std::size_t channels = 0;
  RunningStats branching_rtrs, branching_fwd;
  RunningStats nonbr_rtrs, nonbr_ctl, nonbr_fwd;
  RunningStats rp_rtrs, rp_entries;
  RunningStats total_ctl, total_fwd, ctl_rate;
};

CellStats aggregate(std::size_t channels, const CellResult* results,
                    std::size_t trials) {
  CellStats s;
  s.channels = channels;
  for (std::size_t t = 0; t < trials; ++t) {
    const AggregateCensus& c = results[t].census;
    s.branching_rtrs.add(static_cast<double>(c.branching.routers));
    s.branching_fwd.add(static_cast<double>(c.branching.forwarding_entries));
    s.nonbr_rtrs.add(static_cast<double>(c.non_branching.routers));
    s.nonbr_ctl.add(static_cast<double>(c.non_branching.control_entries));
    s.nonbr_fwd.add(static_cast<double>(c.non_branching.forwarding_entries));
    s.rp_rtrs.add(static_cast<double>(c.rp.routers));
    s.rp_entries.add(static_cast<double>(c.rp.control_entries +
                                         c.rp.forwarding_entries));
    s.total_ctl.add(static_cast<double>(c.totals.control_entries));
    s.total_fwd.add(static_cast<double>(c.totals.forwarding_entries));
    s.ctl_rate.add(results[t].ctl_rate);
  }
  return s;
}

void write_report(const std::string& path,
                  const std::vector<std::size_t>& channel_counts,
                  std::size_t trials, const Workload& w,
                  const std::vector<std::vector<CellStats>>& sweep) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write HBH_REPORT=%s\n", path.c_str());
    return;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const auto& protocols = harness::all_protocols();

  metrics::JsonWriter jw(out);
  jw.begin_object();
  jw.member("schema", metrics::kRunReportSchema);
  jw.member("figure", "ablation_state_scaling");

  jw.key("spec");
  jw.begin_object();
  jw.member("topology", "random-50");
  jw.member("trials", static_cast<std::uint64_t>(trials));
  jw.member("base_seed", w.base_seed);
  jw.member("group_size", static_cast<std::uint64_t>(kGroup));
  jw.member("churn_mean_on", w.churn.mean_on);
  jw.member("churn_mean_off", w.churn.mean_off);
  jw.member("horizon", kHorizon);
  jw.key("channel_counts");
  jw.begin_array();
  for (const std::size_t n : channel_counts) {
    jw.value(static_cast<std::uint64_t>(n));
  }
  jw.end_array();
  jw.end_object();

  jw.key("sweep");
  jw.begin_array();
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    jw.begin_object();
    jw.member("protocol", to_string(protocols[p]));
    jw.key("cells");
    jw.begin_array();
    for (const CellStats& s : sweep[p]) {
      jw.begin_object();
      jw.member("channels", static_cast<std::uint64_t>(s.channels));
      jw.member("branching.routers", s.branching_rtrs.mean());
      jw.member("branching.forwarding_entries", s.branching_fwd.mean());
      jw.member("non_branching.routers", s.nonbr_rtrs.mean());
      jw.member("non_branching.control_entries", s.nonbr_ctl.mean());
      jw.member("non_branching.forwarding_entries", s.nonbr_fwd.mean());
      jw.member("rp.routers", s.rp_rtrs.mean());
      jw.member("rp.entries", s.rp_entries.mean());
      jw.member("control_entries", s.total_ctl.mean());
      jw.member("forwarding_entries", s.total_fwd.mean());
      jw.member("ctl_msgs_per_period", s.ctl_rate.mean());
      jw.member("trials", static_cast<std::uint64_t>(s.ctl_rate.count()));
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
  }
  jw.end_array();

  // One instrumented deep-dive per protocol: the largest swept channel
  // count, trial 0, telemetry on — registry counters (net.tx.*), the
  // per-class state gauges, the sampled time series, and the message
  // summary all ride along.
  jw.key("runs");
  jw.begin_object();
  for (const Protocol proto : protocols) {
    prof::PhaseProfiler dive_profiler;
    std::optional<prof::ScopedProfiler> dive_install{std::in_place,
                                                     dive_profiler};
    auto session = make_session(proto, channel_counts.back(), 0, w);
    session->enable_telemetry();
    session->enable_tracing();
    {
      HBH_PHASE("churn");
      session->run_for(kHorizon);
    }
    // Merge the dive before snapshotting so the perf_profile section
    // covers the sweep trials plus this instrumented run.
    dive_install.reset();
    prof::process_profile().merge(to_string(proto), dive_profiler);
    const prof::PhaseMap profile =
        prof::process_profile().snapshot(to_string(proto));

    const metrics::ConvergenceSummary convergence =
        metrics::analyze_convergence(session->tracer()->spans());
    metrics::RunReport report;
    report.profile = &profile;
    report.registry = session->registry();
    report.sampler = session->sampler();
    report.trace = session->trace();
    report.tracer = session->tracer();
    report.convergence = &convergence;
    report.info["protocol"] = std::string(to_string(proto));
    report.info["topology"] = "random-50";
    report.numbers["channels"] =
        static_cast<double>(channel_counts.back());
    report.numbers["sim.end_time"] = session->simulator().now();

    jw.key(to_string(proto));
    jw.begin_object();
    report.write_body(jw);
    jw.end_object();
  }
  jw.end_object();

  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  jw.member("wall_seconds", wall.count());
  jw.end_object();
  out << '\n';
  std::printf("report: %s\n", path.c_str());
}

}  // namespace

int main() {
  init_log_level_from_env();
  const std::size_t trials = env_trials(4);
  const std::size_t max_channels = env_channels(64);
  Workload w;
  w.base_seed = env_seed();
  w.churn.mean_on = env_churn_on(120);
  w.churn.mean_off = env_churn_off(60);
  w.churn.horizon = kHorizon - 40;  // let the last events settle a little

  std::vector<std::size_t> channel_counts;
  for (std::size_t n = 1; n <= max_channels; n *= 2) {
    channel_counts.push_back(n);
  }

  std::printf("=== Ablation: aggregate state vs channel count (random-50) "
              "===\n");
  std::printf("trials=%zu seed=%llu channels up to %zu, %zu receivers per "
              "channel,\nchurn on/off means %.0f/%.0f tu, census at t=%.0f\n\n",
              trials, static_cast<unsigned long long>(w.base_seed),
              channel_counts.back(), kGroup, w.churn.mean_on, w.churn.mean_off,
              static_cast<double>(kHorizon));

  // Flat (protocol, channel count, trial) grid behind one pool.
  const auto& protocols = harness::all_protocols();
  const std::size_t per_protocol = channel_counts.size() * trials;
  std::vector<CellResult> grid(protocols.size() * per_protocol);
  harness::TrialPool pool;
  pool.run(grid.size(), [&](std::size_t i) {
    const Protocol proto = protocols[i / per_protocol];
    const std::size_t cell = i % per_protocol;
    grid[i] = run_cell(proto, channel_counts[cell / trials], cell % trials, w);
  });

  std::vector<std::vector<CellStats>> sweep(protocols.size());
  bool control_only_holds = true;
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    const Protocol proto = protocols[p];
    std::printf("%-8s %9s | %9s %9s | %13s %9s %9s | %8s %11s\n",
                std::string(to_string(proto)).c_str(), "channels", "br rtrs",
                "br MFT", "non-br rtrs", "nb MCT", "nb MFT", "RP rtrs",
                "ctl/period");
    for (std::size_t c = 0; c < channel_counts.size(); ++c) {
      const CellStats s = aggregate(
          channel_counts[c],
          grid.data() + p * per_protocol + c * trials, trials);
      std::printf("%-8s %9zu | %9.1f %9.1f | %13.1f %9.1f %9.1f | %8.1f "
                  "%11.1f\n",
                  "", s.channels, s.branching_rtrs.mean(),
                  s.branching_fwd.mean(), s.nonbr_rtrs.mean(),
                  s.nonbr_ctl.mean(), s.nonbr_fwd.mean(), s.rp_rtrs.mean(),
                  s.ctl_rate.mean());
      if ((proto == Protocol::kHbh || proto == Protocol::kReunite) &&
          s.nonbr_fwd.mean() != 0) {
        control_only_holds = false;
      }
      sweep[p].push_back(s);
    }
    std::printf("\n");
  }

  std::printf(
      "Reading: per channel, HBH/REUNITE non-branching routers hold control\n"
      "state only (nb MFT = 0%s), so aggregate forwarding state scales with\n"
      "branching incidences, not with on-tree routers x channels as PIM's\n"
      "oif state does. The PIM-SM RP column counts the per-channel\n"
      "rendezvous routers serving shared trees.\n",
      control_only_holds ? ", verified above" : " EXPECTED BUT VIOLATED");

  const std::string report = env_report_path();
  if (!report.empty()) {
    write_report(report, channel_counts, trials, w, sweep);
  }
  if (harness::maybe_write_profile_from_env("ablation_state_scaling")) {
    std::printf("profile: %s\n", env_prof_out().c_str());
  }
  return control_only_holds ? 0 : 1;
}
