# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/hbh_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/reunite_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/pim_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/soft_state_test[1]_include.cmake")
include("/root/repo/build/tests/membership_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/pacing_test[1]_include.cmake")
include("/root/repo/build/tests/resilience_test[1]_include.cmake")
include("/root/repo/build/tests/hbh_rules_test[1]_include.cmake")
include("/root/repo/build/tests/reunite_rules_test[1]_include.cmake")
include("/root/repo/build/tests/pim_rules_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/source_agents_test[1]_include.cmake")
include("/root/repo/build/tests/igmp_leaf_test[1]_include.cmake")
include("/root/repo/build/tests/routing_property_test[1]_include.cmake")
