file(REMOVE_RECURSE
  "CMakeFiles/hbh_rules_test.dir/hbh_rules_test.cpp.o"
  "CMakeFiles/hbh_rules_test.dir/hbh_rules_test.cpp.o.d"
  "hbh_rules_test"
  "hbh_rules_test.pdb"
  "hbh_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
