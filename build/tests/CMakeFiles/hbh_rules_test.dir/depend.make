# Empty dependencies file for hbh_rules_test.
# This may be replaced when dependencies are built.
