# Empty compiler generated dependencies file for hbh_protocol_test.
# This may be replaced when dependencies are built.
