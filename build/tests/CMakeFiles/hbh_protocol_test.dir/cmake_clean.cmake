file(REMOVE_RECURSE
  "CMakeFiles/hbh_protocol_test.dir/hbh_protocol_test.cpp.o"
  "CMakeFiles/hbh_protocol_test.dir/hbh_protocol_test.cpp.o.d"
  "hbh_protocol_test"
  "hbh_protocol_test.pdb"
  "hbh_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
