file(REMOVE_RECURSE
  "CMakeFiles/soft_state_test.dir/soft_state_test.cpp.o"
  "CMakeFiles/soft_state_test.dir/soft_state_test.cpp.o.d"
  "soft_state_test"
  "soft_state_test.pdb"
  "soft_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
