file(REMOVE_RECURSE
  "CMakeFiles/reunite_rules_test.dir/reunite_rules_test.cpp.o"
  "CMakeFiles/reunite_rules_test.dir/reunite_rules_test.cpp.o.d"
  "reunite_rules_test"
  "reunite_rules_test.pdb"
  "reunite_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reunite_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
