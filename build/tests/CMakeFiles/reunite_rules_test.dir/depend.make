# Empty dependencies file for reunite_rules_test.
# This may be replaced when dependencies are built.
