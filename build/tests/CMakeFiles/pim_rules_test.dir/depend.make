# Empty dependencies file for pim_rules_test.
# This may be replaced when dependencies are built.
