file(REMOVE_RECURSE
  "CMakeFiles/pim_rules_test.dir/pim_rules_test.cpp.o"
  "CMakeFiles/pim_rules_test.dir/pim_rules_test.cpp.o.d"
  "pim_rules_test"
  "pim_rules_test.pdb"
  "pim_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
