# Empty compiler generated dependencies file for reunite_protocol_test.
# This may be replaced when dependencies are built.
