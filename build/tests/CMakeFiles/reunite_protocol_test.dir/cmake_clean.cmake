file(REMOVE_RECURSE
  "CMakeFiles/reunite_protocol_test.dir/reunite_protocol_test.cpp.o"
  "CMakeFiles/reunite_protocol_test.dir/reunite_protocol_test.cpp.o.d"
  "reunite_protocol_test"
  "reunite_protocol_test.pdb"
  "reunite_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reunite_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
