# Empty compiler generated dependencies file for igmp_leaf_test.
# This may be replaced when dependencies are built.
