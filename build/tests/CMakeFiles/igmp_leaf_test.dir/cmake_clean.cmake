file(REMOVE_RECURSE
  "CMakeFiles/igmp_leaf_test.dir/igmp_leaf_test.cpp.o"
  "CMakeFiles/igmp_leaf_test.dir/igmp_leaf_test.cpp.o.d"
  "igmp_leaf_test"
  "igmp_leaf_test.pdb"
  "igmp_leaf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igmp_leaf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
