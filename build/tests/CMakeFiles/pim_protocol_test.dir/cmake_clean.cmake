file(REMOVE_RECURSE
  "CMakeFiles/pim_protocol_test.dir/pim_protocol_test.cpp.o"
  "CMakeFiles/pim_protocol_test.dir/pim_protocol_test.cpp.o.d"
  "pim_protocol_test"
  "pim_protocol_test.pdb"
  "pim_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
