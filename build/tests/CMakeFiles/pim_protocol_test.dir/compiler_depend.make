# Empty compiler generated dependencies file for pim_protocol_test.
# This may be replaced when dependencies are built.
