# Empty compiler generated dependencies file for source_agents_test.
# This may be replaced when dependencies are built.
