file(REMOVE_RECURSE
  "CMakeFiles/source_agents_test.dir/source_agents_test.cpp.o"
  "CMakeFiles/source_agents_test.dir/source_agents_test.cpp.o.d"
  "source_agents_test"
  "source_agents_test.pdb"
  "source_agents_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_agents_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
