# Empty dependencies file for ablation_symmetric.
# This may be replaced when dependencies are built.
