# Empty compiler generated dependencies file for ablation_state_overhead.
# This may be replaced when dependencies are built.
