file(REMOVE_RECURSE
  "CMakeFiles/ablation_state_overhead.dir/ablation_state_overhead.cpp.o"
  "CMakeFiles/ablation_state_overhead.dir/ablation_state_overhead.cpp.o.d"
  "ablation_state_overhead"
  "ablation_state_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_state_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
