file(REMOVE_RECURSE
  "CMakeFiles/fig8a_delay_isp.dir/fig8a_delay_isp.cpp.o"
  "CMakeFiles/fig8a_delay_isp.dir/fig8a_delay_isp.cpp.o.d"
  "fig8a_delay_isp"
  "fig8a_delay_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_delay_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
