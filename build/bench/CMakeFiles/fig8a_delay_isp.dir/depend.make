# Empty dependencies file for fig8a_delay_isp.
# This may be replaced when dependencies are built.
