file(REMOVE_RECURSE
  "CMakeFiles/fig8b_delay_rand.dir/fig8b_delay_rand.cpp.o"
  "CMakeFiles/fig8b_delay_rand.dir/fig8b_delay_rand.cpp.o.d"
  "fig8b_delay_rand"
  "fig8b_delay_rand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_delay_rand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
