# Empty dependencies file for fig8b_delay_rand.
# This may be replaced when dependencies are built.
