# Empty dependencies file for fig7b_tree_cost_rand.
# This may be replaced when dependencies are built.
