file(REMOVE_RECURSE
  "CMakeFiles/fig7b_tree_cost_rand.dir/fig7b_tree_cost_rand.cpp.o"
  "CMakeFiles/fig7b_tree_cost_rand.dir/fig7b_tree_cost_rand.cpp.o.d"
  "fig7b_tree_cost_rand"
  "fig7b_tree_cost_rand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_tree_cost_rand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
