# Empty dependencies file for fig7a_tree_cost_isp.
# This may be replaced when dependencies are built.
