file(REMOVE_RECURSE
  "CMakeFiles/fig7a_tree_cost_isp.dir/fig7a_tree_cost_isp.cpp.o"
  "CMakeFiles/fig7a_tree_cost_isp.dir/fig7a_tree_cost_isp.cpp.o.d"
  "fig7a_tree_cost_isp"
  "fig7a_tree_cost_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_tree_cost_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
