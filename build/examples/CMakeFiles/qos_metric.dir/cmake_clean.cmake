file(REMOVE_RECURSE
  "CMakeFiles/qos_metric.dir/qos_metric.cpp.o"
  "CMakeFiles/qos_metric.dir/qos_metric.cpp.o.d"
  "qos_metric"
  "qos_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
