
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/qos_metric.cpp" "examples/CMakeFiles/qos_metric.dir/qos_metric.cpp.o" "gcc" "examples/CMakeFiles/qos_metric.dir/qos_metric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/hbh_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/mcast/CMakeFiles/hbh_mcast_hbh.dir/DependInfo.cmake"
  "/root/repo/build/src/mcast/CMakeFiles/hbh_mcast_reunite.dir/DependInfo.cmake"
  "/root/repo/build/src/mcast/CMakeFiles/hbh_mcast_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hbh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/mcast/CMakeFiles/hbh_mcast_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hbh_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/hbh_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/hbh_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hbh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
