# Empty compiler generated dependencies file for qos_metric.
# This may be replaced when dependencies are built.
