# Empty compiler generated dependencies file for group_dynamics.
# This may be replaced when dependencies are built.
