file(REMOVE_RECURSE
  "CMakeFiles/group_dynamics.dir/group_dynamics.cpp.o"
  "CMakeFiles/group_dynamics.dir/group_dynamics.cpp.o.d"
  "group_dynamics"
  "group_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
