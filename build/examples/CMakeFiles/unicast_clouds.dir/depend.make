# Empty dependencies file for unicast_clouds.
# This may be replaced when dependencies are built.
