file(REMOVE_RECURSE
  "CMakeFiles/unicast_clouds.dir/unicast_clouds.cpp.o"
  "CMakeFiles/unicast_clouds.dir/unicast_clouds.cpp.o.d"
  "unicast_clouds"
  "unicast_clouds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicast_clouds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
