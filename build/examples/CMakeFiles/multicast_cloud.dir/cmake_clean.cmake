file(REMOVE_RECURSE
  "CMakeFiles/multicast_cloud.dir/multicast_cloud.cpp.o"
  "CMakeFiles/multicast_cloud.dir/multicast_cloud.cpp.o.d"
  "multicast_cloud"
  "multicast_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
