# Empty dependencies file for multicast_cloud.
# This may be replaced when dependencies are built.
