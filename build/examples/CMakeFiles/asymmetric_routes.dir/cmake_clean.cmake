file(REMOVE_RECURSE
  "CMakeFiles/asymmetric_routes.dir/asymmetric_routes.cpp.o"
  "CMakeFiles/asymmetric_routes.dir/asymmetric_routes.cpp.o.d"
  "asymmetric_routes"
  "asymmetric_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asymmetric_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
