# Empty compiler generated dependencies file for asymmetric_routes.
# This may be replaced when dependencies are built.
