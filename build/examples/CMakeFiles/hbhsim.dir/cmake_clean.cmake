file(REMOVE_RECURSE
  "CMakeFiles/hbhsim.dir/hbhsim.cpp.o"
  "CMakeFiles/hbhsim.dir/hbhsim.cpp.o.d"
  "hbhsim"
  "hbhsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbhsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
