# Empty dependencies file for hbhsim.
# This may be replaced when dependencies are built.
