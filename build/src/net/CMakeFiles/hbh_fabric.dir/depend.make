# Empty dependencies file for hbh_fabric.
# This may be replaced when dependencies are built.
