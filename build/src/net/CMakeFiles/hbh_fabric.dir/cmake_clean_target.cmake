file(REMOVE_RECURSE
  "libhbh_fabric.a"
)
