file(REMOVE_RECURSE
  "CMakeFiles/hbh_fabric.dir/network.cpp.o"
  "CMakeFiles/hbh_fabric.dir/network.cpp.o.d"
  "libhbh_fabric.a"
  "libhbh_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
