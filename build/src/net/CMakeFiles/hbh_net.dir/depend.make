# Empty dependencies file for hbh_net.
# This may be replaced when dependencies are built.
