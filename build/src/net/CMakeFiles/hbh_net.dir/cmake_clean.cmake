file(REMOVE_RECURSE
  "CMakeFiles/hbh_net.dir/packet.cpp.o"
  "CMakeFiles/hbh_net.dir/packet.cpp.o.d"
  "CMakeFiles/hbh_net.dir/topology.cpp.o"
  "CMakeFiles/hbh_net.dir/topology.cpp.o.d"
  "CMakeFiles/hbh_net.dir/wire.cpp.o"
  "CMakeFiles/hbh_net.dir/wire.cpp.o.d"
  "libhbh_net.a"
  "libhbh_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
