file(REMOVE_RECURSE
  "libhbh_net.a"
)
