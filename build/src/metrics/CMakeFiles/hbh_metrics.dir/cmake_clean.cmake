file(REMOVE_RECURSE
  "CMakeFiles/hbh_metrics.dir/probe.cpp.o"
  "CMakeFiles/hbh_metrics.dir/probe.cpp.o.d"
  "CMakeFiles/hbh_metrics.dir/trace.cpp.o"
  "CMakeFiles/hbh_metrics.dir/trace.cpp.o.d"
  "libhbh_metrics.a"
  "libhbh_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
