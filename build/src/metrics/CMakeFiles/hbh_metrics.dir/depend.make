# Empty dependencies file for hbh_metrics.
# This may be replaced when dependencies are built.
