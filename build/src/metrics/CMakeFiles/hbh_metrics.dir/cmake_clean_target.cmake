file(REMOVE_RECURSE
  "libhbh_metrics.a"
)
