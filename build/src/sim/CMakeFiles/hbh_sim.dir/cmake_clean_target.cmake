file(REMOVE_RECURSE
  "libhbh_sim.a"
)
