file(REMOVE_RECURSE
  "CMakeFiles/hbh_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hbh_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/hbh_sim.dir/simulator.cpp.o"
  "CMakeFiles/hbh_sim.dir/simulator.cpp.o.d"
  "libhbh_sim.a"
  "libhbh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
