# Empty compiler generated dependencies file for hbh_sim.
# This may be replaced when dependencies are built.
