file(REMOVE_RECURSE
  "libhbh_util.a"
)
