# Empty dependencies file for hbh_util.
# This may be replaced when dependencies are built.
