file(REMOVE_RECURSE
  "CMakeFiles/hbh_util.dir/env.cpp.o"
  "CMakeFiles/hbh_util.dir/env.cpp.o.d"
  "CMakeFiles/hbh_util.dir/ipv4.cpp.o"
  "CMakeFiles/hbh_util.dir/ipv4.cpp.o.d"
  "CMakeFiles/hbh_util.dir/log.cpp.o"
  "CMakeFiles/hbh_util.dir/log.cpp.o.d"
  "CMakeFiles/hbh_util.dir/rng.cpp.o"
  "CMakeFiles/hbh_util.dir/rng.cpp.o.d"
  "CMakeFiles/hbh_util.dir/stats.cpp.o"
  "CMakeFiles/hbh_util.dir/stats.cpp.o.d"
  "libhbh_util.a"
  "libhbh_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
