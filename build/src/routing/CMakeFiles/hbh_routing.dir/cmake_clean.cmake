file(REMOVE_RECURSE
  "CMakeFiles/hbh_routing.dir/dijkstra.cpp.o"
  "CMakeFiles/hbh_routing.dir/dijkstra.cpp.o.d"
  "CMakeFiles/hbh_routing.dir/unicast.cpp.o"
  "CMakeFiles/hbh_routing.dir/unicast.cpp.o.d"
  "libhbh_routing.a"
  "libhbh_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
