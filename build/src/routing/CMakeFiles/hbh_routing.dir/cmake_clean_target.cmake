file(REMOVE_RECURSE
  "libhbh_routing.a"
)
