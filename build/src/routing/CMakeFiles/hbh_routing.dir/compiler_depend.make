# Empty compiler generated dependencies file for hbh_routing.
# This may be replaced when dependencies are built.
