file(REMOVE_RECURSE
  "CMakeFiles/hbh_topo.dir/builders.cpp.o"
  "CMakeFiles/hbh_topo.dir/builders.cpp.o.d"
  "CMakeFiles/hbh_topo.dir/isp.cpp.o"
  "CMakeFiles/hbh_topo.dir/isp.cpp.o.d"
  "CMakeFiles/hbh_topo.dir/random.cpp.o"
  "CMakeFiles/hbh_topo.dir/random.cpp.o.d"
  "CMakeFiles/hbh_topo.dir/scenarios.cpp.o"
  "CMakeFiles/hbh_topo.dir/scenarios.cpp.o.d"
  "libhbh_topo.a"
  "libhbh_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
