file(REMOVE_RECURSE
  "libhbh_topo.a"
)
