# Empty compiler generated dependencies file for hbh_topo.
# This may be replaced when dependencies are built.
