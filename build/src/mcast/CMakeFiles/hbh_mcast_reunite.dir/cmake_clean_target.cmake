file(REMOVE_RECURSE
  "libhbh_mcast_reunite.a"
)
