file(REMOVE_RECURSE
  "CMakeFiles/hbh_mcast_reunite.dir/reunite/router.cpp.o"
  "CMakeFiles/hbh_mcast_reunite.dir/reunite/router.cpp.o.d"
  "CMakeFiles/hbh_mcast_reunite.dir/reunite/source.cpp.o"
  "CMakeFiles/hbh_mcast_reunite.dir/reunite/source.cpp.o.d"
  "CMakeFiles/hbh_mcast_reunite.dir/reunite/tables.cpp.o"
  "CMakeFiles/hbh_mcast_reunite.dir/reunite/tables.cpp.o.d"
  "libhbh_mcast_reunite.a"
  "libhbh_mcast_reunite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_mcast_reunite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
