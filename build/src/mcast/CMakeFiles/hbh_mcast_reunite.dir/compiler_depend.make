# Empty compiler generated dependencies file for hbh_mcast_reunite.
# This may be replaced when dependencies are built.
