# Empty compiler generated dependencies file for hbh_mcast_pim.
# This may be replaced when dependencies are built.
