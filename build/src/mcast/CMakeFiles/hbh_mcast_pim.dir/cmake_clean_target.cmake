file(REMOVE_RECURSE
  "libhbh_mcast_pim.a"
)
