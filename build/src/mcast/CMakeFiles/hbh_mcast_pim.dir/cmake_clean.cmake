file(REMOVE_RECURSE
  "CMakeFiles/hbh_mcast_pim.dir/pim/router.cpp.o"
  "CMakeFiles/hbh_mcast_pim.dir/pim/router.cpp.o.d"
  "CMakeFiles/hbh_mcast_pim.dir/pim/source.cpp.o"
  "CMakeFiles/hbh_mcast_pim.dir/pim/source.cpp.o.d"
  "libhbh_mcast_pim.a"
  "libhbh_mcast_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_mcast_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
