
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcast/pim/router.cpp" "src/mcast/CMakeFiles/hbh_mcast_pim.dir/pim/router.cpp.o" "gcc" "src/mcast/CMakeFiles/hbh_mcast_pim.dir/pim/router.cpp.o.d"
  "/root/repo/src/mcast/pim/source.cpp" "src/mcast/CMakeFiles/hbh_mcast_pim.dir/pim/source.cpp.o" "gcc" "src/mcast/CMakeFiles/hbh_mcast_pim.dir/pim/source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcast/CMakeFiles/hbh_mcast_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hbh_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/hbh_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hbh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
