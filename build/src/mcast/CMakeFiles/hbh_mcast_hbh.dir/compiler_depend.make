# Empty compiler generated dependencies file for hbh_mcast_hbh.
# This may be replaced when dependencies are built.
