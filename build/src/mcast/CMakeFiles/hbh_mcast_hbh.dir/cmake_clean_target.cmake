file(REMOVE_RECURSE
  "libhbh_mcast_hbh.a"
)
