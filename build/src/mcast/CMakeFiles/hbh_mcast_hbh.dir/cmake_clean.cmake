file(REMOVE_RECURSE
  "CMakeFiles/hbh_mcast_hbh.dir/hbh/igmp_leaf.cpp.o"
  "CMakeFiles/hbh_mcast_hbh.dir/hbh/igmp_leaf.cpp.o.d"
  "CMakeFiles/hbh_mcast_hbh.dir/hbh/router.cpp.o"
  "CMakeFiles/hbh_mcast_hbh.dir/hbh/router.cpp.o.d"
  "CMakeFiles/hbh_mcast_hbh.dir/hbh/source.cpp.o"
  "CMakeFiles/hbh_mcast_hbh.dir/hbh/source.cpp.o.d"
  "CMakeFiles/hbh_mcast_hbh.dir/hbh/tables.cpp.o"
  "CMakeFiles/hbh_mcast_hbh.dir/hbh/tables.cpp.o.d"
  "libhbh_mcast_hbh.a"
  "libhbh_mcast_hbh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_mcast_hbh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
