# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hbh_mcast_hbh.
