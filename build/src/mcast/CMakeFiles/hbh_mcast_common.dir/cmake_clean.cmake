file(REMOVE_RECURSE
  "CMakeFiles/hbh_mcast_common.dir/common/membership.cpp.o"
  "CMakeFiles/hbh_mcast_common.dir/common/membership.cpp.o.d"
  "CMakeFiles/hbh_mcast_common.dir/common/soft_state.cpp.o"
  "CMakeFiles/hbh_mcast_common.dir/common/soft_state.cpp.o.d"
  "libhbh_mcast_common.a"
  "libhbh_mcast_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_mcast_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
