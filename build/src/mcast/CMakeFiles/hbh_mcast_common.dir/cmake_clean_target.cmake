file(REMOVE_RECURSE
  "libhbh_mcast_common.a"
)
