# Empty compiler generated dependencies file for hbh_mcast_common.
# This may be replaced when dependencies are built.
