file(REMOVE_RECURSE
  "CMakeFiles/hbh_harness.dir/experiment.cpp.o"
  "CMakeFiles/hbh_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/hbh_harness.dir/session.cpp.o"
  "CMakeFiles/hbh_harness.dir/session.cpp.o.d"
  "libhbh_harness.a"
  "libhbh_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbh_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
