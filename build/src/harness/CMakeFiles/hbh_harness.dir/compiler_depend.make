# Empty compiler generated dependencies file for hbh_harness.
# This may be replaced when dependencies are built.
