file(REMOVE_RECURSE
  "libhbh_harness.a"
)
