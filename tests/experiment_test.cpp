// Tests for the experiment harness: trial pairing, sweep aggregation,
// table/CSV formatting, and the session plumbing they rely on.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "topo/isp.hpp"

namespace hbh::harness {
namespace {

ExperimentSpec tiny_spec() {
  ExperimentSpec spec;
  spec.topology = TopoKind::kIsp;
  spec.group_sizes = {3};
  spec.trials = 3;
  return spec;
}

TEST(ExperimentTest, ProtocolNames) {
  EXPECT_EQ(to_string(Protocol::kHbh), "HBH");
  EXPECT_EQ(to_string(Protocol::kReunite), "REUNITE");
  EXPECT_EQ(to_string(Protocol::kPimSm), "PIM-SM");
  EXPECT_EQ(to_string(Protocol::kPimSs), "PIM-SS");
  EXPECT_EQ(all_protocols().size(), 4u);
}

TEST(ExperimentTest, GroupSizeAxesMatchFigures) {
  EXPECT_EQ(isp_group_sizes().front(), 2u);
  EXPECT_EQ(isp_group_sizes().back(), 16u);
  EXPECT_EQ(random50_group_sizes().front(), 5u);
  EXPECT_EQ(random50_group_sizes().back(), 45u);
}

TEST(ExperimentTest, TrialIsSeedDeterministic) {
  const ExperimentSpec spec = tiny_spec();
  const TrialResult a = run_trial(spec, Protocol::kHbh, 3, 0);
  const TrialResult b = run_trial(spec, Protocol::kHbh, 3, 0);
  EXPECT_DOUBLE_EQ(a.tree_cost, b.tree_cost);
  EXPECT_DOUBLE_EQ(a.mean_delay, b.mean_delay);
}

TEST(ExperimentTest, DifferentTrialsDiffer) {
  const ExperimentSpec spec = tiny_spec();
  const TrialResult a = run_trial(spec, Protocol::kHbh, 3, 0);
  const TrialResult b = run_trial(spec, Protocol::kHbh, 3, 1);
  // Different cost draws and receiver sets: at least one metric differs
  // (they could coincide by chance; both matching exactly is unlikely).
  EXPECT_TRUE(a.tree_cost != b.tree_cost || a.mean_delay != b.mean_delay);
}

TEST(ExperimentTest, HbhDeliversInAllTinyTrials) {
  const ExperimentSpec spec = tiny_spec();
  for (std::size_t t = 0; t < spec.trials; ++t) {
    const TrialResult r = run_trial(spec, Protocol::kHbh, 3, t);
    EXPECT_TRUE(r.delivered) << "trial " << t;
    EXPECT_GT(r.tree_cost, 0);
    EXPECT_GT(r.mean_delay, 0);
  }
}

TEST(ExperimentTest, SweepAggregatesTrials) {
  const ExperimentSpec spec = tiny_spec();
  const SweepResult sweep = run_sweep(spec, Protocol::kPimSs);
  ASSERT_EQ(sweep.cells.size(), 1u);
  EXPECT_EQ(sweep.cells[0].group_size, 3u);
  EXPECT_EQ(sweep.cells[0].tree_cost.count(), 3u);
  EXPECT_EQ(sweep.cells[0].mean_delay.count(), 3u);
  EXPECT_EQ(sweep.cells[0].delivery_failures, 0u);
}

TEST(ExperimentTest, ParallelRunAllIsBitIdenticalToSerial) {
  // The determinism-under-parallelism contract (docs/PERFORMANCE.md):
  // results land in pre-sized grid slots and aggregate in grid order, so
  // every rendered artifact is byte-identical for any job count.
  ExperimentSpec spec = tiny_spec();
  spec.group_sizes = {2, 4};
  const auto serial = run_all(spec, /*jobs=*/1);
  const auto parallel = run_all(spec, /*jobs=*/4);
  EXPECT_EQ(format_table(serial, "cost", /*with_ci=*/true),
            format_table(parallel, "cost", /*with_ci=*/true));
  EXPECT_EQ(format_table(serial, "delay", /*with_ci=*/true),
            format_table(parallel, "delay", /*with_ci=*/true));
  EXPECT_EQ(format_csv(serial), format_csv(parallel));
}

TEST(ExperimentTest, ParallelSweepMatchesSerialSweep) {
  const ExperimentSpec spec = tiny_spec();
  const SweepResult serial = run_sweep(spec, Protocol::kHbh, /*jobs=*/1);
  const SweepResult parallel = run_sweep(spec, Protocol::kHbh, /*jobs=*/3);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    EXPECT_EQ(serial.cells[c].tree_cost.mean(),
              parallel.cells[c].tree_cost.mean());
    EXPECT_EQ(serial.cells[c].mean_delay.mean(),
              parallel.cells[c].mean_delay.mean());
    EXPECT_EQ(serial.cells[c].delivery_failures,
              parallel.cells[c].delivery_failures);
  }
}

TEST(ExperimentTest, TableFormatContainsAllProtocolsAndSizes) {
  ExperimentSpec spec = tiny_spec();
  spec.trials = 1;
  const auto results = run_all(spec);
  const std::string table = format_table(results, "cost");
  EXPECT_NE(table.find("HBH"), std::string::npos);
  EXPECT_NE(table.find("REUNITE"), std::string::npos);
  EXPECT_NE(table.find("PIM-SM"), std::string::npos);
  EXPECT_NE(table.find("PIM-SS"), std::string::npos);
  EXPECT_NE(table.find("receivers"), std::string::npos);
  EXPECT_NE(table.find('3'), std::string::npos);
}

TEST(ExperimentTest, CsvFormatIsParseable) {
  ExperimentSpec spec = tiny_spec();
  spec.trials = 1;
  const auto results = run_all(spec);
  const std::string csv = format_csv(results);
  EXPECT_NE(csv.find("group_size,protocol,metric,mean,ci95,trials"),
            std::string::npos);
  // 4 protocols x 1 size x 2 metrics = 8 data lines + header.
  std::size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 9u);
}

TEST(ExperimentTest, SymmetricAblationChangesCosts) {
  // With symmetrized costs the asymmetric pathologies vanish; HBH and
  // PIM-SS tree costs coincide trial by trial.
  ExperimentSpec spec = tiny_spec();
  spec.symmetric_costs = true;
  for (std::size_t t = 0; t < 3; ++t) {
    const TrialResult hbh = run_trial(spec, Protocol::kHbh, 3, t);
    const TrialResult ss = run_trial(spec, Protocol::kPimSs, 3, t);
    ASSERT_TRUE(hbh.delivered);
    ASSERT_TRUE(ss.delivered);
    EXPECT_DOUBLE_EQ(hbh.tree_cost, ss.tree_cost) << "trial " << t;
    EXPECT_DOUBLE_EQ(hbh.mean_delay, ss.mean_delay) << "trial " << t;
  }
}

TEST(SessionTest, MembersTracksSubscriptions) {
  auto scenario = topo::make_isp();
  Session session{scenario, Protocol::kHbh};
  EXPECT_TRUE(session.members().empty());
  session.subscribe(scenario.hosts[3]);
  session.subscribe(scenario.hosts[5]);
  session.run_for(1);
  EXPECT_EQ(session.members().size(), 2u);
  session.unsubscribe(scenario.hosts[3]);
  session.run_for(1);
  EXPECT_EQ(session.members().size(), 1u);
}

TEST(SessionTest, DelayedSubscribeTakesEffectLater) {
  auto scenario = topo::make_isp();
  Session session{scenario, Protocol::kHbh};
  session.subscribe(scenario.hosts[3], 50);
  session.run_for(10);
  EXPECT_TRUE(session.members().empty());
  session.run_for(50);
  EXPECT_EQ(session.members().size(), 1u);
}

TEST(SessionTest, RpOnlySetForPimSm) {
  auto scenario = topo::make_isp();
  Session sm{scenario, Protocol::kPimSm};
  Session ss{scenario, Protocol::kPimSs};
  Session hbh{scenario, Protocol::kHbh};
  EXPECT_TRUE(sm.rp().valid());
  EXPECT_FALSE(ss.rp().valid());
  EXPECT_FALSE(hbh.rp().valid());
}

TEST(SessionTest, ChannelUsesSourceAddressAndSsmGroup) {
  auto scenario = topo::make_isp();
  Session session{scenario, Protocol::kHbh};
  EXPECT_EQ(session.channel().source,
            session.network().address_of(scenario.source_host));
  EXPECT_TRUE(session.channel().group.addr().is_ssm());
}

TEST(SessionTest, RunToQuiescenceConvergesAndDelivers) {
  auto scenario = topo::make_isp();
  Rng rng{31337};
  topo::randomize_costs(scenario.topo, rng);
  const auto receivers = rng.sample(scenario.candidate_receivers(), 6);
  Session session{std::move(scenario), Protocol::kHbh};
  Time delay = 0.1;
  for (const NodeId r : receivers) {
    session.subscribe(r, delay);
    delay += 1.0;
  }
  const Time convergence = run_to_quiescence(session);
  EXPECT_LT(convergence, 3000.0);  // settled before the horizon
  EXPECT_TRUE(session.measure().delivered_exactly_once());
}

TEST(SessionTest, PimExplicitPruneLeavesFast) {
  auto scenario = topo::make_isp();
  Session session{scenario, Protocol::kPimSs};
  session.subscribe(scenario.hosts[4]);
  session.subscribe(scenario.hosts[9]);
  session.run_for(60);
  ASSERT_TRUE(session.measure().delivered_exactly_once());
  session.unsubscribe(scenario.hosts[4]);
  session.run_for(30);  // far below t2=70: the prune did the teardown
  const Measurement m = session.measure();
  EXPECT_TRUE(m.delivered_exactly_once());  // only hosts[9] is a member
  EXPECT_EQ(session.members().size(), 1u);
}

TEST(SessionTest, MeasureOnEmptyGroupIsClean) {
  auto scenario = topo::make_isp();
  Session session{scenario, Protocol::kPimSm};
  session.run_for(20);
  const Measurement m = session.measure(50);
  EXPECT_TRUE(m.missing.empty());
  EXPECT_TRUE(m.duplicated.empty());
  EXPECT_DOUBLE_EQ(m.mean_delay, 0.0);
}

}  // namespace
}  // namespace hbh::harness
