// Tests for the receiver-host membership agent: join emission cadence,
// first-join flagging, leave semantics, and delivery recording.
#include <gtest/gtest.h>

#include <memory>

#include "mcast/common/membership.hpp"
#include "net/network.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"

namespace hbh::mcast {
namespace {

/// Records every packet crossing the fabric.
struct JoinSpy : net::PacketTap {
  std::vector<net::Packet> joins;
  std::vector<net::Packet> pim_joins;
  void on_transmit(const net::Topology::Edge& e, const net::Packet& p,
                   Time) override {
    // Count each join once: on its first hop (from the host).
    if (e.from.index() != 2) return;  // host node is index 2 (see fixture)
    if (p.type == net::PacketType::kJoin) joins.push_back(p);
    if (p.type == net::PacketType::kPimJoin) pim_joins.push_back(p);
  }
};

struct Fixture {
  // 0 (source-ish) - 1 - host 2. Receiver host is node 2.
  net::Topology topo = topo::make_line(2);
  NodeId host;
  sim::Simulator sim;
  std::unique_ptr<routing::UnicastRouting> routes;
  std::unique_ptr<net::Network> net;
  ReceiverHost* receiver = nullptr;
  JoinSpy spy;
  net::Channel channel;

  explicit Fixture(JoinStyle style = JoinStyle::kSourceJoin) {
    host = topo.add_node(net::NodeKind::kHost);
    topo.add_duplex(NodeId{1}, host, net::LinkAttrs{1, 1});
    routes = std::make_unique<routing::UnicastRouting>(topo);
    net = std::make_unique<net::Network>(sim, topo, *routes);
    receiver = static_cast<ReceiverHost*>(&net->attach(
        host, std::make_unique<ReceiverHost>(style, McastConfig{})));
    net->set_tap(&spy);
    channel = net::Channel{net->address_of(NodeId{0}), GroupAddr::ssm(7)};
    net->start();
  }
};

TEST(ReceiverHostTest, FirstJoinIsImmediateAndFlagged) {
  Fixture f;
  f.receiver->subscribe(f.channel);
  f.sim.run_for(1);
  ASSERT_EQ(f.spy.joins.size(), 1u);
  EXPECT_TRUE(f.spy.joins[0].join().first);
  EXPECT_EQ(f.spy.joins[0].join().receiver, f.net->address_of(f.host));
  EXPECT_EQ(f.spy.joins[0].dst, f.channel.source);
}

TEST(ReceiverHostTest, RefreshesEveryPeriodUnflagged) {
  Fixture f;
  f.receiver->subscribe(f.channel);
  f.sim.run_for(35);  // t=0 first join, refreshes at 10, 20, 30
  ASSERT_EQ(f.spy.joins.size(), 4u);
  for (std::size_t i = 1; i < f.spy.joins.size(); ++i) {
    EXPECT_FALSE(f.spy.joins[i].join().first);
  }
}

TEST(ReceiverHostTest, UnsubscribeStopsRefreshes) {
  Fixture f;
  f.receiver->subscribe(f.channel);
  f.sim.run_for(15);
  const std::size_t sent = f.spy.joins.size();
  f.receiver->unsubscribe(f.channel);
  f.sim.run_for(100);
  EXPECT_EQ(f.spy.joins.size(), sent);
  EXPECT_FALSE(f.receiver->subscribed(f.channel));
}

TEST(ReceiverHostTest, DoubleSubscribeIsIdempotent) {
  Fixture f;
  f.receiver->subscribe(f.channel);
  f.receiver->subscribe(f.channel);
  f.sim.run_for(1);
  EXPECT_EQ(f.spy.joins.size(), 1u);
}

TEST(ReceiverHostTest, PimStyleSendsPimJoinTowardRoot) {
  Fixture f{JoinStyle::kPimJoin};
  const Ipv4Addr rp = f.net->address_of(NodeId{1});
  f.receiver->subscribe(f.channel, rp);
  f.sim.run_for(1);
  ASSERT_EQ(f.spy.pim_joins.size(), 1u);
  EXPECT_EQ(f.spy.pim_joins[0].dst, rp);
  EXPECT_EQ(f.spy.pim_joins[0].pim_join().root, rp);
}

TEST(ReceiverHostTest, PimStyleDefaultsRootToSource) {
  Fixture f{JoinStyle::kPimJoin};
  f.receiver->subscribe(f.channel);  // no explicit root
  f.sim.run_for(1);
  ASSERT_EQ(f.spy.pim_joins.size(), 1u);
  EXPECT_EQ(f.spy.pim_joins[0].dst, f.channel.source);
}

TEST(ReceiverHostTest, RecordsSubscribedDataDeliveries) {
  Fixture f;
  f.receiver->subscribe(f.channel);
  net::Packet data;
  data.src = f.channel.source;
  data.dst = f.net->address_of(f.host);
  data.channel = f.channel;
  data.type = net::PacketType::kData;
  data.payload = net::DataPayload{42, 7, 0.0, false};
  f.net->send(NodeId{0}, std::move(data));
  f.sim.run_for(10);
  ASSERT_EQ(f.receiver->deliveries().size(), 1u);
  EXPECT_EQ(f.receiver->deliveries()[0].probe, 42u);
  EXPECT_EQ(f.receiver->deliveries()[0].seq, 7u);
  // Two hops from node 0: router link (delay 1) + access link (delay 1).
  EXPECT_DOUBLE_EQ(f.receiver->deliveries()[0].received_at, 2.0);
}

TEST(ReceiverHostTest, IgnoresDataWhenNotSubscribed) {
  Fixture f;
  net::Packet data;
  data.src = f.channel.source;
  data.dst = f.net->address_of(f.host);
  data.channel = f.channel;
  data.type = net::PacketType::kData;
  data.payload = net::DataPayload{};
  f.net->send(NodeId{0}, std::move(data));
  f.sim.run_for(10);
  EXPECT_TRUE(f.receiver->deliveries().empty());
}

TEST(ReceiverHostTest, SinkObserverIsNotified) {
  struct CountingSink : DeliverySink {
    int count = 0;
    void on_data(NodeId, const net::Packet&, Time) override { ++count; }
  };
  Fixture f;
  CountingSink sink;
  f.receiver->subscribe(f.channel);
  f.receiver->set_sink(&sink);
  net::Packet data;
  data.src = f.channel.source;
  data.dst = f.net->address_of(f.host);
  data.channel = f.channel;
  data.type = net::PacketType::kData;
  data.payload = net::DataPayload{};
  f.net->send(NodeId{0}, std::move(data));
  f.sim.run_for(10);
  EXPECT_EQ(sink.count, 1);
}

TEST(ReceiverHostTest, ControlPacketsAddressedToHostAreConsumed) {
  Fixture f;
  net::Packet tree;
  tree.src = f.channel.source;
  tree.dst = f.net->address_of(f.host);
  tree.channel = f.channel;
  tree.type = net::PacketType::kTree;
  tree.payload = net::TreePayload{f.net->address_of(f.host), false, {}};
  f.net->send(NodeId{0}, std::move(tree));
  f.sim.run_for(10);
  // Nothing recorded, nothing forwarded back out (no bounce).
  EXPECT_TRUE(f.receiver->deliveries().empty());
  EXPECT_EQ(f.net->counters().drops_no_route, 0u);
}

TEST(ReceiverHostTest, FreshBitTracksTreeConnectivity) {
  Fixture f;
  f.receiver->subscribe(f.channel);
  f.sim.run_for(1);
  // No tree(S, r) seen yet: the receiver is disconnected -> joins fresh.
  ASSERT_FALSE(f.spy.joins.empty());
  EXPECT_TRUE(f.spy.joins.back().join().fresh);
  EXPECT_FALSE(f.receiver->connected(f.channel));

  // A tree message addressed to the receiver marks it connected.
  net::Packet tree;
  tree.src = f.channel.source;
  tree.dst = f.net->address_of(f.host);
  tree.channel = f.channel;
  tree.type = net::PacketType::kTree;
  tree.payload = net::TreePayload{f.net->address_of(f.host), false, {}, 1};
  f.net->send(NodeId{0}, std::move(tree));
  f.sim.run_for(10);
  EXPECT_TRUE(f.receiver->connected(f.channel));
  EXPECT_FALSE(f.spy.joins.back().join().fresh);

  // Connectivity decays if tree messages stop (~2.5 periods).
  f.sim.run_for(40);
  EXPECT_FALSE(f.receiver->connected(f.channel));
  EXPECT_TRUE(f.spy.joins.back().join().fresh);
}

TEST(ReceiverHostTest, ForeignChannelTreeDoesNotConnect) {
  Fixture f;
  f.receiver->subscribe(f.channel);
  net::Packet tree;
  tree.src = f.channel.source;
  tree.dst = f.net->address_of(f.host);
  tree.channel = net::Channel{f.channel.source, GroupAddr::ssm(99)};
  tree.type = net::PacketType::kTree;
  tree.payload = net::TreePayload{f.net->address_of(f.host), false, {}, 1};
  f.net->send(NodeId{0}, std::move(tree));
  f.sim.run_for(10);
  EXPECT_FALSE(f.receiver->connected(f.channel));
}

TEST(ReceiverHostTest, ClearDeliveriesResetsLog) {
  Fixture f;
  f.receiver->subscribe(f.channel);
  net::Packet data;
  data.src = f.channel.source;
  data.dst = f.net->address_of(f.host);
  data.channel = f.channel;
  data.type = net::PacketType::kData;
  data.payload = net::DataPayload{};
  f.net->send(NodeId{0}, std::move(data));
  f.sim.run_for(10);
  ASSERT_FALSE(f.receiver->deliveries().empty());
  f.receiver->clear_deliveries();
  EXPECT_TRUE(f.receiver->deliveries().empty());
}

}  // namespace
}  // namespace hbh::mcast
