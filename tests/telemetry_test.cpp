// Tests for the telemetry subsystem: registry semantics, the JSON writer,
// the state sampler, the fabric stats tap, and the end-to-end run report
// (validated against a strict JSON grammar).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "harness/experiment.hpp"
#include "harness/session.hpp"
#include "metrics/json.hpp"
#include "metrics/net_stats.hpp"
#include "metrics/registry.hpp"
#include "metrics/report.hpp"
#include "metrics/sampler.hpp"
#include "net/network.hpp"
#include "net/wire.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"

namespace hbh {
namespace {

using metrics::JsonWriter;
using metrics::Registry;
using metrics::Series;
using metrics::StateSampler;

// Minimal recursive-descent JSON syntax checker — no semantics, just enough
// grammar to prove every report we emit parses under a strict reader.
struct JsonChecker {
  std::string_view s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool eat(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (s.substr(i, lit.size()) != lit) return false;
    i += lit.size();
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
      }
      ++i;
    }
    return eat('"');
  }
  bool number() {
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) != 0 ||
            s[i] == '.' || s[i] == 'e' || s[i] == 'E' || s[i] == '+' ||
            s[i] == '-')) {
      ++i;
    }
    return i > start;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    while (true) {
      if (!value()) return false;
      ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }
};

bool json_valid(std::string_view text) {
  JsonChecker p{text};
  if (!p.value()) return false;
  p.ws();
  return p.i == p.s.size();
}

net::Topology::Edge edge(std::uint32_t a, std::uint32_t b) {
  return net::Topology::Edge{NodeId{a}, NodeId{b}, net::LinkAttrs{1, 1}};
}

net::Packet packet_of(net::PacketType type) {
  net::Packet p;
  p.type = type;
  p.src = Ipv4Addr{10, 0, 0, 1};
  p.dst = Ipv4Addr{10, 0, 1, 1};
  p.channel = net::Channel{Ipv4Addr{10, 0, 0, 1}, GroupAddr::ssm(1)};
  switch (type) {
    case net::PacketType::kJoin:
      p.payload = net::JoinPayload{Ipv4Addr{10, 0, 2, 1}, true, false};
      break;
    case net::PacketType::kData:
      p.payload = net::DataPayload{1, 9, 0, false};
      break;
    default:
      p.payload = net::JoinPayload{Ipv4Addr{10, 0, 2, 1}, true, false};
      break;
  }
  return p;
}

TEST(RegistryTest, CounterAccumulates) {
  Registry reg;
  metrics::Counter& c = reg.counter("x");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
}

TEST(RegistryTest, SameNameReturnsSameMetric) {
  Registry reg;
  EXPECT_EQ(&reg.counter("x"), &reg.counter("x"));
  EXPECT_EQ(&reg.gauge("g"), &reg.gauge("g"));
  metrics::Histogram& first = reg.histogram("h", {1, 2});
  EXPECT_EQ(&first, &reg.histogram("h", {9}));
  EXPECT_EQ(first.bounds().size(), 2u);  // registration bounds win
  EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(RegistryTest, DisabledRegistryIgnoresUpdates) {
  Registry reg;
  metrics::Counter& c = reg.counter("x");
  metrics::Gauge& g = reg.gauge("g");
  metrics::Histogram& h = reg.histogram("h", {10});
  reg.set_enabled(false);
  c.inc();
  g.set(7);
  g.add(1);
  h.observe(3);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  reg.set_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(RegistryTest, GaugeSetAddAndBind) {
  Registry reg;
  metrics::Gauge& g = reg.gauge("g");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  double source = 10;
  reg.bind_gauge("bound", [&source] { return source; });
  EXPECT_DOUBLE_EQ(reg.gauge("bound").value(), 10.0);
  source = 11;
  EXPECT_DOUBLE_EQ(reg.gauge("bound").value(), 11.0);
}

TEST(RegistryTest, HistogramBucketsSumAndOverflow) {
  Registry reg;
  metrics::Histogram& h = reg.histogram("h", {1, 2, 4});
  h.observe(0.5);  // bucket 0 (<= 1)
  h.observe(2);    // bucket 1 (<= 2)
  h.observe(100);  // overflow bucket
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 102.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 102.5 / 3);
}

TEST(RegistryTest, HistogramQuantilesInterpolateWithinBuckets) {
  Registry reg;
  metrics::Histogram& h = reg.histogram("h", {10, 20, 40});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  for (int i = 0; i < 8; ++i) h.observe(5);    // bucket [0, 10]
  for (int i = 0; i < 2; ++i) h.observe(15);   // bucket (10, 20]
  // p50: rank 5 of 10 lands 5/8 into the first bucket -> 10 * 5/8.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 6.25);
  // p90: rank 9 is the first observation past the 8 in bucket 0, half-way
  // through bucket 1's two observations -> 10 + 10 * 1/2.
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);  // all mass is <= 20
}

TEST(RegistryTest, HistogramQuantileOverflowClampsToLastBound) {
  Registry reg;
  metrics::Histogram& h = reg.histogram("h", {1, 2});
  h.observe(1000);  // overflow bucket: upper edge unknown
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(JsonWriterTest, CompactNestedDocument) {
  std::ostringstream out;
  JsonWriter w{out, 0};
  w.begin_object();
  w.member("a", 1);
  w.key("b");
  w.begin_array();
  w.value(1.5);
  w.value(true);
  w.null();
  w.end_array();
  w.member("s", "he\"llo\n");
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(out.str(), R"({"a":1,"b":[1.5,true,null],"s":"he\"llo\n"})");
  EXPECT_TRUE(json_valid(out.str()));
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter w{out, 0};
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

TEST(JsonWriterTest, IndentedOutputStaysValid) {
  std::ostringstream out;
  JsonWriter w{out};
  w.begin_object();
  w.key("nested");
  w.begin_object();
  w.member("k", "v");
  w.end_object();
  w.key("empty");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_TRUE(json_valid(out.str()));
}

TEST(StateSamplerTest, SamplesBoundGaugesOverVirtualTime) {
  sim::Simulator sim;
  Registry reg;
  double x = 1.0;
  reg.bind_gauge("x", [&x] { return x; });
  StateSampler sampler{sim, reg, 5.0};
  sampler.start();  // immediate t=0 sample, then every 5 time units
  sim.schedule(7.0, [&x] { x = 3.0; });
  sim.run(21.0);
  const Series& s = sampler.series().at("x");
  ASSERT_EQ(s.t.size(), 5u);  // t = 0, 5, 10, 15, 20
  EXPECT_DOUBLE_EQ(s.t[1], 5.0);
  EXPECT_DOUBLE_EQ(s.v[1], 1.0);
  EXPECT_DOUBLE_EQ(s.v[2], 3.0);  // change at t=7 visible from t=10 on
  EXPECT_FALSE(sampler.truncated());
}

TEST(StateSamplerTest, MaxSamplesBoundsMemory) {
  sim::Simulator sim;
  Registry reg;
  reg.bind_gauge("x", [] { return 0.0; });
  StateSampler sampler{sim, reg, 1.0, /*max_samples=*/3};
  sampler.start();
  sim.run(10.5);
  EXPECT_EQ(sampler.sample_count(), 3u);
  EXPECT_TRUE(sampler.truncated());
  EXPECT_EQ(sampler.series().at("x").t.size(), 3u);
}

TEST(NetworkStatsTapTest, CountsPerTypeBytesAndDrops) {
  Registry reg;
  metrics::NetworkStatsTap tap{reg};
  const auto e = edge(0, 1);
  const auto join = packet_of(net::PacketType::kJoin);
  tap.on_transmit(e, join, 1.0);
  tap.on_transmit(e, join, 2.0);
  tap.on_transmit(e, packet_of(net::PacketType::kData), 3.0);
  tap.on_drop(NodeId{1}, join, "no-route", 4.0);
  EXPECT_EQ(reg.counter("net.tx.join").value(), 2u);
  EXPECT_EQ(reg.counter("net.tx_bytes.join").value(),
            2 * net::encoded_size(join));
  EXPECT_EQ(reg.counter("net.tx.data").value(), 1u);
  EXPECT_EQ(reg.counter("net.tx.tree").value(), 0u);
  EXPECT_EQ(reg.counter("net.drops").value(), 1u);
  EXPECT_EQ(reg.counter("net.drops.no-route").value(), 1u);
  EXPECT_EQ(reg.histogram("net.packet_bytes", {}).count(), 3u);
}

/// Raw fabric on a 4-node line with the stats tap attached: every drop the
/// Network makes lands in a per-reason counter with an exactly predictable
/// count (no protocol traffic, no randomness in what is sent).
class DropCounterTest : public ::testing::Test {
 protected:
  DropCounterTest() {
    for (int i = 0; i < 4; ++i) topo_.add_node();
    for (std::uint32_t i = 0; i + 1 < 4; ++i) {
      topo_.add_duplex(NodeId{i}, NodeId{i + 1}, net::LinkAttrs{1, 2});
    }
    routes_ = std::make_unique<routing::UnicastRouting>(topo_);
    net_ = std::make_unique<net::Network>(sim_, topo_, *routes_);
    tap_ = std::make_unique<metrics::NetworkStatsTap>(reg_);
    net_->add_tap(tap_.get());
  }

  net::Packet data_to(NodeId to) {
    net::Packet p;
    p.src = net_->address_of(NodeId{0});
    p.dst = net_->address_of(to);
    p.type = net::PacketType::kData;
    p.payload = net::DataPayload{};
    return p;
  }

  std::uint64_t drops(const std::string& reason) {
    return reg_.counter("net.drops." + reason).value();
  }

  net::Topology topo_;
  sim::Simulator sim_;
  std::unique_ptr<routing::UnicastRouting> routes_;
  std::unique_ptr<net::Network> net_;
  Registry reg_;
  std::unique_ptr<metrics::NetworkStatsTap> tap_;
};

TEST_F(DropCounterTest, TtlExpiredCountsExactly) {
  // ttl=1 buys exactly one hop: node 1's forward finds ttl 0 and drops.
  net::Packet p = data_to(NodeId{3});
  p.ttl = 1;
  net_->send(NodeId{0}, std::move(p));
  sim_.run();
  EXPECT_EQ(drops("ttl-expired"), 1u);
  EXPECT_EQ(reg_.counter("net.drops").value(), 1u);
  EXPECT_EQ(reg_.counter("net.tx.data").value(), 1u);  // the one hop it got
}

TEST_F(DropCounterTest, SeededLossDropsEveryCopyOnTheImpairedLink) {
  // loss=1.0 makes the seeded plan deterministic outright: every copy
  // entering link 1->2 is dropped as "loss" at node 1, after crossing
  // 0->1 intact.
  net_->impairments().reseed(7);
  net::Impairment lossy;
  lossy.loss = 1.0;
  net_->set_impairment(NodeId{1}, NodeId{2}, lossy);
  for (int i = 0; i < 3; ++i) {
    net_->send(NodeId{0}, data_to(NodeId{3}));
    sim_.run();
  }
  EXPECT_EQ(drops("loss"), 3u);
  EXPECT_EQ(drops("ttl-expired"), 0u);
  EXPECT_EQ(reg_.counter("net.drops").value(), 3u);
  EXPECT_EQ(reg_.counter("net.tx.data").value(), 3u);  // three 0->1 hops
}

TEST_F(DropCounterTest, BlackholeWindowDropsAsLinkDown) {
  // A blackhole window is an impairment the IGP never sees: routing still
  // points through 0->1, so both sends die there as "link-down".
  net::Impairment blackhole;
  blackhole.down_windows = {{0.0, 1000.0}};
  net_->set_impairment(NodeId{0}, NodeId{1}, blackhole);
  net_->send(NodeId{0}, data_to(NodeId{3}));
  net_->send(NodeId{0}, data_to(NodeId{3}));
  sim_.run();
  EXPECT_EQ(drops("link-down"), 2u);
  EXPECT_EQ(reg_.counter("net.drops").value(), 2u);
  EXPECT_EQ(reg_.counter("net.tx.data").value(), 0u);  // nothing got out
}

TEST(NetworkStatsTapTest, QueueAndRedDropsLandInDistinctCounters) {
  // A capacitated link: a 5-burst into a limit-4 queue yields exactly one
  // "queue-full"; a RED link under sustained 2x overload yields "red-early"
  // drops. The two reasons must never share a counter.
  sim::Simulator sim;
  net::Topology topo;
  topo.add_node();
  topo.add_node();
  topo.add_node();
  topo.add_duplex(NodeId{0}, NodeId{1},
                  net::LinkSpec{.cost = 1, .delay = 2, .capacity = 10,
                                .queue_limit = 4});
  topo.add_duplex(NodeId{1}, NodeId{2},
                  net::LinkSpec{.cost = 1, .delay = 1, .capacity = 40,
                                .queue_limit = 32,
                                .aqm = net::AqmPolicy::kRed});
  routing::UnicastRouting routes{topo};
  net::Network net{sim, topo, routes};
  net.seed_aqm(42);
  Registry reg;
  metrics::NetworkStatsTap tap{reg};
  net.add_tap(&tap);

  auto data = [&](NodeId from, NodeId to) {
    net::Packet p;
    p.src = net.address_of(from);
    p.dst = net.address_of(to);
    p.type = net::PacketType::kData;
    p.payload = net::DataPayload{};
    return p;
  };
  for (int i = 0; i < 5; ++i) {
    net.send_direct(NodeId{0}, NodeId{1}, data(NodeId{0}, NodeId{1}));
  }
  for (int i = 0; i < 200; ++i) {
    sim.schedule(0.5 * i, [&] {
      net.send_direct(NodeId{1}, NodeId{2}, data(NodeId{1}, NodeId{2}));
    });
  }
  sim.run();

  EXPECT_EQ(reg.counter("net.drops.queue-full").value(), 1u);
  EXPECT_GT(reg.counter("net.drops.red-early").value(), 0u);
  EXPECT_EQ(reg.counter("net.drops").value(),
            reg.counter("net.drops.queue-full").value() +
                reg.counter("net.drops.red-early").value());

  // Per-link occupancy instruments: high-water gauge reads the peak the
  // Network tracked; the admission counter matches its tally.
  const LinkId ab = *topo.find_link(NodeId{0}, NodeId{1});
  EXPECT_DOUBLE_EQ(reg.gauge("net.queue.hwm.n0-n1").value(),
                   static_cast<double>(net.queue_high_water(ab)));
  EXPECT_EQ(reg.counter("net.queue.admitted.n0-n1").value(),
            net.queue_admitted(ab));
  EXPECT_DOUBLE_EQ(reg.gauge("net.queue.hwm.n0-n1").value(), 4.0);
  EXPECT_GT(reg.gauge("net.queue.hwm.n1-n2").value(), 0.0);
  // Uncongested reverse directions registered nothing (report stays lean).
  EXPECT_TRUE(reg.gauges().find("net.queue.hwm.n1-n0") ==
              reg.gauges().end());
}

/// One small converged ISP run with telemetry on (4 receivers, HBH).
class SessionTelemetryTest : public ::testing::Test {
 protected:
  SessionTelemetryTest() {
    Rng rng{42};
    auto scenario = topo::make_isp();
    topo::randomize_costs(scenario.topo, rng);
    receivers_ = rng.sample(scenario.candidate_receivers(), 4);
    session_ = std::make_unique<harness::Session>(std::move(scenario),
                                                  harness::Protocol::kHbh);
    registry_ = &session_->enable_telemetry(/*sample_period=*/10.0);
    Time delay = 0.1;
    for (const NodeId r : receivers_) {
      session_->subscribe(r, delay);
      delay += 1.0;
    }
    session_->run_for(300);
  }

  std::vector<NodeId> receivers_;
  std::unique_ptr<harness::Session> session_;
  Registry* registry_ = nullptr;
};

TEST_F(SessionTelemetryTest, GaugesAndTapsTrackTheRun) {
  const harness::Measurement m = session_->measure();
  EXPECT_TRUE(m.delivered_exactly_once());

  Registry& reg = *registry_;
  EXPECT_GT(reg.counter("net.tx.join").value(), 0u);
  EXPECT_GT(reg.counter("net.tx.tree").value(), 0u);
  EXPECT_GT(reg.counter("net.tx.data").value(), 0u);
  EXPECT_GT(reg.counter("net.tx_bytes.tree").value(),
            reg.counter("net.tx.tree").value());  // >1 byte per message

  EXPECT_DOUBLE_EQ(reg.gauge("session.members").value(), 4.0);
  EXPECT_GT(reg.gauge("state.forwarding_entries").value(), 0.0);
  EXPECT_GT(reg.gauge("state.stateful_routers").value(), 0.0);
  EXPECT_GT(reg.gauge("agents.rx.join").value(), 0.0);
  EXPECT_GT(reg.gauge("agents.rx.data").value(), 0.0);
  EXPECT_GT(reg.gauge("agents.timer_fires").value(), 0.0);
  EXPECT_GT(reg.gauge("sim.executed_events").value(), 0.0);

  ASSERT_NE(session_->trace(), nullptr);
  EXPECT_GT(session_->trace()->histogram().at(net::PacketType::kJoin), 0u);
}

TEST_F(SessionTelemetryTest, SamplerRecordsStateSeries) {
  const metrics::StateSampler* sampler = session_->sampler();
  ASSERT_NE(sampler, nullptr);
  EXPECT_GE(sampler->sample_count(), 30u);  // 300 tu at period 10
  const Series& s = sampler->series().at("state.forwarding_entries");
  ASSERT_EQ(s.t.size(), s.v.size());
  EXPECT_DOUBLE_EQ(s.v.front(), 0.0);  // sampled before any join
  EXPECT_GT(s.v.back(), 0.0);         // converged tree holds MFT entries
}

TEST_F(SessionTelemetryTest, EnableTelemetryIsIdempotent) {
  EXPECT_EQ(&session_->enable_telemetry(), registry_);
}

TEST_F(SessionTelemetryTest, RunReportIsSchemaValidJson) {
  metrics::RunReport report;
  report.info["protocol"] = "HBH";
  report.numbers["group_size"] = 4;
  report.registry = registry_;
  report.sampler = session_->sampler();
  report.trace = session_->trace();
  std::ostringstream out;
  report.write(out);
  const std::string doc = out.str();
  EXPECT_TRUE(json_valid(doc)) << doc.substr(0, 400);
  for (const char* key :
       {"\"schema\"", "\"hbh.run_report/v1\"", "\"counters\"", "\"gauges\"",
        "\"series\"", "\"messages\"", "\"sample_period\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
}

TEST(RunReportTest, ExperimentReportEndToEnd) {
  harness::ExperimentSpec spec;
  spec.topology = harness::TopoKind::kIsp;
  spec.group_sizes = {4};
  spec.trials = 1;
  const auto results = harness::run_all(spec);
  const std::string path = testing::TempDir() + "hbh_report_test.json";
  ASSERT_TRUE(harness::write_run_report(spec, results, "test", path));

  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_TRUE(json_valid(doc));
  for (const char* key :
       {"\"hbh.run_report/v1\"", "\"sweep\"", "\"runs\"", "\"HBH\"",
        "\"PIM-SM\"", "\"series\"", "\"state.forwarding_entries\"",
        "\"messages\"", "\"wall_seconds\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
  std::remove(path.c_str());
}

TEST(RunReportTest, EnvVarOptIn) {
  harness::ExperimentSpec spec;
  spec.topology = harness::TopoKind::kIsp;
  spec.group_sizes = {2};
  spec.trials = 1;
  const std::vector<harness::SweepResult> results{
      {harness::Protocol::kHbh, {}}};

  unsetenv("HBH_REPORT");
  EXPECT_FALSE(harness::maybe_write_report_from_env(spec, results, "env"));

  const std::string path = testing::TempDir() + "hbh_report_env_test.json";
  setenv("HBH_REPORT", path.c_str(), 1);
  EXPECT_TRUE(harness::maybe_write_report_from_env(spec, results, "env"));
  unsetenv("HBH_REPORT");
  std::ifstream in{path};
  EXPECT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(json_valid(buffer.str()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hbh
