// Forwarding-plane invariant auditor tests.
//
// Two halves, mirroring the auditor's contract:
//   * zero false positives — clean converged runs of all four protocols,
//     interpreted and compiled data plane alike, must report nothing; and
//     the NDJSON stream must be byte-identical across those data planes.
//   * true positives — each seeded fault (impairment duplication, a
//     malicious bouncing agent, a crashed PIM router left down, a forcibly
//     refreshed orphan table entry) must raise exactly the kind of anomaly
//     it plants, and strict mode must turn the first one into an abort.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "harness/session.hpp"
#include "mcast/hbh/router.hpp"
#include "metrics/auditor.hpp"
#include "net/network.hpp"
#include "topo/builders.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"

namespace hbh::harness {
namespace {

using metrics::AnomalyKind;
using metrics::Auditor;

/// Converged ISP session for `p`: audit enabled before any join executes,
/// 8 staggered receivers, warmed past the last join.
std::unique_ptr<Session> clean_isp_session(Protocol p, bool fastpath) {
  Rng rng{2024};
  auto scenario = topo::make_isp();
  topo::randomize_costs(scenario.topo, rng);
  const auto receivers = rng.sample(scenario.candidate_receivers(), 8);
  SessionConfig config;
  config.fastpath = fastpath;
  auto session = std::make_unique<Session>(std::move(scenario), p, config);
  session->enable_audit();
  Time delay = 0.1;
  for (const NodeId r : receivers) {
    session->subscribe(r, delay);
    delay += 1.2 * config.timers.tree_period;
  }
  session->run_for(delay + 120);
  return session;
}

TEST(AuditorCleanRunTest, AllProtocolsAndDataPlanesReportZeroAnomalies) {
  for (const Protocol p : all_protocols()) {
    for (const bool fastpath : {false, true}) {
      auto session = clean_isp_session(p, fastpath);
      const Measurement m = session->measure();
      session->audit_sweep();
      const Auditor& auditor = *session->auditor();
      EXPECT_EQ(auditor.total(), 0u)
          << to_string(p) << " fastpath=" << fastpath << " first event: "
          << (auditor.events().empty() ? "-" : auditor.events()[0].detail);
      // The scenario itself must be a meaningful probe of the invariants.
      EXPECT_TRUE(m.delivered_exactly_once()) << to_string(p);
    }
  }
}

TEST(AuditorCleanRunTest, NdjsonStreamIsByteIdenticalAcrossDataPlanes) {
  for (const Protocol p : all_protocols()) {
    std::string interpreted;
    std::string compiled;
    for (std::string* out : {&interpreted, &compiled}) {
      auto session = clean_isp_session(p, out == &compiled);
      (void)session->measure();
      session->audit_sweep();
      session->auditor()->append_ndjson(*out, to_string(p));
    }
    EXPECT_EQ(interpreted, compiled) << to_string(p);
  }
}

TEST(AuditorTruePositiveTest, InjectedDuplicationRaisesDuplicateDelivery) {
  // The far receiver's access link duplicates every delivery. The last hop
  // is past any branch point, so the router-side replication guard cannot
  // absorb the extra copy: the host sees the probe twice, which under
  // HBH's at-most-once promise is exactly a duplicate-delivery anomaly —
  // and nothing else (the injected copy shares the original's TTL, so the
  // loop detector must stay silent).
  auto scenario = topo::attach_hosts(
      topo::make_line(3), {NodeId{0}, NodeId{1}, NodeId{2}}, 0);
  Session session{scenario, Protocol::kHbh};
  Auditor& auditor = session.enable_audit();
  session.subscribe(scenario.hosts[1]);
  session.subscribe(scenario.hosts[2]);
  session.run_for(120);
  ASSERT_TRUE(session.measure().delivered_exactly_once());
  ASSERT_EQ(auditor.total(), 0u);

  net::Impairment dup;
  dup.duplicate = 1.0;
  session.seed_impairments(9);
  session.impair_link(NodeId{2}, scenario.hosts[2], dup);
  (void)session.measure();
  EXPECT_GE(auditor.count(AnomalyKind::kDuplicateDelivery), 1u);
  EXPECT_EQ(auditor.total(), auditor.count(AnomalyKind::kDuplicateDelivery));
  ASSERT_FALSE(auditor.events().empty());
  EXPECT_EQ(auditor.events()[0].kind, AnomalyKind::kDuplicateDelivery);
  EXPECT_EQ(auditor.events()[0].channel, session.default_channel().channel());
}

TEST(AuditorTruePositiveTest, StrictModeAbortsOnFirstViolation) {
  auto scenario = topo::attach_hosts(
      topo::make_line(3), {NodeId{0}, NodeId{1}, NodeId{2}}, 0);
  Session session{scenario, Protocol::kHbh};
  session.enable_audit(/*strict=*/true);
  session.subscribe(scenario.hosts[2]);
  session.run_for(120);

  net::Impairment dup;
  dup.duplicate = 1.0;
  session.seed_impairments(9);
  session.impair_link(NodeId{0}, NodeId{1}, dup);
  EXPECT_THROW((void)session.measure(), std::runtime_error);
}

/// A hostile agent that returns every data packet to its sender — the
/// classic forwarding loop two misconfigured routers would produce.
class BouncingAgent : public net::ProtocolAgent {
 public:
  void handle(net::Packet&& packet, NodeId from) override {
    if (packet.type == net::PacketType::kData && from.valid()) {
      net().send_direct(self(), from, std::move(packet));
      return;
    }
    net::ProtocolAgent::handle(std::move(packet), from);
  }
};

TEST(AuditorTruePositiveTest, BouncingRouterRaisesLoop) {
  // Replace the mid-line router with a bouncer: data ping-pongs on the
  // 0-1 link, re-crossing it with ever lower TTL until exhaustion. Both
  // loop detectors (TTL regression, ttl-expired drop) see it; no
  // audit_sweep here — the bouncer is not an HbhRouter to enumerate.
  auto scenario = topo::attach_hosts(
      topo::make_line(3), {NodeId{0}, NodeId{1}, NodeId{2}}, 0);
  SessionConfig config;
  config.fastpath = false;  // the imposter must handle every hop itself
  Session session{scenario, Protocol::kHbh, config};
  Auditor& auditor = session.enable_audit();
  session.subscribe(scenario.hosts[2]);
  session.run_for(120);

  session.network().attach(NodeId{1}, std::make_unique<BouncingAgent>());
  (void)session.default_channel().inject_data();
  session.run_for(300);
  EXPECT_GE(auditor.count(AnomalyKind::kLoop), 1u);
  EXPECT_EQ(auditor.count(AnomalyKind::kDuplicateDelivery), 0u);
}

TEST(AuditorTruePositiveTest, CrashedPimRouterRaisesBlackHole) {
  // PIM data is group-addressed: a crashed router (unicast-only forwarder
  // after the crash) cannot route it, so the subtree behind it starves.
  // Three spaced emissions past the starvation window are the evidence.
  Rng rng{31337};
  auto base = topo::make_isp();
  const auto receivers = rng.sample(base.candidate_receivers(), 8);
  Session session{base, Protocol::kPimSm};
  Auditor& auditor = session.enable_audit();
  Time delay = 0.1;
  for (const NodeId r : receivers) {
    session.subscribe(r, delay);
    delay += 1.0;
  }
  session.run_for(200);
  ASSERT_TRUE(session.measure().delivered_exactly_once());

  // Crash the busiest on-tree backbone router that is neither the
  // source's access router nor the RP (their state cannot rebuild).
  const Measurement before = session.measure();
  NodeId src_router = kNoNode;
  for (std::size_t i = 0; i < session.scenario().hosts.size(); ++i) {
    if (session.scenario().hosts[i] == session.scenario().source_host) {
      src_router = session.scenario().routers[i];
    }
  }
  NodeId victim = kNoNode;
  for (const auto& [link, copies] : before.per_link) {
    const auto kind = session.scenario().topo.kind(link.second);
    if (kind == net::NodeKind::kRouter && link.second != src_router &&
        link.second != session.rp()) {
      victim = link.second;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  session.crash_router(victim);
  ASSERT_EQ(auditor.total(), 0u);

  // Evidence emissions, then enough virtual time that they age past the
  // starvation horizon, then one more emission to trigger the check.
  for (int i = 0; i < 3; ++i) {
    (void)session.default_channel().inject_data();
    session.run_for(10);
  }
  session.run_for(2 * session.auditor()->config().blackhole_starvation);
  (void)session.default_channel().inject_data();
  session.run_for(50);
  EXPECT_GE(auditor.count(AnomalyKind::kBlackHole), 1u);
  EXPECT_EQ(auditor.count(AnomalyKind::kLoop), 0u);
}

TEST(AuditorTruePositiveTest, ForcedOrphanEntryRaisesSoftStateLeak) {
  // Everyone leaves; long after t1 + t2 + slack a table entry is forcibly
  // re-refreshed (mutable_state is the fault-seeding backdoor). The sweep
  // must flag it: nothing legitimate can be keeping it alive.
  auto scenario = topo::attach_hosts(
      topo::make_line(3), {NodeId{0}, NodeId{1}, NodeId{2}}, 0);
  Session session{scenario, Protocol::kHbh};
  Auditor& auditor = session.enable_audit();
  session.subscribe(scenario.hosts[1]);
  session.subscribe(scenario.hosts[2]);
  session.run_for(120);
  ASSERT_TRUE(session.measure().delivered_exactly_once());

  session.unsubscribe(scenario.hosts[1]);
  session.unsubscribe(scenario.hosts[2]);
  // t1 + t2 + leak_slack with the default timers = 35 + 70 + 20.
  session.run_for(200);
  session.audit_sweep();
  ASSERT_EQ(auditor.total(), 0u);  // lazily retained dead entries: no leak

  const net::Channel ch = session.default_channel().channel();
  bool forced = false;
  for (const NodeId router : session.scenario().routers) {
    auto& agent =
        static_cast<mcast::hbh::HbhRouter&>(session.network().agent(router));
    if (mcast::hbh::ChannelState* st = agent.mutable_state(ch)) {
      const Time now = session.simulator().now();
      if (st->mct) {
        st->mct->state.refresh(mcast::McastConfig{}, now);
        forced = true;
      } else if (st->mft && !st->mft->raw().empty()) {
        st->mft->raw().begin()->second.refresh(mcast::McastConfig{}, now);
        forced = true;
      }
      if (forced) break;
    }
  }
  ASSERT_TRUE(forced) << "no residual table entry to force";
  session.audit_sweep();
  EXPECT_GE(auditor.count(AnomalyKind::kSoftStateLeak), 1u);
  EXPECT_EQ(auditor.total(), auditor.count(AnomalyKind::kSoftStateLeak));
}

TEST(AuditorTruePositiveTest, NdjsonCarriesTheSeededAnomaly) {
  auto scenario = topo::attach_hosts(
      topo::make_line(3), {NodeId{0}, NodeId{1}, NodeId{2}}, 0);
  Session session{scenario, Protocol::kHbh};
  Auditor& auditor = session.enable_audit();
  session.subscribe(scenario.hosts[2]);
  session.run_for(120);
  net::Impairment dup;
  dup.duplicate = 1.0;
  session.seed_impairments(9);
  session.impair_link(NodeId{0}, NodeId{1}, dup);
  (void)session.measure();
  ASSERT_GE(auditor.total(), 1u);

  std::string out;
  auditor.append_ndjson(out, "HBH");
  EXPECT_NE(out.find("\"schema\":\"hbh.audit/v1\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"kind\":\"duplicate-delivery\""), std::string::npos);
  EXPECT_NE(out.find("\"protocol\":\"HBH\""), std::string::npos);
  // One complete JSON object per line, newline-terminated.
  EXPECT_EQ(out.back(), '\n');
  EXPECT_EQ(out.find('{'), 0u);
}

}  // namespace
}  // namespace hbh::harness
