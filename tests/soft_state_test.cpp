// Unit tests for the soft-state machinery and the protocol tables built
// on it (HBH's MCT/MFT, REUNITE's dst-bearing MFT).
#include <gtest/gtest.h>

#include "mcast/common/soft_state.hpp"
#include "mcast/hbh/tables.hpp"
#include "mcast/reunite/tables.hpp"

namespace hbh::mcast {
namespace {

const McastConfig kCfg{};  // T=10, t1=35, t2=70

TEST(SoftEntryTest, FreshEntryLifecycle) {
  SoftEntry e{kCfg, 0.0};
  EXPECT_FALSE(e.stale(0.0));
  EXPECT_FALSE(e.stale(34.9));
  EXPECT_TRUE(e.stale(35.0));
  EXPECT_FALSE(e.dead(69.9));
  EXPECT_TRUE(e.dead(70.0));
}

TEST(SoftEntryTest, RefreshRestartsBothTimers) {
  SoftEntry e{kCfg, 0.0};
  e.refresh(kCfg, 30.0);
  EXPECT_FALSE(e.stale(64.9));
  EXPECT_TRUE(e.stale(65.0));
  EXPECT_TRUE(e.dead(100.0));
}

TEST(SoftEntryTest, KeepaliveRefreshesT2Only) {
  SoftEntry e{kCfg, 0.0};
  e.expire_t1(0.0);
  EXPECT_TRUE(e.stale(0.0));
  e.refresh_keepalive(kCfg, 40.0);
  EXPECT_TRUE(e.stale(40.0));     // still stale
  EXPECT_FALSE(e.dead(100.0));    // but alive until 40 + t2
  EXPECT_TRUE(e.dead(110.0));
}

TEST(SoftEntryTest, KeepaliveDoesNotReExpireFreshEntry) {
  // Appendix A rule F4 keeps t1 expired if it was expired; a join-freshened
  // entry must stay fresh through later fusions.
  SoftEntry e{kCfg, 0.0};
  e.refresh_keepalive(kCfg, 5.0);
  EXPECT_FALSE(e.stale(10.0));  // t1 untouched, still fresh until 35
}

TEST(SoftEntryTest, MarkedFlagIndependentOfTimers) {
  SoftEntry e{kCfg, 0.0};
  e.set_marked(true);
  EXPECT_TRUE(e.marked());
  e.refresh(kCfg, 10.0);
  EXPECT_TRUE(e.marked());  // refresh never clears marking
  e.set_marked(false);
  EXPECT_FALSE(e.marked());
}

TEST(SoftEntryTest, StateStringReflectsLifecycle) {
  SoftEntry e{kCfg, 0.0};
  EXPECT_EQ(e.state_string(0.0), "fresh");
  EXPECT_EQ(e.state_string(40.0), "stale");
  EXPECT_EQ(e.state_string(80.0), "dead");
  e.set_marked(true);
  EXPECT_EQ(e.state_string(0.0), "fresh+marked");
}

TEST(HbhMftTest, UpsertAndFind) {
  hbh::Mft mft;
  const Ipv4Addr a{10, 0, 0, 1};
  EXPECT_TRUE(mft.empty());
  mft.upsert(a, kCfg, 0.0);
  EXPECT_EQ(mft.size(), 1u);
  EXPECT_TRUE(mft.contains(a));
  ASSERT_NE(mft.find(a), nullptr);
  EXPECT_EQ(mft.find(Ipv4Addr{9, 9, 9, 9}), nullptr);
}

TEST(HbhMftTest, TargetSelectionBySoftState) {
  hbh::Mft mft;
  const Ipv4Addr fresh{10, 0, 0, 1};
  const Ipv4Addr stale{10, 0, 0, 2};
  const Ipv4Addr marked{10, 0, 0, 3};
  mft.upsert(fresh, kCfg, 0.0);
  mft.upsert(stale, kCfg, 0.0).expire_t1(0.0);
  mft.upsert(marked, kCfg, 0.0).set_marked(true);

  // Data goes to non-marked entries (stale included).
  const auto data = mft.data_targets(1.0);
  EXPECT_EQ(data, (std::vector<Ipv4Addr>{fresh, stale}));
  // Tree messages go to non-stale entries (marked included).
  const auto tree = mft.tree_targets(1.0);
  EXPECT_EQ(tree, (std::vector<Ipv4Addr>{fresh, marked}));
  // Fusion payloads list every live entry.
  EXPECT_EQ(mft.live_targets(1.0).size(), 3u);
}

TEST(HbhMftTest, PurgeRemovesDeadOnly) {
  hbh::Mft mft;
  mft.upsert(Ipv4Addr{10, 0, 0, 1}, kCfg, 0.0);
  mft.upsert(Ipv4Addr{10, 0, 0, 2}, kCfg, 50.0);
  EXPECT_EQ(mft.purge(80.0), 1u);  // first died at 70
  EXPECT_EQ(mft.size(), 1u);
  EXPECT_TRUE(mft.contains(Ipv4Addr{10, 0, 0, 2}));
}

TEST(HbhMftTest, DeterministicIterationOrder) {
  hbh::Mft mft;
  mft.upsert(Ipv4Addr{10, 0, 0, 3}, kCfg, 0.0);
  mft.upsert(Ipv4Addr{10, 0, 0, 1}, kCfg, 0.0);
  mft.upsert(Ipv4Addr{10, 0, 0, 2}, kCfg, 0.0);
  const auto targets = mft.data_targets(0.0);
  ASSERT_EQ(targets.size(), 3u);
  EXPECT_LT(targets[0], targets[1]);
  EXPECT_LT(targets[1], targets[2]);
}

TEST(ReuniteMftTest, PurgePromotesFirstLiveEntryToDst) {
  reunite::Mft mft;
  mft.dst = Ipv4Addr{10, 0, 0, 1};
  mft.dst_state = SoftEntry{kCfg, 0.0};
  mft.entries.emplace(Ipv4Addr{10, 0, 0, 2}, SoftEntry{kCfg, 60.0});
  EXPECT_FALSE(mft.purge(80.0));  // dst died; r2 promoted
  EXPECT_EQ(mft.dst, (Ipv4Addr{10, 0, 0, 2}));
  EXPECT_TRUE(mft.entries.empty());
}

TEST(ReuniteMftTest, PurgeDestroysWhenEverythingDead) {
  reunite::Mft mft;
  mft.dst = Ipv4Addr{10, 0, 0, 1};
  mft.dst_state = SoftEntry{kCfg, 0.0};
  mft.entries.emplace(Ipv4Addr{10, 0, 0, 2}, SoftEntry{kCfg, 0.0});
  EXPECT_TRUE(mft.purge(100.0));
}

TEST(ReuniteMftTest, DataCopyTargetsIncludeStaleEntries) {
  reunite::Mft mft;
  mft.dst = Ipv4Addr{10, 0, 0, 1};
  mft.dst_state = SoftEntry{kCfg, 0.0};
  SoftEntry stale{kCfg, 0.0};
  stale.expire_t1(0.0);
  mft.entries.emplace(Ipv4Addr{10, 0, 0, 2}, stale);
  EXPECT_EQ(mft.data_copy_targets(10.0).size(), 1u);  // stale still gets data
  EXPECT_EQ(mft.data_copy_targets(80.0).size(), 0u);  // dead does not
}

TEST(McastConfigTest, DefaultsFollowDesignDoc) {
  McastConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.join_period, 10.0);
  EXPECT_DOUBLE_EQ(cfg.tree_period, 10.0);
  EXPECT_DOUBLE_EQ(cfg.t1, 35.0);
  EXPECT_DOUBLE_EQ(cfg.t2, 70.0);
  EXPECT_GT(cfg.t1, cfg.join_period);  // several refresh chances before stale
  EXPECT_GT(cfg.t2, cfg.t1);
}

}  // namespace
}  // namespace hbh::mcast
