// Multi-channel Session API tests (docs/CHANNELS.md): ChannelHandle
// forwarding, cross-channel isolation, many channels per source host,
// per-channel structural accounting, the per-class aggregate census, and
// the seeded churn workload's determinism contract.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "harness/churn_plan.hpp"
#include "harness/session.hpp"
#include "harness/trial_pool.hpp"
#include "topo/builders.hpp"
#include "topo/scenarios.hpp"

namespace hbh::harness {
namespace {

topo::Scenario from_fig1(const topo::Fig1Scenario& f) {
  topo::Scenario s;
  s.topo = f.topo;
  s.routers = {f.h1, f.h2, f.h3, f.h4, f.h5, f.h6, f.h7};
  s.hosts = {f.s, f.r1, f.r2, f.r3, f.r4, f.r5, f.r6, f.r7, f.r8};
  s.source_host = f.s;
  return s;
}

void expect_equal(const Measurement& a, const Measurement& b) {
  EXPECT_EQ(a.tree_cost, b.tree_cost);
  EXPECT_DOUBLE_EQ(a.mean_delay, b.mean_delay);
  EXPECT_EQ(a.max_link_copies, b.max_link_copies);
  EXPECT_EQ(a.missing, b.missing);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.per_link, b.per_link);
}

std::tuple<std::size_t, std::size_t, std::size_t> census_tuple(
    const StateCensus& c) {
  return {c.control_entries, c.forwarding_entries, c.routers_with_state};
}

// The legacy single-channel surface and the default-channel handle are the
// same operations: driving two identical sessions through the two surfaces
// produces byte-identical measurements.
TEST(ChannelHandleTest, DefaultChannelHandleMatchesLegacySurface) {
  for (const Protocol proto : all_protocols()) {
    const auto fig = topo::make_fig1();
    Session legacy{from_fig1(fig), proto};
    Session handled{from_fig1(fig), proto};
    ChannelHandle handle = handled.default_channel();
    ASSERT_TRUE(handle.valid());
    EXPECT_EQ(handle.id(), 0u);
    EXPECT_EQ(handle.channel(), handled.channel());
    EXPECT_EQ(handle.rp(), handled.rp());
    EXPECT_EQ(handle.source_host(), fig.s);

    legacy.subscribe(fig.r1);
    legacy.subscribe(fig.r4, 5);
    handle.subscribe(fig.r1);
    handle.subscribe(fig.r4, 5);
    legacy.run_for(150);
    handled.run_for(150);
    EXPECT_EQ(legacy.members(), handle.members());
    expect_equal(legacy.measure(), handle.measure());
    EXPECT_EQ(legacy.total_structural_changes(),
              handled.total_structural_changes());
  }
}

// Adding a second channel (its own source host, receivers, churn) must not
// perturb the first channel at all: same census, same measurement.
TEST(ChannelIsolationTest, SecondChannelDoesNotPerturbTheFirst) {
  for (const Protocol proto : all_protocols()) {
    const auto fig = topo::make_fig1();
    Session solo{from_fig1(fig), proto};
    solo.subscribe(fig.r1);
    solo.subscribe(fig.r2);

    Session duo{from_fig1(fig), proto};
    duo.subscribe(fig.r1);
    duo.subscribe(fig.r2);
    ChannelHandle b = duo.create_channel(fig.r8);
    b.subscribe(fig.r3);
    b.subscribe(fig.r5, 20);

    solo.run_for(200);
    duo.run_for(200);

    EXPECT_EQ(census_tuple(solo.state_census(0)),
              census_tuple(duo.state_census(0)))
        << to_string(proto);
    expect_equal(solo.measure(), duo.default_channel().measure());

    // And the second channel works on its own terms.
    EXPECT_EQ(b.members(), (std::vector<NodeId>{fig.r3, fig.r5}));
    const Measurement mb = b.measure();
    EXPECT_TRUE(mb.delivered_exactly_once()) << to_string(proto);
  }
}

// One host can source many channels (the EXPRESS model): each gets a
// distinct group address, its own member set, and exactly-once delivery.
TEST(MultiChannelTest, OneHostSourcesManyChannels) {
  for (const Protocol proto : all_protocols()) {
    const auto fig = topo::make_fig1();
    Session session{from_fig1(fig), proto};
    ChannelHandle a = session.default_channel();
    ChannelHandle b = session.create_channel(fig.s);
    ChannelHandle c = session.create_channel(fig.s);
    EXPECT_EQ(session.channel_count(), 3u);
    EXPECT_NE(a.channel(), b.channel());
    EXPECT_NE(b.channel(), c.channel());
    EXPECT_EQ(b.channel().source, a.channel().source);

    a.subscribe(fig.r1);
    a.subscribe(fig.r2);
    b.subscribe(fig.r2);
    b.subscribe(fig.r6);
    c.subscribe(fig.r8);
    session.run_for(220);

    EXPECT_EQ(a.members(), (std::vector<NodeId>{fig.r1, fig.r2}));
    EXPECT_EQ(b.members(), (std::vector<NodeId>{fig.r2, fig.r6}));
    EXPECT_EQ(c.members(), (std::vector<NodeId>{fig.r8}));
    EXPECT_TRUE(a.measure().delivered_exactly_once()) << to_string(proto);
    EXPECT_TRUE(b.measure().delivered_exactly_once()) << to_string(proto);
    EXPECT_TRUE(c.measure().delivered_exactly_once()) << to_string(proto);
  }
}

// Per-channel structural counters partition the session total, and the
// all-channel census equals the per-channel censuses summed entry-wise.
TEST(MultiChannelTest, PerChannelAccountingSumsToSessionTotals) {
  for (const Protocol proto : {Protocol::kHbh, Protocol::kReunite}) {
    const auto fig = topo::make_fig1();
    Session session{from_fig1(fig), proto};
    ChannelHandle a = session.default_channel();
    ChannelHandle b = session.create_channel(fig.r8);
    a.subscribe(fig.r1);
    a.subscribe(fig.r2);
    b.subscribe(fig.r3);
    session.run_for(150);
    a.unsubscribe(fig.r2);
    session.run_for(150);

    EXPECT_GT(session.total_structural_changes(), 0u);
    EXPECT_EQ(a.total_structural_changes() + b.total_structural_changes(),
              session.total_structural_changes())
        << to_string(proto);

    const StateCensus ca = a.state_census();
    const StateCensus cb = b.state_census();
    const StateCensus total = session.state_census();
    EXPECT_EQ(ca.control_entries + cb.control_entries, total.control_entries);
    EXPECT_EQ(ca.forwarding_entries + cb.forwarding_entries,
              total.forwarding_entries);
  }
}

// The per-class census encodes the paper's state-placement claim: for
// HBH/REUNITE, non-branching routers hold control state only — their
// forwarding-entry bucket is zero by construction.
TEST(AggregateCensusTest, NonBranchingRoutersHoldControlOnlyState) {
  for (const Protocol proto : all_protocols()) {
    const auto fig = topo::make_fig1();
    Session session{from_fig1(fig), proto};
    ChannelHandle b = session.create_channel(fig.r8);
    for (const NodeId r : {fig.r1, fig.r2, fig.r3, fig.r4}) {
      session.subscribe(r);
    }
    b.subscribe(fig.r5);
    b.subscribe(fig.r6);
    session.run_for(200);

    const AggregateCensus agg = session.aggregate_census();
    // The class buckets partition the totals.
    EXPECT_EQ(agg.branching.control_entries + agg.non_branching.control_entries +
                  agg.rp.control_entries,
              agg.totals.control_entries);
    EXPECT_EQ(agg.branching.forwarding_entries +
                  agg.non_branching.forwarding_entries +
                  agg.rp.forwarding_entries,
              agg.totals.forwarding_entries);
    if (proto == Protocol::kHbh || proto == Protocol::kReunite) {
      EXPECT_EQ(agg.non_branching.forwarding_entries, 0u) << to_string(proto);
      EXPECT_GT(agg.branching.forwarding_entries, 0u) << to_string(proto);
      EXPECT_EQ(agg.rp.routers, 0u);
    }
    if (proto == Protocol::kPimSm) {
      EXPECT_GT(agg.rp.routers, 0u);  // the RP serves each channel it roots
    }
    // The totals agree with the flat census.
    EXPECT_EQ(census_tuple(agg.totals), census_tuple(session.state_census()));
  }
}

TEST(ChurnPlanTest, GenerationIsDeterministicPerSeed) {
  const auto fig = topo::make_fig1();
  const std::vector<NodeId> receivers{fig.r1, fig.r2, fig.r3, fig.r4};
  ChurnConfig config;
  config.horizon = 300;
  const ChurnPlan p1 = ChurnPlan::exponential_on_off(receivers, config, 42);
  const ChurnPlan p2 = ChurnPlan::exponential_on_off(receivers, config, 42);
  const ChurnPlan p3 = ChurnPlan::exponential_on_off(receivers, config, 43);

  ASSERT_EQ(p1.events().size(), p2.events().size());
  for (std::size_t i = 0; i < p1.events().size(); ++i) {
    EXPECT_EQ(p1.events()[i].at, p2.events()[i].at);
    EXPECT_EQ(p1.events()[i].host, p2.events()[i].host);
    EXPECT_EQ(p1.events()[i].join, p2.events()[i].join);
  }
  // A different seed produces a different script.
  bool differs = p1.events().size() != p3.events().size();
  for (std::size_t i = 0; !differs && i < p1.events().size(); ++i) {
    differs = p1.events()[i].at != p3.events()[i].at ||
              p1.events()[i].host != p3.events()[i].host;
  }
  EXPECT_TRUE(differs);

  // Events are time-ordered and bounded by the horizon.
  for (std::size_t i = 1; i < p1.events().size(); ++i) {
    EXPECT_LE(p1.events()[i - 1].at, p1.events()[i].at);
  }
  for (const ChurnEvent& ev : p1.events()) {
    EXPECT_LT(ev.at, config.horizon);
  }
}

TEST(ChurnPlanTest, StartJoinedReceiversJoinAtTimeZero) {
  const auto fig = topo::make_fig1();
  ChurnConfig config;
  config.p_start_joined = 1.0;
  config.horizon = 100;
  const ChurnPlan plan =
      ChurnPlan::exponential_on_off({fig.r1, fig.r2}, config, 7);
  ASSERT_GE(plan.events().size(), 2u);
  EXPECT_EQ(plan.events()[0].at, 0.0);
  EXPECT_TRUE(plan.events()[0].join);
  EXPECT_EQ(plan.events()[1].at, 0.0);
  EXPECT_TRUE(plan.events()[1].join);
}

TEST(ChurnPlanTest, ManualPlanDrivesMembership) {
  const auto fig = topo::make_fig1();
  Session session{from_fig1(fig), Protocol::kHbh};
  ChurnPlan plan;
  plan.join(1, fig.r1).join(2, fig.r2).leave(80, fig.r1);
  session.default_channel().schedule_churn(plan);
  session.run_for(50);
  EXPECT_EQ(session.members(), (std::vector<NodeId>{fig.r1, fig.r2}));
  session.run_for(100);
  EXPECT_EQ(session.members(), (std::vector<NodeId>{fig.r2}));
}

// The churn workload obeys the engine's paired-trial determinism contract:
// a grid of churned sessions produces the same fingerprints under a serial
// pool and a 4-worker pool.
TEST(ChurnPlanTest, ChurnedTrialsAreJobCountInvariant) {
  using Fingerprint = std::tuple<std::size_t, std::size_t, std::size_t,
                                 std::uint64_t, std::size_t>;
  const auto run_grid = [&](std::size_t jobs) {
    std::vector<Fingerprint> grid(8);
    TrialPool pool{jobs};
    pool.run(grid.size(), [&](std::size_t i) {
      const auto fig = topo::make_fig1();
      const topo::Scenario scenario = from_fig1(fig);
      Session session{scenario, i % 2 == 0 ? Protocol::kHbh
                                           : Protocol::kReunite};
      ChurnConfig config;
      config.mean_on = 60;
      config.mean_off = 30;
      config.horizon = 250;
      const std::vector<NodeId> receivers{fig.r1, fig.r2, fig.r3, fig.r5,
                                          fig.r7};
      session.default_channel().schedule_churn(
          ChurnPlan::exponential_on_off(receivers, config, 1000 + i));
      session.run_for(300);
      const StateCensus census = session.state_census();
      grid[i] = {census.control_entries, census.forwarding_entries,
                 census.routers_with_state,
                 session.total_structural_changes(),
                 session.members().size()};
    });
    return grid;
  };
  EXPECT_EQ(run_grid(1), run_grid(4));
}

// create_channel on a former receiver host: allowed while unsubscribed,
// and the new channel is immediately usable mid-simulation.
TEST(MultiChannelTest, ChannelCreatedAfterStartIsLive) {
  const auto fig = topo::make_fig1();
  Session session{from_fig1(fig), Protocol::kHbh};
  session.subscribe(fig.r1);
  session.run_for(100);
  ChannelHandle late = session.create_channel(fig.r8);
  late.subscribe(fig.r2);
  session.run_for(120);
  EXPECT_EQ(late.members(), (std::vector<NodeId>{fig.r2}));
  EXPECT_TRUE(late.measure().delivered_exactly_once());
  // The original channel kept working.
  EXPECT_TRUE(session.measure().delivered_exactly_once());
}

}  // namespace
}  // namespace hbh::harness
