// Rule-by-rule conformance tests for ReuniteRouter (§2.1–2.3 and the
// fresh-bit anchoring semantics documented in DESIGN.md §5.0).
#include <gtest/gtest.h>

#include <memory>

#include "mcast/reunite/router.hpp"
#include "net/network.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"

namespace hbh::mcast::reunite {
namespace {

struct Tap : net::PacketTap {
  struct Seen {
    NodeId from;
    NodeId to;
    net::Packet packet;
  };
  std::vector<Seen> sent;
  void on_transmit(const net::Topology::Edge& e, const net::Packet& p,
                   Time) override {
    sent.push_back(Seen{e.from, e.to, p});
  }
  [[nodiscard]] std::size_t count_from(NodeId node,
                                       net::PacketType type) const {
    std::size_t n = 0;
    for (const auto& s : sent) {
      if (s.from == node && s.packet.type == type) ++n;
    }
    return n;
  }
  void clear() { sent.clear(); }
};

// Topology: sh - n0 - B(n1) - n2 - {rh, r2h}.
class ReuniteRules : public ::testing::Test {
 protected:
  void SetUp() override {
    topo = topo::make_line(3);
    sh = topo.add_node(net::NodeKind::kHost);
    rh = topo.add_node(net::NodeKind::kHost);
    r2h = topo.add_node(net::NodeKind::kHost);
    topo.add_duplex(NodeId{0}, sh, net::LinkAttrs{1, 1});
    topo.add_duplex(NodeId{2}, rh, net::LinkAttrs{1, 1});
    topo.add_duplex(NodeId{2}, r2h, net::LinkAttrs{1, 1});
    routes = std::make_unique<routing::UnicastRouting>(topo);
    net = std::make_unique<net::Network>(sim, topo, *routes);
    b = static_cast<ReuniteRouter*>(
        &net->attach(NodeId{1}, std::make_unique<ReuniteRouter>(cfg)));
    net->set_tap(&tap);
    ch = net::Channel{net->address_of(sh), GroupAddr::ssm(1)};
    s_addr = net->address_of(sh);
    r_addr = net->address_of(rh);
    r2_addr = net->address_of(r2h);
  }

  void inject(net::Packet p) {
    const NodeId origin = p.dst == s_addr ? NodeId{2} : NodeId{0};
    net->send(origin, std::move(p));
    sim.run_for(5);
  }

  net::Packet join(Ipv4Addr r, bool fresh) {
    net::Packet p;
    p.src = r;
    p.dst = s_addr;
    p.channel = ch;
    p.type = net::PacketType::kJoin;
    p.payload = net::JoinPayload{r, false, fresh};
    return p;
  }

  net::Packet tree(Ipv4Addr target, std::uint32_t wave, bool marked = false) {
    net::Packet p;
    p.src = s_addr;
    p.dst = target;
    p.channel = ch;
    p.type = net::PacketType::kTree;
    p.payload = net::TreePayload{target, marked, s_addr, wave};
    return p;
  }

  /// tree(S, r) installs MCT{r}; a fresh join(S, r2) then branches B.
  void make_branching() {
    inject(tree(r_addr, 1));
    inject(join(r2_addr, /*fresh=*/true));
    ASSERT_NE(b->state(ch), nullptr);
    ASSERT_TRUE(b->state(ch)->branching());
    tap.clear();
  }

  mcast::McastConfig cfg{};
  net::Topology topo;
  NodeId sh, rh, r2h;
  sim::Simulator sim;
  std::unique_ptr<routing::UnicastRouting> routes;
  std::unique_ptr<net::Network> net;
  ReuniteRouter* b = nullptr;
  Tap tap;
  net::Channel ch;
  Ipv4Addr s_addr, r_addr, r2_addr;
};

TEST_F(ReuniteRules, TreeInstallsMct) {
  inject(tree(r_addr, 1));
  const auto* st = b->state(ch);
  ASSERT_NE(st, nullptr);
  ASSERT_TRUE(st->mct.has_value());
  EXPECT_EQ(st->mct->target, r_addr);
}

TEST_F(ReuniteRules, FreshJoinAtLiveMctBranches) {
  inject(tree(r_addr, 1));
  inject(join(r2_addr, /*fresh=*/true));
  const auto* st = b->state(ch);
  ASSERT_TRUE(st->branching());
  EXPECT_EQ(st->mft->dst, r_addr);              // passing flow's receiver
  EXPECT_TRUE(st->mft->entries.contains(r2_addr));
  EXPECT_FALSE(st->mct.has_value());
  // The join was dropped, not forwarded.
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kJoin), 0u);
}

TEST_F(ReuniteRules, RefreshJoinAtMctForwards) {
  inject(tree(r_addr, 1));
  inject(join(r2_addr, /*fresh=*/false));
  EXPECT_FALSE(b->state(ch)->branching());
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kJoin), 1u);
}

TEST_F(ReuniteRules, OwnTargetJoinAtMctForwards) {
  // The MCT target's own joins must travel to its anchor (the source).
  inject(tree(r_addr, 1));
  inject(join(r_addr, /*fresh=*/false));
  EXPECT_FALSE(b->state(ch)->branching());
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kJoin), 1u);
}

TEST_F(ReuniteRules, DstJoinForwardsThroughBranchingNode) {
  make_branching();
  inject(join(r_addr, /*fresh=*/false));
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kJoin), 1u);
}

TEST_F(ReuniteRules, EntryJoinInterceptedAndRefreshed) {
  make_branching();
  sim.run_for(20);  // age, but keep the dst entry below its t1 horizon
  inject(tree(r_addr, 2));  // refresh dst so the MFT still intercepts
  inject(join(r2_addr, /*fresh=*/false));
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kJoin), 0u);
  EXPECT_FALSE(
      b->state(ch)->mft->entries.at(r2_addr).stale(sim.now()));
}

TEST_F(ReuniteRules, FreshJoinAtLiveMftAddsEntry) {
  make_branching();
  const Ipv4Addr r3{10, 0, 9, 1};
  inject(join(r3, /*fresh=*/true));
  EXPECT_TRUE(b->state(ch)->mft->entries.contains(r3));
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kJoin), 0u);
}

TEST_F(ReuniteRules, RefreshJoinForUnknownReceiverForwards) {
  make_branching();
  const Ipv4Addr r3{10, 0, 9, 1};
  inject(join(r3, /*fresh=*/false));
  EXPECT_FALSE(b->state(ch)->mft->entries.contains(r3));
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kJoin), 1u);
}

TEST_F(ReuniteRules, StaleMftStopsIntercepting) {
  make_branching();
  sim.run_for(40);  // dst entry past t1 (no refreshing trees injected)
  inject(join(r2_addr, /*fresh=*/false));
  // Fig. 2c: the join passes through and will re-anchor upstream.
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kJoin), 1u);
}

TEST_F(ReuniteRules, DstTreeRefreshesAndReplicatesPerEntry) {
  make_branching();
  inject(tree(r_addr, 2));
  // One replica toward r2 plus the forwarded original toward r.
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kTree), 2u);
  EXPECT_FALSE(b->state(ch)->mft->dst_state.stale(sim.now()));
}

TEST_F(ReuniteRules, WaveGateSuppressesDuplicateReplication) {
  make_branching();
  inject(tree(r_addr, 2));
  tap.clear();
  inject(tree(r_addr, 2));  // same wave: forwarded but not re-replicated
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kTree), 1u);
}

TEST_F(ReuniteRules, MarkedTreeStalesDstWithoutT2Refresh) {
  make_branching();
  inject(tree(r_addr, 2, /*marked=*/true));
  const auto* st = b->state(ch);
  ASSERT_TRUE(st->branching());
  EXPECT_TRUE(st->mft->dst_state.stale(sim.now()));
}

TEST_F(ReuniteRules, MarkedTreeDestroysMatchingMct) {
  inject(tree(r_addr, 1));
  ASSERT_TRUE(b->state(ch)->mct.has_value());
  inject(tree(r_addr, 2, /*marked=*/true));
  EXPECT_EQ(b->state(ch), nullptr);
}

TEST_F(ReuniteRules, ForeignBranchTreeForwardedUntouched) {
  make_branching();
  inject(tree(r2_addr, 3));  // r2 != dst: transit only
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kTree), 1u);
  EXPECT_EQ(tap.sent.back().packet.tree().target, r2_addr);
}

TEST_F(ReuniteRules, DstDataReplicatedToEntries) {
  make_branching();
  net::Packet data;
  data.src = s_addr;
  data.dst = r_addr;  // == MFT.dst
  data.channel = ch;
  data.type = net::PacketType::kData;
  data.payload = net::DataPayload{1, 0, sim.now(), false};
  inject(std::move(data));
  // Original toward r plus one copy toward r2.
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kData), 2u);
}

TEST_F(ReuniteRules, NonDstDataPlainForwarded) {
  make_branching();
  net::Packet data;
  data.src = s_addr;
  data.dst = r2_addr;  // a copy addressed to an entry, passing through
  data.channel = ch;
  data.type = net::PacketType::kData;
  data.payload = net::DataPayload{2, 0, sim.now(), false};
  inject(std::move(data));
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kData), 1u);
}

TEST_F(ReuniteRules, ReplicationGuardStopsLoopedBackData) {
  make_branching();
  for (int i = 0; i < 2; ++i) {
    net::Packet data;
    data.src = s_addr;
    data.dst = r_addr;
    data.channel = ch;
    data.type = net::PacketType::kData;
    data.payload = net::DataPayload{7, 3, sim.now(), false};  // same probe/seq
    inject(std::move(data));
  }
  // First pass: original + copy. Second pass: original forwarded only.
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kData), 3u);
}

}  // namespace
}  // namespace hbh::mcast::reunite
