// Tests for topology builders, the ISP / random evaluation topologies, and
// — critically — the figure scenarios: the engineered costs must reproduce
// exactly the unicast routes the paper states for Figures 2, 3, and 5.
#include <gtest/gtest.h>

#include <cmath>

#include "routing/unicast.hpp"
#include "topo/builders.hpp"
#include "topo/isp.hpp"
#include "topo/random.hpp"
#include "topo/scenarios.hpp"

namespace hbh::topo {
namespace {

using net::NodeKind;
using routing::UnicastRouting;

TEST(BuildersTest, LineHasExpectedShape) {
  const auto t = make_line(5);
  EXPECT_EQ(t.node_count(), 5u);
  EXPECT_EQ(t.link_count(), 8u);  // 4 duplex
  EXPECT_EQ(t.degree(NodeId{0}), 1u);
  EXPECT_EQ(t.degree(NodeId{2}), 2u);
  EXPECT_TRUE(t.strongly_connected());
}

TEST(BuildersTest, RingClosesTheLoop) {
  const auto t = make_ring(6);
  EXPECT_EQ(t.link_count(), 12u);
  for (std::uint32_t i = 0; i < 6; ++i) EXPECT_EQ(t.degree(NodeId{i}), 2u);
}

TEST(BuildersTest, StarHubDegree) {
  const auto t = make_star(7);
  EXPECT_EQ(t.degree(NodeId{0}), 6u);
  EXPECT_EQ(t.degree(NodeId{3}), 1u);
}

TEST(BuildersTest, GridNeighborhoods) {
  const auto t = make_grid(3, 3);
  EXPECT_EQ(t.node_count(), 9u);
  EXPECT_EQ(t.link_count(), 24u);       // 12 duplex
  EXPECT_EQ(t.degree(NodeId{4}), 4u);   // center
  EXPECT_EQ(t.degree(NodeId{0}), 2u);   // corner
}

TEST(BuildersTest, FullMeshEveryPairLinked) {
  const auto t = make_full_mesh(5);
  EXPECT_EQ(t.link_count(), 20u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(t.degree(NodeId{i}), 4u);
}

TEST(BuildersTest, AttachHostsRecordsMapping) {
  auto t = make_line(3);
  const auto s = attach_hosts(std::move(t), {NodeId{0}, NodeId{1}, NodeId{2}},
                              /*source_index=*/1);
  EXPECT_EQ(s.topo.node_count(), 6u);
  EXPECT_EQ(s.hosts.size(), 3u);
  EXPECT_EQ(s.source_host, s.hosts[1]);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(s.topo.kind(s.hosts[i]), NodeKind::kHost);
    EXPECT_TRUE(s.topo.find_link(s.routers[i], s.hosts[i]).has_value());
    EXPECT_TRUE(s.topo.find_link(s.hosts[i], s.routers[i]).has_value());
  }
  const auto receivers = s.candidate_receivers();
  EXPECT_EQ(receivers.size(), 2u);
  for (const NodeId r : receivers) EXPECT_NE(r, s.source_host);
}

TEST(BuildersTest, RandomizeCostsStaysInRangeWithDelayEqualCost) {
  auto t = make_grid(4, 4);
  Rng rng{17};
  randomize_costs(t, rng);
  for (std::uint32_t i = 0; i < t.link_count(); ++i) {
    const auto& a = t.edge(LinkId{i}).attrs;
    EXPECT_GE(a.cost, 1.0);
    EXPECT_LE(a.cost, 10.0);
    EXPECT_DOUBLE_EQ(a.cost, a.delay);
    EXPECT_DOUBLE_EQ(a.cost, std::floor(a.cost));  // integer costs
  }
}

TEST(BuildersTest, RandomizeCostsIsSeedDeterministic) {
  auto t1 = make_grid(4, 4);
  auto t2 = make_grid(4, 4);
  Rng r1{99};
  Rng r2{99};
  randomize_costs(t1, r1);
  randomize_costs(t2, r2);
  for (std::uint32_t i = 0; i < t1.link_count(); ++i) {
    EXPECT_DOUBLE_EQ(t1.edge(LinkId{i}).attrs.cost,
                     t2.edge(LinkId{i}).attrs.cost);
  }
}

TEST(BuildersTest, RandomCostsProduceAsymmetry) {
  auto t = make_grid(4, 4);
  Rng rng{3};
  randomize_costs(t, rng);
  bool any_skew = false;
  for (std::uint32_t i = 0; i < t.link_count(); ++i) {
    const auto& e = t.edge(LinkId{i});
    const auto rev = t.find_link(e.to, e.from);
    ASSERT_TRUE(rev.has_value());
    if (t.edge(*rev).attrs.cost != e.attrs.cost) any_skew = true;
  }
  EXPECT_TRUE(any_skew);
}

TEST(BuildersTest, SymmetrizeCostsRemovesSkew) {
  auto t = make_grid(4, 4);
  Rng rng{3};
  randomize_costs(t, rng);
  symmetrize_costs(t);
  for (std::uint32_t i = 0; i < t.link_count(); ++i) {
    const auto& e = t.edge(LinkId{i});
    const auto rev = t.find_link(e.to, e.from);
    ASSERT_TRUE(rev.has_value());
    EXPECT_DOUBLE_EQ(t.edge(*rev).attrs.cost, e.attrs.cost);
  }
}

TEST(IspTest, MatchesPaperStatistics) {
  const Scenario isp = make_isp();
  EXPECT_EQ(isp.routers.size(), 18u);
  EXPECT_EQ(isp.hosts.size(), 18u);
  EXPECT_EQ(isp.topo.node_count(), 36u);
  // Paper: average router connectivity 3.3 (router-to-router links only).
  EXPECT_NEAR(isp.topo.average_router_degree(), 3.33, 0.05);
  EXPECT_TRUE(isp.topo.strongly_connected());
}

TEST(IspTest, NodeNumberingMatchesFigure6) {
  const Scenario isp = make_isp();
  // Nodes 0..17 routers, 18..35 hosts, source = node 18 on router 0.
  for (std::uint32_t i = 0; i < 18; ++i) {
    EXPECT_EQ(isp.topo.kind(NodeId{i}), NodeKind::kRouter);
    EXPECT_EQ(isp.topo.kind(NodeId{18 + i}), NodeKind::kHost);
  }
  EXPECT_EQ(isp.source_host, NodeId{18});
  EXPECT_TRUE(isp.topo.find_link(NodeId{0}, NodeId{18}).has_value());
  EXPECT_EQ(isp.candidate_receivers().size(), 17u);
}

TEST(RandomTopoTest, MeetsSizeAndDegreeTarget) {
  Rng rng{42};
  const Scenario s = make_random50(rng);
  EXPECT_EQ(s.routers.size(), 50u);
  EXPECT_EQ(s.hosts.size(), 50u);
  EXPECT_NEAR(s.topo.average_router_degree(), 8.6, 0.05);
  EXPECT_TRUE(s.topo.strongly_connected());
}

TEST(RandomTopoTest, SeedDeterminism) {
  Rng r1{7};
  Rng r2{7};
  const Scenario a = make_random50(r1);
  const Scenario b = make_random50(r2);
  ASSERT_EQ(a.topo.link_count(), b.topo.link_count());
  for (std::uint32_t i = 0; i < a.topo.link_count(); ++i) {
    EXPECT_EQ(a.topo.edge(LinkId{i}).from, b.topo.edge(LinkId{i}).from);
    EXPECT_EQ(a.topo.edge(LinkId{i}).to, b.topo.edge(LinkId{i}).to);
  }
}

TEST(RandomTopoTest, DifferentSeedsDiffer) {
  Rng r1{7};
  Rng r2{8};
  const Scenario a = make_random50(r1);
  const Scenario b = make_random50(r2);
  bool differs = false;
  for (std::uint32_t i = 0; i < a.topo.link_count() && !differs; ++i) {
    differs = a.topo.edge(LinkId{i}).from != b.topo.edge(LinkId{i}).from ||
              a.topo.edge(LinkId{i}).to != b.topo.edge(LinkId{i}).to;
  }
  EXPECT_TRUE(differs);
}

TEST(WaxmanTest, ConnectedAndSized) {
  Rng rng{9};
  const Scenario s = make_waxman(WaxmanParams{40, 0.3, 0.4}, rng);
  EXPECT_EQ(s.routers.size(), 40u);
  EXPECT_EQ(s.hosts.size(), 40u);
  EXPECT_TRUE(s.topo.strongly_connected());
}

TEST(WaxmanTest, DensityGrowsWithAlpha) {
  Rng r1{5};
  Rng r2{5};
  const Scenario sparse = make_waxman(WaxmanParams{40, 0.1, 0.4}, r1);
  const Scenario dense = make_waxman(WaxmanParams{40, 0.6, 0.4}, r2);
  EXPECT_LT(sparse.topo.average_router_degree(),
            dense.topo.average_router_degree());
}

TEST(WaxmanTest, SeedDeterministic) {
  Rng r1{77};
  Rng r2{77};
  const Scenario a = make_waxman(WaxmanParams{30, 0.3, 0.3}, r1);
  const Scenario b = make_waxman(WaxmanParams{30, 0.3, 0.3}, r2);
  EXPECT_EQ(a.topo.link_count(), b.topo.link_count());
}

TEST(WaxmanTest, PatchingHandlesUltraSparseDraws) {
  // alpha so small that the probabilistic phase yields almost no edges:
  // the connectivity patch must still produce a connected graph.
  Rng rng{4};
  const Scenario s = make_waxman(WaxmanParams{20, 0.01, 0.1}, rng);
  EXPECT_TRUE(s.topo.strongly_connected());
}

TEST(RandomTopoTest, SmallConfigurations) {
  Rng rng{1};
  const Scenario tiny = make_random(RandomTopoParams{4, 2.0}, rng);
  EXPECT_EQ(tiny.routers.size(), 4u);
  EXPECT_TRUE(tiny.topo.strongly_connected());
}

// --- Figure scenarios: the routes the paper states must hold exactly. ---

TEST(Fig2ScenarioTest, RoutesMatchPaper) {
  const Fig2Scenario f = make_fig2();
  const UnicastRouting routes{f.topo};
  // r1 -> H2 -> H1 -> S
  EXPECT_EQ(routes.path(f.r1, f.s),
            (std::vector<NodeId>{f.r1, f.h2, f.h1, f.s}));
  // S -> H1 -> H3 -> r1  (asymmetric with the above)
  EXPECT_EQ(routes.path(f.s, f.r1),
            (std::vector<NodeId>{f.s, f.h1, f.h3, f.r1}));
  // r2 -> H3 -> H1 -> S
  EXPECT_EQ(routes.path(f.r2, f.s),
            (std::vector<NodeId>{f.r2, f.h3, f.h1, f.s}));
  // S -> H4 -> r2
  EXPECT_EQ(routes.path(f.s, f.r2), (std::vector<NodeId>{f.s, f.h4, f.r2}));
}

TEST(Fig2ScenarioTest, R3RoutesAreSymmetricThroughH3) {
  const Fig2Scenario f = make_fig2();
  const UnicastRouting routes{f.topo};
  EXPECT_EQ(routes.path(f.s, f.r3),
            (std::vector<NodeId>{f.s, f.h1, f.h3, f.r3}));
  EXPECT_EQ(routes.path(f.r3, f.s),
            (std::vector<NodeId>{f.r3, f.h3, f.h1, f.s}));
}

TEST(Fig2ScenarioTest, TopologyIsConnected) {
  const Fig2Scenario f = make_fig2();
  EXPECT_TRUE(f.topo.strongly_connected());
}

TEST(Fig3ScenarioTest, RoutesMatchPaper) {
  const Fig3Scenario f = make_fig3();
  const UnicastRouting routes{f.topo};
  // r1 -> R4 -> R2 -> R1 -> S
  EXPECT_EQ(routes.path(f.r1, f.s),
            (std::vector<NodeId>{f.r1, f.w4, f.w2, f.w1, f.s}));
  // S -> R1 -> R6 -> R4 -> r1
  EXPECT_EQ(routes.path(f.s, f.r1),
            (std::vector<NodeId>{f.s, f.w1, f.w6, f.w4, f.r1}));
  // r2 -> R5 -> R3 -> R1 -> S
  EXPECT_EQ(routes.path(f.r2, f.s),
            (std::vector<NodeId>{f.r2, f.w5, f.w3, f.w1, f.s}));
  // S -> R1 -> R6 -> R5 -> r2 : both downstream paths share link R1-R6.
  EXPECT_EQ(routes.path(f.s, f.r2),
            (std::vector<NodeId>{f.s, f.w1, f.w6, f.w5, f.r2}));
}

TEST(Fig1ScenarioTest, SymmetricRoutesAndShape) {
  const Fig1Scenario f = make_fig1();
  const UnicastRouting routes{f.topo};
  EXPECT_TRUE(f.topo.strongly_connected());
  EXPECT_EQ(f.receivers().size(), 8u);
  // Symmetric costs: forward route is the reverse of the return route.
  for (const NodeId r : f.receivers()) {
    auto down = routes.path(f.s, r);
    auto up = routes.path(r, f.s);
    std::reverse(up.begin(), up.end());
    EXPECT_EQ(down, up);
  }
  // r1 hangs off the H1-H2-H4-H6 chain.
  EXPECT_EQ(routes.path(f.s, f.r1),
            (std::vector<NodeId>{f.s, f.h1, f.h2, f.h4, f.h6, f.r1}));
  // r8 hangs off H5.
  EXPECT_EQ(routes.path(f.s, f.r8),
            (std::vector<NodeId>{f.s, f.h1, f.h3, f.h5, f.r8}));
}

TEST(HotPotatoTest, RoutesHandOffAtNearestPeeringPoint) {
  const HotPotatoScenario h = make_hot_potato();
  const UnicastRouting routes{h.topo};
  // East-coast source to west-coast receiver: hand off EAST, cross on B.
  EXPECT_EQ(routes.path(h.src, h.rx_west),
            (std::vector<NodeId>{h.src, h.a1, h.b1, h.b2, h.b3, h.rx_west}));
  // Reverse direction: hand off WEST, cross on A — asymmetric routes.
  EXPECT_EQ(routes.path(h.rx_west, h.src),
            (std::vector<NodeId>{h.rx_west, h.b3, h.a3, h.a2, h.a1, h.src}));
}

TEST(HotPotatoTest, EastCoastPairIsSymmetric) {
  const HotPotatoScenario h = make_hot_potato();
  const UnicastRouting routes{h.topo};
  auto fwd = routes.path(h.src, h.rx_east);
  auto back = routes.path(h.rx_east, h.src);
  std::reverse(back.begin(), back.end());
  EXPECT_EQ(fwd, back);  // both cross at the east peering point
}

TEST(HotPotatoTest, AsymmetryReportSeesIt) {
  const HotPotatoScenario h = make_hot_potato();
  const UnicastRouting routes{h.topo};
  EXPECT_GT(routing::measure_asymmetry(routes).asymmetric_fraction(), 0.1);
}

TEST(ScenariosTest, AsymmetryReportFlagsFig2ButNotFig1) {
  const Fig2Scenario f2 = make_fig2();
  const UnicastRouting routes2{f2.topo};
  EXPECT_GT(routing::measure_asymmetry(routes2).asymmetric_pairs, 0u);

  const Fig1Scenario f1 = make_fig1();
  const UnicastRouting routes1{f1.topo};
  EXPECT_EQ(routing::measure_asymmetry(routes1).asymmetric_pairs, 0u);
}

}  // namespace
}  // namespace hbh::topo
