// Unit tests for the util module: ids, ipv4, rng, stats, log, env.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <unordered_set>

#include "util/env.hpp"
#include "util/ids.hpp"
#include "util/ipv4.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hbh {
namespace {

TEST(Ids, DefaultNodeIdIsInvalid) {
  NodeId n;
  EXPECT_FALSE(n.valid());
  EXPECT_EQ(n, kNoNode);
}

TEST(Ids, ExplicitNodeIdIsValidAndOrdered) {
  NodeId a{1};
  NodeId b{2};
  EXPECT_TRUE(a.valid());
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.index(), 1u);
}

TEST(Ids, NodeIdHashDistinguishes) {
  std::unordered_set<NodeId> s{NodeId{1}, NodeId{2}, NodeId{1}};
  EXPECT_EQ(s.size(), 2u);
}

TEST(Ids, ToStringFormats) {
  EXPECT_EQ(to_string(NodeId{7}), "n7");
  EXPECT_EQ(to_string(kNoNode), "n<invalid>");
  EXPECT_EQ(to_string(LinkId{3}), "l3");
}

TEST(Ipv4, OctetConstructionAndFormatting) {
  Ipv4Addr a{10, 0, 3, 1};
  EXPECT_EQ(a.to_string(), "10.0.3.1");
  EXPECT_EQ(a.octet(0), 10);
  EXPECT_EQ(a.octet(3), 1);
}

TEST(Ipv4, ParseRoundTrip) {
  const auto a = Ipv4Addr::parse("192.168.1.254");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "192.168.1.254");
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4, MulticastClassification) {
  EXPECT_TRUE(Ipv4Addr(224, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Addr(239, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Addr(192, 168, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Addr(232, 1, 2, 3).is_ssm());
  EXPECT_FALSE(Ipv4Addr(233, 1, 2, 3).is_ssm());
}

TEST(Ipv4, UnspecifiedSentinel) {
  EXPECT_TRUE(kNoAddr.unspecified());
  EXPECT_FALSE(Ipv4Addr(1, 0, 0, 0).unspecified());
}

TEST(GroupAddrTest, SsmAllocatorYieldsValidDistinctGroups) {
  const auto g0 = GroupAddr::ssm(0);
  const auto g1 = GroupAddr::ssm(1);
  EXPECT_TRUE(g0.valid());
  EXPECT_TRUE(g0.addr().is_ssm());
  EXPECT_NE(g0, g1);
  EXPECT_EQ(g0.to_string(), "232.0.0.0");
  EXPECT_EQ(g1.to_string(), "232.0.0.1");
}

TEST(GroupAddrTest, DefaultIsInvalid) {
  GroupAddr g;
  EXPECT_FALSE(g.valid());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntStaysInRangeAndHitsAllValues) {
  Rng rng{7};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 10);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all 10 values appear in 2000 draws
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng{7};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, Uniform01Bounds) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng{11};
  double sum = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.1);
}

TEST(RngTest, ExponentialIsPositiveWithTheRequestedMean) {
  Rng rng{17};
  double sum = 0;
  constexpr int kDraws = 20000;
  constexpr double kMean = 60.0;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.exponential(kMean);
    ASSERT_GT(v, 0.0);  // inverse-CDF on (0,1]: log never sees 0
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, kMean, 2.0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng{5};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleDrawsDistinctElements) {
  Rng rng{5};
  std::vector<int> pool{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto picked = rng.sample(pool, 4);
  ASSERT_EQ(picked.size(), 4u);
  std::set<int> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(RngTest, SampleMoreThanPoolReturnsWholePool) {
  Rng rng{5};
  std::vector<int> pool{1, 2, 3};
  EXPECT_EQ(rng.sample(pool, 10).size(), 3u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent{9};
  Rng child = parent.fork();
  // The child stream must not replay the parent's outputs.
  Rng parent2{9};
  (void)parent2.next();  // align with post-fork parent state
  EXPECT_NE(child.next(), parent.next());
}

TEST(StatsTest, MeanAndVarianceMatchClosedForm) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, EmptyAndSingleSampleEdgeCases) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(StatsTest, MergeEqualsSequentialFeed) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng{123};
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 100);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(StatsTest, Ci95ShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  Rng rng{77};
  for (int i = 0; i < 10; ++i) small.add(rng.uniform(0, 1));
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform(0, 1));
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(StatsTest, PercentileNearestRank) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 10), 1.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99), 42.0);
}

TEST(LogTest, CaptureRecordsAndRestores) {
  {
    LogCapture capture;
    log(LogLevel::kInfo, "hello ", 42);
    log(LogLevel::kTrace, "fine-grained");
    EXPECT_TRUE(capture.contains("hello 42"));
    EXPECT_TRUE(capture.contains("fine-grained"));
    EXPECT_EQ(capture.lines().size(), 2u);
  }
  // After capture, default level (kWarn) suppresses info logs; nothing to
  // assert on stderr, but the call must not crash.
  log(LogLevel::kInfo, "dropped");
}

TEST(LogTest, LevelFiltering) {
  LogCapture capture{LogLevel::kWarn};
  log(LogLevel::kDebug, "quiet");
  log(LogLevel::kError, "loud");
  EXPECT_FALSE(capture.contains("quiet"));
  EXPECT_TRUE(capture.contains("loud"));
}

TEST(LogTest, CountOccurrences) {
  LogCapture capture;
  log(LogLevel::kInfo, "tick");
  log(LogLevel::kInfo, "tick");
  log(LogLevel::kInfo, "tock");
  EXPECT_EQ(capture.count("tick"), 2u);
  EXPECT_EQ(capture.count("tock"), 1u);
  EXPECT_EQ(capture.count("boom"), 0u);
}

TEST(EnvTest, IntParsingAndDefaults) {
  ::setenv("HBH_TEST_INT", "123", 1);
  EXPECT_EQ(env_int("HBH_TEST_INT"), 123);
  EXPECT_EQ(env_int_or("HBH_TEST_INT", 5), 123);
  ::setenv("HBH_TEST_INT", "12x", 1);
  EXPECT_FALSE(env_int("HBH_TEST_INT").has_value());
  ::unsetenv("HBH_TEST_INT");
  EXPECT_EQ(env_int_or("HBH_TEST_INT", 5), 5);
}

TEST(EnvTest, StringDefaults) {
  ::setenv("HBH_TEST_STR", "abc", 1);
  EXPECT_EQ(env_str_or("HBH_TEST_STR", "zzz"), "abc");
  ::unsetenv("HBH_TEST_STR");
  EXPECT_EQ(env_str_or("HBH_TEST_STR", "zzz"), "zzz");
}

}  // namespace
}  // namespace hbh
