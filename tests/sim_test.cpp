// Unit tests for the discrete-event engine: ordering, cancellation,
// deadlines, periodic timers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace hbh::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) q.push(5.0, [&, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelFiredWhileOthersPendingKeepsCountCorrect) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.pop().fn();                 // fires a
  EXPECT_FALSE(q.cancel(a));    // a already fired
  EXPECT_EQ(q.size(), 1u);      // b still pending
  EXPECT_FALSE(q.empty());
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueueTest, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{999}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueueTest, ClearDrainsEverything) {
  EventQueue q;
  q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, StaleIdCannotCancelReusedSlot) {
  // Ids are generation-stamped: once an event fires, its slot may be
  // reused by a later push, but the old id must not cancel the newcomer.
  EventQueue q;
  const EventId stale = q.push(1.0, [] {});
  q.pop().fn();  // fires; the slot returns to the free list
  bool fired = false;
  const EventId fresh = q.push(2.0, [&] { fired = true; });
  EXPECT_FALSE(q.cancel(stale));  // stale generation: rejected
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(fresh));
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, ClearInvalidatesOutstandingIds) {
  EventQueue q;
  const EventId before = q.push(1.0, [] {});
  q.clear();
  EXPECT_FALSE(q.cancel(before));
  // A post-clear push may land in the same slot; the old id stays dead.
  const EventId after = q.push(3.0, [] {});
  EXPECT_FALSE(q.cancel(before));
  EXPECT_TRUE(q.cancel(after));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, FifoOrderSurvivesCancelChurn) {
  // Cancelling interleaved events must not disturb the documented
  // (time, push-order) total order of the survivors.
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(q.push(5.0, [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 12; i += 3) q.cancel(ids[static_cast<size_t>(i)]);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 4, 5, 7, 8, 10, 11}));
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<Time> stamps;
  sim.schedule(2.0, [&] { stamps.push_back(sim.now()); });
  sim.schedule(5.0, [&] { stamps.push_back(sim.now()); });
  EXPECT_EQ(sim.run(), 2u);
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_DOUBLE_EQ(stamps[0], 2.0);
  EXPECT_DOUBLE_EQ(stamps[1], 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_at(7.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(1.0, recurse);
  };
  sim.schedule(1.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulatorTest, RunRespectsDeadline) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) sim.schedule(i, [&] { ++fired; });
  sim.run(4.0);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.pending(), 6u);
}

TEST(SimulatorTest, RunForAdvancesClockEvenWhenIdle) {
  Simulator sim;
  sim.run_for(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  sim.schedule(1.0, [] {});
  sim.run_for(5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 15.0);
}

TEST(SimulatorTest, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  // A subsequent run resumes.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, ResetClearsClockAndQueue) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run();
  sim.schedule(1.0, [] {});
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(SimulatorTest, ExecutedCountsAcrossRuns) {
  Simulator sim;
  for (int i = 1; i <= 3; ++i) sim.schedule(i, [] {});
  sim.run(1.5);
  EXPECT_EQ(sim.executed(), 1u);
  sim.run();
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(PeriodicTimerTest, FiresEveryPeriod) {
  Simulator sim;
  std::vector<Time> stamps;
  PeriodicTimer timer{sim, 10.0, [&] { stamps.push_back(sim.now()); }};
  timer.start();
  sim.run(35.0);
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_DOUBLE_EQ(stamps[0], 10.0);
  EXPECT_DOUBLE_EQ(stamps[1], 20.0);
  EXPECT_DOUBLE_EQ(stamps[2], 30.0);
}

TEST(PeriodicTimerTest, CustomInitialDelay) {
  Simulator sim;
  std::vector<Time> stamps;
  PeriodicTimer timer{sim, 10.0, [&] { stamps.push_back(sim.now()); }};
  timer.start(0.0);
  sim.run(25.0);
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_DOUBLE_EQ(stamps[0], 0.0);
  EXPECT_DOUBLE_EQ(stamps[1], 10.0);
  EXPECT_DOUBLE_EQ(stamps[2], 20.0);
}

TEST(PeriodicTimerTest, StopDisarms) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer timer{sim, 5.0, [&] { ++fired; }};
  timer.start();
  sim.run(12.0);
  EXPECT_EQ(fired, 2);
  timer.stop();
  EXPECT_FALSE(timer.running());
  sim.run(100.0);
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTimerTest, DestructionCancelsPending) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTimer timer{sim, 5.0, [&] { ++fired; }};
    timer.start();
  }
  sim.run(100.0);
  EXPECT_EQ(fired, 0);
}

TEST(PeriodicTimerTest, RestartResetsPhase) {
  Simulator sim;
  std::vector<Time> stamps;
  PeriodicTimer timer{sim, 10.0, [&] { stamps.push_back(sim.now()); }};
  timer.start();
  sim.run_for(4.0);
  timer.start();  // re-arm at t=4: next firing at t=14
  sim.run(20.0);
  ASSERT_FALSE(stamps.empty());
  EXPECT_DOUBLE_EQ(stamps[0], 14.0);
}

}  // namespace
}  // namespace hbh::sim
