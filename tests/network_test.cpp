// Unit tests for the network fabric: addressing, unicast forwarding,
// delays, TTL protection, taps, and agent interception hooks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"

namespace hbh::net {
namespace {

using routing::UnicastRouting;

struct Fixture {
  Topology topo;
  std::unique_ptr<UnicastRouting> routes;
  std::unique_ptr<Network> net;
  sim::Simulator sim;

  // Line topology 0 - 1 - 2 - 3, unit costs, delay 2 per hop.
  void build_line(std::size_t n = 4) {
    for (std::size_t i = 0; i < n; ++i) topo.add_node();
    for (std::size_t i = 0; i + 1 < n; ++i) {
      topo.add_duplex(NodeId{static_cast<std::uint32_t>(i)},
                      NodeId{static_cast<std::uint32_t>(i + 1)},
                      LinkAttrs{1, 2});
    }
    routes = std::make_unique<UnicastRouting>(topo);
    net = std::make_unique<Network>(sim, topo, *routes);
  }
};

/// Agent recording every delivery addressed to it.
class RecordingAgent : public ProtocolAgent {
 public:
  struct Seen {
    Packet packet;
    Time at;
    NodeId from;
  };
  std::vector<Seen> received;

 protected:
  void deliver_local(Packet&& p, NodeId from) override {
    received.push_back(Seen{std::move(p), simulator().now(), from});
  }
};

/// Tap collecting (from, to) of each transmission.
class RecordingTap : public PacketTap {
 public:
  std::vector<std::pair<NodeId, NodeId>> hops;
  std::vector<std::string> drops;
  void on_transmit(const Topology::Edge& e, const Packet&, Time) override {
    hops.emplace_back(e.from, e.to);
  }
  void on_drop(NodeId, const Packet&, std::string_view reason, Time) override {
    drops.emplace_back(reason);
  }
};

Packet make_data(Network& net, NodeId from, NodeId to) {
  Packet p;
  p.src = net.address_of(from);
  p.dst = net.address_of(to);
  p.type = PacketType::kData;
  p.payload = DataPayload{};
  return p;
}

TEST(NetworkTest, AddressAssignmentIsStableAndReversible) {
  Fixture f;
  f.build_line();
  for (std::uint32_t i = 0; i < 4; ++i) {
    const NodeId n{i};
    const Ipv4Addr a = f.net->address_of(n);
    EXPECT_EQ(f.net->node_of(a), n);
    EXPECT_EQ(a.octet(0), 10);
  }
  EXPECT_EQ(f.net->node_of(Ipv4Addr(1, 2, 3, 4)), kNoNode);
}

TEST(NetworkTest, NodeAddressSchemeSpansIndices) {
  EXPECT_EQ(node_address(NodeId{0}).to_string(), "10.0.0.1");
  EXPECT_EQ(node_address(NodeId{255}).to_string(), "10.0.255.1");
  EXPECT_EQ(node_address(NodeId{256}).to_string(), "10.1.0.1");
}

TEST(NetworkTest, UnicastDeliveryAcrossMultipleHops) {
  Fixture f;
  f.build_line();
  auto& sink = static_cast<RecordingAgent&>(
      f.net->attach(NodeId{3}, std::make_unique<RecordingAgent>()));
  f.net->send(NodeId{0}, make_data(*f.net, NodeId{0}, NodeId{3}));
  f.sim.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.received[0].at, 6.0);  // 3 hops × delay 2
  EXPECT_EQ(sink.received[0].from, NodeId{2});
}

TEST(NetworkTest, TransmissionCountersTrackHops) {
  Fixture f;
  f.build_line();
  f.net->send(NodeId{0}, make_data(*f.net, NodeId{0}, NodeId{3}));
  f.sim.run();
  EXPECT_EQ(f.net->counters().transmissions, 3u);
  EXPECT_EQ(f.net->counters().data_transmissions, 3u);
  EXPECT_EQ(f.net->counters().control_transmissions, 0u);
}

TEST(NetworkTest, TapObservesEveryHopInOrder) {
  Fixture f;
  f.build_line();
  RecordingTap tap;
  f.net->set_tap(&tap);
  f.net->send(NodeId{0}, make_data(*f.net, NodeId{0}, NodeId{3}));
  f.sim.run();
  ASSERT_EQ(tap.hops.size(), 3u);
  EXPECT_EQ(tap.hops[0], std::make_pair(NodeId{0}, NodeId{1}));
  EXPECT_EQ(tap.hops[2], std::make_pair(NodeId{2}, NodeId{3}));
}

TEST(NetworkTest, SelfAddressedPacketDeliversLocally) {
  Fixture f;
  f.build_line();
  auto& sink = static_cast<RecordingAgent&>(
      f.net->attach(NodeId{1}, std::make_unique<RecordingAgent>()));
  f.net->send(NodeId{1}, make_data(*f.net, NodeId{1}, NodeId{1}));
  f.sim.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.received[0].at, 0.0);
  EXPECT_EQ(f.net->counters().transmissions, 0u);
}

TEST(NetworkTest, UnknownDestinationIsDropped) {
  Fixture f;
  f.build_line();
  RecordingTap tap;
  f.net->set_tap(&tap);
  Packet p = make_data(*f.net, NodeId{0}, NodeId{1});
  p.dst = Ipv4Addr(8, 8, 8, 8);
  f.net->send(NodeId{0}, std::move(p));
  f.sim.run();
  ASSERT_EQ(tap.drops.size(), 1u);
  EXPECT_EQ(tap.drops[0], "unknown-destination");
  EXPECT_EQ(f.net->counters().drops_no_route, 1u);
}

TEST(NetworkTest, NoRouteIsDropped) {
  Fixture f;
  // Two disconnected nodes.
  f.topo.add_node();
  f.topo.add_node();
  f.routes = std::make_unique<UnicastRouting>(f.topo);
  f.net = std::make_unique<Network>(f.sim, f.topo, *f.routes);
  RecordingTap tap;
  f.net->set_tap(&tap);
  f.net->send(NodeId{0}, make_data(*f.net, NodeId{0}, NodeId{1}));
  f.sim.run();
  ASSERT_EQ(tap.drops.size(), 1u);
  EXPECT_EQ(tap.drops[0], "no-route");
}

TEST(NetworkTest, TtlExpiryBoundsForwarding) {
  Fixture f;
  f.build_line(4);
  Packet p = make_data(*f.net, NodeId{0}, NodeId{3});
  p.ttl = 2;  // enough for 2 hops only
  RecordingTap tap;
  f.net->set_tap(&tap);
  f.net->send(NodeId{0}, std::move(p));
  f.sim.run();
  EXPECT_EQ(tap.hops.size(), 2u);
  EXPECT_EQ(f.net->counters().drops_ttl, 1u);
}

TEST(NetworkTest, DefaultAgentForwardsTransitTraffic) {
  Fixture f;
  f.build_line();
  // No custom agents anywhere except destination: transit nodes 1, 2 use
  // the default agent and must forward.
  auto& sink = static_cast<RecordingAgent&>(
      f.net->attach(NodeId{3}, std::make_unique<RecordingAgent>()));
  f.net->send(NodeId{0}, make_data(*f.net, NodeId{0}, NodeId{3}));
  f.sim.run();
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST(NetworkTest, DefaultAgentSinksSelfAddressed) {
  Fixture f;
  f.build_line();
  f.net->send(NodeId{0}, make_data(*f.net, NodeId{0}, NodeId{2}));
  f.sim.run();
  EXPECT_EQ(f.net->counters().local_sink, 1u);
}

TEST(NetworkTest, SendDirectUsesNamedLinkOnly) {
  Fixture f;
  f.build_line();
  RecordingTap tap;
  f.net->set_tap(&tap);
  // Direct transmission 1->2 of a packet addressed elsewhere; the next
  // agent (default) will then forward it by unicast toward node 0.
  Packet p = make_data(*f.net, NodeId{1}, NodeId{0});
  f.net->send_direct(NodeId{1}, NodeId{2}, std::move(p));
  f.sim.run();
  ASSERT_GE(tap.hops.size(), 2u);
  EXPECT_EQ(tap.hops[0], std::make_pair(NodeId{1}, NodeId{2}));
  EXPECT_EQ(tap.hops[1], std::make_pair(NodeId{2}, NodeId{1}));
}

TEST(NetworkTest, StartInvokesAllAgents) {
  class StartCounting : public ProtocolAgent {
   public:
    explicit StartCounting(int& counter) : counter_(counter) {}
    void start() override { ++counter_; }

   private:
    int& counter_;
  };
  Fixture f;
  f.build_line();
  int started = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    f.net->attach(NodeId{i}, std::make_unique<StartCounting>(started));
  }
  f.net->start();
  EXPECT_EQ(started, 4);
}

TEST(PacketTest, DescribeMentionsTypeAndAddresses) {
  Packet p;
  p.src = Ipv4Addr(10, 0, 0, 1);
  p.dst = Ipv4Addr(10, 0, 1, 1);
  p.type = PacketType::kJoin;
  p.payload = JoinPayload{Ipv4Addr(10, 0, 2, 1), true};
  const std::string d = p.describe();
  EXPECT_NE(d.find("join"), std::string::npos);
  EXPECT_NE(d.find("10.0.0.1"), std::string::npos);
  EXPECT_NE(d.find("first"), std::string::npos);
}

TEST(PacketTest, DescribeFusionListsReceivers) {
  Packet p;
  p.type = PacketType::kFusion;
  p.payload = FusionPayload{{Ipv4Addr(10, 0, 2, 1), Ipv4Addr(10, 0, 3, 1)},
                            Ipv4Addr(10, 0, 9, 1)};
  const std::string d = p.describe();
  EXPECT_NE(d.find("10.0.2.1,10.0.3.1"), std::string::npos);
  EXPECT_NE(d.find("from=10.0.9.1"), std::string::npos);
}

}  // namespace
}  // namespace hbh::net
