// Tests for the message tracer and the ASCII tree renderer.
#include <gtest/gtest.h>

#include "metrics/trace.hpp"
#include "net/wire.hpp"

namespace hbh::metrics {
namespace {

net::Topology::Edge edge(std::uint32_t a, std::uint32_t b) {
  return net::Topology::Edge{NodeId{a}, NodeId{b}, net::LinkAttrs{1, 1}};
}

net::Packet packet_of(net::PacketType type) {
  net::Packet p;
  p.type = type;
  p.src = Ipv4Addr{10, 0, 0, 1};
  p.dst = Ipv4Addr{10, 0, 1, 1};
  p.channel = net::Channel{Ipv4Addr{10, 0, 0, 1}, GroupAddr::ssm(1)};
  switch (type) {
    case net::PacketType::kJoin:
      p.payload = net::JoinPayload{Ipv4Addr{10, 0, 2, 1}, true, false};
      break;
    case net::PacketType::kTree:
      p.payload = net::TreePayload{Ipv4Addr{10, 0, 2, 1}, true, {}, 5};
      break;
    case net::PacketType::kFusion:
      p.payload = net::FusionPayload{{Ipv4Addr{10, 0, 2, 1}},
                                     Ipv4Addr{10, 0, 3, 1}};
      break;
    case net::PacketType::kPimJoin:
    case net::PacketType::kPimPrune:
      p.payload = net::PimJoinPayload{Ipv4Addr{10, 0, 0, 1},
                                      Ipv4Addr{10, 0, 2, 1}};
      break;
    case net::PacketType::kData:
      p.payload = net::DataPayload{1, 9, 0, false};
      break;
  }
  return p;
}

TEST(MessageTraceTest, RecordsTransmissionsWithDetails) {
  MessageTrace trace;
  trace.on_transmit(edge(0, 1), packet_of(net::PacketType::kJoin), 1.5);
  trace.on_transmit(edge(1, 2), packet_of(net::PacketType::kTree), 2.5);
  ASSERT_EQ(trace.records().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.records()[0].at, 1.5);
  EXPECT_EQ(trace.records()[0].from, NodeId{0});
  EXPECT_NE(trace.records()[0].detail.find("first"), std::string::npos);
  EXPECT_NE(trace.records()[1].detail.find("wave=5"), std::string::npos);
  EXPECT_NE(trace.records()[1].detail.find("marked"), std::string::npos);
}

TEST(MessageTraceTest, HistogramCountsPerType) {
  MessageTrace trace;
  trace.on_transmit(edge(0, 1), packet_of(net::PacketType::kJoin), 1);
  trace.on_transmit(edge(0, 1), packet_of(net::PacketType::kJoin), 2);
  trace.on_transmit(edge(0, 1), packet_of(net::PacketType::kData), 3);
  const auto hist = trace.histogram();
  EXPECT_EQ(hist.at(net::PacketType::kJoin), 2u);
  EXPECT_EQ(hist.at(net::PacketType::kData), 1u);
  EXPECT_FALSE(hist.contains(net::PacketType::kTree));
}

TEST(MessageTraceTest, BytesHistogramMatchesWireSizes) {
  MessageTrace trace;
  const auto join = packet_of(net::PacketType::kJoin);
  trace.on_transmit(edge(0, 1), join, 1);
  trace.on_transmit(edge(1, 2), join, 2);
  EXPECT_EQ(trace.bytes_histogram().at(net::PacketType::kJoin),
            2 * net::encoded_size(join));
}

TEST(MessageTraceTest, TypeAndWindowFiltering) {
  MessageTrace trace;
  for (int i = 0; i < 10; ++i) {
    trace.on_transmit(edge(0, 1), packet_of(net::PacketType::kTree), i);
  }
  EXPECT_EQ(trace.of_type(net::PacketType::kTree, 3, 7).size(), 4u);
  EXPECT_TRUE(trace.of_type(net::PacketType::kJoin).empty());
}

TEST(MessageTraceTest, CapacityBoundsRecording) {
  MessageTrace trace{3};
  for (int i = 0; i < 10; ++i) {
    trace.on_transmit(edge(0, 1), packet_of(net::PacketType::kData), i);
  }
  EXPECT_EQ(trace.records().size(), 3u);
  EXPECT_TRUE(trace.truncated());
  EXPECT_EQ(trace.dropped(), 7u);  // the exact overflow, not just a flag
  trace.clear();
  EXPECT_TRUE(trace.records().empty());
  EXPECT_FALSE(trace.truncated());
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(MessageTraceTest, DroppedStaysZeroBelowCapacity) {
  MessageTrace trace{8};
  for (int i = 0; i < 8; ++i) {
    trace.on_transmit(edge(0, 1), packet_of(net::PacketType::kTree), i);
  }
  EXPECT_FALSE(trace.truncated());
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(MessageTraceTest, ClearResetsParallelByteVector) {
  // Regression: clear() used to reset records_ but not the parallel bytes_
  // vector, so post-clear byte histograms paired old sizes with new records.
  MessageTrace trace;
  trace.on_transmit(edge(0, 1), packet_of(net::PacketType::kFusion), 1);
  trace.clear();
  const auto join = packet_of(net::PacketType::kJoin);
  trace.on_transmit(edge(0, 1), join, 2);
  const auto bytes = trace.bytes_histogram();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes.at(net::PacketType::kJoin), net::encoded_size(join));
}

TEST(MessageTraceTest, ToStringTruncatesOutput) {
  MessageTrace trace;
  for (int i = 0; i < 10; ++i) {
    trace.on_transmit(edge(0, 1), packet_of(net::PacketType::kData), i);
  }
  const std::string dump = trace.to_string(4);
  EXPECT_NE(dump.find("(6 more)"), std::string::npos);
}

TEST(RenderTreeTest, SimpleChain) {
  std::map<std::pair<NodeId, NodeId>, std::size_t> links;
  links[{NodeId{0}, NodeId{1}}] = 1;
  links[{NodeId{1}, NodeId{2}}] = 1;
  const std::string art = render_tree(links, NodeId{0});
  EXPECT_NE(art.find("n0\n"), std::string::npos);
  EXPECT_NE(art.find("+- n1"), std::string::npos);
  EXPECT_NE(art.find("  +- n2"), std::string::npos);
  EXPECT_EQ(art.find("unrooted"), std::string::npos);
}

TEST(RenderTreeTest, FanOutAndCopyCounts) {
  std::map<std::pair<NodeId, NodeId>, std::size_t> links;
  links[{NodeId{0}, NodeId{1}}] = 2;  // duplicated link
  links[{NodeId{0}, NodeId{2}}] = 1;
  const std::string art = render_tree(links, NodeId{0});
  EXPECT_NE(art.find("+- n1 (x2)"), std::string::npos);
  EXPECT_NE(art.find("+- n2"), std::string::npos);
}

TEST(RenderTreeTest, UnrootedLinksListed) {
  std::map<std::pair<NodeId, NodeId>, std::size_t> links;
  links[{NodeId{0}, NodeId{1}}] = 1;
  links[{NodeId{7}, NodeId{8}}] = 1;  // disconnected from root 0
  const std::string art = render_tree(links, NodeId{0});
  EXPECT_NE(art.find("unrooted links:"), std::string::npos);
  EXPECT_NE(art.find("n7->n8"), std::string::npos);
}

TEST(RenderTreeTest, EmptyTreeIsJustTheRoot) {
  const std::string art = render_tree({}, NodeId{3});
  EXPECT_EQ(art, "n3\n");
}

}  // namespace
}  // namespace hbh::metrics
