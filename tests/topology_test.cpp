// Unit tests for the directed topology model.
#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace hbh::net {
namespace {

Topology triangle() {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  const NodeId c = t.add_node();
  t.add_duplex(a, b, LinkAttrs{1, 1});
  t.add_duplex(b, c, LinkAttrs{2, 2});
  t.add_duplex(c, a, LinkAttrs{3, 3});
  return t;
}

TEST(TopologyTest, NodesGetDenseIds) {
  Topology t;
  EXPECT_EQ(t.add_node().index(), 0u);
  EXPECT_EQ(t.add_node(NodeKind::kHost).index(), 1u);
  EXPECT_EQ(t.node_count(), 2u);
  EXPECT_EQ(t.kind(NodeId{0}), NodeKind::kRouter);
  EXPECT_EQ(t.kind(NodeId{1}), NodeKind::kHost);
}

TEST(TopologyTest, DirectedLinkAttributesAreIndependent) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  t.add_duplex(a, b, LinkAttrs{3, 3}, LinkAttrs{7, 7});
  const auto ab = t.find_link(a, b);
  const auto ba = t.find_link(b, a);
  ASSERT_TRUE(ab && ba);
  EXPECT_DOUBLE_EQ(t.edge(*ab).attrs.cost, 3.0);
  EXPECT_DOUBLE_EQ(t.edge(*ba).attrs.cost, 7.0);
}

TEST(TopologyTest, FindLinkIsDirectional) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  t.add_link(a, b, LinkAttrs{1, 1});
  EXPECT_TRUE(t.find_link(a, b).has_value());
  EXPECT_FALSE(t.find_link(b, a).has_value());
}

TEST(TopologyTest, OutLinksEnumeratesNeighbors) {
  const Topology t = triangle();
  EXPECT_EQ(t.out_links(NodeId{0}).size(), 2u);
  EXPECT_EQ(t.degree(NodeId{1}), 2u);
  EXPECT_EQ(t.link_count(), 6u);  // 3 duplex links = 6 directed edges
}

TEST(TopologyTest, SetAttrsReplaces) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  const LinkId l = t.add_link(a, b, LinkAttrs{1, 1});
  t.set_attrs(l, LinkAttrs{9, 4});
  EXPECT_DOUBLE_EQ(t.edge(l).attrs.cost, 9.0);
  EXPECT_DOUBLE_EQ(t.edge(l).attrs.delay, 4.0);
}

TEST(TopologyTest, NodesOfKindFilters) {
  Topology t;
  t.add_node();
  t.add_node(NodeKind::kHost);
  t.add_node();
  const auto routers = t.nodes_of_kind(NodeKind::kRouter);
  const auto hosts = t.nodes_of_kind(NodeKind::kHost);
  EXPECT_EQ(routers.size(), 2u);
  EXPECT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0], NodeId{1});
}

TEST(TopologyTest, AverageRouterDegreeExcludesHostLinksByDefault) {
  Topology t;
  const NodeId r0 = t.add_node();
  const NodeId r1 = t.add_node();
  const NodeId h = t.add_node(NodeKind::kHost);
  t.add_duplex(r0, r1, LinkAttrs{1, 1});
  t.add_duplex(r0, h, LinkAttrs{1, 1});
  EXPECT_DOUBLE_EQ(t.average_router_degree(), 1.0);
  EXPECT_DOUBLE_EQ(t.average_router_degree(/*count_host_links=*/true), 1.5);
}

TEST(TopologyTest, StronglyConnectedDetection) {
  const Topology t = triangle();
  EXPECT_TRUE(t.strongly_connected());

  Topology oneway;
  const NodeId a = oneway.add_node();
  const NodeId b = oneway.add_node();
  oneway.add_link(a, b, LinkAttrs{1, 1});
  EXPECT_FALSE(oneway.strongly_connected());
}

TEST(TopologyTest, SingleNodeIsStronglyConnected) {
  Topology t;
  t.add_node();
  EXPECT_TRUE(t.strongly_connected());
}

TEST(TopologyTest, DisconnectedComponentsDetected) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  t.add_node();  // isolated
  t.add_duplex(a, b, LinkAttrs{1, 1});
  EXPECT_FALSE(t.strongly_connected());
}

TEST(TopologyTest, ContainsValidatesIds) {
  Topology t;
  t.add_node();
  EXPECT_TRUE(t.contains(NodeId{0}));
  EXPECT_FALSE(t.contains(NodeId{1}));
  EXPECT_FALSE(t.contains(kNoNode));
}

}  // namespace
}  // namespace hbh::net
