// Property tests for the routing layer over randomized topologies:
// invariants that must hold for any graph the generators produce, since
// every protocol's correctness sits on top of them.
#include <gtest/gtest.h>

#include "routing/unicast.hpp"
#include "topo/builders.hpp"
#include "topo/isp.hpp"
#include "topo/random.hpp"
#include "util/rng.hpp"

namespace hbh::routing {
namespace {

struct Case {
  std::uint64_t seed;
  enum Kind { kIsp, kRandom, kWaxman, kGrid } kind;
};

class RoutingProperties : public ::testing::TestWithParam<Case> {
 protected:
  net::Topology build() {
    Rng rng{GetParam().seed};
    net::Topology t;
    switch (GetParam().kind) {
      case Case::kIsp:
        t = topo::make_isp().topo;
        break;
      case Case::kRandom:
        t = topo::make_random(topo::RandomTopoParams{30, 4.0}, rng).topo;
        break;
      case Case::kWaxman:
        t = topo::make_waxman(topo::WaxmanParams{30, 0.3, 0.4}, rng).topo;
        break;
      case Case::kGrid:
        t = topo::make_grid(5, 5);
        break;
    }
    topo::randomize_costs(t, rng);
    return t;
  }
};

TEST_P(RoutingProperties, EveryPairReachableOnConnectedGraph) {
  const net::Topology t = build();
  ASSERT_TRUE(t.strongly_connected());
  const UnicastRouting routes{t};
  for (std::uint32_t a = 0; a < t.node_count(); ++a) {
    for (std::uint32_t b = 0; b < t.node_count(); ++b) {
      if (a == b) continue;
      ASSERT_TRUE(routes.reachable(NodeId{a}, NodeId{b}))
          << "n" << a << " -> n" << b;
    }
  }
}

TEST_P(RoutingProperties, TriangleInequalityOnDistances) {
  const net::Topology t = build();
  const UnicastRouting routes{t};
  Rng rng{GetParam().seed ^ 0x7A7A};
  const auto n = static_cast<std::int64_t>(t.node_count());
  for (int i = 0; i < 200; ++i) {
    const NodeId a{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    const NodeId b{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    const NodeId c{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    if (a == b || b == c || a == c) continue;
    EXPECT_LE(routes.distance(a, c),
              routes.distance(a, b) + routes.distance(b, c) + 1e-9);
  }
}

TEST_P(RoutingProperties, NextHopChainsTerminateAtDestination) {
  const net::Topology t = build();
  const UnicastRouting routes{t};
  Rng rng{GetParam().seed ^ 0x1234};
  const auto n = static_cast<std::int64_t>(t.node_count());
  for (int i = 0; i < 100; ++i) {
    const NodeId from{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    const NodeId to{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    if (from == to) continue;
    NodeId at = from;
    std::size_t hops = 0;
    while (at != to) {
      at = routes.next_hop(at, to);
      ASSERT_TRUE(at.valid());
      ASSERT_LE(++hops, t.node_count());  // loop-free: < n hops always
    }
    EXPECT_EQ(hops + 1, routes.path(from, to).size());
  }
}

TEST_P(RoutingProperties, PathDelayEqualsEdgeDelaySum) {
  const net::Topology t = build();
  const UnicastRouting routes{t};
  Rng rng{GetParam().seed ^ 0x9999};
  const auto n = static_cast<std::int64_t>(t.node_count());
  for (int i = 0; i < 100; ++i) {
    const NodeId from{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    const NodeId to{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    if (from == to) continue;
    const auto path = routes.path(from, to);
    Time sum = 0;
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      const auto link = t.find_link(path[k], path[k + 1]);
      ASSERT_TRUE(link.has_value());
      sum += t.edge(*link).attrs.delay;
    }
    EXPECT_DOUBLE_EQ(sum, routes.path_delay(from, to));
  }
}

TEST_P(RoutingProperties, DistanceIsMinimalOverSampledDetours) {
  // No single-intermediate detour may beat the shortest path.
  const net::Topology t = build();
  const UnicastRouting routes{t};
  Rng rng{GetParam().seed ^ 0x4444};
  const auto n = static_cast<std::int64_t>(t.node_count());
  for (int i = 0; i < 200; ++i) {
    const NodeId a{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    const NodeId b{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    const NodeId via{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    if (a == b || via == a || via == b) continue;
    EXPECT_LE(routes.distance(a, b),
              routes.distance(a, via) + routes.distance(via, b) + 1e-9);
  }
}

TEST_P(RoutingProperties, SymmetrizedCostsSymmetrizeDistances) {
  net::Topology t = build();
  topo::symmetrize_costs(t);
  const UnicastRouting routes{t};
  Rng rng{GetParam().seed ^ 0xBEEF};
  const auto n = static_cast<std::int64_t>(t.node_count());
  for (int i = 0; i < 200; ++i) {
    const NodeId a{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    const NodeId b{static_cast<std::uint32_t>(rng.uniform_int(0, n - 1))};
    if (a == b) continue;
    EXPECT_DOUBLE_EQ(routes.distance(a, b), routes.distance(b, a));
  }
}

TEST_P(RoutingProperties, AsymmetryVanishesWhenSymmetrized) {
  net::Topology t = build();
  {
    const UnicastRouting routes{t};
    // Randomized integer costs make some asymmetry overwhelmingly likely
    // on every non-trivial topology (sanity of the experiment setup).
    EXPECT_GT(measure_asymmetry(routes).asymmetric_fraction(), 0.0);
  }
  topo::symmetrize_costs(t);
  const UnicastRouting routes{t};
  // Path sets may still differ on equal-cost ties, but cost skew must be 0.
  EXPECT_DOUBLE_EQ(measure_asymmetry(routes).max_cost_skew, 0.0);
}

constexpr Case kCases[] = {
    {1, Case::kIsp},    {2, Case::kIsp},    {3, Case::kRandom},
    {4, Case::kRandom}, {5, Case::kWaxman}, {6, Case::kWaxman},
    {7, Case::kGrid},
};

std::string case_name(const ::testing::TestParamInfo<Case>& param_info) {
  const char* names[] = {"isp", "random", "waxman", "grid"};
  return std::string(names[param_info.param.kind]) + "_seed" +
         std::to_string(param_info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Graphs, RoutingProperties,
                         ::testing::ValuesIn(kCases), case_name);

}  // namespace
}  // namespace hbh::routing
