// Compiled fast path vs interpreted dispatch: byte-level equivalence.
//
// The HBH_FASTPATH contract (src/mcast/fastpath/compiled_forwarder.hpp) is
// that the compiled data plane is an *observationally invisible*
// optimization: every probe outcome, fabric counter, event count, and
// queue push must match the interpreted run exactly — under converged
// trees, under fault injection (link failures, crash/restart), under
// membership churn, and across channels. Each test here runs the same
// deterministic script twice, once with SessionConfig::fastpath forced
// off and once on, and compares the full observable surface.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "harness/churn_plan.hpp"
#include "harness/fault_plan.hpp"
#include "harness/session.hpp"
#include "mcast/fastpath/compiled_forwarder.hpp"
#include "topo/builders.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"

namespace hbh::harness {
namespace {

/// Everything a script's run exposes to comparison. `stats` stays zero for
/// the interpreted run.
struct Outcome {
  std::vector<Measurement> measurements;
  net::NetworkCounters counters;
  std::uint64_t executed = 0;
  std::uint64_t queue_pushes = 0;
  fastpath::FastpathStats stats;
};

using Script = std::function<void(Session&, std::vector<Measurement>&)>;

Outcome run_script(Protocol protocol, bool fast,
                   const std::function<topo::Scenario()>& make_scenario,
                   const Script& script) {
  SessionConfig config{};
  config.fastpath = fast;
  Session session{make_scenario(), protocol, config};
  Outcome out;
  script(session, out.measurements);
  out.counters = session.network().counters();
  out.executed = session.simulator().executed();
  out.queue_pushes = session.simulator().queue().total_pushes();
  if (const fastpath::CompiledForwarder* fp = session.fastpath();
      fp != nullptr) {
    out.stats = fp->stats();
  }
  return out;
}

void expect_equivalent(const Outcome& fast, const Outcome& interp,
                       Protocol protocol) {
  const char* p = to_string(protocol).data();
  EXPECT_EQ(fast.counters.transmissions, interp.counters.transmissions) << p;
  EXPECT_EQ(fast.counters.data_transmissions,
            interp.counters.data_transmissions)
      << p;
  EXPECT_EQ(fast.counters.control_transmissions,
            interp.counters.control_transmissions)
      << p;
  EXPECT_EQ(fast.counters.drops_ttl, interp.counters.drops_ttl) << p;
  EXPECT_EQ(fast.counters.drops_no_route, interp.counters.drops_no_route)
      << p;
  EXPECT_EQ(fast.counters.drops_link_down, interp.counters.drops_link_down)
      << p;
  EXPECT_EQ(fast.counters.drops_loss, interp.counters.drops_loss) << p;
  EXPECT_EQ(fast.counters.duplicates_injected,
            interp.counters.duplicates_injected)
      << p;
  EXPECT_EQ(fast.counters.reordered, interp.counters.reordered) << p;
  EXPECT_EQ(fast.counters.local_sink, interp.counters.local_sink) << p;
  EXPECT_EQ(fast.counters.drops_queue_full, interp.counters.drops_queue_full)
      << p;
  EXPECT_EQ(fast.counters.drops_red, interp.counters.drops_red) << p;
  EXPECT_EQ(fast.counters.queued_packets, interp.counters.queued_packets) << p;
  EXPECT_EQ(fast.executed, interp.executed) << p;
  EXPECT_EQ(fast.queue_pushes, interp.queue_pushes) << p;
  ASSERT_EQ(fast.measurements.size(), interp.measurements.size()) << p;
  for (std::size_t i = 0; i < fast.measurements.size(); ++i) {
    const Measurement& a = fast.measurements[i];
    const Measurement& b = interp.measurements[i];
    EXPECT_EQ(a.mean_delay, b.mean_delay) << p << " #" << i;
    EXPECT_EQ(a.tree_cost, b.tree_cost) << p << " #" << i;
    EXPECT_EQ(a.missing, b.missing) << p << " #" << i;
    EXPECT_EQ(a.duplicated, b.duplicated) << p << " #" << i;
    EXPECT_EQ(a.per_link, b.per_link) << p << " #" << i;
  }
}

topo::Scenario isp_scenario() {
  Rng rng{2026};
  topo::Scenario scenario = topo::make_isp();
  topo::randomize_costs(scenario.topo, rng);
  return scenario;
}

std::vector<NodeId> isp_receivers(const Session& session, std::size_t n) {
  Rng rng{7};
  return rng.sample(session.scenario().candidate_receivers(), n);
}

TEST(FastpathEquivalenceTest, ConvergedForwardingMatchesInterpreted) {
  for (const Protocol protocol : all_protocols()) {
    const Script script = [](Session& session,
                             std::vector<Measurement>& out) {
      ChannelHandle ch = session.default_channel();
      Time delay = 0.1;
      for (const NodeId r : isp_receivers(session, 8)) {
        ch.subscribe(r, delay);
        delay += 2.0;
      }
      session.run_for(delay + 200);
      for (int round = 0; round < 4; ++round) {
        (void)ch.inject_data();
        session.run_for(25);
      }
      out.push_back(ch.measure());
    };
    const Outcome fast = run_script(protocol, true, isp_scenario, script);
    const Outcome interp = run_script(protocol, false, isp_scenario, script);
    expect_equivalent(fast, interp, protocol);
    // The loop above is converged steady state: the compiled path must
    // actually carry it, not silently fall back.
    EXPECT_GT(fast.stats.hits, 0u) << to_string(protocol);
    EXPECT_EQ(interp.stats.hits, 0u) << to_string(protocol);
  }
}

TEST(FastpathEquivalenceTest, FaultPlanMatchesInterpreted) {
  // Ring: every pair has two disjoint paths, so the scripted link failure
  // and crash/restart both force reconvergence instead of partition.
  const auto make = [] {
    return topo::attach_hosts(
        topo::make_ring(6),
        {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}, NodeId{5}},
        0);
  };
  for (const Protocol protocol : all_protocols()) {
    const Script script = [](Session& session,
                             std::vector<Measurement>& out) {
      ChannelHandle ch = session.default_channel();
      const auto& hosts = session.scenario().hosts;
      ch.subscribe(hosts[2]);
      ch.subscribe(hosts[3]);
      ch.subscribe(hosts[5]);
      session.run_for(120);
      out.push_back(ch.measure());
      FaultPlan plan;
      plan.link_down(10, NodeId{1}, NodeId{2})
          .crash(40, NodeId{4})
          .restart(120, NodeId{4})
          .link_up(160, NodeId{1}, NodeId{2});
      session.schedule_faults(plan);
      for (int round = 0; round < 8; ++round) {
        (void)ch.inject_data();
        session.run_for(30);
      }
      out.push_back(ch.measure());
    };
    const Outcome fast = run_script(protocol, true, make, script);
    const Outcome interp = run_script(protocol, false, make, script);
    expect_equivalent(fast, interp, protocol);
    EXPECT_GT(fast.stats.hits, 0u) << to_string(protocol);
    // Faults reroute the tree: compiled blocks must have been torn up.
    EXPECT_GT(fast.stats.invalidations, 0u) << to_string(protocol);
  }
}

TEST(FastpathEquivalenceTest, MembershipChurnMatchesInterpreted) {
  for (const Protocol protocol : all_protocols()) {
    const Script script = [](Session& session,
                             std::vector<Measurement>& out) {
      ChannelHandle ch = session.default_channel();
      const std::vector<NodeId> receivers = isp_receivers(session, 6);
      const ChurnPlan plan = ChurnPlan::exponential_on_off(
          receivers, {.mean_on = 80, .mean_off = 40, .horizon = 300}, 99);
      ch.schedule_churn(plan);
      for (int round = 0; round < 10; ++round) {
        session.run_for(30);
        (void)ch.inject_data();
      }
      session.run_for(100);
      out.push_back(ch.measure());
    };
    const Outcome fast = run_script(protocol, true, isp_scenario, script);
    const Outcome interp = run_script(protocol, false, isp_scenario, script);
    expect_equivalent(fast, interp, protocol);
    // Churn flaps mutate tables constantly; both invalidation and replay
    // must have happened for the comparison to mean anything.
    EXPECT_GT(fast.stats.invalidations, 0u) << to_string(protocol);
  }
}

TEST(FastpathEquivalenceTest, MultiChannelMatchesInterpreted) {
  for (const Protocol protocol : all_protocols()) {
    const Script script = [](Session& session,
                             std::vector<Measurement>& out) {
      ChannelHandle first = session.default_channel();
      const std::vector<NodeId> receivers = isp_receivers(session, 8);
      // Source the second channel at the last sampled host; split the
      // rest between the two channels with one shared receiver.
      ChannelHandle second = session.create_channel(receivers[7]);
      Time delay = 0.1;
      for (std::size_t i = 0; i < 4; ++i) {
        first.subscribe(receivers[i], delay);
        delay += 2.0;
      }
      for (std::size_t i = 3; i < 7; ++i) {
        second.subscribe(receivers[i], delay);
        delay += 2.0;
      }
      session.run_for(delay + 200);
      for (int round = 0; round < 4; ++round) {
        (void)first.inject_data();
        (void)second.inject_data();
        session.run_for(25);
      }
      out.push_back(first.measure());
      out.push_back(second.measure());
    };
    const Outcome fast = run_script(protocol, true, isp_scenario, script);
    const Outcome interp = run_script(protocol, false, isp_scenario, script);
    expect_equivalent(fast, interp, protocol);
    EXPECT_GT(fast.stats.hits, 0u) << to_string(protocol);
  }
}

TEST(FastpathEquivalenceTest, SaturatedQueuesMatchInterpreted) {
  // Capacitated backbone under sustained overload: the compiled path must
  // replay the same queue admissions, waits, and drop-tail losses as the
  // interpreted one — expect_equivalent covers queued_packets and the
  // congestion drop counters, and the measurements see identical
  // (shifted) arrival times.
  for (const Protocol protocol : all_protocols()) {
    const Script script = [](Session& session,
                             std::vector<Measurement>& out) {
      ChannelHandle ch = session.default_channel();
      Time delay = 0.1;
      for (const NodeId r : isp_receivers(session, 8)) {
        ch.subscribe(r, delay);
        delay += 2.0;
      }
      session.run_for(delay + 200);
      // Queue small enough that a 12-copy burst overflows it at the first
      // branching router; several bursts keep the backlog saturated.
      session.apply_backbone_capacity(400, 6);
      for (int round = 0; round < 5; ++round) {
        for (int b = 0; b < 12; ++b) (void)ch.inject_data();
        session.run_for(15);
      }
      session.run_for(60);
      out.push_back(ch.measure());
    };
    const Outcome fast = run_script(protocol, true, isp_scenario, script);
    const Outcome interp = run_script(protocol, false, isp_scenario, script);
    expect_equivalent(fast, interp, protocol);
    EXPECT_GT(fast.stats.hits, 0u) << to_string(protocol);
    // The overload must actually shed packets, or this test is vacuous.
    EXPECT_GT(interp.counters.drops_queue_full, 0u) << to_string(protocol);
    EXPECT_GT(interp.counters.queued_packets, 0u) << to_string(protocol);
  }
}

TEST(FastpathEquivalenceTest, StaleBlockRejectedAfterEviction) {
  // After the last receiver leaves and soft state decays, the tables the
  // block was compiled from are gone. The horizon/invalidation machinery
  // must reject the stale block — data injected after eviction takes the
  // interpreted drop path, with outputs identical to a never-compiled run.
  const auto make = [] {
    return topo::attach_hosts(topo::make_line(4),
                              {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}},
                              0);
  };
  for (const Protocol protocol : all_protocols()) {
    const Script script = [](Session& session,
                             std::vector<Measurement>& out) {
      ChannelHandle ch = session.default_channel();
      const auto& hosts = session.scenario().hosts;
      ch.subscribe(hosts[2]);
      ch.subscribe(hosts[3]);
      session.run_for(120);
      for (int round = 0; round < 3; ++round) {
        (void)ch.inject_data();
        session.run_for(20);
      }
      out.push_back(ch.measure());
      // Leave, then idle far past every t2 so all entries evict.
      ch.unsubscribe(hosts[2]);
      ch.unsubscribe(hosts[3]);
      session.run_for(400);
      for (int round = 0; round < 3; ++round) {
        (void)ch.inject_data();
        session.run_for(20);
      }
      out.push_back(ch.measure());
    };
    const Outcome fast = run_script(protocol, true, make, script);
    const Outcome interp = run_script(protocol, false, make, script);
    expect_equivalent(fast, interp, protocol);
    EXPECT_GT(fast.stats.hits, 0u) << to_string(protocol);
  }
}

}  // namespace
}  // namespace hbh::harness
