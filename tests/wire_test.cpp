// Wire codec tests: exact round-trips for every packet type, size
// accounting, and rejection of malformed inputs (the property any
// production parser must satisfy: decode(encode(p)) == p, and decode
// never crashes or misparses corrupted buffers).
#include <gtest/gtest.h>

#include "net/wire.hpp"
#include "util/rng.hpp"

namespace hbh::net {
namespace {

Packet base(PacketType type) {
  Packet p;
  p.type = type;
  p.src = Ipv4Addr{10, 0, 1, 1};
  p.dst = Ipv4Addr{10, 0, 2, 1};
  p.channel = Channel{Ipv4Addr{10, 0, 9, 1}, GroupAddr::ssm(3)};
  p.ttl = 17;
  return p;
}

void expect_header_roundtrip(const Packet& in, const Packet& out) {
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.src, in.src);
  EXPECT_EQ(out.dst, in.dst);
  EXPECT_EQ(out.channel, in.channel);
  EXPECT_EQ(out.ttl, in.ttl);
}

TEST(WireTest, JoinRoundTrip) {
  Packet p = base(PacketType::kJoin);
  p.payload = JoinPayload{Ipv4Addr{10, 0, 5, 1}, true, true};
  const auto bytes = encode(p);
  EXPECT_EQ(bytes.size(), encoded_size(p));
  const auto out = decode(bytes);
  ASSERT_TRUE(out.has_value());
  expect_header_roundtrip(p, *out);
  EXPECT_EQ(out->join().receiver, p.join().receiver);
  EXPECT_TRUE(out->join().first);
  EXPECT_TRUE(out->join().fresh);
}

TEST(WireTest, JoinFlagsIndependent) {
  Packet p = base(PacketType::kJoin);
  p.payload = JoinPayload{Ipv4Addr{10, 0, 5, 1}, false, true};
  const auto out = decode(encode(p));
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->join().first);
  EXPECT_TRUE(out->join().fresh);
}

TEST(WireTest, TreeRoundTrip) {
  Packet p = base(PacketType::kTree);
  p.payload = TreePayload{Ipv4Addr{10, 0, 5, 1}, true, Ipv4Addr{10, 0, 7, 1},
                          0xDEADBEEF};
  const auto out = decode(encode(p));
  ASSERT_TRUE(out.has_value());
  expect_header_roundtrip(p, *out);
  EXPECT_EQ(out->tree().target, p.tree().target);
  EXPECT_TRUE(out->tree().marked);
  EXPECT_EQ(out->tree().last_branch, p.tree().last_branch);
  EXPECT_EQ(out->tree().wave, 0xDEADBEEFu);
}

TEST(WireTest, FusionRoundTripWithReceiverList) {
  Packet p = base(PacketType::kFusion);
  p.payload = FusionPayload{
      {Ipv4Addr{10, 0, 5, 1}, Ipv4Addr{10, 0, 6, 1}, Ipv4Addr{10, 0, 7, 1}},
      Ipv4Addr{10, 0, 8, 1}};
  const auto bytes = encode(p);
  EXPECT_EQ(bytes.size(), 20u + 6u + 12u);
  const auto out = decode(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->fusion().origin, p.fusion().origin);
  EXPECT_EQ(out->fusion().receivers, p.fusion().receivers);
}

TEST(WireTest, FusionEmptyListRoundTrip) {
  Packet p = base(PacketType::kFusion);
  p.payload = FusionPayload{{}, Ipv4Addr{10, 0, 8, 1}};
  const auto out = decode(encode(p));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->fusion().receivers.empty());
}

TEST(WireTest, PimJoinRoundTrip) {
  Packet p = base(PacketType::kPimJoin);
  p.payload = PimJoinPayload{Ipv4Addr{10, 0, 3, 1}, Ipv4Addr{10, 0, 4, 1}};
  const auto out = decode(encode(p));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->pim_join().root, p.pim_join().root);
  EXPECT_EQ(out->pim_join().receiver, p.pim_join().receiver);
}

TEST(WireTest, PimPruneRoundTrip) {
  Packet p = base(PacketType::kPimPrune);
  p.payload = PimJoinPayload{Ipv4Addr{10, 0, 3, 1}, Ipv4Addr{10, 0, 4, 1}};
  const auto out = decode(encode(p));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, PacketType::kPimPrune);
  EXPECT_EQ(out->pim_join().root, p.pim_join().root);
  EXPECT_EQ(out->pim_join().receiver, p.pim_join().receiver);
}

TEST(WireTest, DataRoundTripIncludingTimestamp) {
  Packet p = base(PacketType::kData);
  p.payload = DataPayload{0x1122334455667788ull, 42, 123.456, true};
  const auto out = decode(encode(p));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->data().probe, p.data().probe);
  EXPECT_EQ(out->data().seq, 42u);
  EXPECT_DOUBLE_EQ(out->data().sent_at, 123.456);
  EXPECT_TRUE(out->data().encapsulated);
}

TEST(WireTest, TracedRoundTripCarriesContext) {
  Packet p = base(PacketType::kTree);
  p.payload = TreePayload{Ipv4Addr{10, 0, 5, 1}, false, {}, 1};
  p.trace = TraceContext{0xAABBCCDD11223344ull, 0x55667788ull};
  const auto bytes = encode(p);
  // The traced flag costs exactly the 16-byte extension.
  Packet untraced = p;
  untraced.trace = TraceContext{};
  EXPECT_EQ(bytes.size(), encoded_size(untraced) + 16);
  const auto out = decode(bytes);
  ASSERT_TRUE(out.has_value());
  expect_header_roundtrip(p, *out);
  EXPECT_EQ(out->trace, p.trace);
  EXPECT_TRUE(out->trace.active());
}

TEST(WireTest, UntracedPacketDecodesInactiveContext) {
  Packet p = base(PacketType::kJoin);
  p.payload = JoinPayload{Ipv4Addr{10, 0, 5, 1}};
  const auto out = decode(encode(p));
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->trace.active());
}

TEST(WireTest, RejectsTracedFlagWithZeroTraceId) {
  Packet p = base(PacketType::kJoin);
  p.payload = JoinPayload{Ipv4Addr{10, 0, 5, 1}};
  p.trace = TraceContext{7, 9};
  auto bytes = encode(p);
  // Zero out the trace_id field (bytes 20..27, right after the fixed
  // header): the traced flag now promises a context that is not there.
  for (std::size_t i = 20; i < 28; ++i) bytes[i] = 0;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(WireTest, RejectsShortBuffer) {
  Packet p = base(PacketType::kJoin);
  p.payload = JoinPayload{Ipv4Addr{10, 0, 5, 1}};
  auto bytes = encode(p);
  for (std::size_t cut = 1; cut <= bytes.size(); ++cut) {
    const std::span<const std::uint8_t> truncated{bytes.data(),
                                                  bytes.size() - cut};
    EXPECT_FALSE(decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(WireTest, RejectsTrailingGarbage) {
  Packet p = base(PacketType::kData);
  p.payload = DataPayload{};
  auto bytes = encode(p);
  bytes.push_back(0);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(WireTest, RejectsWrongVersion) {
  Packet p = base(PacketType::kJoin);
  p.payload = JoinPayload{Ipv4Addr{10, 0, 5, 1}};
  auto bytes = encode(p);
  bytes[0] = static_cast<std::uint8_t>((2 << 4) | (bytes[0] & 0x0F));
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(WireTest, RejectsUnknownType) {
  Packet p = base(PacketType::kJoin);
  p.payload = JoinPayload{Ipv4Addr{10, 0, 5, 1}};
  auto bytes = encode(p);
  bytes[0] = static_cast<std::uint8_t>((1 << 4) | 0x0F);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(WireTest, RejectsNonZeroReserved) {
  Packet p = base(PacketType::kJoin);
  p.payload = JoinPayload{Ipv4Addr{10, 0, 5, 1}};
  auto bytes = encode(p);
  bytes[3] = 1;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(WireTest, RejectsFusionCountMismatch) {
  Packet p = base(PacketType::kFusion);
  p.payload = FusionPayload{{Ipv4Addr{10, 0, 5, 1}}, Ipv4Addr{10, 0, 8, 1}};
  auto bytes = encode(p);
  bytes[24 + 1] = 2;  // count field says 2, list holds 1
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(WireTest, FuzzDecodeNeverCrashes) {
  // Random buffers must never crash the parser; most should be rejected.
  Rng rng{0xF422};
  std::size_t accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> noise(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    if (decode(noise).has_value()) ++accepted;
  }
  // Version nibble alone rejects ~15/16 of random inputs.
  EXPECT_LT(accepted, 100u);
}

TEST(WireTest, FuzzMutatedPacketsNeverCrash) {
  Rng rng{0xF423};
  Packet p = base(PacketType::kFusion);
  p.payload = FusionPayload{{Ipv4Addr{10, 0, 5, 1}, Ipv4Addr{10, 0, 6, 1}},
                            Ipv4Addr{10, 0, 8, 1}};
  const auto original = encode(p);
  for (int i = 0; i < 5000; ++i) {
    auto mutated = original;
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[idx] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    (void)decode(mutated);  // must not crash; result validity irrelevant
  }
  SUCCEED();
}

TEST(WireTest, EncodedSizeMatchesForAllTypes) {
  Packet join = base(PacketType::kJoin);
  join.payload = JoinPayload{Ipv4Addr{1, 2, 3, 4}};
  Packet tree = base(PacketType::kTree);
  tree.payload = TreePayload{};
  Packet data = base(PacketType::kData);
  data.payload = DataPayload{};
  Packet pim = base(PacketType::kPimJoin);
  pim.payload = PimJoinPayload{};
  for (const Packet* p : {&join, &tree, &data, &pim}) {
    EXPECT_EQ(encode(*p).size(), encoded_size(*p));
  }
}

}  // namespace
}  // namespace hbh::net
