// Rule-level tests for the PIM baseline router: oif installation and
// refresh, join propagation and root termination, RPF data replication,
// and register-tunnel decapsulation at the RP.
#include <gtest/gtest.h>

#include <memory>

#include "mcast/pim/router.hpp"
#include "net/network.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"

namespace hbh::mcast::pim {
namespace {

struct Tap : net::PacketTap {
  struct Seen {
    NodeId from;
    NodeId to;
    net::Packet packet;
  };
  std::vector<Seen> sent;
  void on_transmit(const net::Topology::Edge& e, const net::Packet& p,
                   Time) override {
    sent.push_back(Seen{e.from, e.to, p});
  }
  [[nodiscard]] std::size_t count_from(NodeId node,
                                       net::PacketType type) const {
    std::size_t n = 0;
    for (const auto& s : sent) {
      if (s.from == node && s.packet.type == type) ++n;
    }
    return n;
  }
  void clear() { sent.clear(); }
};

// Star: B(n0) center; neighbors n1..n3; hosts sh on n1, rh on n2, r2h on n3.
class PimRules : public ::testing::Test {
 protected:
  void SetUp() override {
    topo = topo::make_star(4);
    sh = topo.add_node(net::NodeKind::kHost);
    rh = topo.add_node(net::NodeKind::kHost);
    r2h = topo.add_node(net::NodeKind::kHost);
    topo.add_duplex(NodeId{1}, sh, net::LinkAttrs{1, 1});
    topo.add_duplex(NodeId{2}, rh, net::LinkAttrs{1, 1});
    topo.add_duplex(NodeId{3}, r2h, net::LinkAttrs{1, 1});
    routes = std::make_unique<routing::UnicastRouting>(topo);
    net = std::make_unique<net::Network>(sim, topo, *routes);
    for (std::uint32_t i = 0; i < 4; ++i) {
      routers[i] = static_cast<PimRouter*>(
          &net->attach(NodeId{i}, std::make_unique<PimRouter>(cfg)));
    }
    net->set_tap(&tap);
    ch = net::Channel{net->address_of(sh), GroupAddr::ssm(1)};
  }

  net::Packet pim_join(Ipv4Addr root, NodeId from_host) {
    net::Packet p;
    p.src = net->address_of(from_host);
    p.dst = root;
    p.channel = ch;
    p.type = net::PacketType::kPimJoin;
    p.payload = net::PimJoinPayload{root, net->address_of(from_host)};
    return p;
  }

  mcast::McastConfig cfg{};
  net::Topology topo;
  NodeId sh, rh, r2h;
  sim::Simulator sim;
  std::unique_ptr<routing::UnicastRouting> routes;
  std::unique_ptr<net::Network> net;
  PimRouter* routers[4] = {};
  Tap tap;
  net::Channel ch;
};

TEST_F(PimRules, JoinInstallsOifTowardSender) {
  net->send(rh, pim_join(net->address_of(sh), rh));
  sim.run_for(10);
  // n2's oif points at the receiver host; n0 and n1 point back down the path.
  EXPECT_EQ(routers[2]->oifs(ch), std::vector<NodeId>{rh});
  EXPECT_EQ(routers[0]->oifs(ch), std::vector<NodeId>{NodeId{2}});
  EXPECT_EQ(routers[1]->oifs(ch), std::vector<NodeId>{NodeId{0}});
}

TEST_F(PimRules, JoinAddressedToRouterStopsThere) {
  // Shared-tree style: RP is router n0; the join must not travel past it.
  net->send(rh, pim_join(net->address_of(NodeId{0}), rh));
  sim.run_for(10);
  EXPECT_EQ(routers[0]->oifs(ch).size(), 1u);
  EXPECT_TRUE(routers[1]->oifs(ch).empty());
}

TEST_F(PimRules, OifExpiresWithoutRefresh) {
  net->send(rh, pim_join(net->address_of(sh), rh));
  sim.run_for(10);
  ASSERT_FALSE(routers[2]->oifs(ch).empty());
  sim.run_for(100);  // > t2 without refresh
  EXPECT_TRUE(routers[2]->oifs(ch).empty());
}

TEST_F(PimRules, RefreshKeepsOifAlive) {
  for (int i = 0; i < 12; ++i) {
    net->send(rh, pim_join(net->address_of(sh), rh));
    sim.run_for(10);
  }
  EXPECT_FALSE(routers[2]->oifs(ch).empty());
}

TEST_F(PimRules, GroupDataReplicatesToAllOifsExceptIncoming) {
  net->send(rh, pim_join(net->address_of(sh), rh));
  net->send(r2h, pim_join(net->address_of(sh), r2h));
  sim.run_for(10);
  tap.clear();

  net::Packet data;
  data.src = net->address_of(sh);
  data.dst = ch.group.addr();
  data.channel = ch;
  data.type = net::PacketType::kData;
  data.payload = net::DataPayload{1, 0, sim.now(), false};
  net->send_direct(NodeId{1}, NodeId{0}, std::move(data));
  sim.run_for(10);

  // n0 replicated to n2 and n3 (not back to n1).
  EXPECT_EQ(tap.count_from(NodeId{0}, net::PacketType::kData), 2u);
  for (const auto& s : tap.sent) {
    if (s.from == NodeId{0}) {
      EXPECT_NE(s.to, NodeId{1});
    }
  }
}

TEST_F(PimRules, RpDecapsulatesRegisterTunnel) {
  // n0 acts as RP: receivers joined toward it; encapsulated unicast data
  // addressed to n0 must be decapsulated and pushed down the tree.
  net->send(rh, pim_join(net->address_of(NodeId{0}), rh));
  sim.run_for(10);
  tap.clear();

  net::Packet reg;
  reg.src = net->address_of(sh);
  reg.dst = net->address_of(NodeId{0});
  reg.channel = ch;
  reg.type = net::PacketType::kData;
  reg.payload = net::DataPayload{2, 0, sim.now(), /*encapsulated=*/true};
  net->send(sh, std::move(reg));
  sim.run_for(10);

  bool group_addressed_seen = false;
  for (const auto& s : tap.sent) {
    if (s.from == NodeId{0} && s.packet.type == net::PacketType::kData) {
      EXPECT_EQ(s.packet.dst, ch.group.addr());
      EXPECT_FALSE(s.packet.data().encapsulated);
      group_addressed_seen = true;
    }
  }
  EXPECT_TRUE(group_addressed_seen);
}

TEST_F(PimRules, EncapsulatedTransitStaysUnicast) {
  // A register packet passing a non-RP router is plain unicast transit.
  net::Packet reg;
  reg.src = net->address_of(sh);
  reg.dst = net->address_of(NodeId{3});
  reg.channel = ch;
  reg.type = net::PacketType::kData;
  reg.payload = net::DataPayload{3, 0, sim.now(), true};
  net->send(sh, std::move(reg));
  sim.run_for(10);
  // It crossed n1 and n0 still encapsulated.
  for (const auto& s : tap.sent) {
    if (s.packet.type == net::PacketType::kData && s.from == NodeId{0}) {
      EXPECT_TRUE(s.packet.data().encapsulated);
    }
  }
}

TEST_F(PimRules, PruneRemovesOifImmediately) {
  net->send(rh, pim_join(net->address_of(sh), rh));
  sim.run_for(10);
  ASSERT_FALSE(routers[2]->oifs(ch).empty());

  net::Packet prune = pim_join(net->address_of(sh), rh);
  prune.type = net::PacketType::kPimPrune;
  net->send(rh, std::move(prune));
  sim.run_for(10);
  // The whole branch toward the root tore down, long before t2.
  EXPECT_TRUE(routers[2]->oifs(ch).empty());
  EXPECT_TRUE(routers[0]->oifs(ch).empty());
  EXPECT_TRUE(routers[1]->oifs(ch).empty());
}

TEST_F(PimRules, PruneStopsAtSharedBranchPoint) {
  // Two receivers; r1's prune must only remove its own branch: n0 keeps
  // the oif toward n3 (r2's side) and the prune never reaches n1.
  net->send(rh, pim_join(net->address_of(sh), rh));
  net->send(r2h, pim_join(net->address_of(sh), r2h));
  sim.run_for(10);
  ASSERT_EQ(routers[0]->oifs(ch).size(), 2u);

  net::Packet prune = pim_join(net->address_of(sh), rh);
  prune.type = net::PacketType::kPimPrune;
  net->send(rh, std::move(prune));
  sim.run_for(10);
  EXPECT_TRUE(routers[2]->oifs(ch).empty());
  EXPECT_EQ(routers[0]->oifs(ch), std::vector<NodeId>{NodeId{3}});
  EXPECT_FALSE(routers[1]->oifs(ch).empty());  // root side untouched
}

TEST_F(PimRules, PruneOverrideRejoinsWithinAPeriod) {
  // If a shared oif is pruned while another receiver still depends on it,
  // that receiver's next periodic join restores the branch.
  net->send(rh, pim_join(net->address_of(sh), rh));
  sim.run_for(10);
  net::Packet prune = pim_join(net->address_of(sh), rh);
  prune.type = net::PacketType::kPimPrune;
  net->send(rh, std::move(prune));
  sim.run_for(10);
  ASSERT_TRUE(routers[2]->oifs(ch).empty());
  net->send(rh, pim_join(net->address_of(sh), rh));  // rejoin
  sim.run_for(10);
  EXPECT_FALSE(routers[2]->oifs(ch).empty());
}

TEST_F(PimRules, GroupDataWithoutStateIsDropped) {
  net::Packet data;
  data.src = net->address_of(sh);
  data.dst = ch.group.addr();
  data.channel = ch;
  data.type = net::PacketType::kData;
  data.payload = net::DataPayload{4, 0, sim.now(), false};
  net->send_direct(NodeId{1}, NodeId{0}, std::move(data));
  sim.run_for(10);
  EXPECT_EQ(tap.count_from(NodeId{0}, net::PacketType::kData), 0u);
}

}  // namespace
}  // namespace hbh::mcast::pim
