// Performance observatory: phase profiler semantics (nesting, merge,
// jobs-invariance, the HBH_NO_TELEMETRY kill switch) and the baseline
// regression checker behind tools/perf_compare.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/experiment.hpp"
#include "metrics/baseline.hpp"
#include "metrics/json.hpp"
#include "metrics/json_parse.hpp"
#include "metrics/profiler.hpp"
#include "util/profiler.hpp"

namespace hbh {
namespace {

TEST(PhaseProfiler, NestedScopesRecordSlashJoinedPaths) {
  prof::PhaseProfiler profiler;
  {
    const prof::ScopedProfiler install{profiler};
    prof::PhaseScope outer{"outer"};
    { prof::PhaseScope inner{"inner"}; }
    { prof::PhaseScope inner{"inner"}; }
  }
  if (!prof::kProfilerCompiled) {
    // Kill switch: with -DHBH_NO_TELEMETRY=ON even direct PhaseScope use
    // must record nothing.
    EXPECT_TRUE(profiler.phases().empty());
    return;
  }
  ASSERT_EQ(profiler.phases().size(), 2u);
  const prof::PhaseStats& outer = profiler.phases().at("outer");
  const prof::PhaseStats& inner = profiler.phases().at("outer/inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 2u);
  // Steady/CPU clocks are monotonic, and the outer span contains both
  // inner spans.
  EXPECT_GE(outer.wall_ns, inner.wall_ns);
}

TEST(PhaseProfiler, ScopedProfilerRestoresPreviousSink) {
  if (!prof::kProfilerCompiled) GTEST_SKIP() << "profiler compiled out";
  prof::PhaseProfiler a;
  prof::PhaseProfiler b;
  {
    const prof::ScopedProfiler install_a{a};
    { prof::PhaseScope s{"into_a"}; }
    {
      const prof::ScopedProfiler install_b{b};
      { prof::PhaseScope s{"into_b"}; }
    }
    // b uninstalled again: this must land in a.
    { prof::PhaseScope s{"into_a"}; }
  }
  EXPECT_EQ(a.phases().at("into_a").count, 2u);
  EXPECT_EQ(a.phases().count("into_b"), 0u);
  EXPECT_EQ(b.phases().at("into_b").count, 1u);
}

TEST(PhaseProfiler, ScopeWithoutInstalledProfilerIsANoOp) {
  prof::PhaseScope s{"nowhere"};  // must not crash or leak state
  SUCCEED();
}

TEST(PhaseAggregator, MergeAddsCountsPerLabel) {
  if (!prof::kProfilerCompiled) GTEST_SKIP() << "profiler compiled out";
  prof::PhaseAggregator agg;
  prof::PhaseProfiler p1;
  prof::PhaseProfiler p2;
  {
    const prof::ScopedProfiler install{p1};
    { prof::PhaseScope s{"work"}; }
  }
  {
    const prof::ScopedProfiler install{p2};
    { prof::PhaseScope s{"work"}; }
    { prof::PhaseScope s{"extra"}; }
  }
  agg.merge("HBH", p1);
  agg.merge("HBH", p2);
  agg.merge("PIM-SM", p1);
  const prof::PhaseMap hbh = agg.snapshot("HBH");
  EXPECT_EQ(hbh.at("work").count, 2u);
  EXPECT_EQ(hbh.at("extra").count, 1u);
  EXPECT_EQ(agg.snapshot("PIM-SM").at("work").count, 1u);
  EXPECT_TRUE(agg.snapshot("no-such-label").empty());
  agg.reset();
  EXPECT_TRUE(agg.snapshot("HBH").empty());
}

// The contract the perf_profile report section depends on: phase *counts*
// aggregated across the trial pool are identical for any worker count
// (merge order commutes; only wall/CPU timings vary).
TEST(PhaseProfiler, RunAllPhaseCountsAreJobsInvariant) {
  if (!prof::kProfilerCompiled) GTEST_SKIP() << "profiler compiled out";
  harness::ExperimentSpec spec;
  spec.topology = harness::TopoKind::kIsp;
  spec.group_sizes = {4, 8};
  spec.trials = 3;

  auto counts_at = [&](std::size_t jobs) {
    prof::process_profile().reset();
    (void)harness::run_all(spec, jobs);
    std::map<std::string, std::uint64_t> counts;
    for (const auto& [label, phases] : prof::process_profile().snapshot()) {
      for (const auto& [path, stats] : phases) {
        counts[label + ":" + path] = stats.count;
      }
    }
    return counts;
  };
  const auto serial = counts_at(1);
  const auto parallel = counts_at(4);
  prof::process_profile().reset();

  ASSERT_FALSE(serial.empty());
  EXPECT_GT(serial.count("HBH:trial_setup"), 0u);
  EXPECT_GT(serial.count("HBH:warmup/soft_state_refresh/spf"), 0u);
  EXPECT_EQ(serial, parallel);
}

TEST(PerfProfileJson, WritesSchemaAndPhases) {
  prof::PhaseMap phases;
  phases["warmup"] = prof::PhaseStats{.count = 3, .wall_ns = 500, .cpu_ns = 400,
                                      .allocs = 0, .alloc_bytes = 0};
  std::ostringstream out;
  metrics::JsonWriter w{out};
  metrics::write_perf_profile(w, phases);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("hbh.perf_profile/v1"), std::string::npos);
  EXPECT_NE(doc.find("\"warmup\""), std::string::npos);
  EXPECT_NE(doc.find("\"peak_rss_bytes\""), std::string::npos);
  // The artifact must itself be valid JSON.
  metrics::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(metrics::parse_json(doc, parsed, &error)) << error;
  const metrics::JsonValue* count = parsed.find("phases", "warmup", "count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->number, 3.0);
}

TEST(JsonParse, ParsesNestedDocumentsAndEscapes) {
  metrics::JsonValue v;
  std::string error;
  ASSERT_TRUE(metrics::parse_json(
      R"({"a": [1, 2.5, -3e2], "s": "q\"\nA", "b": true, "n": null})", v,
      &error))
      << error;
  const metrics::JsonValue* arr = v.find("a");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_array());
  EXPECT_EQ(arr->array.size(), 3u);
  EXPECT_EQ(arr->array[1].number, 2.5);
  EXPECT_EQ(v.find("s")->string, "q\"\nA");
  EXPECT_TRUE(v.find("b")->boolean);
  EXPECT_EQ(v.find("n")->kind, metrics::JsonValue::Kind::kNull);
}

TEST(JsonParse, RejectsMalformedInput) {
  metrics::JsonValue v;
  std::string error;
  EXPECT_FALSE(metrics::parse_json("{\"a\": }", v, &error));
  EXPECT_FALSE(metrics::parse_json("[1, 2", v, &error));
  EXPECT_FALSE(metrics::parse_json("{} trailing", v, &error));
  EXPECT_FALSE(metrics::parse_json("", v, &error));
}

TEST(Baseline, FlattenUsesNameMembersForArrayElements) {
  metrics::JsonValue v;
  std::string error;
  ASSERT_TRUE(metrics::parse_json(
      R"({"micro": [{"name": "pump", "items_per_second": 42}],
          "run": {"ok": true}})",
      v, &error))
      << error;
  std::map<std::string, double> flat;
  metrics::flatten_numbers(v, "", flat);
  EXPECT_EQ(flat.at("micro.pump.items_per_second"), 42.0);
  EXPECT_EQ(flat.at("run.ok"), 1.0);  // bools flatten to 0/1
}

metrics::Baseline make_baseline(const std::string& metrics_body) {
  metrics::JsonValue doc;
  std::string error;
  const std::string text = R"({"schema": "hbh.perf_baseline/v1",
                               "bench": "t", "metrics": {)" +
                           metrics_body + "}}";
  EXPECT_TRUE(metrics::parse_json(text, doc, &error)) << error;
  metrics::Baseline b;
  EXPECT_TRUE(metrics::parse_baseline(doc, b, &error)) << error;
  return b;
}

metrics::JsonValue parse_current(const std::string& text) {
  metrics::JsonValue v;
  std::string error;
  EXPECT_TRUE(metrics::parse_json(text, v, &error)) << error;
  return v;
}

TEST(Baseline, RejectsWrongSchema) {
  metrics::JsonValue doc;
  std::string error;
  ASSERT_TRUE(metrics::parse_json(
      R"({"schema": "hbh.run_report/v1", "metrics": {}})", doc, &error));
  metrics::Baseline b;
  EXPECT_FALSE(metrics::parse_baseline(doc, b, &error));
}

TEST(Baseline, HigherDirectionFlagsOnlyDrops) {
  const metrics::Baseline b = make_baseline(
      R"("tput": {"value": 100, "noise": 0.2, "direction": "higher"})");
  auto status = [&](double current, double tolerance = 1.0) {
    const std::string doc = "{\"tput\": " + std::to_string(current) + "}";
    return metrics::compare_to_baseline(b, parse_current(doc), tolerance)
        .metrics.at(0)
        .status;
  };
  EXPECT_EQ(status(95), metrics::MetricStatus::kPass);
  EXPECT_EQ(status(500), metrics::MetricStatus::kPass);  // faster is fine
  EXPECT_EQ(status(79), metrics::MetricStatus::kRegressed);
  // --tolerance scales the allowed spread.
  EXPECT_EQ(status(79, 2.0), metrics::MetricStatus::kPass);
  EXPECT_EQ(status(95, 0.01), metrics::MetricStatus::kRegressed);
}

TEST(Baseline, BandDirectionFlagsBothSides) {
  const metrics::Baseline b = make_baseline(
      R"("pkts": {"value": 1000, "noise": 0.1, "direction": "band"})");
  auto status = [&](double current) {
    const std::string doc = "{\"pkts\": " + std::to_string(current) + "}";
    return metrics::compare_to_baseline(b, parse_current(doc))
        .metrics.at(0)
        .status;
  };
  EXPECT_EQ(status(1000), metrics::MetricStatus::kPass);
  EXPECT_EQ(status(1099), metrics::MetricStatus::kPass);
  EXPECT_EQ(status(1200), metrics::MetricStatus::kRegressed);
  EXPECT_EQ(status(800), metrics::MetricStatus::kRegressed);
}

TEST(Baseline, LowerDirectionFlagsOnlyGrowth) {
  const metrics::Baseline b = make_baseline(
      R"("rss": {"value": 1000, "noise": 0.5, "direction": "lower"})");
  auto status = [&](double current) {
    const std::string doc = "{\"rss\": " + std::to_string(current) + "}";
    return metrics::compare_to_baseline(b, parse_current(doc))
        .metrics.at(0)
        .status;
  };
  EXPECT_EQ(status(10), metrics::MetricStatus::kPass);  // shrinking is fine
  EXPECT_EQ(status(1400), metrics::MetricStatus::kPass);
  EXPECT_EQ(status(1600), metrics::MetricStatus::kRegressed);
}

TEST(Baseline, MissingMetricFailsTheComparison) {
  const metrics::Baseline b = make_baseline(
      R"("gone": {"value": 1, "noise": 0.5, "direction": "band"})");
  const metrics::CompareReport report =
      metrics::compare_to_baseline(b, parse_current(R"({"other": 1})"));
  EXPECT_EQ(report.missing(), 1u);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace hbh
