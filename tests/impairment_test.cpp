// The fault-injection determinism contract (docs/RESILIENCE.md):
// per-link RNG streams derived from (plane seed, link id), fixed draw
// consumption per transmission. These tests pin the contract directly on
// ImpairmentPlane, then check the Network applies decisions (and counts
// them) on a real link.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/impairment.hpp"
#include "net/network.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"

namespace hbh::net {
namespace {

Impairment lossy(double loss) {
  Impairment imp;
  imp.loss = loss;
  return imp;
}

TEST(ImpairmentPlaneTest, TransparentByDefault) {
  ImpairmentPlane plane;
  EXPECT_FALSE(plane.any_active());
  EXPECT_EQ(plane.get(LinkId{0}), nullptr);
  const ImpairmentDecision d = plane.decide(LinkId{0}, 0.0);
  EXPECT_FALSE(d.drop);
  EXPECT_FALSE(d.duplicate);
  EXPECT_FALSE(d.link_down);
  EXPECT_EQ(d.extra_delay, 0.0);
}

TEST(ImpairmentPlaneTest, SameSeedSameDecisionSequence) {
  ImpairmentPlane a{42};
  ImpairmentPlane b{42};
  Impairment imp;
  imp.loss = 0.3;
  imp.duplicate = 0.2;
  imp.reorder = 0.5;
  imp.jitter = 4.0;
  a.set(LinkId{3}, imp);
  b.set(LinkId{3}, imp);
  for (int i = 0; i < 500; ++i) {
    const auto da = a.decide(LinkId{3}, 0.0);
    const auto db = b.decide(LinkId{3}, 0.0);
    ASSERT_EQ(da.drop, db.drop) << i;
    ASSERT_EQ(da.duplicate, db.duplicate) << i;
    ASSERT_EQ(da.extra_delay, db.extra_delay) << i;
    ASSERT_EQ(da.dup_extra_delay, db.dup_extra_delay) << i;
  }
}

TEST(ImpairmentPlaneTest, PerLinkStreamsAreIndependent) {
  // Link 1's outcomes must not move when link 2 appears and consumes
  // draws of its own.
  ImpairmentPlane alone{7};
  alone.set(LinkId{1}, lossy(0.5));
  std::vector<bool> baseline;
  for (int i = 0; i < 200; ++i) {
    baseline.push_back(alone.decide(LinkId{1}, 0.0).drop);
  }

  ImpairmentPlane crowded{7};
  crowded.set(LinkId{1}, lossy(0.5));
  crowded.set(LinkId{2}, lossy(0.5));
  for (std::size_t i = 0; i < 200; ++i) {
    (void)crowded.decide(LinkId{2}, 0.0);  // interleave foreign draws
    EXPECT_EQ(crowded.decide(LinkId{1}, 0.0).drop, baseline[i]) << i;
  }
}

TEST(ImpairmentPlaneTest, FixedConsumptionKeepsOutcomesPairedAcrossConfigs) {
  // Raising the loss probability must not shift the reorder outcomes of
  // the packets that still survive — five draws happen either way.
  Impairment gentle;
  gentle.reorder = 0.5;
  gentle.jitter = 2.0;
  Impairment harsh = gentle;
  harsh.loss = 0.4;

  ImpairmentPlane a{99};
  ImpairmentPlane b{99};
  a.set(LinkId{0}, gentle);
  b.set(LinkId{0}, harsh);
  for (int i = 0; i < 300; ++i) {
    const auto da = a.decide(LinkId{0}, 0.0);
    const auto db = b.decide(LinkId{0}, 0.0);
    if (!db.drop) {
      ASSERT_EQ(da.extra_delay, db.extra_delay) << i;
      ASSERT_EQ(da.duplicate, db.duplicate) << i;
    }
  }
}

TEST(ImpairmentPlaneTest, LossRateApproximatesConfiguredProbability) {
  ImpairmentPlane plane{123};
  plane.set(LinkId{0}, lossy(0.1));
  int drops = 0;
  for (int i = 0; i < 2000; ++i) {
    if (plane.decide(LinkId{0}, 0.0).drop) ++drops;
  }
  EXPECT_GT(drops, 120);  // ~200 expected
  EXPECT_LT(drops, 290);
}

TEST(ImpairmentPlaneTest, DownWindowsBlackholeTransmissions) {
  ImpairmentPlane plane{1};
  Impairment imp;
  imp.down_windows = {{10.0, 20.0}, {30.0, 35.0}};
  plane.set(LinkId{0}, imp);
  EXPECT_FALSE(plane.decide(LinkId{0}, 9.9).link_down);
  EXPECT_TRUE(plane.decide(LinkId{0}, 10.0).link_down);
  EXPECT_TRUE(plane.decide(LinkId{0}, 19.9).link_down);
  EXPECT_FALSE(plane.decide(LinkId{0}, 20.0).link_down);
  EXPECT_TRUE(plane.decide(LinkId{0}, 32.0).link_down);
  EXPECT_FALSE(plane.decide(LinkId{0}, 40.0).link_down);
}

TEST(ImpairmentPlaneTest, ReseedRestartsTheStreams) {
  ImpairmentPlane plane{5};
  plane.set(LinkId{0}, lossy(0.5));
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) {
    first.push_back(plane.decide(LinkId{0}, 0.0).drop);
  }
  plane.reseed(5);  // same seed: stream starts over
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(plane.decide(LinkId{0}, 0.0).drop, first[i]) << i;
  }
}

TEST(ImpairmentPlaneTest, ClearAllLiftsEverything) {
  ImpairmentPlane plane;
  plane.set(LinkId{0}, lossy(1.0));
  plane.set(LinkId{4}, lossy(1.0));
  EXPECT_TRUE(plane.any_active());
  plane.clear_all();
  EXPECT_FALSE(plane.any_active());
  EXPECT_FALSE(plane.decide(LinkId{0}, 0.0).drop);
}

// ---- Network integration: decisions actually applied on a link. ----

struct NetFixture {
  sim::Simulator sim;
  Topology topo = topo::make_line(2);
  std::unique_ptr<routing::UnicastRouting> routes =
      std::make_unique<routing::UnicastRouting>(topo);
  Network net{sim, topo, *routes};

  Packet data() {
    Packet p;
    p.src = net.address_of(NodeId{0});
    p.dst = net.address_of(NodeId{1});
    p.type = PacketType::kData;
    p.payload = DataPayload{1, 0, 0.0};
    return p;
  }
};

TEST(NetworkImpairmentTest, FullLossDropsAndCounts) {
  NetFixture f;
  f.net.set_impairment(NodeId{0}, NodeId{1}, lossy(1.0));
  f.net.send(NodeId{0}, f.data());
  f.sim.run_for(10);
  EXPECT_EQ(f.net.counters().drops_loss, 1u);
  EXPECT_EQ(f.net.agent(NodeId{1}).stats().rx_total(), 0u);
}

TEST(NetworkImpairmentTest, DuplicationDeliversTwiceAndCounts) {
  NetFixture f;
  Impairment imp;
  imp.duplicate = 1.0;
  f.net.set_impairment(NodeId{0}, NodeId{1}, imp);
  f.net.send(NodeId{0}, f.data());
  f.sim.run_for(10);
  EXPECT_EQ(f.net.counters().duplicates_injected, 1u);
  EXPECT_EQ(f.net.counters().transmissions, 2u);
  EXPECT_EQ(f.net.agent(NodeId{1}).stats().rx(PacketType::kData), 2u);
}

TEST(NetworkImpairmentTest, ReorderDelaysTheCopy) {
  NetFixture f;
  Impairment imp;
  imp.reorder = 1.0;
  imp.jitter = 5.0;
  f.net.set_impairment(NodeId{0}, NodeId{1}, imp);
  f.net.send(NodeId{0}, f.data());
  f.sim.run_for(0.999);  // nominal delay is 1.0; jitter adds more
  EXPECT_EQ(f.net.agent(NodeId{1}).stats().rx_total(), 0u);
  f.sim.run_for(10);
  EXPECT_EQ(f.net.agent(NodeId{1}).stats().rx_total(), 1u);
  EXPECT_EQ(f.net.counters().reordered, 1u);
}

TEST(NetworkImpairmentTest, DownEdgeRefusesTransmission) {
  NetFixture f;
  // Materialize the route while the link is up (routing computes SPFs
  // lazily); without an invalidate() it stays stale after the edge drops.
  ASSERT_EQ(f.routes->next_hop(NodeId{0}, NodeId{1}), NodeId{1});
  const auto link = f.topo.find_link(NodeId{0}, NodeId{1});
  ASSERT_TRUE(link.has_value());
  f.topo.set_link_up(*link, false);
  // Note: routing still points through the (only) link; the fabric drops.
  f.net.send(NodeId{0}, f.data());
  f.sim.run_for(10);
  EXPECT_EQ(f.net.counters().drops_link_down, 1u);
  EXPECT_EQ(f.net.agent(NodeId{1}).stats().rx_total(), 0u);
}

TEST(NetworkImpairmentTest, BlackholeWindowOnlyDropsInsideWindow) {
  NetFixture f;
  Impairment imp;
  imp.down_windows = {{5.0, 15.0}};
  f.net.set_impairment(NodeId{0}, NodeId{1}, imp);
  f.net.send(NodeId{0}, f.data());  // t=0: before the window
  f.sim.run_for(10);                // now t=10: inside it
  f.net.send(NodeId{0}, f.data());
  f.sim.run_for(10);  // now t=20: after it
  f.net.send(NodeId{0}, f.data());
  f.sim.run_for(10);
  EXPECT_EQ(f.net.counters().drops_link_down, 1u);
  EXPECT_EQ(f.net.agent(NodeId{1}).stats().rx(PacketType::kData), 2u);
}

}  // namespace
}  // namespace hbh::net
