// Resilience tests: link-cost changes / soft link failures with IGP
// reconvergence, and multiple simultaneous channels.
//
// Soft state is the protocols' fault-tolerance story: after routing
// changes, join/tree refreshes re-anchor the tree on the new paths within
// a few periods, with no explicit teardown signalling.
#include <gtest/gtest.h>

#include "harness/session.hpp"
#include "mcast/hbh/router.hpp"
#include "mcast/hbh/source.hpp"
#include "routing/unicast.hpp"
#include "topo/builders.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"

namespace hbh::harness {
namespace {

TEST(LinkFailureTest, HbhReanchorsAfterFailure) {
  // Ring topology: two disjoint paths between any pair, so a failed link
  // always has an alternative.
  auto scenario = topo::attach_hosts(
      topo::make_ring(6),
      {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}, NodeId{5}}, 0);
  Session session{scenario, Protocol::kHbh};
  const NodeId receiver = scenario.hosts[3];
  session.subscribe(receiver);
  session.run_for(100);
  const Measurement before = session.measure();
  ASSERT_TRUE(before.delivered_exactly_once());
  ASSERT_DOUBLE_EQ(before.mean_delay, 5.0);  // 0-1-2-3 plus access links

  // Fail a link on the active path; routing reconverges instantly, the
  // multicast tree within a few soft-state periods.
  session.fail_link(NodeId{1}, NodeId{2});
  session.run_for(200);
  const Measurement after = session.measure();
  EXPECT_TRUE(after.delivered_exactly_once());
  EXPECT_DOUBLE_EQ(after.mean_delay, 5.0);  // other way round: 0-5-4-3
}

TEST(LinkFailureTest, AllProtocolsSurviveFailureOnIsp) {
  Rng rng{404};
  auto base = topo::make_isp();
  topo::randomize_costs(base.topo, rng);
  const auto receivers = rng.sample(base.candidate_receivers(), 8);
  for (const Protocol p : all_protocols()) {
    Session session{base, p};
    Time delay = 0.1;
    for (const NodeId r : receivers) {
      session.subscribe(r, delay);
      delay += 1.0;
    }
    session.run_for(400);
    ASSERT_TRUE(session.measure().delivered_exactly_once()) << to_string(p);

    // Fail the most used backbone link of the measured tree.
    const Measurement m = session.measure();
    NodeId a = kNoNode;
    NodeId b = kNoNode;
    for (const auto& [link, copies] : m.per_link) {
      const auto kind_from = session.scenario().topo.kind(link.first);
      const auto kind_to = session.scenario().topo.kind(link.second);
      if (kind_from == net::NodeKind::kRouter &&
          kind_to == net::NodeKind::kRouter) {
        a = link.first;
        b = link.second;
        break;
      }
    }
    if (!a.valid()) continue;  // tree may be access-links only (small group)
    session.fail_link(a, b);
    session.run_for(500);
    const Measurement after = session.measure();
    if (p == Protocol::kReunite && !after.delivered_exactly_once()) {
      continue;  // REUNITE may still be reconfiguring; others must be done
    }
    EXPECT_TRUE(after.delivered_exactly_once())
        << to_string(p) << " after failing " << to_string(a) << "-"
        << to_string(b);
  }
}

TEST(LinkFailureTest, CostChangeMovesHbhOntoCheaperPath) {
  auto scenario = topo::attach_hosts(
      topo::make_ring(4), {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}, 0);
  Session session{scenario, Protocol::kHbh};
  session.subscribe(scenario.hosts[2]);
  session.run_for(100);
  ASSERT_DOUBLE_EQ(session.measure().mean_delay, 4.0);  // two hops either way

  // Make the 0-1-2 side dramatically cheaper AND faster.
  session.set_link_cost(NodeId{0}, NodeId{1}, 0.25);
  session.set_link_cost(NodeId{1}, NodeId{2}, 0.25);
  session.run_for(200);
  const Measurement m = session.measure();
  EXPECT_TRUE(m.delivered_exactly_once());
  EXPECT_DOUBLE_EQ(m.mean_delay, 2.5);  // 1 + 0.25 + 0.25 + 1
}

TEST(MultiChannelTest, TwoHbhSourcesCoexist) {
  // Two independent channels with different sources on one network: the
  // per-channel tables must not interfere.
  net::Topology t = topo::make_line(4);
  auto scenario = topo::attach_hosts(
      std::move(t), {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}, 0);

  sim::Simulator sim;
  routing::UnicastRouting routes{scenario.topo};
  net::Network net{sim, scenario.topo, routes};
  const mcast::McastConfig cfg{};

  for (const NodeId r : scenario.routers) {
    net.attach(r, std::make_unique<mcast::hbh::HbhRouter>(cfg));
  }
  // Sources at both ends (hosts 4 and 7); receivers at hosts 5 and 6.
  const net::Channel ch_a{net.address_of(scenario.hosts[0]), GroupAddr::ssm(1)};
  const net::Channel ch_b{net.address_of(scenario.hosts[3]), GroupAddr::ssm(2)};
  auto* src_a = static_cast<mcast::hbh::HbhSource*>(&net.attach(
      scenario.hosts[0], std::make_unique<mcast::hbh::HbhSource>(ch_a, cfg)));
  auto* src_b = static_cast<mcast::hbh::HbhSource*>(&net.attach(
      scenario.hosts[3], std::make_unique<mcast::hbh::HbhSource>(ch_b, cfg)));
  auto* rx1 = static_cast<mcast::ReceiverHost*>(
      &net.attach(scenario.hosts[1], std::make_unique<mcast::ReceiverHost>(
                                         mcast::JoinStyle::kSourceJoin, cfg)));
  auto* rx2 = static_cast<mcast::ReceiverHost*>(
      &net.attach(scenario.hosts[2], std::make_unique<mcast::ReceiverHost>(
                                         mcast::JoinStyle::kSourceJoin, cfg)));
  net.start();

  rx1->subscribe(ch_a);
  rx1->subscribe(ch_b);
  rx2->subscribe(ch_b);
  sim.run_for(100);

  src_a->send_data(1, 0);
  src_b->send_data(2, 0);
  sim.run_for(60);

  // rx1 got one packet from each channel; rx2 only channel B.
  std::size_t rx1_a = 0;
  std::size_t rx1_b = 0;
  for (const auto& d : rx1->deliveries()) {
    (d.channel == ch_a ? rx1_a : rx1_b) += 1;
  }
  EXPECT_EQ(rx1_a, 1u);
  EXPECT_EQ(rx1_b, 1u);
  ASSERT_EQ(rx2->deliveries().size(), 1u);
  EXPECT_EQ(rx2->deliveries()[0].channel, ch_b);
}

TEST(MultiChannelTest, RouterKeepsIndependentStatePerChannel) {
  net::Topology t = topo::make_line(3);
  auto scenario =
      topo::attach_hosts(std::move(t), {NodeId{0}, NodeId{1}, NodeId{2}}, 1);

  sim::Simulator sim;
  routing::UnicastRouting routes{scenario.topo};
  net::Network net{sim, scenario.topo, routes};
  const mcast::McastConfig cfg{};
  for (const NodeId r : scenario.routers) {
    net.attach(r, std::make_unique<mcast::hbh::HbhRouter>(cfg));
  }
  const net::Channel ch_a{net.address_of(scenario.hosts[1]), GroupAddr::ssm(1)};
  const net::Channel ch_b{net.address_of(scenario.hosts[1]), GroupAddr::ssm(2)};
  net.attach(scenario.hosts[1],
             std::make_unique<mcast::hbh::HbhSource>(ch_a, cfg));
  // ch_b has no live source agent: joins for it just sink at the host.
  auto* rx = static_cast<mcast::ReceiverHost*>(
      &net.attach(scenario.hosts[0], std::make_unique<mcast::ReceiverHost>(
                                         mcast::JoinStyle::kSourceJoin, cfg)));
  net.start();
  rx->subscribe(ch_a);
  rx->subscribe(ch_b);
  sim.run_for(80);

  const auto& router = static_cast<const mcast::hbh::HbhRouter&>(
      net.agent(scenario.routers[0]));
  EXPECT_NE(router.state(ch_a), nullptr);   // tree state for the live channel
  EXPECT_EQ(router.state(ch_b), nullptr);   // none for the dead one
}

}  // namespace
}  // namespace hbh::harness
