// Resilience tests: link failures with IGP reconvergence, deterministic
// fault injection (loss / reordering / duplication), router crash and
// restart, and multiple simultaneous channels.
//
// Soft state is the protocols' fault-tolerance story: after routing
// changes, join/tree refreshes re-anchor the tree on the new paths within
// a few periods, with no explicit teardown signalling. The fault-injection
// cases (docs/RESILIENCE.md) put numbers and determinism guarantees on
// that story.
#include <gtest/gtest.h>

#include "harness/fault_plan.hpp"
#include "harness/session.hpp"
#include "mcast/hbh/router.hpp"
#include "mcast/hbh/source.hpp"
#include "routing/unicast.hpp"
#include "topo/builders.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"

namespace hbh::harness {
namespace {

/// All router-router duplex pairs (a < b) of a scenario.
std::vector<std::pair<NodeId, NodeId>> backbone_links(
    const topo::Scenario& scenario) {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (std::size_t i = 0; i < scenario.topo.link_count(); ++i) {
    const auto& e = scenario.topo.edge(LinkId{static_cast<std::uint32_t>(i)});
    if (e.from.index() < e.to.index() &&
        scenario.topo.kind(e.from) == net::NodeKind::kRouter &&
        scenario.topo.kind(e.to) == net::NodeKind::kRouter) {
      out.emplace_back(e.from, e.to);
    }
  }
  return out;
}

/// 5% loss + reordering, the acceptance scenario of docs/RESILIENCE.md.
net::Impairment lossy_reordering() {
  net::Impairment imp;
  imp.loss = 0.05;
  imp.reorder = 0.25;
  imp.jitter = 2.0;
  return imp;
}

TEST(LinkFailureTest, HbhReanchorsAfterFailure) {
  // Ring topology: two disjoint paths between any pair, so a failed link
  // always has an alternative.
  auto scenario = topo::attach_hosts(
      topo::make_ring(6),
      {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}, NodeId{5}}, 0);
  Session session{scenario, Protocol::kHbh};
  const NodeId receiver = scenario.hosts[3];
  session.subscribe(receiver);
  session.run_for(100);
  const Measurement before = session.measure();
  ASSERT_TRUE(before.delivered_exactly_once());
  ASSERT_DOUBLE_EQ(before.mean_delay, 5.0);  // 0-1-2-3 plus access links

  // Fail a link on the active path; routing reconverges instantly, the
  // multicast tree within a few soft-state periods.
  session.fail_link(NodeId{1}, NodeId{2});
  session.run_for(200);
  const Measurement after = session.measure();
  EXPECT_TRUE(after.delivered_exactly_once());
  EXPECT_DOUBLE_EQ(after.mean_delay, 5.0);  // other way round: 0-5-4-3
}

TEST(LinkFailureTest, AllProtocolsSurviveFailureOnIsp) {
  Rng rng{404};
  auto base = topo::make_isp();
  topo::randomize_costs(base.topo, rng);
  const auto receivers = rng.sample(base.candidate_receivers(), 8);
  for (const Protocol p : all_protocols()) {
    Session session{base, p};
    Time delay = 0.1;
    for (const NodeId r : receivers) {
      session.subscribe(r, delay);
      delay += 1.0;
    }
    session.run_for(400);
    ASSERT_TRUE(session.measure().delivered_exactly_once()) << to_string(p);

    // Fail the most used backbone link of the measured tree.
    const Measurement m = session.measure();
    NodeId a = kNoNode;
    NodeId b = kNoNode;
    for (const auto& [link, copies] : m.per_link) {
      const auto kind_from = session.scenario().topo.kind(link.first);
      const auto kind_to = session.scenario().topo.kind(link.second);
      if (kind_from == net::NodeKind::kRouter &&
          kind_to == net::NodeKind::kRouter) {
        a = link.first;
        b = link.second;
        break;
      }
    }
    if (!a.valid()) continue;  // tree may be access-links only (small group)
    session.fail_link(a, b);
    session.run_for(500);
    const Measurement after = session.measure();
    if (p == Protocol::kReunite && !after.delivered_exactly_once()) {
      continue;  // REUNITE may still be reconfiguring; others must be done
    }
    EXPECT_TRUE(after.delivered_exactly_once())
        << to_string(p) << " after failing " << to_string(a) << "-"
        << to_string(b);
  }
}

TEST(LinkFailureTest, CostChangeMovesHbhOntoCheaperPath) {
  auto scenario = topo::attach_hosts(
      topo::make_ring(4), {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}, 0);
  Session session{scenario, Protocol::kHbh};
  session.subscribe(scenario.hosts[2]);
  session.run_for(100);
  ASSERT_DOUBLE_EQ(session.measure().mean_delay, 4.0);  // two hops either way

  // Make the 0-1-2 side dramatically cheaper AND faster.
  session.set_link_cost(NodeId{0}, NodeId{1}, 0.25);
  session.set_link_cost(NodeId{1}, NodeId{2}, 0.25);
  session.run_for(200);
  const Measurement m = session.measure();
  EXPECT_TRUE(m.delivered_exactly_once());
  EXPECT_DOUBLE_EQ(m.mean_delay, 2.5);  // 1 + 0.25 + 0.25 + 1
}

TEST(LinkFailureTest, SetLinkDownRemovesEdgeAndSetLinkUpRestoresIt) {
  // Ring: the detour exists, so a *hard* down must move traffic the other
  // way round — and repair must move it back.
  auto scenario = topo::attach_hosts(
      topo::make_ring(6),
      {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}, NodeId{5}}, 0);
  Session session{scenario, Protocol::kHbh};
  session.subscribe(scenario.hosts[3]);
  session.run_for(100);
  ASSERT_DOUBLE_EQ(session.measure().mean_delay, 5.0);  // 0-1-2-3 + access

  session.set_link_down(NodeId{1}, NodeId{2});
  const auto link = session.scenario().topo.find_link(NodeId{1}, NodeId{2});
  ASSERT_TRUE(link.has_value());
  EXPECT_FALSE(session.scenario().topo.link_up(*link));
  // Routing no longer crosses the down edge, in either direction.
  EXPECT_EQ(session.routes().next_hop(NodeId{1}, NodeId{2}), NodeId{0});
  session.run_for(200);
  const Measurement rerouted = session.measure();
  EXPECT_TRUE(rerouted.delivered_exactly_once());
  EXPECT_DOUBLE_EQ(rerouted.mean_delay, 5.0);  // 0-5-4-3 + access
  for (const auto& [l, copies] : rerouted.per_link) {
    EXPECT_FALSE(l.first == NodeId{1} && l.second == NodeId{2});
    EXPECT_FALSE(l.first == NodeId{2} && l.second == NodeId{1});
  }

  session.set_link_up(NodeId{1}, NodeId{2});
  EXPECT_TRUE(session.scenario().topo.link_up(*link));
  EXPECT_EQ(session.routes().next_hop(NodeId{1}, NodeId{2}), NodeId{2});
  session.run_for(200);
  EXPECT_TRUE(session.measure().delivered_exactly_once());
}

TEST(FaultInjectionTest, AllProtocolsDeliverAfterLossReorderDuplication) {
  Rng rng{2024};
  auto base = topo::make_isp();
  topo::randomize_costs(base.topo, rng);
  const auto receivers = rng.sample(base.candidate_receivers(), 8);
  const auto links = backbone_links(base);
  net::Impairment imp = lossy_reordering();
  imp.duplicate = 0.05;
  for (const Protocol p : all_protocols()) {
    Session session{base, p};
    Time delay = 0.1;
    for (const NodeId r : receivers) {
      session.subscribe(r, delay);
      delay += 1.0;
    }
    // REUNITE tears old branches down lazily; give it the same settling
    // time as the other ISP scenarios before judging the baseline.
    session.run_for(400);
    ASSERT_TRUE(session.measure().delivered_exactly_once()) << to_string(p);

    // Stress: the whole backbone lossy, reordering, and duplicating for
    // 300 time units while control traffic keeps flowing.
    session.seed_impairments(0xD15EA5E);
    for (const auto& [a, b] : links) session.impair_link(a, b, imp);
    session.run_for(300);

    // After the fabric heals, soft state must reconverge: no receiver
    // starved. HBH and PIM must also shed every duplicate path. REUNITE
    // may legitimately keep one: reordering can anchor a receiver at two
    // MFTs whose dst/entry states keep each other refreshed — the Fig. 3
    // duplicate-copies pathology of dst-based anchoring that HBH's
    // branch-addressed trees were designed to eliminate.
    session.clear_impairments();
    session.run_for(200);
    const Measurement healed = session.measure();
    EXPECT_TRUE(healed.missing.empty()) << to_string(p);
    if (p != Protocol::kReunite) {
      EXPECT_TRUE(healed.delivered_exactly_once()) << to_string(p);
    }
  }
}

TEST(FaultInjectionTest, SameSeedRunsAreIdentical) {
  // The acceptance scenario: 5% loss + reordering over the ISP backbone,
  // two runs with the same seed. Every probe outcome and every fabric
  // counter must match exactly.
  const auto run = [] {
    Rng rng{77};
    auto base = topo::make_isp();
    topo::randomize_costs(base.topo, rng);
    const auto receivers = rng.sample(base.candidate_receivers(), 6);
    auto session = std::make_unique<Session>(std::move(base), Protocol::kHbh);
    Time delay = 0.1;
    for (const NodeId r : receivers) {
      session->subscribe(r, delay);
      delay += 1.0;
    }
    session->run_for(150);
    session->seed_impairments(424242);
    for (const auto& [a, b] : backbone_links(session->scenario())) {
      session->impair_link(a, b, lossy_reordering());
    }
    return session;
  };

  auto s1 = run();
  auto s2 = run();
  for (int probe = 0; probe < 6; ++probe) {
    const Measurement m1 = s1->measure();
    const Measurement m2 = s2->measure();
    ASSERT_EQ(m1.tree_cost, m2.tree_cost) << probe;
    ASSERT_EQ(m1.missing, m2.missing) << probe;
    ASSERT_EQ(m1.duplicated, m2.duplicated) << probe;
    ASSERT_EQ(m1.per_link, m2.per_link) << probe;
  }
  const net::NetworkCounters& c1 = s1->network().counters();
  const net::NetworkCounters& c2 = s2->network().counters();
  EXPECT_EQ(c1.transmissions, c2.transmissions);
  EXPECT_EQ(c1.drops_loss, c2.drops_loss);
  EXPECT_EQ(c1.duplicates_injected, c2.duplicates_injected);
  EXPECT_EQ(c1.reordered, c2.reordered);
}

TEST(FaultInjectionTest, DuplicateDataIsNotAmplifiedByBranchingRouters) {
  // A duplicated *data* packet crossing a replicating router must not be
  // replicated a second time (ReplicationGuard idempotence): receivers
  // may see the duplicate copy, but fan-out stays linear.
  auto scenario = topo::attach_hosts(
      topo::make_line(3), {NodeId{0}, NodeId{1}, NodeId{2}}, 0);
  for (const Protocol p : {Protocol::kHbh, Protocol::kReunite}) {
    Session session{scenario, p};
    session.subscribe(scenario.hosts[1]);
    session.subscribe(scenario.hosts[2]);
    session.run_for(120);
    ASSERT_TRUE(session.measure().delivered_exactly_once()) << to_string(p);

    net::Impairment dup;
    dup.duplicate = 1.0;  // every source-side transmission duplicated
    session.seed_impairments(9);
    session.impair_link(NodeId{0}, NodeId{1}, dup);
    const Measurement m = session.measure();
    // Every receiver saw the probe; each at most twice (one injected
    // duplicate), never 4x/8x as re-replication would produce.
    EXPECT_TRUE(m.missing.empty()) << to_string(p);
    EXPECT_LE(m.max_link_copies, 2u) << to_string(p);
  }
}

TEST(CrashRestartTest, AllProtocolsRecoverFromMidTreeCrash) {
  Rng rng{31337};
  auto base = topo::make_isp();
  const auto receivers = rng.sample(base.candidate_receivers(), 8);
  for (const Protocol p : all_protocols()) {
    Session session{base, p};
    Time delay = 0.1;
    for (const NodeId r : receivers) {
      session.subscribe(r, delay);
      delay += 1.0;
    }
    session.run_for(200);
    ASSERT_TRUE(session.measure().delivered_exactly_once()) << to_string(p);

    // Crash the busiest on-tree backbone router (never the source's or
    // the RP's — those hold root state this harness can't rebuild).
    const Measurement before = session.measure();
    NodeId victim = kNoNode;
    NodeId src_router = kNoNode;  // the router the source host hangs off
    for (std::size_t i = 0; i < session.scenario().hosts.size(); ++i) {
      if (session.scenario().hosts[i] == session.scenario().source_host) {
        src_router = session.scenario().routers[i];
      }
    }
    for (const auto& [link, copies] : before.per_link) {
      const auto kind = session.scenario().topo.kind(link.second);
      if (kind == net::NodeKind::kRouter && link.second != src_router &&
          link.second != session.rp()) {
        victim = link.second;
        break;
      }
    }
    ASSERT_TRUE(victim.valid()) << to_string(p);
    session.crash_router(victim);
    EXPECT_TRUE(session.crashed(victim));

    // The crashed node forwards unicast but holds no protocol state. HBH
    // and REUNITE data travels in unicast packets, so it crosses the dead
    // router untouched and the periodic joins re-anchor every receiver.
    // PIM data is group-addressed: the unicast-only router blackholes the
    // subtree behind it — the incremental-deployment gap the paper draws.
    session.run_for(300);
    if (p == Protocol::kHbh || p == Protocol::kReunite) {
      EXPECT_TRUE(session.measure().delivered_exactly_once())
          << to_string(p) << " while " << to_string(victim) << " is down";
    } else {
      EXPECT_FALSE(session.measure().missing.empty())
          << to_string(p) << " should starve the subtree behind "
          << to_string(victim);
    }

    session.restart_router(victim);
    EXPECT_FALSE(session.crashed(victim));
    session.run_for(300);
    EXPECT_TRUE(session.measure().delivered_exactly_once())
        << to_string(p) << " after restarting " << to_string(victim);
  }
}

TEST(CrashRestartTest, CrashPreservesSessionLevelCounters) {
  auto scenario = topo::attach_hosts(
      topo::make_line(4), {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}, 0);
  Session session{scenario, Protocol::kHbh};
  session.subscribe(scenario.hosts[2]);
  session.subscribe(scenario.hosts[3]);
  session.run_for(150);
  const std::uint64_t changes_before = session.total_structural_changes();
  ASSERT_GT(changes_before, 0u);

  session.crash_router(NodeId{1});
  // The Figure-4 stability metric must stay monotone across the crash.
  EXPECT_GE(session.total_structural_changes(), changes_before);
  const std::uint64_t at_crash = session.total_structural_changes();
  session.restart_router(NodeId{1});
  session.run_for(200);
  EXPECT_GE(session.total_structural_changes(), at_crash);
  EXPECT_TRUE(session.measure().delivered_exactly_once());
}

TEST(CrashRestartTest, NoStaleStateOutlivesT2AfterLeaveUnderLoss) {
  // Receivers leave while the fabric is lossy: every MFT/MCT entry (and
  // the source's) must still be gone within t2 plus a couple of refresh
  // periods — losing refreshes can only *hasten* expiry.
  Rng rng{555};
  auto base = topo::make_isp();
  const auto receivers = rng.sample(base.candidate_receivers(), 6);
  for (const Protocol p : {Protocol::kHbh, Protocol::kReunite}) {
    Session session{base, p};
    for (const NodeId r : receivers) session.subscribe(r);
    session.run_for(150);
    ASSERT_GT(session.state_census().forwarding_entries, 0u) << to_string(p);

    session.seed_impairments(1234);
    for (const auto& [a, b] : backbone_links(base)) {
      session.impair_link(a, b, lossy_reordering());
    }
    for (const NodeId r : receivers) session.unsubscribe(r);
    // The source keeps refreshing downstream entries with trees until its
    // own entries go stale (t1 = 35), so the last downstream refresh can
    // land ~t1 after the leave; everything is dead t2 = 70 later. A few
    // periods of slack cover in-flight stragglers.
    session.run_for(35 + 70 + 3 * 10);
    const auto census = session.state_census();
    EXPECT_EQ(census.forwarding_entries, 0u) << to_string(p);
    EXPECT_EQ(census.control_entries, 0u) << to_string(p);
  }
}

TEST(FaultPlanTest, ScheduledEventsFireInOrder) {
  auto scenario = topo::attach_hosts(
      topo::make_ring(6),
      {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}, NodeId{5}}, 0);
  Session session{scenario, Protocol::kHbh};
  session.subscribe(scenario.hosts[3]);
  session.run_for(100);

  net::Impairment imp;
  imp.loss = 1.0;
  FaultPlan plan;
  plan.impair(10, NodeId{0}, NodeId{1}, imp)
      .crash(20, NodeId{2})
      .link_down(30, NodeId{4}, NodeId{5})
      .clear_impairments(40)
      .restart(50, NodeId{2})
      .link_up(60, NodeId{4}, NodeId{5});
  session.schedule_faults(plan);

  session.run_for(15);  // t=115: impairment active, nothing else yet
  EXPECT_TRUE(session.network().impairments().any_active());
  EXPECT_FALSE(session.crashed(NodeId{2}));

  session.run_for(10);  // t=125: router 2 crashed
  EXPECT_TRUE(session.crashed(NodeId{2}));

  session.run_for(10);  // t=135: link 4-5 down
  const auto link = session.scenario().topo.find_link(NodeId{4}, NodeId{5});
  ASSERT_TRUE(link.has_value());
  EXPECT_FALSE(session.scenario().topo.link_up(*link));

  session.run_for(10);  // t=145: impairments lifted
  EXPECT_FALSE(session.network().impairments().any_active());

  session.run_for(10);  // t=155: router 2 restarted
  EXPECT_FALSE(session.crashed(NodeId{2}));

  session.run_for(10);  // t=165: link repaired
  EXPECT_TRUE(session.scenario().topo.link_up(*link));

  // And after all that abuse the tree still heals.
  session.run_for(200);
  EXPECT_TRUE(session.measure().delivered_exactly_once());
}

TEST(MultiChannelTest, TwoHbhSourcesCoexist) {
  // Two independent channels with different sources on one network: the
  // per-channel tables must not interfere.
  net::Topology t = topo::make_line(4);
  auto scenario = topo::attach_hosts(
      std::move(t), {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}, 0);

  sim::Simulator sim;
  routing::UnicastRouting routes{scenario.topo};
  net::Network net{sim, scenario.topo, routes};
  const mcast::McastConfig cfg{};

  for (const NodeId r : scenario.routers) {
    net.attach(r, std::make_unique<mcast::hbh::HbhRouter>(cfg));
  }
  // Sources at both ends (hosts 4 and 7); receivers at hosts 5 and 6.
  const net::Channel ch_a{net.address_of(scenario.hosts[0]), GroupAddr::ssm(1)};
  const net::Channel ch_b{net.address_of(scenario.hosts[3]), GroupAddr::ssm(2)};
  auto* src_a = static_cast<mcast::hbh::HbhSource*>(&net.attach(
      scenario.hosts[0], std::make_unique<mcast::hbh::HbhSource>(ch_a, cfg)));
  auto* src_b = static_cast<mcast::hbh::HbhSource*>(&net.attach(
      scenario.hosts[3], std::make_unique<mcast::hbh::HbhSource>(ch_b, cfg)));
  auto* rx1 = static_cast<mcast::ReceiverHost*>(
      &net.attach(scenario.hosts[1], std::make_unique<mcast::ReceiverHost>(
                                         mcast::JoinStyle::kSourceJoin, cfg)));
  auto* rx2 = static_cast<mcast::ReceiverHost*>(
      &net.attach(scenario.hosts[2], std::make_unique<mcast::ReceiverHost>(
                                         mcast::JoinStyle::kSourceJoin, cfg)));
  net.start();

  rx1->subscribe(ch_a);
  rx1->subscribe(ch_b);
  rx2->subscribe(ch_b);
  sim.run_for(100);

  src_a->send_data(1, 0);
  src_b->send_data(2, 0);
  sim.run_for(60);

  // rx1 got one packet from each channel; rx2 only channel B.
  std::size_t rx1_a = 0;
  std::size_t rx1_b = 0;
  for (const auto& d : rx1->deliveries()) {
    (d.channel == ch_a ? rx1_a : rx1_b) += 1;
  }
  EXPECT_EQ(rx1_a, 1u);
  EXPECT_EQ(rx1_b, 1u);
  ASSERT_EQ(rx2->deliveries().size(), 1u);
  EXPECT_EQ(rx2->deliveries()[0].channel, ch_b);
}

TEST(MultiChannelTest, RouterKeepsIndependentStatePerChannel) {
  net::Topology t = topo::make_line(3);
  auto scenario =
      topo::attach_hosts(std::move(t), {NodeId{0}, NodeId{1}, NodeId{2}}, 1);

  sim::Simulator sim;
  routing::UnicastRouting routes{scenario.topo};
  net::Network net{sim, scenario.topo, routes};
  const mcast::McastConfig cfg{};
  for (const NodeId r : scenario.routers) {
    net.attach(r, std::make_unique<mcast::hbh::HbhRouter>(cfg));
  }
  const net::Channel ch_a{net.address_of(scenario.hosts[1]), GroupAddr::ssm(1)};
  const net::Channel ch_b{net.address_of(scenario.hosts[1]), GroupAddr::ssm(2)};
  net.attach(scenario.hosts[1],
             std::make_unique<mcast::hbh::HbhSource>(ch_a, cfg));
  // ch_b has no live source agent: joins for it just sink at the host.
  auto* rx = static_cast<mcast::ReceiverHost*>(
      &net.attach(scenario.hosts[0], std::make_unique<mcast::ReceiverHost>(
                                         mcast::JoinStyle::kSourceJoin, cfg)));
  net.start();
  rx->subscribe(ch_a);
  rx->subscribe(ch_b);
  sim.run_for(80);

  const auto& router = static_cast<const mcast::hbh::HbhRouter&>(
      net.agent(scenario.routers[0]));
  EXPECT_NE(router.state(ch_a), nullptr);   // tree state for the live channel
  EXPECT_EQ(router.state(ch_b), nullptr);   // none for the dead one
}

}  // namespace
}  // namespace hbh::harness
