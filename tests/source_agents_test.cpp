// Source-agent unit tests (HbhSource / ReuniteSource), RP placement
// policies, and randomized wire-codec round-trips — coverage for the
// channel-root behaviors the protocol suites only exercise indirectly.
#include <gtest/gtest.h>

#include <memory>

#include "mcast/hbh/source.hpp"
#include "mcast/pim/router.hpp"
#include "mcast/reunite/source.hpp"
#include "net/network.hpp"
#include "net/wire.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"
#include "topo/isp.hpp"
#include "util/rng.hpp"

namespace hbh::mcast {
namespace {

struct Tap : net::PacketTap {
  struct Seen {
    NodeId from;
    net::Packet packet;
  };
  std::vector<Seen> sent;
  void on_transmit(const net::Topology::Edge& e, const net::Packet& p,
                   Time) override {
    sent.push_back(Seen{e.from, p});
  }
  [[nodiscard]] std::size_t count_from(NodeId node,
                                       net::PacketType type) const {
    std::size_t n = 0;
    for (const auto& s : sent) {
      if (s.from == node && s.packet.type == type) ++n;
    }
    return n;
  }
  void clear() { sent.clear(); }
};

// sh(host, n2) - n0 - n1 - rh(host, n3): source host at one end.
struct Fixture {
  net::Topology topo = topo::make_line(2);
  NodeId sh, rh;
  sim::Simulator sim;
  std::unique_ptr<routing::UnicastRouting> routes;
  std::unique_ptr<net::Network> net;
  Tap tap;
  net::Channel ch;
  McastConfig cfg{};

  Fixture() {
    sh = topo.add_node(net::NodeKind::kHost);
    rh = topo.add_node(net::NodeKind::kHost);
    topo.add_duplex(NodeId{0}, sh, net::LinkAttrs{1, 1});
    topo.add_duplex(NodeId{1}, rh, net::LinkAttrs{1, 1});
    routes = std::make_unique<routing::UnicastRouting>(topo);
    net = std::make_unique<net::Network>(sim, topo, *routes);
    net->set_tap(&tap);
    ch = net::Channel{net->address_of(sh), GroupAddr::ssm(1)};
  }

  net::Packet join(Ipv4Addr r, bool fresh = true) {
    net::Packet p;
    p.src = r;
    p.dst = ch.source;
    p.channel = ch;
    p.type = net::PacketType::kJoin;
    p.payload = net::JoinPayload{r, false, fresh};
    return p;
  }
};

TEST(HbhSourceTest, EmitsOneTreePerEntryPerPeriod) {
  Fixture f;
  auto* src = static_cast<hbh::HbhSource*>(&f.net->attach(
      f.sh, std::make_unique<hbh::HbhSource>(f.ch, f.cfg)));
  f.net->start();
  f.net->send(f.rh, f.join(f.net->address_of(f.rh)));
  f.sim.run_for(25);  // two tree rounds at t=10, 20
  EXPECT_EQ(f.tap.count_from(f.sh, net::PacketType::kTree), 2u);
  EXPECT_TRUE(src->has_members());
}

TEST(HbhSourceTest, NoMembersNoTrees) {
  Fixture f;
  f.net->attach(f.sh, std::make_unique<hbh::HbhSource>(f.ch, f.cfg));
  f.net->start();
  f.sim.run_for(50);
  EXPECT_EQ(f.tap.count_from(f.sh, net::PacketType::kTree), 0u);
}

TEST(HbhSourceTest, EntryExpiresWithoutJoinRefresh) {
  Fixture f;
  auto* src = static_cast<hbh::HbhSource*>(&f.net->attach(
      f.sh, std::make_unique<hbh::HbhSource>(f.ch, f.cfg)));
  f.net->start();
  f.net->send(f.rh, f.join(f.net->address_of(f.rh)));
  f.sim.run_for(30);
  EXPECT_TRUE(src->has_members());
  f.sim.run_for(80);  // past t2 = 70 with no refreshes
  EXPECT_EQ(src->send_data(1, 0), 0u);  // purged: no data targets left
  EXPECT_FALSE(src->has_members());
}

TEST(HbhSourceTest, SendDataAddressesEachDataTarget) {
  Fixture f;
  auto* src = static_cast<hbh::HbhSource*>(&f.net->attach(
      f.sh, std::make_unique<hbh::HbhSource>(f.ch, f.cfg)));
  f.net->start();
  f.net->send(f.rh, f.join(f.net->address_of(f.rh)));
  f.sim.run_for(5);
  f.tap.clear();
  EXPECT_EQ(src->send_data(7, 3), 1u);
  f.sim.run_for(1);
  ASSERT_EQ(f.tap.count_from(f.sh, net::PacketType::kData), 1u);
  EXPECT_EQ(f.tap.sent.back().packet.data().probe, 7u);
  EXPECT_EQ(f.tap.sent.back().packet.dst, f.net->address_of(f.rh));
}

TEST(HbhSourceTest, ForeignChannelTrafficFallsThrough) {
  Fixture f;
  auto* src = static_cast<hbh::HbhSource*>(&f.net->attach(
      f.sh, std::make_unique<hbh::HbhSource>(f.ch, f.cfg)));
  f.net->start();
  net::Packet foreign = f.join(f.net->address_of(f.rh));
  foreign.channel = net::Channel{f.net->address_of(f.rh), GroupAddr::ssm(9)};
  foreign.dst = f.ch.source;
  f.net->send(f.rh, std::move(foreign));
  f.sim.run_for(10);
  EXPECT_FALSE(src->has_members());  // not our channel: ignored
}

TEST(ReuniteSourceTest, FirstJoinBecomesDst) {
  Fixture f;
  auto* src = static_cast<reunite::ReuniteSource*>(&f.net->attach(
      f.sh, std::make_unique<reunite::ReuniteSource>(f.ch, f.cfg)));
  f.net->start();
  f.net->send(f.rh, f.join(f.net->address_of(f.rh)));
  f.sim.run_for(5);
  ASSERT_TRUE(src->has_members());
  EXPECT_EQ(src->mft()->dst, f.net->address_of(f.rh));
  EXPECT_TRUE(src->mft()->entries.empty());
}

TEST(ReuniteSourceTest, SecondFreshJoinBecomesEntry) {
  Fixture f;
  auto* src = static_cast<reunite::ReuniteSource*>(&f.net->attach(
      f.sh, std::make_unique<reunite::ReuniteSource>(f.ch, f.cfg)));
  f.net->start();
  const Ipv4Addr r2{10, 9, 9, 1};
  f.net->send(f.rh, f.join(f.net->address_of(f.rh)));
  f.net->send(f.rh, f.join(r2));
  f.sim.run_for(5);
  ASSERT_TRUE(src->has_members());
  EXPECT_TRUE(src->mft()->entries.contains(r2));
}

TEST(ReuniteSourceTest, NonFreshUnknownJoinIgnored) {
  // A refresh join leaking through a momentarily-stale downstream anchor
  // must not double-anchor the receiver at the source.
  Fixture f;
  auto* src = static_cast<reunite::ReuniteSource*>(&f.net->attach(
      f.sh, std::make_unique<reunite::ReuniteSource>(f.ch, f.cfg)));
  f.net->start();
  f.net->send(f.rh, f.join(f.net->address_of(f.rh), /*fresh=*/true));
  f.sim.run_for(5);
  const Ipv4Addr r2{10, 9, 9, 1};
  f.net->send(f.rh, f.join(r2, /*fresh=*/false));
  f.sim.run_for(5);
  EXPECT_FALSE(src->mft()->entries.contains(r2));
}

TEST(ReuniteSourceTest, DstPromotionAfterDstDeath) {
  Fixture f;
  auto* src = static_cast<reunite::ReuniteSource*>(&f.net->attach(
      f.sh, std::make_unique<reunite::ReuniteSource>(f.ch, f.cfg)));
  f.net->start();
  const Ipv4Addr r1 = f.net->address_of(f.rh);
  const Ipv4Addr r2{10, 9, 9, 1};
  f.net->send(f.rh, f.join(r1));
  f.net->send(f.rh, f.join(r2));
  f.sim.run_for(5);
  ASSERT_EQ(src->mft()->dst, r1);
  // Keep r2 alive, let r1 starve past t2.
  for (int i = 0; i < 9; ++i) {
    f.net->send(f.rh, f.join(r2, /*fresh=*/false));
    f.sim.run_for(10);
  }
  ASSERT_TRUE(src->has_members());
  EXPECT_EQ(src->mft()->dst, r2);  // promoted
}

TEST(ReuniteSourceTest, MarkedTreeEmittedForStaleDst) {
  Fixture f;
  f.net->attach(f.sh, std::make_unique<reunite::ReuniteSource>(f.ch, f.cfg));
  f.net->start();
  f.net->send(f.rh, f.join(f.net->address_of(f.rh)));
  f.sim.run_for(45);  // dst stale at t1 = 35 (single join, no refresh)
  bool saw_marked = false;
  for (const auto& s : f.tap.sent) {
    if (s.from == f.sh && s.packet.type == net::PacketType::kTree &&
        s.packet.tree().marked) {
      saw_marked = true;
    }
  }
  EXPECT_TRUE(saw_marked);
}

TEST(RpPolicyTest, DelayAwareNeverWorseOnExpectedSmDelay) {
  // The delay-aware policy optimizes exactly the PIM-SM delay objective,
  // so its score can never exceed the cost-medoid's on the same draw.
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    Rng rng{seed};
    auto scenario = topo::make_isp();
    topo::randomize_costs(scenario.topo, rng);
    routing::UnicastRouting routes{scenario.topo};
    const NodeId src_router = scenario.routers[0];

    const auto sm_delay_score = [&](NodeId rp) {
      double score = routes.path_delay(scenario.source_host, rp);
      double down = 0;
      std::size_t n = 0;
      for (const NodeId r : scenario.routers) {
        if (r == rp) continue;
        const auto up = routes.path(r, rp);
        Time d = 0;
        for (std::size_t i = 0; i + 1 < up.size(); ++i) {
          const auto link = scenario.topo.find_link(up[i + 1], up[i]);
          d += scenario.topo.edge(*link).attrs.delay;
        }
        down += d;
        ++n;
      }
      return score + down / static_cast<double>(n);
    };

    const NodeId medoid = pim::choose_rp(routes, scenario.routers);
    const NodeId aware = pim::choose_rp_delay_aware(routes, scenario.routers,
                                                    scenario.source_host);
    ASSERT_TRUE(medoid.valid());
    ASSERT_TRUE(aware.valid());
    EXPECT_LE(sm_delay_score(aware), sm_delay_score(medoid) + 1e-9)
        << "seed " << seed << " src " << to_string(src_router);
  }
}

TEST(RpPolicyTest, BothPoliciesDeterministic) {
  Rng rng{77};
  auto scenario = topo::make_isp();
  topo::randomize_costs(scenario.topo, rng);
  routing::UnicastRouting routes{scenario.topo};
  EXPECT_EQ(pim::choose_rp(routes, scenario.routers),
            pim::choose_rp(routes, scenario.routers));
  EXPECT_EQ(
      pim::choose_rp_delay_aware(routes, scenario.routers, scenario.source_host),
      pim::choose_rp_delay_aware(routes, scenario.routers,
                                 scenario.source_host));
}

TEST(WirePropertyTest, RandomizedRoundTripsAllTypes) {
  Rng rng{0xC0DEC};
  const auto rand_addr = [&] {
    return Ipv4Addr{static_cast<std::uint32_t>(rng.next())};
  };
  for (int i = 0; i < 500; ++i) {
    net::Packet p;
    p.src = rand_addr();
    p.dst = rand_addr();
    p.channel = net::Channel{rand_addr(), GroupAddr::ssm(static_cast<std::uint16_t>(
                                              rng.uniform_int(0, 65535)))};
    p.ttl = static_cast<int>(rng.uniform_int(0, 255));
    switch (rng.uniform_int(0, 4)) {
      case 0:
        p.type = net::PacketType::kJoin;
        p.payload = net::JoinPayload{rand_addr(), rng.chance(0.5),
                                     rng.chance(0.5)};
        break;
      case 1:
        p.type = net::PacketType::kTree;
        p.payload = net::TreePayload{
            rand_addr(), rng.chance(0.5), rand_addr(),
            static_cast<std::uint32_t>(rng.next())};
        break;
      case 2: {
        p.type = net::PacketType::kFusion;
        net::FusionPayload fp;
        fp.origin = rand_addr();
        const auto count = rng.uniform_int(0, 8);
        for (int k = 0; k < count; ++k) fp.receivers.push_back(rand_addr());
        p.payload = std::move(fp);
        break;
      }
      case 3:
        p.type = net::PacketType::kPimJoin;
        p.payload = net::PimJoinPayload{rand_addr(), rand_addr()};
        break;
      default:
        p.type = net::PacketType::kData;
        p.payload = net::DataPayload{rng.next(),
                                     static_cast<std::uint32_t>(rng.next()),
                                     rng.uniform(0, 1e6), rng.chance(0.5)};
        break;
    }
    const auto bytes = net::encode(p);
    ASSERT_EQ(bytes.size(), net::encoded_size(p));
    const auto out = net::decode(bytes);
    ASSERT_TRUE(out.has_value()) << "iteration " << i;
    EXPECT_EQ(out->type, p.type);
    EXPECT_EQ(out->src, p.src);
    EXPECT_EQ(out->dst, p.dst);
    EXPECT_EQ(out->channel, p.channel);
    EXPECT_EQ(out->ttl, p.ttl);
  }
}

}  // namespace
}  // namespace hbh::mcast
