// Unit tests for Dijkstra SPF, all-pairs unicast routing, and the
// asymmetry analysis used throughout the paper reproduction.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/topology.hpp"
#include "routing/dijkstra.hpp"
#include "routing/unicast.hpp"

namespace hbh::routing {
namespace {

using net::LinkAttrs;
using net::Topology;

// A 4-node diamond:   0 --1-- 1 --1-- 3
//                      \--5-- 2 --1--/
Topology diamond() {
  Topology t;
  for (int i = 0; i < 4; ++i) t.add_node();
  t.add_duplex(NodeId{0}, NodeId{1}, LinkAttrs{1, 1});
  t.add_duplex(NodeId{1}, NodeId{3}, LinkAttrs{1, 1});
  t.add_duplex(NodeId{0}, NodeId{2}, LinkAttrs{5, 5});
  t.add_duplex(NodeId{2}, NodeId{3}, LinkAttrs{1, 1});
  return t;
}

TEST(DijkstraTest, PicksCheapestPath) {
  const Topology t = diamond();
  const SpfResult spf = dijkstra(t, NodeId{0});
  EXPECT_DOUBLE_EQ(spf.dist[3], 2.0);           // via node 1
  EXPECT_EQ(spf.parent[3], NodeId{1});
  EXPECT_EQ(spf.first_hop[3], NodeId{1});
  EXPECT_DOUBLE_EQ(spf.dist[2], 3.0);           // 0->1->3->2 beats direct 5
  EXPECT_EQ(spf.first_hop[2], NodeId{1});
}

TEST(DijkstraTest, RootHasZeroDistanceAndNoParent) {
  const Topology t = diamond();
  const SpfResult spf = dijkstra(t, NodeId{0});
  EXPECT_DOUBLE_EQ(spf.dist[0], 0.0);
  EXPECT_EQ(spf.parent[0], kNoNode);
  EXPECT_EQ(spf.first_hop[0], kNoNode);
}

TEST(DijkstraTest, UnreachableNodesAreInfinite) {
  Topology t;
  t.add_node();
  t.add_node();
  const SpfResult spf = dijkstra(t, NodeId{0});
  EXPECT_FALSE(spf.reachable(NodeId{1}));
  EXPECT_EQ(spf.dist[1], kUnreachable);
}

TEST(DijkstraTest, RespectsEdgeDirection) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  t.add_link(a, b, LinkAttrs{1, 1});
  EXPECT_TRUE(dijkstra(t, a).reachable(b));
  EXPECT_FALSE(dijkstra(t, b).reachable(a));
}

TEST(DijkstraTest, DelayAccumulatesAlongChosenPath) {
  Topology t;
  for (int i = 0; i < 3; ++i) t.add_node();
  // cost favors 0->1->2; delays differ from costs.
  t.add_link(NodeId{0}, NodeId{1}, LinkAttrs{1, 10});
  t.add_link(NodeId{1}, NodeId{2}, LinkAttrs{1, 20});
  t.add_link(NodeId{0}, NodeId{2}, LinkAttrs{5, 1});
  const SpfResult spf = dijkstra(t, NodeId{0});
  EXPECT_DOUBLE_EQ(spf.dist[2], 2.0);
  EXPECT_DOUBLE_EQ(spf.delay[2], 30.0);  // delay of the *cost-chosen* path
}

TEST(DijkstraTest, CustomMetricChangesRoutes) {
  Topology t;
  for (int i = 0; i < 3; ++i) t.add_node();
  t.add_link(NodeId{0}, NodeId{1}, LinkAttrs{1, 10});
  t.add_link(NodeId{1}, NodeId{2}, LinkAttrs{1, 20});
  t.add_link(NodeId{0}, NodeId{2}, LinkAttrs{5, 1});
  const SpfResult by_delay = dijkstra(t, NodeId{0}, delay_metric());
  EXPECT_EQ(by_delay.first_hop[2], NodeId{2});  // direct link wins on delay
  EXPECT_DOUBLE_EQ(by_delay.delay[2], 1.0);
}

TEST(DijkstraTest, DeterministicOnEqualCostPaths) {
  Topology t;
  for (int i = 0; i < 4; ++i) t.add_node();
  t.add_duplex(NodeId{0}, NodeId{1}, LinkAttrs{1, 1});
  t.add_duplex(NodeId{0}, NodeId{2}, LinkAttrs{1, 1});
  t.add_duplex(NodeId{1}, NodeId{3}, LinkAttrs{1, 1});
  t.add_duplex(NodeId{2}, NodeId{3}, LinkAttrs{1, 1});
  const SpfResult a = dijkstra(t, NodeId{0});
  const SpfResult b = dijkstra(t, NodeId{0});
  EXPECT_EQ(a.first_hop[3], b.first_hop[3]);
  EXPECT_EQ(a.parent[3], b.parent[3]);
}

TEST(UnicastRoutingTest, NextHopChainsReachDestination) {
  const Topology t = diamond();
  const UnicastRouting routes{t};
  NodeId at{0};
  int hops = 0;
  while (at != NodeId{3}) {
    at = routes.next_hop(at, NodeId{3});
    ASSERT_TRUE(at.valid());
    ASSERT_LE(++hops, 4);
  }
  EXPECT_EQ(hops, 2);
}

TEST(UnicastRoutingTest, PathEndpointsInclusive) {
  const Topology t = diamond();
  const UnicastRouting routes{t};
  const auto p = routes.path(NodeId{0}, NodeId{3});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.front(), NodeId{0});
  EXPECT_EQ(p[1], NodeId{1});
  EXPECT_EQ(p.back(), NodeId{3});
}

TEST(UnicastRoutingTest, PathToSelfIsSingleton) {
  const Topology t = diamond();
  const UnicastRouting routes{t};
  const auto p = routes.path(NodeId{2}, NodeId{2});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], NodeId{2});
  EXPECT_EQ(routes.next_hop(NodeId{2}, NodeId{2}), kNoNode);
}

TEST(UnicastRoutingTest, PathToUnreachableIsEmpty) {
  Topology t;
  t.add_node();
  t.add_node();
  const UnicastRouting routes{t};
  EXPECT_TRUE(routes.path(NodeId{0}, NodeId{1}).empty());
  EXPECT_FALSE(routes.reachable(NodeId{0}, NodeId{1}));
}

TEST(UnicastRoutingTest, AsymmetricCostsYieldAsymmetricRoutes) {
  // 0->1 direct is cheap, 1->0 direct is expensive so 1 routes via 2.
  Topology t;
  for (int i = 0; i < 3; ++i) t.add_node();
  t.add_duplex(NodeId{0}, NodeId{1}, LinkAttrs{1, 1}, LinkAttrs{10, 10});
  t.add_duplex(NodeId{1}, NodeId{2}, LinkAttrs{2, 2}, LinkAttrs{2, 2});
  t.add_duplex(NodeId{2}, NodeId{0}, LinkAttrs{2, 2}, LinkAttrs{2, 2});
  const UnicastRouting routes{t};
  const auto fwd = routes.path(NodeId{0}, NodeId{1});
  const auto back = routes.path(NodeId{1}, NodeId{0});
  ASSERT_EQ(fwd.size(), 2u);   // 0 -> 1 direct
  ASSERT_EQ(back.size(), 3u);  // 1 -> 2 -> 0
  EXPECT_DOUBLE_EQ(routes.distance(NodeId{0}, NodeId{1}), 1.0);
  EXPECT_DOUBLE_EQ(routes.distance(NodeId{1}, NodeId{0}), 4.0);
}

TEST(UnicastRoutingTest, PathDelayMatchesManualSum) {
  const Topology t = diamond();
  const UnicastRouting routes{t};
  EXPECT_DOUBLE_EQ(routes.path_delay(NodeId{0}, NodeId{3}), 2.0);
  EXPECT_DOUBLE_EQ(routes.path_delay(NodeId{0}, NodeId{2}), 3.0);
}

TEST(UnicastRoutingTest, HopByHopConsistency) {
  // Property: for every pair, next_hop at each node along the path agrees
  // with the path itself (destination-based forwarding is loop-free).
  const Topology t = diamond();
  const UnicastRouting routes{t};
  for (std::uint32_t a = 0; a < t.node_count(); ++a) {
    for (std::uint32_t b = 0; b < t.node_count(); ++b) {
      if (a == b) continue;
      const auto p = routes.path(NodeId{a}, NodeId{b});
      for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        EXPECT_EQ(routes.next_hop(p[i], NodeId{b}), p[i + 1]);
      }
    }
  }
}

TEST(UnicastRoutingTest, SpfComputationIsLazyPerRoot) {
  const Topology t = diamond();
  const UnicastRouting routes{t};
  EXPECT_EQ(routes.spf_computations(), 0u);  // construction runs no SPF
  (void)routes.distance(NodeId{0}, NodeId{3});
  EXPECT_EQ(routes.spf_computations(), 1u);  // first query builds root 0
  (void)routes.path(NodeId{0}, NodeId{2});
  EXPECT_EQ(routes.spf_computations(), 1u);  // same root: cached
  (void)routes.next_hop(NodeId{1}, NodeId{3});
  EXPECT_EQ(routes.spf_computations(), 2u);  // new root
}

TEST(UnicastRoutingTest, InvalidateRecomputesOnlyQueriedRoots) {
  Topology t = diamond();
  UnicastRouting routes{t};
  EXPECT_DOUBLE_EQ(routes.distance(NodeId{0}, NodeId{3}), 2.0);  // via 1
  const std::uint64_t before = routes.topology_epoch();

  // Take the cheap 0->1 edge down; stale routes persist until invalidate.
  const auto link = t.find_link(NodeId{0}, NodeId{1});
  ASSERT_TRUE(link.has_value());
  t.set_link_up(*link, false);
  EXPECT_DOUBLE_EQ(routes.distance(NodeId{0}, NodeId{3}), 2.0);  // stale

  routes.invalidate();
  EXPECT_GT(routes.topology_epoch(), before);
  EXPECT_DOUBLE_EQ(routes.distance(NodeId{0}, NodeId{3}), 6.0);  // via 2
  // Only root 0 was re-queried, so only root 0 recomputed: 1 (initial)
  // + 1 (post-invalidate) SPFs for root 0, none for any other root.
  EXPECT_EQ(routes.spf_computations(), 2u);
}

TEST(AsymmetryTest, SymmetricTopologyHasNoAsymmetry) {
  const Topology t = diamond();
  const UnicastRouting routes{t};
  const auto report = measure_asymmetry(routes);
  EXPECT_EQ(report.asymmetric_pairs, 0u);
  EXPECT_DOUBLE_EQ(report.asymmetric_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(report.max_cost_skew, 0.0);
}

TEST(AsymmetryTest, DetectsAsymmetricPairs) {
  Topology t;
  for (int i = 0; i < 3; ++i) t.add_node();
  t.add_duplex(NodeId{0}, NodeId{1}, LinkAttrs{1, 1}, LinkAttrs{10, 10});
  t.add_duplex(NodeId{1}, NodeId{2}, LinkAttrs{2, 2});
  t.add_duplex(NodeId{2}, NodeId{0}, LinkAttrs{2, 2});
  const UnicastRouting routes{t};
  const auto report = measure_asymmetry(routes);
  EXPECT_GT(report.asymmetric_pairs, 0u);
  EXPECT_EQ(report.ordered_pairs, 6u);
  EXPECT_GT(report.max_cost_skew, 0.0);
}

TEST(AsymmetryTest, ParentChainCheckMatchesPathOracle) {
  // measure_asymmetry compares parent chains in place; its verdict per
  // ordered pair must equal the definitional path-vector comparison.
  Topology t;
  for (int i = 0; i < 5; ++i) t.add_node();
  t.add_duplex(NodeId{0}, NodeId{1}, LinkAttrs{1, 1}, LinkAttrs{10, 10});
  t.add_duplex(NodeId{1}, NodeId{2}, LinkAttrs{2, 2});
  t.add_duplex(NodeId{2}, NodeId{0}, LinkAttrs{2, 2});
  t.add_duplex(NodeId{2}, NodeId{3}, LinkAttrs{1, 1}, LinkAttrs{7, 7});
  t.add_duplex(NodeId{3}, NodeId{4}, LinkAttrs{1, 1});
  t.add_duplex(NodeId{4}, NodeId{0}, LinkAttrs{3, 3}, LinkAttrs{1, 1});
  const UnicastRouting routes{t};

  std::size_t oracle_asymmetric = 0;
  std::size_t oracle_pairs = 0;
  for (std::uint32_t a = 0; a < t.node_count(); ++a) {
    for (std::uint32_t b = a + 1; b < t.node_count(); ++b) {
      auto fwd = routes.path(NodeId{a}, NodeId{b});
      auto back = routes.path(NodeId{b}, NodeId{a});
      if (fwd.empty() || back.empty()) continue;
      oracle_pairs += 2;
      std::reverse(back.begin(), back.end());
      if (fwd != back) oracle_asymmetric += 2;
    }
  }

  const auto report = measure_asymmetry(routes);
  EXPECT_EQ(report.ordered_pairs, oracle_pairs);
  EXPECT_EQ(report.asymmetric_pairs, oracle_asymmetric);
  EXPECT_GT(report.asymmetric_pairs, 0u);
}

}  // namespace
}  // namespace hbh::routing
