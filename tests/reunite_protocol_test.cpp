// REUNITE baseline tests: the Figure 2 non-SPT pathology and recovery
// after departure, the Figure 3 duplicate-copies pathology, and general
// delivery correctness — the behaviors HBH was designed to fix.
#include <gtest/gtest.h>

#include "harness/session.hpp"
#include "mcast/reunite/router.hpp"
#include "mcast/reunite/source.hpp"
#include "routing/unicast.hpp"
#include "topo/builders.hpp"
#include "topo/scenarios.hpp"

namespace hbh::harness {
namespace {

using mcast::reunite::ReuniteRouter;

topo::Scenario from_fig2(const topo::Fig2Scenario& f) {
  topo::Scenario s;
  s.topo = f.topo;
  s.routers = {f.h1, f.h2, f.h3, f.h4};
  s.hosts = {f.s, f.r1, f.r2, f.r3};
  s.source_host = f.s;
  return s;
}

topo::Scenario from_fig3(const topo::Fig3Scenario& f) {
  topo::Scenario s;
  s.topo = f.topo;
  s.routers = {f.w1, f.w2, f.w3, f.w4, f.w5, f.w6};
  s.hosts = {f.s, f.r1, f.r2};
  s.source_host = f.s;
  return s;
}

topo::Scenario from_fig1(const topo::Fig1Scenario& f) {
  topo::Scenario s;
  s.topo = f.topo;
  s.routers = {f.h1, f.h2, f.h3, f.h4, f.h5, f.h6, f.h7};
  s.hosts = {f.s, f.r1, f.r2, f.r3, f.r4, f.r5, f.r6, f.r7, f.r8};
  s.source_host = f.s;
  return s;
}

const mcast::reunite::ChannelState* reunite_state(Session& session,
                                                  NodeId router) {
  return static_cast<const ReuniteRouter&>(session.network().agent(router))
      .state(session.channel());
}

Time last_delay(Session& session, NodeId host) {
  const auto& ds = session.receiver(host).deliveries();
  EXPECT_FALSE(ds.empty());
  if (ds.empty()) return -1;
  return ds.back().received_at - ds.back().sent_at;
}

TEST(ReuniteBasicTest, SingleReceiverDelivery) {
  auto scenario =
      topo::attach_hosts(topo::make_line(3), {NodeId{0}, NodeId{1}, NodeId{2}}, 0);
  Session session{scenario, Protocol::kReunite};
  session.subscribe(scenario.hosts[2]);
  session.run_for(60);
  const Measurement m = session.measure();
  EXPECT_TRUE(m.delivered_exactly_once());
  EXPECT_EQ(m.tree_cost, 4u);
  EXPECT_DOUBLE_EQ(m.mean_delay, 4.0);
}

TEST(ReuniteBasicTest, EightReceiversStaggeredBuildFig1bTree) {
  // REUNITE anchors a receiver where its join first meets the tree, and a
  // connected receiver never re-anchors — so the tree shape depends on
  // join timing. Staggering joins by more than a tree period lets each
  // new join meet the previous receivers' state, reproducing the paper's
  // Figure 1(b) tree exactly: dst chains r1 (left) and r4 (right), with
  // the remaining receivers as branching-node entries.
  const auto fig = topo::make_fig1();
  Session session{from_fig1(fig), Protocol::kReunite};
  Time delay = 0.1;
  for (const NodeId r : fig.receivers()) {
    session.subscribe(r, delay);
    delay += 20.0;  // > tree period: state exists before the next join
  }
  session.run_for(600);
  const Measurement m = session.measure();
  EXPECT_TRUE(m.delivered_exactly_once());
  // The Fig. 1(b) tree covers the same 15 links as HBH's, one copy each.
  EXPECT_EQ(m.tree_cost, 15u);
  EXPECT_EQ(m.max_link_copies, 1u);
  // Structure spot-checks: H1 branches the r1 flow toward r4's subtree.
  const auto* h1 = reunite_state(session, fig.h1);
  ASSERT_NE(h1, nullptr);
  ASSERT_TRUE(h1->branching());
  EXPECT_EQ(h1->mft->dst, session.network().address_of(fig.r1));
}

TEST(ReuniteBasicTest, SimultaneousJoinsAnchorAtSourceWithoutDuplicates) {
  // The flip side: receivers joining before any tree state exists anchor
  // at the source, which then serves them over recursive unicast star
  // paths — more copies on shared links (the paper's "badly placed
  // branching nodes"), but still exactly-once delivery.
  const auto fig = topo::make_fig1();
  Session session{from_fig1(fig), Protocol::kReunite};
  for (const NodeId r : fig.receivers()) session.subscribe(r);
  session.run_for(400);
  const Measurement m = session.measure();
  EXPECT_TRUE(m.delivered_exactly_once());
  EXPECT_GE(m.tree_cost, 15u);       // at least the tree links
  EXPECT_GE(m.max_link_copies, 1u);  // shared links may carry copies
}

TEST(ReuniteFig2Test, BranchingAtR3AndSuboptimalRouteForR2) {
  const auto fig = topo::make_fig2();
  auto scenario = from_fig2(fig);
  routing::UnicastRouting reference{scenario.topo};
  Session session{scenario, Protocol::kReunite};
  session.subscribe(fig.r1);          // r1 joins at S; dst = r1
  session.run_for(50);
  session.subscribe(fig.r2);          // join(S,r2) intercepted at R3 (= H3)
  session.run_for(150);

  // R3 became the branching node with dst = r1 and entry r2 (Fig. 2a).
  const auto* h3 = reunite_state(session, fig.h3);
  ASSERT_NE(h3, nullptr);
  ASSERT_TRUE(h3->branching());
  EXPECT_EQ(h3->mft->dst, session.network().address_of(fig.r1));
  EXPECT_TRUE(h3->mft->entries.contains(session.network().address_of(fig.r2)));

  const Measurement m = session.measure();
  ASSERT_TRUE(m.delivered_exactly_once());
  // r1 is on its shortest path...
  EXPECT_DOUBLE_EQ(last_delay(session, fig.r1),
                   reference.path_delay(fig.s, fig.r1));
  // ...but r2 is NOT: data detours S -> R1 -> R3 -> r2 instead of the
  // shortest S -> R4 -> r2 (the Fig. 2a pathology).
  EXPECT_GT(last_delay(session, fig.r2), reference.path_delay(fig.s, fig.r2));
  EXPECT_DOUBLE_EQ(last_delay(session, fig.r2),
                   reference.path_delay(fig.s, fig.h3) +
                       reference.path_delay(fig.h3, fig.r2));
}

TEST(ReuniteFig2Test, R1DepartureRestoresShortestPathForR2) {
  const auto fig = topo::make_fig2();
  auto scenario = from_fig2(fig);
  routing::UnicastRouting reference{scenario.topo};
  Session session{scenario, Protocol::kReunite};
  session.subscribe(fig.r1);
  session.run_for(50);
  session.subscribe(fig.r2);
  session.run_for(150);
  ASSERT_TRUE(session.measure().delivered_exactly_once());

  // r1 leaves: the stale/marked-tree reconfiguration (Fig. 2b-d) must
  // re-anchor r2 at S and data then follows S -> R4 -> r2.
  session.unsubscribe(fig.r1);
  session.run_for(400);  // ride out t1 staleness, marked trees, t2 death

  const Measurement m = session.measure();
  ASSERT_TRUE(m.delivered_exactly_once());
  EXPECT_DOUBLE_EQ(last_delay(session, fig.r2),
                   reference.path_delay(fig.s, fig.r2));
  // R3's MFT is gone (Fig. 2d).
  const auto* h3 = reunite_state(session, fig.h3);
  EXPECT_TRUE(h3 == nullptr || !h3->branching());
}

TEST(ReuniteFig2Test, DepartureCausesRouteChangeForRemainingReceiver) {
  // The route-change-on-departure behavior the paper criticizes: r2's
  // delay changes (improves) when r1 leaves — HBH avoids this.
  const auto fig = topo::make_fig2();
  Session session{from_fig2(fig), Protocol::kReunite};
  session.subscribe(fig.r1);
  session.run_for(50);
  session.subscribe(fig.r2);
  session.run_for(150);
  session.measure();
  const Time before = last_delay(session, fig.r2);
  session.unsubscribe(fig.r1);
  session.run_for(400);
  session.measure();
  const Time after = last_delay(session, fig.r2);
  EXPECT_NE(before, after);
  EXPECT_LT(after, before);
}

TEST(ReuniteFig3Test, AsymmetryDuplicatesPacketsOnSharedLink) {
  const auto fig = topo::make_fig3();
  Session session{from_fig3(fig), Protocol::kReunite};
  session.subscribe(fig.r1);
  session.run_for(50);
  session.subscribe(fig.r2);
  session.run_for(200);

  const Measurement m = session.measure();
  ASSERT_TRUE(m.delivered_exactly_once());
  // R6 never sees a join, so it is not a branching node; S emits data to
  // r1 and R1 duplicates for r2 — both copies cross link R1->R6 (Fig. 3).
  EXPECT_EQ(m.max_link_copies, 2u);
  const auto it = m.duplicated;  // no receiver-level duplicates though
  EXPECT_TRUE(it.empty());
  // R1 (= w1) is the branching node.
  const auto* w1 = reunite_state(session, fig.w1);
  ASSERT_NE(w1, nullptr);
  EXPECT_TRUE(w1->branching());
  // R6 (= w6) must NOT be branching.
  const auto* w6 = reunite_state(session, fig.w6);
  EXPECT_TRUE(w6 == nullptr || !w6->branching());
}

TEST(ReuniteFig3Test, HbhResolvesTheSameScenarioWithoutDuplicates) {
  // Control experiment: HBH on the identical topology keeps one copy per
  // link because H6's fusion relocates the branching point (§3.1 end).
  const auto fig = topo::make_fig3();
  Session session{from_fig3(fig), Protocol::kHbh};
  session.subscribe(fig.r1);
  session.run_for(50);
  session.subscribe(fig.r2);
  session.run_for(300);
  const Measurement m = session.measure();
  ASSERT_TRUE(m.delivered_exactly_once());
  EXPECT_EQ(m.max_link_copies, 1u);
}

TEST(ReuniteDynamicsTest, LeaveRejoinRecovers) {
  const auto fig = topo::make_fig1();
  Session session{from_fig1(fig), Protocol::kReunite};
  session.subscribe(fig.r1);
  session.subscribe(fig.r4);
  session.run_for(200);
  session.unsubscribe(fig.r4);
  session.run_for(400);
  session.subscribe(fig.r4);
  session.run_for(200);
  const Measurement m = session.measure();
  EXPECT_TRUE(m.delivered_exactly_once());
}

TEST(ReuniteDynamicsTest, AllLeaveDissolvesTree) {
  const auto fig = topo::make_fig1();
  Session session{from_fig1(fig), Protocol::kReunite};
  for (const NodeId r : fig.receivers()) session.subscribe(r);
  session.run_for(200);
  for (const NodeId r : fig.receivers()) session.unsubscribe(r);
  session.run_for(400);
  const Measurement m = session.measure();
  EXPECT_EQ(m.tree_cost, 0u);
  const auto& source = static_cast<const mcast::reunite::ReuniteSource&>(
      session.source_agent());
  EXPECT_FALSE(source.has_members());
}

TEST(ReuniteStabilityTest, DepartureTouchesMoreStateThanHbh) {
  // Figure 4: member departure reconfigures more of the REUNITE tree than
  // the HBH tree. Compare structural change counts after r1 leaves.
  const auto fig = topo::make_fig2();
  std::uint64_t changes[2] = {0, 0};
  const Protocol protocols[2] = {Protocol::kReunite, Protocol::kHbh};
  for (int i = 0; i < 2; ++i) {
    Session session{from_fig2(fig), protocols[i]};
    session.subscribe(fig.r1);
    session.run_for(50);
    session.subscribe(fig.r2);
    session.run_for(300);
    const std::uint64_t baseline = session.total_structural_changes();
    session.unsubscribe(fig.r1);
    session.run_for(400);
    changes[i] = session.total_structural_changes() - baseline;
    EXPECT_TRUE(session.measure().delivered_exactly_once())
        << to_string(protocols[i]);
  }
  // REUNITE rebuilds r2's branch (route change); HBH only expires r1
  // state. Departure must cost REUNITE at least as many table changes.
  EXPECT_GE(changes[0], changes[1]);
}

}  // namespace
}  // namespace hbh::harness
