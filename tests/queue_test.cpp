// Unit tests for capacitated-link egress queues: drop-tail boundaries,
// drain ordering, the wait + serialization + propagation delay oracle,
// the control-packet priority lane, RED's seeded determinism, and the
// byte-identity guarantee for uncapacitated links.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "net/wire.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"

namespace hbh::net {
namespace {

using routing::UnicastRouting;

struct Fixture {
  Topology topo;
  std::unique_ptr<UnicastRouting> routes;
  std::unique_ptr<Network> net;
  sim::Simulator sim;

  void finish() {
    routes = std::make_unique<UnicastRouting>(topo);
    net = std::make_unique<Network>(sim, topo, *routes);
  }
};

/// Agent recording arrival times of everything addressed to it.
class RecordingAgent : public ProtocolAgent {
 public:
  std::vector<Time> arrivals;

 protected:
  void deliver_local(Packet&&, NodeId) override {
    arrivals.push_back(simulator().now());
  }
};

/// Tap collecting drop reasons and queue admissions.
class QueueTap : public PacketTap {
 public:
  struct Admission {
    Time wait;
    Time serialization;
    Time at;
    std::size_t depth;
  };
  std::vector<std::string> drops;
  std::vector<Admission> admissions;
  void on_drop(NodeId, const Packet&, std::string_view reason, Time) override {
    drops.emplace_back(reason);
  }
  void on_queue(const Topology::Edge&, const Packet&, Time wait,
                Time serialization, std::size_t depth, Time now) override {
    admissions.push_back(Admission{wait, serialization, now, depth});
  }
};

Packet make_data(Network& net, NodeId from, NodeId to) {
  Packet p;
  p.src = net.address_of(from);
  p.dst = net.address_of(to);
  p.type = PacketType::kData;
  p.payload = DataPayload{};
  return p;
}

Packet make_join(Network& net, NodeId from, NodeId to) {
  Packet p;
  p.src = net.address_of(from);
  p.dst = net.address_of(to);
  p.type = PacketType::kJoin;
  p.payload = JoinPayload{.receiver = net.address_of(from)};
  return p;
}

TEST(QueueTest, DropTailAdmitsExactlyQueueLimit) {
  // One capacitated link 0 -> 1 with room for 4 packets; the occupancy
  // includes the copy currently serializing, so a back-to-back burst of 4
  // fills the queue exactly and the 5th is the first drop.
  Fixture f;
  f.topo.add_node();
  f.topo.add_node();
  f.topo.add_duplex(NodeId{0}, NodeId{1},
                    LinkSpec{.cost = 1, .delay = 2, .capacity = 10,
                             .queue_limit = 4});
  f.finish();
  QueueTap tap;
  f.net->set_tap(&tap);
  for (int i = 0; i < 5; ++i) {
    f.net->send_direct(NodeId{0}, NodeId{1}, make_data(*f.net, NodeId{0},
                                                       NodeId{1}));
  }
  EXPECT_EQ(f.net->counters().queued_packets, 4u);
  EXPECT_EQ(f.net->counters().drops_queue_full, 1u);
  ASSERT_EQ(tap.drops.size(), 1u);
  EXPECT_EQ(tap.drops[0], "queue-full");
  EXPECT_EQ(f.net->queue_depth(*f.topo.find_link(NodeId{0}, NodeId{1})), 4u);
}

TEST(QueueTest, DrainOrderingMatchesSerializationSchedule) {
  // Back-to-back admissions serialize FIFO: copy i waits i x ser, so
  // arrival_i = (i + 1) x ser + propagation, strictly increasing.
  Fixture f;
  f.topo.add_node();
  f.topo.add_node();
  f.topo.add_duplex(NodeId{0}, NodeId{1},
                    LinkSpec{.cost = 1, .delay = 2, .capacity = 10,
                             .queue_limit = 4});
  f.finish();
  auto& sink = static_cast<RecordingAgent&>(
      f.net->attach(NodeId{1}, std::make_unique<RecordingAgent>()));
  QueueTap tap;
  f.net->set_tap(&tap);
  const Time ser =
      static_cast<Time>(encoded_size(make_data(*f.net, NodeId{0}, NodeId{1}))) /
      10.0;
  for (int i = 0; i < 4; ++i) {
    f.net->send_direct(NodeId{0}, NodeId{1}, make_data(*f.net, NodeId{0},
                                                       NodeId{1}));
  }
  f.sim.run();
  ASSERT_EQ(sink.arrivals.size(), 4u);
  ASSERT_EQ(tap.admissions.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(tap.admissions[i].wait, static_cast<double>(i) * ser);
    EXPECT_DOUBLE_EQ(tap.admissions[i].serialization, ser);
    EXPECT_DOUBLE_EQ(sink.arrivals[i],
                     static_cast<double>(i + 1) * ser + 2.0);
  }
  // Fully drained: the backlog is gone and the next burst admits again.
  EXPECT_EQ(f.net->queue_depth(*f.topo.find_link(NodeId{0}, NodeId{1})), 0u);
  f.net->send_direct(NodeId{0}, NodeId{1},
                     make_data(*f.net, NodeId{0}, NodeId{1}));
  EXPECT_EQ(f.net->counters().drops_queue_full, 0u);
  EXPECT_EQ(f.net->counters().queued_packets, 5u);
}

TEST(QueueTest, ChainDelayOracle) {
  // 0 -> 1 -> 2 with ser1 < ser2: the second of two back-to-back packets
  // queues behind the first on BOTH links, and its end-to-end delay is the
  // closed-form sum of waits, serializations, and propagations.
  Fixture f;
  for (int i = 0; i < 3; ++i) f.topo.add_node();
  f.topo.add_duplex(NodeId{0}, NodeId{1},
                    LinkSpec{.cost = 1, .delay = 1, .capacity = 20});
  f.topo.add_duplex(NodeId{1}, NodeId{2},
                    LinkSpec{.cost = 1, .delay = 1, .capacity = 10});
  f.finish();
  auto& sink = static_cast<RecordingAgent&>(
      f.net->attach(NodeId{2}, std::make_unique<RecordingAgent>()));
  const Time ser1 =
      static_cast<Time>(encoded_size(make_data(*f.net, NodeId{0}, NodeId{2}))) /
      20.0;
  const Time ser2 = 2.0 * ser1;  // half the capacity, same bytes
  f.net->send(NodeId{0}, make_data(*f.net, NodeId{0}, NodeId{2}));
  f.net->send(NodeId{0}, make_data(*f.net, NodeId{0}, NodeId{2}));
  f.sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  // First packet never waits: ser1 + 1 to reach node 1, ser2 + 1 onward.
  EXPECT_DOUBLE_EQ(sink.arrivals[0], ser1 + 1.0 + ser2 + 1.0);
  // Second waits ser1 on hop 1 (arrives at 2·ser1 + 1), then hop 2 is busy
  // until ser1 + 1 + ser2, so it waits ser2 - ser1 more before its own
  // serialization.
  EXPECT_DOUBLE_EQ(sink.arrivals[1],
                   2.0 * ser1 + 1.0 + (ser2 - ser1) + ser2 + 1.0);
}

TEST(QueueTest, ControlPacketsBypassFullQueue) {
  // Priority lane: with the egress queue exactly full, a control packet
  // still crosses at pure propagation delay and charges no queue slot.
  Fixture f;
  f.topo.add_node();
  f.topo.add_node();
  f.topo.add_duplex(NodeId{0}, NodeId{1},
                    LinkSpec{.cost = 1, .delay = 2, .capacity = 10,
                             .queue_limit = 2});
  f.finish();
  auto& sink = static_cast<RecordingAgent&>(
      f.net->attach(NodeId{1}, std::make_unique<RecordingAgent>()));
  for (int i = 0; i < 2; ++i) {
    f.net->send_direct(NodeId{0}, NodeId{1}, make_data(*f.net, NodeId{0},
                                                       NodeId{1}));
  }
  const LinkId link = *f.topo.find_link(NodeId{0}, NodeId{1});
  EXPECT_EQ(f.net->queue_depth(link), 2u);
  f.net->send_direct(NodeId{0}, NodeId{1},
                     make_join(*f.net, NodeId{0}, NodeId{1}));
  EXPECT_EQ(f.net->counters().drops_queue_full, 0u);
  EXPECT_EQ(f.net->counters().queued_packets, 2u);
  EXPECT_EQ(f.net->queue_depth(link), 2u);
  f.sim.run();
  // The join's arrival (delay 2) beats both queued data copies (ser 4, 8).
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_DOUBLE_EQ(sink.arrivals.front(), 2.0);
}

TEST(QueueTest, HighWaterMarkAndAdmittedTrackOccupancy) {
  // A burst of 4 into a limit-4 queue peaks at depth 4; after draining and
  // a second, smaller burst the high-water mark must still read the peak
  // while the admission counter keeps accumulating. The per-admission
  // depth passed to on_queue is the occupancy including that copy.
  Fixture f;
  f.topo.add_node();
  f.topo.add_node();
  f.topo.add_duplex(NodeId{0}, NodeId{1},
                    LinkSpec{.cost = 1, .delay = 2, .capacity = 10,
                             .queue_limit = 4});
  f.finish();
  QueueTap tap;
  f.net->set_tap(&tap);
  const LinkId link = *f.topo.find_link(NodeId{0}, NodeId{1});
  for (int i = 0; i < 5; ++i) {
    f.net->send_direct(NodeId{0}, NodeId{1}, make_data(*f.net, NodeId{0},
                                                       NodeId{1}));
  }
  ASSERT_EQ(tap.admissions.size(), 4u);
  for (std::size_t i = 0; i < tap.admissions.size(); ++i) {
    EXPECT_EQ(tap.admissions[i].depth, i + 1);
  }
  EXPECT_EQ(f.net->queue_high_water(link), 4u);
  EXPECT_EQ(f.net->queue_admitted(link), 4u);

  f.sim.run();  // drain completely
  f.net->send_direct(NodeId{0}, NodeId{1}, make_data(*f.net, NodeId{0},
                                                     NodeId{1}));
  EXPECT_EQ(f.net->queue_high_water(link), 4u);  // monotone peak
  EXPECT_EQ(f.net->queue_admitted(link), 5u);
  // The reverse direction carried nothing.
  EXPECT_EQ(f.net->queue_high_water(*f.topo.find_link(NodeId{1}, NodeId{0})),
            0u);
  EXPECT_EQ(f.net->queue_admitted(*f.topo.find_link(NodeId{1}, NodeId{0})),
            0u);
}

TEST(QueueTest, RedDecisionsAreSeedDeterministic) {
  // Two identically seeded networks must make identical RED early-drop
  // decisions; reseeding with seed_aqm resets the streams mid-object.
  const auto run_once = [](std::uint64_t seed) {
    Fixture f;
    f.topo.add_node();
    f.topo.add_node();
    // ser = 40 B / 40 B/tu = 1 tu; offering a packet every 0.5 tu is 2x
    // the drain rate, so occupancy climbs through RED's [min_th, max_th)
    // band and holds there instead of slamming into the drop-tail limit
    // (where "queue-full" would preempt RED entirely).
    f.topo.add_duplex(NodeId{0}, NodeId{1},
                      LinkSpec{.cost = 1, .delay = 1, .capacity = 40,
                               .queue_limit = 32, .aqm = AqmPolicy::kRed});
    f.finish();
    f.net->seed_aqm(seed);
    QueueTap tap;
    f.net->set_tap(&tap);
    for (int i = 0; i < 200; ++i) {
      f.sim.schedule(0.5 * i, [&f] {
        f.net->send_direct(NodeId{0}, NodeId{1},
                           make_data(*f.net, NodeId{0}, NodeId{1}));
      });
    }
    f.sim.run();
    return std::pair{f.net->counters().drops_red, tap.drops};
  };
  const auto [drops_a, reasons_a] = run_once(42);
  const auto [drops_b, reasons_b] = run_once(42);
  EXPECT_GT(drops_a, 0u);  // the load pattern must actually exercise RED
  EXPECT_EQ(drops_a, drops_b);
  EXPECT_EQ(reasons_a, reasons_b);
}

TEST(QueueTest, UncapacitatedLinksStayUntouched) {
  // capacity == 0 is the byte-identity guarantee: no queue state, no
  // congestion counters, no on_queue callbacks, delay = propagation only.
  Fixture f;
  f.topo.add_node();
  f.topo.add_node();
  f.topo.add_duplex(NodeId{0}, NodeId{1}, LinkSpec{.cost = 1, .delay = 2});
  f.finish();
  auto& sink = static_cast<RecordingAgent&>(
      f.net->attach(NodeId{1}, std::make_unique<RecordingAgent>()));
  QueueTap tap;
  f.net->set_tap(&tap);
  for (int i = 0; i < 8; ++i) {
    f.net->send_direct(NodeId{0}, NodeId{1}, make_data(*f.net, NodeId{0},
                                                       NodeId{1}));
  }
  f.sim.run();
  EXPECT_EQ(f.net->counters().queued_packets, 0u);
  EXPECT_EQ(f.net->counters().drops_queue_full, 0u);
  EXPECT_EQ(f.net->counters().drops_red, 0u);
  EXPECT_TRUE(tap.admissions.empty());
  EXPECT_EQ(f.net->queue_depth(*f.topo.find_link(NodeId{0}, NodeId{1})), 0u);
  ASSERT_EQ(sink.arrivals.size(), 8u);
  for (const Time t : sink.arrivals) EXPECT_DOUBLE_EQ(t, 2.0);
}

}  // namespace
}  // namespace hbh::net
