// End-to-end tests for the causal tracer: span ancestry, the convergence
// analyzer against probe ground truth, determinism, capacity bounds, the
// kill switch, and the Perfetto export (docs/OBSERVABILITY.md "Causal
// tracing").
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/session.hpp"
#include "metrics/tracer.hpp"
#include "topo/builders.hpp"

namespace hbh {
namespace {

using harness::Protocol;
using harness::Session;
using metrics::SpanKind;
using metrics::SpanRecord;
using metrics::Tracer;

// Line h0-r0-r1-r2-h2 with unit costs: the probe path from the source host
// to the sole receiver host is exactly 4 links, so delay ground truth is 4.
topo::Scenario line_scenario() {
  return topo::attach_hosts(topo::make_line(3),
                            {NodeId{0}, NodeId{1}, NodeId{2}});
}

struct TracedRun {
  explicit TracedRun(Protocol proto) : session{line_scenario(), proto} {
    session.enable_tracing();
    receiver = session.scenario().hosts.back();
  }

  Session session;
  NodeId receiver = kNoNode;
};

TEST(TracerTest, JoinToFirstDeliveryMatchesProbeMeasuredDelay) {
  TracedRun run{Protocol::kHbh};
  auto channel = run.session.default_channel();
  channel.subscribe(run.receiver, 0.1);
  run.session.run_for(120);

  const Time probe_sent_at = run.session.simulator().now();
  const harness::Measurement m = run.session.measure();
  ASSERT_TRUE(m.delivered_exactly_once());
  EXPECT_DOUBLE_EQ(m.mean_delay, 4.0);  // 4 unit links, ground truth

  const metrics::ConvergenceSummary summary =
      metrics::analyze_convergence(run.session.tracer()->spans());
  ASSERT_EQ(summary.grafts.size(), 1u);
  const metrics::GraftTimeline& g = summary.grafts.front();
  // The probe is the first data packet of the run, so the receiver's first
  // delivery is the probe's arrival: subscribe + measured delay line up
  // exactly with the timeline the tracer reconstructed.
  EXPECT_DOUBLE_EQ(g.subscribed_at, 0.1);
  EXPECT_DOUBLE_EQ(g.first_delivery_at, probe_sent_at + m.mean_delay);
  EXPECT_DOUBLE_EQ(g.join_to_first_delivery,
                   probe_sent_at + m.mean_delay - 0.1);
  EXPECT_GT(g.control_messages, 0u);
}

TEST(TracerTest, TransmitSpansDescendFromRootsForEveryProtocol) {
  for (const Protocol proto : harness::all_protocols()) {
    TracedRun run{proto};
    auto channel = run.session.default_channel();
    channel.subscribe(run.receiver, 0.1);
    run.session.run_for(120);
    (void)run.session.measure();

    const std::vector<SpanRecord>& spans = run.session.tracer()->spans();
    std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
    for (const SpanRecord& s : spans) by_id[s.span_id] = &s;

    std::size_t transmits = 0;
    for (const SpanRecord& s : spans) {
      if (s.kind != SpanKind::kTransmit) continue;
      ++transmits;
      // Walk to the root: every hop must resolve, terminate at a recorded
      // root span, and stay within the same trace.
      const SpanRecord* cur = &s;
      while (cur->parent_id != 0) {
        const auto it = by_id.find(cur->parent_id);
        ASSERT_NE(it, by_id.end())
            << to_string(proto) << ": dangling parent of " << s.name;
        EXPECT_EQ(it->second->trace_id, s.trace_id);
        cur = it->second;
      }
      EXPECT_EQ(cur->kind, SpanKind::kRoot)
          << to_string(proto) << ": " << s.name << " not rooted";
    }
    EXPECT_GT(transmits, 0u) << to_string(proto);
  }
}

TEST(TracerTest, ExplicitPruneBeatsSoftStateTimeout) {
  // The asymmetry the convergence ablation quantifies, asserted on the
  // known line: PIM un-grafts by explicit prune (well under one refresh
  // period), HBH waits for the soft-state death timer (t2 = 70 default).
  auto leave_latency = [](Protocol proto) {
    TracedRun run{proto};
    auto channel = run.session.default_channel();
    channel.subscribe(run.receiver, 0.1);
    run.session.run_for(120);
    channel.unsubscribe(run.receiver);
    run.session.run_for(160);
    const metrics::ConvergenceSummary summary =
        metrics::analyze_convergence(run.session.tracer()->spans());
    EXPECT_EQ(summary.leaves.size(), 1u);
    return summary.mean_leave_to_prune();
  };

  const double pim = leave_latency(Protocol::kPimSs);
  EXPECT_GT(pim, 0.0);
  EXPECT_LT(pim, 10.0);

  const double hbh = leave_latency(Protocol::kHbh);
  EXPECT_GE(hbh, 35.0);   // at least t1: state must outlive one miss
  EXPECT_LT(hbh, 160.0);  // and die within the drain we allowed
  EXPECT_GT(hbh, pim);
}

TEST(TracerTest, IdenticalRunsProduceIdenticalSpans) {
  auto spans_of = []() {
    TracedRun run{Protocol::kHbh};
    auto channel = run.session.default_channel();
    channel.subscribe(run.receiver, 0.1);
    run.session.run_for(90);
    (void)run.session.measure();
    return run.session.tracer()->spans();
  };
  const std::vector<SpanRecord> a = spans_of();
  const std::vector<SpanRecord> b = spans_of();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trace_id, b[i].trace_id) << i;
    EXPECT_EQ(a[i].span_id, b[i].span_id) << i;
    EXPECT_EQ(a[i].parent_id, b[i].parent_id) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].name, b[i].name) << i;
    EXPECT_EQ(a[i].node, b[i].node) << i;
    EXPECT_EQ(a[i].subject, b[i].subject) << i;
    EXPECT_DOUBLE_EQ(a[i].start, b[i].start) << i;
    EXPECT_DOUBLE_EQ(a[i].end, b[i].end) << i;
  }
}

TEST(TracerTest, PerfettoExportIsSchemaTaggedTraceEventJson) {
  TracedRun run{Protocol::kHbh};
  auto channel = run.session.default_channel();
  channel.subscribe(run.receiver, 0.1);
  run.session.run_for(90);
  (void)run.session.measure();

  const std::string path = ::testing::TempDir() + "tracer_test_trace.json";
  ASSERT_TRUE(metrics::write_perfetto_trace(
      *run.session.tracer(), {{"figure", "tracer_test"}, {"protocol", "HBH"}},
      path));
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  std::remove(path.c_str());

  for (const char* needle :
       {"hbh.trace/v1", "\"traceEvents\"", "\"displayTimeUnit\"",
        "\"ph\":\"X\"", "\"ph\":\"i\"", "\"thread_name\"", "\"process_name\"",
        "\"subscribe\"", "\"deliver\"", "\"trace\":", "\"parent\":",
        "\"figure\":\"tracer_test\""}) {
    EXPECT_NE(doc.find(needle), std::string::npos) << "missing " << needle;
  }
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '\n');
}

TEST(TracerTest, CapacityBoundsRecordingButIdsKeepAdvancing) {
  sim::Simulator sim;
  Tracer tracer{sim, 2};
  const net::TraceContext c1 =
      tracer.root("a", NodeId{0}, net::Channel{}, kNoAddr);
  const net::TraceContext c2 =
      tracer.root("b", NodeId{0}, net::Channel{}, kNoAddr);
  const net::TraceContext c3 =
      tracer.root("c", NodeId{0}, net::Channel{}, kNoAddr);
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_TRUE(tracer.truncated());
  EXPECT_EQ(tracer.dropped(), 1u);
  // Structure stays deterministic past the cap: contexts are still live
  // and ids still advance, only the recording is bounded.
  EXPECT_TRUE(c3.active());
  EXPECT_GT(c3.span_id, c2.span_id);
  EXPECT_GT(c2.span_id, c1.span_id);
  tracer.clear();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, KillSwitchStopsSpansAndUntagsPackets) {
  sim::Simulator sim;
  Tracer tracer{sim, 16};
  tracer.set_enabled(false);
  const net::TraceContext ctx =
      tracer.root("a", NodeId{0}, net::Channel{}, kNoAddr);
  EXPECT_FALSE(ctx.active());
  EXPECT_TRUE(tracer.spans().empty());
  tracer.set_enabled(true);
  EXPECT_TRUE(tracer.root("b", NodeId{0}, net::Channel{}, kNoAddr).active());
  EXPECT_EQ(tracer.spans().size(), 1u);
}

}  // namespace
}  // namespace hbh
