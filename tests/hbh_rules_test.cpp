// Rule-by-rule conformance tests for HbhRouter against Appendix A.
//
// A single router under test (B) sits on a line between the source side
// and the receiver side; we inject individual join/tree/fusion/data
// packets and assert B's exact table transitions and emissions, isolating
// each Appendix-A rule from full-protocol dynamics.
#include <gtest/gtest.h>

#include <memory>

#include "mcast/hbh/router.hpp"
#include "net/network.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"

namespace hbh::mcast::hbh {
namespace {

/// Records every transmission, queryable by type/target.
struct Tap : net::PacketTap {
  struct Seen {
    NodeId from;
    NodeId to;
    net::Packet packet;
  };
  std::vector<Seen> sent;
  void on_transmit(const net::Topology::Edge& e, const net::Packet& p,
                   Time) override {
    sent.push_back(Seen{e.from, e.to, p});
  }
  [[nodiscard]] std::size_t count(net::PacketType type) const {
    std::size_t n = 0;
    for (const auto& s : sent) {
      if (s.packet.type == type) ++n;
    }
    return n;
  }
  [[nodiscard]] std::size_t count_from(NodeId node,
                                       net::PacketType type) const {
    std::size_t n = 0;
    for (const auto& s : sent) {
      if (s.from == node && s.packet.type == type) ++n;
    }
    return n;
  }
  void clear() { sent.clear(); }
};

// Topology: sh - n0 - B(n1) - n2 - {rh, r2h, r3h}.
//           All costs 1 and symmetric; every control path crosses B.
class HbhRules : public ::testing::Test {
 protected:
  void SetUp() override {
    topo = topo::make_line(3);
    sh = topo.add_node(net::NodeKind::kHost);
    rh = topo.add_node(net::NodeKind::kHost);
    r2h = topo.add_node(net::NodeKind::kHost);
    r3h = topo.add_node(net::NodeKind::kHost);
    topo.add_duplex(NodeId{0}, sh, net::LinkAttrs{1, 1});
    topo.add_duplex(NodeId{2}, rh, net::LinkAttrs{1, 1});
    topo.add_duplex(NodeId{2}, r2h, net::LinkAttrs{1, 1});
    topo.add_duplex(NodeId{2}, r3h, net::LinkAttrs{1, 1});
    routes = std::make_unique<routing::UnicastRouting>(topo);
    net = std::make_unique<net::Network>(sim, topo, *routes);
    b = static_cast<HbhRouter*>(
        &net->attach(NodeId{1}, std::make_unique<HbhRouter>(cfg)));
    net->set_tap(&tap);
    ch = net::Channel{net->address_of(sh), GroupAddr::ssm(1)};
    s_addr = net->address_of(sh);
    r_addr = net->address_of(rh);
    r2_addr = net->address_of(r2h);
    r3_addr = net->address_of(r3h);
    b_addr = net->address_of(NodeId{1});
  }

  void deliver_to_b(net::Packet p) {
    // Inject at n0 or n2 so the packet arrives at B over a real link.
    const NodeId origin = net->node_of(p.dst) == net->node_of(s_addr) ||
                                  p.dst == s_addr
                              ? NodeId{2}
                              : NodeId{0};
    net->send(origin, std::move(p));
    sim.run_for(5);
  }

  net::Packet join(Ipv4Addr r, bool first = false) {
    net::Packet p;
    p.src = r;
    p.dst = s_addr;
    p.channel = ch;
    p.type = net::PacketType::kJoin;
    p.payload = net::JoinPayload{r, first};
    return p;
  }

  net::Packet tree(Ipv4Addr target, std::uint32_t wave,
                   Ipv4Addr last_branch = kNoAddr) {
    net::Packet p;
    p.src = s_addr;
    p.dst = target;
    p.channel = ch;
    p.type = net::PacketType::kTree;
    p.payload = net::TreePayload{
        target, false, last_branch.unspecified() ? s_addr : last_branch, wave};
    return p;
  }

  net::Packet fusion(std::vector<Ipv4Addr> receivers, Ipv4Addr origin,
                     Ipv4Addr to) {
    net::Packet p;
    p.src = origin;
    p.dst = to;
    p.channel = ch;
    p.type = net::PacketType::kFusion;
    p.payload = net::FusionPayload{std::move(receivers), origin};
    return p;
  }

  /// Drives B into branching state with entries {r, r2} (rule T8).
  void make_branching() {
    deliver_to_b(tree(r_addr, 1));
    deliver_to_b(tree(r2_addr, 1));
    ASSERT_NE(b->state(ch), nullptr);
    ASSERT_TRUE(b->state(ch)->branching());
    tap.clear();
  }

  mcast::McastConfig cfg{};
  net::Topology topo;
  NodeId sh, rh, r2h, r3h;
  sim::Simulator sim;
  std::unique_ptr<routing::UnicastRouting> routes;
  std::unique_ptr<net::Network> net;
  HbhRouter* b = nullptr;
  Tap tap;
  net::Channel ch;
  Ipv4Addr s_addr, r_addr, r2_addr, r3_addr, b_addr;
};

TEST_F(HbhRules, J1_NoMftForwardsJoinUnchanged) {
  deliver_to_b(join(r_addr));
  // The join crossed B (n1 -> n0) unmodified, toward the source.
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kJoin), 1u);
  EXPECT_EQ(b->state(ch), nullptr);  // joins alone never create state
}

TEST_F(HbhRules, J2_UnknownReceiverForwardsJoin) {
  make_branching();
  const Ipv4Addr stranger{10, 9, 9, 1};
  deliver_to_b(join(stranger));
  ASSERT_EQ(tap.count_from(NodeId{1}, net::PacketType::kJoin), 1u);
  EXPECT_EQ(tap.sent.back().packet.join().receiver, stranger);
}

TEST_F(HbhRules, J3_KnownReceiverInterceptedSelfJoinEmitted) {
  make_branching();
  deliver_to_b(join(r_addr));
  // Exactly one join leaves B — join(S, B), not join(S, r).
  ASSERT_EQ(tap.count_from(NodeId{1}, net::PacketType::kJoin), 1u);
  for (const auto& s : tap.sent) {
    if (s.packet.type == net::PacketType::kJoin && s.from == NodeId{1}) {
      EXPECT_EQ(s.packet.join().receiver, b_addr);
    }
  }
}

TEST_F(HbhRules, J3_InterceptRefreshesEntry) {
  make_branching();
  sim.run_for(30);  // near t1: entry nearly stale
  deliver_to_b(join(r_addr));
  const auto* entry = b->state(ch)->mft->find(r_addr);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->stale(sim.now()));
}

TEST_F(HbhRules, JFirst_FirstJoinNeverIntercepted) {
  make_branching();
  deliver_to_b(join(r_addr, /*first=*/true));
  ASSERT_EQ(tap.count_from(NodeId{1}, net::PacketType::kJoin), 1u);
  EXPECT_EQ(tap.sent.back().packet.join().receiver, r_addr);  // unchanged
}

TEST_F(HbhRules, T4_TreeCreatesMctAndForwards) {
  deliver_to_b(tree(r_addr, 1));
  const auto* st = b->state(ch);
  ASSERT_NE(st, nullptr);
  ASSERT_TRUE(st->mct.has_value());
  EXPECT_EQ(st->mct->target, r_addr);
  EXPECT_FALSE(st->branching());
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kTree), 1u);
}

TEST_F(HbhRules, T6_SameTargetRefreshesMct) {
  deliver_to_b(tree(r_addr, 1));
  sim.run_for(30);
  deliver_to_b(tree(r_addr, 2));
  const auto* st = b->state(ch);
  ASSERT_TRUE(st->mct.has_value());
  EXPECT_FALSE(st->mct->state.stale(sim.now()));
}

TEST_F(HbhRules, T7_StaleMctReplacedWithoutBranching) {
  deliver_to_b(tree(r_addr, 1));
  sim.run_for(40);  // > t1: MCT stale
  deliver_to_b(tree(r2_addr, 5));
  const auto* st = b->state(ch);
  ASSERT_TRUE(st->mct.has_value());
  EXPECT_EQ(st->mct->target, r2_addr);
  EXPECT_FALSE(st->branching());
}

TEST_F(HbhRules, T8_SecondLiveTargetBranchesAndFuses) {
  deliver_to_b(tree(r_addr, 1));
  deliver_to_b(tree(r2_addr, 1));
  const auto* st = b->state(ch);
  ASSERT_TRUE(st->branching());
  EXPECT_TRUE(st->mft->contains(r_addr));
  EXPECT_TRUE(st->mft->contains(r2_addr));
  EXPECT_FALSE(st->mct.has_value());
  // Fusion went upstream, addressed to the tree's last_branch (= S).
  ASSERT_EQ(tap.count_from(NodeId{1}, net::PacketType::kFusion), 1u);
  for (const auto& s : tap.sent) {
    if (s.packet.type == net::PacketType::kFusion) {
      EXPECT_EQ(s.packet.dst, s_addr);
      EXPECT_EQ(s.packet.fusion().origin, b_addr);
      EXPECT_EQ(s.packet.fusion().receivers.size(), 2u);
    }
  }
}

TEST_F(HbhRules, T2_PassingTreeForNewReceiverInsertsAndFuses) {
  make_branching();
  deliver_to_b(tree(r3_addr, 2));  // a receiver B has never heard of
  EXPECT_TRUE(b->state(ch)->mft->contains(r3_addr));
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kFusion), 1u);
}

TEST_F(HbhRules, T3_PassingTreeForKnownReceiverRefreshesAndFuses) {
  make_branching();
  sim.run_for(30);
  deliver_to_b(tree(r_addr, 4));
  EXPECT_FALSE(b->state(ch)->mft->find(r_addr)->stale(sim.now()));
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kFusion), 1u);
  // The forwarded tree now names B as the last branching node.
  for (const auto& s : tap.sent) {
    if (s.packet.type == net::PacketType::kTree && s.from == NodeId{1}) {
      EXPECT_EQ(s.packet.tree().last_branch, b_addr);
    }
  }
}

TEST_F(HbhRules, T1_SelfAddressedTreeReExpandsPerEntry) {
  make_branching();
  net::Packet t = tree(b_addr, 7);
  deliver_to_b(std::move(t));
  // One tree per (non-stale) entry: r and r2.
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kTree), 2u);
}

TEST_F(HbhRules, T1_WaveGateSuppressesDuplicateExpansion) {
  make_branching();
  deliver_to_b(tree(b_addr, 7));
  tap.clear();
  deliver_to_b(tree(b_addr, 7));  // same wave again (looped-back token)
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kTree), 0u);
  deliver_to_b(tree(b_addr, 8));  // next wave flows normally
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kTree), 2u);
}

TEST_F(HbhRules, T1_StaleEntryGetsNoTree) {
  make_branching();
  // Age r's entry to stale via time, refresh r2 via a passing tree.
  sim.run_for(40);
  deliver_to_b(tree(r2_addr, 9));
  tap.clear();
  deliver_to_b(tree(b_addr, 10));
  // Only r2 is non-stale -> exactly one re-emission.
  ASSERT_EQ(tap.count_from(NodeId{1}, net::PacketType::kTree), 1u);
  EXPECT_EQ(tap.sent.back().packet.tree().target, r2_addr);
}

TEST_F(HbhRules, F1_FusionNotAddressedToBForwards) {
  make_branching();
  deliver_to_b(fusion({r_addr}, r2_addr, s_addr));
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kFusion), 1u);
  // And B's entries were NOT marked.
  EXPECT_FALSE(b->state(ch)->mft->find(r_addr)->marked());
}

TEST_F(HbhRules, F2F3_FusionMarksListedAndInsertsOrigin) {
  make_branching();
  const Ipv4Addr origin{10, 0, 2, 1};  // node n2's address
  deliver_to_b(fusion({r_addr}, origin, b_addr));
  const auto* st = b->state(ch);
  EXPECT_TRUE(st->mft->find(r_addr)->marked());
  EXPECT_FALSE(st->mft->find(r2_addr)->marked());
  const auto* bp = st->mft->find(origin);
  ASSERT_NE(bp, nullptr);
  EXPECT_TRUE(bp->stale(sim.now()));  // born stale: data yes, trees no
}

TEST_F(HbhRules, DataAddressedToBranchingNodeReplicates) {
  make_branching();
  net::Packet data;
  data.src = s_addr;
  data.dst = b_addr;
  data.channel = ch;
  data.type = net::PacketType::kData;
  data.payload = net::DataPayload{1, 0, sim.now(), false};
  deliver_to_b(std::move(data));
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kData), 2u);
}

TEST_F(HbhRules, DataSkipsMarkedEntries) {
  make_branching();
  const Ipv4Addr origin{10, 0, 2, 1};
  deliver_to_b(fusion({r_addr}, origin, b_addr));  // marks r, adds origin
  tap.clear();
  net::Packet data;
  data.src = s_addr;
  data.dst = b_addr;
  data.channel = ch;
  data.type = net::PacketType::kData;
  data.payload = net::DataPayload{2, 0, sim.now(), false};
  deliver_to_b(std::move(data));
  // Copies go to r2 (fresh) and origin (stale) but NOT to marked r.
  std::size_t copies = 0;
  for (const auto& s : tap.sent) {
    if (s.packet.type != net::PacketType::kData || s.from != NodeId{1}) {
      continue;
    }
    ++copies;
    EXPECT_NE(s.packet.dst, r_addr);
  }
  EXPECT_EQ(copies, 2u);
}

TEST_F(HbhRules, TransitDataIsPlainForwarded) {
  make_branching();
  net::Packet data;
  data.src = s_addr;
  data.dst = r_addr;  // addressed past B
  data.channel = ch;
  data.type = net::PacketType::kData;
  data.payload = net::DataPayload{3, 0, sim.now(), false};
  deliver_to_b(std::move(data));
  EXPECT_EQ(tap.count_from(NodeId{1}, net::PacketType::kData), 1u);
  EXPECT_EQ(tap.sent.back().packet.dst, r_addr);
}

}  // namespace
}  // namespace hbh::mcast::hbh
