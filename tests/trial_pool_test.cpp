// Tests for the parallel trial-execution pool: exact-once index dispatch,
// serial-path equivalence, exception propagation, and job resolution.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "harness/trial_pool.hpp"

namespace hbh::harness {
namespace {

TEST(TrialPoolTest, RunsEveryIndexExactlyOnce) {
  TrialPool pool{4};
  EXPECT_EQ(pool.jobs(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TrialPoolTest, SerialPoolRunsInlineInOrder) {
  TrialPool pool{1};
  std::vector<std::size_t> order;
  pool.run(16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(TrialPoolTest, PoolIsReusableAcrossBatches) {
  TrialPool pool{3};
  for (int batch = 0; batch < 5; ++batch) {
    std::atomic<std::size_t> sum{0};
    pool.run(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u) << "batch " << batch;
  }
}

TEST(TrialPoolTest, EmptyBatchIsANoOp) {
  TrialPool pool{2};
  pool.run(0, [](std::size_t) { FAIL() << "task ran for count=0"; });
}

TEST(TrialPoolTest, FirstExceptionPropagatesAfterDrain) {
  TrialPool pool{4};
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(pool.run(hits.size(),
                        [&](std::size_t i) {
                          ++hits[i];
                          if (i == 7) throw std::runtime_error{"trial 7"};
                        }),
               std::runtime_error);
  // The batch still drained: every index ran despite the failure.
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // And the pool survives for the next batch.
  std::atomic<int> ran{0};
  pool.run(8, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(TrialPoolTest, ResolveJobsPrefersExplicitThenEnvThenHardware) {
  EXPECT_EQ(TrialPool::resolve_jobs(3), 3u);
  ::setenv("HBH_JOBS", "2", 1);
  EXPECT_EQ(TrialPool::resolve_jobs(5), 5u);  // explicit beats env
  EXPECT_EQ(TrialPool::resolve_jobs(0), 2u);  // env beats hardware
  ::unsetenv("HBH_JOBS");
  EXPECT_GE(TrialPool::resolve_jobs(0), 1u);  // hardware floor
}

}  // namespace
}  // namespace hbh::harness
