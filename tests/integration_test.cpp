// Cross-protocol integration and property tests.
//
// Parameterized over seeds and topologies, these check the invariants the
// paper's evaluation rests on:
//   * every protocol delivers to every member exactly once (converged),
//   * HBH receivers sit on source-rooted shortest paths (delay == SPT),
//   * PIM-SS never puts two copies of a packet on one link (RPF),
//   * with symmetric costs, HBH == PIM-SS cost and delay exactly,
//   * with asymmetric costs, HBH delay <= REUNITE delay (paired trials).
#include <gtest/gtest.h>

#include <cmath>

#include "harness/experiment.hpp"
#include "routing/unicast.hpp"
#include "topo/builders.hpp"
#include "topo/isp.hpp"
#include "topo/random.hpp"
#include "util/rng.hpp"

namespace hbh::harness {
namespace {

struct Config {
  std::uint64_t seed;
  std::size_t receivers;
  bool symmetric;
};

class ProtocolProperties : public ::testing::TestWithParam<Config> {};

topo::Scenario build(const Config& cfg, Rng& rng) {
  topo::Scenario scenario = topo::make_isp();
  topo::randomize_costs(scenario.topo, rng);
  if (cfg.symmetric) topo::symmetrize_costs(scenario.topo);
  return scenario;
}

struct Converged {
  Measurement m;
  std::vector<NodeId> receivers;
  std::unique_ptr<Session> session;
};

Converged converge(const Config& cfg, Protocol protocol) {
  Rng rng{cfg.seed};
  topo::Scenario scenario = build(cfg, rng);
  auto receivers = rng.sample(scenario.candidate_receivers(), cfg.receivers);
  Converged out;
  out.receivers = receivers;
  out.session = std::make_unique<Session>(std::move(scenario), protocol);
  Time delay = 0.1;
  for (const NodeId r : receivers) {
    out.session->subscribe(r, delay);
    delay += 1.0;
  }
  out.session->run_for(600);
  out.m = out.session->measure();
  return out;
}

TEST_P(ProtocolProperties, EveryProtocolDeliversExactlyOnce) {
  for (const Protocol p : all_protocols()) {
    const Converged c = converge(GetParam(), p);
    if (p == Protocol::kReunite && !c.m.delivered_exactly_once()) {
      // REUNITE reconfigurations can outlast the warmup on heavily
      // asymmetric draws (EXPERIMENTS.md caveats); its correctness has
      // dedicated coverage in reunite_protocol_test.
      continue;
    }
    EXPECT_TRUE(c.m.delivered_exactly_once())
        << to_string(p) << " missing=" << c.m.missing.size()
        << " duplicated=" << c.m.duplicated.size();
  }
}

TEST_P(ProtocolProperties, HbhDelayEqualsSourceShortestPath) {
  const Converged c = converge(GetParam(), Protocol::kHbh);
  ASSERT_TRUE(c.m.delivered_exactly_once());
  const auto& routes = c.session->routes();
  const NodeId source = c.session->scenario().source_host;
  for (const NodeId r : c.receivers) {
    const auto& ds = c.session->receiver(r).deliveries();
    ASSERT_FALSE(ds.empty());
    EXPECT_DOUBLE_EQ(ds.back().received_at - ds.back().sent_at,
                     routes.path_delay(source, r))
        << to_string(r);
  }
}

TEST_P(ProtocolProperties, PimSsNeverDuplicatesOnALink) {
  const Converged c = converge(GetParam(), Protocol::kPimSs);
  ASSERT_TRUE(c.m.delivered_exactly_once());
  EXPECT_EQ(c.m.max_link_copies, 1u);
}

TEST_P(ProtocolProperties, HbhCostNeverBelowSptLinkCount) {
  // The tree cost can never undercut the number of links of a bare
  // shortest-path tree over the same receivers.
  const Converged c = converge(GetParam(), Protocol::kHbh);
  ASSERT_TRUE(c.m.delivered_exactly_once());
  const auto& routes = c.session->routes();
  const NodeId source = c.session->scenario().source_host;
  std::set<std::pair<std::uint32_t, std::uint32_t>> spt_links;
  for (const NodeId r : c.receivers) {
    const auto path = routes.path(source, r);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      spt_links.emplace(path[i].index(), path[i + 1].index());
    }
  }
  EXPECT_GE(c.m.tree_cost, spt_links.size());
}

TEST_P(ProtocolProperties, SymmetricCostsMakeHbhMatchPimSs) {
  Config cfg = GetParam();
  cfg.symmetric = true;
  const Converged hbh = converge(cfg, Protocol::kHbh);
  const Converged ss = converge(cfg, Protocol::kPimSs);
  ASSERT_TRUE(hbh.m.delivered_exactly_once());
  ASSERT_TRUE(ss.m.delivered_exactly_once());
  // Delay is metric-unique: with symmetric costs every receiver's SPT
  // distance equals its reverse-SPT distance exactly.
  EXPECT_DOUBLE_EQ(hbh.m.mean_delay, ss.m.mean_delay);
  // Cost can differ slightly where equal-cost paths tie-break differently
  // (different overlap between per-receiver paths), but not materially.
  const double gap =
      std::abs(static_cast<double>(hbh.m.tree_cost) -
               static_cast<double>(ss.m.tree_cost)) /
      static_cast<double>(ss.m.tree_cost);
  EXPECT_LE(gap, 0.15) << "hbh=" << hbh.m.tree_cost
                       << " pim-ss=" << ss.m.tree_cost;
}

TEST_P(ProtocolProperties, HbhDelayAtMostReuniteDelay) {
  // Paired trial: identical topology, costs, receiver set. HBH serves
  // every receiver on the SPT, so its mean delay cannot exceed REUNITE's.
  const Converged hbh = converge(GetParam(), Protocol::kHbh);
  const Converged re = converge(GetParam(), Protocol::kReunite);
  ASSERT_TRUE(hbh.m.delivered_exactly_once());
  if (!re.m.delivered_exactly_once()) {
    GTEST_SKIP() << "REUNITE not converged for this seed";
  }
  EXPECT_LE(hbh.m.mean_delay, re.m.mean_delay + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProtocolProperties,
    ::testing::Values(Config{11, 4, false}, Config{12, 8, false},
                      Config{13, 12, false}, Config{14, 16, false},
                      Config{15, 6, false}, Config{16, 10, false},
                      Config{21, 8, true}, Config{22, 14, true}),
    [](const ::testing::TestParamInfo<Config>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_r" +
             std::to_string(param_info.param.receivers) +
             (param_info.param.symmetric ? "_sym" : "_asym");
    });

TEST(LeafAggregationTest, BackboneCostInvariantToReceiversPerRouter) {
  // §4.1: "The presence of one or many receivers attached to a border
  // router through IGMP does not influence the cost of the tree". With k
  // hosts behind the same border router, only access-link copies grow;
  // the backbone (router-router) portion of the tree is identical.
  for (const Protocol p : {Protocol::kHbh, Protocol::kPimSs}) {
    std::size_t backbone_cost[3] = {0, 0, 0};
    for (std::size_t k = 1; k <= 3; ++k) {
      net::Topology t = topo::make_line(4);
      // Source host on router 0; k receiver hosts on router 3.
      const NodeId src_host = t.add_node(net::NodeKind::kHost);
      t.add_duplex(NodeId{0}, src_host, net::LinkAttrs{1, 1});
      std::vector<NodeId> rx_hosts;
      for (std::size_t i = 0; i < k; ++i) {
        const NodeId h = t.add_node(net::NodeKind::kHost);
        t.add_duplex(NodeId{3}, h, net::LinkAttrs{1, 1});
        rx_hosts.push_back(h);
      }
      topo::Scenario scenario;
      scenario.topo = std::move(t);
      scenario.routers = {NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};
      scenario.hosts = rx_hosts;
      scenario.hosts.insert(scenario.hosts.begin(), src_host);
      scenario.source_host = src_host;

      Session session{std::move(scenario), p};
      for (const NodeId h : rx_hosts) session.subscribe(h);
      session.run_for(200);
      const Measurement m = session.measure();
      ASSERT_TRUE(m.delivered_exactly_once()) << to_string(p) << " k=" << k;
      std::size_t backbone = 0;
      for (const auto& [link, copies] : m.per_link) {
        if (session.scenario().topo.kind(link.first) ==
                net::NodeKind::kRouter &&
            session.scenario().topo.kind(link.second) ==
                net::NodeKind::kRouter) {
          backbone += copies;
        }
      }
      backbone_cost[k - 1] = backbone;
      // Total cost = backbone + one access copy per receiver + source link.
      EXPECT_EQ(m.tree_cost, backbone + k + 1) << to_string(p) << " k=" << k;
    }
    EXPECT_EQ(backbone_cost[0], backbone_cost[1]) << to_string(p);
    EXPECT_EQ(backbone_cost[1], backbone_cost[2]) << to_string(p);
  }
}

// --- Random 50-node topology spot checks (heavier, fewer seeds) ---

class Random50Properties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Random50Properties, AllProtocolsDeliverOnRandomTopology) {
  Rng topo_rng{GetParam()};
  topo::Scenario base = topo::make_random50(topo_rng);
  Rng cost_rng{GetParam() ^ 0xabcdef};
  topo::randomize_costs(base.topo, cost_rng);
  auto receivers = cost_rng.sample(base.candidate_receivers(), 15);

  for (const Protocol p : all_protocols()) {
    Session session{base, p};
    Time delay = 0.1;
    for (const NodeId r : receivers) {
      session.subscribe(r, delay);
      delay += 1.0;
    }
    session.run_for(400);
    const Measurement m = session.measure();
    if (p == Protocol::kReunite && !m.delivered_exactly_once()) {
      continue;  // REUNITE may legitimately still be reconfiguring
    }
    EXPECT_TRUE(m.delivered_exactly_once()) << to_string(p);
    EXPECT_GT(m.tree_cost, 0u) << to_string(p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random50Properties,
                         ::testing::Values(101, 102, 103));

}  // namespace
}  // namespace hbh::harness
