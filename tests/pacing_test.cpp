// Tests for the control-plane pacing guards and the fusion state rules
// (Appendix A, F2-F4) applied directly to tables.
#include <gtest/gtest.h>

#include "mcast/common/pacing.hpp"
#include "mcast/hbh/router.hpp"

namespace hbh::mcast {
namespace {

TEST(TreePacerTest, FirstEmissionAllowed) {
  TreePacer pacer;
  EXPECT_TRUE(pacer.allow(Ipv4Addr{10, 0, 0, 1}, 0.0, 5.0));
}

TEST(TreePacerTest, BlocksWithinMinGap) {
  TreePacer pacer;
  const Ipv4Addr t{10, 0, 0, 1};
  EXPECT_TRUE(pacer.allow(t, 0.0, 5.0));
  EXPECT_FALSE(pacer.allow(t, 2.0, 5.0));
  EXPECT_FALSE(pacer.allow(t, 4.9, 5.0));
  EXPECT_TRUE(pacer.allow(t, 5.0, 5.0));
}

TEST(TreePacerTest, TargetsAreIndependent) {
  TreePacer pacer;
  EXPECT_TRUE(pacer.allow(Ipv4Addr{10, 0, 0, 1}, 0.0, 5.0));
  EXPECT_TRUE(pacer.allow(Ipv4Addr{10, 0, 0, 2}, 0.0, 5.0));
}

TEST(TreePacerTest, AllowRecordsNewTimestamp) {
  TreePacer pacer;
  const Ipv4Addr t{10, 0, 0, 1};
  EXPECT_TRUE(pacer.allow(t, 0.0, 5.0));
  EXPECT_TRUE(pacer.allow(t, 6.0, 5.0));
  EXPECT_FALSE(pacer.allow(t, 10.0, 5.0));  // last emission was at 6.0
}

TEST(TreePacerTest, ExpireDropsOldMemory) {
  TreePacer pacer;
  EXPECT_TRUE(pacer.allow(Ipv4Addr{10, 0, 0, 1}, 0.0, 5.0));
  EXPECT_TRUE(pacer.allow(Ipv4Addr{10, 0, 0, 2}, 90.0, 5.0));
  EXPECT_EQ(pacer.size(), 2u);
  pacer.expire(100.0, 50.0);
  EXPECT_EQ(pacer.size(), 1u);  // the t=0 entry aged out
}

TEST(ReplicationGuardTest, FirstTimeThenDuplicate) {
  ReplicationGuard guard;
  EXPECT_TRUE(guard.first_time(1, 0));
  EXPECT_FALSE(guard.first_time(1, 0));
  EXPECT_TRUE(guard.first_time(1, 1));
  EXPECT_TRUE(guard.first_time(2, 0));
  EXPECT_FALSE(guard.first_time(2, 0));
}

TEST(ReplicationGuardTest, RingEvictsOldestEventually) {
  ReplicationGuard guard;
  EXPECT_TRUE(guard.first_time(0, 0));
  for (std::uint32_t i = 1; i <= 64; ++i) {
    EXPECT_TRUE(guard.first_time(0, i));
  }
  // (0,0) fell out of the 64-entry ring: treated as new again. This is the
  // documented bound — only *recent* loop-backs are suppressed.
  EXPECT_TRUE(guard.first_time(0, 0));
}

TEST(ApplyFusionTest, MarksListedEntries) {
  const McastConfig cfg{};
  hbh::Mft mft;
  const Ipv4Addr r1{10, 0, 0, 1};
  const Ipv4Addr r2{10, 0, 0, 2};
  const Ipv4Addr bp{10, 0, 9, 1};
  mft.upsert(r1, cfg, 0.0);
  mft.upsert(r2, cfg, 0.0);

  net::FusionPayload fusion;
  fusion.receivers = {r1};
  fusion.origin = bp;
  hbh::apply_fusion(mft, fusion, cfg, 0.0);

  EXPECT_TRUE(mft.find(r1)->marked());
  EXPECT_FALSE(mft.find(r2)->marked());
}

TEST(ApplyFusionTest, UnknownListedReceiversIgnored) {
  const McastConfig cfg{};
  hbh::Mft mft;
  net::FusionPayload fusion;
  fusion.receivers = {Ipv4Addr{10, 0, 0, 9}};
  fusion.origin = Ipv4Addr{10, 0, 9, 1};
  hbh::apply_fusion(mft, fusion, cfg, 0.0);
  EXPECT_EQ(mft.size(), 1u);  // only the origin entry was created
  EXPECT_FALSE(mft.contains(Ipv4Addr{10, 0, 0, 9}));
}

TEST(ApplyFusionTest, OriginBornStale) {
  const McastConfig cfg{};
  hbh::Mft mft;
  const Ipv4Addr bp{10, 0, 9, 1};
  net::FusionPayload fusion;
  fusion.origin = bp;
  hbh::apply_fusion(mft, fusion, cfg, 0.0);

  const SoftEntry* entry = mft.find(bp);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->stale(0.0));     // F3: no tree messages toward Bp
  EXPECT_FALSE(entry->dead(50.0));    // but alive for data until t2
  EXPECT_FALSE(entry->marked());      // and data-eligible
}

TEST(ApplyFusionTest, RepeatedFusionKeepsOriginAliveButStale) {
  const McastConfig cfg{};
  hbh::Mft mft;
  const Ipv4Addr bp{10, 0, 9, 1};
  net::FusionPayload fusion;
  fusion.origin = bp;
  hbh::apply_fusion(mft, fusion, cfg, 0.0);
  hbh::apply_fusion(mft, fusion, cfg, 60.0);  // F4: refresh t2 only
  const SoftEntry* entry = mft.find(bp);
  EXPECT_TRUE(entry->stale(60.0));
  EXPECT_FALSE(entry->dead(120.0));   // t2 now runs from 60
  EXPECT_TRUE(entry->dead(130.1));
}

TEST(ApplyFusionTest, JoinFreshenedOriginStaysFreshThroughFusion) {
  // F4 must not re-expire t1: once Bp's own joins freshened the entry,
  // tree messages flow to Bp and later fusions only keep t2 alive.
  const McastConfig cfg{};
  hbh::Mft mft;
  const Ipv4Addr bp{10, 0, 9, 1};
  net::FusionPayload fusion;
  fusion.origin = bp;
  hbh::apply_fusion(mft, fusion, cfg, 0.0);
  mft.find(bp)->refresh(cfg, 10.0);  // join(S, Bp) arrives
  hbh::apply_fusion(mft, fusion, cfg, 12.0);
  EXPECT_FALSE(mft.find(bp)->stale(20.0));
}

}  // namespace
}  // namespace hbh::mcast
