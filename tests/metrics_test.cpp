// Tests for the measurement probes (tree cost counting, per-link copy
// detection, delay recording, delivery audit).
#include <gtest/gtest.h>

#include "metrics/probe.hpp"

namespace hbh::metrics {
namespace {

net::Topology::Edge edge(std::uint32_t a, std::uint32_t b) {
  return net::Topology::Edge{NodeId{a}, NodeId{b}, net::LinkAttrs{1, 1}};
}

net::Packet data_packet(std::uint64_t probe, Time sent_at = 0) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.payload = net::DataPayload{probe, 0, sent_at, false};
  return p;
}

TEST(DataProbeTest, CountsOnlyMatchingDataTransmissions) {
  DataProbe probe{1};
  probe.on_transmit(edge(0, 1), data_packet(1), 0);
  probe.on_transmit(edge(1, 2), data_packet(1), 1);
  probe.on_transmit(edge(1, 2), data_packet(2), 1);  // other probe
  net::Packet join;
  join.type = net::PacketType::kJoin;
  join.payload = net::JoinPayload{};
  probe.on_transmit(edge(0, 1), join, 2);  // control traffic
  EXPECT_EQ(probe.link_copies(), 2u);
}

TEST(DataProbeTest, PerLinkCopyCounts) {
  DataProbe probe{1};
  probe.on_transmit(edge(0, 1), data_packet(1), 0);
  probe.on_transmit(edge(0, 1), data_packet(1), 0);
  probe.on_transmit(edge(1, 0), data_packet(1), 0);  // reverse direction
  EXPECT_EQ(probe.max_copies_on_a_link(), 2u);
  EXPECT_EQ(probe.per_link().size(), 2u);  // directions are distinct links
}

TEST(DataProbeTest, DelayRecordingPerHost) {
  DataProbe probe{1};
  net::Packet p = data_packet(1, /*sent_at=*/5.0);
  probe.on_data(NodeId{7}, p, 12.0);
  probe.on_data(NodeId{8}, p, 9.0);
  const auto& d = probe.deliveries();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.at(NodeId{7})[0], 7.0);
  EXPECT_DOUBLE_EQ(d.at(NodeId{8})[0], 4.0);
  EXPECT_DOUBLE_EQ(probe.mean_delay({NodeId{7}, NodeId{8}}), 5.5);
}

TEST(DataProbeTest, MeanDelaySkipsMissingReceivers) {
  DataProbe probe{1};
  probe.on_data(NodeId{1}, data_packet(1, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(probe.mean_delay({NodeId{1}, NodeId{2}}), 10.0);
  EXPECT_DOUBLE_EQ(probe.mean_delay({NodeId{2}}), 0.0);
}

TEST(DataProbeTest, MissingAndDuplicatedAudit) {
  DataProbe probe{1};
  const net::Packet p = data_packet(1);
  probe.on_data(NodeId{1}, p, 1.0);
  probe.on_data(NodeId{2}, p, 1.0);
  probe.on_data(NodeId{2}, p, 2.0);  // duplicate
  const std::vector<NodeId> expected{NodeId{1}, NodeId{2}, NodeId{3}};
  EXPECT_EQ(probe.missing(expected), (std::vector<NodeId>{NodeId{3}}));
  EXPECT_EQ(probe.duplicated(), (std::vector<NodeId>{NodeId{2}}));
  EXPECT_FALSE(probe.exactly_once(expected));
}

TEST(DataProbeTest, ExactlyOnceHappyPath) {
  DataProbe probe{1};
  probe.on_data(NodeId{1}, data_packet(1), 1.0);
  probe.on_data(NodeId{2}, data_packet(1), 1.0);
  EXPECT_TRUE(probe.exactly_once({NodeId{1}, NodeId{2}}));
}

TEST(DataProbeTest, IgnoresDeliveriesOfOtherProbes) {
  DataProbe probe{1};
  probe.on_data(NodeId{1}, data_packet(99), 1.0);
  EXPECT_TRUE(probe.deliveries().empty());
}

TEST(DataProbeTest, DropCounting) {
  DataProbe probe{1};
  probe.on_drop(NodeId{0}, data_packet(1), "ttl-expired", 0);
  probe.on_drop(NodeId{0}, data_packet(2), "ttl-expired", 0);
  EXPECT_EQ(probe.drops(), 1u);
}

}  // namespace
}  // namespace hbh::metrics
