// Tests for the HBH <-> IP-Multicast leaf boundary: an IgmpLeafRouter
// proxies any number of local IGMP members into a single upstream HBH
// membership, keeping the backbone tree independent of local fan-out.
#include <gtest/gtest.h>

#include <memory>

#include "mcast/common/membership.hpp"
#include "mcast/hbh/igmp_leaf.hpp"
#include "mcast/hbh/source.hpp"
#include "net/network.hpp"
#include "routing/unicast.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"

namespace hbh::mcast::hbh {
namespace {

struct Tap : net::PacketTap {
  std::map<std::pair<NodeId, NodeId>, std::size_t> data_per_link;
  std::size_t joins_from_leaf = 0;
  NodeId leaf;
  void on_transmit(const net::Topology::Edge& e, const net::Packet& p,
                   Time) override {
    if (p.type == net::PacketType::kData) {
      ++data_per_link[{e.from, e.to}];
    }
    if (p.type == net::PacketType::kJoin && e.from == leaf) {
      ++joins_from_leaf;
    }
  }
};

// sh - n0 - n1(leaf) with k member hosts on n1.
class IgmpLeaf : public ::testing::Test {
 protected:
  void SetUp() override {
    topo = topo::make_line(2);
    sh = topo.add_node(net::NodeKind::kHost);
    topo.add_duplex(NodeId{0}, sh, net::LinkAttrs{1, 1});
    for (int i = 0; i < 3; ++i) {
      const NodeId h = topo.add_node(net::NodeKind::kHost);
      topo.add_duplex(NodeId{1}, h, net::LinkAttrs{1, 1});
      hosts.push_back(h);
    }
    routes = std::make_unique<routing::UnicastRouting>(topo);
    net = std::make_unique<net::Network>(sim, topo, *routes);
    tap.leaf = NodeId{1};
    net->set_tap(&tap);
    ch = net::Channel{net->address_of(sh), GroupAddr::ssm(1)};
    source = static_cast<HbhSource*>(
        &net->attach(sh, std::make_unique<HbhSource>(ch, cfg)));
    leaf = static_cast<IgmpLeafRouter*>(
        &net->attach(NodeId{1}, std::make_unique<IgmpLeafRouter>(cfg)));
    net->attach(NodeId{0}, std::make_unique<HbhRouter>(cfg));
    for (const NodeId h : hosts) {
      members.push_back(static_cast<ReceiverHost*>(&net->attach(
          h, std::make_unique<ReceiverHost>(JoinStyle::kPimJoin, cfg))));
    }
    net->start();
  }

  /// Subscribes host i via an IGMP-style report to the leaf router.
  void igmp_join(std::size_t i) {
    members[i]->subscribe(ch, net->address_of(NodeId{1}));
  }
  void igmp_leave(std::size_t i) { members[i]->unsubscribe(ch); }

  McastConfig cfg{};
  net::Topology topo;
  NodeId sh;
  std::vector<NodeId> hosts;
  sim::Simulator sim;
  std::unique_ptr<routing::UnicastRouting> routes;
  std::unique_ptr<net::Network> net;
  Tap tap;
  net::Channel ch;
  HbhSource* source = nullptr;
  IgmpLeafRouter* leaf = nullptr;
  std::vector<ReceiverHost*> members;
};

TEST_F(IgmpLeaf, SingleUpstreamMembershipForManyLocalMembers) {
  igmp_join(0);
  igmp_join(1);
  igmp_join(2);
  sim.run_for(30);
  EXPECT_TRUE(leaf->upstream_member(ch));
  EXPECT_EQ(leaf->local_members(ch).size(), 3u);
  // The source sees exactly one receiver: the leaf router itself.
  const auto targets = source->mft().data_targets(sim.now());
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], net->address_of(NodeId{1}));
}

TEST_F(IgmpLeaf, DataFansOutLocallyExactlyOnce) {
  igmp_join(0);
  igmp_join(1);
  igmp_join(2);
  sim.run_for(30);
  source->send_data(1, 0);
  sim.run_for(20);
  for (const auto* m : members) {
    EXPECT_EQ(m->deliveries().size(), 1u);
  }
  // Backbone links carry exactly ONE copy regardless of local fan-out.
  EXPECT_EQ((tap.data_per_link[{NodeId{0}, NodeId{1}}]), 1u);
  // Each member link carries exactly one copy.
  for (const NodeId h : hosts) {
    EXPECT_EQ((tap.data_per_link[{NodeId{1}, h}]), 1u);
  }
}

TEST_F(IgmpLeaf, BackboneCostIndependentOfMemberCount) {
  igmp_join(0);
  sim.run_for(30);
  source->send_data(1, 0);
  sim.run_for(20);
  const std::size_t backbone_one = tap.data_per_link[{NodeId{0}, NodeId{1}}];

  igmp_join(1);
  igmp_join(2);
  sim.run_for(30);
  source->send_data(2, 1);
  sim.run_for(20);
  const std::size_t backbone_three =
      tap.data_per_link[{NodeId{0}, NodeId{1}}] - backbone_one;
  EXPECT_EQ(backbone_one, 1u);
  EXPECT_EQ(backbone_three, 1u);  // §4.1's claim, by construction
}

TEST_F(IgmpLeaf, LastLeaveTearsDownUpstreamMembership) {
  igmp_join(0);
  igmp_join(1);
  sim.run_for(30);
  ASSERT_TRUE(leaf->upstream_member(ch));
  igmp_leave(0);
  sim.run_for(5);
  EXPECT_TRUE(leaf->upstream_member(ch));  // member 1 still there
  igmp_leave(1);
  sim.run_for(5);
  EXPECT_FALSE(leaf->upstream_member(ch));
  // Upstream soft state ages out; the source eventually has no members.
  sim.run_for(150);
  EXPECT_FALSE(source->has_members());
}

TEST_F(IgmpLeaf, MemberExpiresWithoutIgmpRefresh) {
  // Reports refresh membership like any soft state: silence past t2 ages
  // a member out even without an explicit leave.
  igmp_join(0);
  sim.run_for(15);
  members[0]->unsubscribe(ch);  // stops reports; prune handled as leave
  sim.run_for(5);
  EXPECT_TRUE(leaf->local_members(ch).empty());
}

TEST_F(IgmpLeaf, DataWithNoMembersIsNotForwardedLocally) {
  igmp_join(0);
  sim.run_for(30);
  igmp_leave(0);
  sim.run_for(120);  // upstream membership ages out at the source
  tap.data_per_link.clear();
  source->send_data(9, 0);
  sim.run_for(20);
  for (const NodeId h : hosts) {
    EXPECT_EQ((tap.data_per_link[{NodeId{1}, h}]), 0u);
  }
}

}  // namespace
}  // namespace hbh::mcast::hbh
