// PIM baseline tests: PIM-SS reverse SPTs with RPF (one copy per link)
// and PIM-SM shared trees with register-tunnel encapsulation toward the
// RP, including the two-part delay structure of §4.2.2.
#include <gtest/gtest.h>

#include "harness/session.hpp"
#include "mcast/pim/router.hpp"
#include "routing/unicast.hpp"
#include "topo/builders.hpp"
#include "topo/isp.hpp"
#include "topo/scenarios.hpp"

namespace hbh::harness {
namespace {

using mcast::pim::PimRouter;

topo::Scenario from_fig1(const topo::Fig1Scenario& f) {
  topo::Scenario s;
  s.topo = f.topo;
  s.routers = {f.h1, f.h2, f.h3, f.h4, f.h5, f.h6, f.h7};
  s.hosts = {f.s, f.r1, f.r2, f.r3, f.r4, f.r5, f.r6, f.r7, f.r8};
  s.source_host = f.s;
  return s;
}

topo::Scenario from_fig2(const topo::Fig2Scenario& f) {
  topo::Scenario s;
  s.topo = f.topo;
  s.routers = {f.h1, f.h2, f.h3, f.h4};
  s.hosts = {f.s, f.r1, f.r2, f.r3};
  s.source_host = f.s;
  return s;
}

TEST(PimSsTest, SingleReceiverDelivery) {
  auto scenario =
      topo::attach_hosts(topo::make_line(3), {NodeId{0}, NodeId{1}, NodeId{2}}, 0);
  Session session{scenario, Protocol::kPimSs};
  session.subscribe(scenario.hosts[2]);
  session.run_for(40);
  const Measurement m = session.measure();
  EXPECT_TRUE(m.delivered_exactly_once());
  EXPECT_EQ(m.tree_cost, 4u);
  EXPECT_DOUBLE_EQ(m.mean_delay, 4.0);
}

TEST(PimSsTest, RpfGuaranteesOneCopyPerLink) {
  const auto fig = topo::make_fig1();
  Session session{from_fig1(fig), Protocol::kPimSs};
  for (const NodeId r : fig.receivers()) session.subscribe(r);
  session.run_for(120);
  const Measurement m = session.measure();
  EXPECT_TRUE(m.delivered_exactly_once());
  EXPECT_EQ(m.max_link_copies, 1u);
  EXPECT_EQ(m.tree_cost, 15u);  // same 15-link tree as HBH when symmetric
}

TEST(PimSsTest, OifStateInstalledAlongJoinPath) {
  const auto fig = topo::make_fig1();
  Session session{from_fig1(fig), Protocol::kPimSs};
  session.subscribe(fig.r1);
  session.run_for(40);
  // r1's join path r1 -> H6 -> H4 -> H2 -> H1 -> S installs oifs pointing
  // back toward r1 at every hop.
  const auto& h6 = static_cast<const PimRouter&>(session.network().agent(fig.h6));
  const auto& h1 = static_cast<const PimRouter&>(session.network().agent(fig.h1));
  const auto h6_oifs = h6.oifs(session.channel());
  ASSERT_EQ(h6_oifs.size(), 1u);
  EXPECT_EQ(h6_oifs[0], fig.r1);
  const auto h1_oifs = h1.oifs(session.channel());
  ASSERT_EQ(h1_oifs.size(), 1u);
  EXPECT_EQ(h1_oifs[0], fig.h2);
}

TEST(PimSsTest, DelayIsReversePathDelay) {
  // Asymmetric topology: PIM-SS delay follows the data direction along the
  // reversed join path — NOT the shortest S->r path.
  const auto fig = topo::make_fig2();
  auto scenario = from_fig2(fig);
  routing::UnicastRouting reference{scenario.topo};
  Session session{scenario, Protocol::kPimSs};
  session.subscribe(fig.r1);
  session.run_for(60);
  const Measurement m = session.measure();
  ASSERT_TRUE(m.delivered_exactly_once());
  // r1's join path is r1 -> H2 -> H1 -> S; data flows S -> H1 -> H2 -> r1:
  // delays c(S->H1)+c(H1->H2)+c(H2->r1) = 1 + 5 + 1 = 7, whereas the
  // shortest S->r1 path (via H3) has delay 3.
  EXPECT_DOUBLE_EQ(m.mean_delay, 7.0);
  EXPECT_GT(m.mean_delay, reference.path_delay(fig.s, fig.r1));
}

TEST(PimSsTest, LeaveTimesOutPrunesBranch) {
  const auto fig = topo::make_fig1();
  Session session{from_fig1(fig), Protocol::kPimSs};
  session.subscribe(fig.r1);
  session.subscribe(fig.r4);
  session.run_for(60);
  ASSERT_TRUE(session.measure().delivered_exactly_once());
  session.unsubscribe(fig.r1);
  session.run_for(200);  // oif soft state expires (t2)
  const Measurement m = session.measure();
  EXPECT_TRUE(m.delivered_exactly_once());  // only r4 subscribed now
  const auto& h6 = static_cast<const PimRouter&>(session.network().agent(fig.h6));
  EXPECT_TRUE(h6.oifs(session.channel()).empty());
}

TEST(PimSmTest, SingleReceiverThroughRp) {
  const auto fig = topo::make_fig1();
  Session session{from_fig1(fig), Protocol::kPimSm};
  ASSERT_TRUE(session.rp().valid());
  session.subscribe(fig.r4);
  session.run_for(60);
  const Measurement m = session.measure();
  EXPECT_TRUE(m.delivered_exactly_once());
  EXPECT_EQ(m.max_link_copies, 1u);
}

TEST(PimSmTest, DelayIsEncapPlusSharedTreePath) {
  const auto fig = topo::make_fig1();
  auto scenario = from_fig1(fig);
  routing::UnicastRouting reference{scenario.topo};
  Session session{scenario, Protocol::kPimSm};
  const NodeId rp = session.rp();
  ASSERT_TRUE(rp.valid());
  session.subscribe(fig.r1);
  session.run_for(60);
  const Measurement m = session.measure();
  ASSERT_TRUE(m.delivered_exactly_once());
  // Symmetric costs: join path r1->RP reversed == RP->r1 shortest path.
  const Time expected =
      reference.path_delay(fig.s, rp) + reference.path_delay(rp, fig.r1);
  EXPECT_DOUBLE_EQ(m.mean_delay, expected);
}

TEST(PimSmTest, SharedTreeCostExceedsSourceTreeOnFig1) {
  // With the source at one edge, detouring through the RP costs extra
  // links versus the direct source tree (the paper's Fig. 7a headline).
  const auto fig = topo::make_fig1();
  std::size_t cost_sm = 0;
  std::size_t cost_ss = 0;
  for (const Protocol p : {Protocol::kPimSm, Protocol::kPimSs}) {
    Session session{from_fig1(fig), p};
    for (const NodeId r : fig.receivers()) session.subscribe(r);
    session.run_for(120);
    const Measurement m = session.measure();
    ASSERT_TRUE(m.delivered_exactly_once()) << to_string(p);
    (p == Protocol::kPimSm ? cost_sm : cost_ss) = m.tree_cost;
  }
  EXPECT_GE(cost_sm, cost_ss);
}

TEST(PimSmTest, AllReceiversExactlyOnce) {
  const auto fig = topo::make_fig1();
  Session session{from_fig1(fig), Protocol::kPimSm};
  for (const NodeId r : fig.receivers()) session.subscribe(r);
  session.run_for(120);
  const Measurement m = session.measure();
  EXPECT_TRUE(m.delivered_exactly_once());
  EXPECT_EQ(m.max_link_copies, 1u);  // RPF on the shared tree + disjoint encap
}

TEST(PimSmTest, RegisterEncapsulationCrossesNetworkUnicast) {
  // Source and RP on the ISP topology: the S->RP leg is plain unicast and
  // the measured cost includes those encapsulated hops.
  const auto isp = topo::make_isp();
  Session session{isp, Protocol::kPimSm};
  const NodeId rp = session.rp();
  ASSERT_TRUE(rp.valid());
  session.subscribe(isp.hosts[9]);
  session.run_for(80);
  const Measurement m = session.measure();
  ASSERT_TRUE(m.delivered_exactly_once());
  const auto& routes = session.routes();
  const std::size_t encap_hops =
      routes.path(isp.source_host, rp).size() - 1;
  EXPECT_GE(m.tree_cost, encap_hops + 1);  // encap leg + at least one branch
}

TEST(ChooseRpTest, PicksCentralRouterDeterministically) {
  const auto fig = topo::make_fig1();
  const routing::UnicastRouting routes{fig.topo};
  topo::Scenario s = from_fig1(fig);
  const NodeId rp1 = mcast::pim::choose_rp(routes, s.routers);
  const NodeId rp2 = mcast::pim::choose_rp(routes, s.routers);
  EXPECT_EQ(rp1, rp2);
  // On the symmetric twin tree the medoid is the fan-out router H1.
  EXPECT_EQ(rp1, fig.h1);
}

TEST(ChooseRpTest, SingleRouterDegenerate) {
  net::Topology t;
  const NodeId r = t.add_node();
  const routing::UnicastRouting routes{t};
  EXPECT_EQ(mcast::pim::choose_rp(routes, {r}), r);
}

}  // namespace
}  // namespace hbh::harness
